GO ?= go

.PHONY: all build vet test race bench-smoke bench-telemetry bench-tracing bench-recorder bench-audit bench-quality bench-quality-smoke bench-memory bench-memory-smoke bench-profile bench-profile-smoke bench-parallel-smoke audit-smoke bench-scale bench-scale-smoke bench-ch bench-ch-smoke bench-trend

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke: one fast pass over the headline benchmarks — enough to
# catch perf regressions in CI without regenerating every figure.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig4aSearchXAR$$|BenchmarkFig4bCreateXAR$$|BenchmarkSearchTelemetry|BenchmarkSearchTracing|BenchmarkSearchRecorder|BenchmarkSearchJournal|BenchmarkSearchQuality|BenchmarkSearchMemsize' -benchtime 100x .

# bench-telemetry: the observability overhead comparison (off vs on)
# backing the ≤5% search hot-path budget; see README "Observability".
bench-telemetry:
	$(GO) test -run '^$$' -bench 'BenchmarkSearchTelemetry' -benchtime 3s -count 4 .

# bench-tracing: the request-tracing overhead comparison (off vs
# head-sampled vs always-on) backing BENCH_tracing.json; see README
# "Tracing".
bench-tracing:
	$(GO) test -run '^$$' -bench 'BenchmarkSearchTracing' -benchtime 3s -count 4 .

# bench-recorder: the flight-recorder overhead comparison (registry
# alone vs a recorder snapshotting it at a 5 ms cadence) backing
# BENCH_recorder.json; see OBSERVABILITY.md.
bench-recorder:
	$(GO) test -run '^$$' -bench 'BenchmarkSearchRecorder' -benchtime 3s -count 4 .

# bench-audit: the event-journal + invariant-auditor overhead comparison
# (off vs journal-on vs journal + background sweeps — 50 ms cadence on
# the serial search path, 1 s under the parallel mixed workload) backing
# BENCH_audit.json; see OBSERVABILITY.md "Event journal & auditing".
bench-audit:
	$(GO) test -run '^$$' -bench 'BenchmarkSearchJournal|BenchmarkMixedWorkloadJournal' -benchtime 1.5s -count 3 .

# bench-quality: the match-quality accounting overhead comparison (no
# collector vs funnel + gap histograms vs funnel + shadow matcher at the
# production 1-in-8 sample) backing BENCH_quality.json's ≤5% budget; see
# OBSERVABILITY.md "Match quality".
bench-quality:
	$(GO) test -run '^$$' -bench 'BenchmarkSearchQuality' -benchtime 3s -count 4 .

# bench-quality-smoke: the CI fence for the same comparison — interleaved
# off/on arms with a deliberately loose 25% bound that absorbs shared-
# runner drift but catches structural regressions (a lock or per-candidate
# allocation added to the search hot path). The strict ≤5% budget is
# judged on quiet hardware and recorded in BENCH_quality.json, whose
# committed numbers `go test` re-checks (TestQualityBenchRecordMeetsBudget).
bench-quality-smoke:
	XAR_QUALITY_SMOKE=1 $(GO) test -run 'TestSearchQualityOverheadSmoke' -v .

# bench-memory: the memory-accounting overhead comparison (no memsize
# registry vs full component accounting with the background sweeper at a
# 1 ms requested cadence, duty-cycled to ≤1% of one core) backing
# BENCH_memory.json's ≤5% budget; see OBSERVABILITY.md "Memory".
bench-memory:
	$(GO) test -run '^$$' -bench 'BenchmarkSearchMemsize' -benchtime 2s -count 3 .

# bench-memory-smoke: the CI fence for the same comparison plus the
# coverage check — interleaved off/on arms under a loose 25% bound that
# absorbs shared-runner drift, then a loaded-engine sweep asserting the
# tracked components explain the live heap within 20%. The strict ≤5%
# budget is judged on the committed BENCH_memory.json numbers, which
# `go test` re-checks (TestMemoryBenchRecordMeetsBudget).
bench-memory-smoke:
	XAR_MEMORY_SMOKE=1 $(GO) test -run 'TestMemorySweepOverheadSmoke' -v .

# bench-profile: the continuous-profiling overhead comparison (no
# profiler vs the capture worker at a 1 ms requested cadence, throttled
# by its ≤1%-of-core fold and ≤10%-of-wall CPU-window duty floors)
# backing BENCH_profile.json's ≤5% budget; see OBSERVABILITY.md
# "Continuous profiling".
bench-profile:
	$(GO) test -run '^$$' -bench 'BenchmarkSearchProfiling|BenchmarkSearchTelemetry/off' -benchmem -benchtime 2s -count 3 .

# bench-profile-smoke: the CI fence for the same comparison — interleaved
# off/on arms under a loose 25% bound that absorbs shared-runner drift,
# then a liveness check that the profiler actually captured every delta
# kind during the run and self-reported a sane overhead gauge. The strict
# ≤5% budget is judged on the committed BENCH_profile.json numbers, which
# `go test` re-checks (TestProfileBenchRecordMeetsBudget).
bench-profile-smoke:
	XAR_PROFILE_SMOKE=1 $(GO) test -run 'TestSearchProfilingOverheadSmoke' -v .

# bench-trend: the performance-regression sentinel — fold every committed
# BENCH_*.json into the longitudinal trajectory (BENCH_trajectory.json),
# run a fresh search micro-benchmark on this machine, and gate on every
# banded series (committed history and the fresh point alike). See
# OBSERVABILITY.md "Performance trend".
bench-trend:
	$(GO) run ./cmd/xarperf -gate -smoke -out BENCH_trajectory.json

# audit-smoke: a small clean replay through `xarsim -audit` must journal
# every lifecycle event, sweep the invariant auditor on the simulated
# clock, and exit zero with no violations — the correctness gate CI runs.
audit-smoke:
	$(GO) run ./cmd/xarsim -rows 12 -cols 8 -requests 200 -audit

# bench-scale: the open-loop, coordinated-omission-safe rate sweep —
# xarload drives the full HTTP path on a Poisson arrival schedule across
# a rate ladder and writes the throughput/latency/memory frontier to
# BENCH_scale.json (client quantiles from intended send time, server-side
# histogram cross-check, heap/RSS and memsize rides-per-GB per step).
# See OBSERVABILITY.md "Load testing".
bench-scale:
	$(GO) run ./cmd/xarload -rates 200,500,1000,2000,4000 -ops-per-step 2000 -out BENCH_scale.json

# bench-scale-smoke: a small-scale xarload sweep against an in-process
# server, gated on the lowest-rate p99 and every step's match rate — the
# CI regression fence for serving latency under load.
bench-scale-smoke:
	$(GO) run ./cmd/xarload -rows 16 -cols 10 -requests 800 \
		-rates 200,400 -ops-per-step 400 -warmup 200 \
		-out bench-scale-smoke.json -gate-p99-ms 250 -gate-match-rate 0.005

# bench-ch: the routing head-to-head (plain A* vs ALT vs CH) at three
# city sizes, written to BENCH_ch.json and gated on a ≥10x CH/ALT
# speedup at the largest size with zero distance mismatches against the
# exact reference. See DESIGN.md §12 "Routing: CH model".
bench-ch:
	$(GO) run ./cmd/xarbench -ch-bench -ch-min-speedup 10 -ch-out BENCH_ch.json

# bench-ch-smoke: the same head-to-head as a CI regression fence — the
# relaxed 5x gate absorbs noisy shared runners; the zero-mismatch gate
# is exact either way.
bench-ch-smoke:
	$(GO) run ./cmd/xarbench -ch-bench -ch-reps 4 -ch-min-speedup 5 -ch-out bench-ch-smoke.json

# bench-parallel-smoke: one iteration of each concurrent-engine
# benchmark at every GOMAXPROCS step — verifies the parallel paths run,
# not their throughput (use `go test -bench Parallel -benchtime 1s .`
# for real numbers; BENCH_parallel.json records a measured curve).
bench-parallel-smoke:
	$(GO) test -run '^$$' -bench 'Parallel' -benchtime 1x .
