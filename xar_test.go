package xar

import (
	"testing"
)

func smallOptions() Options {
	o := DefaultOptions()
	o.CityRows = 20
	o.CityCols = 12
	return o
}

func TestNewSystem(t *testing.T) {
	sys, err := New(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Landmarks == 0 || st.Clusters == 0 || st.RoadNodes == 0 {
		t.Fatalf("empty deployment: %+v", st)
	}
	if st.Epsilon > 4*smallOptions().Delta {
		t.Fatalf("ε = %.1f exceeds 4δ", st.Epsilon)
	}
	if st.IndexBytes == 0 {
		t.Fatal("index size not measured")
	}
}

func TestFacadeLifecycle(t *testing.T) {
	sys, err := New(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	a := sys.RandomServablePoint(1)
	b := sys.RandomServablePoint(99)
	id, err := sys.CreateRide(RideOffer{Source: a, Dest: b, Departure: 1000, DetourLimit: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumRides() != 1 {
		t.Fatalf("NumRides = %d", sys.NumRides())
	}

	req := Request{
		Source: a, Dest: b,
		EarliestDeparture: 900, LatestDeparture: 1900,
		WalkLimit: 1000,
	}
	ms, err := sys.Search(req)
	if err != nil && err != ErrNotServable {
		t.Fatal(err)
	}
	if len(ms) > 0 {
		bk, err := sys.Book(ms[0], req)
		if err == nil {
			if bk.Ride != ms[0].Ride {
				t.Fatal("booking references the wrong ride")
			}
			if bk.ShortestPathRuns > 4 {
				t.Fatalf("booking ran %d shortest paths", bk.ShortestPathRuns)
			}
		}
	}

	arrived, err := sys.Track(id, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !arrived {
		t.Fatal("ride should have arrived by the heat death of the universe")
	}
	if !sys.CompleteRide(id) {
		t.Fatal("completion failed")
	}
	if sys.NumRides() != 0 {
		t.Fatal("fleet not empty after completion")
	}
}

func TestSearchKFacade(t *testing.T) {
	sys, err := New(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	a := sys.RandomServablePoint(5)
	b := sys.RandomServablePoint(77)
	for i := 0; i < 5; i++ {
		if _, err := sys.CreateRide(RideOffer{Source: a, Dest: b, Departure: float64(1000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	req := Request{Source: a, Dest: b, EarliestDeparture: 0, LatestDeparture: 3600, WalkLimit: 1000}
	ms, err := sys.SearchK(req, 2)
	if err != nil && err != ErrNotServable {
		t.Fatal(err)
	}
	if len(ms) > 2 {
		t.Fatalf("SearchK(2) returned %d", len(ms))
	}
}

func TestTrackAllFacade(t *testing.T) {
	sys, err := New(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	a := sys.RandomServablePoint(3)
	b := sys.RandomServablePoint(44)
	if _, err := sys.CreateRide(RideOffer{Source: a, Dest: b, Departure: 0}); err != nil {
		t.Fatal(err)
	}
	done, err := sys.TrackAll(1e9)
	if err != nil {
		t.Fatal(err)
	}
	if done != 1 {
		t.Fatalf("TrackAll completed %d rides, want 1", done)
	}
}

func TestRandomServablePointDeterministic(t *testing.T) {
	sys, err := New(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sys.RandomServablePoint(7) != sys.RandomServablePoint(7) {
		t.Fatal("same seed must give the same point")
	}
	if sys.RandomServablePoint(7) == sys.RandomServablePoint(8) {
		t.Fatal("different seeds should differ")
	}
}

func TestFacadeCancelAndGeoJSON(t *testing.T) {
	sys, err := New(smallOptions())
	if err != nil {
		t.Fatal(err)
	}
	a := sys.RandomServablePoint(1)
	b := sys.RandomServablePoint(99)
	id, err := sys.CreateRide(RideOffer{Source: a, Dest: b, Departure: 1000, DetourLimit: 2500})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := sys.RouteGeoJSON(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc) == 0 || doc[0] != '{' {
		t.Fatal("GeoJSON not produced")
	}
	req := Request{Source: a, Dest: b, EarliestDeparture: 900, LatestDeparture: 2500, WalkLimit: 1000}
	ms, err := sys.Search(req)
	if err != nil && err != ErrNotServable {
		t.Fatal(err)
	}
	if len(ms) > 0 {
		bk, err := sys.Book(ms[0], req)
		if err == nil {
			if err := sys.CancelBooking(id, bk); err != nil {
				t.Fatalf("cancel: %v", err)
			}
		}
	}
	if m := sys.Metrics(); m.RidesCreated != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if sys.Engine() == nil {
		t.Fatal("engine accessor nil")
	}
	// GPS tracking through the facade.
	arrived, err := sys.TrackGPS(id, b)
	if err != nil {
		t.Fatal(err)
	}
	_ = arrived
}
