// Package xar is the public facade of the Xhare-a-Ride (XAR)
// reproduction: a search-optimized dynamic ride-sharing system with an
// additive approximation guarantee on detours (Thangaraj et al., ICDE
// 2017).
//
// The facade wires the full stack together — synthetic city generation,
// the three-tiered region discretization (grids → landmarks → clusters),
// the in-memory cluster index, and the run-time unit (create / search /
// book / track) — behind one System type:
//
//	sys, err := xar.New(xar.DefaultOptions())
//	id, err := sys.CreateRide(xar.RideOffer{Source: a, Dest: b, Departure: t})
//	matches, err := sys.Search(xar.Request{Source: p, Dest: q,
//	        EarliestDeparture: t, LatestDeparture: t + 900, WalkLimit: 800})
//	booking, err := sys.Book(matches[0], req)
//
// The type aliases re-export the domain types, so downstream code uses
// only this package. Deeper layers (baseline T-Share, the multi-modal
// trip planner, the simulation harness) live under internal/ and are
// exercised by the cmd/ binaries and benchmarks.
package xar

import (
	"fmt"

	"xar/internal/core"
	"xar/internal/discretize"
	"xar/internal/geo"
	"xar/internal/index"
	"xar/internal/memsize"
	"xar/internal/roadnet"
)

// Re-exported domain types.
type (
	// Point is a WGS-84 coordinate (latitude/longitude in degrees).
	Point = geo.Point
	// RideOffer describes a new ride: endpoints, departure time (seconds
	// since epoch), seats and the driver's detour tolerance in meters.
	RideOffer = core.RideOffer
	// Request is a ride request: endpoints, a departure time window and
	// a walking threshold.
	Request = core.Request
	// Match is one feasible ride option returned by Search.
	Match = core.Match
	// Booking is a confirmed reservation.
	Booking = core.Booking
	// RideID identifies a ride.
	RideID = index.RideID
)

// Re-exported sentinel errors.
var (
	ErrNotServable      = core.ErrNotServable
	ErrUnknownRide      = core.ErrUnknownRide
	ErrRideFull         = core.ErrRideFull
	ErrNoLongerFeasible = core.ErrNoLongerFeasible
	ErrDetourExceeded   = core.ErrDetourExceeded
	ErrUnreachable      = core.ErrUnreachable
)

// Options configures a System built over a synthetic city. For full
// control of every subsystem, use the internal packages from within this
// module (see cmd/ and examples/).
type Options struct {
	// CityRows and CityCols size the synthetic street lattice; Seed makes
	// the city deterministic.
	CityRows, CityCols int
	Seed               int64

	// GridCellSize is the lowest-tier grid edge in meters (paper: 100 m).
	GridCellSize float64
	// LandmarkMinSep is the paper's f: minimum landmark separation.
	LandmarkMinSep float64
	// MaxLandmarks caps landmark extraction (0 = no cap).
	MaxLandmarks int
	// Delta is the paper's δ; the clustering guarantees a worst-case
	// intra-cluster distance ε = 4δ.
	Delta float64
	// MaxDriveToLandmark is the paper's Δ: grid→landmark association cap.
	MaxDriveToLandmark float64
	// MaxWalk is the paper's W: the system-wide walking limit.
	MaxWalk float64

	// DefaultDetourLimit and DefaultSeats fill omitted offer fields.
	DefaultDetourLimit float64
	DefaultSeats       int
}

// DefaultOptions mirrors the paper's parameters at reproduction scale.
func DefaultOptions() Options {
	return Options{
		CityRows:           40,
		CityCols:           20,
		Seed:               1,
		GridCellSize:       100,
		LandmarkMinSep:     200,
		Delta:              250,
		MaxDriveToLandmark: 1000,
		MaxWalk:            1000,
		DefaultDetourLimit: 2000,
		DefaultSeats:       4,
	}
}

// System is a fully-assembled XAR deployment over a synthetic city.
type System struct {
	city   *roadnet.City
	disc   *discretize.Discretization
	engine *core.Engine
}

// New generates the city, runs the discretization pre-processing and
// starts the run-time unit.
func New(opts Options) (*System, error) {
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(opts.CityRows, opts.CityCols, opts.Seed))
	if err != nil {
		return nil, fmt.Errorf("xar: city generation: %w", err)
	}
	dcfg := discretize.DefaultConfig()
	if opts.GridCellSize > 0 {
		dcfg.GridCellSize = opts.GridCellSize
	}
	if opts.LandmarkMinSep > 0 {
		dcfg.LandmarkMinSep = opts.LandmarkMinSep
	}
	dcfg.MaxLandmarks = opts.MaxLandmarks
	if opts.Delta > 0 {
		dcfg.Delta = opts.Delta
	}
	if opts.MaxDriveToLandmark > 0 {
		dcfg.MaxDriveToLandmark = opts.MaxDriveToLandmark
	}
	if opts.MaxWalk > 0 {
		dcfg.MaxWalk = opts.MaxWalk
	}
	disc, err := discretize.Build(city, dcfg)
	if err != nil {
		return nil, fmt.Errorf("xar: discretization: %w", err)
	}
	ecfg := core.DefaultConfig()
	if opts.DefaultDetourLimit > 0 {
		ecfg.DefaultDetourLimit = opts.DefaultDetourLimit
	}
	if opts.DefaultSeats > 0 {
		ecfg.DefaultSeats = opts.DefaultSeats
	}
	engine, err := core.NewEngine(disc, ecfg)
	if err != nil {
		return nil, fmt.Errorf("xar: engine: %w", err)
	}
	return &System{city: city, disc: disc, engine: engine}, nil
}

// CreateRide registers a ride offer and returns its ID. This is one of
// the two points in a ride's life-cycle where a shortest path runs.
func (s *System) CreateRide(offer RideOffer) (RideID, error) {
	return s.engine.CreateRide(offer)
}

// Search returns all feasible matches for the request, sorted by total
// walking distance, without computing any shortest path.
func (s *System) Search(req Request) ([]Match, error) {
	return s.engine.Search(req)
}

// SearchK returns at most k matches (k <= 0 means all).
func (s *System) SearchK(req Request, k int) ([]Match, error) {
	return s.engine.SearchK(req, k)
}

// Book confirms a match, running at most four shortest paths.
func (s *System) Book(m Match, req Request) (Booking, error) {
	return s.engine.Book(m, req)
}

// Track advances a ride to the given time; it reports arrival.
func (s *System) Track(id RideID, now float64) (bool, error) {
	return s.engine.Track(id, now)
}

// TrackAll advances every ride, removing the completed ones.
func (s *System) TrackAll(now float64) (int, error) {
	return s.engine.TrackAll(now)
}

// CompleteRide removes a ride from the system.
func (s *System) CompleteRide(id RideID) bool {
	return s.engine.CompleteRide(id)
}

// NumRides returns the active fleet size.
func (s *System) NumRides() int { return s.engine.NumRides() }

// CancelBooking removes a confirmed booking (identified by its pickup
// and drop-off nodes from the Booking), returning the seat and restoring
// the detour budget.
func (s *System) CancelBooking(id RideID, b Booking) error {
	return s.engine.CancelBooking(id, b.PickupNode, b.DropoffNode)
}

// TrackGPS advances a ride from a GPS report; jittery reports never move
// the vehicle backwards.
func (s *System) TrackGPS(id RideID, report Point) (arrived bool, err error) {
	return s.engine.TrackPosition(id, report)
}

// Metrics returns the engine's cumulative operation counters.
func (s *System) Metrics() core.Metrics { return s.engine.Metrics() }

// RouteGeoJSON renders a ride's route and via-points as GeoJSON.
func (s *System) RouteGeoJSON(id RideID) ([]byte, error) {
	return s.engine.RouteGeoJSON(id)
}

// Engine exposes the underlying run-time unit for advanced integrations
// (HTTP serving, social ranking, batch search).
func (s *System) Engine() *core.Engine { return s.engine }

// Stats summarizes the deployment.
type Stats struct {
	Landmarks  int
	Clusters   int
	Epsilon    float64 // measured worst-case intra-cluster distance (≤ 4δ)
	RoadNodes  int
	RoadEdges  int
	IndexBytes uint64 // deep size of the in-memory index
}

// Stats reports the deployment's discretization and memory footprint.
func (s *System) Stats() Stats {
	return Stats{
		Landmarks:  len(s.disc.Landmarks),
		Clusters:   s.disc.NumClusters(),
		Epsilon:    s.disc.Epsilon(),
		RoadNodes:  s.city.Graph.NumNodes(),
		RoadEdges:  s.city.Graph.NumEdges(),
		IndexBytes: memsize.Of(s.engine.Index()),
	}
}

// RandomServablePoint returns a deterministic servable location derived
// from the seed — a convenience for examples and tests.
func (s *System) RandomServablePoint(seed int64) Point {
	box := s.city.Graph.BBox()
	// Simple SplitMix-style scramble for two coordinates.
	x := uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
	x ^= x >> 31
	fLat := float64(x%10000) / 10000
	x = x*0x94D049BB133111EB + 1
	x ^= x >> 29
	fLng := float64(x%10000) / 10000
	p := Point{
		Lat: box.MinLat + fLat*(box.MaxLat-box.MinLat),
		Lng: box.MinLng + fLng*(box.MaxLng-box.MinLng),
	}
	if s.disc.Servable(p) {
		return p
	}
	// Fall back to the nearest road node's location.
	n, _ := s.city.SnapToNode(p)
	return s.city.Graph.Point(n)
}
