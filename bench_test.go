// Benchmarks regenerating every table and figure of the paper's
// evaluation (§X). Each BenchmarkFigN* corresponds to an experiment in
// DESIGN.md's index (E1–E10); the cmd/xarbench binary prints the same
// rows with configurable scale. Ablation benchmarks quantify the design
// choices DESIGN.md calls out.
package xar

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xar/internal/audit"
	"xar/internal/cluster"
	"xar/internal/core"
	"xar/internal/experiments"
	"xar/internal/journal"
	"xar/internal/memsize"
	"xar/internal/profile"
	"xar/internal/quality"
	"xar/internal/roadnet"
	"xar/internal/sim"
	"xar/internal/telemetry"
	"xar/internal/workload"
)

var (
	benchOnce  sync.Once
	benchWorld *experiments.World
	benchErr   error
)

// world lazily builds the shared benchmark world: a mid-size city and
// trip stream reused across benchmarks.
func world(b *testing.B) *experiments.World {
	b.Helper()
	benchOnce.Do(func() {
		s := experiments.DefaultScale()
		s.CityRows = 30
		s.CityCols = 16
		s.Requests = 1500
		benchWorld, benchErr = experiments.BuildWorld(s)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchWorld
}

// seededXAR returns an XAR system preloaded with the world's offers.
func seededXAR(b *testing.B, w *experiments.World) (*sim.XARSystem, []workload.Trip) {
	b.Helper()
	eng, err := w.NewXAREngine()
	if err != nil {
		b.Fatal(err)
	}
	sys := &sim.XARSystem{Engine: eng}
	offers, requests := w.SplitOffersRequests()
	for _, o := range offers {
		_, _ = sys.Create(sim.Offer{
			Source: o.Pickup, Dest: o.Dropoff,
			Departure: o.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
		})
	}
	return sys, requests
}

func seededTShare(b *testing.B, w *experiments.World, haversine bool) (*sim.TShareSystem, []workload.Trip) {
	b.Helper()
	eng, err := w.NewTShare(haversine)
	if err != nil {
		b.Fatal(err)
	}
	sys := &sim.TShareSystem{Engine: eng}
	offers, requests := w.SplitOffersRequests()
	for _, o := range offers {
		_, _ = sys.Create(sim.Offer{
			Source: o.Pickup, Dest: o.Dropoff,
			Departure: o.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
		})
	}
	return sys, requests
}

func benchRequest(w *experiments.World, trips []workload.Trip, i int) sim.Request {
	t := trips[i%len(trips)]
	return sim.Request{
		Source: t.Pickup, Dest: t.Dropoff,
		Earliest: t.RequestTime, Latest: t.RequestTime + w.Scale.WindowSlack,
		WalkLimit: w.Scale.WalkLimit,
	}
}

// BenchmarkFig3aDetourQuality — E1: full simulation measuring the detour
// approximation-error CDF against the ε guarantee.
func BenchmarkFig3aDetourQuality(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3a(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FracUnder1E, "frac<=eps")
		b.ReportMetric(r.FracUnder2E, "frac<=2eps")
		b.ReportMetric(r.MaxError, "max_err_m")
	}
}

// BenchmarkFig3bClustersVsEpsilon — E2: cluster counts for an ε sweep.
func BenchmarkFig3bClustersVsEpsilon(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3b(w, []float64{500, 1000, 2000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Clusters), "clusters@eps500")
		b.ReportMetric(float64(rows[len(rows)-1].Clusters), "clusters@eps2000")
	}
}

// BenchmarkFig3cIndexMemory — E3: index bytes versus cluster count.
func BenchmarkFig3cIndexMemory(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3cd(w, []float64{800, 1600})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].IndexMB, "MB@fine")
		b.ReportMetric(rows[1].IndexMB, "MB@coarse")
	}
}

// BenchmarkFig3dSearchVsClusters — E4: search latency versus clusters.
func BenchmarkFig3dSearchVsClusters(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig3cd(w, []float64{800, 1600})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].SearchMeanMS, "ms@fine")
		b.ReportMetric(rows[1].SearchMeanMS, "ms@coarse")
	}
}

// BenchmarkFig4aSearchXAR / TShare — E5: per-search latency on a loaded
// system (the paper's headline comparison).
func BenchmarkFig4aSearchXAR(b *testing.B) {
	w := world(b)
	sys, requests := seededXAR(b, w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = sys.Search(benchRequest(w, requests, i), 0)
	}
}

func BenchmarkFig4aSearchTShare(b *testing.B) {
	w := world(b)
	sys, requests := seededTShare(b, w, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = sys.Search(benchRequest(w, requests, i), 0)
	}
}

// BenchmarkFig4bCreateXAR / TShare — E6: ride/taxi creation.
func BenchmarkFig4bCreateXAR(b *testing.B) {
	w := world(b)
	eng, err := w.NewXAREngine()
	if err != nil {
		b.Fatal(err)
	}
	sys := &sim.XARSystem{Engine: eng}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := w.Trips[i%len(w.Trips)]
		_, _ = sys.Create(sim.Offer{
			Source: t.Pickup, Dest: t.Dropoff,
			Departure: t.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
		})
	}
}

func BenchmarkFig4bCreateTShare(b *testing.B) {
	w := world(b)
	eng, err := w.NewTShare(false)
	if err != nil {
		b.Fatal(err)
	}
	sys := &sim.TShareSystem{Engine: eng}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := w.Trips[i%len(w.Trips)]
		_, _ = sys.Create(sim.Offer{
			Source: t.Pickup, Dest: t.Dropoff,
			Departure: t.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
		})
	}
}

// BenchmarkFig4cBookXAR / TShare — E7: booking a found match. Supply is
// self-sustaining per the §X-A2 protocol: a request with no match seeds
// a fresh offer (outside the timer), so bookings never run dry at large
// b.N.
func BenchmarkFig4cBookXAR(b *testing.B) {
	w := world(b)
	sys, requests := seededXAR(b, w)
	benchBookLoop(b, w, sys, requests)
}

func BenchmarkFig4cBookTShare(b *testing.B) {
	w := world(b)
	// Haversine candidate discovery keeps the (untimed) per-iteration
	// search cheap; Book itself always runs the real shortest-path
	// splice, which is what this benchmark measures.
	sys, requests := seededTShare(b, w, true)
	benchBookLoop(b, w, sys, requests)
}

func benchBookLoop(b *testing.B, w *experiments.World, sys sim.System, requests []workload.Trip) {
	b.Helper()
	booked := 0
	b.ResetTimer()
	for i := 0; booked < b.N; i++ {
		req := benchRequest(w, requests, i)
		b.StopTimer()
		cands, _ := sys.Search(req, 1)
		if len(cands) == 0 {
			// Become a driver, like the paper's simulation protocol.
			_, _ = sys.Create(sim.Offer{
				Source: req.Source, Dest: req.Dest,
				Departure: req.Earliest + (req.Latest-req.Earliest)/2,
				Seats:     4, DetourLimit: w.Scale.DetourLimit,
			})
			b.StartTimer()
			continue
		}
		b.StartTimer()
		if _, err := sys.Book(cands[0], req); err == nil {
			booked++
		}
	}
}

// BenchmarkFig5aSearchK — E8: search latency for k matches; XAR flat,
// T-Share (haversine mode) ~linear in k.
func BenchmarkFig5aSearchK_XAR_k1(b *testing.B)     { fig5aXAR(b, 1) }
func BenchmarkFig5aSearchK_XAR_k25(b *testing.B)    { fig5aXAR(b, 25) }
func BenchmarkFig5aSearchK_TShare_k1(b *testing.B)  { fig5aTShare(b, 1) }
func BenchmarkFig5aSearchK_TShare_k25(b *testing.B) { fig5aTShare(b, 25) }

func fig5aXAR(b *testing.B, k int) {
	w := world(b)
	sys, requests := seededXAR(b, w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = sys.Search(benchRequest(w, requests, i), k)
	}
}

func fig5aTShare(b *testing.B, k int) {
	w := world(b)
	sys, requests := seededTShare(b, w, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = sys.Search(benchRequest(w, requests, i), k)
	}
}

// BenchmarkFig5bLookToBook — E9: r searches + 1 booking attempt.
func BenchmarkFig5bLookToBook_XAR_r100(b *testing.B)    { fig5b(b, true, 100) }
func BenchmarkFig5bLookToBook_TShare_r100(b *testing.B) { fig5b(b, false, 100) }

func fig5b(b *testing.B, xar bool, ratio int) {
	w := world(b)
	var sys sim.System
	var requests []workload.Trip
	if xar {
		sys, requests = seededXAR(b, w)
	} else {
		sys, requests = seededTShare(b, w, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := benchRequest(w, requests, i)
		var cands []sim.Candidate
		for r := 0; r < ratio; r++ {
			cands, _ = sys.Search(req, 0)
		}
		for _, c := range cands {
			if _, err := sys.Book(c, req); err == nil {
				break
			}
		}
	}
}

// BenchmarkFig6Modes — E10: the four-mode comparison.
func BenchmarkFig6Modes(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(w)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range r.Modes {
			switch m.Mode {
			case "RS":
				b.ReportMetric(float64(m.Cars), "rs_cars")
			case "RS+PT":
				b.ReportMetric(float64(m.Cars), "rspt_cars")
			}
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationLinearScanList: by-ETA binary search vs linear scan
// of the potential-ride lists.
func BenchmarkAblationLinearScanList(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		row, err := experiments.AblationSortedLists(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.OnMeanMS, "sorted_ms")
		b.ReportMetric(row.OffMeanMS, "linear_ms")
	}
}

// BenchmarkAblationNoReachablePrecompute: reachable-cluster expansion at
// registration time vs pass-through-only indexing.
func BenchmarkAblationNoReachablePrecompute(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		row, err := experiments.AblationReachablePrecompute(w)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(row.OnMatches), "matches_on")
		b.ReportMetric(float64(row.OffMatches), "matches_off")
	}
}

// BenchmarkAblationGreedySearchLinear: the paper's log₂ n binary search
// over k vs a linear scan k = 1, 2, 3, … (both call GREEDY).
func BenchmarkAblationGreedySearchLinear(b *testing.B) {
	w := world(b)
	n := len(w.Disc.Landmarks)
	dist := func(i, j int) float64 {
		a := w.Disc.LandmarkDist(i, j)
		if bd := w.Disc.LandmarkDist(j, i); bd > a {
			return bd
		}
		return a
	}
	delta := w.Scale.Epsilon / 4

	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cluster.GreedySearch(n, dist, delta); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			found := false
			for k := 1; k <= n; k++ {
				res, err := cluster.Greedy(n, dist, k)
				if err != nil {
					b.Fatal(err)
				}
				if res.Radius <= 2*delta {
					found = true
					break
				}
			}
			if !found {
				b.Fatal("linear scan found no feasible k")
			}
		}
	})
}

// BenchmarkAblationBookingFullReroute: XAR's ≤4-shortest-path splice vs
// naively recomputing the whole route via every via-point. The splice
// cost is dominated by its ≤4 shortest paths; the naive full reroute of
// a ride with 10 accumulated via-points runs one shortest path per
// consecutive pair (11). Both patterns are measured on the road graph.
func BenchmarkAblationBookingFullReroute(b *testing.B) {
	w := world(b)
	g := w.City.Graph
	s := roadnet.NewSearcher(g)
	rng := rand.New(rand.NewSource(7))
	nodes := make([]roadnet.NodeID, 12)
	for i := range nodes {
		nodes[i] = roadnet.NodeID(rng.Intn(g.NumNodes()))
	}
	b.Run("splice4paths", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < 4; j++ {
				_ = s.ShortestPath(nodes[j], nodes[j+1])
			}
		}
	})
	b.Run("fullreroute11paths", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j+1 < len(nodes); j++ {
				_ = s.ShortestPath(nodes[j], nodes[j+1])
			}
		}
	})
}

// BenchmarkSearchTelemetry quantifies the observability overhead on the
// search hot path: the same loaded system with engine telemetry off
// (nil registry — a single pointer check per op) and on (op + stage
// histograms recorded per search). The acceptance budget is ≤5%.
func BenchmarkSearchTelemetry(b *testing.B) {
	w := world(b)
	run := func(b *testing.B, reg *telemetry.Registry) {
		ecfg := core.DefaultConfig()
		ecfg.DefaultDetourLimit = w.Scale.DetourLimit
		ecfg.Telemetry = reg
		eng, err := core.NewEngine(w.Disc, ecfg)
		if err != nil {
			b.Fatal(err)
		}
		sys := &sim.XARSystem{Engine: eng}
		offers, requests := w.SplitOffersRequests()
		for _, o := range offers {
			_, _ = sys.Create(sim.Offer{
				Source: o.Pickup, Dest: o.Dropoff,
				Departure: o.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
			})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = sys.Search(benchRequest(w, requests, i), 0)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("on", func(b *testing.B) { run(b, telemetry.NewRegistry()) })
}

// BenchmarkSearchTracing quantifies the request-tracing overhead on the
// same loaded search path: off (nil tracer — one nil check per op), the
// head-sampling curve (1-in-16/32/64; the per-trace span cost amortizes
// across unsampled calls, plus a cold-cache penalty the sparser tiers
// pay per trace), and always-on (every search builds its full span
// tree). Budgets: off within 5% of BenchmarkSearchTelemetry/off, and
// the production default (1-in-64, xarserver -trace-sample) within 10%.
func BenchmarkSearchTracing(b *testing.B) {
	w := world(b)
	run := func(b *testing.B, tr *telemetry.Tracer) {
		ecfg := core.DefaultConfig()
		ecfg.DefaultDetourLimit = w.Scale.DetourLimit
		ecfg.Telemetry = telemetry.NewRegistry()
		ecfg.Tracer = tr
		eng, err := core.NewEngine(w.Disc, ecfg)
		if err != nil {
			b.Fatal(err)
		}
		sys := &sim.XARSystem{Engine: eng}
		offers, requests := w.SplitOffersRequests()
		for _, o := range offers {
			_, _ = sys.Create(sim.Offer{
				Source: o.Pickup, Dest: o.Dropoff,
				Departure: o.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
			})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = sys.Search(benchRequest(w, requests, i), 0)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("head16", func(b *testing.B) {
		run(b, telemetry.NewTracer(telemetry.TracerConfig{SampleRate: 16}))
	})
	b.Run("head32", func(b *testing.B) {
		run(b, telemetry.NewTracer(telemetry.TracerConfig{SampleRate: 32}))
	})
	b.Run("head64", func(b *testing.B) {
		run(b, telemetry.NewTracer(telemetry.TracerConfig{SampleRate: 64}))
	})
	b.Run("always", func(b *testing.B) {
		run(b, telemetry.NewTracer(telemetry.TracerConfig{SampleRate: 1}))
	})
}

// BenchmarkSearchRecorder quantifies the flight recorder's effect on the
// search hot path: the instrumented engine alone ("off") versus the same
// engine while a recorder snapshots the registry concurrently at an
// aggressive 5 ms cadence ("on" — 2000× the production 10 s default, an
// upper bound on snapshot interference). The recorder reads the same
// atomics the hot path writes but takes no locks the hot path touches,
// so the budget is the usual ≤5%.
func BenchmarkSearchRecorder(b *testing.B) {
	w := world(b)
	run := func(b *testing.B, withRecorder bool) {
		reg := telemetry.NewRegistry()
		ecfg := core.DefaultConfig()
		ecfg.DefaultDetourLimit = w.Scale.DetourLimit
		ecfg.Telemetry = reg
		eng, err := core.NewEngine(w.Disc, ecfg)
		if err != nil {
			b.Fatal(err)
		}
		if withRecorder {
			rec := telemetry.NewRecorder(reg, telemetry.RecorderConfig{
				Interval:  5 * time.Millisecond,
				Retention: 10 * time.Second,
			})
			rec.Start()
			defer rec.Stop()
		}
		sys := &sim.XARSystem{Engine: eng}
		offers, requests := w.SplitOffersRequests()
		for _, o := range offers {
			_, _ = sys.Create(sim.Offer{
				Source: o.Pickup, Dest: o.Dropoff,
				Departure: o.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
			})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = sys.Search(benchRequest(w, requests, i), 0)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false) })
	b.Run("on", func(b *testing.B) { run(b, true) })
}

// BenchmarkSearchThroughput measures sustained search QPS on a loaded
// index — the headline capability for MMTP integration (≤50 ms per
// enhanced search, §IX-B).
func BenchmarkSearchThroughput(b *testing.B) {
	w := world(b)
	sys, requests := seededXAR(b, w)
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = sys.Search(benchRequest(w, requests, i), 0)
	}
	b.StopTimer()
	if b.N > 0 {
		qps := float64(b.N) / time.Since(start).Seconds()
		b.ReportMetric(qps, "searches/s")
	}
}

// seededConcurrentXAR builds an XAR system with the concurrent engine
// configuration — a striped ride index (16 shards) — preloaded with the
// world's offers. The parallel benchmarks measure THIS configuration:
// its single-threaded throughput already includes the per-shard visit
// cost of the striped search, so the procs1 row is the honest baseline
// the scaling curve divides by.
func seededConcurrentXAR(b *testing.B, w *experiments.World) (*sim.XARSystem, []workload.Trip) {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.DefaultDetourLimit = w.Scale.DetourLimit
	cfg.IndexShards = 16
	eng, err := core.NewEngine(w.Disc, cfg)
	if err != nil {
		b.Fatal(err)
	}
	sys := &sim.XARSystem{Engine: eng}
	offers, requests := w.SplitOffersRequests()
	for _, o := range offers {
		_, _ = sys.Create(sim.Offer{
			Source: o.Pickup, Dest: o.Dropoff,
			Departure: o.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
		})
	}
	return sys, requests
}

// BenchmarkSearchThroughputParallel drives concurrent searches against
// the striped engine with b.RunParallel at GOMAXPROCS ∈ {1, 4, 8}. On
// multi-core hardware the searches/s metric should scale near-linearly
// with procs (reads take only brief per-shard RLocks); the measured
// curve is recorded in BENCH_parallel.json.
func BenchmarkSearchThroughputParallel(b *testing.B) {
	w := world(b)
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("procs%d", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			sys, requests := seededConcurrentXAR(b, w)
			var ctr atomic.Int64
			start := time.Now()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(ctr.Add(1))
					_, _ = sys.Search(benchRequest(w, requests, i), 0)
				}
			})
			b.StopTimer()
			if b.N > 0 {
				qps := float64(b.N) / time.Since(start).Seconds()
				b.ReportMetric(qps, "searches/s")
			}
		})
	}
}

// BenchmarkSearchJournal quantifies the event-journal overhead on the
// search hot path: off (nil journal — one pointer check per op), on (the
// engine records lifecycle events; search-candidate emission rides the
// existing 1-in-32 telemetry sample), and on+audit (a background auditor
// additionally sweeps every 50 ms — 600× the production 30 s cadence, an
// upper bound on sweep interference). The acceptance budget is ≤5%,
// recorded in BENCH_audit.json.
func BenchmarkSearchJournal(b *testing.B) {
	w := world(b)
	run := func(b *testing.B, jr *journal.Journal, withAuditor bool) {
		ecfg := core.DefaultConfig()
		ecfg.DefaultDetourLimit = w.Scale.DetourLimit
		ecfg.Telemetry = telemetry.NewRegistry()
		ecfg.Journal = jr
		eng, err := core.NewEngine(w.Disc, ecfg)
		if err != nil {
			b.Fatal(err)
		}
		if withAuditor {
			a := audit.New(audit.Config{
				Target: audit.Target{
					View:    eng.Index(),
					Graph:   w.City.Graph,
					Epsilon: w.Disc.Epsilon(),
					Journal: jr,
				},
				Interval: 50 * time.Millisecond,
				Logger:   slog.New(slog.NewTextHandler(io.Discard, nil)),
			})
			a.Start()
			defer a.Stop()
		}
		sys := &sim.XARSystem{Engine: eng}
		offers, requests := w.SplitOffersRequests()
		for _, o := range offers {
			_, _ = sys.Create(sim.Offer{
				Source: o.Pickup, Dest: o.Dropoff,
				Departure: o.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
			})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _ = sys.Search(benchRequest(w, requests, i), 0)
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil, false) })
	b.Run("on", func(b *testing.B) { run(b, journal.New(journal.Config{}), false) })
	b.Run("onAudit", func(b *testing.B) { run(b, journal.New(journal.Config{}), true) })
}

// runSearchQuality drives the loaded search path with the given
// match-quality configuration — the shared body of
// BenchmarkSearchQuality and the bench-quality-smoke CI fence.
func runSearchQuality(b *testing.B, qc *quality.Collector, shadowRate int) {
	w := world(b)
	ecfg := core.DefaultConfig()
	ecfg.DefaultDetourLimit = w.Scale.DetourLimit
	ecfg.Telemetry = telemetry.NewRegistry()
	ecfg.Quality = qc
	ecfg.ShadowSampleRate = shadowRate
	eng, err := core.NewEngine(w.Disc, ecfg)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	sys := &sim.XARSystem{Engine: eng}
	offers, requests := w.SplitOffersRequests()
	for _, o := range offers {
		_, _ = sys.Create(sim.Offer{
			Source: o.Pickup, Dest: o.Dropoff,
			Departure: o.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = sys.Search(benchRequest(w, requests, i), 0)
	}
}

// BenchmarkSearchQuality quantifies the match-quality accounting
// overhead on the loaded search hot path: the instrumented engine with
// no collector ("off" — one nil check per search), the funnel +
// approximation-gap collector ("on" — per-stage counts accumulate in a
// stack array alongside checks the search already runs and fold into
// atomics once per search), and the collector plus the shadow
// counterfactual matcher at the production 1-in-8 sample ("onShadow" —
// no-match offers are enqueue-or-drop behind a bounded channel, so the
// request path never blocks on the shadow worker). The acceptance
// budget for off vs on is ≤5% (BENCH_quality.json).
func BenchmarkSearchQuality(b *testing.B) {
	b.Run("off", func(b *testing.B) { runSearchQuality(b, nil, 0) })
	b.Run("on", func(b *testing.B) { runSearchQuality(b, quality.New(nil), 0) })
	b.Run("onShadow", func(b *testing.B) { runSearchQuality(b, quality.New(nil), 8) })
}

// TestSearchQualityOverheadSmoke is the fence behind `make
// bench-quality-smoke`: it interleaves the off and on arms of
// BenchmarkSearchQuality and fails when the funnel accounting slows
// the loaded search path past a generous 25%. The real ≤5% budget is
// judged on same-batch medians from quiet hardware and recorded in
// BENCH_quality.json (whose committed numbers the schema test
// re-checks); the smoke fence is loose because shared CI runners drift
// ±15% between batches (see the hardware notes in BENCH_audit.json).
// It exists to catch a structural regression — an O(candidates)
// allocation or a lock added to the hot path reads as 2x, not 1.05x.
// Gated behind XAR_QUALITY_SMOKE=1 so `go test ./...` stays fast.
func TestSearchQualityOverheadSmoke(t *testing.T) {
	if os.Getenv("XAR_QUALITY_SMOKE") == "" {
		t.Skip("set XAR_QUALITY_SMOKE=1 to run the quality overhead fence")
	}
	const rounds = 3
	best := func(samples []float64) float64 {
		m := math.MaxFloat64
		for _, s := range samples {
			if s < m {
				m = s
			}
		}
		return m
	}
	var offs, ons []float64
	for i := 0; i < rounds; i++ {
		off := testing.Benchmark(func(b *testing.B) { runSearchQuality(b, nil, 0) })
		on := testing.Benchmark(func(b *testing.B) { runSearchQuality(b, quality.New(nil), 0) })
		offs = append(offs, float64(off.NsPerOp()))
		ons = append(ons, float64(on.NsPerOp()))
	}
	offNs, onNs := best(offs), best(ons)
	t.Logf("search ns/op: quality off %.0f, on %.0f (%+.1f%%)", offNs, onNs, 100*(onNs-offNs)/offNs)
	if onNs > offNs*1.25 {
		t.Errorf("quality accounting slows search by %.1f%% (off %.0f ns/op, on %.0f ns/op) — past the 25%% smoke fence",
			100*(onNs-offNs)/offNs, offNs, onNs)
	}
}

// runSearchMemsize drives the loaded search path with or without memory
// accounting — the shared body of BenchmarkSearchMemsize and the
// bench-memory-smoke CI fence. The "on" arm runs the background sweeper
// at a 1 ms requested cadence (30,000× the production 30 s default); the
// duty-cycle throttle then re-sweeps as fast as its ≤1%-of-one-core
// budget allows, making this an upper bound on sweep interference.
func runSearchMemsize(b *testing.B, withAccounting bool) {
	w := world(b)
	ecfg := core.DefaultConfig()
	ecfg.DefaultDetourLimit = w.Scale.DetourLimit
	ecfg.Telemetry = telemetry.NewRegistry()
	if withAccounting {
		ecfg.Memory = memsize.NewRegistry()
		ecfg.MemSweepInterval = time.Millisecond
	}
	eng, err := core.NewEngine(w.Disc, ecfg)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	sys := &sim.XARSystem{Engine: eng}
	offers, requests := w.SplitOffersRequests()
	for _, o := range offers {
		_, _ = sys.Create(sim.Offer{
			Source: o.Pickup, Dest: o.Dropoff,
			Departure: o.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = sys.Search(benchRequest(w, requests, i), 0)
	}
}

// BenchmarkSearchMemsize quantifies the memory-accounting overhead on
// the loaded search hot path: no registry ("off" — a nil check at
// construction, nothing per op), versus full component accounting with
// the background sweeper duty-cycling as fast as its budget allows
// ("on"). The sweep takes per-component locks one component at a time —
// per-shard read locks on the index, ring mutexes on the journal — so
// the hot path only ever contends briefly with one shard's walk. The
// acceptance budget is ≤5% (BENCH_memory.json).
func BenchmarkSearchMemsize(b *testing.B) {
	b.Run("off", func(b *testing.B) { runSearchMemsize(b, false) })
	b.Run("on", func(b *testing.B) { runSearchMemsize(b, true) })
}

// TestMemorySweepOverheadSmoke is the fence behind `make
// bench-memory-smoke`: it interleaves the off and on arms of
// BenchmarkSearchMemsize and fails when continuous sweeping slows the
// loaded search path past a generous 25% (the real ≤5% budget is judged
// on same-batch medians from quiet hardware and recorded in
// BENCH_memory.json; shared CI runners drift ±15% between batches). It
// then checks accounting coverage: on a loaded engine, the component
// byte total must land within 20% of the live Go heap after a GC —
// the acceptance criterion that the registry explains where the
// process's memory actually is.
// Gated behind XAR_MEMORY_SMOKE=1 so `go test ./...` stays fast.
func TestMemorySweepOverheadSmoke(t *testing.T) {
	if os.Getenv("XAR_MEMORY_SMOKE") == "" {
		t.Skip("set XAR_MEMORY_SMOKE=1 to run the memory sweep overhead fence")
	}
	const rounds = 3
	best := func(samples []float64) float64 {
		m := math.MaxFloat64
		for _, s := range samples {
			if s < m {
				m = s
			}
		}
		return m
	}
	var offs, ons []float64
	for i := 0; i < rounds; i++ {
		off := testing.Benchmark(func(b *testing.B) { runSearchMemsize(b, false) })
		on := testing.Benchmark(func(b *testing.B) { runSearchMemsize(b, true) })
		offs = append(offs, float64(off.NsPerOp()))
		ons = append(ons, float64(on.NsPerOp()))
	}
	offNs, onNs := best(offs), best(ons)
	t.Logf("search ns/op: accounting off %.0f, on %.0f (%+.1f%%)", offNs, onNs, 100*(onNs-offNs)/offNs)
	if onNs > offNs*1.25 {
		t.Errorf("memory accounting slows search by %.1f%% (off %.0f ns/op, on %.0f ns/op) — past the 25%% smoke fence",
			100*(onNs-offNs)/offNs, offNs, onNs)
	}

	// Coverage: a loaded accounting engine's tracked component total must
	// explain the live heap within 20% once transient garbage is swept.
	w := benchWorld
	ecfg := core.DefaultConfig()
	ecfg.DefaultDetourLimit = w.Scale.DetourLimit
	ecfg.Memory = memsize.NewRegistry()
	ecfg.Journal = journal.New(journal.Config{})
	eng, err := core.NewEngine(w.Disc, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sys := &sim.XARSystem{Engine: eng}
	for _, trip := range w.Trips {
		_, _ = sys.Create(sim.Offer{
			Source: trip.Pickup, Dest: trip.Dropoff,
			Departure: trip.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
		})
	}
	runtime.GC()
	rep := eng.MemSweep()
	if rep == nil {
		t.Fatal("MemSweep returned nil")
	}
	ratio := rep.Heap.TrackedCoverageRatio
	t.Logf("coverage: %d components, tracked %.1f MB, heap alloc %.1f MB (ratio %.2f)",
		len(rep.Components), float64(rep.TrackedTotalBytes)/(1<<20),
		float64(rep.Heap.HeapAllocBytes)/(1<<20), ratio)
	if len(rep.Components) < 4 {
		t.Errorf("only %d components on the coverage engine", len(rep.Components))
	}
	if ratio < 0.80 || ratio > 1.20 {
		t.Errorf("tracked components cover %.0f%% of the live heap, want within 20%% (tracked %d bytes, heap %d)",
			100*ratio, rep.TrackedTotalBytes, rep.Heap.HeapAllocBytes)
	}
}

// runSearchProfiling drives the loaded search path with or without the
// continuous profiler — the shared body of BenchmarkSearchProfiling and
// the bench-profile-smoke CI fence. The "on" arm requests a 1 ms
// cadence (60,000× the production 60 s default), so the capture loop
// runs as hot as its duty-cycle floors allow: the CPU sampling window
// at its full ≤10%-of-wall budget and the fold work at its ≤1%-of-core
// budget. The window is shortened to 50 ms so one duty cycle completes
// every ~450 ms — several per bench round — and the measured op sees
// the steady-state duty shares rather than a coin flip on whether the
// production-length 1 s window happened to blanket the timed region.
func runSearchProfiling(b *testing.B, withProfiler bool) {
	w := world(b)
	ecfg := core.DefaultConfig()
	ecfg.DefaultDetourLimit = w.Scale.DetourLimit
	ecfg.Telemetry = telemetry.NewRegistry()
	if withProfiler {
		ecfg.Profiling = profile.New(profile.Config{Registry: ecfg.Telemetry, CPUWindow: 50 * time.Millisecond})
		ecfg.ProfileInterval = time.Millisecond
	}
	eng, err := core.NewEngine(w.Disc, ecfg)
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	sys := &sim.XARSystem{Engine: eng}
	offers, requests := w.SplitOffersRequests()
	for _, o := range offers {
		_, _ = sys.Create(sim.Offer{
			Source: o.Pickup, Dest: o.Dropoff,
			Departure: o.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = sys.Search(benchRequest(w, requests, i), 0)
	}
}

// BenchmarkSearchProfiling quantifies the continuous profiler's
// overhead on the loaded search hot path: no profiler ("off" — a nil
// check at construction, nothing per op) versus the capture worker
// duty-cycling as fast as its ≤1%-of-one-core budget allows with CPU
// sampling, heap/alloc deltas, and mutex/block folds all enabled
// ("on"). The acceptance budget is ≤5% (BENCH_profile.json).
func BenchmarkSearchProfiling(b *testing.B) {
	b.Run("off", func(b *testing.B) { runSearchProfiling(b, false) })
	b.Run("on", func(b *testing.B) { runSearchProfiling(b, true) })
}

// TestSearchProfilingOverheadSmoke is the fence behind `make
// bench-profile-smoke`: it interleaves the off and on arms of
// BenchmarkSearchProfiling and fails when always-on profiling slows
// the loaded search path past a generous 25% (the real ≤5% budget is
// judged on same-batch medians from quiet hardware and recorded in
// BENCH_profile.json; shared CI runners drift ±15% between batches).
// It then asserts the profiler actually worked during the bench: a
// capture-bearing engine must report every delta kind and a sane
// overhead gauge, or the "on" arm was measuring a no-op.
// Gated behind XAR_PROFILE_SMOKE=1 so `go test ./...` stays fast.
func TestSearchProfilingOverheadSmoke(t *testing.T) {
	if os.Getenv("XAR_PROFILE_SMOKE") == "" {
		t.Skip("set XAR_PROFILE_SMOKE=1 to run the profiling overhead fence")
	}
	const rounds = 3
	best := func(samples []float64) float64 {
		m := math.MaxFloat64
		for _, s := range samples {
			if s < m {
				m = s
			}
		}
		return m
	}
	var offs, ons []float64
	for i := 0; i < rounds; i++ {
		off := testing.Benchmark(func(b *testing.B) { runSearchProfiling(b, false) })
		on := testing.Benchmark(func(b *testing.B) { runSearchProfiling(b, true) })
		offs = append(offs, float64(off.NsPerOp()))
		ons = append(ons, float64(on.NsPerOp()))
	}
	offNs, onNs := best(offs), best(ons)
	t.Logf("search ns/op: profiler off %.0f, on %.0f (%+.1f%%)", offNs, onNs, 100*(onNs-offNs)/offNs)
	if onNs > offNs*1.25 {
		t.Errorf("continuous profiling slows search by %.1f%% (off %.0f ns/op, on %.0f ns/op) — past the 25%% smoke fence",
			100*(onNs-offNs)/offNs, offNs, onNs)
	}

	// Liveness: a profiler under load must produce captures carrying
	// every delta kind, and its self-reported overhead must respect
	// the duty-cycle budget (generous 5% fence on the ≤1% target —
	// the gauge excludes the passive CPU window by design).
	w := benchWorld
	reg := telemetry.NewRegistry()
	ecfg := core.DefaultConfig()
	ecfg.DefaultDetourLimit = w.Scale.DetourLimit
	ecfg.Telemetry = reg
	ecfg.Profiling = profile.New(profile.Config{Registry: reg, CPUWindow: 50 * time.Millisecond})
	ecfg.ProfileInterval = time.Millisecond
	eng, err := core.NewEngine(w.Disc, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sys := &sim.XARSystem{Engine: eng}
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		_, _ = sys.Search(benchRequest(w, w.Trips, i), 0)
		if c, ok := eng.Profiler().Newest(); ok && c.ID >= 2 {
			break
		}
	}
	c, ok := eng.Profiler().Newest()
	if !ok || c.ID < 2 {
		t.Fatal("profiler produced fewer than 2 captures under 10 s of load")
	}
	for _, kind := range []string{profile.KindHeapInuse, profile.KindHeapAlloc, profile.KindMutex, profile.KindBlock} {
		if c.Folded(kind) == nil {
			t.Errorf("capture %d missing %s fold", c.ID, kind)
		}
	}
	if n := reg.Counter(profile.CapturesTotalName, "", nil).Value(); n < 2 {
		t.Errorf("%s = %v, want >= 2", profile.CapturesTotalName, n)
	}
	if ratio := reg.Gauge(profile.OverheadRatioName, "", nil).Value(); ratio > 0.05 {
		t.Errorf("profiler self-reported overhead %.3f past the 5%% fence (duty-cycle target is 1%%)", ratio)
	}
}

// BenchmarkMixedWorkloadJournal is the journal's contention benchmark:
// the mixed create/search/book stream of BenchmarkMixedWorkloadParallel
// at GOMAXPROCS 8, with the journal off versus on (every create and book
// appends into the striped event rings from all goroutines). Recording
// takes one stripe lock per event — ride ring and tail share live behind
// the same mutex — so there is no journal-wide serialization point. The
// ≤5% budget is enforced on the serial search path (BenchmarkSearchJournal);
// here the on/off delta is reported, not budgeted: on a single-core CI VM
// the 8-goroutine stream's variance is dominated by preemption churn
// (asyncPreempt alone profiles at ~13% CPU) and journal.Record itself
// profiles under 1%. The onAudit variant adds a background sweeper at a
// 1 s cadence (30× production): each sweep re-derives every live ride's
// detour bound with a full path-length recomputation, so its cost scales
// with the fleet the benchmark has accumulated — a batch cost the cadence
// amortizes, reported here rather than budgeted.
func BenchmarkMixedWorkloadJournal(b *testing.B) {
	w := world(b)
	run := func(b *testing.B, jr *journal.Journal, withAuditor bool) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
		cfg := core.DefaultConfig()
		cfg.DefaultDetourLimit = w.Scale.DetourLimit
		cfg.IndexShards = 16
		cfg.Journal = jr
		eng, err := core.NewEngine(w.Disc, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if withAuditor {
			a := audit.New(audit.Config{
				Target: audit.Target{
					View:    eng.Index(),
					Graph:   w.City.Graph,
					Epsilon: w.Disc.Epsilon(),
					Journal: jr,
				},
				Interval: time.Second,
				Logger:   slog.New(slog.NewTextHandler(io.Discard, nil)),
			})
			a.Start()
			defer a.Stop()
		}
		sys := &sim.XARSystem{Engine: eng}
		offers, requests := w.SplitOffersRequests()
		for _, o := range offers {
			_, _ = sys.Create(sim.Offer{
				Source: o.Pickup, Dest: o.Dropoff,
				Departure: o.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
			})
		}
		var ctr atomic.Int64
		start := time.Now()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(ctr.Add(1))
				if i%16 == 0 {
					o := offers[i%len(offers)]
					_, _ = sys.Create(sim.Offer{
						Source: o.Pickup, Dest: o.Dropoff,
						Departure: o.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
					})
					continue
				}
				req := benchRequest(w, requests, i)
				cs, err := sys.Search(req, 0)
				if err == nil && len(cs) > 0 && i%8 == 0 {
					_, _ = sys.Book(cs[0], req)
				}
			}
		})
		b.StopTimer()
		if b.N > 0 {
			qps := float64(b.N) / time.Since(start).Seconds()
			b.ReportMetric(qps, "ops/s")
		}
	}
	b.Run("off", func(b *testing.B) { run(b, nil, false) })
	b.Run("on", func(b *testing.B) { run(b, journal.New(journal.Config{}), false) })
	b.Run("onAudit", func(b *testing.B) { run(b, journal.New(journal.Config{}), true) })
}

// BenchmarkMixedWorkloadParallel is the contention benchmark: concurrent
// goroutines issue a mixed stream — 1 create per 16 operations, a
// booking attempt after 1 in 8 successful searches, searches otherwise —
// so shard write locks, the optimistic book-commit path and pooled
// path-searchers are all exercised together under b.RunParallel.
func BenchmarkMixedWorkloadParallel(b *testing.B) {
	w := world(b)
	for _, procs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("procs%d", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			sys, requests := seededConcurrentXAR(b, w)
			offers, _ := w.SplitOffersRequests()
			var ctr atomic.Int64
			start := time.Now()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(ctr.Add(1))
					if i%16 == 0 {
						o := offers[i%len(offers)]
						_, _ = sys.Create(sim.Offer{
							Source: o.Pickup, Dest: o.Dropoff,
							Departure: o.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
						})
						continue
					}
					req := benchRequest(w, requests, i)
					cs, err := sys.Search(req, 0)
					if err == nil && len(cs) > 0 && i%8 == 0 {
						_, _ = sys.Book(cs[0], req)
					}
				}
			})
			b.StopTimer()
			if b.N > 0 {
				qps := float64(b.N) / time.Since(start).Seconds()
				b.ReportMetric(qps, "ops/s")
			}
		})
	}
}
