// Schema checks over the committed BENCH_*.json artifacts. The bench
// records are hand-curated measurement documents (see OBSERVABILITY.md
// "Overhead budgets"); this test keeps them machine-readable — a
// malformed edit fails CI instead of silently breaking whatever tooling
// parses them next — and re-verifies that the numbers recorded for the
// quality funnel actually meet the budget the docs claim.
package xar

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestBenchArtifactSchemas(t *testing.T) {
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no BENCH_*.json artifacts found — run from the repo root")
	}
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		var doc map[string]json.RawMessage
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Errorf("%s: not a JSON object: %v", p, err)
			continue
		}
		if len(doc) == 0 {
			t.Errorf("%s: empty document", p)
			continue
		}
		// The hand-written overhead records (vs the tool-emitted frontier
		// and CH reports) all carry provenance: a description, the
		// measurement date, and the hardware it was measured on.
		if _, ok := doc["description"]; !ok {
			continue
		}
		var date string
		if err := json.Unmarshal(doc["date"], &date); err != nil {
			t.Errorf("%s: date is not a string: %v", p, err)
		} else if _, err := time.Parse("2006-01-02", date); err != nil {
			t.Errorf("%s: date %q is not YYYY-MM-DD", p, date)
		}
		var hw map[string]any
		if err := json.Unmarshal(doc["hardware"], &hw); err != nil || len(hw) == 0 {
			t.Errorf("%s: hardware block missing or empty", p)
		}
	}
}

// TestQualityBenchRecordMeetsBudget parses the committed
// BENCH_quality.json and re-checks the acceptance criterion it records:
// the BenchmarkSearchQuality off-vs-on same-batch delta is within the
// ≤5% observability budget. The live-measurement counterpart is the
// bench-quality-smoke CI fence (TestSearchQualityOverheadSmoke).
func TestQualityBenchRecordMeetsBudget(t *testing.T) {
	raw, err := os.ReadFile("BENCH_quality.json")
	if err != nil {
		t.Fatalf("BENCH_quality.json must be committed alongside the quality layer: %v", err)
	}
	var doc struct {
		Bench struct {
			Off struct {
				Ns float64 `json:"ns_per_op"`
			} `json:"off"`
			On struct {
				Ns float64 `json:"ns_per_op"`
			} `json:"on"`
			OnShadow struct {
				Ns float64 `json:"ns_per_op"`
			} `json:"onShadow"`
		} `json:"BenchmarkSearchQuality"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_quality.json: %v", err)
	}
	off, on := doc.Bench.Off.Ns, doc.Bench.On.Ns
	if off <= 0 || on <= 0 || doc.Bench.OnShadow.Ns <= 0 {
		t.Fatalf("BENCH_quality.json: BenchmarkSearchQuality off/on/onShadow ns_per_op must all be recorded and positive (got %v/%v/%v)",
			off, on, doc.Bench.OnShadow.Ns)
	}
	if on > off*1.05 {
		t.Errorf("recorded quality overhead is %.1f%% (off %.0f ns/op, on %.0f ns/op) — the committed record violates the ≤5%% budget it documents",
			100*(on-off)/off, off, on)
	}
}

// TestMemoryBenchRecordMeetsBudget parses the committed
// BENCH_memory.json and re-checks the acceptance criterion it records:
// BenchmarkSearchMemsize with the accounting sweeper running stays
// within the ≤5% search hot-path budget. The live-measurement
// counterpart is the bench-memory-smoke CI fence
// (TestMemorySweepOverheadSmoke).
func TestMemoryBenchRecordMeetsBudget(t *testing.T) {
	raw, err := os.ReadFile("BENCH_memory.json")
	if err != nil {
		t.Fatalf("BENCH_memory.json must be committed alongside the memory-accounting layer: %v", err)
	}
	var doc struct {
		Bench struct {
			Off struct {
				Ns float64 `json:"ns_per_op"`
			} `json:"off"`
			On struct {
				Ns float64 `json:"ns_per_op"`
			} `json:"on"`
		} `json:"BenchmarkSearchMemsize"`
		Coverage struct {
			Ratio float64 `json:"tracked_coverage_ratio"`
		} `json:"coverage"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_memory.json: %v", err)
	}
	off, on := doc.Bench.Off.Ns, doc.Bench.On.Ns
	if off <= 0 || on <= 0 {
		t.Fatalf("BENCH_memory.json: BenchmarkSearchMemsize off/on ns_per_op must both be recorded and positive (got %v/%v)", off, on)
	}
	if on > off*1.05 {
		t.Errorf("recorded memory-accounting overhead is %.1f%% (off %.0f ns/op, on %.0f ns/op) — the committed record violates the ≤5%% budget it documents",
			100*(on-off)/off, off, on)
	}
	// The coverage acceptance criterion: tracked components explain the
	// live heap within 20%.
	if r := doc.Coverage.Ratio; r < 0.80 || r > 1.20 {
		t.Errorf("recorded tracked_coverage_ratio %.2f outside the 20%% acceptance fence", r)
	}
}

// TestProfileBenchRecordMeetsBudget parses the committed
// BENCH_profile.json and re-checks the acceptance criterion it records:
// BenchmarkSearchProfiling with the continuous profiler duty-cycling at
// its floors stays within the ≤5% search hot-path budget. The
// live-measurement counterpart is the bench-profile-smoke CI fence
// (TestSearchProfilingOverheadSmoke).
func TestProfileBenchRecordMeetsBudget(t *testing.T) {
	raw, err := os.ReadFile("BENCH_profile.json")
	if err != nil {
		t.Fatalf("BENCH_profile.json must be committed alongside the continuous-profiling layer: %v", err)
	}
	var doc struct {
		Bench struct {
			Off struct {
				Ns float64 `json:"ns_per_op"`
			} `json:"off"`
			On struct {
				Ns float64 `json:"ns_per_op"`
			} `json:"on"`
		} `json:"BenchmarkSearchProfiling"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_profile.json: %v", err)
	}
	off, on := doc.Bench.Off.Ns, doc.Bench.On.Ns
	if off <= 0 || on <= 0 {
		t.Fatalf("BENCH_profile.json: BenchmarkSearchProfiling off/on ns_per_op must both be recorded and positive (got %v/%v)", off, on)
	}
	if on > off*1.05 {
		t.Errorf("recorded continuous-profiling overhead is %.1f%% (off %.0f ns/op, on %.0f ns/op) — the committed record violates the ≤5%% budget it documents",
			100*(on-off)/off, off, on)
	}
}

// TestTrajectoryArtifactSchema keeps the committed longitudinal
// trajectory (BENCH_trajectory.json, emitted by `make bench-trend` /
// cmd/xarperf) machine-readable: right schema tag, non-empty benchmark
// map, and every series carrying a direction and at least one point.
// The numbers themselves are judged by the perftrend gate, not here.
func TestTrajectoryArtifactSchema(t *testing.T) {
	raw, err := os.ReadFile("BENCH_trajectory.json")
	if err != nil {
		t.Fatalf("BENCH_trajectory.json must be committed alongside the perf-trend sentinel (regenerate with `make bench-trend`): %v", err)
	}
	var doc struct {
		Schema     string `json:"schema"`
		Benchmarks map[string]map[string]struct {
			Direction string `json:"direction"`
			Min       *float64
			Max       *float64
			Points    []struct {
				Source string  `json:"source"`
				Value  float64 `json:"value"`
			} `json:"points"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_trajectory.json: %v", err)
	}
	if doc.Schema != "xar-bench-trend/v1" {
		t.Fatalf("schema = %q, want xar-bench-trend/v1", doc.Schema)
	}
	if len(doc.Benchmarks) == 0 {
		t.Fatal("trajectory records no benchmarks")
	}
	for bench, byMetric := range doc.Benchmarks {
		for metric, s := range byMetric {
			if s.Direction == "" {
				t.Errorf("%s %s: missing direction", bench, metric)
			}
			if len(s.Points) == 0 {
				t.Errorf("%s %s: series has no points", bench, metric)
			}
			for _, p := range s.Points {
				if p.Source == "" {
					t.Errorf("%s %s: point without a source artifact", bench, metric)
				}
			}
		}
	}
}
