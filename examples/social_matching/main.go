// Social matching: the paper motivates returning multiple matches per
// request so that "rides offered by people in the social network graph
// of the requester can be given higher priority while listing the
// options" (§VII). This example builds a small friendship graph, offers
// rides from friends and strangers along the same corridor, and shows
// the socially-ranked option list a requester would see.
//
//	go run ./examples/social_matching
package main

import (
	"fmt"
	"log"

	"xar/internal/core"
	"xar/internal/discretize"
	"xar/internal/roadnet"
)

func main() {
	log.SetFlags(0)

	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(30, 16, 5))
	if err != nil {
		log.Fatal(err)
	}
	disc, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(disc, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// The cast: Ada (requester), her friend Grace, Grace's friend Edsger,
	// and two strangers.
	const (
		ada    core.UserID = 1
		grace  core.UserID = 2
		edsger core.UserID = 3
		s1     core.UserID = 100
		s2     core.UserID = 101
	)
	social := core.NewSocialGraph()
	social.AddFriendship(ada, grace)
	social.AddFriendship(grace, edsger)

	names := map[core.UserID]string{
		grace: "Grace (friend)", edsger: "Edsger (friend-of-friend)",
		s1: "stranger #1", s2: "stranger #2",
	}

	// Five drivers offer near-identical rides across town.
	g := city.Graph
	from := g.Point(0)
	to := g.Point(roadnet.NodeID(g.NumNodes() - 1))
	owners := []core.UserID{s1, grace, s2, edsger}
	rideOwner := map[int64]core.UserID{}
	for i, owner := range owners {
		id, err := eng.CreateRide(core.RideOffer{
			Source: from, Dest: to,
			Departure:   28800 + float64(i*30),
			DetourLimit: 2000,
			Owner:       owner,
		})
		if err != nil {
			log.Fatal(err)
		}
		rideOwner[int64(id)] = owner
	}

	// Ada requests a ride along the corridor.
	r := eng.Ride(1)
	mid := func(frac float64) core.Request {
		idx := int(frac * float64(len(r.Route)-1))
		return core.Request{
			Source:            g.Point(r.Route[idx]),
			Dest:              g.Point(r.Route[len(r.Route)*4/5]),
			EarliestDeparture: 28000,
			LatestDeparture:   31000,
			WalkLimit:         900,
		}
	}
	req := mid(0.25)
	matches, err := eng.Search(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search returned %d matches (sorted by walking distance):\n", len(matches))
	for i, m := range matches {
		fmt.Printf("  %d. ride %d by %-26s walk %.0f m\n",
			i+1, m.Ride, names[rideOwner[int64(m.Ride)]], m.TotalWalk())
	}

	ranked := eng.RankSocially(matches, ada, social)
	fmt.Printf("\nsocially ranked for Ada (friends first, then friends-of-friends):\n")
	for i, m := range ranked {
		dist := social.Distance(ada, rideOwner[int64(m.Ride)], core.SocialRankDepth)
		hop := map[int]string{1: "friend", 2: "friend-of-friend", 3: "stranger"}[dist]
		if hop == "" {
			hop = "stranger"
		}
		fmt.Printf("  %d. ride %d by %-26s (%s), walk %.0f m\n",
			i+1, m.Ride, names[rideOwner[int64(m.Ride)]], hop, m.TotalWalk())
	}
	if len(ranked) > 0 {
		fmt.Printf("\nAda books the top option and rides with %s.\n",
			names[rideOwner[int64(ranked[0].Ride)]])
	}
}
