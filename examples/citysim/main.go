// Citysim: replay a synthetic morning of NYC-shaped taxi demand through
// the XAR system with the paper's simulation protocol (§X-A2) — search
// first, book the least-walk match, otherwise become a driver — and
// report fleet economics: how many cars a sharing city needs, how far
// riders walk, and how well the ε detour guarantee holds up.
//
//	go run ./examples/citysim
package main

import (
	"fmt"
	"log"
	"time"

	"xar/internal/core"
	"xar/internal/discretize"
	"xar/internal/roadnet"
	"xar/internal/sim"
	"xar/internal/workload"
)

func main() {
	log.SetFlags(0)

	// A mid-size city: ~40 streets by 20 avenues of Manhattan-like blocks.
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(40, 20, 2024))
	if err != nil {
		log.Fatal(err)
	}
	disc, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(disc, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %.1f x %.1f km, %d landmarks, %d clusters, ε = %.0f m\n",
		city.Graph.BBox().WidthMeters()/1000, city.Graph.BBox().HeightMeters()/1000,
		len(disc.Landmarks), disc.NumClusters(), disc.Epsilon())

	// Morning rush: 6,000 trips between 7:00 and 10:00, midtown-heavy.
	wcfg := workload.DefaultConfig(6000, 7)
	wcfg.StartHour = 7
	wcfg.EndHour = 10
	trips, err := workload.Generate(city, wcfg)
	if err != nil {
		log.Fatal(err)
	}
	ws := workload.Summarize(trips)
	fmt.Printf("demand: %d trips, median length %.1f km, peak hour %dh (%.0f%% of demand)\n\n",
		ws.N, ws.MedianDist/1000, ws.PeakHour, 100*ws.PeakHourFrac)

	start := time.Now()
	res, err := sim.Run(&sim.XARSystem{Engine: eng}, trips, sim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("simulated the morning in %v (%.0f requests/s)\n\n",
		elapsed.Round(time.Millisecond), float64(res.Requests)/elapsed.Seconds())
	fmt.Printf("requests:           %d\n", res.Requests)
	fmt.Printf("shared a ride:      %d (%.1f%%)\n", res.Matched, 100*res.MatchRate())
	fmt.Printf("drove (cars used):  %d — %.1f%% fewer cars than everyone driving\n",
		res.Created, 100*(1-float64(res.Created)/float64(res.Requests)))
	fmt.Printf("stale bookings:     %d (match changed between search and book)\n\n", res.FailedBooks)

	fmt.Printf("latency — search: %s\n", res.SearchTimes.Summary("ms"))
	fmt.Printf("latency — create: %s\n", res.CreateTimes.Summary("ms"))
	fmt.Printf("latency — book:   %s\n\n", res.BookTimes.Summary("ms"))

	eps := disc.Epsilon()
	fmt.Printf("detour approximation error vs guarantee (ε = %.0f m):\n", eps)
	fmt.Printf("  ≤ ε:  %.2f%%   ≤ 2ε: %.2f%%   ≤ 4ε: %.2f%% (theoretical bound)\n",
		100*res.ApproxErrors.CDF(eps), 100*res.ApproxErrors.CDF(2*eps), 100*res.ApproxErrors.CDF(4*eps))
	fmt.Printf("  worst observed error: %.0f m\n\n", res.ApproxErrors.Max())

	fmt.Printf("rider walking (limit %.0f m): %s\n",
		sim.DefaultConfig().WalkLimit, res.Walks.Summary("m"))
	fmt.Printf("booking detours: %s\n", res.Detours.Summary("m"))
}
