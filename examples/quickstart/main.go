// Quickstart: stand up a XAR deployment over a synthetic city, offer a
// ride, search for matches without any shortest-path computation, book
// the best one, and track the vehicle to completion.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xar"
)

func main() {
	log.SetFlags(0)

	// 1. Build the system: city generation + three-tier discretization
	// (grids → landmarks → clusters) + the in-memory ride index.
	sys, err := xar.New(xar.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("deployment: %d road nodes, %d landmarks, %d clusters\n",
		st.RoadNodes, st.Landmarks, st.Clusters)
	fmt.Printf("approximation guarantee: ε = %.0f m (theoretical bound 4δ)\n\n", st.Epsilon)

	// 2. A driver offers a ride across town at t = 8:00 (28800 s),
	// accepting up to 2 km of detour to pick up co-riders. Pick the two
	// most distant of a handful of servable points so the ride crosses
	// the city.
	from, to := sys.RandomServablePoint(1), sys.RandomServablePoint(2)
	best := 0.0
	for i := int64(1); i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			a, b := sys.RandomServablePoint(i), sys.RandomServablePoint(j)
			d := (a.Lat-b.Lat)*(a.Lat-b.Lat) + (a.Lng-b.Lng)*(a.Lng-b.Lng)
			if d > best {
				best, from, to = d, a, b
			}
		}
	}
	rideID, err := sys.CreateRide(xar.RideOffer{
		Source:      from,
		Dest:        to,
		Departure:   28800,
		Seats:       4,
		DetourLimit: 2000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ride %d offered: %s → %s\n\n", rideID, from, to)

	// 3. A commuter near the route requests a ride in the 8:00–8:20
	// window, willing to walk up to 800 m in total.
	req := xar.Request{
		Source:            xar.Point{Lat: from.Lat + (to.Lat-from.Lat)*0.3, Lng: from.Lng + (to.Lng-from.Lng)*0.3},
		Dest:              xar.Point{Lat: from.Lat + (to.Lat-from.Lat)*0.8, Lng: from.Lng + (to.Lng-from.Lng)*0.8},
		EarliestDeparture: 28800,
		LatestDeparture:   30000,
		WalkLimit:         800,
	}
	matches, err := sys.Search(req)
	if err == xar.ErrNotServable {
		log.Fatal("request location outside the discretized region")
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search returned %d match(es) — no shortest path was computed\n", len(matches))
	for i, m := range matches {
		fmt.Printf("  match %d: ride %d, walk %.0f m, est. detour %.0f m, pickup ETA %.0f s\n",
			i, m.Ride, m.TotalWalk(), m.DetourEstimate, m.PickupETA)
	}
	if len(matches) == 0 {
		fmt.Println("no match this time; the commuter would offer their own ride instead")
		return
	}

	// 4. Book the best (least-walk) match. Booking runs the only
	// shortest paths of the transaction — at most four.
	booking, err := sys.Book(matches[0], req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbooked ride %d:\n", booking.Ride)
	fmt.Printf("  walk to pickup landmark %d: %.0f m\n", booking.PickupLandmark, booking.WalkSource)
	fmt.Printf("  exact detour %.0f m (index estimated %.0f m, error %.0f m ≤ 4ε = %.0f m)\n",
		booking.DetourActual, booking.DetourEstimate, booking.ApproxError(), 4*st.Epsilon)
	fmt.Printf("  shortest paths computed: %d (paper bound: 4)\n", booking.ShortestPathRuns)

	// 5. Track the vehicle: clusters behind it stop offering the ride.
	for t := 28800.0; ; t += 300 {
		arrived, err := sys.Track(rideID, t)
		if err != nil {
			log.Fatal(err)
		}
		if arrived {
			fmt.Printf("\nride %d arrived at t=%.0f s\n", rideID, t)
			break
		}
	}
	sys.CompleteRide(rideID)
	fmt.Printf("fleet size after completion: %d\n", sys.NumRides())
}
