// MMTP integration: plan a commute on public transport with the
// multi-modal trip planner, then improve it with XAR ride sharing using
// the paper's two integration modes (§IX) — Aider (fix infeasible
// segments) and Enhancer (replace segment combinations to cut hops).
//
//	go run ./examples/mmtp_integration
package main

import (
	"fmt"
	"log"

	"xar/internal/core"
	"xar/internal/discretize"
	"xar/internal/geo"
	"xar/internal/mmtp"
	"xar/internal/roadnet"
	"xar/internal/transit"
	"xar/internal/workload"
)

func main() {
	log.SetFlags(0)

	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(40, 20, 7))
	if err != nil {
		log.Fatal(err)
	}
	net, err := transit.Generate(city, transit.DefaultGenConfig())
	if err != nil {
		log.Fatal(err)
	}
	planner, err := mmtp.NewPlanner(net, mmtp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transit network: %d stops, %d route directions\n", len(net.Stops), len(net.Routes))

	// Stand up XAR and seed it with morning ride offers so the planner
	// has a supply to draw on.
	disc, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	eng, err := core.NewEngine(disc, core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	wcfg := workload.DefaultConfig(1500, 8)
	wcfg.StartHour = 7.5
	wcfg.EndHour = 9
	offers, err := workload.Generate(city, wcfg)
	if err != nil {
		log.Fatal(err)
	}
	seeded := 0
	for _, o := range offers {
		if _, err := eng.CreateRide(core.RideOffer{
			Source: o.Pickup, Dest: o.Dropoff,
			Departure: o.RequestTime, DetourLimit: 3000,
		}); err == nil {
			seeded++
		}
	}
	fmt.Printf("XAR fleet seeded with %d ride offers\n\n", seeded)

	// A commuter crossing the city at 8:00.
	box := city.Graph.BBox()
	src := geo.Point{Lat: box.MinLat + 0.05*(box.MaxLat-box.MinLat), Lng: box.MinLng + 0.1*(box.MaxLng-box.MinLng)}
	dst := geo.Point{Lat: box.MinLat + 0.95*(box.MaxLat-box.MinLat), Lng: box.MinLng + 0.9*(box.MaxLng-box.MinLng)}

	it, err := planner.Plan(src, dst, 8*3600)
	if err != nil {
		log.Fatal(err)
	}
	if it == nil {
		log.Fatal("no transit plan found")
	}
	fmt.Println("— public-transport plan —")
	printItinerary(it)

	// Aider mode: replace infeasible segments (walk > 1 km or wait > 10
	// min) with shared rides.
	aid, err := mmtp.Aider(it, eng, mmtp.DefaultIntegrationConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n— aider mode: %d infeasible segment(s), %d replaced by shared rides (%d searches) —\n",
		aid.Infeasible, aid.Replaced, aid.Searches)
	printItinerary(aid.Itinerary)

	// Enhancer mode: try shared rides over C(k+1,2) hop combinations.
	enh, err := mmtp.Enhancer(it, eng, mmtp.DefaultIntegrationConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n— enhancer mode: %d searches, improved=%v, hops %d → %d —\n",
		enh.Searches, enh.Improved, enh.HopsBefore, enh.HopsAfter)
	printItinerary(enh.Itinerary)
}

func printItinerary(it *mmtp.Itinerary) {
	for i, l := range it.Legs {
		desc := l.RouteName
		if l.Mode == mmtp.LegWalk {
			desc = fmt.Sprintf("%.0f m", l.Distance)
		}
		wait := ""
		if l.Wait > 0 {
			wait = fmt.Sprintf(" (wait %.1f min)", l.Wait/60)
		}
		fmt.Printf("  %d. %-9s %-22s %7.1f → %7.1f min%s\n",
			i+1, l.Mode, desc, (l.Start-it.Depart)/60, (l.End-it.Depart)/60, wait)
	}
	fmt.Printf("  total: %.1f min travel, %.1f min walking, %.1f min waiting, %d hop(s)\n",
		it.TravelTime()/60, it.WalkTime()/60, it.WaitTime()/60, it.Hops())
}
