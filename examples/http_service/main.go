// HTTP service: run the XAR platform as the JSON service a multi-modal
// trip planner would integrate with (§IX), then drive it as a client —
// create a ride, run a batch search (the MMTP's C(k+1,2) pattern), book
// the best option and fetch the route as GeoJSON. The service runs with
// the full observability stack on: structured access logs on stderr and
// a Prometheus scrape printed at shutdown.
//
//	go run ./examples/http_service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"xar/internal/core"
	"xar/internal/discretize"
	"xar/internal/roadnet"
	"xar/internal/server"
	"xar/internal/telemetry"
)

func main() {
	log.SetFlags(0)

	// Stand the service up in-process on an ephemeral port, with
	// telemetry shared between the engine and the HTTP layer and a
	// structured access log so every request below is visible.
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(30, 16, 11))
	if err != nil {
		log.Fatal(err)
	}
	disc, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ecfg := core.DefaultConfig()
	ecfg.Telemetry = reg
	eng, err := core.NewEngine(disc, ecfg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	accessLog := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := &http.Server{Handler: server.New(eng, core.NewSocialGraph(),
		server.WithTelemetry(reg), server.WithAccessLog(accessLog)).Handler()}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("XAR service listening on %s\n\n", base)

	// Health check.
	var health server.HealthResponse
	mustGet(base+"/v1/healthz", &health)
	fmt.Printf("healthz: %s — %d landmarks, %d clusters, ε = %.0f m\n\n",
		health.Status, health.Landmarks, health.Clusters, health.EpsilonM)

	// A driver posts a ride across the city.
	g := city.Graph
	src := server.PointJSON{Lat: g.Point(0).Lat, Lng: g.Point(0).Lng}
	last := g.Point(roadnet.NodeID(g.NumNodes() - 1))
	dst := server.PointJSON{Lat: last.Lat, Lng: last.Lng}
	var created server.CreateRideResponse
	mustPost(base+"/v1/rides", server.CreateRideRequest{
		Source: src, Dest: dst, Departure: 28800, DetourLimit: 2500,
	}, &created)
	fmt.Printf("driver created ride %d\n", created.RideID)

	// An MMTP fires a batch of segment searches for one trip plan.
	ride := eng.Ride(1)
	seg := func(a, b float64) server.SearchRequest {
		pa := g.Point(ride.Route[int(a*float64(len(ride.Route)-1))])
		pb := g.Point(ride.Route[int(b*float64(len(ride.Route)-1))])
		return server.SearchRequest{
			Source:   server.PointJSON{Lat: pa.Lat, Lng: pa.Lng},
			Dest:     server.PointJSON{Lat: pb.Lat, Lng: pb.Lng},
			Earliest: 28000, Latest: 31000, WalkLimit: 900,
		}
	}
	batch := server.BatchSearchRequest{
		Requests: []server.SearchRequest{seg(0.1, 0.5), seg(0.2, 0.8), seg(0.4, 0.9)},
		K:        3,
	}
	var results server.BatchSearchResponse
	start := time.Now()
	mustPost(base+"/v1/search/batch", batch, &results)
	fmt.Printf("batch of %d segment searches served in %v:\n",
		len(batch.Requests), time.Since(start).Round(time.Microsecond))
	var best *server.MatchJSON
	for i, r := range results.Results {
		fmt.Printf("  segment %d: %d matches\n", i+1, len(r.Matches))
		if len(r.Matches) > 0 && best == nil {
			best = &results.Results[i].Matches[0]
			batch.Requests[i].K = 0
		}
	}
	if best == nil {
		fmt.Println("no matches; try another seed")
		return
	}

	// Book the best option.
	var booking server.BookingJSON
	mustPost(base+"/v1/bookings", server.BookRequest{
		Match:   *best,
		Request: batch.Requests[0],
	}, &booking)
	fmt.Printf("\nbooked ride %d: walk %.0f m, detour %.0f m, %d shortest paths (≤ 4)\n",
		booking.RideID, booking.WalkSourceM+booking.WalkDestM,
		booking.DetourM, booking.ShortestPaths)

	// Fetch the updated route as GeoJSON for the map view.
	resp, err := http.Get(fmt.Sprintf("%s/v1/rides/%d/route", base, booking.RideID))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Features []json.RawMessage `json:"features"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route GeoJSON: %d features (1 LineString + %d via-points)\n",
		len(doc.Features), len(doc.Features)-1)

	// Metrics after the session.
	var metrics core.Metrics
	mustGet(base+"/v1/metrics", &metrics)
	fmt.Printf("\nservice metrics: %d searches, %d rides, %d bookings, %d shortest paths total\n",
		metrics.Searches, metrics.RidesCreated, metrics.Bookings, metrics.ShortestPaths)

	// Shutdown scrape: what a Prometheus server would have collected.
	// Keep the xar_* series (op/stage/HTTP histograms); the full dump
	// also carries go_* runtime gauges when enabled.
	resp, err = http.Get(base + "/v1/metrics/prom")
	if err != nil {
		log.Fatal(err)
	}
	prom, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal /v1/metrics/prom scrape (xar_* series):")
	for _, line := range strings.Split(string(prom), "\n") {
		if strings.Contains(line, "xar_") {
			fmt.Println("  " + line)
		}
	}
}

func mustGet(url string, out interface{}) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func mustPost(url string, body, out interface{}) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}
