// Command xardiscretize runs the XAR pre-processing pipeline in
// isolation (§IV–V): city generation, landmark extraction, GREEDYSEARCH
// clustering, and the grid/landmark/cluster association tables. It
// prints the discretization statistics and, with -sweep, the ε sweep of
// Figure 3b.
//
//	xardiscretize -rows 40 -cols 22 -eps 1000
//	xardiscretize -sweep
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"xar/internal/cluster"
	"xar/internal/discretize"
	"xar/internal/landmark"
	"xar/internal/memsize"
	"xar/internal/roadnet"
	"xar/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xardiscretize: ")

	rows := flag.Int("rows", 40, "city lattice rows")
	cols := flag.Int("cols", 22, "city lattice columns")
	seed := flag.Int64("seed", 42, "random seed")
	eps := flag.Float64("eps", 1000, "epsilon (= 4δ) in meters")
	minSep := flag.Float64("f", 200, "minimum landmark separation f in meters")
	maxDrive := flag.Float64("delta-drive", 1000, "max grid→landmark driving distance Δ")
	maxWalk := flag.Float64("walk", 1000, "system walking limit W")
	sweep := flag.Bool("sweep", false, "sweep ε and print cluster counts (Fig 3b)")
	trace := flag.Bool("trace", false, "print the GREEDYSEARCH binary-search trace")
	saveTo := flag.String("save", "", "write the graph+discretization artifact to this file")
	loadFrom := flag.String("load", "", "load a previously saved artifact instead of building")
	buildCH := flag.Bool("ch", false, "also run contraction-hierarchy preprocessing over the road graph")
	chOut := flag.String("ch-out", "", "write the CH artifact to this file (implies -ch)")
	chBudget := flag.Duration("ch-budget", 0, "CH preprocessing time budget (0 = unbudgeted)")
	chCore := flag.Int("ch-core", 0, "CH core size: top nodes covered by the exact distance table (0 = default)")
	flag.Parse()

	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(*rows, *cols, *seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("city: %d nodes, %d edges, %.1f x %.1f km\n",
		city.Graph.NumNodes(), city.Graph.NumEdges(),
		city.Graph.BBox().WidthMeters()/1000, city.Graph.BBox().HeightMeters()/1000)

	if *chOut != "" {
		*buildCH = true
	}
	if *buildCH {
		ch, err := roadnet.BuildCH(city.Graph, roadnet.CHConfig{Budget: *chBudget, CoreSize: *chCore})
		if err != nil {
			log.Fatal(err)
		}
		k := ch.CoreSize()
		fmt.Printf("CH preprocessing in %v: %d shortcuts, %d search arcs, core %d (distance table %.1f MB)\n",
			ch.BuildTime().Round(time.Millisecond), ch.NumShortcuts(), ch.NumArcs(),
			k, float64(k)*float64(k)*12/(1<<20))
		if *chOut != "" {
			f, err := os.Create(*chOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := ch.SaveCH(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("saved CH artifact to %s\n", *chOut)
		}
	}

	if *loadFrom != "" {
		f, err := os.Open(*loadFrom)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		start := time.Now()
		d, err := discretize.Load(f, city)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded artifact in %v: %d landmarks, %d clusters, ε=%.0f m\n",
			time.Since(start).Round(time.Millisecond),
			len(d.Landmarks), d.NumClusters(), d.Epsilon())
		return
	}

	epsilons := []float64{*eps}
	if *sweep {
		epsilons = []float64{400, 600, 800, 1000, 1400, 2000, 2800, 4000}
	}

	table := stats.NewTable("eps_m", "landmarks", "clusters", "measured_eps_m", "disc_bytes", "build")
	for _, e := range epsilons {
		cfg := discretize.DefaultConfig()
		cfg.Delta = e / 4
		cfg.LandmarkMinSep = *minSep
		cfg.MaxDriveToLandmark = *maxDrive
		cfg.MaxWalk = *maxWalk

		start := time.Now()
		d, err := discretize.Build(city, cfg)
		if err != nil {
			log.Fatal(err)
		}
		build := time.Since(start)
		table.AddRow(e, len(d.Landmarks), d.NumClusters(), d.Epsilon(),
			int64(memsize.Of(d)), build.Round(time.Millisecond).String())

		if *saveTo != "" && !*sweep {
			f, err := os.Create(*saveTo)
			if err != nil {
				log.Fatal(err)
			}
			if err := d.Save(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("saved discretization artifact to %s\n", *saveTo)
		}

		if *trace {
			lms, err := landmark.Extract(city.Graph, landmark.Config{MinSeparation: *minSep})
			if err != nil {
				log.Fatal(err)
			}
			dist := func(i, j int) float64 {
				a := d.LandmarkDist(i, j)
				if b := d.LandmarkDist(j, i); b > a {
					return b
				}
				return a
			}
			_ = lms
			_, tr, err := cluster.GreedySearch(len(d.Landmarks), dist, e/4)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("GREEDYSEARCH trace for ε=%.0f (δ=%.0f):\n", e, e/4)
			for _, probe := range tr {
				feasible := "infeasible"
				if probe.Radius <= 2*(e/4) {
					feasible = "feasible"
				}
				fmt.Printf("  k=%-5d radius=%-8.1f %s\n", probe.K, probe.Radius, feasible)
			}
		}
	}
	fmt.Print(table.String())
}
