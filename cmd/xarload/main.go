// Command xarload is the open-loop, coordinated-omission-safe load
// generator. It drives either an in-process engine (wrapped in the same
// HTTP server xarserver runs, so the full JSON path is measured) or a
// remote server, on a fixed arrival schedule, sweeping a rate ladder to
// produce the throughput/latency/memory frontier:
//
//	xarload                             # default sweep, writes BENCH_scale.json
//	xarload -rates 200,500,1000,2000    # explicit rate ladder (ops/s)
//	xarload -mode http -target http://host:8080   # drive a live server
//	xarload -darp a2-16.txt             # replay a Cordeau DARP instance
//	xarload -gate-p99-ms 50 -gate-match-rate 0.05  # exit 1 on regression
//
// Latency is measured from each operation's *intended* send time on the
// precomputed schedule, so a stalled server is charged the queueing
// delay it caused instead of quietly pausing the generator (see
// internal/load's package comment on coordinated omission). Each rate
// step records client-side quantiles, the server's own histogram view
// over the same window (cross-check), heap/RSS plus memsize-derived
// rides-per-GB, and the step's hottest allocation/contention symbols
// from the continuous profiler (-profile=false disables).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"xar/internal/core"
	"xar/internal/experiments"
	"xar/internal/load"
	"xar/internal/memsize"
	"xar/internal/profile"
	"xar/internal/quality"
	"xar/internal/server"
	"xar/internal/telemetry"
	"xar/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xarload: ")

	var (
		rows     = flag.Int("rows", 40, "city lattice rows (streets)")
		cols     = flag.Int("cols", 22, "city lattice columns (avenues)")
		requests = flag.Int("requests", 4000, "trip stream length")
		eps      = flag.Float64("eps", 1000, "epsilon in meters")
		seed     = flag.Int64("seed", 42, "random seed (world, schedules, op draws)")

		mode    = flag.String("mode", "server", "target: engine (in-process core.Engine), server (in-process HTTP server), http (remote server at -target)")
		target  = flag.String("target", "", "base URL for -mode http, e.g. http://localhost:8080")
		darp    = flag.String("darp", "", "drive a Cordeau DARP instance file instead of the synthetic workload (coordinates are mapped into the generated city)")
		ratesF  = flag.String("rates", "200,500,1000,2000,4000", "comma-separated offered rates to sweep, ops/second")
		opsPer  = flag.Int("ops-per-step", 2000, "arrivals per rate step")
		warmup  = flag.Int("warmup", 500, "unrecorded warmup arrivals before the sweep")
		arrival = flag.String("arrival", "poisson", "arrival process: poisson|constant")
		mixF    = flag.String("mix", "", "op mix, e.g. search=0.7,book=0.15,create=0.1,track=0.04,cancel=0.01 (empty = default)")
		infl    = flag.Int("inflight", 0, "max concurrently outstanding ops (0 = unbounded open loop)")
		out     = flag.String("out", "BENCH_scale.json", "frontier output path (\"-\" = stdout)")

		qualityF     = flag.Bool("quality", false, "collect the match-quality funnel during the sweep (engine/server modes) and log the summary after it")
		shadowSample = flag.Int("shadow-sample", 8, "with -quality, shadow-match 1-in-N no-match requests and bookings (0 disables the shadow matcher)")
		profileF     = flag.Bool("profile", true, "attribute each step's allocations/contention to their hottest symbols in BENCH_scale.json and log a post-run top-5 (engine/server modes)")

		gateP99   = flag.Float64("gate-p99-ms", 0, "fail (exit 1) if the lowest-rate step's client p99 exceeds this many ms (0 = no gate)")
		gateMatch = flag.Float64("gate-match-rate", 0, "fail if any step's match rate drops below this (0 = no gate)")
		gateErrs  = flag.Int64("gate-errors", 0, "fail if harness errors across the sweep exceed this")
	)
	flag.Parse()

	rates, err := parseRates(*ratesF)
	if err != nil {
		log.Fatal(err)
	}
	mix := load.DefaultMix()
	if *mixF != "" {
		if mix, err = load.ParseMix(*mixF); err != nil {
			log.Fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	scale := experiments.DefaultScale()
	scale.CityRows, scale.CityCols = *rows, *cols
	scale.Requests = *requests
	scale.Epsilon = *eps
	scale.Seed = *seed

	log.Printf("building world (%dx%d, %d trips, eps %.0f m)...", *rows, *cols, *requests, *eps)
	world, err := experiments.BuildWorld(scale)
	if err != nil {
		log.Fatal(err)
	}
	if *darp != "" {
		f, err := os.Open(*darp)
		if err != nil {
			log.Fatal(err)
		}
		inst, err := workload.ReadDARP(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		world.Trips = inst.MapToBBox(world.City.Graph.BBox())
		log.Printf("loaded DARP instance: %d requests, |K|=%d, Q=%d",
			inst.Requests, inst.Vehicles, inst.Capacity)
	}

	cfg := load.SweepConfig{
		Rates:       rates,
		OpsPerStep:  *opsPer,
		Arrival:     *arrival,
		Mix:         mix,
		Seed:        *seed,
		MaxInflight: *infl,
		WarmupOps:   *warmup,
		Logf:        log.Printf,
	}

	var (
		tgt     load.Target
		eng     *core.Engine
		baseURL string
		httpCl  = (*load.HTTPTarget)(nil)
		rec     *telemetry.Recorder
		prof    *profile.Profiler
	)
	switch *mode {
	case "engine", "server":
		reg := telemetry.NewRegistry()
		telemetry.RegisterRuntimeMetrics(reg)
		world.Telemetry = reg
		if *qualityF {
			world.Quality = quality.New(reg)
			world.ShadowSampleRate = *shadowSample
		}
		// Component accounting: each rate step's Observe hook runs a
		// synchronous sweep, so BENCH_scale.json records which subsystem
		// owns the bytes, not just the process totals. No background
		// worker — the sweep runs between steps, never during one.
		world.Memory = memsize.NewRegistry()
		if *profileF {
			// Capture-on-demand profiler: one capture per rate step (in
			// the Observe hook, between steps) attributes the step's
			// allocations and contention. The CPU window is disabled —
			// between steps the process is idle, so a window there would
			// sample nothing of interest.
			prof = profile.New(profile.Config{
				Registry:  reg,
				CPUWindow: -1,
				Logf:      log.Printf,
			})
		}
		if eng, err = world.NewXAREngine(); err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
		if *mode == "engine" {
			tgt = load.NewEngineTarget(eng)
		} else {
			rec = telemetry.NewRecorder(reg, telemetry.RecorderConfig{
				Interval:  time.Second,
				Retention: 10 * time.Minute,
			})
			opts := []server.Option{server.WithTelemetry(reg), server.WithRecorder(rec)}
			if world.Quality != nil {
				opts = append(opts, server.WithQuality(world.Quality))
			}
			srv := httptest.NewServer(server.New(eng, core.NewSocialGraph(), opts...).Handler())
			defer srv.Close()
			ht := load.NewHTTPTarget(srv.URL)
			tgt, httpCl, baseURL = ht, ht, ht.BaseURL
		}
	case "http":
		if *target == "" {
			log.Fatal("-mode http requires -target URL")
		}
		ht := load.NewHTTPTarget(*target)
		tgt, httpCl, baseURL = ht, ht, ht.BaseURL
	default:
		log.Fatalf("unknown -mode %q (want engine, server, or http)", *mode)
	}

	offers, requestTrips := world.SplitOffersRequests()
	cfg.Trips = requestTrips
	log.Printf("seeding %d ride offers...", len(offers))
	for _, o := range offers {
		if res := tgt.Do(load.OpCreate, o); res.Err != nil {
			log.Fatalf("seeding offers: %v", res.Err)
		}
	}

	// Per-step capture: snapshot the recorder so the server's history
	// window covers exactly this step, scrape the server's own view, and
	// measure memory. The anchor tick below opens the first window.
	if rec != nil {
		rec.TickNow()
	}
	if prof != nil {
		// Baseline capture: the cumulative kinds (heap_alloc, mutex,
		// block) delta against this, so the first step's attribution
		// excludes world building and offer seeding.
		prof.CaptureNow()
	}
	cfg.Observe = func(step *load.Step, rep *load.Report) {
		if rec != nil {
			rec.TickNow()
		}
		step.Profile = load.MeasureProfile(prof)
		if httpCl != nil {
			// Window just under the step's wall time: the history delta
			// anchors on the tick taken at the previous step's end, so the
			// server stats cover exactly this step.
			win := time.Duration(0.9 * rep.WallSeconds * float64(time.Second))
			st, err := load.ScrapeServer(httpCl.Client, baseURL, "search", win)
			if err != nil {
				log.Printf("server scrape: %v", err)
			} else {
				step.Server = st
			}
		}
		if eng != nil {
			step.Memory = load.MeasureEngine(eng)
		}
	}

	frontier, err := load.RunSweep(ctx, tgt, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if world.Quality != nil && eng != nil {
		eng.ShadowFlush()
		logQuality(world.Quality.Snapshot())
	}
	if eng != nil {
		if rep := eng.LastMemReport(); rep != nil {
			parts := make([]string, 0, len(rep.Components))
			for _, c := range rep.Components {
				parts = append(parts, fmt.Sprintf("%s=%.1fMB", c.Name, float64(c.Bytes)/(1<<20)))
			}
			log.Printf("memory: %d rides, %.0f rides/GB of index; %s",
				rep.ActiveRides, rep.RidesPerGB, strings.Join(parts, " "))
		}
	}
	if prof != nil {
		if c, ok := prof.Newest(); ok {
			log.Printf("profile of the last step (capture %d):", c.ID)
			for _, line := range profile.SummaryLines(&c, 5) {
				log.Printf("  %s", line)
			}
		}
	}
	frontier.Mode = *mode
	frontier.World = map[string]any{
		"rows": *rows, "cols": *cols, "requests": *requests,
		"epsilon_m": *eps, "seed": *seed, "darp": *darp,
	}

	buf, err := json.MarshalIndent(frontier, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d rate steps)", *out, len(frontier.Steps))
	}

	if violations := frontier.Check(load.Gate{
		MaxP99MS:     *gateP99,
		MinMatchRate: *gateMatch,
		MaxErrors:    *gateErrs,
	}); len(violations) > 0 {
		for _, v := range violations {
			log.Printf("GATE: %s", v)
		}
		os.Exit(1)
	}
}

// logQuality prints the sweep's match-quality summary: the candidate
// funnel and, when the shadow matcher ran, the unlock attribution.
func logQuality(s quality.Snapshot) {
	var stages []string
	for _, st := range quality.Stages() {
		if n := s.Funnel[st]; n > 0 {
			stages = append(stages, fmt.Sprintf("%s=%d", st, n))
		}
	}
	log.Printf("quality: %d candidates examined (%s)", s.CandidatesExamined, strings.Join(stages, " "))
	if s.DetourSlack.Count > 0 {
		log.Printf("quality: detour slack ratio mean %.3f p99 %.3f over %d bookings",
			s.DetourSlack.Mean, s.DetourSlack.P99, s.DetourSlack.Count)
	}
	if s.Shadow.Enabled {
		var unlocks []string
		for _, con := range quality.Constraints() {
			if n := s.Shadow.Unlocks[con]; n > 0 {
				unlocks = append(unlocks, fmt.Sprintf("%s=%d", con, n))
			}
		}
		log.Printf("quality: shadow %d no-match + %d regret tasks, %d dropped; unlocks: %s",
			s.Shadow.Tasks[quality.TaskNoMatch], s.Shadow.Tasks[quality.TaskRegret],
			s.Shadow.Dropped, strings.Join(unlocks, " "))
		if r := s.Shadow.Regret; r.WithRegret > 0 {
			log.Printf("quality: greedy regret on %d/%d re-matched bookings (mean %.0f m, max %.0f m)",
				r.WithRegret, r.Rematched, r.MeanM, r.MaxM)
		}
	}
}

func parseRates(s string) ([]float64, error) {
	var rates []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("rate %q must be a positive number", part)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("no rates in %q", s)
	}
	return rates, nil
}
