// Command xarbench regenerates the tables and figures of the XAR paper's
// evaluation (§X). Each -fig value corresponds to an experiment in
// DESIGN.md's index:
//
//	xarbench -fig 3a          # detour approximation error CDF (E1)
//	xarbench -fig 3b          # clusters vs ε (E2)
//	xarbench -fig 3cd         # index memory & search time vs clusters (E3+E4)
//	xarbench -fig 4           # XAR vs T-Share search/create/book (E5–E7)
//	xarbench -fig 5a          # search time vs k (E8)
//	xarbench -fig 5b          # look-to-book sweep (E9)
//	xarbench -fig 6           # taxi vs RS vs PT vs RS+PT (E10)
//	xarbench -fig ablations   # design-choice ablations
//	xarbench -fig all         # everything
//
// Scale flags (-rows, -cols, -requests, -eps, -seed) trade fidelity for
// runtime; the defaults complete in a few minutes.
//
// -parallel N switches to the concurrent-engine throughput mode instead
// of figure replays: N goroutines drive a mixed create/search/book
// workload against a 16-shard engine and the run reports QPS plus
// p50/p95/p99 latency per operation from the telemetry histograms (the
// same series /v1/metrics/prom exposes). Combine with GOMAXPROCS to
// sweep the scaling curve recorded in BENCH_parallel.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xar/internal/audit"
	"xar/internal/core"
	"xar/internal/experiments"
	"xar/internal/journal"
	"xar/internal/memsize"
	"xar/internal/profile"
	"xar/internal/quality"
	"xar/internal/sim"
	"xar/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xarbench: ")

	fig := flag.String("fig", "all", "figure to regenerate: 3a|3b|3cd|4|5a|5b|6|ablations|all")
	rows := flag.Int("rows", 40, "city lattice rows (streets)")
	cols := flag.Int("cols", 22, "city lattice columns (avenues)")
	requests := flag.Int("requests", 4000, "trip stream length")
	eps := flag.Float64("eps", 1000, "epsilon in meters (paper: 1 km)")
	seed := flag.Int64("seed", 42, "random seed")
	prom := flag.String("prom", "", "after the run, dump the shared latency histograms in Prometheus text format to this file (\"-\" = stdout)")
	parallel := flag.Int("parallel", 0, "run the concurrent mixed create/search/book workload with this many goroutines instead of figure replays (0 = off)")
	parallelOps := flag.Int("parallel-ops", 0, "total operations for -parallel (0 → 20× -requests)")
	traceOut := flag.String("trace-out", "", "dump the slowest XAR traces as JSON to this file")
	traceTop := flag.Int("trace-top", 20, "how many slowest traces -trace-out keeps")
	historyOut := flag.String("history-out", "", "record the run's telemetry on a 1s wall-clock cadence and write the time-series as JSON to this file")
	auditFlag := flag.Bool("audit", false, "run a journaled replay through the invariant auditor after the workload (in -parallel mode, audit the parallel engine itself) and exit non-zero on any violation")
	qualityFlag := flag.Bool("quality", false, "collect the match-quality funnel across the replayed engines (and shadow counterfactuals at -shadow-sample) and print the summary after the run")
	shadowSample := flag.Int("shadow-sample", 8, "with -quality, shadow-match 1-in-N no-match requests and bookings (0 disables the shadow matcher)")
	chBench := flag.Bool("ch-bench", false, "run the routing head-to-head (plain A* vs ALT vs CH) instead of figure replays")
	chSizes := flag.String("ch-sizes", "20x12,40x22,80x44", "comma-separated ROWSxCOLS city sizes for -ch-bench, smallest to largest")
	chPairs := flag.Int("ch-pairs", 256, "random query pairs per size for -ch-bench")
	chReps := flag.Int("ch-reps", 8, "timing repetitions over the pair set for -ch-bench")
	chOut := flag.String("ch-out", "", "write the -ch-bench JSON report to this file")
	chMinSpeedup := flag.Float64("ch-min-speedup", 0, "exit non-zero unless CH/ALT speedup at the largest -ch-bench size reaches this (0 disables the gate)")
	profileFlag := flag.Bool("profile", true, "profile the run (allocation and contention deltas bracketing the workload) and print the top-5 symbols per kind after it")
	flag.Parse()

	if *chBench {
		runCHBench(*chSizes, *seed, *chPairs, *chReps, *chMinSpeedup, *chOut)
		return
	}

	scale := experiments.DefaultScale()
	scale.CityRows = *rows
	scale.CityCols = *cols
	scale.Requests = *requests
	scale.Epsilon = *eps
	scale.Seed = *seed

	start := time.Now()
	log.Printf("building world: %dx%d city, %d trips, ε=%.0f m, seed %d",
		scale.CityRows, scale.CityCols, scale.Requests, scale.Epsilon, scale.Seed)
	w, err := experiments.BuildWorld(scale)
	if err != nil {
		log.Fatal(err)
	}
	if *prom != "" || *historyOut != "" {
		// The replays then record into the same histogram series a live
		// xarserver exposes at /v1/metrics/prom — one telemetry source
		// for figure reproduction and serving.
		w.Telemetry = telemetry.NewRegistry()
	}
	var rec *telemetry.Recorder
	if *historyOut != "" {
		// Wall-clock cadence: figure replays run in real time, so a 1s
		// tick captures how latency and throughput evolve over the run.
		rec = telemetry.NewRecorder(w.Telemetry, telemetry.RecorderConfig{
			Interval:  time.Second,
			Retention: 2 * time.Hour,
		})
		rec.Start()
		defer func() {
			rec.Stop()
			rec.TickNow()
			if err := dumpHistory(rec, *historyOut); err != nil {
				log.Fatal(err)
			}
		}()
	}
	if *traceOut != "" {
		// Head-sample at the production default under the high-volume
		// replays; the slow side-ring still keeps every outlier past
		// 5 ms, which is what -trace-out exists to capture.
		w.Tracer = telemetry.NewTracer(telemetry.TracerConfig{
			SampleRate:    64,
			SlowThreshold: 5 * time.Millisecond,
		})
	}
	log.Printf("world ready in %v: %d road nodes, %d landmarks, %d clusters (measured ε=%.0f m)",
		time.Since(start).Round(time.Millisecond),
		w.City.Graph.NumNodes(), len(w.Disc.Landmarks), w.Disc.NumClusters(), w.Disc.Epsilon())

	printProfile := func() {}
	if *profileFlag {
		// Bracket the workload with captures: the cumulative kinds
		// (heap_alloc, mutex, block) delta between them, so the summary
		// attributes the replays alone — world building lands in the
		// discarded baseline. The CPU window is disabled; a post-run
		// window would sample idle.
		prof := profile.New(profile.Config{CPUWindow: -1, Logf: log.Printf})
		prof.CaptureNow()
		printProfile = func() {
			c := prof.CaptureNow()
			if c == nil {
				return
			}
			lines := profile.SummaryLines(c, 5)
			if len(lines) == 0 {
				return
			}
			fmt.Printf("\n--- profile (run delta) ---\n")
			for _, l := range lines {
				fmt.Printf("  %s\n", l)
			}
		}
	}

	if *parallel > 0 {
		ops := *parallelOps
		if ops <= 0 {
			ops = 20 * scale.Requests
		}
		if w.Telemetry == nil {
			w.Telemetry = telemetry.NewRegistry()
		}
		if *auditFlag {
			w.Journal = journal.New(journal.Config{})
		}
		if *qualityFlag {
			// Registered into the shared registry, so -prom dumps carry
			// the funnel series alongside the latency histograms.
			w.Quality = quality.New(w.Telemetry)
			w.ShadowSampleRate = *shadowSample
		}
		// Component accounting for the parallel engine: one on-demand
		// sweep after the workload attributes the retained bytes (and the
		// -prom dump then carries the xar_memsize_bytes gauges too).
		w.Memory = memsize.NewRegistry()
		eng, err := runParallel(w, *parallel, ops)
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
		if rep := eng.MemSweep(); rep != nil {
			parts := make([]string, 0, len(rep.Components))
			for _, c := range rep.Components {
				parts = append(parts, fmt.Sprintf("%s=%.1fMB", c.Name, float64(c.Bytes)/(1<<20)))
			}
			log.Printf("memory: %d rides, %.0f rides/GB of index; %s",
				rep.ActiveRides, rep.RidesPerGB, strings.Join(parts, " "))
		}
		printProfile()
		if *auditFlag {
			runAudit(w, eng)
		}
		if w.Quality != nil {
			eng.ShadowFlush()
			printQuality(w.Quality.Snapshot())
		}
		if *prom != "" {
			if err := dumpProm(w.Telemetry, *prom); err != nil {
				log.Fatal(err)
			}
		}
		if *traceOut != "" {
			if err := dumpTraces(w.Tracer, *traceOut, *traceTop); err != nil {
				log.Fatal(err)
			}
		}
		return
	}

	if *qualityFlag {
		// One collector shared by every engine the figure replays build,
		// so the printed funnel aggregates the whole run. The replays'
		// engines are internal to the experiments package and outlive the
		// summary unflushed, so a handful of shadow tasks may still be in
		// flight when it prints — counters are cumulative lower bounds.
		w.Quality = quality.New(w.Telemetry)
		w.ShadowSampleRate = *shadowSample
	}

	figs := strings.Split(*fig, ",")
	if *fig == "all" {
		figs = []string{"3a", "3b", "3cd", "4", "5a", "5b", "6", "ablations"}
	}
	for _, f := range figs {
		if err := run(w, strings.TrimSpace(f)); err != nil {
			log.Fatalf("fig %s: %v", f, err)
		}
	}
	printProfile()
	if w.Quality != nil {
		printQuality(w.Quality.Snapshot())
	}

	if *prom != "" {
		if err := dumpProm(w.Telemetry, *prom); err != nil {
			log.Fatal(err)
		}
	}
	if *traceOut != "" {
		if err := dumpTraces(w.Tracer, *traceOut, *traceTop); err != nil {
			log.Fatal(err)
		}
	}
	if *auditFlag {
		// Figure replays build their own engines internally, so the
		// correctness gate runs one additional journaled replay of the
		// full trip stream and audits that engine.
		aw := *w
		aw.Telemetry, aw.Tracer = nil, nil
		aw.Journal = journal.New(journal.Config{})
		eng, err := aw.NewXAREngine()
		if err != nil {
			log.Fatal(err)
		}
		acfg := sim.DefaultConfig()
		acfg.WalkLimit = aw.Scale.WalkLimit
		acfg.DetourLimit = aw.Scale.DetourLimit
		if _, err := sim.Run(&sim.XARSystem{Engine: eng}, aw.Trips, acfg); err != nil {
			log.Fatal(err)
		}
		runAudit(&aw, eng)
	}
}

// runAudit sweeps the engine with a synchronous invariant audit and
// exits non-zero on any violation — the xarbench side of the CI
// correctness gate.
func runAudit(w *experiments.World, eng *core.Engine) {
	auditor := audit.New(audit.Config{Target: audit.Target{
		View:    eng.Index(),
		Graph:   w.Disc.City().Graph,
		Epsilon: w.Disc.Epsilon(),
		Journal: w.Journal,
		Quality: w.Quality,
	}})
	rep := auditor.Audit()
	log.Printf("audit: checked %d live rides across %d shards + %d journaled timelines in %.1f ms",
		rep.RidesChecked, rep.Shards, rep.JournalRides, rep.DurationSeconds*1e3)
	if !rep.Clean() {
		for _, v := range rep.Violations {
			log.Printf("audit: VIOLATION [%s] ride %d shard %d: %s", v.Invariant, v.Ride, v.Shard, v.Detail)
		}
		log.Fatalf("audit: %d invariant violation(s) — failing", len(rep.Violations))
	}
	log.Printf("audit: all invariants hold (0 violations)")
}

// printQuality prints the run's match-quality picture: the candidate
// funnel, the approximation-gap distributions, and (when the shadow
// matcher ran) the constraint attribution and greedy-regret stats.
func printQuality(s quality.Snapshot) {
	fmt.Printf("\n--- match quality ---\n")
	fmt.Printf("candidates examined: %d\n", s.CandidatesExamined)
	for _, st := range quality.Stages() {
		if n := s.Funnel[st]; n > 0 || st == "matched" {
			fmt.Printf("  %-18s %d\n", st, n)
		}
	}
	if s.DetourSlack.Count > 0 {
		fmt.Printf("detour slack ratio (of Theorem 6 limit): mean %.3f p50 %.3f p90 %.3f p99 %.3f (n=%d)\n",
			s.DetourSlack.Mean, s.DetourSlack.P50, s.DetourSlack.P90, s.DetourSlack.P99, s.DetourSlack.Count)
	}
	if s.EpsilonConsumption.Count > 0 {
		fmt.Printf("epsilon consumption (of 4ε allowance):   mean %.3f p50 %.3f p90 %.3f p99 %.3f (n=%d)\n",
			s.EpsilonConsumption.Mean, s.EpsilonConsumption.P50, s.EpsilonConsumption.P90, s.EpsilonConsumption.P99, s.EpsilonConsumption.Count)
	}
	if s.Shadow.Enabled {
		fmt.Printf("shadow: %d no-match + %d regret tasks (%d dropped)\n",
			s.Shadow.Tasks[quality.TaskNoMatch], s.Shadow.Tasks[quality.TaskRegret], s.Shadow.Dropped)
		for _, con := range quality.Constraints() {
			if n := s.Shadow.Unlocks[con]; n > 0 {
				fmt.Printf("  unlocked by relaxing %-16s %d\n", con, n)
			}
		}
		if r := s.Shadow.Regret; r.Bookings > 0 {
			fmt.Printf("  greedy regret: %d/%d re-matched bookings beat the greedy choice (mean %.0f m, max %.0f m)\n",
				r.WithRegret, r.Rematched, r.MeanM, r.MaxM)
		}
	}
}

// dumpTraces writes the run's n slowest traces (full span trees) to path.
func dumpTraces(tr *telemetry.Tracer, path string, n int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := telemetry.WriteSlowest(f, tr.Store(), n); err != nil {
		return err
	}
	log.Printf("wrote %d slowest traces to %s (of %d retained)", n, path, tr.Store().Len())
	return nil
}

// dumpHistory writes the recorder's full retained time-series as JSON.
func dumpHistory(rec *telemetry.Recorder, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dump := rec.History(telemetry.HistoryQuery{})
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dump); err != nil {
		return err
	}
	log.Printf("wrote %d history snapshots (%d series) to %s",
		dump.Snapshots, len(dump.Series), path)
	return nil
}

// dumpProm writes the registry in Prometheus text format to path
// ("-" = stdout).
func dumpProm(reg *telemetry.Registry, path string) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := reg.WritePrometheus(out); err != nil {
		return err
	}
	if path != "-" {
		log.Printf("telemetry exposition written to %s", path)
	}
	return nil
}

// runParallel is the standalone form of BenchmarkMixedWorkloadParallel:
// `workers` goroutines drive a mixed stream — 1 create per 16
// operations, a booking attempt after 1 in 8 successful searches,
// searches otherwise — against a 16-shard engine preloaded with the
// world's offers. Throughput comes from wall time; latency quantiles
// come from the xar_op_duration_seconds telemetry histograms the engine
// records into (the same series xarserver exposes at /v1/metrics/prom).
func runParallel(w *experiments.World, workers, ops int) (*core.Engine, error) {
	const shards = 16
	cfg := core.DefaultConfig()
	cfg.DefaultDetourLimit = w.Scale.DetourLimit
	cfg.IndexShards = shards
	cfg.Telemetry = w.Telemetry
	cfg.Tracer = w.Tracer
	cfg.Journal = w.Journal
	cfg.Quality = w.Quality
	if w.Quality != nil {
		cfg.ShadowSampleRate = w.ShadowSampleRate
	}
	cfg.Memory = w.Memory
	eng, err := core.NewEngine(w.Disc, cfg)
	if err != nil {
		return nil, err
	}
	sys := &sim.XARSystem{Engine: eng}
	offers, requests := w.SplitOffersRequests()
	for _, o := range offers {
		_, _ = sys.Create(sim.Offer{
			Source: o.Pickup, Dest: o.Dropoff,
			Departure: o.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
		})
	}
	log.Printf("parallel mode: %d goroutines, %d ops, GOMAXPROCS=%d, %d index shards, %d seeded rides",
		workers, ops, runtime.GOMAXPROCS(0), shards, eng.NumRides())

	var next, searches, matched, creates, bookings atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i > ops {
					return
				}
				if i%16 == 0 {
					o := offers[i%len(offers)]
					_, _ = sys.Create(sim.Offer{
						Source: o.Pickup, Dest: o.Dropoff,
						Departure: o.RequestTime, Seats: 4, DetourLimit: w.Scale.DetourLimit,
					})
					creates.Add(1)
					continue
				}
				t := requests[i%len(requests)]
				req := sim.Request{
					Source: t.Pickup, Dest: t.Dropoff,
					Earliest: t.RequestTime, Latest: t.RequestTime + w.Scale.WindowSlack,
					WalkLimit: w.Scale.WalkLimit,
				}
				cs, err := sys.Search(req, 0)
				searches.Add(1)
				if err != nil || len(cs) == 0 {
					continue
				}
				matched.Add(1)
				if i%8 == 0 {
					if _, err := sys.Book(cs[0], req); err == nil {
						bookings.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	type quantiles struct {
		P50 float64 `json:"p50"`
		P95 float64 `json:"p95"`
		P99 float64 `json:"p99"`
	}
	res := struct {
		Workers     int                  `json:"workers"`
		Gomaxprocs  int                  `json:"gomaxprocs"`
		IndexShards int                  `json:"index_shards"`
		Ops         int64                `json:"ops"`
		WallSeconds float64              `json:"wall_seconds"`
		QPS         float64              `json:"qps"`
		Searches    int64                `json:"searches"`
		Matched     int64                `json:"searches_with_matches"`
		Creates     int64                `json:"creates"`
		Bookings    int64                `json:"bookings"`
		Latency     map[string]quantiles `json:"latency_seconds"`
	}{
		Workers:     workers,
		Gomaxprocs:  runtime.GOMAXPROCS(0),
		IndexShards: shards,
		Ops:         next.Load() - int64(workers), // each goroutine overshoots by one
		WallSeconds: wall.Seconds(),
		Searches:    searches.Load(),
		Matched:     matched.Load(),
		Creates:     creates.Load(),
		Bookings:    bookings.Load(),
		Latency:     map[string]quantiles{},
	}
	if res.Ops > int64(ops) {
		res.Ops = int64(ops)
	}
	res.QPS = float64(res.Ops) / wall.Seconds()
	for _, op := range []string{"search", "create", "book"} {
		h := telemetry.OpDuration(w.Telemetry, op)
		if h.Count() == 0 {
			continue // empty histogram: quantiles are undefined
		}
		res.Latency[op] = quantiles{
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return eng, enc.Encode(res)
}

func run(w *experiments.World, fig string) error {
	start := time.Now()
	defer func() {
		fmt.Printf("(fig %s took %v)\n\n", fig, time.Since(start).Round(time.Millisecond))
	}()
	switch fig {
	case "3a":
		r, err := experiments.Fig3a(w)
		if err != nil {
			return err
		}
		fmt.Println(r.Table())
		fmt.Println("error histogram (meters):")
		fmt.Println(r.Errors.Histogram(12, 40))

	case "3b":
		rows, err := experiments.Fig3b(w, []float64{400, 600, 800, 1000, 1400, 2000, 2800, 4000})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig3b(rows))

	case "3cd":
		rows, err := experiments.Fig3cd(w, []float64{600, 1000, 1600, 2400})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig3cd(rows))

	case "4":
		r, err := experiments.Fig4(w)
		if err != nil {
			return err
		}
		fmt.Println(r.Table())
		fmt.Printf("XAR mean-search speedup over T-Share: %.1fx\n", r.SearchSpeedup())

	case "5a":
		rows, err := experiments.Fig5a(w, []int{1, 2, 5, 10, 15, 20, 25})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig5a(rows))

	case "5b":
		rows, err := experiments.Fig5b(w, []int{1, 5, 10, 50, 100, 500, 1000})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig5b(rows))

	case "6":
		r, err := experiments.Fig6(w)
		if err != nil {
			return err
		}
		fmt.Println(r.Table())

	case "ablations":
		a, err := experiments.AblationSortedLists(w)
		if err != nil {
			return err
		}
		b, err := experiments.AblationReachablePrecompute(w)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderAblations([]experiments.AblationRow{a, b}))

	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", fig)
		os.Exit(2)
	}
	return nil
}
