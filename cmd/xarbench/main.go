// Command xarbench regenerates the tables and figures of the XAR paper's
// evaluation (§X). Each -fig value corresponds to an experiment in
// DESIGN.md's index:
//
//	xarbench -fig 3a          # detour approximation error CDF (E1)
//	xarbench -fig 3b          # clusters vs ε (E2)
//	xarbench -fig 3cd         # index memory & search time vs clusters (E3+E4)
//	xarbench -fig 4           # XAR vs T-Share search/create/book (E5–E7)
//	xarbench -fig 5a          # search time vs k (E8)
//	xarbench -fig 5b          # look-to-book sweep (E9)
//	xarbench -fig 6           # taxi vs RS vs PT vs RS+PT (E10)
//	xarbench -fig ablations   # design-choice ablations
//	xarbench -fig all         # everything
//
// Scale flags (-rows, -cols, -requests, -eps, -seed) trade fidelity for
// runtime; the defaults complete in a few minutes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"xar/internal/experiments"
	"xar/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xarbench: ")

	fig := flag.String("fig", "all", "figure to regenerate: 3a|3b|3cd|4|5a|5b|6|ablations|all")
	rows := flag.Int("rows", 40, "city lattice rows (streets)")
	cols := flag.Int("cols", 22, "city lattice columns (avenues)")
	requests := flag.Int("requests", 4000, "trip stream length")
	eps := flag.Float64("eps", 1000, "epsilon in meters (paper: 1 km)")
	seed := flag.Int64("seed", 42, "random seed")
	prom := flag.String("prom", "", "after the run, dump the shared latency histograms in Prometheus text format to this file (\"-\" = stdout)")
	flag.Parse()

	scale := experiments.DefaultScale()
	scale.CityRows = *rows
	scale.CityCols = *cols
	scale.Requests = *requests
	scale.Epsilon = *eps
	scale.Seed = *seed

	start := time.Now()
	log.Printf("building world: %dx%d city, %d trips, ε=%.0f m, seed %d",
		scale.CityRows, scale.CityCols, scale.Requests, scale.Epsilon, scale.Seed)
	w, err := experiments.BuildWorld(scale)
	if err != nil {
		log.Fatal(err)
	}
	if *prom != "" {
		// The replays then record into the same histogram series a live
		// xarserver exposes at /v1/metrics/prom — one telemetry source
		// for figure reproduction and serving.
		w.Telemetry = telemetry.NewRegistry()
	}
	log.Printf("world ready in %v: %d road nodes, %d landmarks, %d clusters (measured ε=%.0f m)",
		time.Since(start).Round(time.Millisecond),
		w.City.Graph.NumNodes(), len(w.Disc.Landmarks), w.Disc.NumClusters(), w.Disc.Epsilon())

	figs := strings.Split(*fig, ",")
	if *fig == "all" {
		figs = []string{"3a", "3b", "3cd", "4", "5a", "5b", "6", "ablations"}
	}
	for _, f := range figs {
		if err := run(w, strings.TrimSpace(f)); err != nil {
			log.Fatalf("fig %s: %v", f, err)
		}
	}

	if *prom != "" {
		out := os.Stdout
		if *prom != "-" {
			f, err := os.Create(*prom)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := w.Telemetry.WritePrometheus(out); err != nil {
			log.Fatal(err)
		}
		if *prom != "-" {
			log.Printf("telemetry exposition written to %s", *prom)
		}
	}
}

func run(w *experiments.World, fig string) error {
	start := time.Now()
	defer func() {
		fmt.Printf("(fig %s took %v)\n\n", fig, time.Since(start).Round(time.Millisecond))
	}()
	switch fig {
	case "3a":
		r, err := experiments.Fig3a(w)
		if err != nil {
			return err
		}
		fmt.Println(r.Table())
		fmt.Println("error histogram (meters):")
		fmt.Println(r.Errors.Histogram(12, 40))

	case "3b":
		rows, err := experiments.Fig3b(w, []float64{400, 600, 800, 1000, 1400, 2000, 2800, 4000})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig3b(rows))

	case "3cd":
		rows, err := experiments.Fig3cd(w, []float64{600, 1000, 1600, 2400})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig3cd(rows))

	case "4":
		r, err := experiments.Fig4(w)
		if err != nil {
			return err
		}
		fmt.Println(r.Table())
		fmt.Printf("XAR mean-search speedup over T-Share: %.1fx\n", r.SearchSpeedup())

	case "5a":
		rows, err := experiments.Fig5a(w, []int{1, 2, 5, 10, 15, 20, 25})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig5a(rows))

	case "5b":
		rows, err := experiments.Fig5b(w, []int{1, 5, 10, 50, 100, 500, 1000})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig5b(rows))

	case "6":
		r, err := experiments.Fig6(w)
		if err != nil {
			return err
		}
		fmt.Println(r.Table())

	case "ablations":
		a, err := experiments.AblationSortedLists(w)
		if err != nil {
			return err
		}
		b, err := experiments.AblationReachablePrecompute(w)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderAblations([]experiments.AblationRow{a, b}))

	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", fig)
		os.Exit(2)
	}
	return nil
}
