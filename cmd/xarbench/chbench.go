package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"xar/internal/roadnet"
)

// chBenchSize is one row of the router head-to-head: the three engines
// answer the same random pairs on the same generated city, so the
// query-time columns are directly comparable and the mismatch column is
// an exact-distance cross-check of CH against the A* reference.
type chBenchSize struct {
	Rows       int     `json:"rows"`
	Cols       int     `json:"cols"`
	Nodes      int     `json:"nodes"`
	Edges      int     `json:"edges"`
	PlainUS    float64 `json:"plain_astar_query_us"`
	ALTUS      float64 `json:"alt_query_us"`
	CHUS       float64 `json:"ch_query_us"`
	ALTPreMS   float64 `json:"alt_preprocess_ms"`
	CHPreMS    float64 `json:"ch_preprocess_ms"`
	Shortcuts  int     `json:"ch_shortcuts"`
	CoreSize   int     `json:"ch_core_size"`
	SpeedupALT float64 `json:"ch_speedup_vs_alt"`
	SpeedupAst float64 `json:"ch_speedup_vs_plain"`
	Mismatches int     `json:"distance_mismatches"`
}

type chBenchReport struct {
	Pairs int           `json:"pairs_per_size"`
	Reps  int           `json:"reps"`
	Seed  int64         `json:"seed"`
	Sizes []chBenchSize `json:"sizes"`
}

// runCHBench generates a city per size, builds all three routers, times
// them on a shared random pair set, and cross-checks every CH distance
// against the exact reference. Exits non-zero on any mismatch, or when
// the CH/ALT speedup at the largest size falls below minSpeedup (the CI
// gate). Writes the JSON report to out ("" = stdout only).
func runCHBench(sizesSpec string, seed int64, pairsN, reps int, minSpeedup float64, out string) {
	var report = chBenchReport{Pairs: pairsN, Reps: reps, Seed: seed}
	for _, spec := range strings.Split(sizesSpec, ",") {
		var rows, cols int
		if _, err := fmt.Sscanf(strings.TrimSpace(spec), "%dx%d", &rows, &cols); err != nil {
			log.Fatalf("bad -ch-sizes entry %q (want ROWSxCOLS)", spec)
		}
		city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(rows, cols, seed))
		if err != nil {
			log.Fatal(err)
		}
		g := city.Graph

		t0 := time.Now()
		alt, err := roadnet.NewALT(g, 8)
		if err != nil {
			log.Fatal(err)
		}
		altPre := time.Since(t0)
		ch, err := roadnet.BuildCH(g, roadnet.CHConfig{})
		if err != nil {
			log.Fatal(err)
		}

		r := rand.New(rand.NewSource(seed))
		pairs := make([][2]roadnet.NodeID, pairsN)
		for i := range pairs {
			pairs[i] = [2]roadnet.NodeID{
				roadnet.NodeID(r.Intn(g.NumNodes())),
				roadnet.NodeID(r.Intn(g.NumNodes())),
			}
		}
		plain := roadnet.NewSearcher(g)
		as := alt.NewSearcher()
		cs := ch.NewSearcher()

		mismatches := 0
		for _, p := range pairs {
			want := plain.ShortestPath(p[0], p[1])
			got := cs.ShortestPath(p[0], p[1])
			if want.Reachable() != got.Reachable() ||
				(want.Reachable() && math.Abs(want.Dist-got.Dist) > 1e-6) {
				mismatches++
			}
		}

		timeIt := func(f func(a, b roadnet.NodeID)) float64 {
			for _, p := range pairs { // warm caches and pools
				f(p[0], p[1])
			}
			start := time.Now()
			for rep := 0; rep < reps; rep++ {
				for _, p := range pairs {
					f(p[0], p[1])
				}
			}
			return float64(time.Since(start).Microseconds()) / float64(reps*len(pairs))
		}
		sz := chBenchSize{
			Rows: rows, Cols: cols,
			Nodes:     g.NumNodes(),
			Edges:     g.NumEdges(),
			PlainUS:   timeIt(func(a, b roadnet.NodeID) { plain.ShortestPath(a, b) }),
			ALTUS:     timeIt(func(a, b roadnet.NodeID) { as.ShortestPath(a, b) }),
			CHUS:      timeIt(func(a, b roadnet.NodeID) { cs.ShortestPath(a, b) }),
			ALTPreMS:  float64(altPre.Microseconds()) / 1e3,
			CHPreMS:   float64(ch.BuildTime().Microseconds()) / 1e3,
			Shortcuts: ch.NumShortcuts(),
			CoreSize:  ch.CoreSize(),

			Mismatches: mismatches,
		}
		sz.SpeedupALT = sz.ALTUS / sz.CHUS
		sz.SpeedupAst = sz.PlainUS / sz.CHUS
		report.Sizes = append(report.Sizes, sz)
		log.Printf("%dx%d n=%d: plain %.1f µs, ALT %.1f µs, CH %.2f µs (%.1fx vs ALT, %.1fx vs plain), %d shortcuts, core %d, CH pre %.0f ms, %d mismatches",
			rows, cols, sz.Nodes, sz.PlainUS, sz.ALTUS, sz.CHUS, sz.SpeedupALT, sz.SpeedupAst,
			sz.Shortcuts, sz.CoreSize, sz.CHPreMS, mismatches)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		log.Fatal(err)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote CH head-to-head to %s", out)
	}

	for _, sz := range report.Sizes {
		if sz.Mismatches != 0 {
			log.Fatalf("GATE FAIL: %d CH distance mismatches at %dx%d — CH must match the exact reference", sz.Mismatches, sz.Rows, sz.Cols)
		}
	}
	if minSpeedup > 0 {
		last := report.Sizes[len(report.Sizes)-1]
		if last.SpeedupALT < minSpeedup {
			log.Fatalf("GATE FAIL: CH/ALT speedup %.1fx at largest size %dx%d, need ≥ %.1fx",
				last.SpeedupALT, last.Rows, last.Cols, minSpeedup)
		}
		log.Printf("gate ok: CH/ALT speedup %.1fx ≥ %.1fx at largest size, zero mismatches", last.SpeedupALT, minSpeedup)
	}
}
