// Command xarserver runs the XAR platform as a JSON HTTP service over a
// synthetic city — the deployment shape §IX's multi-modal-trip-planner
// integration assumes. See internal/server for the API.
//
//	xarserver -addr :8080 -rows 40 -cols 22
//	xarserver -router ch -ch-file city.ch   # CH routing from a prebuilt artifact
//	curl -s localhost:8080/v1/healthz
//	curl -s localhost:8080/v1/metrics/prom     # Prometheus scrape
//	curl -s -X POST localhost:8080/v1/search -d '{
//	    "source": {"lat": 40.71, "lng": -74.01},
//	    "dest":   {"lat": 40.73, "lng": -73.99},
//	    "earliest_departure": 28800, "latest_departure": 30600,
//	    "walk_limit_m": 800}'
//
// Observability (see README "Observability" and OBSERVABILITY.md):
//
//	-access-log            structured per-request log on stderr
//	-slow-ms 250           warn-log engine operations slower than 250 ms
//	-trace-sample 64       head-sample 1-in-N requests into /v1/traces (0 disables)
//	-trace-slow-ms 50      always keep traces slower than this
//	-pprof                 mount net/http/pprof under /debug/pprof/
//	-history-interval 10s  flight-recorder snapshot cadence (0 disables history+SLOs)
//	-history-retention 1h  how much metric history /v1/metrics/history retains
//	-slo                   evaluate burn-rate SLOs at /v1/slo and in /v1/healthz
//	-slo-search-p95-ms 5   search-latency objective threshold
//	-profile-on-page DIR   capture a CPU profile into DIR when an SLO pages
//	-pprof-labels          label engine hot paths (op/stage/shard) for profilers
//	-bundle-dir DIR        SIGQUIT writes a debug bundle tar.gz here (also GET /v1/debug/bundle)
//	-journal               journal ride-lifecycle events (/v1/rides/{id}/timeline, /v1/events)
//	-audit-interval 30s    background invariant-audit sweep cadence (0 disables)
//	-quality               collect the match-quality funnel and gap histograms (/v1/quality)
//	-shadow-sample 8       shadow-match 1-in-N no-match requests and bookings (0 disables; needs -quality)
//	-mem-sweep 30s         per-component memory accounting sweep cadence (/v1/memory,
//	                       xar_memsize_bytes{component}, xar_rides_per_gb; 0 disables)
//	-profile-interval 60s  continuous-profiling capture cadence (/v1/profiles,
//	                       /v1/profiles/diff, xar_profile_* metrics; 0 disables)
//
// Build identity (xar_build_info, /v1/healthz build section) is stamped
// at link time:
//
//	go build -ldflags "-X xar/internal/telemetry.Version=v1.2.3 \
//	    -X xar/internal/telemetry.Commit=$(git rev-parse --short HEAD)" ./cmd/xarserver
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"xar/internal/audit"
	"xar/internal/core"
	"xar/internal/discretize"
	"xar/internal/journal"
	"xar/internal/memsize"
	"xar/internal/profile"
	"xar/internal/quality"
	"xar/internal/roadnet"
	"xar/internal/server"
	"xar/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xarserver: ")

	addr := flag.String("addr", ":8080", "listen address")
	rows := flag.Int("rows", 40, "city lattice rows")
	cols := flag.Int("cols", 22, "city lattice columns")
	seed := flag.Int64("seed", 42, "random seed")
	eps := flag.Float64("eps", 1000, "epsilon (= 4δ) in meters")
	useALT := flag.Bool("alt", true, "accelerate shortest paths with ALT")
	router := flag.String("router", "", "shortest-path engine: astar, alt, or ch (empty = auto: ch when -ch-file is given, else by -alt)")
	chFile := flag.String("ch-file", "", "load a contraction-hierarchy artifact (xardiscretize -ch-out) instead of preprocessing in-process")
	chBudget := flag.Duration("ch-budget", 30*time.Second, "CH preprocessing budget when -router ch builds in-process; exceeding it falls back to ALT")
	accessLog := flag.Bool("access-log", false, "emit a structured access-log record per request")
	slowMS := flag.Float64("slow-ms", 250, "slow-operation log threshold in milliseconds (0 disables)")
	traceSample := flag.Int("trace-sample", 64, "record 1-in-N requests as traces into /v1/traces (0 disables tracing; sampled incoming traceparents always record)")
	traceSlowMS := flag.Float64("trace-slow-ms", 50, "always keep traces at least this slow, regardless of sampling")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (opt-in; exposes internals)")
	historyInterval := flag.Duration("history-interval", 10*time.Second, "flight-recorder snapshot cadence for /v1/metrics/history (0 disables history and SLOs)")
	historyRetention := flag.Duration("history-retention", time.Hour, "how much metric history the flight recorder retains")
	enableSLO := flag.Bool("slo", true, "evaluate burn-rate SLOs (/v1/slo, /v1/healthz status); needs the flight recorder")
	sloSearchP95 := flag.Float64("slo-search-p95-ms", 5, "search-latency SLO threshold in milliseconds (p95)")
	profileOnPage := flag.String("profile-on-page", "", "capture a short CPU profile into this directory when an SLO enters page (empty disables)")
	pprofLabels := flag.Bool("pprof-labels", false, "attach pprof labels (op/stage/shard) to engine hot paths; small per-op cost")
	bundleDir := flag.String("bundle-dir", ".", "directory SIGQUIT-triggered debug bundles are written to")
	enableJournal := flag.Bool("journal", true, "record ride-lifecycle events into the fixed-memory journal; serves /v1/rides/{id}/timeline and /v1/events")
	auditInterval := flag.Duration("audit-interval", 30*time.Second, "background invariant-audit sweep cadence (0 disables the auditor)")
	enableQuality := flag.Bool("quality", true, "collect the match-quality funnel and approximation-gap histograms; serves /v1/quality")
	shadowSample := flag.Int("shadow-sample", 8, "shadow-match 1-in-N no-match requests and bookings off the request path (0 disables; needs -quality)")
	memSweep := flag.Duration("mem-sweep", core.DefaultMemSweepInterval, "per-component memory accounting sweep cadence; serves /v1/memory and the xar_memsize/xar_rides_per_gb gauges (0 disables)")
	profileInterval := flag.Duration("profile-interval", profile.DefaultInterval, "continuous-profiling capture cadence; serves /v1/profiles and the xar_profile_* metrics (0 disables)")
	flag.Parse()

	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))

	start := time.Now()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(*rows, *cols, *seed))
	if err != nil {
		log.Fatal(err)
	}
	dcfg := discretize.DefaultConfig()
	dcfg.Delta = *eps / 4
	disc, err := discretize.Build(city, dcfg)
	if err != nil {
		log.Fatal(err)
	}
	// One tracer shared by engine and server: HTTP roots and bare engine
	// spans land in the same ring, and /v1/traces serves both.
	var tracer *telemetry.Tracer
	if *traceSample > 0 {
		tracer = telemetry.NewTracer(telemetry.TracerConfig{
			SampleRate:    *traceSample,
			SlowThreshold: time.Duration(*traceSlowMS * float64(time.Millisecond)),
		})
	}

	var jr *journal.Journal
	if *enableJournal {
		jr = journal.New(journal.Config{Registry: reg})
	}

	ecfg := core.DefaultConfig()
	ecfg.UseALTPaths = *useALT
	ecfg.Router = *router
	ecfg.CHBudget = *chBudget
	if *chFile != "" {
		f, err := os.Open(*chFile)
		if err != nil {
			log.Fatal(err)
		}
		ch, err := roadnet.LoadCH(f, city.Graph)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		ecfg.CH = ch
		log.Printf("loaded CH artifact %s: %d shortcuts, core %d", *chFile, ch.NumShortcuts(), ch.CoreSize())
	}
	ecfg.Telemetry = reg
	ecfg.Tracer = tracer
	ecfg.SlowOpThreshold = time.Duration(*slowMS * float64(time.Millisecond))
	ecfg.SlowOpLogger = logger
	ecfg.PprofLabels = *pprofLabels
	ecfg.Journal = jr
	var qc *quality.Collector
	if *enableQuality {
		qc = quality.New(reg)
		ecfg.Quality = qc
		ecfg.ShadowSampleRate = *shadowSample
	} else if *shadowSample > 0 {
		log.Printf("the shadow matcher needs -quality; running without it")
	}
	if *memSweep > 0 {
		ecfg.Memory = memsize.NewRegistry()
		ecfg.MemSweepInterval = *memSweep
	}
	if *profileInterval > 0 {
		ecfg.Profiling = profile.New(profile.Config{
			Registry: reg,
			Logf:     log.Printf,
		})
		ecfg.ProfileInterval = *profileInterval
	}
	eng, err := core.NewEngine(disc, ecfg)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	log.Printf("world ready in %v: %d road nodes, %d landmarks, %d clusters, ε=%.0f m, router=%s",
		time.Since(start).Round(time.Millisecond),
		city.Graph.NumNodes(), len(disc.Landmarks), disc.NumClusters(), disc.Epsilon(), eng.Router())

	opts := []server.Option{server.WithTelemetry(reg)}
	if tracer != nil {
		opts = append(opts, server.WithTracer(tracer))
	}
	if *accessLog {
		opts = append(opts, server.WithAccessLog(logger))
	}
	if jr != nil {
		opts = append(opts, server.WithJournal(jr))
	}
	if qc != nil {
		opts = append(opts, server.WithQuality(qc))
	}
	if *auditInterval > 0 {
		acfg := audit.Config{
			Target: audit.Target{
				View:    eng.Index(),
				Graph:   city.Graph,
				Epsilon: disc.Epsilon(),
				Journal: jr,
				Quality: qc,
			},
			Interval: *auditInterval,
			Registry: reg,
			Logger:   logger,
		}
		if tracer != nil {
			acfg.TraceStore = tracer.Store()
		}
		auditor := audit.New(acfg)
		auditor.Start()
		defer auditor.Stop()
		opts = append(opts, server.WithAuditor(auditor))
	}

	// Flight recorder: in-process metric history, burn-rate SLOs, and the
	// page-triggered CPU profiler all hang off the snapshot cadence.
	if *historyInterval > 0 {
		rec := telemetry.NewRecorder(reg, telemetry.RecorderConfig{
			Interval:  *historyInterval,
			Retention: *historyRetention,
		})
		rec.Start()
		defer rec.Stop()
		opts = append(opts, server.WithRecorder(rec))
		if *enableSLO {
			slo := telemetry.NewSLOEngine(rec, telemetry.SLOConfig{},
				server.DefaultSLOs(time.Duration(*sloSearchP95*float64(time.Millisecond)))...)
			opts = append(opts, server.WithSLO(slo))
			if *profileOnPage != "" {
				prof := profile.NewCPUProfiler(profile.CPUProfilerConfig{
					Dir:  *profileOnPage,
					Logf: log.Printf,
				})
				prof.AttachTo(slo)
				opts = append(opts, server.WithCPUProfiler(prof))
			}
			// A page also pins the continuous profiler's capture
			// bracket, so the flat tables around the incident
			// survive ring eviction.
			if p := eng.Profiler(); p != nil {
				p.AttachTo(slo)
			}
		}
	} else if *enableSLO {
		log.Printf("SLOs need the flight recorder; start with -history-interval > 0 to enable them")
	}
	srv := server.New(eng, core.NewSocialGraph(), opts...)
	// server.New seeded the first accounting sweep (it registers the
	// trace store and recorder as components first), so the startup
	// summary reflects the complete component set.
	if rep := eng.LastMemReport(); rep != nil {
		parts := ""
		for _, c := range rep.Components {
			parts += fmt.Sprintf(" %s=%.1fMB", c.Name, float64(c.Bytes)/(1<<20))
		}
		log.Printf("memory accounting on (sweep every %v):%s; tracked %.1f MB, heap %.1f MB",
			*memSweep, parts,
			float64(rep.TrackedTotalBytes)/(1<<20), float64(rep.Heap.HeapAllocBytes)/(1<<20))
	}

	// SIGQUIT writes a one-shot diagnostic bundle instead of Go's default
	// stack-dump-and-exit — the flight recorder's goroutine dump is in the
	// bundle, and the process keeps serving.
	go func() {
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		for range quit {
			path := filepath.Join(*bundleDir,
				fmt.Sprintf("xar-debug-%d.tar.gz", time.Now().Unix()))
			f, err := os.Create(path)
			if err != nil {
				log.Printf("SIGQUIT bundle: %v", err)
				continue
			}
			if err := srv.WriteDebugBundle(f); err != nil {
				log.Printf("SIGQUIT bundle: %v", err)
			} else {
				log.Printf("SIGQUIT: wrote debug bundle to %s", path)
			}
			f.Close()
		}
	}()

	handler := http.Handler(srv.Handler())
	if *enablePprof {
		// pprof rides on a wrapper mux so the API mux stays clean and the
		// profiling surface is strictly opt-in.
		root := http.NewServeMux()
		root.Handle("/", srv.Handler())
		root.HandleFunc("/debug/pprof/", pprof.Index)
		root.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		root.HandleFunc("/debug/pprof/profile", pprof.Profile)
		root.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		root.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = root
		log.Printf("pprof enabled at /debug/pprof/")
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("serving on %s (metrics: /v1/metrics/prom)", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
