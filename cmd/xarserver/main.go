// Command xarserver runs the XAR platform as a JSON HTTP service over a
// synthetic city — the deployment shape §IX's multi-modal-trip-planner
// integration assumes. See internal/server for the API.
//
//	xarserver -addr :8080 -rows 40 -cols 22
//	curl -s localhost:8080/v1/healthz
//	curl -s -X POST localhost:8080/v1/search -d '{
//	    "source": {"lat": 40.71, "lng": -74.01},
//	    "dest":   {"lat": 40.73, "lng": -73.99},
//	    "earliest_departure": 28800, "latest_departure": 30600,
//	    "walk_limit_m": 800}'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"xar/internal/core"
	"xar/internal/discretize"
	"xar/internal/roadnet"
	"xar/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xarserver: ")

	addr := flag.String("addr", ":8080", "listen address")
	rows := flag.Int("rows", 40, "city lattice rows")
	cols := flag.Int("cols", 22, "city lattice columns")
	seed := flag.Int64("seed", 42, "random seed")
	eps := flag.Float64("eps", 1000, "epsilon (= 4δ) in meters")
	useALT := flag.Bool("alt", true, "accelerate shortest paths with ALT")
	flag.Parse()

	start := time.Now()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(*rows, *cols, *seed))
	if err != nil {
		log.Fatal(err)
	}
	dcfg := discretize.DefaultConfig()
	dcfg.Delta = *eps / 4
	disc, err := discretize.Build(city, dcfg)
	if err != nil {
		log.Fatal(err)
	}
	ecfg := core.DefaultConfig()
	ecfg.UseALTPaths = *useALT
	eng, err := core.NewEngine(disc, ecfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("world ready in %v: %d road nodes, %d landmarks, %d clusters, ε=%.0f m",
		time.Since(start).Round(time.Millisecond),
		city.Graph.NumNodes(), len(disc.Landmarks), disc.NumClusters(), disc.Epsilon())

	srv := server.New(eng, core.NewSocialGraph())
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("serving on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
