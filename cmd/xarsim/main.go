// Command xarsim runs the paper's ride-share simulation (§X-A2) over a
// synthetic city and demand stream, on XAR or on the T-Share baseline,
// and prints throughput, match quality and latency statistics:
//
//	xarsim -system xar -requests 10000
//	xarsim -system tshare -requests 10000
//	xarsim -system both -requests 10000 -k 5 -looktobook 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"xar/internal/audit"
	"xar/internal/core"
	"xar/internal/experiments"
	"xar/internal/journal"
	"xar/internal/memsize"
	"xar/internal/profile"
	"xar/internal/quality"
	"xar/internal/sim"
	"xar/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xarsim: ")

	system := flag.String("system", "xar", "system to simulate: xar|tshare|both")
	rows := flag.Int("rows", 40, "city lattice rows")
	cols := flag.Int("cols", 22, "city lattice columns")
	requests := flag.Int("requests", 5000, "trip stream length")
	eps := flag.Float64("eps", 1000, "epsilon in meters")
	seed := flag.Int64("seed", 42, "random seed")
	k := flag.Int("k", 0, "matches per search (0 = all)")
	lookToBook := flag.Int("looktobook", 1, "searches per booking decision")
	walkLimit := flag.Float64("walk", 1000, "walking limit in meters")
	detour := flag.Float64("detour", 2000, "detour limit in meters")
	traceOut := flag.String("trace-out", "", "dump the slowest XAR traces as JSON to this file")
	traceTop := flag.Int("trace-top", 20, "how many slowest traces -trace-out keeps")
	historyOut := flag.String("history-out", "", "record the XAR replay's telemetry on the simulated clock and write the time-series as JSON to this file (regenerates the latency-over-time curves behind figures 3a-3d)")
	historyInterval := flag.Float64("history-interval", 60, "simulated seconds between -history-out snapshots")
	auditFlag := flag.Bool("audit", false, "journal the XAR replay's ride-lifecycle events, sweep the invariant auditor on the simulated clock, run a full synchronous audit after the replay, and exit non-zero on any violation")
	auditInterval := flag.Float64("audit-interval", 300, "simulated seconds between -audit sweeps during the replay")
	qualityFlag := flag.Bool("quality", false, "collect the XAR replay's match-quality funnel (and shadow counterfactuals at -shadow-sample) and print the summary after the run")
	shadowSample := flag.Int("shadow-sample", 8, "with -quality, shadow-match 1-in-N no-match requests and bookings (0 disables the shadow matcher)")
	memFlag := flag.Bool("mem", true, "account per-component memory on the XAR engine and print the breakdown + rides/GB after the replay (sweeps run on demand only, never during the replay)")
	profileFlag := flag.Bool("profile", true, "profile the XAR replay (allocation and contention deltas bracketing the run) and print the top-5 symbols per kind after it")
	flag.Parse()

	scale := experiments.DefaultScale()
	scale.CityRows = *rows
	scale.CityCols = *cols
	scale.Requests = *requests
	scale.Epsilon = *eps
	scale.Seed = *seed
	scale.WalkLimit = *walkLimit
	scale.DetourLimit = *detour

	start := time.Now()
	w, err := experiments.BuildWorld(scale)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("world ready in %v: %d landmarks, %d clusters, ε=%.0f m",
		time.Since(start).Round(time.Millisecond),
		len(w.Disc.Landmarks), w.Disc.NumClusters(), w.Disc.Epsilon())

	cfg := sim.DefaultConfig()
	cfg.K = *k
	cfg.LookToBook = *lookToBook
	cfg.WalkLimit = *walkLimit
	cfg.DetourLimit = *detour

	if *system == "xar" || *system == "both" {
		if *traceOut != "" {
			// Trace every replayed op; the ring keeps recent traffic and
			// the slow side-ring guarantees the outliers survive the run.
			w.Tracer = telemetry.NewTracer(telemetry.TracerConfig{
				SampleRate:    1,
				SlowThreshold: 5 * time.Millisecond,
			})
		}
		xcfg := cfg
		var rec *telemetry.Recorder
		if *historyOut != "" {
			// The replay records into sim-level histograms and the
			// recorder ticks on simulated time (trip request stamps), so
			// retention is sized to the stream's simulated span — a
			// multi-hour demand day fits regardless of replay speed.
			reg := telemetry.NewRegistry()
			interval := time.Duration(*historyInterval * float64(time.Second))
			span := time.Duration(0)
			if n := len(w.Trips); n > 0 {
				span = time.Duration((w.Trips[n-1].RequestTime - w.Trips[0].RequestTime) * float64(time.Second))
			}
			rec = telemetry.NewRecorder(reg, telemetry.RecorderConfig{
				Interval:  interval,
				Retention: span + 3*interval,
			})
			xcfg.Telemetry = reg
			xcfg.Recorder = rec
		}
		if *auditFlag {
			w.Journal = journal.New(journal.Config{})
		}
		if *qualityFlag {
			w.Quality = quality.New(nil)
			w.ShadowSampleRate = *shadowSample
		}
		if *memFlag {
			w.Memory = memsize.NewRegistry()
		}
		eng, err := w.NewXAREngine()
		if err != nil {
			log.Fatal(err)
		}
		defer eng.Close()
		var auditor *audit.Auditor
		if *auditFlag {
			auditor = audit.New(audit.Config{Target: audit.Target{
				View:    eng.Index(),
				Graph:   w.Disc.City().Graph,
				Epsilon: w.Disc.Epsilon(),
				Journal: w.Journal,
				Quality: w.Quality,
			}})
			xcfg.Auditor = auditor
			xcfg.AuditInterval = *auditInterval
		}
		var prof *profile.Profiler
		if *profileFlag {
			// Bracket the replay with captures: the cumulative kinds
			// (heap_alloc, mutex, block) delta between them, so the
			// summary attributes the replay alone — world building and
			// engine construction land in the discarded baseline. The CPU
			// window is disabled; a post-run window would sample idle.
			prof = profile.New(profile.Config{CPUWindow: -1, Logf: log.Printf})
			prof.CaptureNow()
		}
		report(w, &sim.XARSystem{Engine: eng}, xcfg)
		if prof != nil {
			if c := prof.CaptureNow(); c != nil {
				printProfile(c)
			}
		}
		if w.Quality != nil {
			eng.ShadowFlush()
			printQuality(w.Quality.Snapshot())
		}
		if rep := eng.MemSweep(); rep != nil {
			printMemory(rep)
		}
		if *traceOut != "" {
			dumpTraces(*traceOut, w.Tracer, *traceTop)
		}
		if rec != nil {
			dumpHistory(*historyOut, rec)
		}
		if auditor != nil {
			finalAudit(auditor, w.Journal)
		}
	}
	if *system == "tshare" || *system == "both" {
		eng, err := w.NewTShare(false)
		if err != nil {
			log.Fatal(err)
		}
		report(w, &sim.TShareSystem{Engine: eng}, cfg)
	}
}

func report(w *experiments.World, sys sim.System, cfg sim.Config) {
	start := time.Now()
	res, err := sim.Run(sys, w.Trips, cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("\n=== %s ===\n", res.SystemName)
	fmt.Printf("replayed %d requests in %v (%.0f req/s)\n",
		res.Requests, elapsed.Round(time.Millisecond),
		float64(res.Requests)/elapsed.Seconds())
	fmt.Printf("matched %d (%.1f%%), created %d rides, %d unservable, %d stale bookings\n",
		res.Matched, 100*res.MatchRate(), res.Created, res.NotServable, res.FailedBooks)
	fmt.Printf("search  %s\n", res.SearchTimes.Summary("ms"))
	fmt.Printf("create  %s\n", res.CreateTimes.Summary("ms"))
	fmt.Printf("book    %s\n", res.BookTimes.Summary("ms"))
	if res.ApproxErrors.N() > 0 {
		eps := w.Disc.Epsilon()
		fmt.Printf("detour approx error: %s (ε=%.0f m; %.1f%% ≤ ε, %.2f%% ≤ 2ε)\n",
			res.ApproxErrors.Summary("m"), eps,
			100*res.ApproxErrors.CDF(eps), 100*res.ApproxErrors.CDF(2*eps))
	}
	if res.Walks.N() > 0 {
		fmt.Printf("rider walking: %s\n", res.Walks.Summary("m"))
	}
	fmt.Printf("active rides at end: %d\n", sys.ActiveRides())
}

// printQuality prints the replay's match-quality picture: the candidate
// funnel, the approximation-gap distributions, and (when the shadow
// matcher ran) the constraint attribution and greedy-regret stats.
func printQuality(s quality.Snapshot) {
	fmt.Printf("\n--- match quality ---\n")
	fmt.Printf("candidates examined: %d\n", s.CandidatesExamined)
	for _, st := range quality.Stages() {
		if n := s.Funnel[st]; n > 0 || st == "matched" {
			fmt.Printf("  %-18s %d\n", st, n)
		}
	}
	if s.DetourSlack.Count > 0 {
		fmt.Printf("detour slack ratio (of Theorem 6 limit): mean %.3f p50 %.3f p90 %.3f p99 %.3f (n=%d)\n",
			s.DetourSlack.Mean, s.DetourSlack.P50, s.DetourSlack.P90, s.DetourSlack.P99, s.DetourSlack.Count)
	}
	if s.EpsilonConsumption.Count > 0 {
		fmt.Printf("epsilon consumption (of 4ε allowance):   mean %.3f p50 %.3f p90 %.3f p99 %.3f (n=%d)\n",
			s.EpsilonConsumption.Mean, s.EpsilonConsumption.P50, s.EpsilonConsumption.P90, s.EpsilonConsumption.P99, s.EpsilonConsumption.Count)
	}
	if s.Shadow.Enabled {
		fmt.Printf("shadow: %d no-match + %d regret tasks (%d dropped)\n",
			s.Shadow.Tasks[quality.TaskNoMatch], s.Shadow.Tasks[quality.TaskRegret], s.Shadow.Dropped)
		for _, con := range quality.Constraints() {
			if n := s.Shadow.Unlocks[con]; n > 0 {
				fmt.Printf("  unlocked by relaxing %-16s %d\n", con, n)
			}
		}
		r := s.Shadow.Regret
		if r.Bookings > 0 {
			fmt.Printf("  greedy regret: %d/%d re-matched bookings beat the greedy choice (mean %.0f m, max %.0f m)\n",
				r.WithRegret, r.Rematched, r.MeanM, r.MaxM)
		}
	}
}

// printMemory prints the post-replay component accounting: which
// subsystem owns the bytes, and the rides-per-GB capacity extrapolation
// the ROADMAP's compaction arc is judged by.
func printMemory(rep *core.MemoryReport) {
	fmt.Printf("\n--- memory ---\n")
	for _, c := range rep.Components {
		fmt.Printf("  %-16s %8.1f MB\n", c.Name, float64(c.Bytes)/(1<<20))
	}
	fmt.Printf("  %-16s %8.1f MB (heap in use %.1f MB, %.0f%% tracked)\n",
		"tracked total", float64(rep.TrackedTotalBytes)/(1<<20),
		float64(rep.Heap.HeapInUseBytes)/(1<<20), 100*rep.Heap.TrackedCoverageRatio)
	fmt.Printf("  %d active rides, %.0f rides/GB of index\n", rep.ActiveRides, rep.RidesPerGB)
	if len(rep.Subsystems) > 0 {
		fmt.Printf("  top allocating subsystems since start:\n")
		for i, s := range rep.Subsystems {
			if i >= 5 {
				break
			}
			fmt.Printf("    %-24s %8.1f MB in use\n", s.Subsystem, float64(s.InUseBytes)/(1<<20))
		}
	}
}

// printProfile prints the replay's profile deltas: for each kind that
// saw samples between the bracketing captures, the top-5 symbols and
// their share — where the replay's allocations went and which locks it
// contended.
func printProfile(c *profile.Capture) {
	lines := profile.SummaryLines(c, 5)
	if len(lines) == 0 {
		return
	}
	fmt.Printf("\n--- profile (replay delta) ---\n")
	for _, l := range lines {
		fmt.Printf("  %s\n", l)
	}
}

// finalAudit runs the post-replay synchronous sweep and exits non-zero
// on any violation (this run's plus any found by the in-replay sweeps),
// making `xarsim -audit` a CI-usable correctness gate.
func finalAudit(auditor *audit.Auditor, jr *journal.Journal) {
	rep := auditor.Audit()
	st := jr.Stats()
	log.Printf("audit: checked %d live rides across %d shards + %d journaled timelines (%d events) in %.1f ms",
		rep.RidesChecked, rep.Shards, rep.JournalRides, st.Events, rep.DurationSeconds*1e3)
	if total := auditor.TotalViolations(); total > 0 {
		for _, v := range rep.Violations {
			log.Printf("audit: VIOLATION [%s] ride %d shard %d: %s", v.Invariant, v.Ride, v.Shard, v.Detail)
		}
		log.Fatalf("audit: %d invariant violation(s) across all sweeps — failing", total)
	}
	log.Printf("audit: all invariants hold (0 violations)")
}

// dumpTraces writes the run's n slowest traces (full span trees) to path.
func dumpTraces(path string, tr *telemetry.Tracer, n int) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := telemetry.WriteSlowest(f, tr.Store(), n); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d slowest traces to %s (of %d retained)", n, path, tr.Store().Len())
}

// dumpHistory writes the recorder's full retained time-series as JSON.
func dumpHistory(path string, rec *telemetry.Recorder) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	dump := rec.History(telemetry.HistoryQuery{})
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(dump); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d history snapshots (%d series) to %s",
		dump.Snapshots, len(dump.Series), path)
}
