// Command xarperf is the performance-regression sentinel CLI: it
// folds every committed BENCH_*.json artifact into the longitudinal
// trajectory document (BENCH_trajectory.json, schema
// xar-bench-trend/v1) and optionally gates on it — the `make
// bench-trend` CI job.
//
//	xarperf                       # print the trajectory to stdout
//	xarperf -out BENCH_trajectory.json
//	xarperf -gate                 # exit 1 if a headline metric left its band
//	xarperf -gate -smoke          # also run a fresh search micro-benchmark
//	                              # and gate its ns/op against the band
//
// -smoke runs `go test -run '^$' -bench BenchmarkSearchTelemetry/off`
// in -dir and appends the fresh measurement to the headline search
// ns/op series, so the gate compares this machine's hot path today
// against the committed history, not just artifact against artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"strconv"

	"xar/internal/perftrend"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("xarperf: ")

	dir := flag.String("dir", ".", "repository root holding the BENCH_*.json artifacts")
	out := flag.String("out", "-", "trajectory output path (\"-\" = stdout)")
	gate := flag.Bool("gate", false, "exit 1 when the newest point of any banded series is outside its band")
	smoke := flag.Bool("smoke", false, "run a short fresh search benchmark in -dir and append it to the headline ns/op series")
	benchtime := flag.String("benchtime", "300ms", "benchtime for -smoke")
	flag.Parse()

	t, err := perftrend.Collect(*dir)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range t.Warnings {
		log.Printf("warning: %s", w)
	}

	// The written trajectory is the deterministic fold of the committed
	// artifacts — the smoke point joins only the in-memory gate below,
	// so re-running `make bench-trend` never dirties the committed file
	// with one machine's ephemeral measurement.
	buf, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatal(err)
		}
		n := 0
		for _, byMetric := range t.Benchmarks {
			n += len(byMetric)
		}
		log.Printf("wrote %s (%d benchmarks, %d series)", *out, len(t.Benchmarks), n)
	}

	if *smoke {
		ns, err := runSmoke(*dir, *benchtime)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("smoke: BenchmarkSearchTelemetry/off %.0f ns/op", ns)
		t.AddPoint("BenchmarkSearchTelemetry", "off_ns_per_op",
			perftrend.Point{Source: "smoke", Value: ns})
	}
	if *gate {
		if violations := t.Gate(); len(violations) > 0 {
			for _, v := range violations {
				log.Printf("GATE: %s", v)
			}
			os.Exit(1)
		}
		log.Printf("gate: every banded series is within its band")
	}
}

var benchLine = regexp.MustCompile(`(?m)^BenchmarkSearchTelemetry/off\S*\s+\d+\s+([\d.]+) ns/op`)

// runSmoke measures the instrumented search hot path fresh, via the
// repo's own BenchmarkSearchTelemetry/off, and returns its ns/op.
func runSmoke(dir, benchtime string) (float64, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "BenchmarkSearchTelemetry/off", "-benchtime", benchtime, ".")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return 0, fmt.Errorf("smoke benchmark: %v\n%s", err, out)
	}
	m := benchLine.FindSubmatch(out)
	if m == nil {
		return 0, fmt.Errorf("smoke benchmark produced no BenchmarkSearchTelemetry/off line:\n%s", out)
	}
	return strconv.ParseFloat(string(m[1]), 64)
}
