module xar

go 1.22
