package profile

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestCPUProfilerTriggerAndCooldown(t *testing.T) {
	dir := t.TempDir()
	p := NewCPUProfiler(CPUProfilerConfig{
		Dir:      dir,
		Duration: 50 * time.Millisecond,
		Cooldown: time.Hour,
	})
	if !p.Trigger("test") {
		t.Fatal("first trigger refused")
	}
	// Capture runs in the background; the file only gains content once
	// StopCPUProfile flushes, so waiting for non-empty also waits for the
	// capture to release the global profiler.
	path := waitForProfile(t, p)
	if filepath.Dir(path) != dir {
		t.Fatalf("profile written outside dir: %s", path)
	}
	// Cooldown: immediate re-trigger refused.
	if p.Trigger("again") {
		t.Fatal("trigger during cooldown accepted")
	}
}

func TestCPUProfilerAttachesToSLO(t *testing.T) {
	f := newSLOFixture()
	dir := t.TempDir()
	p := NewCPUProfiler(CPUProfilerConfig{Dir: dir, Duration: 20 * time.Millisecond, Cooldown: time.Hour})
	p.AttachTo(f.slo)
	f.page()
	waitForProfile(t, p)
}

// waitForProfile blocks until p has a completed (non-empty) capture and
// returns its path.
func waitForProfile(t *testing.T, p *CPUProfiler) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if path := p.LastProfile(); path != "" {
			if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
				return path
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("no completed profile captured")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
