package profile

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"xar/internal/memsize"
	"xar/internal/telemetry"
)

// quickConfig disables the CPU window so captures are fast and cannot
// contend with other tests' CPU profiles.
func quickConfig(reg *telemetry.Registry) Config {
	return Config{Registry: reg, CPUWindow: -1, Logf: func(string, ...any) {}}
}

func TestCaptureNowKindsAndMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := New(quickConfig(reg))
	defer p.Close()
	c := p.CaptureNow()
	if c.ID != 1 {
		t.Fatalf("first capture id = %d, want 1", c.ID)
	}
	for _, kind := range []string{KindHeapInuse, KindHeapAlloc, KindMutex, KindBlock} {
		if c.Folded(kind) == nil {
			t.Errorf("kind %s missing from capture", kind)
		}
	}
	if c.Folded(KindCPU) != nil {
		t.Error("cpu fold present with CPU window disabled")
	}
	if c.NumGoroutine <= 0 || len(c.Goroutines) == 0 {
		t.Errorf("goroutine accounting empty: n=%d states=%v", c.NumGoroutine, c.Goroutines)
	}
	if c.Raw("heap") == nil {
		t.Error("raw heap blob missing")
	}
	// Counter registered and incremented: re-requesting the same family
	// returns the live instrument.
	if got := reg.Counter(CapturesTotalName, "", nil).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", CapturesTotalName, got)
	}
}

func TestCaptureCPUWindow(t *testing.T) {
	p := New(Config{CPUWindow: 50 * time.Millisecond})
	defer p.Close()
	// Burn CPU during the window so samples land.
	stopBurn := make(chan struct{})
	go func() {
		x := 0
		for {
			select {
			case <-stopBurn:
				return
			default:
				x++
			}
		}
	}()
	c := p.CaptureNow()
	close(stopBurn)
	if c.CPUSkipped {
		t.Fatal("cpu window skipped with no competing profile")
	}
	if c.CPUWindowSeconds < 0.04 {
		t.Errorf("cpu window = %.3fs, want ≈0.05s", c.CPUWindowSeconds)
	}
	raw := c.Raw("cpu")
	if raw == nil {
		t.Fatal("raw cpu blob missing")
	}
	parsed, err := parsePprof(raw)
	if err != nil {
		t.Fatalf("raw cpu export does not reparse: %v", err)
	}
	if parsed.valueIndex("cpu") < 0 {
		t.Error("cpu sample type missing from raw export")
	}
}

func TestHeapAllocIsDelta(t *testing.T) {
	p := New(quickConfig(nil))
	defer p.Close()
	// The runtime's heap profile reflects the most recently completed
	// GC cycle; force one before each capture so the delta brackets
	// exactly the allocation below.
	runtime.GC()
	p.CaptureNow()
	allocForProfile()
	profileTestSink = nil
	runtime.GC()
	c2 := p.CaptureNow()
	f := c2.Folded(KindHeapAlloc)
	if f == nil {
		t.Fatal("heap_alloc missing")
	}
	// The delta capture must attribute the ~4MiB allocForProfile just
	// allocated, and as a delta, not the process-lifetime cumulative.
	r := f.Row("xar/internal/profile.allocForProfile")
	if r == nil || r.Flat < 1<<20 {
		t.Fatalf("allocForProfile delta = %+v, want ≥1MiB", r)
	}
}

func TestRingWraparoundRetentionAndMemory(t *testing.T) {
	p := New(Config{CPUWindow: -1, FineSlots: 8, CoarseSlots: 2, PinnedSlots: 2})
	defer p.Close()

	// Fixed-memory fence, the memsize pattern: fill the fine ring with
	// same-size captures, measure, then overwrite it twice more — a
	// full ring that keeps being overwritten must not grow. Synthetic
	// captures keep the payload size exact so the fence is
	// deterministic (real captures drift with the process's
	// allocation-site set).
	synth := func(id uint64) *Capture {
		rows := make([]Sample, 64)
		for i := range rows {
			rows[i] = Sample{Func: fmt.Sprintf("pkg.fn%02d", i), Pkg: "pkg", Flat: int64(i + 1)}
		}
		return &Capture{
			ID:         id,
			Profiles:   []*Folded{{Kind: KindCPU, Unit: "nanoseconds", Total: 64, Rows: rows}},
			Goroutines: map[string]int{"running": 1},
			raw:        map[string][]byte{"cpu": make([]byte, 32<<10)},
		}
	}
	add := func(c *Capture) {
		p.mu.Lock()
		p.fine.add(c)
		p.mu.Unlock()
	}
	for i := uint64(1); i <= 8; i++ {
		add(synth(i))
	}
	measure := func() uint64 {
		a := memsize.NewAccumulator()
		p.MeasureMem(a)
		return a.Total()
	}
	base := measure()
	if base < 8*32<<10 {
		t.Fatalf("MeasureMem = %d for a full ring of 8 × 32KiB raws — not walking captures", base)
	}
	for i := uint64(9); i <= 24; i++ {
		add(synth(i))
	}
	grown := measure()
	if float64(grown) > float64(base)*1.10 {
		t.Errorf("ring memory grew %.1f%% after 2x more saturation (base %d, now %d) — ring is not fixed-memory",
			100*(float64(grown)/float64(base)-1), base, grown)
	}

	// Retention with real captures: oldest evicted from the fine ring,
	// newest kept. (The very first capture legitimately survives in
	// the coarse ring — that is the second resolution doing its job.)
	p2 := New(Config{CPUWindow: -1, FineSlots: 4, CoarseSlots: 2})
	defer p2.Close()
	for i := 0; i < 8; i++ {
		p2.CaptureNow()
	}
	fineIDs := make(map[uint64][]string)
	for _, s := range p2.List(ListFilter{}) {
		fineIDs[s.ID] = s.Rings
	}
	if rings, ok := fineIDs[1]; ok {
		if len(rings) != 1 || rings[0] != "coarse" {
			t.Errorf("capture 1 should survive only in the coarse ring, got %v", rings)
		}
	}
	for want := uint64(5); want <= 8; want++ {
		if _, ok := fineIDs[want]; !ok {
			t.Errorf("capture %d missing after wraparound (have %v)", want, fineIDs)
		}
	}
	if _, ok := fineIDs[2]; ok {
		t.Errorf("capture 2 not evicted from a 4-slot fine ring: %v", fineIDs)
	}
}

func TestPinLatestSurvivesFineEviction(t *testing.T) {
	p := New(Config{CPUWindow: -1, FineSlots: 4, PinnedSlots: 4})
	defer p.Close()
	c := p.CaptureNow()
	p.PinLatest("slo-page:test")
	// pinNext: the capture after the pin is bracketed in too.
	p.CaptureNow()
	for i := 0; i < 8; i++ {
		p.CaptureNow() // evict both from the fine ring
	}
	got, ok := p.Get(c.ID)
	if !ok {
		t.Fatal("pinned capture evicted")
	}
	if !got.Pinned || got.PinReason != "slo-page:test" {
		t.Fatalf("pinned capture state = %+v", got)
	}
	if next, ok := p.Get(c.ID + 1); !ok || !next.Pinned {
		t.Fatal("capture following the page was not pinned (bracket)")
	}
	pinned := p.List(ListFilter{PinnedOnly: true})
	if len(pinned) != 2 {
		t.Fatalf("pinned list = %d entries, want 2", len(pinned))
	}
}

func TestDiffCaptures(t *testing.T) {
	p := New(quickConfig(nil))
	defer p.Close()
	c1 := p.CaptureNow()
	allocForProfile()
	profileTestSink = nil
	c2 := p.CaptureNow()
	d, err := p.DiffCaptures(c1.ID, c2.ID, KindHeapAlloc, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.FromID != c1.ID || d.ToID != c2.ID || d.Unit != "bytes" {
		t.Fatalf("diff header = %+v", d)
	}
	if len(d.Rows) == 0 {
		t.Fatal("diff between an idle and an allocating interval has no rows")
	}
	if _, err := p.DiffCaptures(c1.ID, 999, KindHeapAlloc, 0); err == nil {
		t.Error("diff against a missing capture did not error")
	}
	if _, err := p.DiffCaptures(c1.ID, c2.ID, "bogus", 0); err == nil {
		t.Error("diff of an unknown kind did not error")
	}
}

// TestWorkerCloseInterruptsCaptureWindow: Close must return promptly
// even when the worker is mid-way through a long CPU window, and
// double-Close must be safe.
func TestWorkerCloseInterruptsCaptureWindow(t *testing.T) {
	before := runtime.NumGoroutine()
	p := New(Config{CPUWindow: 30 * time.Second, Logf: func(string, ...any) {}})
	p.Start(time.Millisecond) // first capture starts almost immediately
	time.Sleep(50 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		p.Close()
		p.Close() // double-Close
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not interrupt the mid-capture CPU window")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked after Close: %d > %d", n, before)
	}
}

func TestStartIsIdempotentAndCloseIsFinal(t *testing.T) {
	p := New(quickConfig(nil))
	p.Start(time.Hour)
	p.Start(time.Hour) // second Start is a no-op, not a second worker
	p.Close()
	p.Start(time.Hour) // Start after Close must not revive the worker
	p.Close()
}

// TestConcurrentCaptureServeMutate is the 8-goroutine race stress:
// capture, list/get/diff and pin mutation all interleave under -race.
func TestConcurrentCaptureServeMutate(t *testing.T) {
	p := New(Config{CPUWindow: -1, FineSlots: 8, Logf: func(string, ...any) {}})
	defer p.Close()
	p.CaptureNow()
	const workers = 8
	const iters = 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch w % 4 {
				case 0: // capture
					p.CaptureNow()
				case 1: // serve lists and gets
					for _, s := range p.List(ListFilter{Limit: 4}) {
						p.Get(s.ID)
					}
				case 2: // diff whatever exists
					sums := p.List(ListFilter{})
					if len(sums) >= 2 {
						p.DiffCaptures(sums[len(sums)-1].ID, sums[0].ID, KindHeapInuse, 5)
					}
				case 3: // mutate pins and measure
					p.PinLatest(fmt.Sprintf("stress-%d-%d", w, i))
					a := memsize.NewAccumulator()
					p.MeasureMem(a)
				}
			}
		}(w)
	}
	wg.Wait()
}

// --- CPU arbitration (the single process-wide StartCPUProfile owner) ---

// sloFixture drives a telemetry SLO engine to a page transition using
// the public API (mirrors the fixture the telemetry tests use).
type sloFixture struct {
	h   *telemetry.Histogram
	rec *telemetry.Recorder
	slo *telemetry.SLOEngine
	now float64
}

func newSLOFixture() *sloFixture {
	reg := telemetry.NewRegistry()
	h := reg.Histogram(telemetry.OpDurationName, "op latency", telemetry.DurationBuckets(), telemetry.L("op", "search"))
	rec := telemetry.NewRecorder(reg, telemetry.RecorderConfig{Interval: 10 * time.Second, Retention: time.Hour})
	slo := telemetry.NewSLOEngine(rec, telemetry.SLOConfig{
		ShortWindow: time.Minute,
		LongWindow:  5 * time.Minute,
	}, telemetry.LatencyObjective("search-p95", telemetry.OpDurationName, telemetry.L("op", "search"), 0.010, 0.95))
	return &sloFixture{h: h, rec: rec, slo: slo, now: 10_000}
}

func (f *sloFixture) tick(n int, v float64) {
	for i := 0; i < n; i++ {
		f.h.Observe(v)
	}
	f.rec.TickAt(f.now)
	f.now += 10
}

// page drives the fixture from healthy to a page transition.
func (f *sloFixture) page() {
	for i := 0; i < 36; i++ {
		f.tick(100, 0.001)
	}
	for i := 0; i < 12; i++ {
		f.tick(100, 0.5)
	}
}

// TestPageWhileContinuousCaptureMidWindow is the arbitration
// regression test: an SLO page fires while the continuous profiler
// holds the CPU slot mid-window. The page-triggered CPUProfiler must
// skip cleanly (no file, no crash, no deadlock) and the page must
// still pin the surrounding captures.
func TestPageWhileContinuousCaptureMidWindow(t *testing.T) {
	p := New(Config{CPUWindow: 400 * time.Millisecond, Logf: func(string, ...any) {}})
	defer p.Close()
	dir := t.TempDir()
	cp := NewCPUProfiler(CPUProfilerConfig{Dir: dir, Duration: 20 * time.Millisecond, Cooldown: time.Hour, Logf: t.Logf})

	f := newSLOFixture()
	p.AttachTo(f.slo)
	cp.AttachTo(f.slo)

	// Hold the CPU slot: run a capture whose window spans the page.
	capDone := make(chan *Capture, 1)
	go func() { capDone <- p.CaptureNow() }()
	time.Sleep(50 * time.Millisecond) // window is now open

	f.page() // fires both OnPage hooks synchronously

	c := <-capDone
	if c.CPUSkipped {
		t.Fatal("continuous capture lost its own window")
	}
	// The page-triggered capture ran into the busy arbiter: it must
	// leave no file behind (skip, not truncated output).
	waitBg := time.Now().Add(2 * time.Second)
	for cp.LastProfile() == "" && time.Now().Before(waitBg) {
		time.Sleep(10 * time.Millisecond)
	}
	if path := cp.LastProfile(); path != "" {
		t.Fatalf("page-triggered profiler captured %s while the continuous window held the CPU slot", path)
	}
	// The page still pinned profiler state.
	if pinned := p.List(ListFilter{PinnedOnly: true}); len(pinned) == 0 {
		t.Error("page transition pinned no captures")
	}
	// After the window releases, a fresh trigger succeeds.
	cp2 := NewCPUProfiler(CPUProfilerConfig{Dir: dir, Duration: 20 * time.Millisecond, Cooldown: time.Hour})
	if !cp2.Trigger("after-release") {
		t.Fatal("trigger refused after the continuous window released the slot")
	}
	waitForProfile(t, cp2)
}

// TestContinuousSkipsWhenPageCaptureHoldsSlot is the reverse
// direction: the continuous capture must skip (CPUSkipped) rather
// than error when the page-triggered profiler owns the slot.
func TestContinuousSkipsWhenPageCaptureHoldsSlot(t *testing.T) {
	cp := NewCPUProfiler(CPUProfilerConfig{Dir: t.TempDir(), Duration: 300 * time.Millisecond, Cooldown: time.Hour})
	if !cp.Trigger("hold") {
		t.Fatal("holder trigger refused")
	}
	time.Sleep(50 * time.Millisecond)

	p := New(Config{CPUWindow: 50 * time.Millisecond, Logf: func(string, ...any) {}})
	defer p.Close()
	c := p.CaptureNow()
	if !c.CPUSkipped {
		t.Fatal("continuous capture did not skip while the page capture held the slot")
	}
	if c.Folded(KindHeapInuse) == nil {
		t.Error("skipped CPU window dropped the rest of the capture")
	}
	waitForProfile(t, cp)
}
