package profile

import (
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestRawExportsLoadInGoToolPprof is gated behind XAR_PPROF_TOOL=1: it
// shells out to `go tool pprof`.
func TestRawExportsLoadInGoToolPprof(t *testing.T) {
	if os.Getenv("XAR_PPROF_TOOL") == "" {
		t.Skip("set XAR_PPROF_TOOL=1 to run the go-tool-pprof load check")
	}
	p := New(Config{CPUWindow: 300 * time.Millisecond})
	defer p.Close()
	stop := make(chan struct{})
	go func() {
		x := 0
		for {
			select {
			case <-stop:
				return
			default:
				x++
			}
		}
	}()
	c := p.CaptureNow()
	close(stop)
	dir := t.TempDir()
	for _, name := range c.RawNames() {
		path := dir + "/" + name + ".pprof"
		if err := os.WriteFile(path, c.Raw(name), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := exec.Command("go", "tool", "pprof", "-top", "-nodecount=3", path).CombinedOutput()
		if err != nil {
			t.Errorf("%s: go tool pprof failed: %v\n%s", name, err, out)
			continue
		}
		if !strings.Contains(string(out), "Showing nodes") && !strings.Contains(string(out), "flat") {
			t.Errorf("%s: unexpected pprof output:\n%s", name, out)
		}
		t.Logf("%s:\n%s", name, out)
	}
}
