// Stdlib-only parser for the pprof profile.proto wire format.
//
// The continuous profiler captures every kind — CPU, heap, mutex,
// block — as the raw gzipped protobuf the runtime writes (pprof.Lookup
// WriteTo debug=0 / StartCPUProfile), then folds it through this one
// parser. Going through the serialized form rather than the
// runtime.XxxProfileRecord APIs buys two things: the raw bytes are
// exactly what `go tool pprof` loads, so every stored capture doubles
// as an export, and the runtime has already normalized units before
// writing (mutex/block delay arrives in nanoseconds, not cycles).
//
// Only the fields the folder needs are decoded: sample types, samples
// (location ids + values), the location→function and function→name
// tables, and duration. Everything else is skipped by wire type.
package profile

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// maxUncompressedProfile bounds gunzip expansion so a corrupt length
// field cannot balloon memory; real captures are well under this.
const maxUncompressedProfile = 64 << 20

type valueType struct {
	Type string
	Unit string
}

type parsedSample struct {
	locs []uint64 // location ids, leaf first
	vals []int64  // one per sample type
}

// parsedProfile is the subset of profile.proto the folder consumes.
type parsedProfile struct {
	sampleTypes   []valueType
	samples       []parsedSample
	locFuncs      map[uint64][]uint64 // location id → function ids, innermost (inlined) first
	funcNames     map[uint64]string
	durationNanos int64
}

// valueIndex returns the index into Sample.vals for the sample type
// with the given name, or -1.
func (p *parsedProfile) valueIndex(typ string) int {
	for i, st := range p.sampleTypes {
		if st.Type == typ {
			return i
		}
	}
	return -1
}

// stack expands a sample's location ids into function names, leaf
// first. Unknown ids are skipped.
func (p *parsedProfile) stack(s *parsedSample, out []string) []string {
	out = out[:0]
	for _, loc := range s.locs {
		for _, fn := range p.locFuncs[loc] {
			if name, ok := p.funcNames[fn]; ok {
				out = append(out, name)
			}
		}
	}
	return out
}

var errTruncated = errors.New("profile: truncated protobuf")

// protoReader is a minimal protobuf wire-format cursor.
type protoReader struct {
	b   []byte
	pos int
}

func (r *protoReader) done() bool { return r.pos >= len(r.b) }

func (r *protoReader) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if r.pos >= len(r.b) {
			return 0, errTruncated
		}
		c := r.b[r.pos]
		r.pos++
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v, nil
		}
	}
	return 0, errors.New("profile: varint overflows 64 bits")
}

// tag reads the next field tag, returning field number and wire type.
func (r *protoReader) tag() (int, int, error) {
	v, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// bytesField reads a length-delimited field body.
func (r *protoReader) bytesField() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.pos) {
		return nil, errTruncated
	}
	b := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

func (r *protoReader) skip(wire int) error {
	switch wire {
	case 0: // varint
		_, err := r.varint()
		return err
	case 1: // fixed64
		if len(r.b)-r.pos < 8 {
			return errTruncated
		}
		r.pos += 8
		return nil
	case 2: // length-delimited
		_, err := r.bytesField()
		return err
	case 5: // fixed32
		if len(r.b)-r.pos < 4 {
			return errTruncated
		}
		r.pos += 4
		return nil
	default:
		return fmt.Errorf("profile: unsupported wire type %d", wire)
	}
}

// uint64s appends one-or-packed varint values of a repeated integer
// field: wire type 2 is the packed encoding, 0 a single element.
func uint64s(r *protoReader, wire int, out []uint64) ([]uint64, error) {
	if wire == 0 {
		v, err := r.varint()
		if err != nil {
			return out, err
		}
		return append(out, v), nil
	}
	body, err := r.bytesField()
	if err != nil {
		return out, err
	}
	pr := protoReader{b: body}
	for !pr.done() {
		v, err := pr.varint()
		if err != nil {
			return out, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parsePprof decodes a (possibly gzipped) profile.proto message.
func parsePprof(data []byte) (*parsedProfile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
		data, err = io.ReadAll(io.LimitReader(zr, maxUncompressedProfile))
		if err != nil {
			return nil, fmt.Errorf("profile: gunzip: %w", err)
		}
	}
	p := &parsedProfile{
		locFuncs:  make(map[uint64][]uint64),
		funcNames: make(map[uint64]string),
	}
	// String-table indices are resolved after the full pass: the table
	// is field 6 and interleaves with the fields that reference it.
	var strs []string
	type vtRef struct{ typ, unit uint64 }
	var stRefs []vtRef
	type fnRef struct{ id, name uint64 }
	var fnRefs []fnRef

	r := protoReader{b: data}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // sample_type: ValueType{type=1, unit=2} as string-table indices
			body, err := r.bytesField()
			if err != nil {
				return nil, err
			}
			var ref vtRef
			vr := protoReader{b: body}
			for !vr.done() {
				f, w, err := vr.tag()
				if err != nil {
					return nil, err
				}
				switch f {
				case 1:
					ref.typ, err = vr.varint()
				case 2:
					ref.unit, err = vr.varint()
				default:
					err = vr.skip(w)
				}
				if err != nil {
					return nil, err
				}
			}
			stRefs = append(stRefs, ref)
		case 2: // sample: Sample{location_id=1, value=2}
			body, err := r.bytesField()
			if err != nil {
				return nil, err
			}
			var s parsedSample
			var raw []uint64
			sr := protoReader{b: body}
			for !sr.done() {
				f, w, err := sr.tag()
				if err != nil {
					return nil, err
				}
				switch f {
				case 1:
					s.locs, err = uint64s(&sr, w, s.locs)
				case 2:
					raw, err = uint64s(&sr, w, raw)
				default:
					err = sr.skip(w)
				}
				if err != nil {
					return nil, err
				}
			}
			s.vals = make([]int64, len(raw))
			for i, v := range raw {
				s.vals[i] = int64(v)
			}
			p.samples = append(p.samples, s)
		case 4: // location: Location{id=1, line=4{function_id=1}}
			body, err := r.bytesField()
			if err != nil {
				return nil, err
			}
			var id uint64
			var fns []uint64
			lr := protoReader{b: body}
			for !lr.done() {
				f, w, err := lr.tag()
				if err != nil {
					return nil, err
				}
				switch f {
				case 1:
					id, err = lr.varint()
				case 4:
					var line []byte
					line, err = lr.bytesField()
					if err == nil {
						nr := protoReader{b: line}
						for !nr.done() {
							lf, lw, lerr := nr.tag()
							if lerr != nil {
								return nil, lerr
							}
							if lf == 1 {
								var fn uint64
								fn, lerr = nr.varint()
								if lerr != nil {
									return nil, lerr
								}
								fns = append(fns, fn)
							} else if lerr = nr.skip(lw); lerr != nil {
								return nil, lerr
							}
						}
					}
				default:
					err = lr.skip(w)
				}
				if err != nil {
					return nil, err
				}
			}
			if id != 0 {
				p.locFuncs[id] = fns
			}
		case 5: // function: Function{id=1, name=2 as string-table index}
			body, err := r.bytesField()
			if err != nil {
				return nil, err
			}
			var ref fnRef
			fr := protoReader{b: body}
			for !fr.done() {
				f, w, err := fr.tag()
				if err != nil {
					return nil, err
				}
				switch f {
				case 1:
					ref.id, err = fr.varint()
				case 2:
					ref.name, err = fr.varint()
				default:
					err = fr.skip(w)
				}
				if err != nil {
					return nil, err
				}
			}
			fnRefs = append(fnRefs, ref)
		case 6: // string_table
			body, err := r.bytesField()
			if err != nil {
				return nil, err
			}
			strs = append(strs, string(body))
		case 10: // duration_nanos
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			p.durationNanos = int64(v)
		default:
			if err := r.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i uint64) string {
		if i < uint64(len(strs)) {
			return strs[i]
		}
		return ""
	}
	for _, ref := range stRefs {
		p.sampleTypes = append(p.sampleTypes, valueType{Type: str(ref.typ), Unit: str(ref.unit)})
	}
	for _, ref := range fnRefs {
		if ref.id != 0 {
			p.funcNames[ref.id] = str(ref.name)
		}
	}
	return p, nil
}
