// Folding parsed pprof samples into per-function / per-package flat
// tables, and diffing two folded tables symbol by symbol.
package profile

import (
	"sort"
	"strings"
)

// Profile kinds a capture can carry. heap_inuse is a live gauge; the
// others are per-interval deltas (CPU by construction of the sampling
// window, heap_alloc/mutex/block by subtracting the previous capture's
// cumulative fold).
const (
	KindCPU       = "cpu"
	KindHeapInuse = "heap_inuse"
	KindHeapAlloc = "heap_alloc"
	KindMutex     = "mutex"
	KindBlock     = "block"
)

// Kinds lists every profile kind in display order.
var Kinds = []string{KindCPU, KindHeapInuse, KindHeapAlloc, KindMutex, KindBlock}

// Sample is one row of a folded flat table: a function's self (flat)
// and inclusive (cum) value.
type Sample struct {
	Func string `json:"func"`
	Pkg  string `json:"pkg"`
	Flat int64  `json:"flat"`
	Cum  int64  `json:"cum"`
}

// PkgSample aggregates flat values by package.
type PkgSample struct {
	Pkg  string `json:"pkg"`
	Flat int64  `json:"flat"`
}

// Folded is one profile kind reduced to a flat table: the top-N
// functions by flat value plus per-package totals. Total covers every
// sample, including rows dropped by the top-N truncation.
type Folded struct {
	Kind     string      `json:"kind"`
	Unit     string      `json:"unit"`
	Total    int64       `json:"total"`
	Rows     []Sample    `json:"rows"`
	Dropped  int         `json:"dropped_rows,omitempty"`
	Packages []PkgSample `json:"packages,omitempty"`
}

// Row returns the row for fn, or nil.
func (f *Folded) Row(fn string) *Sample {
	for i := range f.Rows {
		if f.Rows[i].Func == fn {
			return &f.Rows[i]
		}
	}
	return nil
}

// pkgOf extracts the import-path-ish package prefix from a symbol
// name: everything up to the first dot after the last slash
// ("xar/internal/core.(*Engine).Search" → "xar/internal/core",
// "runtime.mallocgc" → "runtime").
func pkgOf(fn string) string {
	slash := strings.LastIndexByte(fn, '/')
	dot := strings.IndexByte(fn[slash+1:], '.')
	if dot < 0 {
		return fn
	}
	return fn[:slash+1+dot]
}

// folder accumulates per-function flat/cum values for one kind. It
// keeps the full symbol map; truncation to top-N happens in finish.
type folder struct {
	rows  map[string]*Sample
	total int64
}

func newFolder() *folder {
	return &folder{rows: make(map[string]*Sample)}
}

func (f *folder) row(fn string) *Sample {
	s := f.rows[fn]
	if s == nil {
		s = &Sample{Func: fn, Pkg: pkgOf(fn)}
		f.rows[fn] = s
	}
	return s
}

// add folds one sample: stack is leaf-first, v the sample's value.
// The leaf gets flat; every distinct frame gets cum (dedup so
// recursive frames are not double-counted).
func (f *folder) add(stack []string, v int64, seen map[string]bool) {
	if len(stack) == 0 || v == 0 {
		return
	}
	f.total += v
	f.row(stack[0]).Flat += v
	clear(seen)
	for _, fn := range stack {
		if seen[fn] {
			continue
		}
		seen[fn] = true
		f.row(fn).Cum += v
	}
}

// foldParsed folds every sample of p using the value at index vi.
func foldParsed(p *parsedProfile, vi int) *folder {
	f := newFolder()
	seen := make(map[string]bool, 64)
	var stack []string
	for i := range p.samples {
		s := &p.samples[i]
		if vi >= len(s.vals) {
			continue
		}
		stack = p.stack(s, stack)
		f.add(stack, s.vals[vi], seen)
	}
	return f
}

// snapshot copies the folder's rows into a plain map keyed by
// function, for use as the "previous cumulative" baseline.
func (f *folder) snapshot() map[string]Sample {
	out := make(map[string]Sample, len(f.rows))
	for fn, s := range f.rows {
		out[fn] = *s
	}
	return out
}

// subtract rewrites f in place as f − prev per symbol, clamped at
// zero (the runtime's cumulative profiles are monotone; clamping
// absorbs any symbol-table drift). Rows that vanish entirely are
// removed and the total recomputed from the surviving flats.
func (f *folder) subtract(prev map[string]Sample) {
	f.total = 0
	for fn, s := range f.rows {
		if p, ok := prev[fn]; ok {
			s.Flat -= p.Flat
			s.Cum -= p.Cum
		}
		if s.Flat < 0 {
			s.Flat = 0
		}
		if s.Cum < 0 {
			s.Cum = 0
		}
		if s.Flat == 0 && s.Cum == 0 {
			delete(f.rows, fn)
			continue
		}
		f.total += s.Flat
	}
}

// finish reduces the folder to a Folded table: rows sorted by flat
// descending (name ascending on ties), truncated to topN, plus
// per-package flat totals over the full pre-truncation row set.
func (f *folder) finish(kind, unit string, topN int) *Folded {
	out := &Folded{Kind: kind, Unit: unit, Total: f.total}
	rows := make([]Sample, 0, len(f.rows))
	pkgs := make(map[string]int64)
	for _, s := range f.rows {
		rows = append(rows, *s)
		pkgs[s.Pkg] += s.Flat
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Flat != rows[j].Flat {
			return rows[i].Flat > rows[j].Flat
		}
		return rows[i].Func < rows[j].Func
	})
	if topN > 0 && len(rows) > topN {
		out.Dropped = len(rows) - topN
		rows = rows[:topN]
	}
	out.Rows = rows
	for pkg, v := range pkgs {
		if v != 0 {
			out.Packages = append(out.Packages, PkgSample{Pkg: pkg, Flat: v})
		}
	}
	sort.Slice(out.Packages, func(i, j int) bool {
		if out.Packages[i].Flat != out.Packages[j].Flat {
			return out.Packages[i].Flat > out.Packages[j].Flat
		}
		return out.Packages[i].Pkg < out.Packages[j].Pkg
	})
	return out
}

// DiffRow is one symbol's movement between two captures.
type DiffRow struct {
	Func  string `json:"func"`
	Pkg   string `json:"pkg"`
	From  int64  `json:"from"`
	To    int64  `json:"to"`
	Delta int64  `json:"delta"`
}

// Diff is the symbol-level delta of one kind between two captures:
// which functions got more expensive (positive delta) or cheaper
// (negative) from the older capture to the newer. Rows are sorted by
// |delta| descending so the biggest movers lead.
type Diff struct {
	Kind       string    `json:"kind"`
	Unit       string    `json:"unit"`
	FromID     uint64    `json:"from_id"`
	ToID       uint64    `json:"to_id"`
	FromUnix   float64   `json:"from_unix"`
	ToUnix     float64   `json:"to_unix"`
	TotalFrom  int64     `json:"total_from"`
	TotalTo    int64     `json:"total_to"`
	TotalDelta int64     `json:"total_delta"`
	Rows       []DiffRow `json:"rows"`
}

// diffFolded computes to − from over the union of both flat tables.
// Zero-delta symbols are omitted; limit > 0 truncates.
func diffFolded(from, to *Folded, limit int) *Diff {
	d := &Diff{
		Kind:       to.Kind,
		Unit:       to.Unit,
		TotalFrom:  from.Total,
		TotalTo:    to.Total,
		TotalDelta: to.Total - from.Total,
	}
	fv := make(map[string]int64, len(from.Rows))
	for _, s := range from.Rows {
		fv[s.Func] = s.Flat
	}
	seen := make(map[string]bool, len(to.Rows))
	for _, s := range to.Rows {
		seen[s.Func] = true
		if delta := s.Flat - fv[s.Func]; delta != 0 {
			d.Rows = append(d.Rows, DiffRow{Func: s.Func, Pkg: s.Pkg, From: fv[s.Func], To: s.Flat, Delta: delta})
		}
	}
	for _, s := range from.Rows {
		if !seen[s.Func] && s.Flat != 0 {
			d.Rows = append(d.Rows, DiffRow{Func: s.Func, Pkg: s.Pkg, From: s.Flat, To: 0, Delta: -s.Flat})
		}
	}
	abs := func(v int64) int64 {
		if v < 0 {
			return -v
		}
		return v
	}
	sort.Slice(d.Rows, func(i, j int) bool {
		if abs(d.Rows[i].Delta) != abs(d.Rows[j].Delta) {
			return abs(d.Rows[i].Delta) > abs(d.Rows[j].Delta)
		}
		return d.Rows[i].Func < d.Rows[j].Func
	})
	if limit > 0 && len(d.Rows) > limit {
		d.Rows = d.Rows[:limit]
	}
	return d
}
