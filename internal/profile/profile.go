// Package profile implements always-on continuous profiling for the
// engine: a background worker that periodically captures delta
// profiles — a short duty-cycled CPU window, heap in-use and
// allocation deltas, mutex and block contention deltas, and goroutine
// counts by state — folds each capture into per-function /
// per-package flat tables, and stores them in fixed-memory
// overwrite-oldest rings (a fine ring of every capture and a coarse
// one-per-hour ring, mirroring telemetry.Recorder's two resolutions,
// plus an always-keep ring of captures pinned by SLO page
// transitions).
//
// The worker runs under the same duty-cycle discipline as the memory
// monitor: after a capture whose active work took d, the next one is
// at least 99×d away, bounding fold cost to ≤1% of one core. The
// passive CPU sampling window (the profiler sleeping while the
// runtime samples) is deliberately excluded from d — it costs
// samples, not a core — so the default 60s cadence holds with a 1s
// window; it instead carries its own 9× floor bounding SIGPROF
// exposure to ≤10% of wall time however short the interval. The
// overhead gauge the profiler publishes (xar_profile_overhead_ratio)
// tracks the active-work definition only.
package profile

import (
	"bufio"
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"xar/internal/memsize"
	"xar/internal/telemetry"
)

const (
	// DefaultInterval between captures (xarserver -profile-interval).
	DefaultInterval = 60 * time.Second
	// DefaultCPUWindow is the CPU sampling window inside each capture.
	DefaultCPUWindow = time.Second

	defaultFineSlots   = 64
	defaultCoarseSlots = 48
	defaultPinnedSlots = 16
	defaultCoarseEvery = time.Hour
	defaultTopN        = 64
	defaultMaxRawBytes = 1 << 20

	// defaultMutexFraction samples 1-in-N mutex contention events;
	// defaultBlockRateNs samples blocking events longer than ~100µs.
	// Both are set once when the profiler is built (runtime globals).
	defaultMutexFraction = 64
	defaultBlockRateNs   = 100_000

	// captureDutyCycle bounds the worker to ≤1% of one core: after a
	// capture whose active work took d, sleep at least 99×d (the same
	// discipline as memSweepDutyCycle in internal/core).
	captureDutyCycle = 99
	// windowDutyCycle bounds the passive CPU sampling window to ≤10%
	// of wall time: SIGPROF delivery is cheap but not free, so an
	// aggressive interval must not degenerate into an always-sampled
	// process. At the defaults (1s window, 60s interval) it never
	// binds.
	windowDutyCycle = 9
)

// Metric names the profiler publishes.
const (
	CapturesTotalName   = "xar_profile_captures_total"
	CaptureDurationName = "xar_profile_capture_duration_seconds"
	OverheadRatioName   = "xar_profile_overhead_ratio"
)

// Config tunes a Profiler. The zero value plus a Registry is a
// production configuration.
type Config struct {
	// Registry receives the profiler's instruments (optional).
	Registry *telemetry.Registry
	// CPUWindow is the CPU sampling window per capture (0 → 1s,
	// negative → CPU capture disabled).
	CPUWindow time.Duration
	// FineSlots / CoarseSlots / PinnedSlots size the three rings
	// (0 → 64 / 48 / 16). Memory is fixed at ring capacity.
	FineSlots   int
	CoarseSlots int
	PinnedSlots int
	// CoarseEvery is the coarse ring's cadence (0 → 1h).
	CoarseEvery time.Duration
	// TopN truncates each folded flat table (0 → 64 rows).
	TopN int
	// MaxRawBytes caps each stored raw pprof blob (0 → 1 MiB);
	// larger blobs keep their fold but drop the raw export.
	MaxRawBytes int
	// MutexFraction / BlockRate set the runtime's mutex and block
	// sampling once at startup (0 → 64 / 100µs, negative → leave the
	// process setting untouched).
	MutexFraction int
	BlockRate     int
	// Logf, when set, receives one line per skipped or failed capture.
	Logf func(format string, args ...any)
}

// Capture is one profiling snapshot: every kind folded to a flat
// table, goroutine counts by state, and the raw pprof blobs backing
// the folds (loadable by `go tool pprof`). Captures are immutable
// once stored except for the pin flag, which only mutates under the
// profiler's lock.
type Capture struct {
	ID   uint64  `json:"id"`
	Unix float64 `json:"unix"`
	// WorkSeconds is the capture's active cost — acquiring/stopping
	// the CPU profile, snapshotting and folding — and excludes the
	// passive CPU window. It is what the duty cycle budgets.
	WorkSeconds float64 `json:"work_seconds"`
	// CPUWindowSeconds is the realized sampling window (shorter than
	// configured when a Close interrupted it).
	CPUWindowSeconds float64 `json:"cpu_window_seconds,omitempty"`
	// CPUSkipped is set when the CPU arbiter was busy (a page-
	// triggered capture or an operator profile held the slot).
	CPUSkipped   bool           `json:"cpu_skipped,omitempty"`
	Pinned       bool           `json:"pinned,omitempty"`
	PinReason    string         `json:"pin_reason,omitempty"`
	NumGoroutine int            `json:"num_goroutine"`
	Goroutines   map[string]int `json:"goroutines_by_state,omitempty"`
	Profiles     []*Folded      `json:"profiles"`

	raw map[string][]byte // raw pprof blobs: cpu, heap, mutex, block
}

// Folded returns the flat table for kind, or nil.
func (c *Capture) Folded(kind string) *Folded {
	for _, f := range c.Profiles {
		if f.Kind == kind {
			return f
		}
	}
	return nil
}

// Raw returns the raw pprof blob named name (cpu, heap, mutex or
// block — heap backs both heap kinds), or nil.
func (c *Capture) Raw(name string) []byte { return c.raw[name] }

// RawNames lists the capture's raw blobs in stable order.
func (c *Capture) RawNames() []string {
	names := make([]string, 0, len(c.raw))
	for n := range c.raw {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Summary is the list-endpoint view of a capture.
type Summary struct {
	ID           uint64   `json:"id"`
	Unix         float64  `json:"unix"`
	Rings        []string `json:"rings"`
	Pinned       bool     `json:"pinned,omitempty"`
	PinReason    string   `json:"pin_reason,omitempty"`
	CPUSkipped   bool     `json:"cpu_skipped,omitempty"`
	WorkSeconds  float64  `json:"work_seconds"`
	NumGoroutine int      `json:"num_goroutine"`
	Kinds        []string `json:"kinds"`
}

// ListFilter narrows List.
type ListFilter struct {
	PinnedOnly bool
	Since      float64 // unix seconds; 0 → no lower bound
	Limit      int     // 0 → all
}

// capRing is a fixed-capacity overwrite-oldest ring of captures.
type capRing struct {
	slots []*Capture
	next  int
	count int
}

func newCapRing(n int) capRing { return capRing{slots: make([]*Capture, n)} }

func (r *capRing) add(c *Capture) {
	if len(r.slots) == 0 {
		return
	}
	r.slots[r.next] = c
	r.next = (r.next + 1) % len(r.slots)
	if r.count < len(r.slots) {
		r.count++
	}
}

func (r *capRing) newest() *Capture {
	if r.count == 0 {
		return nil
	}
	return r.slots[(r.next-1+len(r.slots))%len(r.slots)]
}

// each visits oldest → newest.
func (r *capRing) each(fn func(*Capture)) {
	start := r.next - r.count
	for i := 0; i < r.count; i++ {
		fn(r.slots[(start+i+len(r.slots))%len(r.slots)])
	}
}

// pendingFold is a cumulative fold awaiting delta subtraction at
// commit time.
type pendingFold struct {
	kind string
	unit string
	f    *folder
}

// Profiler is the continuous profiler. Build with New, then either
// Start a background worker (the engine does this when
// Config.ProfileInterval > 0) or call CaptureNow directly.
type Profiler struct {
	cfg       Config
	startTime time.Time

	// capMu serializes captures (the worker and CaptureNow callers).
	capMu    sync.Mutex
	stackBuf []byte

	// mu guards the rings, delta baselines, pin state and counters.
	mu             sync.Mutex
	nextID         uint64
	fine           capRing
	coarse         capRing
	pinned         capRing
	lastCoarseUnix float64
	pinNext        string
	prev           map[string]map[string]Sample // kind → cumulative baseline
	workTotal      time.Duration

	lifeMu   sync.Mutex
	started  bool
	closed   bool
	sampling bool
	stop     chan struct{}
	done     chan struct{}

	captures *telemetry.Counter
	capDur   *telemetry.Histogram
	overhead *telemetry.Gauge
}

// Runtime sampling rates are process globals; refcount so the last
// live profiler restores them (keeps interleaved off/on benchmark
// arms honest about what "off" means).
var (
	sampleMu          sync.Mutex
	sampleRefs        int
	prevMutexFraction int
)

func enableSampling(mutexFraction, blockRate int) {
	sampleMu.Lock()
	defer sampleMu.Unlock()
	if sampleRefs == 0 {
		prevMutexFraction = runtime.SetMutexProfileFraction(mutexFraction)
		runtime.SetBlockProfileRate(blockRate)
	}
	sampleRefs++
}

func disableSampling() {
	sampleMu.Lock()
	defer sampleMu.Unlock()
	sampleRefs--
	if sampleRefs == 0 {
		runtime.SetMutexProfileFraction(prevMutexFraction)
		runtime.SetBlockProfileRate(0)
	}
}

// New builds a Profiler and applies the mutex/block sampling rates.
// It does not start the worker; see Start.
func New(cfg Config) *Profiler {
	if cfg.CPUWindow == 0 {
		cfg.CPUWindow = DefaultCPUWindow
	}
	if cfg.FineSlots <= 0 {
		cfg.FineSlots = defaultFineSlots
	}
	if cfg.CoarseSlots <= 0 {
		cfg.CoarseSlots = defaultCoarseSlots
	}
	if cfg.PinnedSlots <= 0 {
		cfg.PinnedSlots = defaultPinnedSlots
	}
	if cfg.CoarseEvery <= 0 {
		cfg.CoarseEvery = defaultCoarseEvery
	}
	if cfg.TopN <= 0 {
		cfg.TopN = defaultTopN
	}
	if cfg.MaxRawBytes <= 0 {
		cfg.MaxRawBytes = defaultMaxRawBytes
	}
	if cfg.MutexFraction == 0 {
		cfg.MutexFraction = defaultMutexFraction
	}
	if cfg.BlockRate == 0 {
		cfg.BlockRate = defaultBlockRateNs
	}
	p := &Profiler{
		cfg:       cfg,
		startTime: time.Now(),
		fine:      newCapRing(cfg.FineSlots),
		coarse:    newCapRing(cfg.CoarseSlots),
		pinned:    newCapRing(cfg.PinnedSlots),
		prev:      make(map[string]map[string]Sample),
		stop:      make(chan struct{}),
	}
	if cfg.MutexFraction > 0 && cfg.BlockRate > 0 {
		enableSampling(cfg.MutexFraction, cfg.BlockRate)
		p.sampling = true
	}
	if reg := cfg.Registry; reg != nil {
		p.captures = reg.Counter(CapturesTotalName, "profile captures taken", nil)
		p.capDur = reg.Histogram(CaptureDurationName, "active capture work per profile capture", telemetry.DurationBuckets(), nil)
		p.overhead = reg.Gauge(OverheadRatioName, "fraction of wall time spent on active capture work since the profiler started", nil)
	}
	return p
}

func (p *Profiler) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// Start launches the background worker at the given cadence
// (0 → DefaultInterval). Idempotent; no-op after Close.
func (p *Profiler) Start(interval time.Duration) {
	if interval <= 0 {
		interval = DefaultInterval
	}
	p.lifeMu.Lock()
	defer p.lifeMu.Unlock()
	if p.started || p.closed {
		return
	}
	p.started = true
	p.done = make(chan struct{})
	go p.loop(interval)
}

func (p *Profiler) loop(interval time.Duration) {
	defer close(p.done)
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-timer.C:
		}
		c := p.capture("")
		// Duty-cycle active work and the CPU window separately: the
		// window is a passive wait that costs samples rather than a
		// core, but SIGPROF delivery is not free either (measured
		// ~13% on a saturated single-core host with back-to-back
		// windows), so it gets its own, looser budget instead of the
		// 99x work floor — which would stretch the default 60s
		// cadence to ~100s for a 1s window.
		delay := interval
		if c != nil {
			if floor := time.Duration(c.WorkSeconds*float64(time.Second)) * captureDutyCycle; floor > delay {
				delay = floor
			}
			if floor := time.Duration(c.CPUWindowSeconds*float64(time.Second)) * windowDutyCycle; floor > delay {
				delay = floor
			}
		}
		timer.Reset(delay)
	}
}

// Close stops the worker, interrupting a mid-capture CPU window, and
// restores the runtime sampling rates. Safe to call more than once
// and concurrently with captures.
func (p *Profiler) Close() {
	p.lifeMu.Lock()
	var done chan struct{}
	first := !p.closed
	if first {
		p.closed = true
		close(p.stop)
	}
	done = p.done
	p.lifeMu.Unlock()
	if done != nil {
		<-done
	}
	if first && p.sampling {
		disableSampling()
	}
}

// CaptureNow takes one capture synchronously and stores it in the
// rings. Safe to call while the worker runs (captures serialize).
func (p *Profiler) CaptureNow() *Capture { return p.capture("") }

// PinLatest pins the newest capture into the always-keep ring and
// flags the next capture to pin too, bracketing the event with
// profiles on both sides.
func (p *Profiler) PinLatest(reason string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pinNext = reason
	if c := p.fine.newest(); c != nil && !c.Pinned {
		c.Pinned = true
		c.PinReason = reason
		p.pinned.add(c)
	}
}

// AttachTo pins captures around slo's page transitions, the way the
// trace store pins slow/error traces.
func (p *Profiler) AttachTo(slo *telemetry.SLOEngine) {
	slo.OnPage(func(st telemetry.SLOStatus) { p.PinLatest("slo-page:" + st.Name) })
}

func (p *Profiler) capture(trigger string) *Capture {
	p.capMu.Lock()
	defer p.capMu.Unlock()

	c := &Capture{raw: make(map[string][]byte)}
	var work time.Duration
	var pending []pendingFold

	if p.cfg.CPUWindow > 0 {
		var buf bytes.Buffer
		t0 := time.Now()
		if err := acquireCPU(&buf); err != nil {
			c.CPUSkipped = true
			p.logf("profile: cpu window skipped: %v", err)
		} else {
			armed := time.Now()
			timer := time.NewTimer(p.cfg.CPUWindow)
			select {
			case <-p.stop: // Close interrupts the window
			case <-timer.C:
			}
			timer.Stop()
			windowEnd := time.Now()
			releaseCPU()
			c.CPUWindowSeconds = windowEnd.Sub(armed).Seconds()
			work += armed.Sub(t0)
			foldStart := time.Now()
			if parsed, err := parsePprof(buf.Bytes()); err != nil {
				p.logf("profile: cpu parse: %v", err)
			} else if vi := parsed.valueIndex("cpu"); vi >= 0 {
				c.Profiles = append(c.Profiles, foldParsed(parsed, vi).finish(KindCPU, "nanoseconds", p.cfg.TopN))
			}
			if len(buf.Bytes()) <= p.cfg.MaxRawBytes {
				c.raw["cpu"] = buf.Bytes()
			}
			work += time.Since(foldStart)
		}
	}

	workStart := time.Now()
	c.NumGoroutine = runtime.NumGoroutine()
	c.Goroutines = p.goroutineStates()

	// heap: inuse_space is a live gauge, alloc_space cumulative.
	if raw, parsed, ok := p.lookup("heap"); ok {
		if vi := parsed.valueIndex("inuse_space"); vi >= 0 {
			c.Profiles = append(c.Profiles, foldParsed(parsed, vi).finish(KindHeapInuse, "bytes", p.cfg.TopN))
		}
		if vi := parsed.valueIndex("alloc_space"); vi >= 0 {
			pending = append(pending, pendingFold{KindHeapAlloc, "bytes", foldParsed(parsed, vi)})
		}
		if len(raw) <= p.cfg.MaxRawBytes {
			c.raw["heap"] = raw
		}
	}
	// mutex/block: the runtime writes delay in nanoseconds, cumulative
	// since the sampling rate was set.
	for _, kind := range []struct{ lookup, kind string }{{"mutex", KindMutex}, {"block", KindBlock}} {
		raw, parsed, ok := p.lookup(kind.lookup)
		if !ok {
			continue
		}
		if vi := parsed.valueIndex("delay"); vi >= 0 {
			pending = append(pending, pendingFold{kind.kind, "nanoseconds", foldParsed(parsed, vi)})
		}
		if len(raw) <= p.cfg.MaxRawBytes {
			c.raw[kind.lookup] = raw
		}
	}
	work += time.Since(workStart)

	// Commit: assign the id, subtract cumulative baselines, pin, ring.
	commitStart := time.Now()
	p.mu.Lock()
	p.nextID++
	c.ID = p.nextID
	c.Unix = float64(time.Now().UnixNano()) / 1e9
	for _, pf := range pending {
		snap := pf.f.snapshot()
		if prev, ok := p.prev[pf.kind]; ok {
			pf.f.subtract(prev)
		}
		// First capture: the delta is "since the profiler started",
		// which is the interval it actually covers.
		p.prev[pf.kind] = snap
		c.Profiles = append(c.Profiles, pf.f.finish(pf.kind, pf.unit, p.cfg.TopN))
	}
	if trigger != "" && p.pinNext == "" {
		p.pinNext = trigger
	}
	if p.pinNext != "" {
		c.Pinned = true
		c.PinReason = p.pinNext
		p.pinNext = ""
		p.pinned.add(c)
	}
	p.fine.add(c)
	if p.lastCoarseUnix == 0 || c.Unix-p.lastCoarseUnix >= p.cfg.CoarseEvery.Seconds() {
		p.coarse.add(c)
		p.lastCoarseUnix = c.Unix
	}
	work += time.Since(commitStart)
	c.WorkSeconds = work.Seconds()
	p.workTotal += work
	if p.captures != nil {
		p.captures.Inc()
		p.capDur.Observe(c.WorkSeconds)
		if wall := time.Since(p.startTime).Seconds(); wall > 0 {
			r := p.workTotal.Seconds() / wall
			if r > 1 {
				r = 1
			}
			p.overhead.Set(r)
		}
	}
	p.mu.Unlock()
	return c
}

// lookup serializes a runtime profile to its pprof protobuf form and
// parses it back.
func (p *Profiler) lookup(name string) ([]byte, *parsedProfile, bool) {
	prof := pprof.Lookup(name)
	if prof == nil {
		return nil, nil, false
	}
	var buf bytes.Buffer
	if err := prof.WriteTo(&buf, 0); err != nil {
		p.logf("profile: %s: %v", name, err)
		return nil, nil, false
	}
	parsed, err := parsePprof(buf.Bytes())
	if err != nil {
		p.logf("profile: %s parse: %v", name, err)
		return nil, nil, false
	}
	return buf.Bytes(), parsed, true
}

// goroutineStates counts goroutines by scheduler state ("running",
// "chan receive", "IO wait", ...) from a full runtime.Stack dump.
// Called with capMu held (reuses the profiler's scratch buffer).
func (p *Profiler) goroutineStates() map[string]int {
	if p.stackBuf == nil {
		p.stackBuf = make([]byte, 1<<20)
	}
	var dump []byte
	for {
		n := runtime.Stack(p.stackBuf, true)
		if n < len(p.stackBuf) || len(p.stackBuf) >= 8<<20 {
			dump = p.stackBuf[:n]
			break
		}
		p.stackBuf = make([]byte, 2*len(p.stackBuf))
	}
	counts := make(map[string]int)
	sc := bufio.NewScanner(bytes.NewReader(dump))
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "goroutine ") {
			continue
		}
		i := strings.IndexByte(line, '[')
		if i < 0 {
			continue
		}
		j := strings.IndexAny(line[i+1:], ",]")
		if j < 0 {
			continue
		}
		counts[line[i+1:i+1+j]]++
	}
	return counts
}

// find returns the stored capture with the given id, or nil.
// Caller holds p.mu.
func (p *Profiler) find(id uint64) *Capture {
	var found *Capture
	for _, r := range []*capRing{&p.fine, &p.coarse, &p.pinned} {
		r.each(func(c *Capture) {
			if c.ID == id {
				found = c
			}
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// Get returns a copy of the capture with the given id. The copy
// shares the (immutable) fold tables and raw blobs; the mutable pin
// flag is snapshotted under the lock.
func (p *Profiler) Get(id uint64) (Capture, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c := p.find(id); c != nil {
		return *c, true
	}
	return Capture{}, false
}

// Newest returns a copy of the most recent capture, or false.
func (p *Profiler) Newest() (Capture, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c := p.fine.newest(); c != nil {
		return *c, true
	}
	return Capture{}, false
}

// List returns capture summaries, newest first, across all rings.
func (p *Profiler) List(f ListFilter) []Summary {
	p.mu.Lock()
	defer p.mu.Unlock()
	byID := make(map[uint64]*Summary)
	collect := func(name string, r *capRing) {
		r.each(func(c *Capture) {
			s := byID[c.ID]
			if s == nil {
				kinds := make([]string, 0, len(c.Profiles))
				for _, fd := range c.Profiles {
					kinds = append(kinds, fd.Kind)
				}
				s = &Summary{
					ID: c.ID, Unix: c.Unix,
					Pinned: c.Pinned, PinReason: c.PinReason,
					CPUSkipped: c.CPUSkipped, WorkSeconds: c.WorkSeconds,
					NumGoroutine: c.NumGoroutine, Kinds: kinds,
				}
				byID[c.ID] = s
			}
			s.Rings = append(s.Rings, name)
		})
	}
	collect("fine", &p.fine)
	collect("coarse", &p.coarse)
	collect("pinned", &p.pinned)
	out := make([]Summary, 0, len(byID))
	for _, s := range byID {
		if f.PinnedOnly && !s.Pinned {
			continue
		}
		if f.Since > 0 && s.Unix < f.Since {
			continue
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID > out[j].ID })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// DiffCaptures computes the symbol-level delta of one kind between
// two stored captures ("what regressed between 12:00 and 12:05").
func (p *Profiler) DiffCaptures(fromID, toID uint64, kind string, limit int) (*Diff, error) {
	from, ok := p.Get(fromID)
	if !ok {
		return nil, fmt.Errorf("profile: capture %d not found", fromID)
	}
	to, ok := p.Get(toID)
	if !ok {
		return nil, fmt.Errorf("profile: capture %d not found", toID)
	}
	ff, tf := from.Folded(kind), to.Folded(kind)
	if ff == nil || tf == nil {
		return nil, fmt.Errorf("profile: kind %q not present in both captures", kind)
	}
	d := diffFolded(ff, tf, limit)
	d.FromID, d.ToID = from.ID, to.ID
	d.FromUnix, d.ToUnix = from.Unix, to.Unix
	return d, nil
}

// MeasureMem implements memsize.Measurer: the rings, their captures
// (folds + raw blobs) and the delta baselines, walked under the
// profiler's lock. Nil-receiver-safe.
func (p *Profiler) MeasureMem(a *memsize.Accumulator) {
	if p == nil {
		return
	}
	p.mu.Lock()
	a.Add(p.fine.slots)
	a.Add(p.coarse.slots)
	a.Add(p.pinned.slots)
	a.Add(p.prev)
	p.mu.Unlock()
}

// formatValue renders a flat value in its unit for log summaries.
func formatValue(v int64, unit string) string {
	switch unit {
	case "nanoseconds":
		return time.Duration(v).Round(10 * time.Microsecond).String()
	case "bytes":
		switch {
		case v >= 1<<20:
			return fmt.Sprintf("%.1fMB", float64(v)/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%.1fKB", float64(v)/(1<<10))
		}
		return fmt.Sprintf("%dB", v)
	}
	return fmt.Sprintf("%d", v)
}

// TopLines renders kind's top-n rows as "flat  func" lines for the
// cmd tools' post-run summaries. Returns nil when the kind is absent
// or empty.
func TopLines(c *Capture, kind string, n int) []string {
	f := c.Folded(kind)
	if f == nil || len(f.Rows) == 0 || f.Total == 0 {
		return nil
	}
	if n > len(f.Rows) {
		n = len(f.Rows)
	}
	lines := make([]string, 0, n)
	for _, row := range f.Rows[:n] {
		if row.Flat == 0 {
			break
		}
		lines = append(lines, fmt.Sprintf("%10s %5.1f%%  %s",
			formatValue(row.Flat, f.Unit), 100*float64(row.Flat)/float64(f.Total), row.Func))
	}
	return lines
}

// TopSymbol returns the hottest function of kind and its share of the
// kind's total, for per-step attribution in bench artifacts.
func TopSymbol(c *Capture, kind string) (string, float64) {
	f := c.Folded(kind)
	if f == nil || len(f.Rows) == 0 || f.Total == 0 || f.Rows[0].Flat == 0 {
		return "", 0
	}
	return f.Rows[0].Func, float64(f.Rows[0].Flat) / float64(f.Total)
}

// SummaryLines renders a capture as per-kind top-n blocks — the
// post-run summary the cmd tools print. Kinds with no samples are
// omitted; a capture taken right after a baseline capture therefore
// summarizes just the work between the two (the cumulative kinds are
// deltas against the previous capture).
func SummaryLines(c *Capture, n int) []string {
	var lines []string
	for _, kind := range Kinds {
		top := TopLines(c, kind, n)
		if len(top) == 0 {
			continue
		}
		f := c.Folded(kind)
		lines = append(lines, fmt.Sprintf("%s (total %s):", kind, formatValue(f.Total, f.Unit)))
		for _, l := range top {
			lines = append(lines, "  "+l)
		}
	}
	return lines
}
