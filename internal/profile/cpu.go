// Process-wide CPU-profile arbitration, and the page-triggered
// CPUProfiler (moved here from internal/telemetry so both CPU-profile
// consumers — the flight recorder's page-triggered capture and the
// continuous profiler's periodic window — go through one owner).
//
// The runtime allows exactly one CPU profile at a time:
// pprof.StartCPUProfile returns an error if one is already running.
// Relying on that error alone is racy in reverse — whoever starts
// first wins, and a long page-triggered capture could starve every
// continuous window (or vice versa). acquireCPU/releaseCPU serialize
// both paths behind a package-level lock so a loser skips cleanly and
// at a well-defined boundary.
package profile

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"xar/internal/telemetry"
)

// ErrCPUBusy reports that another CPU profile owns the runtime's
// single profiling slot; the caller should skip this window.
var ErrCPUBusy = errors.New("profile: another CPU profile is already running")

var (
	cpuMu     sync.Mutex
	cpuActive bool
)

// acquireCPU starts a CPU profile writing to w, or fails with
// ErrCPUBusy if this package already owns the slot. A successful
// acquire must be paired with releaseCPU.
func acquireCPU(w io.Writer) error {
	cpuMu.Lock()
	defer cpuMu.Unlock()
	if cpuActive {
		return ErrCPUBusy
	}
	if err := pprof.StartCPUProfile(w); err != nil {
		// Someone outside this package (net/http/pprof, a test) holds
		// the runtime slot; treat it the same as a busy peer.
		return fmt.Errorf("%w: %v", ErrCPUBusy, err)
	}
	cpuActive = true
	return nil
}

// releaseCPU stops the profile started by acquireCPU and flushes w.
func releaseCPU() {
	cpuMu.Lock()
	defer cpuMu.Unlock()
	if !cpuActive {
		return
	}
	pprof.StopCPUProfile()
	cpuActive = false
}

// --- page-triggered CPU profiler ---

// CPUProfilerConfig tunes the page-triggered capture.
type CPUProfilerConfig struct {
	// Dir receives cpu-<unix>.pprof files (required).
	Dir string
	// Duration of each capture (0 → 10s).
	Duration time.Duration
	// Cooldown between captures (0 → 10m) so a flapping SLO cannot keep
	// the profiler pinned on.
	Cooldown time.Duration
	// Logf, when set, receives one line per capture or error.
	Logf func(format string, args ...any)
}

// CPUProfiler captures a short CPU profile when triggered — the
// "continuous profiling, but only when it matters" half of the flight
// recorder. At most one capture runs at a time; triggers during a
// capture or cooldown are dropped. Captures go through this package's
// CPU arbiter, so a trigger landing while the continuous profiler is
// mid-window (or an operator holds /debug/pprof/profile) is skipped
// rather than fought over.
type CPUProfiler struct {
	cfg CPUProfilerConfig

	mu      sync.Mutex
	running bool
	lastEnd time.Time
}

// NewCPUProfiler builds a profiler writing into cfg.Dir.
func NewCPUProfiler(cfg CPUProfilerConfig) *CPUProfiler {
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 10 * time.Minute
	}
	return &CPUProfiler{cfg: cfg}
}

// AttachTo arms the profiler on slo's page transitions.
func (p *CPUProfiler) AttachTo(slo *telemetry.SLOEngine) {
	slo.OnPage(func(st telemetry.SLOStatus) { p.Trigger(st.Name) })
}

// Trigger starts a capture in the background unless one is running or
// cooling down. Returns whether a capture started.
func (p *CPUProfiler) Trigger(reason string) bool {
	p.mu.Lock()
	if p.running || time.Since(p.lastEnd) < p.cfg.Cooldown {
		p.mu.Unlock()
		return false
	}
	p.running = true
	p.mu.Unlock()

	go p.capture(reason)
	return true
}

func (p *CPUProfiler) capture(reason string) {
	defer func() {
		p.mu.Lock()
		p.running = false
		p.lastEnd = time.Now()
		p.mu.Unlock()
	}()
	logf := p.cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(p.cfg.Dir, 0o755); err != nil {
		logf("cpu profiler: %v", err)
		return
	}
	path := filepath.Join(p.cfg.Dir, fmt.Sprintf("cpu-%d.pprof", time.Now().Unix()))
	f, err := os.Create(path)
	if err != nil {
		logf("cpu profiler: %v", err)
		return
	}
	if err := acquireCPU(f); err != nil {
		// Another CPU profile is in flight; yield rather than fight it.
		f.Close()
		os.Remove(path)
		logf("cpu profiler: skipped (%v)", err)
		return
	}
	time.Sleep(p.cfg.Duration)
	releaseCPU()
	if err := f.Close(); err != nil {
		logf("cpu profiler: %v", err)
		return
	}
	logf("cpu profiler: captured %s (trigger: %s)", path, reason)
}

// LastProfile returns the newest cpu-*.pprof in the profiler's
// directory, or "" when none exists — used by the debug bundle.
func (p *CPUProfiler) LastProfile() string {
	matches, err := filepath.Glob(filepath.Join(p.cfg.Dir, "cpu-*.pprof"))
	if err != nil || len(matches) == 0 {
		return ""
	}
	newest, newestMod := "", time.Time{}
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			continue
		}
		if fi.ModTime().After(newestMod) {
			newest, newestMod = m, fi.ModTime()
		}
	}
	return newest
}
