package profile

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"
)

func TestPkgOf(t *testing.T) {
	cases := map[string]string{
		"xar/internal/core.(*Engine).Search": "xar/internal/core",
		"runtime.mallocgc":                   "runtime",
		"main.main":                          "main",
		"github.com/x/y/z.F":                 "github.com/x/y/z",
		"crash":                              "crash",
	}
	for in, want := range cases {
		if got := pkgOf(in); got != want {
			t.Errorf("pkgOf(%q) = %q, want %q", in, got, want)
		}
	}
}

// synthProfile hand-builds a parsedProfile with two stacks:
//
//	a←b←c (leaf a), value 10
//	a←b   (leaf a), value 5
//	b←c   (leaf b), value 3
func synthProfile() *parsedProfile {
	return &parsedProfile{
		sampleTypes: []valueType{{Type: "cpu", Unit: "nanoseconds"}},
		samples: []parsedSample{
			{locs: []uint64{1, 2, 3}, vals: []int64{10}},
			{locs: []uint64{1, 2}, vals: []int64{5}},
			{locs: []uint64{2, 3}, vals: []int64{3}},
		},
		locFuncs:  map[uint64][]uint64{1: {101}, 2: {102}, 3: {103}},
		funcNames: map[uint64]string{101: "p/a.A", 102: "p/b.B", 103: "p/c.C"},
	}
}

func TestFoldFlatAndCum(t *testing.T) {
	f := foldParsed(synthProfile(), 0)
	out := f.finish(KindCPU, "nanoseconds", 0)
	if out.Total != 18 {
		t.Fatalf("total = %d, want 18", out.Total)
	}
	want := map[string][2]int64{ // flat, cum
		"p/a.A": {15, 15},
		"p/b.B": {3, 18},
		"p/c.C": {0, 13},
	}
	for fn, w := range want {
		r := out.Row(fn)
		if r == nil {
			t.Fatalf("row %s missing", fn)
		}
		if r.Flat != w[0] || r.Cum != w[1] {
			t.Errorf("%s: flat/cum = %d/%d, want %d/%d", fn, r.Flat, r.Cum, w[0], w[1])
		}
	}
	// Sorted by flat descending.
	if out.Rows[0].Func != "p/a.A" {
		t.Errorf("rows[0] = %s, want p/a.A", out.Rows[0].Func)
	}
	// Per-package flats over the full row set.
	if len(out.Packages) == 0 || out.Packages[0].Pkg != "p/a" || out.Packages[0].Flat != 15 {
		t.Errorf("packages = %+v, want p/a leading with 15", out.Packages)
	}
}

func TestFoldRecursionNoDoubleCum(t *testing.T) {
	p := &parsedProfile{
		sampleTypes: []valueType{{Type: "cpu", Unit: "nanoseconds"}},
		samples:     []parsedSample{{locs: []uint64{1, 1, 2}, vals: []int64{7}}},
		locFuncs:    map[uint64][]uint64{1: {101}, 2: {102}},
		funcNames:   map[uint64]string{101: "p.Rec", 102: "p.Root"},
	}
	out := foldParsed(p, 0).finish(KindCPU, "nanoseconds", 0)
	if r := out.Row("p.Rec"); r.Cum != 7 {
		t.Errorf("recursive frame cum = %d, want 7 (deduped)", r.Cum)
	}
}

func TestFoldTopNTruncation(t *testing.T) {
	f := foldParsed(synthProfile(), 0)
	out := f.finish(KindCPU, "nanoseconds", 1)
	if len(out.Rows) != 1 || out.Dropped != 2 {
		t.Fatalf("rows/dropped = %d/%d, want 1/2", len(out.Rows), out.Dropped)
	}
	if out.Total != 18 {
		t.Errorf("total after truncation = %d, want 18 (covers dropped rows)", out.Total)
	}
}

func TestSubtractDelta(t *testing.T) {
	prev := foldParsed(synthProfile(), 0)
	base := prev.snapshot()

	cur := foldParsed(synthProfile(), 0)
	// Simulate growth: a.A gained 5 flat since the baseline.
	cur.row("p/a.A").Flat += 5
	cur.row("p/a.A").Cum += 5
	cur.total += 5
	cur.subtract(base)
	if cur.total != 5 {
		t.Fatalf("delta total = %d, want 5", cur.total)
	}
	if s := cur.rows["p/a.A"]; s == nil || s.Flat != 5 {
		t.Fatalf("a.A delta = %+v, want flat 5", cur.rows["p/a.A"])
	}
	if _, ok := cur.rows["p/b.B"]; ok {
		t.Error("unchanged symbol survived subtraction")
	}
}

func TestDiffFolded(t *testing.T) {
	from := foldParsed(synthProfile(), 0).finish(KindCPU, "nanoseconds", 0)
	curF := foldParsed(synthProfile(), 0)
	curF.row("p/b.B").Flat += 100
	curF.total += 100
	to := curF.finish(KindCPU, "nanoseconds", 0)

	d := diffFolded(from, to, 0)
	if d.TotalDelta != 100 {
		t.Fatalf("total delta = %d, want 100", d.TotalDelta)
	}
	if len(d.Rows) != 1 || d.Rows[0].Func != "p/b.B" || d.Rows[0].Delta != 100 {
		t.Fatalf("diff rows = %+v, want single p/b.B +100", d.Rows)
	}
}

// allocForProfile keeps a named symbol alive in the heap profile.
var profileTestSink [][]byte

func allocForProfile() {
	for i := 0; i < 64; i++ {
		profileTestSink = append(profileTestSink, make([]byte, 64<<10))
	}
}

// TestParseRuntimeHeapProfile round-trips a real runtime heap profile
// through the wire-format parser: sample types resolve, stacks
// resolve to symbols, and a function that demonstrably allocated is
// present in the fold.
func TestParseRuntimeHeapProfile(t *testing.T) {
	allocForProfile()
	defer func() { profileTestSink = nil }()
	// The heap profile reflects the most recently completed GC cycle;
	// force one so the allocation above is fully recorded.
	runtime.GC()
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	p, err := parsePprof(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	vi := p.valueIndex("inuse_space")
	if vi < 0 {
		t.Fatalf("inuse_space not among sample types %+v", p.sampleTypes)
	}
	if p.sampleTypes[vi].Unit != "bytes" {
		t.Fatalf("inuse_space unit = %q, want bytes", p.sampleTypes[vi].Unit)
	}
	out := foldParsed(p, vi).finish(KindHeapInuse, "bytes", 0)
	if out.Total <= 0 {
		t.Fatal("heap fold total is zero")
	}
	found := false
	for _, r := range out.Rows {
		if r.Func == "xar/internal/profile.allocForProfile" {
			found = true
			if r.Flat < 1<<20 {
				t.Errorf("allocForProfile flat = %d, want ≥1MiB", r.Flat)
			}
		}
	}
	if !found {
		t.Error("allocForProfile not found in heap fold — stack symbolization broken")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := parsePprof([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Error("truncated gzip accepted")
	}
	// Field 1 (sample_type) with wire type 2 but a length running off
	// the end must error, not panic.
	if _, err := parsePprof([]byte{0x0a, 0x7f, 0x01}); err == nil {
		t.Error("truncated message accepted")
	}
}
