package telemetry

import (
	"sync/atomic"
	"testing"
	"time"
)

// sloFixture builds a registry with a latency histogram, a recorder
// (10s ticks), and an SLO engine with tight windows for fast tests.
type sloFixture struct {
	reg *Registry
	h   *Histogram
	rec *Recorder
	slo *SLOEngine
	now float64
}

func newSLOFixture(t *testing.T) *sloFixture {
	t.Helper()
	reg := NewRegistry()
	h := reg.Histogram(OpDurationName, "op latency", DurationBuckets(), L("op", "search"))
	rec := NewRecorder(reg, RecorderConfig{Interval: 10 * time.Second, Retention: time.Hour})
	slo := NewSLOEngine(rec, SLOConfig{
		ShortWindow: time.Minute,
		LongWindow:  5 * time.Minute,
	}, LatencyObjective("search-p95", OpDurationName, L("op", "search"), 0.010, 0.95))
	return &sloFixture{reg: reg, h: h, rec: rec, slo: slo, now: 10_000}
}

// tick advances simulated time one 10s step after recording n
// observations of v seconds.
func (f *sloFixture) tick(n int, v float64) {
	for i := 0; i < n; i++ {
		f.h.Observe(v)
	}
	f.rec.TickAt(f.now)
	f.now += 10
}

func (f *sloFixture) state(t *testing.T) SLOStatus {
	t.Helper()
	sts := f.slo.Statuses()
	if len(sts) != 1 {
		t.Fatalf("statuses = %d, want 1", len(sts))
	}
	return sts[0]
}

func TestSLOHealthyStaysOk(t *testing.T) {
	f := newSLOFixture(t)
	// 36 ticks (6 min) of healthy traffic: all observations at 1ms,
	// objective is p95 < 10ms.
	for i := 0; i < 36; i++ {
		f.tick(100, 0.001)
	}
	st := f.state(t)
	if st.State != SLOOk {
		t.Fatalf("state = %v, want ok (burn short=%v long=%v)", st.State, st.BurnShort, st.BurnLong)
	}
	if st.SamplesShort == 0 {
		t.Fatal("no samples seen in short window")
	}
	if f.slo.WorstState() != SLOOk {
		t.Fatalf("worst = %v, want ok", f.slo.WorstState())
	}
}

func TestSLOPageOnLatencySpike(t *testing.T) {
	f := newSLOFixture(t)
	// Healthy baseline long enough to fill the long window.
	for i := 0; i < 36; i++ {
		f.tick(100, 0.001)
	}
	// Spike: every observation breaches 10ms. badFraction → 1.0, budget
	// 0.05 → burn 20 ≥ PageBurn(10); long window accumulates past 1×.
	var paged atomic.Int32
	f.slo.OnPage(func(st SLOStatus) { paged.Add(1) })
	for i := 0; i < 12; i++ { // 2 minutes of pure badness
		f.tick(100, 0.5)
	}
	st := f.state(t)
	if st.State != SLOPage {
		t.Fatalf("state = %v, want page (burn short=%v long=%v)", st.State, st.BurnShort, st.BurnLong)
	}
	if paged.Load() != 1 {
		t.Fatalf("page hook fired %d times, want exactly 1 (transition-edge only)", paged.Load())
	}
	if st.SinceUnix == 0 {
		t.Fatal("SinceUnix not stamped on transition")
	}
	if f.slo.WorstState() != SLOPage {
		t.Fatalf("worst = %v, want page", f.slo.WorstState())
	}

	// Recovery: healthy traffic flushes the short window first (warn),
	// then the long window (ok).
	for i := 0; i < 40; i++ {
		f.tick(500, 0.001)
	}
	if st := f.state(t); st.State != SLOOk {
		t.Fatalf("post-recovery state = %v, want ok (burn short=%v long=%v)", st.State, st.BurnShort, st.BurnLong)
	}
}

func TestSLOWarnOnModerateBurn(t *testing.T) {
	f := newSLOFixture(t)
	for i := 0; i < 36; i++ {
		f.tick(100, 0.001)
	}
	// 15% bad → burn 3: above WarnBurn(2), below PageBurn(10).
	for i := 0; i < 12; i++ {
		f.tick(85, 0.001)
		f.tick(15, 0.5)
	}
	st := f.state(t)
	if st.State != SLOWarn {
		t.Fatalf("state = %v, want warn (burn short=%v long=%v)", st.State, st.BurnShort, st.BurnLong)
	}
}

func TestSLONoDataReportsOk(t *testing.T) {
	f := newSLOFixture(t)
	for i := 0; i < 10; i++ {
		f.tick(0, 0) // ticks with zero traffic
	}
	st := f.state(t)
	if st.State != SLOOk {
		t.Fatalf("state with no data = %v, want ok", st.State)
	}
	if st.SamplesShort != 0 {
		t.Fatalf("samples = %v, want 0", st.SamplesShort)
	}
}

func TestRatioObjective(t *testing.T) {
	reg := NewRegistry()
	conflicts := reg.Counter("xar_book_conflicts_total", "t", nil)
	ops := reg.Counter("xar_ops_total", "t", L("op", "book"))
	rec := NewRecorder(reg, RecorderConfig{Interval: 10 * time.Second, Retention: time.Hour})
	slo := NewSLOEngine(rec, SLOConfig{ShortWindow: time.Minute, LongWindow: 5 * time.Minute},
		RatioObjective("book-conflicts", "booking conflict-retry rate < 10%",
			"xar_book_conflicts_total", nil, "xar_ops_total", L("op", "book"), 0.10))

	now := 20_000.0
	step := func(bad, total uint64) {
		conflicts.Add(bad)
		ops.Add(total)
		rec.TickAt(now)
		now += 10
	}
	for i := 0; i < 36; i++ {
		step(1, 100) // 1% conflicts: healthy
	}
	if st := slo.Statuses()[0]; st.State != SLOOk {
		t.Fatalf("healthy ratio state = %v, want ok (burn=%v)", st.State, st.BurnShort)
	}
	for i := 0; i < 12; i++ {
		step(100, 100) // 100% conflicts: burn 10 ≥ PageBurn
	}
	if st := slo.Statuses()[0]; st.State != SLOPage {
		t.Fatalf("conflict-storm state = %v, want page (burn short=%v long=%v)",
			st.State, st.BurnShort, st.BurnLong)
	}
}
