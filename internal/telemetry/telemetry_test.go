package telemetry

import (
	"bufio"
	"encoding/json"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("xar_test_total", "test counter", L("kind", "a"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	// Idempotent registration returns the same instrument.
	if again := r.Counter("xar_test_total", "test counter", L("kind", "a")); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("xar_test_gauge", "test gauge", nil)
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("xar_mismatch", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on counter/gauge kind mismatch")
		}
	}()
	r.Gauge("xar_mismatch", "", nil)
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(10e-6, 10, 5)
	if len(b) < 25 {
		t.Fatalf("unexpectedly few buckets: %d", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not increasing at %d: %v <= %v", i, b[i], b[i-1])
		}
	}
	if b[0] != 10e-6 || math.Abs(b[len(b)-1]-10) > 1e-9 {
		t.Fatalf("bounds span [%v, %v]", b[0], b[len(b)-1])
	}
}

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 106 {
		t.Fatalf("sum = %v", got)
	}
	// le=1 catches 0.5 and the boundary value 1 (le semantics).
	want := []uint64{2, 1, 1, 0, 1}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket counts = %v, want %v", got, want)
		}
	}
	if q := h.Quantile(0.5); q <= 0 || q > 2 {
		t.Fatalf("median estimate %v outside (0, 2]", q)
	}
	if !math.IsNaN(NewHistogram([]float64{1}).Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	h.ObserveDuration(2 * time.Millisecond)
	if h.Count() != 1 || math.Abs(h.Sum()-0.002) > 1e-12 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
}

// TestPrometheusExposition checks the rendered text is structurally
// valid: TYPE lines present, histogram buckets cumulative and monotone,
// +Inf bucket equal to _count, label values escaped.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("xar_requests_total", "total requests", L("route", `/v1/"x"`)).Add(3)
	r.Gauge("xar_inflight", "in-flight requests", nil).Set(2)
	h := OpDuration(r, "search")
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 1e-4)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	for _, want := range []string{
		"# TYPE xar_requests_total counter",
		"# TYPE xar_inflight gauge",
		"# TYPE xar_op_duration_seconds histogram",
		`xar_requests_total{route="/v1/\"x\""} 3`,
		"xar_inflight 2",
		`xar_op_duration_seconds_count{op="search"} 100`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}

	// Parse the bucket series: cumulative, monotone, ends at +Inf == count.
	var last uint64
	var infSeen bool
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, `xar_op_duration_seconds_bucket{op="search",le="`) {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 2 {
			t.Fatalf("bad bucket line %q", line)
		}
		n, err := strconv.ParseUint(parts[1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket count in %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not monotone: %d after %d (%s)", n, last, line)
		}
		last = n
		if strings.Contains(line, `le="+Inf"`) {
			infSeen = true
			if n != 100 {
				t.Fatalf("+Inf bucket %d != count 100", n)
			}
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket emitted")
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("xar_c", "", nil).Add(7)
	SearchStage(r, "side_lookup").Observe(0.001)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var fams []FamilyJSON
	if err := json.Unmarshal([]byte(sb.String()), &fams); err != nil {
		t.Fatalf("JSON dump does not parse: %v", err)
	}
	if len(fams) != 2 {
		t.Fatalf("families = %d", len(fams))
	}
	byName := map[string]FamilyJSON{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if c := byName["xar_c"]; c.Type != "counter" || c.Series[0].Value == nil || *c.Series[0].Value != 7 {
		t.Fatalf("counter family: %+v", c)
	}
	hs := byName[SearchStageName].Series[0]
	if hs.Count == nil || *hs.Count != 1 || hs.Buckets["+Inf"] != 1 {
		t.Fatalf("histogram series: %+v", hs)
	}
}

// TestHistogramConcurrent hammers one histogram from 8 goroutines; run
// under -race this is the data-race check the issue asks for, and the
// final count/sum must be exact regardless.
func TestHistogramConcurrent(t *testing.T) {
	const goroutines, perG = 8, 20000
	h := NewHistogram(DurationBuckets())
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) * 1e-7)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*perG {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*perG)
	}
	var cells uint64
	for _, c := range h.BucketCounts() {
		cells += c
	}
	if cells != goroutines*perG {
		t.Fatalf("cell total = %d, want %d", cells, goroutines*perG)
	}
	// Exact expected sum: sum of 0..N-1 times 1e-7.
	n := float64(goroutines * perG)
	want := n * (n - 1) / 2 * 1e-7
	if math.Abs(h.Sum()-want) > want*1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
}

func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"go_goroutines", "go_memstats_heap_alloc_bytes", "go_gc_cycles_total",
		"go_gc_pauses_seconds_bucket", "go_sched_latencies_seconds_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("runtime metrics missing %s", want)
		}
	}
	// Goroutines is live via GaugeFunc and must be >= 1.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "go_goroutines ") {
			v, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
			if err != nil || v < 1 {
				t.Fatalf("go_goroutines = %q (%v)", line, err)
			}
		}
	}
}

// TestRuntimeMetricsGCPauses forces GC cycles across scrapes and checks
// the delta-imported pause histogram and cycle counter advance.
func TestRuntimeMetricsGCPauses(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	r.runScrapeHooks() // baseline read: imports nothing
	pauses := r.Histogram("go_gc_pauses_seconds", "", LogBuckets(100e-9, 1, 5), nil)
	cycles := r.Counter("go_gc_cycles_total", "", nil)
	before := pauses.Count()
	cyclesBefore := cycles.Value()
	for i := 0; i < 3; i++ {
		runtime.GC()
	}
	r.runScrapeHooks()
	if pauses.Count() <= before {
		t.Fatalf("pause histogram did not grow: %d → %d", before, pauses.Count())
	}
	if cycles.Value() < cyclesBefore+3 {
		t.Fatalf("gc cycles counter = %d, want ≥ %d", cycles.Value(), cyclesBefore+3)
	}
	// Pauses must land at plausible magnitudes (< 1s each).
	if q := pauses.Quantile(0.99); q > 1 {
		t.Fatalf("gc pause p99 = %v s, implausible", q)
	}
}

func TestHistogramAddSample(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.AddSample(1.5, 10)
	h.AddSample(100, 3) // overflow cell
	h.AddSample(0.5, 0) // no-op
	if h.Count() != 13 {
		t.Fatalf("count = %d, want 13", h.Count())
	}
	if want := 1.5*10 + 100*3; math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	bc := h.BucketCounts()
	if bc[1] != 10 || bc[3] != 3 {
		t.Fatalf("bucket counts = %v, want [0 10 0 3]", bc)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DurationBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram(DurationBuckets())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(1e-4)
		}
	})
}
