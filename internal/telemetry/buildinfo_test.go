package telemetry

import (
	"strings"
	"testing"
)

func TestBuildInfoResolves(t *testing.T) {
	b := BuildInfo()
	if b.Version == "" || b.GoVersion == "" {
		t.Fatalf("incomplete build info: %+v", b)
	}
	if !strings.HasPrefix(b.GoVersion, "go") {
		t.Fatalf("go_version = %q, want go1.x", b.GoVersion)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	b := RegisterBuildInfo(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "xar_build_info{") {
		t.Fatalf("exposition missing xar_build_info:\n%s", out)
	}
	for _, frag := range []string{
		`version="` + b.Version + `"`,
		`go_version="` + b.GoVersion + `"`,
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("exposition missing %s:\n%s", frag, out)
		}
	}
	// Info-gauge idiom: the value is always 1.
	if !strings.Contains(out, `"} 1`) {
		t.Fatalf("xar_build_info value is not 1:\n%s", out)
	}
}
