package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// JSON rendering of stored traces: the span tree served by
// GET /v1/traces[/{id}] and dumped by `xarbench -trace-out` /
// `xarsim -trace-out`. Kept in the telemetry package so the HTTP layer
// and the CLI harnesses emit byte-identical shapes.

// SpanDoc is one span in the rendered tree.
type SpanDoc struct {
	SpanID     string         `json:"span_id"`
	Name       string         `json:"name"`
	StartUnix  float64        `json:"start_unix"`
	DurationMS float64        `json:"duration_ms"`
	Error      string         `json:"error,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []SpanDoc      `json:"children,omitempty"`
}

// TraceDoc is one rendered trace: summary fields plus the span tree.
type TraceDoc struct {
	TraceID    string    `json:"trace_id"`
	Root       string    `json:"root"`
	StartUnix  float64   `json:"start_unix"`
	DurationMS float64   `json:"duration_ms"`
	Status     string    `json:"status"` // "ok" | "error"
	Error      string    `json:"error,omitempty"`
	SpanCount  int       `json:"span_count"`
	Dropped    int       `json:"dropped_spans,omitempty"`
	Tree       []SpanDoc `json:"tree"`
}

// Doc renders the trace as its JSON document, assembling the parent →
// children tree. Spans whose parent is unknown (a remote traceparent
// parent, or a parent dropped over the span cap) surface as additional
// roots rather than disappearing.
func (td *TraceData) Doc() TraceDoc {
	doc := TraceDoc{
		TraceID:    td.ID.String(),
		Root:       td.Root,
		StartUnix:  unixSeconds(td.Start),
		DurationMS: td.Duration.Seconds() * 1e3,
		Status:     "ok",
		Error:      td.Err,
		SpanCount:  len(td.Spans),
		Dropped:    td.Dropped,
	}
	if td.Errored() {
		doc.Status = "error"
	}

	known := make(map[SpanID]bool, len(td.Spans))
	for i := range td.Spans {
		known[td.Spans[i].ID] = true
	}
	children := make(map[SpanID][]int, len(td.Spans))
	var roots []int
	for i := range td.Spans {
		p := td.Spans[i].Parent
		if p.IsZero() || !known[p] {
			roots = append(roots, i)
			continue
		}
		children[p] = append(children[p], i)
	}
	var build func(i int) SpanDoc
	build = func(i int) SpanDoc {
		sd := &td.Spans[i]
		out := SpanDoc{
			SpanID:     sd.ID.String(),
			Name:       sd.Name,
			StartUnix:  unixSeconds(sd.Start),
			DurationMS: sd.Duration.Seconds() * 1e3,
			Error:      sd.Err,
		}
		if len(sd.Attrs) > 0 {
			out.Attrs = make(map[string]any, len(sd.Attrs))
			for _, a := range sd.Attrs {
				out.Attrs[a.Key] = a.Value()
			}
		}
		for _, c := range children[sd.ID] {
			out.Children = append(out.Children, build(c))
		}
		return out
	}
	for _, r := range roots {
		doc.Tree = append(doc.Tree, build(r))
	}
	return doc
}

func unixSeconds(t time.Time) float64 { return float64(t.UnixNano()) / 1e9 }

// Docs renders a trace list (List/Slowest output) into documents.
func Docs(tds []*TraceData) []TraceDoc {
	out := make([]TraceDoc, len(tds))
	for i, td := range tds {
		out[i] = td.Doc()
	}
	return out
}

// WriteSlowest dumps the store's n slowest traces as indented JSON —
// the `-trace-out` payload of xarsim and xarbench, shaped like the
// GET /v1/traces response so the same tooling reads both.
func WriteSlowest(w io.Writer, store *TraceStore, n int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Traces []TraceDoc `json:"traces"`
	}{Docs(store.Slowest(n))})
}
