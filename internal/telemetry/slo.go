package telemetry

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// SLO engine: declarative objectives evaluated against the flight
// recorder with multi-window burn rates (the Google SRE workbook
// "multiwindow, multi-burn-rate alert" shape, reduced to two windows).
//
// Every objective is normalized to ratio form: a window is summarized as
// badFraction = bad/total, and burn = badFraction/budget, where budget
// is the allowed bad fraction (1−0.95 for "p95 under threshold",
// or an explicit error budget for ratio objectives). burn = 1 means
// exactly consuming budget; burn = 10 means consuming it 10× too fast.
//
// State rules, evaluated every recorder tick:
//
//	page: shortBurn ≥ PageBurn AND longBurn ≥ 1   (fast, confirmed burn)
//	warn: shortBurn ≥ WarnBurn OR  longBurn ≥ 1   (elevated or slow burn)
//	ok:   otherwise
//
// The long-window guard on page keeps a single spiky short window from
// paging; the long-window OR on warn catches slow steady burns that
// never trip the short window.

// SLOState is an objective's evaluated health.
type SLOState int

// States, ordered by severity so WorstState can max over them.
const (
	SLOOk SLOState = iota
	SLOWarn
	SLOPage
)

func (s SLOState) String() string {
	switch s {
	case SLOOk:
		return "ok"
	case SLOWarn:
		return "warn"
	case SLOPage:
		return "page"
	default:
		return "unknown"
	}
}

// MarshalJSON renders the state as its string form.
func (s SLOState) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the string form back (clients of /v1/slo).
func (s *SLOState) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"ok"`:
		*s = SLOOk
	case `"warn"`:
		*s = SLOWarn
	case `"page"`:
		*s = SLOPage
	default:
		return fmt.Errorf("telemetry: unknown SLO state %s", b)
	}
	return nil
}

// Objective is one declarative service-level objective. Build with
// LatencyObjective or RatioObjective.
type Objective struct {
	// Name identifies the objective in /v1/slo output.
	Name string
	// Description is human-readable intent ("search p95 < 5ms").
	Description string

	// Budget is the allowed bad fraction of observations (0 < Budget < 1).
	Budget float64

	// badFraction returns bad/total over the window ending now, and the
	// window's total observation count (0 → no data, skip evaluation).
	badFraction func(rec *Recorder, window time.Duration) (frac float64, total float64)
}

// LatencyObjective declares "the q-quantile of histogram family metric
// (series matching match) stays under threshold seconds". Budget is
// 1−q: for q=0.95 at most 5% of observations may exceed the threshold.
// The threshold is snapped to the nearest histogram bucket bound, so
// pick thresholds on the bucket grid (DurationBuckets: 5/decade) for
// exact accounting.
func LatencyObjective(name, metric string, match Labels, threshold float64, q float64) Objective {
	if q <= 0 || q >= 1 {
		panic("telemetry: LatencyObjective quantile must be in (0,1)")
	}
	return Objective{
		Name:        name,
		Description: fmt.Sprintf("%s p%g < %s", metric, q*100, time.Duration(threshold*float64(time.Second))),
		Budget:      1 - q,
		badFraction: func(rec *Recorder, window time.Duration) (float64, float64) {
			d, ok := rec.FamilyDelta(metric, match, window)
			if !ok || d.Count == 0 {
				return 0, 0
			}
			return d.FractionAbove(threshold), float64(d.Count)
		},
	}
}

// RatioObjective declares "counter family bad (series matching
// badMatch) stays under budget as a fraction of counter family total
// (series matching totalMatch)". Histogram families count observations.
func RatioObjective(name, description, bad string, badMatch Labels, total string, totalMatch Labels, budget float64) Objective {
	if budget <= 0 || budget >= 1 {
		panic("telemetry: RatioObjective budget must be in (0,1)")
	}
	return Objective{
		Name:        name,
		Description: description,
		Budget:      budget,
		badFraction: func(rec *Recorder, window time.Duration) (float64, float64) {
			b, okB := rec.FamilyDelta(bad, badMatch, window)
			t, okT := rec.FamilyDelta(total, totalMatch, window)
			if !okT || t.Counter <= 0 {
				return 0, 0
			}
			f := 0.0
			if okB {
				f = b.Counter / t.Counter
			}
			if f > 1 {
				f = 1
			}
			return f, t.Counter
		},
	}
}

// SLOConfig tunes the evaluation windows and burn thresholds.
type SLOConfig struct {
	// ShortWindow is the fast-burn window (0 → 5m).
	ShortWindow time.Duration
	// LongWindow is the slow-burn window (0 → 30m).
	LongWindow time.Duration
	// WarnBurn is the short-window burn rate that yields warn (0 → 2).
	WarnBurn float64
	// PageBurn is the short-window burn rate that, confirmed by the long
	// window, yields page (0 → 10).
	PageBurn float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.ShortWindow <= 0 {
		c.ShortWindow = 5 * time.Minute
	}
	if c.LongWindow <= 0 {
		c.LongWindow = 30 * time.Minute
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = 2
	}
	if c.PageBurn <= 0 {
		c.PageBurn = 10
	}
	return c
}

// SLOStatus is one objective's latest evaluation — the /v1/slo element.
type SLOStatus struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	State       SLOState `json:"state"`
	Budget      float64  `json:"budget"`
	// BurnShort/BurnLong are badFraction/Budget over each window; 1.0
	// means consuming budget exactly at the sustainable rate.
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	// BadFractionShort is the raw short-window bad fraction.
	BadFractionShort float64 `json:"bad_fraction_short"`
	// SamplesShort is the short window's total observation count; 0 means
	// the objective had no data and reports ok by default.
	SamplesShort float64 `json:"samples_short"`
	// SinceUnix is when the objective entered its current state.
	SinceUnix float64 `json:"since_unix"`
}

// SLOEngine evaluates objectives against a Recorder on every tick.
type SLOEngine struct {
	rec  *Recorder
	cfg  SLOConfig
	objs []Objective

	mu      sync.Mutex
	states  []SLOStatus
	onPage  []func(SLOStatus)
	lastEvl float64
}

// NewSLOEngine builds an engine over rec and hooks it to the recorder's
// tick, so states stay current without a separate evaluation loop.
func NewSLOEngine(rec *Recorder, cfg SLOConfig, objs ...Objective) *SLOEngine {
	e := &SLOEngine{rec: rec, cfg: cfg.withDefaults(), objs: objs}
	e.states = make([]SLOStatus, len(objs))
	for i, o := range objs {
		e.states[i] = SLOStatus{Name: o.Name, Description: o.Description, Budget: o.Budget, State: SLOOk}
	}
	rec.OnTick(e.evaluate)
	return e
}

// OnPage registers fn to run (synchronously, on the tick goroutine)
// whenever an objective transitions into SLOPage — the hook the
// page-triggered CPU profiler attaches to.
func (e *SLOEngine) OnPage(fn func(SLOStatus)) {
	e.mu.Lock()
	e.onPage = append(e.onPage, fn)
	e.mu.Unlock()
}

// evaluate recomputes every objective's state from recorder history.
func (e *SLOEngine) evaluate() {
	now := e.latestTickUnix()
	type fired struct {
		fns []func(SLOStatus)
		st  SLOStatus
	}
	var pages []fired

	e.mu.Lock()
	for i, o := range e.objs {
		fShort, nShort := o.badFraction(e.rec, e.cfg.ShortWindow)
		fLong, _ := o.badFraction(e.rec, e.cfg.LongWindow)
		burnShort := fShort / o.Budget
		burnLong := fLong / o.Budget

		st := SLOOk
		switch {
		case nShort <= 0:
			st = SLOOk // no data: assume healthy rather than flapping
		case burnShort >= e.cfg.PageBurn && burnLong >= 1:
			st = SLOPage
		case burnShort >= e.cfg.WarnBurn || burnLong >= 1:
			st = SLOWarn
		}

		prev := e.states[i]
		cur := SLOStatus{
			Name:             o.Name,
			Description:      o.Description,
			Budget:           o.Budget,
			State:            st,
			BurnShort:        round3(burnShort),
			BurnLong:         round3(burnLong),
			BadFractionShort: round6(fShort),
			SamplesShort:     nShort,
			SinceUnix:        prev.SinceUnix,
		}
		if st != prev.State {
			cur.SinceUnix = now
			if st == SLOPage && len(e.onPage) > 0 {
				fns := make([]func(SLOStatus), len(e.onPage))
				copy(fns, e.onPage)
				pages = append(pages, fired{fns: fns, st: cur})
			}
		}
		e.states[i] = cur
	}
	e.lastEvl = now
	e.mu.Unlock()

	for _, p := range pages {
		for _, fn := range p.fns {
			fn(p.st)
		}
	}
}

func (e *SLOEngine) latestTickUnix() float64 {
	e.rec.mu.RLock()
	defer e.rec.mu.RUnlock()
	if e.rec.filled == 0 {
		return 0
	}
	newest := (e.rec.next - 1 + e.rec.slots) % e.rec.slots
	return e.rec.times[newest]
}

// Statuses returns the latest evaluation of every objective.
func (e *SLOEngine) Statuses() []SLOStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, len(e.states))
	copy(out, e.states)
	return out
}

// WorstState returns the most severe state across objectives — what
// /healthz folds into its status field.
func (e *SLOEngine) WorstState() SLOState {
	e.mu.Lock()
	defer e.mu.Unlock()
	worst := SLOOk
	for _, s := range e.states {
		if s.State > worst {
			worst = s.State
		}
	}
	return worst
}

func round3(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return v
	}
	return math.Round(v*1e3) / 1e3
}

func round6(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return v
	}
	return math.Round(v*1e6) / 1e6
}
