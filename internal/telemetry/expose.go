package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one # HELP / # TYPE header per family, then
// each series; histograms expand into cumulative _bucket{le=…} series
// plus _sum and _count, exactly as a scraper expects.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runScrapeHooks()
	var b strings.Builder
	for _, f := range r.snapshotFamilies() {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.snapshotSeries() {
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels), formatValue(float64(s.counter.Value())))
			case KindGauge:
				v := 0.0
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				} else if s.gauge != nil {
					v = s.gauge.Value()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels), formatValue(v))
			case KindHistogram:
				writeHistogram(&b, f.name, s.labels, s.hist)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name string, labels Labels, h *Histogram) {
	counts := h.BucketCounts()
	bounds := h.Bounds()
	exemplars := h.Exemplars()
	cum := uint64(0)
	for i, bound := range bounds {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket%s %d%s\n", name, renderLabels(append(labels.clone(), Label{"le", formatValue(bound)})), cum, renderExemplar(exemplars[i]))
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(b, "%s_bucket%s %d%s\n", name, renderLabels(append(labels.clone(), Label{"le", "+Inf"})), cum, renderExemplar(exemplars[len(exemplars)-1]))
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(labels), formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(labels), h.Count())
}

// renderExemplar formats the OpenMetrics exemplar suffix for one bucket
// line: ` # {trace_id="…"} <value> <unix_ts>`. Empty when the slot has
// never been stamped. Prometheus ≥ 2.26 parses these on the classic text
// format; older scrapers ignore everything after the bucket value.
func renderExemplar(e *Exemplar) string {
	if e == nil {
		return ""
	}
	return fmt.Sprintf(` # {trace_id="%s"} %s %s`,
		escapeLabelValue(e.TraceID), formatValue(e.Value), formatValue(e.Unix))
}

func (ls Labels) clone() Labels {
	out := make(Labels, len(ls), len(ls)+1)
	copy(out, ls)
	return out
}

func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// --- JSON exposition ---

// SeriesJSON is one series in the JSON dump.
type SeriesJSON struct {
	Labels map[string]string `json:"labels,omitempty"`
	// Value is set for counters and gauges.
	Value *float64 `json:"value,omitempty"`
	// Histogram payload.
	Count   *uint64            `json:"count,omitempty"`
	Sum     *float64           `json:"sum,omitempty"`
	Buckets map[string]uint64  `json:"buckets,omitempty"` // le → cumulative count
	P50     *float64           `json:"p50,omitempty"`
	P95     *float64           `json:"p95,omitempty"`
	P99     *float64           `json:"p99,omitempty"`
}

// FamilyJSON is one metric family in the JSON dump.
type FamilyJSON struct {
	Name   string       `json:"name"`
	Help   string       `json:"help,omitempty"`
	Type   string       `json:"type"`
	Series []SeriesJSON `json:"series"`
}

// Snapshot returns the registry contents as renderable structs — the
// JSON twin of WritePrometheus, also used by the /v1/metrics/json
// endpoint and by xarbench's telemetry dump.
func (r *Registry) Snapshot() []FamilyJSON {
	r.runScrapeHooks()
	fams := r.snapshotFamilies()
	out := make([]FamilyJSON, 0, len(fams))
	for _, f := range fams {
		fj := FamilyJSON{Name: f.name, Help: f.help, Type: f.kind.String()}
		for _, s := range f.snapshotSeries() {
			sj := SeriesJSON{}
			if len(s.labels) > 0 {
				sj.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					sj.Labels[l.Name] = l.Value
				}
			}
			switch f.kind {
			case KindCounter:
				v := float64(s.counter.Value())
				sj.Value = &v
			case KindGauge:
				v := 0.0
				if s.gaugeFn != nil {
					v = s.gaugeFn()
				} else if s.gauge != nil {
					v = s.gauge.Value()
				}
				sj.Value = &v
			case KindHistogram:
				h := s.hist
				count := h.Count()
				sum := h.Sum()
				sj.Count = &count
				sj.Sum = &sum
				counts := h.BucketCounts()
				bounds := h.Bounds()
				sj.Buckets = make(map[string]uint64, len(counts))
				cum := uint64(0)
				for i, bound := range bounds {
					cum += counts[i]
					sj.Buckets[formatValue(bound)] = cum
				}
				cum += counts[len(counts)-1]
				sj.Buckets["+Inf"] = cum
				if count > 0 {
					p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
					sj.P50, sj.P95, sj.P99 = &p50, &p95, &p99
				}
			}
			fj.Series = append(fj.Series, sj)
		}
		out = append(out, fj)
	}
	return out
}

// WriteJSON renders the registry as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
