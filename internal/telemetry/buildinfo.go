package telemetry

import "runtime/debug"

// Version and Commit identify the running build. They default to what
// runtime/debug.ReadBuildInfo can recover from the module metadata and
// are meant to be overridden at link time:
//
//	go build -ldflags "-X xar/internal/telemetry.Version=v1.2.3 \
//	                   -X xar/internal/telemetry.Commit=abc1234"
//
// Version stays "dev" for an unstamped local build.
var (
	Version = "dev"
	Commit  = ""
)

// Build is the resolved build identity exposed on /healthz and as the
// xar_build_info metric.
type Build struct {
	Version   string `json:"version"`
	Commit    string `json:"commit"`
	GoVersion string `json:"go_version"`
}

// BuildInfo resolves the build identity: the -ldflags overrides when
// set, else whatever the embedded module build info carries (VCS
// revision for Commit, module version for Version).
func BuildInfo() Build {
	b := Build{Version: Version, Commit: Commit, GoVersion: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.GoVersion = bi.GoVersion
	if b.Version == "dev" && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		b.Version = bi.Main.Version
	}
	if b.Commit == "" {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				b.Commit = s.Value
				if len(b.Commit) > 12 {
					b.Commit = b.Commit[:12]
				}
				break
			}
		}
	}
	return b
}

// RegisterBuildInfo publishes the Prometheus info-gauge idiom
// xar_build_info{version,commit,go_version} = 1: the value is constant,
// the identity lives in the labels, and joins against it annotate any
// other series with the running build.
func RegisterBuildInfo(r *Registry) Build {
	b := BuildInfo()
	r.Gauge("xar_build_info",
		"Build identity of the running binary (constant 1; the labels carry the information).",
		L("version", b.Version, "commit", b.Commit, "go_version", b.GoVersion)).Set(1)
	return b
}
