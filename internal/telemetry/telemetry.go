// Package telemetry is the observability core of the XAR reproduction:
// a stdlib-only, allocation-light metrics library — atomic counters,
// gauges and fixed-bucket latency histograms — behind a registry that
// renders both the Prometheus text exposition format and JSON.
//
// Design constraints, in order:
//
//  1. Hot-path cost. Search is the paper's headline number (§X, Fig 4a);
//     recording an observation must not perturb it. Every instrument is
//     a fixed set of atomic.Uint64 cells — no locks, no maps, no
//     allocation after registration.
//  2. No dependencies. The repo is stdlib-only; the Prometheus client
//     library is out. The exposition format is tiny and stable, so we
//     emit it directly.
//  3. One source of truth. The engine, the HTTP layer, the simulation
//     replay and the benchmark harness all record into the same
//     registry, so figure reproduction and live serving report
//     identical series (see OpDuration / SearchStage).
//
// Instruments are registered once (idempotently) and then shared:
// registering the same (name, labels) pair twice returns the same
// instrument, so independent subsystems can address one series by name.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the exposition type of a metric family.
type Kind int

// Metric family kinds, matching Prometheus TYPE names.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Label is one name="value" pair of a series.
type Label struct {
	Name, Value string
}

// Labels identifies a series within a family. Order is preserved in the
// exposition output.
type Labels []Label

// L builds a Labels list from alternating name, value strings.
// L("op", "search") → {op="search"}.
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("telemetry: L needs an even number of arguments")
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Name: kv[i], Value: kv[i+1]})
	}
	return ls
}

// signature is the map key identifying a series: labels rendered in
// registration order.
func (ls Labels) signature() string {
	if len(ls) == 0 {
		return ""
	}
	s := ""
	for i, l := range ls {
		if i > 0 {
			s += ","
		}
		s += l.Name + "=" + l.Value
	}
	return s
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (CAS loop; gauges are not hot-path instruments).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// series is one labeled instrument inside a family.
type series struct {
	labels  Labels
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name string
	help string
	kind Kind

	mu     sync.Mutex
	series []*series
	bySig  map[string]*series
}

func (f *family) get(labels Labels) (*series, bool) {
	sig := labels.signature()
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.bySig[sig]; ok {
		return s, true
	}
	s := &series{labels: labels}
	f.bySig[sig] = s
	f.series = append(f.series, s)
	return s, false
}

// snapshotSeries returns a stable copy of the series list for rendering.
func (f *family) snapshotSeries() []*series {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*series, len(f.series))
	copy(out, f.series)
	return out
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	onScrape []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// OnScrape registers fn to run at the start of every exposition render
// (Prometheus or JSON), before values are read. Use it to refresh gauges
// that are expensive to keep current — e.g. one runtime.ReadMemStats
// feeding several gauges (see RegisterRuntimeMetrics).
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, fn)
}

func (r *Registry) runScrapeHooks() {
	r.mu.Lock()
	hooks := make([]func(), len(r.onScrape))
	copy(hooks, r.onScrape)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// familyFor returns (creating if needed) the family for name, enforcing
// kind consistency. Mixing kinds under one name is a programming error.
func (r *Registry) familyFor(name, help string, kind Kind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, bySig: make(map[string]*series)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.families))
	copy(out, r.families)
	return out
}

// Counter returns the counter for (name, labels), creating it on first
// use.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	f := r.familyFor(name, help, KindCounter)
	s, existed := f.get(labels)
	if !existed {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	f := r.familyFor(name, help, KindGauge)
	s, existed := f.get(labels)
	if !existed {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. Re-registering the same series replaces fn.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	f := r.familyFor(name, help, KindGauge)
	s, _ := f.get(labels)
	f.mu.Lock()
	s.gaugeFn = fn
	f.mu.Unlock()
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket upper bounds on first use. Later calls ignore bounds
// and return the existing instrument, so callers sharing a series don't
// need to agree on anything but the name.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	f := r.familyFor(name, help, KindHistogram)
	s, existed := f.get(labels)
	if !existed {
		s.hist = NewHistogram(bounds)
	}
	return s.hist
}

// --- histogram ---

// Histogram counts observations into fixed buckets with lock-free
// atomic.Uint64 cells. Bounds are upper limits (le); observations above
// the last bound land in the implicit +Inf cell. The sum is kept as
// float64 bits behind a CAS loop, the count as a plain atomic add —
// three atomic ops per Observe, no allocation.
type Histogram struct {
	upper []float64       // sorted upper bounds
	cells []atomic.Uint64 // len(upper)+1; last cell is +Inf overflow
	count atomic.Uint64
	sum   atomic.Uint64 // float64 bits

	// ex holds one exemplar slot per bucket (last writer wins), set only
	// by the ObserveExemplar path — plain Observe never touches it, so
	// exemplars cost nothing unless a trace-recorded operation lands.
	ex []atomic.Pointer[Exemplar]
}

// Exemplar links one concrete observation in a bucket to the trace that
// produced it (OpenMetrics exemplar semantics): a scrape shows not just
// "37 observations ≤ 2.5 ms" but the trace ID of a real request in that
// bucket, resolvable via GET /v1/traces/{id}.
type Exemplar struct {
	Value   float64
	TraceID string
	Unix    float64 // observation wall time, seconds since epoch
}

// NewHistogram builds a standalone histogram (use Registry.Histogram for
// registered ones). Bounds must be strictly increasing; nil/empty falls
// back to DurationBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	upper := make([]float64, len(bounds))
	copy(upper, bounds)
	return &Histogram{
		upper: upper,
		cells: make([]atomic.Uint64, len(upper)+1),
		ex:    make([]atomic.Pointer[Exemplar], len(upper)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Binary search over ~30 sorted bounds: first bound >= v.
	i := sort.SearchFloat64s(h.upper, v)
	h.cells[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds, the Prometheus base
// unit for time.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// AddSample records n observations of value v in one shot — the bulk
// path for importing pre-aggregated histograms (runtime/metrics), where
// looping Observe over thousands of buffered samples would be waste.
func (h *Histogram) AddSample(v float64, n uint64) {
	if n == 0 {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	h.cells[i].Add(n)
	h.count.Add(n)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v*float64(n))
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveExemplar records one observation and stamps its bucket's
// exemplar slot with the producing trace. Zero trace IDs fall back to a
// plain Observe.
func (h *Histogram) ObserveExemplar(v float64, trace TraceID) {
	h.Observe(v)
	if trace.IsZero() {
		return
	}
	i := sort.SearchFloat64s(h.upper, v)
	h.ex[i].Store(&Exemplar{
		Value:   v,
		TraceID: trace.String(),
		Unix:    float64(time.Now().UnixNano()) / 1e9,
	})
}

// ObserveDurationExemplar is ObserveExemplar for a duration in seconds.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, trace TraceID) {
	h.ObserveExemplar(d.Seconds(), trace)
}

// Exemplars returns the per-bucket exemplar slots (nil entries where no
// traced observation has landed); the last entry is the +Inf bucket.
func (h *Histogram) Exemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.ex))
	for i := range h.ex {
		out[i] = h.ex[i].Load()
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the finite bucket upper limits.
func (h *Histogram) Bounds() []float64 {
	out := make([]float64, len(h.upper))
	copy(out, h.upper)
	return out
}

// BucketCounts returns per-bucket (non-cumulative) counts; the last
// entry is the +Inf overflow cell.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.cells))
	for i := range h.cells {
		out[i] = h.cells[i].Load()
	}
	return out
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) by linear
// interpolation inside the bucket containing the target rank — the usual
// fixed-bucket approximation. Returns NaN for an empty histogram; +Inf
// observations in the overflow cell return the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.cells {
		c := float64(h.cells[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			if i >= len(h.upper) { // overflow cell: no finite upper bound
				return h.upper[len(h.upper)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.upper[i-1]
			}
			frac := (rank - cum) / c
			return lo + frac*(h.upper[i]-lo)
		}
		cum += c
	}
	return h.upper[len(h.upper)-1]
}

// --- bucket layouts ---

// LogBuckets returns log-spaced upper bounds from lo to hi (inclusive)
// with perDecade buckets per factor of 10. Panics on invalid arguments.
func LogBuckets(lo, hi float64, perDecade int) []float64 {
	if lo <= 0 || hi <= lo || perDecade <= 0 {
		panic("telemetry: LogBuckets needs 0 < lo < hi and perDecade > 0")
	}
	step := math.Pow(10, 1/float64(perDecade))
	var out []float64
	for v := lo; v < hi*(1-1e-12); v *= step {
		out = append(out, v)
	}
	out = append(out, hi)
	return out
}

// DurationBuckets is the standard latency layout used across the repo:
// 10µs to 10s, five buckets per decade (31 bounds). The paper's search
// latencies sit in the 0.01–10 ms range (Fig 4a), bookings in the
// 1–100 ms range — both well inside this span with ~60% resolution.
func DurationBuckets() []float64 {
	return LogBuckets(10e-6, 10, 5)
}
