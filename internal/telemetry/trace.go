package telemetry

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing. The aggregate histograms answer "how slow is
// the p99"; the trace layer answers "why was THIS request slow": every
// sampled operation records a tree of spans — the HTTP request, the
// engine operation under it, the per-shard search fan-out, each
// optimistic-book attempt, each pooled A*/ALT path call — keyed by a
// 128-bit W3C trace ID that also appears in the access log, the slow-op
// log and the histogram exemplars, so metrics, logs and traces
// cross-link on one identifier.
//
// Cost model, matching the metrics layer's constraints:
//
//   - Tracing disabled (nil *Tracer, no span in context): every
//     instrumentation point is a nil check. No allocation, no atomics.
//   - Head-sampled: the 1-in-N decision is one atomic increment and a
//     mask test per root; unsampled requests allocate nothing.
//   - Sampled: spans allocate (they must outlive the operation), but a
//     finished trace is a single slice of value-type SpanData records —
//     no per-span goroutines, channels or maps.
//
// Spans within one trace may end concurrently (the parallel search
// fan-out): each End stamps only the span's own record, lock-free, and
// the root's End performs the single batched copy into the store.

// TraceID is a 128-bit W3C trace identifier (non-zero when valid).
type TraceID [16]byte

// SpanID is a 64-bit span identifier within a trace.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits (W3C traceparent
// encoding).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID returns a random, non-zero trace ID. The generator is the
// runtime-seeded math/rand/v2 global: trace IDs need uniqueness, not
// unpredictability, and the lock-free generator keeps ID minting off the
// hot path's contention profile.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		hi, lo := rand.Uint64(), rand.Uint64()
		byteOrder(t[0:8], hi)
		byteOrder(t[8:16], lo)
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		byteOrder(s[:], rand.Uint64())
	}
	return s
}

func byteOrder(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (56 - 8*i))
	}
}

// ParseTraceID parses 32 hex digits into a TraceID.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil || t.IsZero() {
		return TraceID{}, false
	}
	return t, true
}

// ParseTraceparent parses a W3C traceparent header
// (00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>). ok is false
// for anything malformed; future versions (non-00) are accepted if the
// 00 field layout parses, per the spec's forward-compat rule.
func ParseTraceparent(h string) (trace TraceID, parent SpanID, sampled, ok bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	if h[0] == 'f' && h[1] == 'f' {
		return TraceID{}, SpanID{}, false, false // version 0xff is forbidden
	}
	trace, tok := ParseTraceID(h[3:35])
	if !tok {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(parent[:], []byte(h[36:52])); err != nil || parent.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	return trace, parent, flags[0]&0x01 != 0, true
}

// FormatTraceparent renders a version-00 traceparent header.
func FormatTraceparent(trace TraceID, span SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + trace.String() + "-" + span.String() + "-" + flags
}

// --- attributes ---

// Attr is one key/value annotation on a span: either a string or a
// number (a two-field union rather than `any` so setting an int does not
// box-allocate).
type Attr struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// Value returns the attribute's dynamic value (for JSON rendering).
func (a Attr) Value() any {
	if a.IsNum {
		return a.Num
	}
	return a.Str
}

// --- spans ---

// Span is one timed operation inside a trace. A nil *Span is the
// non-recording span: every method is a no-op, so instrumentation sites
// never branch on "is tracing on".
//
// A span is owned by the goroutine that started it until End; attributes
// must be set by that owner. Different spans of one trace may be owned
// by different goroutines (the search fan-out) — the shared trace record
// is locked only inside End.
//
// A span must not be touched after its trace's root has ended: sealing
// recycles the trace record (and the arena slots its spans live in)
// through a pool, so a straggler's writes could land in a later trace.
// TraceID and SpanID stay valid on the span itself until the next trace
// reuses its slot — reading them right after End (the exemplar path) is
// fine; holding a span across new traces is not.
type Span struct {
	rec    *traceRec
	trace  TraceID
	gen    uint32
	name   string
	id     SpanID
	parent SpanID
	start  time.Time
	dur    time.Duration
	done   bool
	attrs  []Attr
	errMsg string
	// attrBuf backs attrs for the common ≤4-attribute span, so Set*
	// never touches the allocator on the hot path; wider spans spill to
	// a heap slice on the fifth append.
	attrBuf [4]Attr
}

// TraceID returns the owning trace's ID (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// SpanID returns the span's ID (zero for a nil span).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// grow readies the attrs slice for one more entry, pointing it at the
// span's inline buffer on first use.
func (s *Span) grow() {
	if s.attrs == nil {
		s.attrs = s.attrBuf[:0]
	}
}

// SetStr sets a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.grow()
	s.attrs = append(s.attrs, Attr{Key: key, Str: v})
}

// SetInt sets an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.grow()
	s.attrs = append(s.attrs, Attr{Key: key, Num: float64(v), IsNum: true})
}

// SetFloat sets a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.grow()
	s.attrs = append(s.attrs, Attr{Key: key, Num: v, IsNum: true})
}

// StartTime returns the span's start instant (zero for a nil span) —
// instrumentation that already pays for the span's clock reads can reuse
// it as a stage mark instead of calling time.Now again.
func (s *Span) StartTime() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// SetError marks the span failed with err's message. A nil err is a
// no-op, so `span.SetError(err)` can sit unconditionally on the return
// path.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.errMsg = err.Error()
}

// SetErrorMsg marks the span failed with an explicit message.
func (s *Span) SetErrorMsg(msg string) {
	if s == nil || msg == "" {
		return
	}
	s.errMsg = msg
}

// End finishes the span: a lock-free stamp of its duration. Ending the
// trace's root span seals the trace — every finished span is copied out
// and the trace handed to the store; spans not yet ended at that point
// are excluded (structured usage always ends children first).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.finish(s, time.Now())
}

// EndAt is End with a caller-supplied end instant, for instrumentation
// that already read the clock (a stage boundary doubling as the span
// end) — on the 16-way search fan-out the saved clock reads are a
// measured win. now must come from time.Now on the ending goroutine.
func (s *Span) EndAt(now time.Time) {
	if s == nil {
		return
	}
	s.rec.finish(s, now)
}

// Duration of a finished span is carried in its SpanData; live spans
// don't expose elapsed time (nothing reads it).

// SpanData is the immutable record of a finished span.
type SpanData struct {
	ID       SpanID
	Parent   SpanID // zero for the root
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
	Err      string
}

// TraceData is one finished trace: the root's identity plus every
// recorded span, as stored in (and served from) the ring buffer.
type TraceData struct {
	ID       TraceID
	Root     string // root span name — the trace's "operation"
	Start    time.Time
	Duration time.Duration
	Err      string // root (or first failing span's) error message
	Spans    []SpanData
	Dropped  int // spans discarded over the per-trace cap
}

// Errored reports whether any span of the trace failed.
func (td *TraceData) Errored() bool { return td.Err != "" }

// HasSpan reports whether any span (including the root) carries name.
func (td *TraceData) HasSpan(name string) bool {
	for i := range td.Spans {
		if td.Spans[i].Name == name {
			return true
		}
	}
	return false
}

// maxSpansPerTrace bounds one trace's memory: a pathological request
// (a TrackAll over a huge fleet under one span) cannot grow without
// limit. 512 spans cover a 64-shard search fan-out plus a four-attempt
// booking with room to spare.
const maxSpansPerTrace = 512

// spanArenaSize is the per-trace block of preallocated spans: root +
// side lookup + a 16-shard fan-out + book attempts fit without touching
// the allocator again; rarer, wider traces spill to individual
// allocations. The whole record (arena included) is recycled through
// the tracer's pool: sealing copies the spans and their attributes into
// right-sized slices for the store, so the stored trace retains nothing
// of the ~10 KB working block and the span hot path is allocation-free
// after warm-up.
const spanArenaSize = 24

// traceRec accumulates the spans of one in-flight trace. Recs are
// pooled per tracer; gen distinguishes incarnations so a straggling
// heap-spilled span from a recycled trace cannot land in a later one.
//
// The design keeps ending a child span lock-free and copy-free: End
// just stamps the span's own (exclusively owned) duration and done
// flag, and the root's End walks the arena once, batch-copying every
// finished span into right-sized SpanData/Attr slices for the store.
// Correct usage orders every child End before the root's (the fan-out
// joins its workers first), which is exactly the happens-before edge
// the seal scan needs.
type traceRec struct {
	tracer    *Tracer
	id        TraceID
	gen       uint32
	root      *Span
	arenaNext atomic.Int32

	// mu guards the rare paths only: the spill list past the arena and
	// the seal flag. The common span lifecycle never touches it.
	mu      sync.Mutex
	spill   []*Span
	dropped int
	sealed  bool

	arena [spanArenaSize]Span
}

// newSpan hands out the next arena slot (reset from its previous
// incarnation), or heap-allocates past the arena, tracking the spilled
// span so the seal scan finds it (up to maxSpansPerTrace; beyond that
// the span still works but goes unrecorded). Lock-free on the arena
// path: concurrent fan-out spans claim slots atomically.
func (r *traceRec) newSpan() *Span {
	if n := int(r.arenaNext.Add(1)); n <= spanArenaSize {
		s := &r.arena[n-1]
		s.attrs = nil
		s.errMsg = ""
		s.done = false
		s.rec = r
		s.trace = r.id
		s.gen = r.gen
		return s
	}
	s := &Span{rec: r, trace: r.id, gen: r.gen}
	r.mu.Lock()
	if spanArenaSize+len(r.spill) >= maxSpansPerTrace {
		r.dropped++
	} else {
		r.spill = append(r.spill, s)
	}
	r.mu.Unlock()
	return s
}

func (r *traceRec) finish(s *Span, now time.Time) {
	if s.gen != r.gen {
		return // straggler from a recycled incarnation
	}
	s.dur = now.Sub(s.start)
	s.done = true
	if s == r.root {
		r.seal(s)
	}
}

// seal builds the immutable TraceData from every finished span, ships
// it to the store, and recycles the record. Spans never ended by seal
// time (invalid usage: a child outliving its root) are excluded.
func (r *traceRec) seal(root *Span) {
	r.mu.Lock()
	if r.sealed {
		r.mu.Unlock()
		return
	}
	r.sealed = true
	spill := r.spill
	dropped := r.dropped
	r.mu.Unlock()

	n := int(r.arenaNext.Load())
	if n > spanArenaSize {
		n = spanArenaSize
	}
	count, nattrs := 0, 0
	for i := 0; i < n; i++ {
		if s := &r.arena[i]; s.done {
			count++
			nattrs += len(s.attrs)
		}
	}
	for _, s := range spill {
		if s.done {
			count++
			nattrs += len(s.attrs)
		}
	}
	spans := make([]SpanData, 0, count)
	var flat []Attr // one backing array for every span's attrs
	if nattrs > 0 {
		flat = make([]Attr, 0, nattrs)
	}
	errMsg := ""
	add := func(s *Span) {
		if !s.done {
			return
		}
		attrs := s.attrs
		if len(attrs) > 0 {
			off := len(flat)
			flat = append(flat, attrs...)
			attrs = flat[off:len(flat):len(flat)]
		}
		spans = append(spans, SpanData{
			ID:       s.id,
			Parent:   s.parent,
			Name:     s.name,
			Start:    s.start,
			Duration: s.dur,
			Attrs:    attrs,
			Err:      s.errMsg,
		})
		if s.errMsg != "" && errMsg == "" {
			errMsg = s.errMsg
		}
	}
	for i := 0; i < n; i++ {
		add(&r.arena[i])
	}
	for _, s := range spill {
		add(s)
	}
	if root.errMsg != "" {
		errMsg = root.errMsg
	}
	td := &TraceData{
		ID:       r.id,
		Root:     root.name,
		Start:    root.start,
		Duration: root.dur,
		Err:      errMsg,
		Spans:    spans,
		Dropped:  dropped,
	}
	r.tracer.store.Add(td, r.tracer.slow > 0 && td.Duration >= r.tracer.slow)
	// Recycle: drop retained references, then back to the pool. The rec
	// stays sealed while pooled, so a straggler ending now is harmless.
	r.spill = nil
	r.root = nil
	r.tracer.recs.Put(r)
}

// --- tracer ---

// TracerConfig tunes a Tracer. The zero value samples every root into a
// default-sized store — callers that want tracing OFF pass a nil
// *Tracer, not a zero config.
type TracerConfig struct {
	// SampleRate head-samples 1-in-N root spans (rounded up to a power
	// of two). 0 or 1 records every root; child spans always follow
	// their root's decision.
	SampleRate int
	// SlowThreshold routes traces at least this slow into the dedicated
	// always-keep slow ring, so a burst of fast traffic cannot evict the
	// outliers worth debugging. 0 disables the slow ring.
	SlowThreshold time.Duration
	// Capacity is the total normal-ring capacity in traces
	// (0 → DefaultTraceCapacity). The slow and error rings each hold an
	// additional Capacity/4.
	Capacity int
	// Stripes is the normal ring's lock-stripe count
	// (0 → DefaultTraceStripes).
	Stripes int
}

// Tracer mints sampled root spans and owns the trace store. Safe for
// concurrent use. A nil *Tracer is valid: StartSpan degrades to
// child-only tracing (it still continues a trace begun upstream).
type Tracer struct {
	store *TraceStore
	mask  uint32
	seq   atomic.Uint32
	slow  time.Duration
	// recs recycles trace records (span arenas included) across traces;
	// see spanArenaSize for the lifecycle.
	recs sync.Pool
}

// NewTracer builds a tracer and its ring-buffer store.
func NewTracer(cfg TracerConfig) *Tracer {
	rate := cfg.SampleRate
	if rate <= 0 {
		rate = 1
	}
	mask := uint32(1)
	for int(mask) < rate {
		mask <<= 1
	}
	return &Tracer{
		store: NewTraceStore(cfg.Capacity, cfg.Stripes),
		mask:  mask - 1,
		slow:  cfg.SlowThreshold,
		recs:  sync.Pool{New: func() any { return new(traceRec) }},
	}
}

// Store returns the tracer's ring-buffer trace store.
func (t *Tracer) Store() *TraceStore {
	if t == nil {
		return nil
	}
	return t.store
}

// SlowThreshold returns the always-keep slow cutoff (0 = disabled).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.slow
}

// Sample advances the head-sampling sequence and reports whether this
// root should record. One atomic add + mask test.
func (t *Tracer) Sample() bool {
	if t == nil {
		return false
	}
	return t.seq.Add(1)&t.mask == 0
}

// StartSpan opens a span named name: a child of the context's span when
// one is recording (continuing that trace), else — when the tracer's
// head sampler selects this root — a new recording root. Returns the
// unchanged context and a nil span when not recording. Nil-safe: a nil
// tracer still creates child spans for traces begun upstream.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if parent := SpanFromContext(ctx); parent != nil {
		return ChildSpan(ctx, name)
	}
	if t == nil || !t.Sample() {
		return ctx, nil
	}
	return t.StartRoot(ctx, name, NewTraceID(), SpanID{})
}

// StartRoot unconditionally opens a recording root span with an explicit
// trace ID and (possibly zero) remote parent — the entry point for HTTP
// middleware after the traceparent sampling decision is made.
func (t *Tracer) StartRoot(ctx context.Context, name string, trace TraceID, parent SpanID) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if trace.IsZero() {
		trace = NewTraceID()
	}
	// Check a recycled record out of the pool and re-arm it. None of
	// these writes race: the rec is unshared until this root span is
	// handed out, and gen is bumped before any span of the new
	// incarnation exists.
	rec := t.recs.Get().(*traceRec)
	rec.tracer = t
	rec.id = trace
	rec.gen++
	rec.arenaNext.Store(0)
	rec.dropped = 0
	rec.sealed = false
	s := rec.newSpan()
	s.name = name
	s.id = newSpanID()
	s.parent = parent
	s.start = time.Now()
	rec.root = s
	return ContextWithSpan(ctx, s), s
}

// ChildSpan opens a child of the context's recording span, or returns
// (ctx, nil) when the context carries none — the universal
// instrumentation point for code below the root.
func ChildSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.Child(name)
	return ContextWithSpan(ctx, s), s
}

// Child opens a child span directly off s, nil-safe, without threading a
// context — the hot-path form for fan-out sites that hold the parent
// span and whose children spawn no spans of their own (the per-shard
// search loop creates 16 of these per traced search; skipping the
// context allocation and lookup there is a measured win).
func (s *Span) Child(name string) *Span {
	return s.ChildAt(name, time.Time{})
}

// ChildAt is Child with a caller-supplied start instant, for fan-out
// sites where one span's end doubles as the next span's start (the
// serial shard loop) — sharing the clock read halves the fan-out's
// time.Now traffic. A zero start falls back to reading the clock.
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	if start.IsZero() {
		start = time.Now()
	}
	c := s.rec.newSpan()
	c.name = name
	c.id = newSpanID()
	c.parent = s.id
	c.start = start
	return c
}

// --- context plumbing ---

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the context's recording span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
