package telemetry

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

// Exposition-format edge cases: label-value and HELP escaping, and the
// exemplar suffix. Each test round-trips the rendered text through a
// small line-format parser rather than string-matching the writer's own
// output, so an escaping bug cannot cancel itself out.

// parsedLine is one metric line as a scraper would see it.
type parsedLine struct {
	name   string
	labels map[string]string
	value  float64

	exemplar       bool
	exemplarLabels map[string]string
	exemplarValue  float64
	exemplarTS     float64
}

// parseMetricLine parses `name{k="v",…} value[ # {k="v"} value ts]`,
// unescaping label values per the Prometheus text format (\\, \", \n).
func parseMetricLine(t *testing.T, line string) parsedLine {
	t.Helper()
	p := parsedLine{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i >= 0 && rest[i] == '{' {
		p.name = rest[:i]
		var ok bool
		p.labels, rest, ok = parseLabelSet(rest[i:])
		if !ok {
			t.Fatalf("bad label set in line %q", line)
		}
	} else {
		j := strings.IndexByte(rest, ' ')
		if j < 0 {
			t.Fatalf("no value in line %q", line)
		}
		p.name, rest = rest[:j], rest[j:]
	}
	rest = strings.TrimLeft(rest, " ")
	valStr, rest, _ := strings.Cut(rest, " ")
	v, err := parseValue(valStr)
	if err != nil {
		t.Fatalf("bad value %q in line %q: %v", valStr, line, err)
	}
	p.value = v
	rest = strings.TrimLeft(rest, " ")
	if rest == "" {
		return p
	}
	// Exemplar: `# {labels} value [ts]`.
	if !strings.HasPrefix(rest, "# ") {
		t.Fatalf("trailing garbage %q in line %q", rest, line)
	}
	p.exemplar = true
	var ok bool
	p.exemplarLabels, rest, ok = parseLabelSet(strings.TrimPrefix(rest, "# "))
	if !ok {
		t.Fatalf("bad exemplar label set in line %q", line)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		t.Fatalf("exemplar needs value [ts], got %q in line %q", rest, line)
	}
	if p.exemplarValue, err = parseValue(fields[0]); err != nil {
		t.Fatalf("bad exemplar value in line %q: %v", line, err)
	}
	if len(fields) == 2 {
		if p.exemplarTS, err = parseValue(fields[1]); err != nil {
			t.Fatalf("bad exemplar timestamp in line %q: %v", line, err)
		}
	}
	return p
}

// parseLabelSet consumes a `{k="v",…}` block, returning the unescaped
// labels and the remainder of the line.
func parseLabelSet(s string) (map[string]string, string, bool) {
	if len(s) == 0 || s[0] != '{' {
		return nil, s, false
	}
	out := map[string]string{}
	i := 1
	for {
		if i < len(s) && s[i] == '}' {
			return out, s[i+1:], true
		}
		j := strings.Index(s[i:], `="`)
		if j < 0 {
			return nil, s, false
		}
		name := s[i : i+j]
		i += j + 2
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, s, false
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, s, false
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, s, false
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		out[name] = val.String()
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// findLine returns the first non-comment line whose name and label
// subset match.
func findLine(t *testing.T, text, name string, want map[string]string) parsedLine {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") || !strings.HasPrefix(line, name) {
			continue
		}
		p := parseMetricLine(t, line)
		if p.name != name {
			continue
		}
		match := true
		for k, v := range want {
			if p.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return p
		}
	}
	t.Fatalf("no line %s%v in exposition:\n%s", name, want, text)
	return parsedLine{}
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestLabelValueEscapingRoundTrip(t *testing.T) {
	hostile := []string{
		`plain`,
		`has "quotes"`,
		`back\slash`,
		"new\nline",
		`all three: \ " ` + "\n" + ` done`,
		`trailing backslash \`,
	}
	r := NewRegistry()
	for i, v := range hostile {
		r.Counter("xar_escape_test_total", "escape test", L("v", v)).Add(uint64(i + 1))
	}
	text := render(t, r)
	for i, v := range hostile {
		p := findLine(t, text, "xar_escape_test_total", map[string]string{"v": v})
		if p.value != float64(i+1) {
			t.Errorf("label %q: value %g, want %d", v, p.value, i+1)
		}
	}
	// Raw newlines must never survive into the body of any line.
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "\r") {
			t.Fatalf("carriage return leaked into %q", line)
		}
	}
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("xar_help_test_total", "line one\nline two \\ with backslash", nil).Inc()
	text := render(t, r)
	want := `# HELP xar_help_test_total line one\nline two \\ with backslash`
	if !strings.Contains(text, want+"\n") {
		t.Fatalf("HELP not escaped; exposition:\n%s", text)
	}
	if strings.Count(text, "\n") != strings.Count(strings.TrimRight(text, "\n"), "\n")+1 {
		t.Fatal("unbalanced newlines")
	}
}

func TestExemplarRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("xar_op_duration_seconds", "op latency", []float64{0.001, 0.01, 0.1}, L("op", "search"))
	trace := NewTraceID()
	h.ObserveDurationExemplar(5*time.Millisecond, trace)
	h.ObserveDuration(2 * time.Millisecond) // plain observe must not disturb the exemplar

	text := render(t, r)
	p := findLine(t, text, "xar_op_duration_seconds_bucket", map[string]string{"op": "search", "le": "0.01"})
	if p.value != 2 { // cumulative: both observations ≤ 10ms
		t.Fatalf("bucket value = %g, want 2", p.value)
	}
	if !p.exemplar {
		t.Fatalf("bucket line missing exemplar: %+v", p)
	}
	if got := p.exemplarLabels["trace_id"]; got != trace.String() {
		t.Fatalf("exemplar trace_id = %q, want %q", got, trace)
	}
	if p.exemplarValue != 0.005 {
		t.Fatalf("exemplar value = %g, want 0.005", p.exemplarValue)
	}
	if p.exemplarTS == 0 {
		t.Fatal("exemplar missing timestamp")
	}
	if id, ok := ParseTraceID(p.exemplarLabels["trace_id"]); !ok || id != trace {
		t.Fatal("exemplar trace_id does not parse back to the original ID")
	}

	// Buckets without a traced observation carry no exemplar.
	p = findLine(t, text, "xar_op_duration_seconds_bucket", map[string]string{"op": "search", "le": "0.1"})
	if p.exemplar {
		t.Fatalf("untouched bucket has exemplar: %+v", p)
	}
}

func TestExemplarZeroTraceIgnored(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.ObserveExemplar(0.5, TraceID{})
	for i, e := range h.Exemplars() {
		if e != nil {
			t.Fatalf("bucket %d stamped by zero trace ID", i)
		}
	}
	if h.Count() != 1 {
		t.Fatal("zero-trace ObserveExemplar must still count the observation")
	}
}

func TestExemplarLastWriterWins(t *testing.T) {
	h := NewHistogram([]float64{1})
	first, second := NewTraceID(), NewTraceID()
	h.ObserveExemplar(0.5, first)
	h.ObserveExemplar(0.6, second)
	ex := h.Exemplars()
	if ex[0] == nil || ex[0].TraceID != second.String() {
		t.Fatalf("exemplar = %+v, want last writer %s", ex[0], second)
	}
}

func TestEveryLineParses(t *testing.T) {
	// Whole-output sanity: every non-comment line of a realistic registry
	// must parse under the line grammar, including +Inf buckets with
	// exemplars.
	r := NewRegistry()
	r.Counter("c_total", "a counter", L("weird", `a"b\c`+"\nd")).Inc()
	r.Gauge("g", "a gauge", nil).Set(3.5)
	h := r.Histogram("h_seconds", "a histogram", []float64{0.1}, nil)
	h.ObserveExemplar(5, NewTraceID()) // lands in +Inf
	text := render(t, r)
	n := 0
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parseMetricLine(t, line)
		n++
	}
	if n < 5 {
		t.Fatalf("parsed only %d lines:\n%s", n, text)
	}
	inf := findLine(t, text, "h_seconds_bucket", map[string]string{"le": "+Inf"})
	if !inf.exemplar || inf.exemplarValue != 5 {
		t.Fatalf("+Inf bucket exemplar = %+v", inf)
	}
	_ = fmt.Sprintf("%v", inf)
}
