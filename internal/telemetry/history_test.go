package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

// tickSeries drives rec with one tick per second of simulated time,
// observing fn before each tick.
func tickSeries(rec *Recorder, start float64, n int, step float64, fn func(i int)) {
	for i := 0; i < n; i++ {
		if fn != nil {
			fn(i)
		}
		rec.TickAt(start + float64(i)*step)
	}
}

func findSeries(t *testing.T, dump HistoryDump, name string) HistorySeries {
	t.Helper()
	for _, s := range dump.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("series %q not in dump (have %d series)", name, len(dump.Series))
	return HistorySeries{}
}

func TestRecorderCounterRates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("xar_test_events_total", "test", nil)
	rec := NewRecorder(reg, RecorderConfig{Interval: 10 * time.Second, Retention: 10 * time.Minute})

	// 10 events per 10s tick → rate 1.0/s at every window.
	tickSeries(rec, 1000, 30, 10, func(i int) { c.Add(10) })

	dump := rec.History(HistoryQuery{Name: "xar_test_events_total", Window: time.Minute})
	s := findSeries(t, dump, "xar_test_events_total")
	if len(s.Points) != 30 {
		t.Fatalf("points = %d, want 30", len(s.Points))
	}
	last := s.Points[len(s.Points)-1]
	if last.Rate == nil || math.Abs(*last.Rate-1.0) > 1e-9 {
		t.Fatalf("last rate = %v, want 1.0", last.Rate)
	}
	// First point has no anchor → no rate.
	if s.Points[0].Rate != nil {
		t.Fatalf("first point rate = %v, want nil", *s.Points[0].Rate)
	}
	// Chronological ordering.
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Unix <= s.Points[i-1].Unix {
			t.Fatalf("points not chronological at %d: %v then %v", i, s.Points[i-1].Unix, s.Points[i].Unix)
		}
	}
}

// TestRecorderWraparound drives the ring far past capacity and checks
// retention eviction plus correct windowed math across the ring seam.
func TestRecorderWraparound(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("xar_test_events_total", "test", nil)
	// 6 slots of 10s = 1 minute retention.
	rec := NewRecorder(reg, RecorderConfig{Interval: 10 * time.Second, Retention: time.Minute})
	if rec.slots != 6 {
		t.Fatalf("slots = %d, want 6", rec.slots)
	}

	// 20 ticks into a 6-slot ring: wraps 3×. Rate ramps so each window
	// has a distinct answer: tick i adds i events.
	total := uint64(0)
	tickSeries(rec, 2000, 20, 10, func(i int) {
		c.Add(uint64(i))
		total += uint64(i)
	})
	if c.Value() != total {
		t.Fatalf("counter = %d, want %d", c.Value(), total)
	}

	dump := rec.History(HistoryQuery{Name: "xar_test_events_total", Window: 30 * time.Second})
	if dump.Snapshots != 6 {
		t.Fatalf("snapshots = %d, want 6 (retention eviction)", dump.Snapshots)
	}
	s := findSeries(t, dump, "xar_test_events_total")
	if len(s.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(s.Points))
	}
	// Oldest retained tick is #14 (ticks 0..13 evicted): stamps 2140..2190.
	if got, want := s.Points[0].Unix, 2140.0; got != want {
		t.Fatalf("oldest stamp = %v, want %v", got, want)
	}
	if got, want := s.Points[5].Unix, 2190.0; got != want {
		t.Fatalf("newest stamp = %v, want %v", got, want)
	}
	// Newest point, 30s window: anchor is tick 16 (stamp 2160). Counter
	// delta = adds at ticks 17+18+19 = 54 over 30s = 1.8/s. The ring seam
	// (physical slot 0 holding logical tick 18) sits inside this window,
	// so a seam bug would corrupt exactly this answer.
	last := s.Points[5]
	if last.Rate == nil {
		t.Fatal("newest point has no rate")
	}
	if want := 54.0 / 30.0; math.Abs(*last.Rate-want) > 1e-9 {
		t.Fatalf("seam-window rate = %v, want %v", *last.Rate, want)
	}
}

func TestRecorderHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("xar_test_duration_seconds", "test", DurationBuckets(), nil)
	rec := NewRecorder(reg, RecorderConfig{Interval: 10 * time.Second, Retention: 10 * time.Minute})

	// Phase 1 (ticks 0..9): fast ops ~1ms. Phase 2 (ticks 10..19): slow
	// ops ~100ms. A windowed quantile must see only its window's phase.
	tickSeries(rec, 3000, 20, 10, func(i int) {
		v := 0.001
		if i >= 10 {
			v = 0.1
		}
		for k := 0; k < 100; k++ {
			h.Observe(v)
		}
	})

	dump := rec.History(HistoryQuery{Name: "xar_test_duration_seconds", Window: 50 * time.Second})
	s := findSeries(t, dump, "xar_test_duration_seconds")
	last := s.Points[len(s.Points)-1]
	if last.P95 == nil {
		t.Fatal("no p95 on newest point")
	}
	// Window covers only slow-phase observations; p95 must sit near 100ms,
	// nowhere near the 1ms fast phase that dominates the cumulative total.
	if *last.P95 < 0.05 || *last.P95 > 0.2 {
		t.Fatalf("windowed p95 = %v, want ≈0.1", *last.P95)
	}
	if last.Count == nil || *last.Count != 500 {
		t.Fatalf("windowed count = %v, want 500", last.Count)
	}
	// Whole-history cumulative quantile would be ~1ms at p50; the early
	// point inside phase 1 must reflect that.
	early := s.Points[7]
	if early.P50 == nil || *early.P50 > 0.01 {
		t.Fatalf("fast-phase p50 = %v, want ≈0.001", early.P50)
	}
}

func TestRecorderGaugeAndLateSeries(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("xar_test_depth", "test", nil)
	rec := NewRecorder(reg, RecorderConfig{Interval: 10 * time.Second, Retention: 5 * time.Minute})

	var late *Counter
	tickSeries(rec, 4000, 10, 10, func(i int) {
		g.Set(float64(i))
		if i == 5 {
			// A series born mid-flight must not report garbage for slots
			// predating its registration.
			late = reg.Counter("xar_test_late_total", "test", nil)
		}
		if late != nil {
			late.Inc()
		}
	})

	dump := rec.History(HistoryQuery{Window: 30 * time.Second})
	gs := findSeries(t, dump, "xar_test_depth")
	lastG := gs.Points[len(gs.Points)-1]
	if lastG.Value == nil || *lastG.Value != 9 {
		t.Fatalf("gauge last = %v, want 9", lastG.Value)
	}
	ls := findSeries(t, dump, "xar_test_late_total")
	if len(ls.Points) != 5 {
		t.Fatalf("late-series points = %d, want 5 (ticks 5..9)", len(ls.Points))
	}
	if ls.Points[0].Unix != 4050 {
		t.Fatalf("late-series first stamp = %v, want 4050", ls.Points[0].Unix)
	}
}

func TestRecorderSinceAndMaxPoints(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("xar_test_events_total", "test", nil)
	rec := NewRecorder(reg, RecorderConfig{Interval: 10 * time.Second, Retention: time.Hour})
	tickSeries(rec, 5000, 60, 10, func(i int) { c.Inc() })

	dump := rec.History(HistoryQuery{Since: 200 * time.Second, Window: time.Minute})
	s := findSeries(t, dump, "xar_test_events_total")
	for _, p := range s.Points {
		if p.Unix < 5590-200 {
			t.Fatalf("point %v violates Since bound", p.Unix)
		}
	}

	dump = rec.History(HistoryQuery{MaxPoints: 10, Window: time.Minute})
	s = findSeries(t, dump, "xar_test_events_total")
	if len(s.Points) > 10 {
		t.Fatalf("MaxPoints: got %d points, want ≤ 10", len(s.Points))
	}
	// Newest snapshot always survives striding.
	if s.Points[len(s.Points)-1].Unix != 5590 {
		t.Fatalf("newest stamp = %v, want 5590", s.Points[len(s.Points)-1].Unix)
	}
}

func TestFamilyDeltaLabelMatching(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("xar_test_ops_total", "test", L("op", "search"))
	b := reg.Counter("xar_test_ops_total", "test", L("op", "book"))
	rec := NewRecorder(reg, RecorderConfig{Interval: 10 * time.Second, Retention: 5 * time.Minute})
	tickSeries(rec, 6000, 10, 10, func(i int) {
		a.Add(3)
		b.Add(7)
	})

	d, ok := rec.FamilyDelta("xar_test_ops_total", L("op", "search"), 50*time.Second)
	if !ok {
		t.Fatal("no delta for op=search")
	}
	if d.Counter != 15 { // 5 ticks × 3
		t.Fatalf("search delta = %v, want 15", d.Counter)
	}
	d, ok = rec.FamilyDelta("xar_test_ops_total", nil, 50*time.Second)
	if !ok || d.Counter != 50 { // 5 ticks × (3+7)
		t.Fatalf("family-wide delta = %v (ok=%v), want 50", d.Counter, ok)
	}
	if _, ok := rec.FamilyDelta("xar_absent_total", nil, time.Minute); ok {
		t.Fatal("delta for absent family should report !ok")
	}
}

// TestRecorderConcurrent exercises concurrent tick/read under -race.
func TestRecorderConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("xar_test_events_total", "test", nil)
	h := reg.Histogram("xar_test_duration_seconds", "test", DurationBuckets(), nil)
	rec := NewRecorder(reg, RecorderConfig{Interval: time.Second, Retention: 20 * time.Second})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: observe concurrently with ticking.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.001)
				}
			}
		}()
	}
	// Readers: History + FamilyDelta while ticks advance.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = rec.History(HistoryQuery{Window: 5 * time.Second})
					_, _ = rec.FamilyDelta("xar_test_events_total", nil, 5*time.Second)
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		rec.TickAt(7000 + float64(i))
	}
	close(stop)
	wg.Wait()

	dump := rec.History(HistoryQuery{Window: 5 * time.Second})
	if dump.Snapshots != 20 {
		t.Fatalf("snapshots = %d, want 20", dump.Snapshots)
	}
}

func TestRecorderStartStop(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("xar_test_events_total", "test", nil)
	rec := NewRecorder(reg, RecorderConfig{Interval: 5 * time.Millisecond, Retention: time.Second})
	rec.Start()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if rec.History(HistoryQuery{}).Snapshots >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recorder never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	rec.Stop()
	n := rec.History(HistoryQuery{}).Snapshots
	time.Sleep(20 * time.Millisecond)
	if got := rec.History(HistoryQuery{}).Snapshots; got != n {
		t.Fatalf("recorder ticked after Stop: %d → %d", n, got)
	}
	rec.Stop() // idempotent
}

func TestQuantileFromCumBuckets(t *testing.T) {
	bounds := []float64{1, 2, 4, 8}
	// 10 obs ≤1, 30 ≤2, 60 ≤4, 100 ≤8 (cumulative), none overflow.
	cum := []uint64{10, 30, 60, 100, 100}
	if got := quantileFromCumBuckets(bounds, cum, 100, 0.5); got < 2 || got > 4 {
		t.Fatalf("p50 = %v, want in (2,4]", got)
	}
	if got := quantileFromCumBuckets(bounds, cum, 100, 0.05); got > 1 {
		t.Fatalf("p5 = %v, want ≤ 1", got)
	}
	if got := quantileFromCumBuckets(bounds, cum, 100, 1.0); got != 8 {
		t.Fatalf("p100 = %v, want 8", got)
	}
	if got := quantileFromCumBuckets(bounds, cum, 0, 0.5); !math.IsNaN(got) {
		t.Fatalf("empty quantile = %v, want NaN", got)
	}
}
