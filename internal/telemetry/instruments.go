package telemetry

// Canonical instrument names shared by the engine, the HTTP layer and
// the sim/bench harness. Registration is idempotent, so any subsystem
// can call these helpers and record into the same series — the engine
// instruments operations from the inside (cmd/xarserver), the replay
// harness from the outside (cmd/xarbench); a deployment wires exactly
// one of the two to a registry so an operation is never double-counted.
const (
	// OpDurationName times whole engine operations, labeled op=search|
	// create|book|cancel|track|complete.
	OpDurationName = "xar_op_duration_seconds"
	// SearchStageName decomposes one search into the paper's stages
	// (§VII), labeled stage=side_lookup|candidate_scan|final_check|
	// walk_pair|detour_check. Fig 4a's latency story becomes observable
	// per stage.
	SearchStageName = "xar_search_stage_duration_seconds"
)

// OpDuration returns the whole-operation latency histogram for op.
func OpDuration(r *Registry, op string) *Histogram {
	return r.Histogram(OpDurationName,
		"Engine operation latency by operation.",
		DurationBuckets(), L("op", op))
}

// SearchStage returns the per-stage search latency histogram for stage.
func SearchStage(r *Registry, stage string) *Histogram {
	return r.Histogram(SearchStageName,
		"Search latency decomposed by internal stage (one observation per search per stage reached).",
		DurationBuckets(), L("stage", stage))
}
