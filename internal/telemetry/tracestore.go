package telemetry

import (
	"sort"
	"sync"
	"time"

	"xar/internal/memsize"
)

// Trace-store sizing defaults.
const (
	// DefaultTraceCapacity is the normal ring's total capacity in traces.
	// A trace is a few KB (spans × ~200 B), so the default store tops out
	// around a few MB — bounded, allocation-recycling, restart-free.
	DefaultTraceCapacity = 1024
	// DefaultTraceStripes is the normal ring's lock-stripe count: inserts
	// hash by trace ID across independent mutexes so concurrent request
	// completions don't serialize on one lock.
	DefaultTraceStripes = 8
	// minSideRing is the floor for the slow/error rings' capacity.
	minSideRing = 64
)

// TraceStore is a fixed-size, lock-striped ring buffer of finished
// traces with two always-keep side rings:
//
//   - normal: head-sampled traffic, striped by trace ID; new traces
//     overwrite the oldest in their stripe.
//   - slow: traces over the tracer's SlowThreshold. Kept separately so
//     a flood of fast requests can never evict the outliers — the whole
//     point of keeping traces is explaining the p99.
//   - error: traces whose any span failed, same reasoning.
//
// Reads (Get/List/Slowest) copy slice headers under each stripe's lock;
// TraceData values are immutable after sealing, so handing out pointers
// is safe.
type TraceStore struct {
	stripes []traceRing
	slow    traceRing
	errs    traceRing
}

// NewTraceStore builds a store with the given normal-ring capacity and
// stripe count (0 → defaults). The slow and error rings each hold
// capacity/4 (min 64).
func NewTraceStore(capacity, stripes int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if stripes <= 0 {
		stripes = DefaultTraceStripes
	}
	if stripes > capacity {
		stripes = capacity
	}
	side := capacity / 4
	if side < minSideRing {
		side = minSideRing
	}
	s := &TraceStore{stripes: make([]traceRing, stripes)}
	per := capacity / stripes
	if per < 1 {
		per = 1
	}
	for i := range s.stripes {
		s.stripes[i].init(per)
	}
	s.slow.init(side)
	s.errs.init(side)
	return s
}

// Add files a finished trace under the keep policy. slow is the tracer's
// pre-computed SlowThreshold verdict (the store itself is
// policy-agnostic about durations).
func (s *TraceStore) Add(td *TraceData, slow bool) {
	switch {
	case td.Errored():
		s.errs.add(td)
	case slow:
		s.slow.add(td)
	default:
		s.stripes[int(td.ID[15])%len(s.stripes)].add(td)
	}
}

// Get returns the stored trace with the given ID.
func (s *TraceStore) Get(id TraceID) (*TraceData, bool) {
	if td := s.stripes[int(id[15])%len(s.stripes)].get(id); td != nil {
		return td, true
	}
	if td := s.slow.get(id); td != nil {
		return td, true
	}
	if td := s.errs.get(id); td != nil {
		return td, true
	}
	return nil, false
}

// MeasureMem implements memsize.Measurer: every ring's buffer — and the
// sealed, immutable traces it retains — is walked under that ring's
// mutex, one ring at a time, so concurrent Adds only ever wait on the
// single ring being measured.
func (s *TraceStore) MeasureMem(a *memsize.Accumulator) {
	for i := range s.stripes {
		s.stripes[i].measureMem(a)
	}
	s.slow.measureMem(a)
	s.errs.measureMem(a)
}

func (r *traceRing) measureMem(a *memsize.Accumulator) {
	r.mu.Lock()
	a.Add(r.buf)
	r.mu.Unlock()
}

// TraceFilter selects traces for List.
type TraceFilter struct {
	// Op keeps traces whose root is named Op — or that contain any span
	// named Op, so `op=search` finds both a bare engine `search` root
	// (sim, bench) and an HTTP `/v1/search` root with the engine span
	// underneath.
	Op string
	// MinDuration keeps traces at least this long.
	MinDuration time.Duration
	// Status is "", "ok" or "error".
	Status string
	// Limit caps the result length (0 → 100).
	Limit int
}

const defaultListLimit = 100

// List returns matching traces, newest first.
func (s *TraceStore) List(f TraceFilter) []*TraceData {
	limit := f.Limit
	if limit <= 0 {
		limit = defaultListLimit
	}
	all := s.snapshot()
	out := make([]*TraceData, 0, limit)
	for _, td := range all {
		if f.MinDuration > 0 && td.Duration < f.MinDuration {
			continue
		}
		if f.Status == "error" && !td.Errored() {
			continue
		}
		if f.Status == "ok" && td.Errored() {
			continue
		}
		if f.Op != "" && td.Root != f.Op && !td.HasSpan(f.Op) {
			continue
		}
		out = append(out, td)
		if len(out) == limit {
			break
		}
	}
	return out
}

// Slowest returns the n longest stored traces, longest first — the
// shape `xarbench -trace-out` and `xarsim -trace-out` dump for offline
// inspection.
func (s *TraceStore) Slowest(n int) []*TraceData {
	if n <= 0 {
		return nil
	}
	all := s.snapshot()
	sort.SliceStable(all, func(i, j int) bool { return all[i].Duration > all[j].Duration })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Len returns the number of stored traces.
func (s *TraceStore) Len() int {
	n := s.slow.len() + s.errs.len()
	for i := range s.stripes {
		n += s.stripes[i].len()
	}
	return n
}

// snapshot collects every stored trace sorted newest-first.
func (s *TraceStore) snapshot() []*TraceData {
	var all []*TraceData
	for i := range s.stripes {
		all = s.stripes[i].appendTo(all)
	}
	all = s.slow.appendTo(all)
	all = s.errs.appendTo(all)
	sort.SliceStable(all, func(i, j int) bool { return all[i].Start.After(all[j].Start) })
	return all
}

// traceRing is one fixed-capacity overwrite-oldest buffer.
type traceRing struct {
	mu   sync.Mutex
	buf  []*TraceData
	next int
	full bool
}

func (r *traceRing) init(capacity int) { r.buf = make([]*TraceData, capacity) }

func (r *traceRing) add(td *TraceData) {
	r.mu.Lock()
	r.buf[r.next] = td
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

func (r *traceRing) get(id TraceID) *TraceData {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, td := range r.buf {
		if td != nil && td.ID == id {
			return td
		}
	}
	return nil
}

func (r *traceRing) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

func (r *traceRing) appendTo(dst []*TraceData) []*TraceData {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, td := range r.buf {
		if td != nil {
			dst = append(dst, td)
		}
	}
	return dst
}

// ForceError copies the stored trace with the given ID into the
// always-keep error ring. The invariant auditor files the offending
// ride's most recent trace here when a violation implicates it, so the
// trace survives normal-ring churn for the post-incident look. Reports
// whether the trace was found; a trace already in the error ring is not
// duplicated.
func (s *TraceStore) ForceError(id TraceID) bool {
	if s.errs.get(id) != nil {
		return true
	}
	td, ok := s.Get(id)
	if !ok {
		return false
	}
	s.errs.add(td)
	return true
}
