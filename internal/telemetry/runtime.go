package telemetry

import (
	"math"
	"runtime"
	runtimemetrics "runtime/metrics"
	"sync"
)

// RegisterRuntimeMetrics wires Go runtime health into the registry:
// goroutine count, heap usage, GC cycles, and — via runtime/metrics —
// full GC-pause and scheduler-latency distributions. The histograms are
// what make "is the runtime interfering with the search SLO" answerable:
// a p99 search blip with a matching go_gc_pauses_seconds spike is a GC
// problem, not an algorithm problem (and vice versa).
//
// Everything refreshes on scrape: one runtime.ReadMemStats plus one
// runtime/metrics.Read per exposition render or recorder tick, never
// per request.
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })

	heapAlloc := r.Gauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", nil)
	heapObjects := r.Gauge("go_memstats_heap_objects", "Number of allocated heap objects.", nil)
	sys := r.Gauge("go_memstats_sys_bytes", "Total bytes obtained from the OS.", nil)
	gcCycles := r.Counter("go_gc_cycles_total", "Completed GC cycles.", nil)

	// GC pauses and scheduler latencies land in the sub-µs to ms range;
	// 100ns–1s at 5 buckets per decade resolves both.
	runtimeBounds := LogBuckets(100e-9, 1, 5)
	imp := &runtimeHistImporter{
		samples: []runtimemetrics.Sample{
			{Name: gcPauseMetricName()},
			{Name: "/sched/latencies:seconds"},
		},
		hists: []*Histogram{
			r.Histogram("go_gc_pauses_seconds",
				"Distribution of stop-the-world GC pause durations.", runtimeBounds, nil),
			r.Histogram("go_sched_latencies_seconds",
				"Distribution of goroutine scheduling latencies (runnable to running).", runtimeBounds, nil),
		},
	}

	var prevGC uint32
	r.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapObjects.Set(float64(ms.HeapObjects))
		sys.Set(float64(ms.Sys))
		if d := ms.NumGC - prevGC; d > 0 {
			gcCycles.Add(uint64(d))
			prevGC = ms.NumGC
		}
		imp.scrape()
	})
}

// gcPauseMetricName picks the runtime's GC-pause histogram: the
// consolidated /sched/pauses name (Go 1.22+) when present, else the
// older /gc/pauses:seconds.
func gcPauseMetricName() string {
	const modern = "/sched/pauses/total/gc:seconds"
	for _, d := range runtimemetrics.All() {
		if d.Name == modern {
			return modern
		}
	}
	return "/gc/pauses:seconds"
}

// runtimeHistImporter delta-imports cumulative runtime/metrics
// Float64Histograms into registry histograms: each scrape reads the
// runtime's bucket counts, diffs against the previous read, and bulk-adds
// each bucket's new observations at the bucket's representative value.
// Re-bucketing loses at most one of our bucket widths (~60%) of
// resolution — fine for "did GC pause for milliseconds" questions.
type runtimeHistImporter struct {
	mu      sync.Mutex // scrapes may race (two concurrent expositions)
	samples []runtimemetrics.Sample
	hists   []*Histogram
	prev    [][]uint64
}

func (imp *runtimeHistImporter) scrape() {
	imp.mu.Lock()
	defer imp.mu.Unlock()
	runtimemetrics.Read(imp.samples)
	if imp.prev == nil {
		imp.prev = make([][]uint64, len(imp.samples))
	}
	for i := range imp.samples {
		if imp.samples[i].Value.Kind() != runtimemetrics.KindFloat64Histogram {
			continue // metric absent on this runtime version
		}
		rh := imp.samples[i].Value.Float64Histogram()
		if rh == nil {
			continue
		}
		if len(imp.prev[i]) != len(rh.Counts) {
			// First read (or runtime changed layout): baseline without
			// importing, so process-lifetime history before registration
			// doesn't land in one scrape as a spike.
			imp.prev[i] = append([]uint64(nil), rh.Counts...)
			continue
		}
		for b, c := range rh.Counts {
			d := c - imp.prev[i][b]
			if d == 0 {
				continue
			}
			imp.prev[i][b] = c
			imp.hists[i].AddSample(representativeValue(rh.Buckets, b), d)
		}
	}
}

// representativeValue summarizes runtime bucket b (bounded by
// Buckets[b], Buckets[b+1]) as one value: the geometric mean for finite
// positive bounds, clamping the ±Inf edge buckets to their finite side.
func representativeValue(bounds []float64, b int) float64 {
	lo, hi := bounds[b], bounds[b+1]
	switch {
	case math.IsInf(lo, -1):
		return hi
	case math.IsInf(hi, 1):
		return lo
	case lo > 0:
		return math.Sqrt(lo * hi)
	default:
		return (lo + hi) / 2
	}
}
