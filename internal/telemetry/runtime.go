package telemetry

import (
	"runtime"
	"time"
)

// RegisterRuntimeMetrics wires Go runtime health gauges into the
// registry: goroutine count, heap usage, GC activity. All memstats
// gauges are refreshed by a single runtime.ReadMemStats per scrape (via
// OnScrape) rather than one stop-the-world read per gauge.
func RegisterRuntimeMetrics(r *Registry) {
	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })

	heapAlloc := r.Gauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.", nil)
	heapObjects := r.Gauge("go_memstats_heap_objects", "Number of allocated heap objects.", nil)
	sys := r.Gauge("go_memstats_sys_bytes", "Total bytes obtained from the OS.", nil)
	numGC := r.Gauge("go_gc_cycles_total", "Completed GC cycles.", nil)
	pauseTotal := r.Gauge("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", nil)
	lastPause := r.Gauge("go_gc_last_pause_seconds", "Duration of the most recent GC pause.", nil)

	r.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapObjects.Set(float64(ms.HeapObjects))
		sys.Set(float64(ms.Sys))
		numGC.Set(float64(ms.NumGC))
		pauseTotal.Set(time.Duration(ms.PauseTotalNs).Seconds())
		if ms.NumGC > 0 {
			lastPause.Set(time.Duration(ms.PauseNs[(ms.NumGC+255)%256]).Seconds())
		}
	})
}
