package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned zero ID")
	}
	s := id.String()
	if len(s) != 32 || strings.ToLower(s) != s {
		t.Fatalf("String() = %q, want 32 lowercase hex digits", s)
	}
	back, ok := ParseTraceID(s)
	if !ok || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v; want original ID", s, back, ok)
	}
}

func TestParseTraceIDRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"abc",
		strings.Repeat("0", 32),                  // zero ID is invalid
		strings.Repeat("g", 32),                  // non-hex
		strings.Repeat("a", 31),                  // short
		strings.Repeat("a", 33),                  // long
		strings.ToUpper(NewTraceID().String())[:31] + "Z", // stray non-hex
	} {
		if _, ok := ParseTraceID(s); ok {
			t.Errorf("ParseTraceID(%q) accepted, want reject", s)
		}
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	trace := NewTraceID()
	span := newSpanID()
	for _, sampled := range []bool{true, false} {
		h := FormatTraceparent(trace, span, sampled)
		gotTrace, gotParent, gotSampled, ok := ParseTraceparent(h)
		if !ok {
			t.Fatalf("ParseTraceparent(%q) rejected own output", h)
		}
		if gotTrace != trace || gotParent != span || gotSampled != sampled {
			t.Fatalf("round trip %q: got (%v,%v,%v), want (%v,%v,%v)",
				h, gotTrace, gotParent, gotSampled, trace, span, sampled)
		}
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := FormatTraceparent(NewTraceID(), newSpanID(), true)
	cases := map[string]string{
		"empty":        "",
		"short":        valid[:54],
		"bad dash 1":   valid[:2] + "x" + valid[3:],
		"bad dash 2":   valid[:35] + "x" + valid[36:],
		"bad dash 3":   valid[:52] + "x" + valid[53:],
		"version ff":   "ff" + valid[2:],
		"zero trace":   "00-" + strings.Repeat("0", 32) + valid[35:],
		"zero parent":  valid[:36] + strings.Repeat("0", 16) + valid[52:],
		"non-hex flag": valid[:53] + "zz",
	}
	for name, h := range cases {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want reject", name, h)
		}
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Per the W3C forward-compat rule, an unknown (non-ff) version whose
	// 00 layout still parses must be accepted.
	h := "cc" + FormatTraceparent(NewTraceID(), newSpanID(), true)[2:]
	if _, _, _, ok := ParseTraceparent(h); !ok {
		t.Fatalf("ParseTraceparent(%q) rejected future version", h)
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.SetStr("k", "v")
	s.SetInt("k", 1)
	s.SetFloat("k", 1.5)
	s.SetError(context.Canceled)
	s.SetErrorMsg("boom")
	s.End()
	if !s.TraceID().IsZero() || !s.SpanID().IsZero() {
		t.Fatal("nil span must report zero IDs")
	}
}

func TestSpanTree(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	ctx, root := tr.StartSpan(context.Background(), "book")
	if root == nil {
		t.Fatal("rate-1 tracer did not record root")
	}
	root.SetInt("conflict_retries", 2)

	cctx, attempt := ChildSpan(ctx, "book_attempt")
	attempt.SetInt("attempt", 1)
	_, path := ChildSpan(cctx, "path_search")
	path.SetFloat("dist", 42.5)
	path.End()
	attempt.End()
	root.End()

	td, ok := tr.Store().Get(root.TraceID())
	if !ok {
		t.Fatal("finished trace not in store")
	}
	if td.Root != "book" || len(td.Spans) != 3 {
		t.Fatalf("trace root=%q spans=%d, want book/3", td.Root, len(td.Spans))
	}

	doc := td.Doc()
	if len(doc.Tree) != 1 || doc.Tree[0].Name != "book" {
		t.Fatalf("tree roots = %+v, want single book root", doc.Tree)
	}
	bk := doc.Tree[0]
	if bk.Attrs["conflict_retries"] != float64(2) {
		t.Fatalf("root attrs = %v", bk.Attrs)
	}
	if len(bk.Children) != 1 || bk.Children[0].Name != "book_attempt" {
		t.Fatalf("book children = %+v", bk.Children)
	}
	at := bk.Children[0]
	if len(at.Children) != 1 || at.Children[0].Name != "path_search" {
		t.Fatalf("attempt children = %+v", at.Children)
	}
	if at.Children[0].Attrs["dist"] != 42.5 {
		t.Fatalf("path attrs = %v", at.Children[0].Attrs)
	}
	if doc.Status != "ok" {
		t.Fatalf("status = %q, want ok", doc.Status)
	}
}

func TestHeadSampling(t *testing.T) {
	tr := NewTracer(TracerConfig{SampleRate: 4})
	recorded := 0
	const n = 64
	for i := 0; i < n; i++ {
		_, s := tr.StartSpan(context.Background(), "search")
		if s != nil {
			recorded++
			s.End()
		}
	}
	if recorded != n/4 {
		t.Fatalf("recorded %d of %d roots at rate 4, want %d", recorded, n, n/4)
	}
	if got := tr.Store().Len(); got != n/4 {
		t.Fatalf("store holds %d traces, want %d", got, n/4)
	}
}

func TestChildFollowsRootDecision(t *testing.T) {
	// Children of a recording root record regardless of the sampler; no
	// root in context means no children either.
	tr := NewTracer(TracerConfig{SampleRate: 1 << 20})
	ctx, root := tr.StartRoot(context.Background(), "search", TraceID{}, SpanID{})
	if root == nil {
		t.Fatal("StartRoot returned nil")
	}
	if _, child := ChildSpan(ctx, "side_lookup"); child == nil {
		t.Fatal("child of recording root must record")
	}
	if _, orphan := ChildSpan(context.Background(), "side_lookup"); orphan != nil {
		t.Fatal("child without a context span must be nil")
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Sample() {
		t.Fatal("nil tracer sampled")
	}
	ctx, s := tr.StartSpan(context.Background(), "search")
	if s != nil {
		t.Fatal("nil tracer returned recording span")
	}
	// But a nil tracer still continues traces begun upstream.
	live := NewTracer(TracerConfig{})
	ctx, root := live.StartSpan(context.Background(), "http")
	_, child := tr.StartSpan(ctx, "search")
	if child == nil {
		t.Fatal("nil tracer must continue an upstream trace")
	}
	child.End()
	root.End()
	if _, ok := live.Store().Get(root.TraceID()); !ok {
		t.Fatal("trace missing from upstream store")
	}
}

func TestErrorTraceKept(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 8, Stripes: 1})
	_, s := tr.StartSpan(context.Background(), "book")
	s.SetErrorMsg("ride not found")
	errID := s.TraceID()
	s.End()

	// Flood the normal ring far past capacity.
	for i := 0; i < 1024; i++ {
		_, f := tr.StartSpan(context.Background(), "search")
		f.End()
	}

	td, ok := tr.Store().Get(errID)
	if !ok {
		t.Fatal("error trace evicted by fast traffic; must be kept in the error ring")
	}
	if !td.Errored() || td.Err != "ride not found" {
		t.Fatalf("error trace = %+v", td)
	}
	if got := tr.Store().List(TraceFilter{Status: "error"}); len(got) != 1 {
		t.Fatalf("List(error) = %d traces, want 1", len(got))
	}
}

func TestSlowTraceKept(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 8, Stripes: 1, SlowThreshold: time.Nanosecond})
	_, s := tr.StartSpan(context.Background(), "search")
	time.Sleep(time.Millisecond)
	slowID := s.TraceID()
	s.End()

	td, ok := tr.Store().Get(slowID)
	if !ok {
		t.Fatal("slow trace not stored")
	}
	if td.Duration < time.Millisecond {
		t.Fatalf("slow trace duration = %v", td.Duration)
	}
	// min_ms-style filtering finds it.
	if got := tr.Store().List(TraceFilter{Op: "search", MinDuration: time.Millisecond}); len(got) != 1 {
		t.Fatalf("List(search, 1ms) = %d traces, want 1", len(got))
	}
}

func TestListOpMatchesContainedSpan(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	ctx, root := tr.StartSpan(context.Background(), "/v1/search")
	_, child := ChildSpan(ctx, "search")
	child.End()
	root.End()

	if got := tr.Store().List(TraceFilter{Op: "search"}); len(got) != 1 {
		t.Fatalf("op=search must match the engine span under an HTTP root; got %d", len(got))
	}
	if got := tr.Store().List(TraceFilter{Op: "book"}); len(got) != 0 {
		t.Fatalf("op=book matched %d traces, want 0", len(got))
	}
}

func TestSlowestOrdering(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	for _, d := range []time.Duration{time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond} {
		_, s := tr.StartSpan(context.Background(), "search")
		time.Sleep(d)
		s.End()
	}
	got := tr.Store().Slowest(2)
	if len(got) != 2 {
		t.Fatalf("Slowest(2) = %d traces", len(got))
	}
	if got[0].Duration < got[1].Duration {
		t.Fatalf("Slowest not ordered: %v then %v", got[0].Duration, got[1].Duration)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(TracerConfig{Capacity: 4, Stripes: 1})
	var first TraceID
	for i := 0; i < 8; i++ {
		_, s := tr.StartSpan(context.Background(), "search")
		if i == 0 {
			first = s.TraceID()
		}
		s.End()
	}
	if _, ok := tr.Store().Get(first); ok {
		t.Fatal("oldest trace should be overwritten in a full ring")
	}
	if got := tr.Store().Len(); got != 4 {
		t.Fatalf("store len = %d, want capacity 4", got)
	}
}

func TestSpanCap(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	ctx, root := tr.StartSpan(context.Background(), "track_all")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, c := ChildSpan(ctx, "track")
		c.End()
	}
	root.End()
	td, ok := tr.Store().Get(root.TraceID())
	if !ok {
		t.Fatal("capped trace not stored")
	}
	if len(td.Spans) != maxSpansPerTrace {
		t.Fatalf("spans = %d, want cap %d", len(td.Spans), maxSpansPerTrace)
	}
	if td.Dropped != 11 { // 10 extra children + the root itself over cap
		t.Fatalf("dropped = %d, want 11", td.Dropped)
	}
}

func TestConcurrentSpanEnds(t *testing.T) {
	// The search fan-out ends per-shard spans from worker goroutines.
	tr := NewTracer(TracerConfig{})
	ctx, root := tr.StartSpan(context.Background(), "search")
	const workers = 16
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, s := ChildSpan(ctx, "search_shard")
			s.SetInt("shard", int64(i))
			s.End()
		}(i)
	}
	wg.Wait()
	root.End()
	td, ok := tr.Store().Get(root.TraceID())
	if !ok {
		t.Fatal("trace not stored")
	}
	if len(td.Spans) != workers+1 {
		t.Fatalf("spans = %d, want %d", len(td.Spans), workers+1)
	}
	doc := td.Doc()
	if len(doc.Tree) != 1 || len(doc.Tree[0].Children) != workers {
		t.Fatalf("tree = %d roots, %d children", len(doc.Tree), len(doc.Tree[0].Children))
	}
}

func TestRemoteParentSurfacesAsRoot(t *testing.T) {
	// An HTTP root continuing a remote traceparent has a non-zero parent
	// that is not among the stored spans; the doc must still render it.
	tr := NewTracer(TracerConfig{})
	remote := newSpanID()
	_, root := tr.StartRoot(context.Background(), "/v1/search", NewTraceID(), remote)
	root.End()
	td, _ := tr.Store().Get(root.TraceID())
	doc := td.Doc()
	if len(doc.Tree) != 1 || doc.Tree[0].Name != "/v1/search" {
		t.Fatalf("remote-parent root missing from tree: %+v", doc.Tree)
	}
}

func TestLateChildDropped(t *testing.T) {
	tr := NewTracer(TracerConfig{})
	ctx, root := tr.StartSpan(context.Background(), "search")
	_, straggler := ChildSpan(ctx, "late")
	root.End()
	straggler.End() // after seal: must not corrupt the stored trace
	td, _ := tr.Store().Get(root.TraceID())
	if td.HasSpan("late") {
		t.Fatal("span ended after root seal must be dropped")
	}
}
