package telemetry

import (
	"math"
	"sync"
	"time"

	"xar/internal/memsize"
)

// The flight recorder: a fixed-memory, in-process time-series store that
// snapshots every registered instrument on a cadence and answers
// windowed-rate and rolling-quantile queries over the retained history.
//
// The paper's whole evaluation (Figures 3–6) is about how latency and
// match quality evolve over a simulated day; a point-in-time scrape
// cannot answer "what did search p95 look like over the last half hour"
// without an external Prometheus. The recorder closes that gap with the
// same design constraints as the rest of the package:
//
//   - Fixed memory. Retention/interval slots are allocated once per
//     series; ticking overwrites the oldest slot. No growth, no GC churn
//     proportional to uptime.
//   - Off the hot path. Instruments are read only at tick time (default
//     every 10s); recording a request costs exactly what it cost before
//     the recorder existed.
//   - One clock domain choice per deployment. Live servers tick on wall
//     time (Start); simulation replays tick on simulated time (TickAt),
//     which is how xarsim regenerates the paper's time-of-day figures
//     from recorder output.
//
// Snapshots store cumulative values (counter totals, histogram bucket
// counts), so any window's rate or quantile is a subtraction between two
// slots — the windowed math never loses information to pre-aggregation.

// Default recorder cadence and retention: 10-second snapshots kept for
// one hour (360 slots). A histogram series costs slots×(buckets+1)
// uint64s ≈ 92 KB at the standard 31-bound layout; a few dozen series
// stay comfortably under a few MB.
const (
	DefaultRecorderInterval  = 10 * time.Second
	DefaultRecorderRetention = time.Hour
)

// RecorderConfig sizes a Recorder.
type RecorderConfig struct {
	// Interval between snapshots (0 → DefaultRecorderInterval).
	Interval time.Duration
	// Retention is how much history the ring keeps (0 →
	// DefaultRecorderRetention). Slot count is Retention/Interval.
	Retention time.Duration
}

// recSeries is the retained history of one instrument: parallel rings of
// cumulative values, one slot per tick. Slots older than the series'
// first tick (a series registered mid-flight) are invalid.
type recSeries struct {
	name   string
	labels Labels
	kind   Kind

	firstTick uint64 // global tick number of this series' first snapshot

	vals []float64 // counters: cumulative total; gauges: value

	// Histogram rings: cumulative count/sum plus per-bucket cumulative
	// counts flattened as slot*(len(bounds)+1)+bucket.
	counts  []uint64
	sums    []float64
	bounds  []float64
	buckets []uint64
}

// Recorder snapshots a Registry's instruments into per-series rings.
// Safe for concurrent Tick/History/FamilyDelta use; ticks serialize.
type Recorder struct {
	reg      *Registry
	interval time.Duration
	slots    int

	mu     sync.RWMutex
	times  []float64 // unix seconds per slot
	next   int       // slot the next tick writes
	filled int       // valid slots (≤ slots)
	tick   uint64    // total ticks taken since construction
	series map[seriesKey]*recSeries
	order  []*recSeries

	onTick []func()

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

type seriesKey struct{ name, sig string }

// MeasureMem implements memsize.Measurer: the time ring, the series
// table, and every series' value rings are walked under the recorder's
// read lock, so measurement is safe against a concurrent tick (ticks
// take the write lock). Nil-receiver-safe.
func (r *Recorder) MeasureMem(a *memsize.Accumulator) {
	if r == nil {
		return
	}
	r.mu.RLock()
	a.Add(r.times)
	a.Add(r.series)
	a.Add(r.order)
	r.mu.RUnlock()
}

// NewRecorder builds a recorder over reg. It takes no snapshot until
// Start or TickAt is called.
func NewRecorder(reg *Registry, cfg RecorderConfig) *Recorder {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultRecorderInterval
	}
	if cfg.Retention <= 0 {
		cfg.Retention = DefaultRecorderRetention
	}
	slots := int(cfg.Retention / cfg.Interval)
	if slots < 2 {
		slots = 2
	}
	return &Recorder{
		reg:      reg,
		interval: cfg.Interval,
		slots:    slots,
		times:    make([]float64, slots),
		series:   make(map[seriesKey]*recSeries),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval returns the configured snapshot cadence.
func (rec *Recorder) Interval() time.Duration { return rec.interval }

// Retention returns the configured history span.
func (rec *Recorder) Retention() time.Duration {
	return time.Duration(rec.slots) * rec.interval
}

// OnTick registers fn to run after every snapshot (outside the
// recorder's lock) — the hook the SLO engine evaluates on.
func (rec *Recorder) OnTick(fn func()) {
	rec.mu.Lock()
	rec.onTick = append(rec.onTick, fn)
	rec.mu.Unlock()
}

// Start launches the wall-clock ticker goroutine. Stop ends it.
func (rec *Recorder) Start() {
	go func() {
		defer close(rec.done)
		t := time.NewTicker(rec.interval)
		defer t.Stop()
		for {
			select {
			case <-rec.stop:
				return
			case now := <-t.C:
				rec.TickAt(float64(now.UnixNano()) / 1e9)
			}
		}
	}()
}

// Stop terminates the Start goroutine and waits for it to exit.
// Idempotent; a recorder that was never started stops immediately.
func (rec *Recorder) Stop() {
	rec.stopOnce.Do(func() { close(rec.stop) })
	select {
	case <-rec.done:
	default:
		select {
		case <-rec.done:
		case <-time.After(time.Second):
		}
	}
}

// TickNow takes one snapshot stamped with the current wall clock.
func (rec *Recorder) TickNow() { rec.TickAt(float64(time.Now().UnixNano()) / 1e9) }

// TickAt takes one snapshot stamped with the given unix-seconds instant.
// Simulation replays call this with simulated time, so the recorded
// series carry time-of-day semantics regardless of replay speed.
// Timestamps must be non-decreasing across ticks; a regressing stamp is
// recorded as given (windowed queries then clamp to zero-width windows).
func (rec *Recorder) TickAt(unix float64) {
	// Refresh scrape-time gauges (runtime stats, shard occupancy) exactly
	// as an exposition render would, so recorded history and live scrapes
	// agree.
	rec.reg.runScrapeHooks()
	fams := rec.reg.snapshotFamilies()

	rec.mu.Lock()
	slot := rec.next
	rec.times[slot] = unix
	for _, f := range fams {
		for _, s := range f.snapshotSeries() {
			key := seriesKey{name: f.name, sig: s.labels.signature()}
			rs, ok := rec.series[key]
			if !ok {
				rs = &recSeries{
					name:      f.name,
					labels:    s.labels,
					kind:      f.kind,
					firstTick: rec.tick,
				}
				switch f.kind {
				case KindHistogram:
					rs.bounds = s.hist.Bounds()
					rs.counts = make([]uint64, rec.slots)
					rs.sums = make([]float64, rec.slots)
					rs.buckets = make([]uint64, rec.slots*(len(rs.bounds)+1))
				default:
					rs.vals = make([]float64, rec.slots)
				}
				rec.series[key] = rs
				rec.order = append(rec.order, rs)
			}
			switch f.kind {
			case KindCounter:
				rs.vals[slot] = float64(s.counter.Value())
			case KindGauge:
				if s.gaugeFn != nil {
					rs.vals[slot] = s.gaugeFn()
				} else if s.gauge != nil {
					rs.vals[slot] = s.gauge.Value()
				}
			case KindHistogram:
				h := s.hist
				rs.counts[slot] = h.Count()
				rs.sums[slot] = h.Sum()
				nb := len(rs.bounds) + 1
				cells := h.BucketCounts()
				cum := uint64(0)
				for i := 0; i < nb && i < len(cells); i++ {
					cum += cells[i]
					rs.buckets[slot*nb+i] = cum
				}
			}
		}
	}
	rec.next = (rec.next + 1) % rec.slots
	if rec.filled < rec.slots {
		rec.filled++
	}
	rec.tick++
	hooks := make([]func(), len(rec.onTick))
	copy(hooks, rec.onTick)
	rec.mu.Unlock()

	for _, fn := range hooks {
		fn()
	}
}

// chronSlots returns the valid slot indices oldest→newest. Caller holds
// at least the read lock.
func (rec *Recorder) chronSlots() []int {
	out := make([]int, 0, rec.filled)
	start := 0
	if rec.filled == rec.slots {
		start = rec.next // oldest slot once the ring has wrapped
	}
	for i := 0; i < rec.filled; i++ {
		out = append(out, (start+i)%rec.slots)
	}
	return out
}

// seriesValidFrom returns the chronological position (index into
// chronSlots) of rs's first valid slot, or -1 when none survive.
func (rec *Recorder) seriesValidFrom(rs *recSeries) int {
	oldestTick := rec.tick - uint64(rec.filled)
	if rs.firstTick <= oldestTick {
		return 0
	}
	p := int(rs.firstTick - oldestTick)
	if p >= rec.filled {
		return -1
	}
	return p
}

// --- windowed queries ---

// HistoryQuery selects and shapes a History response.
type HistoryQuery struct {
	// Name filters to one metric family ("" = all).
	Name string
	// Window is the rolling span rates and quantiles are computed over
	// (0 → DefaultHistoryWindow). Each point's value is the delta between
	// that snapshot and the newest snapshot at least Window older (or the
	// series' first snapshot when the window extends past retention).
	Window time.Duration
	// Since limits points to the trailing Since of history (0 = all).
	Since time.Duration
	// MaxPoints caps points per series by striding from the newest
	// backwards (0 = all retained points).
	MaxPoints int
}

// DefaultHistoryWindow is the rolling window used when a query does not
// specify one.
const DefaultHistoryWindow = 5 * time.Minute

// HistoryPoint is one snapshot instant of one series. Counter and
// histogram points carry the per-second rate over the query window;
// histogram points add the window's quantiles; gauge points carry the
// sampled value. Fields are pointers so JSON omits what a kind lacks.
type HistoryPoint struct {
	Unix  float64  `json:"t"`
	Value *float64 `json:"value,omitempty"`
	Rate  *float64 `json:"rate,omitempty"`
	Count *uint64  `json:"count,omitempty"`
	P50   *float64 `json:"p50,omitempty"`
	P95   *float64 `json:"p95,omitempty"`
	P99   *float64 `json:"p99,omitempty"`
}

// HistorySeries is one instrument's windowed history.
type HistorySeries struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Type   string            `json:"type"`
	Points []HistoryPoint    `json:"points"`
}

// HistoryDump is the History result — the /v1/metrics/history body and
// the xarsim/xarbench -history-out file format.
type HistoryDump struct {
	IntervalSeconds  float64         `json:"interval_seconds"`
	RetentionSeconds float64         `json:"retention_seconds"`
	WindowSeconds    float64         `json:"window_seconds"`
	Snapshots        int             `json:"snapshots"`
	Series           []HistorySeries `json:"series"`
}

// History renders the retained rings as windowed series.
func (rec *Recorder) History(q HistoryQuery) HistoryDump {
	if q.Window <= 0 {
		q.Window = DefaultHistoryWindow
	}
	rec.mu.RLock()
	defer rec.mu.RUnlock()

	dump := HistoryDump{
		IntervalSeconds:  rec.interval.Seconds(),
		RetentionSeconds: rec.Retention().Seconds(),
		WindowSeconds:    q.Window.Seconds(),
		Snapshots:        rec.filled,
	}
	if rec.filled == 0 {
		return dump
	}
	chron := rec.chronSlots()
	times := make([]float64, len(chron))
	for p, s := range chron {
		times[p] = rec.times[s]
	}
	latest := times[len(times)-1]

	// firstPoint is the chronological position of the first point the
	// query's Since bound admits.
	firstPoint := 0
	if q.Since > 0 {
		cut := latest - q.Since.Seconds()
		for firstPoint < len(times) && times[firstPoint] < cut {
			firstPoint++
		}
	}
	stride := 1
	if q.MaxPoints > 0 {
		if n := len(times) - firstPoint; n > q.MaxPoints {
			stride = (n + q.MaxPoints - 1) / q.MaxPoints
		}
	}

	win := q.Window.Seconds()
	for _, rs := range rec.order {
		if q.Name != "" && rs.name != q.Name {
			continue
		}
		validFrom := rec.seriesValidFrom(rs)
		if validFrom < 0 {
			continue
		}
		hs := HistorySeries{Name: rs.name, Type: rs.kind.String()}
		if len(rs.labels) > 0 {
			hs.Labels = make(map[string]string, len(rs.labels))
			for _, l := range rs.labels {
				hs.Labels[l.Name] = l.Value
			}
		}
		start := firstPoint
		if validFrom > start {
			start = validFrom
		}
		// Stride from the newest point backwards so the latest snapshot is
		// always included.
		for p := len(chron) - 1; p >= start; p -= stride {
			pt := rec.pointAt(rs, chron, times, p, validFrom, win)
			hs.Points = append(hs.Points, pt)
		}
		// Reverse into chronological order.
		for i, j := 0, len(hs.Points)-1; i < j; i, j = i+1, j-1 {
			hs.Points[i], hs.Points[j] = hs.Points[j], hs.Points[i]
		}
		dump.Series = append(dump.Series, hs)
	}
	return dump
}

// pointAt builds the windowed point for chronological position p: the
// delta between slot p and the newest slot at least win seconds older
// (clamped to the series' first valid slot). Caller holds the read lock.
func (rec *Recorder) pointAt(rs *recSeries, chron []int, times []float64, p, validFrom int, win float64) HistoryPoint {
	pt := HistoryPoint{Unix: times[p]}
	slot := chron[p]
	if rs.kind == KindGauge {
		v := rs.vals[slot]
		pt.Value = &v
		return pt
	}
	// Anchor: newest position ≤ p whose stamp is at least win older.
	anchor := -1
	for a := p - 1; a >= validFrom; a-- {
		if times[p]-times[a] >= win {
			anchor = a
			break
		}
		anchor = a // fall back to the oldest valid slot inside the window
	}
	if anchor < 0 {
		// First point of the series: no delta to compute.
		return pt
	}
	aSlot := chron[anchor]
	dt := times[p] - times[anchor]
	if dt <= 0 {
		return pt
	}
	switch rs.kind {
	case KindCounter:
		d := rs.vals[slot] - rs.vals[aSlot]
		if d < 0 {
			d = 0
		}
		rate := d / dt
		pt.Rate = &rate
	case KindHistogram:
		dc := rs.counts[slot] - rs.counts[aSlot]
		rate := float64(dc) / dt
		pt.Rate = &rate
		pt.Count = &dc
		if dc > 0 {
			nb := len(rs.bounds) + 1
			delta := make([]uint64, nb)
			for i := 0; i < nb; i++ {
				delta[i] = rs.buckets[slot*nb+i] - rs.buckets[aSlot*nb+i]
			}
			p50 := quantileFromCumBuckets(rs.bounds, delta, dc, 0.50)
			p95 := quantileFromCumBuckets(rs.bounds, delta, dc, 0.95)
			p99 := quantileFromCumBuckets(rs.bounds, delta, dc, 0.99)
			pt.P50, pt.P95, pt.P99 = &p50, &p95, &p99
		}
	}
	return pt
}

// FamilyDelta is the summed change of a metric family over a trailing
// window — the SLO engine's raw material.
type FamilyDelta struct {
	// Dt is the actual window span covered (≤ requested when retention or
	// series age clip it).
	Dt float64
	// Counter is the summed counter delta; for histograms it mirrors
	// Count so ratio objectives can reference either kind.
	Counter float64
	// Count/Sum/Buckets are histogram observation deltas; Buckets are
	// cumulative (le-style), aligned with Bounds plus a final +Inf cell.
	Count   uint64
	Sum     float64
	Bounds  []float64
	Buckets []uint64
}

// FamilyDelta sums the trailing-window change across every series of
// family name whose labels contain all of match. ok is false when fewer
// than two snapshots cover the family (no delta computable yet).
func (rec *Recorder) FamilyDelta(name string, match Labels, window time.Duration) (FamilyDelta, bool) {
	rec.mu.RLock()
	defer rec.mu.RUnlock()
	if rec.filled < 2 {
		return FamilyDelta{}, false
	}
	chron := rec.chronSlots()
	times := make([]float64, len(chron))
	for p, s := range chron {
		times[p] = rec.times[s]
	}
	p := len(chron) - 1
	var out FamilyDelta
	found := false
	for _, rs := range rec.order {
		if rs.name != name || !labelsContain(rs.labels, match) {
			continue
		}
		validFrom := rec.seriesValidFrom(rs)
		if validFrom < 0 || validFrom >= p {
			continue
		}
		anchor := validFrom
		for a := p - 1; a >= validFrom; a-- {
			anchor = a
			if times[p]-times[a] >= window.Seconds() {
				break
			}
		}
		slot, aSlot := chron[p], chron[anchor]
		dt := times[p] - times[anchor]
		if dt <= 0 {
			continue
		}
		if dt > out.Dt {
			out.Dt = dt
		}
		found = true
		switch rs.kind {
		case KindCounter, KindGauge:
			d := rs.vals[slot] - rs.vals[aSlot]
			if d < 0 {
				d = 0
			}
			out.Counter += d
		case KindHistogram:
			dc := rs.counts[slot] - rs.counts[aSlot]
			out.Count += dc
			out.Counter += float64(dc)
			out.Sum += rs.sums[slot] - rs.sums[aSlot]
			nb := len(rs.bounds) + 1
			if out.Buckets == nil {
				out.Bounds = rs.bounds
				out.Buckets = make([]uint64, nb)
			}
			if len(out.Buckets) == nb {
				for i := 0; i < nb; i++ {
					out.Buckets[i] += rs.buckets[slot*nb+i] - rs.buckets[aSlot*nb+i]
				}
			}
		}
	}
	return out, found
}

// Quantile estimates the q-quantile of a histogram FamilyDelta by the
// same in-bucket interpolation Histogram.Quantile uses. NaN when the
// window saw no observations.
func (d FamilyDelta) Quantile(q float64) float64 {
	if d.Count == 0 || len(d.Bounds) == 0 {
		return math.NaN()
	}
	return quantileFromCumBuckets(d.Bounds, d.Buckets, d.Count, q)
}

// FractionAbove returns the fraction of the window's observations
// strictly above the bucket bound nearest to threshold (thresholds snap
// to bucket bounds — choose SLO thresholds on the histogram's grid for
// exact accounting). Zero when the window saw no observations.
func (d FamilyDelta) FractionAbove(threshold float64) float64 {
	if d.Count == 0 || len(d.Bounds) == 0 {
		return 0
	}
	i := nearestBoundIndex(d.Bounds, threshold)
	good := d.Buckets[i] // cumulative ≤ bounds[i]
	bad := d.Count - good
	return float64(bad) / float64(d.Count)
}

// nearestBoundIndex returns the index of the bound closest to v (log
// proximity would over-engineer: linear distance picks the same bound
// for any threshold chosen within a bucket's half-width).
func nearestBoundIndex(bounds []float64, v float64) int {
	best, bestDist := 0, math.Inf(1)
	for i, b := range bounds {
		d := math.Abs(b - v)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// quantileFromCumBuckets interpolates the q-quantile from cumulative
// (le-style) bucket counts whose final cell is +Inf overflow.
func quantileFromCumBuckets(bounds []float64, cum []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	prev := uint64(0)
	for i := range cum {
		c := cum[i]
		if float64(c) >= rank && c > prev {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			frac := (rank - float64(prev)) / float64(c-prev)
			return lo + frac*(bounds[i]-lo)
		}
		prev = c
	}
	return bounds[len(bounds)-1]
}

// labelsContain reports whether ls includes every pair of match.
func labelsContain(ls, match Labels) bool {
	for _, m := range match {
		ok := false
		for _, l := range ls {
			if l.Name == m.Name && l.Value == m.Value {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
