package grid

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"xar/internal/geo"
)

func nycBox() geo.BBox {
	return geo.BBox{MinLat: 40.60, MinLng: -74.05, MaxLat: 40.90, MaxLng: -73.85}
}

func mustSystem(t *testing.T, cell float64) *System {
	t.Helper()
	s, err := NewSystem(nycBox(), cell)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemRejectsBadInput(t *testing.T) {
	if _, err := NewSystem(nycBox(), 0); err == nil {
		t.Fatal("cell size 0 must be rejected")
	}
	if _, err := NewSystem(nycBox(), -5); err == nil {
		t.Fatal("negative cell size must be rejected")
	}
	bad := geo.BBox{MinLat: 41, MinLng: -74, MaxLat: 40, MaxLng: -73}
	if _, err := NewSystem(bad, 100); err == nil {
		t.Fatal("inverted bbox must be rejected")
	}
}

func TestCellCountsMatchRegionSize(t *testing.T) {
	s := mustSystem(t, 100)
	// The box is ~0.30° of latitude (~33 km) and 0.20° of longitude
	// (~16.9 km at 40.75°): expect roughly 334 rows and 169 cols.
	if s.Rows() < 300 || s.Rows() > 360 {
		t.Fatalf("rows = %d, want ~334", s.Rows())
	}
	if s.Cols() < 150 || s.Cols() > 185 {
		t.Fatalf("cols = %d, want ~169", s.Cols())
	}
	if s.NumCells() != int64(s.Rows())*int64(s.Cols()) {
		t.Fatal("NumCells must equal rows*cols")
	}
}

func TestAtMapsEveryInteriorPointToValidCell(t *testing.T) {
	s := mustSystem(t, 100)
	f := func(a, b uint16) bool {
		p := geo.Point{
			Lat: 40.60 + float64(a)/65535*0.30,
			Lng: -74.05 + float64(b)/65535*0.20,
		}
		id := s.At(p)
		if !s.Contains(id) {
			return false
		}
		// The centroid must be within half a cell diagonal (~71 m) of p,
		// with slack for the cos-latitude approximation.
		return geo.Haversine(p, s.Centroid(id)) <= 75
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAtOutsideRegion(t *testing.T) {
	s := mustSystem(t, 100)
	outside := []geo.Point{
		{Lat: 40.50, Lng: -74.00},
		{Lat: 41.00, Lng: -74.00},
		{Lat: 40.70, Lng: -74.20},
		{Lat: 40.70, Lng: -73.70},
	}
	for _, p := range outside {
		if id := s.At(p); id != Invalid {
			t.Errorf("point %v outside region mapped to %v", p, id)
		}
	}
	if s.Contains(Invalid) {
		t.Fatal("Contains(Invalid) must be false")
	}
}

func TestCentroidRoundTrip(t *testing.T) {
	s := mustSystem(t, 100)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		p := geo.Point{
			Lat: 40.60 + r.Float64()*0.29,
			Lng: -74.05 + r.Float64()*0.19,
		}
		id := s.At(p)
		if got := s.At(s.Centroid(id)); got != id {
			t.Fatalf("At(Centroid(%v)) = %v", id, got)
		}
	}
}

func TestDeterministicMapping(t *testing.T) {
	s1 := mustSystem(t, 100)
	s2 := mustSystem(t, 100)
	p := geo.Point{Lat: 40.7580, Lng: -73.9855}
	if s1.At(p) != s2.At(p) {
		t.Fatal("identical systems must map identically")
	}
}

func TestNeighbors(t *testing.T) {
	s := mustSystem(t, 100)
	center := s.At(geo.Point{Lat: 40.75, Lng: -73.95})
	nbrs := s.Neighbors(center, nil)
	if len(nbrs) != 8 {
		t.Fatalf("interior cell must have 8 neighbors, got %d", len(nbrs))
	}
	seen := map[ID]bool{center: true}
	for _, n := range nbrs {
		if seen[n] {
			t.Fatalf("duplicate or self neighbor %v", n)
		}
		seen[n] = true
		if ChebyshevDist(center, n) != 1 {
			t.Fatalf("neighbor %v at Chebyshev distance %d", n, ChebyshevDist(center, n))
		}
	}
	// A corner cell has exactly 3 neighbors.
	corner := fromRC(0, 0)
	if got := len(s.Neighbors(corner, nil)); got != 3 {
		t.Fatalf("corner cell has %d neighbors, want 3", got)
	}
}

func TestRing(t *testing.T) {
	s := mustSystem(t, 100)
	center := s.At(geo.Point{Lat: 40.75, Lng: -73.95})

	if r0 := s.Ring(center, 0, nil); len(r0) != 1 || r0[0] != center {
		t.Fatalf("ring 0 = %v, want [center]", r0)
	}
	for k := int32(1); k <= 4; k++ {
		ring := s.Ring(center, k, nil)
		want := int(8 * k)
		if len(ring) != want {
			t.Fatalf("ring %d has %d cells, want %d", k, len(ring), want)
		}
		for _, id := range ring {
			if ChebyshevDist(center, id) != k {
				t.Fatalf("ring %d contains cell at distance %d", k, ChebyshevDist(center, id))
			}
		}
		// No duplicates.
		sorted := append([]ID(nil), ring...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := 1; i < len(sorted); i++ {
			if sorted[i] == sorted[i-1] {
				t.Fatalf("ring %d contains duplicate %v", k, sorted[i])
			}
		}
	}
}

func TestRingClipsAtBoundary(t *testing.T) {
	s := mustSystem(t, 100)
	corner := fromRC(0, 0)
	ring := s.Ring(corner, 1, nil)
	if len(ring) != 3 {
		t.Fatalf("corner ring 1 has %d cells, want 3", len(ring))
	}
}

func TestCellsWithin(t *testing.T) {
	s := mustSystem(t, 100)
	p := geo.Point{Lat: 40.75, Lng: -73.95}
	cells := s.CellsWithin(p, 300, nil)
	if len(cells) == 0 {
		t.Fatal("no cells within 300 m")
	}
	// Roughly pi*r^2 / cell area = pi*9 = ~28 cells.
	if len(cells) < 20 || len(cells) > 40 {
		t.Fatalf("got %d cells within 300 m, want ~28", len(cells))
	}
	for _, id := range cells {
		if d := geo.Haversine(p, s.Centroid(id)); d > 300 {
			t.Fatalf("cell %v centroid at %.1f m > 300 m", id, d)
		}
	}
	// All cells with centroid within radius must be present: check against
	// a brute-force scan over a superset ring.
	brute := 0
	for k := int32(0); k <= 5; k++ {
		for _, id := range s.Ring(s.At(p), k, nil) {
			if geo.Haversine(p, s.Centroid(id)) <= 300 {
				brute++
			}
		}
	}
	if brute != len(cells) {
		t.Fatalf("CellsWithin found %d, brute force found %d", len(cells), brute)
	}
}

func TestCellsWithinNegativeRadius(t *testing.T) {
	s := mustSystem(t, 100)
	if got := s.CellsWithin(geo.Point{Lat: 40.75, Lng: -73.95}, -1, nil); len(got) != 0 {
		t.Fatal("negative radius must yield no cells")
	}
}

func TestChebyshevDist(t *testing.T) {
	a := fromRC(10, 10)
	cases := []struct {
		b    ID
		want int32
	}{
		{fromRC(10, 10), 0},
		{fromRC(10, 11), 1},
		{fromRC(11, 11), 1},
		{fromRC(13, 10), 3},
		{fromRC(7, 14), 4},
	}
	for _, tc := range cases {
		if got := ChebyshevDist(a, tc.b); got != tc.want {
			t.Errorf("ChebyshevDist(%v,%v) = %d, want %d", a, tc.b, got, tc.want)
		}
	}
}

func TestIDString(t *testing.T) {
	if s := fromRC(3, 7).String(); s != "r3c7" {
		t.Fatalf("String() = %q", s)
	}
	if s := Invalid.String(); s != "grid(invalid)" {
		t.Fatalf("Invalid.String() = %q", s)
	}
}
