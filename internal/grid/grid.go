// Package grid implements the lowest tier of the XAR hierarchical region
// discretization: the implicit square grid (Definition 1 of the paper).
//
// A System maps any point location to a unique grid cell numerically —
// grids are never materialized, which is what lets the paper use very
// small (100 m) cells without storage cost. A cell is identified by its
// ID, and following the paper, all distances "from a grid" are measured
// from the cell's centroid.
package grid

import (
	"fmt"
	"math"

	"xar/internal/geo"
)

// ID identifies one grid cell within a System. IDs pack the (row, col)
// integer coordinates of the cell into a single comparable value so they
// can key maps and sort.
type ID int64

// Invalid is returned for points outside the system's region.
const Invalid ID = -1

const colBits = 24 // up to 16.7M columns; a planet at 100 m needs ~400k

// RC unpacks an ID into row and column.
func (id ID) RC() (row, col int32) {
	return int32(id >> colBits), int32(id & (1<<colBits - 1))
}

func fromRC(row, col int32) ID {
	return ID(int64(row)<<colBits | int64(col))
}

// String renders the ID as "r12c34" for diagnostics.
func (id ID) String() string {
	if id == Invalid {
		return "grid(invalid)"
	}
	r, c := id.RC()
	return fmt.Sprintf("r%dc%d", r, c)
}

// System is an implicit uniform grid over a bounding box. Cells are
// approximately CellSize × CellSize meters: latitude rows use the constant
// meters-per-degree-latitude, and columns use the meters-per-degree-
// longitude at the region's central latitude, so cells are square to
// within the cos(lat) variation across the box (negligible at city scale).
type System struct {
	origin   geo.Point // south-west corner
	cellSize float64   // meters
	dLat     float64   // degrees of latitude per row
	dLng     float64   // degrees of longitude per column
	rows     int32
	cols     int32
}

// NewSystem builds a grid system covering box with cells of cellSize
// meters (the paper uses 100 m). It returns an error for degenerate
// parameters rather than producing a system that silently maps everything
// to Invalid.
func NewSystem(box geo.BBox, cellSize float64) (*System, error) {
	if cellSize <= 0 || math.IsNaN(cellSize) {
		return nil, fmt.Errorf("grid: cell size must be positive, got %v", cellSize)
	}
	if box.MaxLat <= box.MinLat || box.MaxLng <= box.MinLng {
		return nil, fmt.Errorf("grid: degenerate bounding box %+v", box)
	}
	midLat := (box.MinLat + box.MaxLat) / 2
	s := &System{
		origin:   geo.Point{Lat: box.MinLat, Lng: box.MinLng},
		cellSize: cellSize,
		dLat:     cellSize / geo.MetersPerDegreeLat(),
		dLng:     cellSize / geo.MetersPerDegreeLng(midLat),
	}
	s.rows = int32(math.Ceil((box.MaxLat - box.MinLat) / s.dLat))
	s.cols = int32(math.Ceil((box.MaxLng - box.MinLng) / s.dLng))
	if s.rows < 1 {
		s.rows = 1
	}
	if s.cols < 1 {
		s.cols = 1
	}
	if int64(s.cols) >= 1<<colBits {
		return nil, fmt.Errorf("grid: region too wide for cell size %v (%d columns)", cellSize, s.cols)
	}
	return s, nil
}

// CellSize returns the configured cell edge length in meters.
func (s *System) CellSize() float64 { return s.cellSize }

// Rows and Cols report the grid dimensions.
func (s *System) Rows() int32 { return s.rows }

// Cols reports the number of grid columns.
func (s *System) Cols() int32 { return s.cols }

// NumCells returns the total number of (implicit) cells.
func (s *System) NumCells() int64 { return int64(s.rows) * int64(s.cols) }

// At maps a point to its unique grid cell, or Invalid if the point falls
// outside the covered region. Every in-region point maps to exactly one
// cell (many-to-one, per Definition 1).
func (s *System) At(p geo.Point) ID {
	row := int32(math.Floor((p.Lat - s.origin.Lat) / s.dLat))
	col := int32(math.Floor((p.Lng - s.origin.Lng) / s.dLng))
	if row < 0 || row >= s.rows || col < 0 || col >= s.cols {
		return Invalid
	}
	return fromRC(row, col)
}

// Centroid returns the center point of the cell. Per the paper, all grid
// distances are measured from the centroid.
func (s *System) Centroid(id ID) geo.Point {
	row, col := id.RC()
	return geo.Point{
		Lat: s.origin.Lat + (float64(row)+0.5)*s.dLat,
		Lng: s.origin.Lng + (float64(col)+0.5)*s.dLng,
	}
}

// Contains reports whether id addresses a cell inside this system.
func (s *System) Contains(id ID) bool {
	if id == Invalid {
		return false
	}
	row, col := id.RC()
	return row >= 0 && row < s.rows && col >= 0 && col < s.cols
}

// Neighbors appends to dst the IDs of the up-to-8 cells adjacent to id
// (Moore neighborhood), clipped to the region, and returns the extended
// slice. T-Share's expanding ring search is built on top of this.
func (s *System) Neighbors(id ID, dst []ID) []ID {
	row, col := id.RC()
	for dr := int32(-1); dr <= 1; dr++ {
		for dc := int32(-1); dc <= 1; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			r, c := row+dr, col+dc
			if r < 0 || r >= s.rows || c < 0 || c >= s.cols {
				continue
			}
			dst = append(dst, fromRC(r, c))
		}
	}
	return dst
}

// Ring appends to dst the cells at Chebyshev distance exactly k from id
// (the k-th square ring), clipped to the region. Ring(id, 0, dst) appends
// id itself. The T-Share baseline expands rings in increasing k order,
// which visits grids in (approximately) increasing distance.
func (s *System) Ring(id ID, k int32, dst []ID) []ID {
	row, col := id.RC()
	if k == 0 {
		if s.Contains(id) {
			dst = append(dst, id)
		}
		return dst
	}
	add := func(r, c int32) []ID {
		if r < 0 || r >= s.rows || c < 0 || c >= s.cols {
			return dst
		}
		return append(dst, fromRC(r, c))
	}
	for c := col - k; c <= col+k; c++ { // top and bottom edges
		dst = add(row-k, c)
		dst = add(row+k, c)
	}
	for r := row - k + 1; r <= row+k-1; r++ { // left and right edges
		dst = add(r, col-k)
		dst = add(r, col+k)
	}
	return dst
}

// CellsWithin appends to dst every cell whose centroid is within radius
// meters of p, and returns the extended slice. Used when precomputing
// walkable clusters for the grids around a landmark.
func (s *System) CellsWithin(p geo.Point, radius float64, dst []ID) []ID {
	if radius < 0 {
		return dst
	}
	kLat := int32(math.Ceil(radius/s.cellSize)) + 1
	center := s.At(p)
	var row, col int32
	if center == Invalid {
		// Project the point into the region's coordinate space anyway so
		// near-boundary points still see in-region cells.
		row = int32(math.Floor((p.Lat - s.origin.Lat) / s.dLat))
		col = int32(math.Floor((p.Lng - s.origin.Lng) / s.dLng))
	} else {
		row, col = center.RC()
	}
	for r := row - kLat; r <= row+kLat; r++ {
		if r < 0 || r >= s.rows {
			continue
		}
		for c := col - kLat; c <= col+kLat; c++ {
			if c < 0 || c >= s.cols {
				continue
			}
			id := fromRC(r, c)
			if geo.Haversine(p, s.Centroid(id)) <= radius {
				dst = append(dst, id)
			}
		}
	}
	return dst
}

// ChebyshevDist returns the Chebyshev (ring) distance between two cells,
// i.e. the number of rings separating them. It approximates driving
// proximity for the grid-based baseline.
func ChebyshevDist(a, b ID) int32 {
	ar, ac := a.RC()
	br, bc := b.RC()
	dr := ar - br
	if dr < 0 {
		dr = -dr
	}
	dc := ac - bc
	if dc < 0 {
		dc = -dc
	}
	if dr > dc {
		return dr
	}
	return dc
}
