package audit

import (
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"

	"xar/internal/journal"
	"xar/internal/telemetry"
)

// newJournalAuditor builds an auditor over a bare journal (no index view,
// no graph), so Audit exercises exactly the causality sweep.
func newJournalAuditor(j *journal.Journal, reg *telemetry.Registry) *Auditor {
	return New(Config{
		Target:   Target{Journal: j},
		Registry: reg,
		Logger:   slog.New(slog.NewTextHandler(discard{}, nil)),
	})
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestCausalityCleanSequence(t *testing.T) {
	j := journal.New(journal.Config{})
	j.Record(journal.Event{Type: journal.Created, Ride: 1})
	j.Record(journal.Event{Type: journal.Booked, Ride: 1})
	j.Record(journal.Event{Type: journal.SpliceCommitted, Ride: 1})
	j.Record(journal.Event{Type: journal.PickedUp, Ride: 1})
	j.Record(journal.Event{Type: journal.DroppedOff, Ride: 1})
	j.Record(journal.Event{Type: journal.Completed, Ride: 1})

	a := newJournalAuditor(j, nil)
	rep := a.Audit()
	if !rep.Clean() {
		t.Fatalf("clean lifecycle flagged: %+v", rep.Violations)
	}
	if rep.JournalRides != 1 {
		t.Fatalf("JournalRides = %d, want 1", rep.JournalRides)
	}
}

func TestCausalityBookedBeforeCreated(t *testing.T) {
	j := journal.New(journal.Config{})
	j.Record(journal.Event{Type: journal.Booked, Ride: 7, TraceID: "cafe"})
	j.Record(journal.Event{Type: journal.PickedUp, Ride: 7})

	rep := newJournalAuditor(j, nil).Audit()
	if len(rep.Violations) != 1 {
		t.Fatalf("got %d violations, want exactly 1 (flag once per ride): %+v",
			len(rep.Violations), rep.Violations)
	}
	v := rep.Violations[0]
	if v.Invariant != InvCausality || v.Ride != 7 {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(v.Detail, "before created") {
		t.Fatalf("detail = %q", v.Detail)
	}
	if v.TraceID != "cafe" {
		t.Fatalf("trace cross-link = %q, want cafe", v.TraceID)
	}
}

func TestCausalityDoubleTerminal(t *testing.T) {
	j := journal.New(journal.Config{})
	j.Record(journal.Event{Type: journal.Created, Ride: 3})
	j.Record(journal.Event{Type: journal.Completed, Ride: 3})
	j.Record(journal.Event{Type: journal.Completed, Ride: 3})

	rep := newJournalAuditor(j, nil).Audit()
	if len(rep.Violations) != 1 {
		t.Fatalf("got %d violations, want 1: %+v", len(rep.Violations), rep.Violations)
	}
	if v := rep.Violations[0]; v.Invariant != InvCausality || !strings.Contains(v.Detail, "double-terminal") {
		t.Fatalf("violation = %+v", v)
	}
}

func TestCausalitySearchCandidateIsExempt(t *testing.T) {
	// Sampled search_candidate events race the ride's lifecycle by design
	// and must never trip the before-created check.
	j := journal.New(journal.Config{})
	j.Record(journal.Event{Type: journal.SearchCandidate, Ride: 5})
	j.Record(journal.Event{Type: journal.Created, Ride: 5})

	if rep := newJournalAuditor(j, nil).Audit(); !rep.Clean() {
		t.Fatalf("search_candidate before created flagged: %+v", rep.Violations)
	}
}

func TestCausalityWraparoundExemption(t *testing.T) {
	// A long-lived ride whose created event was legitimately overwritten
	// must not be flagged; a wrapped ride CAN still double-terminal.
	j := journal.New(journal.Config{PerRideCapacity: 4})
	j.Record(journal.Event{Type: journal.Created, Ride: 9})
	for i := 0; i < 8; i++ {
		j.Record(journal.Event{Type: journal.BookConflictRetried, Ride: 9})
	}
	if rep := newJournalAuditor(j, nil).Audit(); !rep.Clean() {
		t.Fatalf("wrapped ring flagged: %+v", rep.Violations)
	}

	j.Record(journal.Event{Type: journal.Completed, Ride: 9})
	j.Record(journal.Event{Type: journal.Completed, Ride: 9})
	rep := newJournalAuditor(j, nil).Audit()
	if len(rep.Violations) != 1 || !strings.Contains(rep.Violations[0].Detail, "double-terminal") {
		t.Fatalf("wrapped double-terminal: %+v", rep.Violations)
	}
}

func TestCountersAndState(t *testing.T) {
	reg := telemetry.NewRegistry()
	j := journal.New(journal.Config{})
	j.Record(journal.Event{Type: journal.Booked, Ride: 11})
	a := newJournalAuditor(j, reg)

	a.Audit() // 1 violation
	a.Audit() // same violation found again (state persists in journal)

	sweeps, byInv := snapshotAudit(t, reg)
	if sweeps != 2 {
		t.Fatalf("xar_audit_sweeps_total = %v, want 2", sweeps)
	}
	// Eager registration: all four labels present even at zero.
	for _, inv := range Invariants() {
		if _, ok := byInv[inv]; !ok {
			t.Fatalf("missing series for invariant %q: %v", inv, byInv)
		}
	}
	if byInv[InvCausality] != 2 || byInv[InvCapacity] != 0 {
		t.Fatalf("violation counters = %v", byInv)
	}

	if got := a.TotalViolations(); got != 2 {
		t.Fatalf("TotalViolations = %d, want 2", got)
	}
	if rec := a.RecentViolatingRides(); len(rec) != 1 || rec[0] != 11 {
		t.Fatalf("RecentViolatingRides = %v, want [11] (deduped)", rec)
	}
	rep := a.LastReport()
	if len(rep.Violations) != 1 || rep.UnixSeconds == 0 || rep.DurationSeconds < 0 {
		t.Fatalf("LastReport = %+v", rep)
	}
	h := a.Health()
	if h.TotalViolations != 2 || h.LastViolations != 1 {
		t.Fatalf("Health = %+v", h)
	}
}

func snapshotAudit(t *testing.T, reg *telemetry.Registry) (sweeps float64, byInv map[string]float64) {
	t.Helper()
	byInv = map[string]float64{}
	for _, fam := range reg.Snapshot() {
		switch fam.Name {
		case "xar_audit_sweeps_total":
			sweeps = *fam.Series[0].Value
		case "xar_audit_violations_total":
			for _, s := range fam.Series {
				byInv[s.Labels["invariant"]] = *s.Value
			}
		}
	}
	return sweeps, byInv
}

func TestForceErrorCrossLink(t *testing.T) {
	// A violation whose ride has a journaled trace forces that trace into
	// the store's always-keep error ring.
	tracer := telemetry.NewTracer(telemetry.TracerConfig{SampleRate: 1})
	_, sp := tracer.StartSpan(context.Background(), "op.book")
	id := sp.TraceID()
	sp.End()

	j := journal.New(journal.Config{})
	j.Record(journal.Event{Type: journal.Booked, Ride: 21, TraceID: id.String()})

	a := New(Config{
		Target:     Target{Journal: j},
		TraceStore: tracer.Store(),
		Logger:     slog.New(slog.NewTextHandler(discard{}, nil)),
	})
	rep := a.Audit()
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %+v", rep.Violations)
	}
	if _, ok := tracer.Store().Get(id); !ok {
		t.Fatal("trace evaporated from the store")
	}
	if !tracer.Store().ForceError(id) {
		t.Fatal("trace should already be pinned in the error ring")
	}
}

func TestStartStop(t *testing.T) {
	j := journal.New(journal.Config{})
	j.Record(journal.Event{Type: journal.Created, Ride: 1})
	a := New(Config{
		Target:   Target{Journal: j},
		Interval: time.Millisecond,
		Logger:   slog.New(slog.NewTextHandler(discard{}, nil)),
	})
	a.Start()
	a.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for a.LastReport().UnixSeconds == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background sweeper never ran")
		}
		time.Sleep(time.Millisecond)
	}
	a.Stop()
	a.Stop() // no-op
	if !a.LastReport().Clean() {
		t.Fatalf("clean journal flagged: %+v", a.LastReport().Violations)
	}
}

func TestAuditNilTargets(t *testing.T) {
	// No view, no journal: a sweep still completes and reports empty.
	a := New(Config{Logger: slog.New(slog.NewTextHandler(discard{}, nil))})
	rep := a.Audit()
	if !rep.Clean() || rep.Shards != 0 || rep.RidesChecked != 0 {
		t.Fatalf("empty-target report = %+v", rep)
	}
}
