// Package audit is the online invariant auditor: continuous verification
// that the running engine still delivers what the paper proves. Where
// internal/core/property_test.go checks the Theorem 6 guarantee at test
// time, the auditor re-derives the same invariants from the *live* index
// on a background cadence (or synchronously via Audit), so a correctness
// regression in production surfaces as a counter, a log record and a
// paged health status instead of a silent bad match.
//
// Five invariant families are checked, each its own `invariant` label of
// xar_audit_violations_total:
//
//   - detour_bound: every ride's realized detour stays within the
//     driver's tolerance plus the paper's 4ε additive approximation per
//     accepted booking (Theorem 6's bicriteria bound).
//   - capacity: schedule feasibility — route/ETA arrays consistent, ETAs
//     monotone, via-points in route order, occupancy never exceeds the
//     vehicle's seats at any waypoint, seat accounting exact.
//   - index_consistency: each ride appears in exactly the cluster lists
//     its schedule implies, across all shards (the search index can only
//     miss or hallucinate matches if this breaks).
//   - causality: journal event sequences are well-formed — no lifecycle
//     event before the ride's created event, no double-terminal.
//   - funnel_accounting: every candidate a search examined was classified
//     into exactly one rejection-funnel stage (internal/quality) — a
//     classification gap means the match-quality telemetry under-reports
//     why searches fail.
//
// The auditor never takes more than one shard lock at a time (it audits
// per-shard snapshots captured under single read-lock holds), so it can
// run at any cadence against a loaded engine.
package audit

import (
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"xar/internal/index"
	"xar/internal/journal"
	"xar/internal/quality"
	"xar/internal/roadnet"
	"xar/internal/telemetry"
)

// The invariant labels of xar_audit_violations_total.
const (
	InvDetourBound      = "detour_bound"
	InvCapacity         = "capacity"
	InvIndexConsistency = "index_consistency"
	InvCausality        = "causality"
	InvFunnelAccounting = "funnel_accounting"
)

// Invariants returns the fixed label set (counter registration, tests).
func Invariants() []string {
	return []string{InvDetourBound, InvCapacity, InvIndexConsistency, InvCausality, InvFunnelAccounting}
}

// Violation is one confirmed invariant breach.
type Violation struct {
	Invariant string `json:"invariant"`
	Ride      int64  `json:"ride_id,omitempty"`
	Shard     int    `json:"shard"`
	Detail    string `json:"detail"`
	// TraceID cross-links the ride's most recent journaled trace, when
	// the journal has one — the span tree of the operation that most
	// recently touched the offending ride.
	TraceID string `json:"trace_id,omitempty"`
}

// Report is the outcome of one sweep.
type Report struct {
	UnixSeconds     float64     `json:"unix"`
	DurationSeconds float64     `json:"duration_seconds"`
	Shards          int         `json:"shards"`
	RidesChecked    int         `json:"rides_checked"`
	JournalRides    int         `json:"journal_rides_checked"`
	Violations      []Violation `json:"violations"`
}

// Clean reports whether the sweep found no violations.
func (r Report) Clean() bool { return len(r.Violations) == 0 }

// Target is what the auditor inspects. View is required; Graph enables
// the detour-bound re-derivation; Journal enables the causality sweep
// and trace cross-links.
type Target struct {
	View    index.View
	Graph   *roadnet.Graph
	Epsilon float64
	Journal *journal.Journal
	// Quality enables the funnel_accounting sweep (the engine's quality
	// collector, core.Config.Quality).
	Quality *quality.Collector
}

// Defaults.
const (
	DefaultInterval  = 30 * time.Second
	DefaultTolerance = 1e-3 // meters: float64 path-summation slack
	RecentViolators  = 10   // violating-ride IDs retained for the debug bundle
)

// Config builds an Auditor.
type Config struct {
	Target Target
	// Interval is the background sweep cadence for Start (0 → 30s).
	Interval time.Duration
	// Registry, when non-nil, registers xar_audit_sweeps_total and
	// xar_audit_violations_total{invariant} (all four labels eagerly, so
	// a clean process still exposes the series at zero).
	Registry *telemetry.Registry
	// Logger receives one structured record per violation (nil →
	// slog.Default()).
	Logger *slog.Logger
	// TraceStore, when non-nil, gets the offending ride's most recent
	// trace forced into its always-keep error ring.
	TraceStore *telemetry.TraceStore
	// Tolerance is the metric slack for float comparisons (0 → 1e-3 m).
	Tolerance float64
}

// Auditor sweeps the target and accounts violations. Safe for concurrent
// use; Audit may be called while the background sweeper runs.
type Auditor struct {
	t      Target
	ival   time.Duration
	tol    float64
	logger *slog.Logger
	store  *telemetry.TraceStore

	sweeps     *telemetry.Counter
	violations map[string]*telemetry.Counter

	mu     sync.Mutex
	last   Report
	total  uint64
	recent []int64 // violating ride IDs, newest first, deduped
	stop   chan struct{}
	done   chan struct{}
}

// New builds an auditor over cfg.Target.
func New(cfg Config) *Auditor {
	a := &Auditor{
		t:      cfg.Target,
		ival:   cfg.Interval,
		tol:    cfg.Tolerance,
		logger: cfg.Logger,
		store:  cfg.TraceStore,
	}
	if a.ival <= 0 {
		a.ival = DefaultInterval
	}
	if a.tol <= 0 {
		a.tol = DefaultTolerance
	}
	if a.logger == nil {
		a.logger = slog.Default()
	}
	if cfg.Registry != nil {
		a.sweeps = cfg.Registry.Counter("xar_audit_sweeps_total",
			"Completed audit sweeps (background and synchronous).", nil)
		a.violations = make(map[string]*telemetry.Counter, 4)
		for _, inv := range Invariants() {
			a.violations[inv] = cfg.Registry.Counter("xar_audit_violations_total",
				"Invariant violations found by the online auditor, by invariant family.",
				telemetry.L("invariant", inv))
		}
	}
	return a
}

// Interval returns the background sweep cadence.
func (a *Auditor) Interval() time.Duration { return a.ival }

// Audit runs one synchronous sweep over every shard plus the journal and
// returns the report. Violations are counted, logged, cross-linked and
// folded into the auditor's cumulative state exactly as background
// sweeps are.
func (a *Auditor) Audit() Report {
	start := time.Now()
	rep := Report{UnixSeconds: float64(start.UnixNano()) / 1e9}
	if v := a.t.View; v != (index.View{}) {
		rep.Shards = v.NumShards()
		for i := 0; i < rep.Shards; i++ {
			rides, incs := v.AuditShard(i)
			rep.RidesChecked += len(rides)
			for _, r := range rides {
				a.checkRide(r, i, &rep)
			}
			for _, inc := range incs {
				cl := ""
				if inc.Cluster >= 0 {
					cl = fmt.Sprintf("cluster %d: ", inc.Cluster)
				}
				rep.Violations = append(rep.Violations, Violation{
					Invariant: InvIndexConsistency, Ride: int64(inc.Ride), Shard: i,
					Detail: cl + inc.Detail,
				})
			}
		}
	}
	a.checkCausality(&rep)
	a.checkFunnelAccounting(&rep)
	rep.DurationSeconds = time.Since(start).Seconds()
	a.finish(&rep)
	return rep
}

// checkFunnelAccounting verifies the quality collector's candidate
// accounting: examined == sum of funnel-stage classifications. The
// collector orders its writes stages-first, so under a stable read of
// the examined counter the stage sum can only legitimately run ahead
// (an in-flight search added its stages but not yet its total); a
// *deficit* under a stable read proves a candidate was examined without
// being classified. Concurrent searches make individual reads unstable,
// so the check retries a few times and abstains if the collector never
// quiesces — an online auditor must not flake under load.
func (a *Auditor) checkFunnelAccounting(rep *Report) {
	qc := a.t.Quality
	if qc == nil {
		return
	}
	for attempt := 0; attempt < 4; attempt++ {
		examined, classified, stable := qc.AccountingGap()
		if !stable {
			time.Sleep(time.Millisecond)
			continue
		}
		if classified < examined {
			rep.Violations = append(rep.Violations, Violation{
				Invariant: InvFunnelAccounting, Shard: -1,
				Detail: fmt.Sprintf("funnel classified %d of %d examined candidates (gap %d)",
					classified, examined, examined-classified),
			})
		}
		return
	}
}

// checkRide verifies the detour_bound and capacity invariants on one
// ride clone (no locks held).
func (a *Auditor) checkRide(r *index.Ride, shard int, rep *Report) {
	add := func(inv, detail string) {
		rep.Violations = append(rep.Violations, Violation{
			Invariant: inv, Ride: int64(r.ID), Shard: shard, Detail: detail,
		})
	}

	// Schedule shape: the route and its ETAs must agree before anything
	// else is derivable.
	if len(r.Route) < 2 {
		add(InvCapacity, fmt.Sprintf("route has %d nodes, want ≥ 2", len(r.Route)))
		return
	}
	if len(r.RouteETA) != len(r.Route) {
		add(InvCapacity, fmt.Sprintf("ETA array length %d != route length %d", len(r.RouteETA), len(r.Route)))
		return
	}
	for i := 1; i < len(r.RouteETA); i++ {
		if r.RouteETA[i] < r.RouteETA[i-1]-1e-9 {
			add(InvCapacity, fmt.Sprintf("route ETAs not monotone at index %d (%.3f after %.3f)", i, r.RouteETA[i], r.RouteETA[i-1]))
			break
		}
	}

	// Via-point walk: route order, ETA agreement, occupancy and seat
	// accounting. Occupancy starts at 1 — the driver holds a seat.
	occ, maxOcc, pickups := 1, 1, 0
	lastIdx := -1
	viaOK := true
	for vi, v := range r.Via {
		if v.RouteIdx < 0 || v.RouteIdx >= len(r.Route) {
			add(InvCapacity, fmt.Sprintf("via %d (%s) route index %d out of range [0,%d)", vi, v.Kind, v.RouteIdx, len(r.Route)))
			viaOK = false
			continue
		}
		if v.RouteIdx < lastIdx {
			add(InvCapacity, fmt.Sprintf("via %d (%s) out of route order (index %d after %d)", vi, v.Kind, v.RouteIdx, lastIdx))
			viaOK = false
		}
		lastIdx = v.RouteIdx
		if math.Abs(v.ETA-r.RouteETA[v.RouteIdx]) > 1e-6 {
			add(InvCapacity, fmt.Sprintf("via %d (%s) ETA %.3f disagrees with route ETA %.3f", vi, v.Kind, v.ETA, r.RouteETA[v.RouteIdx]))
		}
		switch v.Kind {
		case index.ViaPickup:
			occ++
			pickups++
			if occ > maxOcc {
				maxOcc = occ
			}
		case index.ViaDropoff:
			occ--
		}
	}
	if maxOcc > r.SeatsTotal {
		add(InvCapacity, fmt.Sprintf("occupancy reaches %d riders but the vehicle seats %d", maxOcc, r.SeatsTotal))
	}
	if viaOK && occ < 1 {
		add(InvCapacity, fmt.Sprintf("drop-off without matching pickup (final occupancy %d)", occ))
	}
	if r.SeatsAvail < 0 || r.SeatsAvail != r.SeatsTotal-1-pickups {
		add(InvCapacity, fmt.Sprintf("seat accounting: %d available != %d total - driver - %d pickups", r.SeatsAvail, r.SeatsTotal, pickups))
	}

	// Detour bound (Theorem 6): realized detour = current route length
	// minus the driver's solo route, bounded by the driver's tolerance
	// plus 4ε per accepted booking.
	if a.t.Graph == nil {
		return
	}
	pathLen, err := a.t.Graph.PathLength(r.Route)
	if err != nil {
		add(InvCapacity, fmt.Sprintf("route not connected: %v", err))
		return
	}
	spent := pathLen - r.BaseRouteLen
	bound := r.DetourLimitInitial + 4*a.t.Epsilon*float64(pickups) + a.tol
	if spent > bound {
		add(InvDetourBound, fmt.Sprintf("realized detour %.1f m exceeds tolerance %.1f m + 4ε×%d bookings = %.1f m",
			spent, r.DetourLimitInitial, pickups, bound))
	}
	// Budget accounting: the charged budget can never exceed the detour
	// actually realized (clamping only ever under-charges).
	if charged := r.DetourLimitInitial - r.DetourLimit; charged > spent+a.tol {
		add(InvDetourBound, fmt.Sprintf("budget accounting: %.1f m charged but only %.1f m of detour realized", charged, spent))
	}
}

// checkCausality replays each ride's journaled event sequence. Rides
// whose rings wrapped are exempt from before-created findings (the
// created event may have been legitimately overwritten); a terminal
// event is the last thing a ride records, so double-terminal detection
// survives wraparound.
func (a *Auditor) checkCausality(rep *Report) {
	if a.t.Journal == nil {
		return
	}
	a.t.Journal.PerRide(func(ride int64, evs []journal.Event, wrapped bool) bool {
		rep.JournalRides++
		created := wrapped
		terminals := 0
		flagged := false
		for _, ev := range evs {
			switch ev.Type {
			case journal.Created:
				created = true
			case journal.SearchCandidate, journal.MatchRejected:
				// Advisory and sampled: candidate/rejection events race
				// the ride's own lifecycle by design, so they prove
				// nothing about it.
			case journal.Completed:
				terminals++
				if terminals == 2 {
					rep.Violations = append(rep.Violations, Violation{
						Invariant: InvCausality, Ride: ride, Shard: -1, TraceID: ev.TraceID,
						Detail: "double-terminal: more than one completed event",
					})
				}
				fallthrough
			default:
				if !created && !flagged {
					flagged = true
					rep.Violations = append(rep.Violations, Violation{
						Invariant: InvCausality, Ride: ride, Shard: -1, TraceID: ev.TraceID,
						Detail: fmt.Sprintf("%s event before created", ev.Type),
					})
				}
			}
		}
		return true
	})
}

// finish accounts a completed sweep: counters, structured logs, trace
// cross-links, the recent-violators ring and the last-report slot.
func (a *Auditor) finish(rep *Report) {
	if a.sweeps != nil {
		a.sweeps.Inc()
	}
	for i := range rep.Violations {
		vio := &rep.Violations[i]
		if vio.TraceID == "" && vio.Ride != 0 {
			vio.TraceID = a.t.Journal.LastTraceID(vio.Ride)
		}
		if c := a.violations[vio.Invariant]; c != nil {
			c.Inc()
		}
		a.logger.Error("audit: invariant violation",
			"invariant", vio.Invariant, "ride", vio.Ride, "shard", vio.Shard,
			"detail", vio.Detail, "trace_id", vio.TraceID)
		if a.store != nil && vio.TraceID != "" {
			if id, ok := telemetry.ParseTraceID(vio.TraceID); ok {
				a.store.ForceError(id)
			}
		}
	}
	a.mu.Lock()
	a.last = *rep
	a.total += uint64(len(rep.Violations))
	for i := len(rep.Violations) - 1; i >= 0; i-- { // newest-first ordering
		id := rep.Violations[i].Ride
		if id == 0 {
			continue
		}
		dup := false
		for _, have := range a.recent {
			if have == id {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		a.recent = append([]int64{id}, a.recent...)
		if len(a.recent) > RecentViolators {
			a.recent = a.recent[:RecentViolators]
		}
	}
	a.mu.Unlock()
}

// Start launches the background sweeper at the configured interval.
// Idempotent while running.
func (a *Auditor) Start() {
	a.mu.Lock()
	if a.stop != nil {
		a.mu.Unlock()
		return
	}
	stop, done := make(chan struct{}), make(chan struct{})
	a.stop, a.done = stop, done
	a.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(a.ival)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				a.Audit()
			}
		}
	}()
}

// Stop halts the background sweeper and waits for it to exit. No-op when
// not running.
func (a *Auditor) Stop() {
	a.mu.Lock()
	stop, done := a.stop, a.done
	a.stop, a.done = nil, nil
	a.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// LastReport returns a copy of the most recent sweep's report.
func (a *Auditor) LastReport() Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	rep := a.last
	rep.Violations = append([]Violation(nil), rep.Violations...)
	return rep
}

// TotalViolations returns the cumulative violation count across sweeps.
func (a *Auditor) TotalViolations() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// RecentViolatingRides returns the ≤10 most recent distinct violating
// ride IDs, newest first — the debug bundle pulls these rides' journal
// timelines.
func (a *Auditor) RecentViolatingRides() []int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]int64(nil), a.recent...)
}

// Health is the audit block of /v1/healthz.
type Health struct {
	TotalViolations  uint64  `json:"total_violations"`
	LastSweepUnix    float64 `json:"last_sweep_unix"`
	LastRidesChecked int     `json:"last_rides_checked"`
	LastViolations   int     `json:"last_violations"`
}

// Health summarizes the auditor's state for the health endpoint.
func (a *Auditor) Health() Health {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Health{
		TotalViolations:  a.total,
		LastSweepUnix:    a.last.UnixSeconds,
		LastRidesChecked: a.last.RidesChecked,
		LastViolations:   len(a.last.Violations),
	}
}
