package load

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"xar/internal/core"
	"xar/internal/experiments"
	"xar/internal/workload"
)

// newLoadEnv builds a small world and an engine pre-seeded with ride
// offers, returning the engine target and the request-trip stream.
func newLoadEnv(t testing.TB) (*EngineTarget, []workload.Trip, *core.Engine) {
	t.Helper()
	sc := experiments.DefaultScale()
	sc.CityRows, sc.CityCols = 16, 10
	sc.Requests = 600
	w, err := experiments.BuildWorld(sc)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := w.NewXAREngine()
	if err != nil {
		t.Fatal(err)
	}
	target := NewEngineTarget(eng)
	offers, requests := w.SplitOffersRequests()
	for _, o := range offers {
		target.Do(OpCreate, o)
	}
	if eng.NumRides() == 0 {
		t.Fatal("no offers seeded")
	}
	return target, requests, eng
}

func TestRunOpenLoopEngine(t *testing.T) {
	target, trips, _ := newLoadEnv(t)
	rep, err := Run(context.Background(), target, Config{
		Schedule: Constant(2000, 500),
		Trips:    trips,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" {
		t.Fatalf("mode %q, want open", rep.Mode)
	}
	if rep.Ops != 500 {
		t.Fatalf("ops %d, want 500", rep.Ops)
	}
	if rep.Errors != 0 {
		t.Fatalf("harness errors: %d (per-op %+v)", rep.Errors, rep.PerOp)
	}
	if rep.Searches == 0 || rep.MatchRate <= 0 || rep.MatchRate > 1 {
		t.Fatalf("searches %d, match rate %v", rep.Searches, rep.MatchRate)
	}
	if rep.OfferedRate != 2000 || rep.AchievedRate <= 0 {
		t.Fatalf("rates: offered %v achieved %v", rep.OfferedRate, rep.AchievedRate)
	}
	var perOpTotal int64
	for _, o := range rep.PerOp {
		perOpTotal += o.Count
	}
	if perOpTotal != rep.Ops {
		t.Fatalf("per-op counts sum %d ≠ ops %d", perOpTotal, rep.Ops)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P999 < rep.Latency.P50 {
		t.Fatalf("quantiles not ordered: %+v", rep.Latency)
	}
}

func TestRunRespectsContext(t *testing.T) {
	target, trips, _ := newLoadEnv(t)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	// 10 ops/s × 1000 arrivals = 100 s schedule; cancellation must cut it
	// short and report the partial run with ctx's error.
	rep, err := Run(ctx, target, Config{
		Schedule: Constant(10, 1000),
		Trips:    trips,
		Seed:     2,
	})
	if err == nil {
		t.Fatal("expected context error")
	}
	if rep == nil || rep.Ops >= 1000 || rep.Ops == 0 {
		t.Fatalf("partial report ops = %v", rep)
	}
}

func TestRunMaxInflightCountsQueueing(t *testing.T) {
	// A serial target that takes ~1 ms per op, driven at 2000/s with one
	// permitted in-flight op: the open loop cannot keep up, and the
	// backlog must appear in the recorded latency (measured from the
	// intended send), growing across the run.
	slow := targetFunc(func(op Op, tr workload.Trip) Result {
		time.Sleep(time.Millisecond)
		return Result{Searched: true}
	})
	rep, err := Run(context.Background(), slow, Config{
		Schedule:    Constant(2000, 200),
		Trips:       oneTrip(),
		MaxInflight: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 200 ops × 1 ms serial ≈ 200 ms of work offered in 100 ms: the last
	// arrivals queue for ~half the run. p99 must be far above the 1 ms
	// service time.
	if rep.Latency.P99 < 20 {
		t.Fatalf("p99 %.2f ms does not reflect queueing behind MaxInflight", rep.Latency.P99)
	}
}

// targetFunc adapts a function to Target.
type targetFunc func(Op, workload.Trip) Result

func (f targetFunc) Do(op Op, t workload.Trip) Result { return f(op, t) }

func oneTrip() []workload.Trip {
	return []workload.Trip{{ID: 0, RequestTime: 0}}
}

// stallTarget answers instantly except during one wall-clock window,
// when every call blocks until the window closes — an injected server
// stall (GC pause, lock convoy, failover).
type stallTarget struct {
	start time.Time
	from  time.Duration
	dur   time.Duration
	hits  atomic.Int64
}

func (s *stallTarget) Do(op Op, t workload.Trip) Result {
	now := time.Now()
	stallStart := s.start.Add(s.from)
	stallEnd := stallStart.Add(s.dur)
	if now.After(stallStart) && now.Before(stallEnd) {
		s.hits.Add(1)
		time.Sleep(time.Until(stallEnd))
	}
	return Result{Searched: true, Matched: true}
}

// TestCoordinatedOmission is the harness's reason to exist: the same
// schedule, the same injected 300 ms stall — the open loop charges the
// stall to every arrival scheduled during it (p99 shows the stall),
// while the closed-loop control arm only had a handful of workers
// in-flight, stops generating, and reports a fantasy p99.
func TestCoordinatedOmission(t *testing.T) {
	const (
		rate  = 1000.0
		n     = 1000 // 1 s of schedule
		from  = 300 * time.Millisecond
		stall = 300 * time.Millisecond
	)

	runArm := func(closed bool) *Report {
		target := &stallTarget{start: time.Now(), from: from, dur: stall}
		rep, err := Run(context.Background(), target, Config{
			Schedule:   Constant(rate, n),
			Trips:      oneTrip(),
			ClosedLoop: closed,
			Workers:    4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if target.hits.Load() == 0 {
			t.Fatal("stall window saw no calls; timing assumption broken")
		}
		return rep
	}

	open := runArm(false)
	closed := runArm(true)

	// ~30% of open-loop arrivals land in the stall window and wait up to
	// 300 ms measured from their intended send: p99 ≈ the stall length.
	stallMS := stall.Seconds() * 1e3
	if open.Latency.P99 < stallMS/3 {
		t.Errorf("open-loop p99 %.1f ms does not reflect the %v stall", open.Latency.P99, stall)
	}
	// The closed loop had at most Workers=4 ops in flight during the
	// stall: 4 slow samples out of 1000 sit beyond the 99th percentile's
	// reach, so the control arm reports a clean p99 — the lie this
	// package exists to expose.
	if closed.Latency.P99 > stallMS/4 {
		t.Errorf("closed-loop p99 %.1f ms; expected coordinated omission to hide the stall (< %.1f ms)",
			closed.Latency.P99, stallMS/4)
	}
	if closed.Mode != "closed" || open.Mode != "open" {
		t.Fatalf("modes: open=%q closed=%q", open.Mode, closed.Mode)
	}
	// Both arms completed the same schedule; the difference is purely in
	// what they admit about it.
	if open.Ops != n || closed.Ops != n {
		t.Fatalf("ops: open %d closed %d, want %d", open.Ops, closed.Ops, n)
	}
}

func TestRunSweepFrontier(t *testing.T) {
	target, trips, eng := newLoadEnv(t)
	var observed int
	f, err := RunSweep(context.Background(), target, SweepConfig{
		Rates:      []float64{2000, 500}, // deliberately unsorted
		OpsPerStep: 200,
		Trips:      trips,
		Seed:       3,
		WarmupOps:  50,
		Observe: func(step *Step, rep *Report) {
			observed++
			step.Memory = MeasureEngine(eng)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != FrontierSchema {
		t.Fatalf("schema %q", f.Schema)
	}
	if len(f.Steps) != 2 || observed != 2 {
		t.Fatalf("steps %d observed %d, want 2", len(f.Steps), observed)
	}
	if f.Steps[0].OfferedRate != 500 || f.Steps[1].OfferedRate != 2000 {
		t.Fatalf("rates not sorted ascending: %v, %v", f.Steps[0].OfferedRate, f.Steps[1].OfferedRate)
	}
	for i, s := range f.Steps {
		if s.Ops != 200 || s.Errors != 0 {
			t.Fatalf("step %d: ops %d errors %d", i, s.Ops, s.Errors)
		}
		if s.Memory == nil || s.Memory.IndexBytes == 0 || s.Memory.ActiveRides == 0 {
			t.Fatalf("step %d memory not captured: %+v", i, s.Memory)
		}
		if s.Memory.RidesPerGB <= 0 {
			t.Fatalf("step %d rides/GB = %v", i, s.Memory.RidesPerGB)
		}
	}

	// The gate passes with generous budgets and trips on each violation.
	if v := f.Check(Gate{MaxP99MS: 1e6, MinMatchRate: 0, MaxErrors: 0}); len(v) != 0 {
		t.Fatalf("gate violations on healthy frontier: %v", v)
	}
	if v := f.Check(Gate{MaxP99MS: 1e-9}); len(v) == 0 {
		t.Fatal("impossible p99 budget not flagged")
	}
	if v := f.Check(Gate{MinMatchRate: 1.1}); len(v) == 0 {
		t.Fatal("impossible match-rate floor not flagged")
	}
}
