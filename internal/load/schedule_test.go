package load

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestConstantSchedule(t *testing.T) {
	s := Constant(100, 50)
	if s.Len() != 50 {
		t.Fatalf("Len = %d, want 50", s.Len())
	}
	if s.OfferedRate() != 100 {
		t.Fatalf("OfferedRate = %v, want 100", s.OfferedRate())
	}
	if s.At(0) != 0 {
		t.Fatalf("first arrival at %v, want 0", s.At(0))
	}
	for i := 1; i < s.Len(); i++ {
		gap := s.At(i) - s.At(i-1)
		if want := 10 * time.Millisecond; gap != want {
			t.Fatalf("gap %d = %v, want %v", i, gap, want)
		}
	}
}

func TestPoissonSchedule(t *testing.T) {
	const rate, n = 200.0, 4000
	s := Poisson(rate, n, 7)
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	// Monotone non-decreasing, strictly positive first gap almost surely.
	for i := 1; i < n; i++ {
		if s.At(i) < s.At(i-1) {
			t.Fatalf("arrivals not monotone at %d: %v < %v", i, s.At(i), s.At(i-1))
		}
	}
	// Mean inter-arrival ≈ 1/rate (law of large numbers; 4000 samples
	// put the sample mean within a few percent with overwhelming odds).
	mean := s.At(n-1).Seconds() / float64(n)
	if math.Abs(mean-1/rate) > 0.15/rate {
		t.Fatalf("mean gap %.6fs, want ≈ %.6fs", mean, 1/rate)
	}
	// Deterministic per seed; different seed ⇒ different draw.
	same := Poisson(rate, n, 7)
	diff := Poisson(rate, n, 8)
	if s.At(n-1) != same.At(n-1) {
		t.Fatal("same seed produced different schedules")
	}
	if s.At(n-1) == diff.At(n-1) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRampSchedule(t *testing.T) {
	s := Ramp([]RampStep{
		{Rate: 10, Duration: time.Second},
		{Rate: 100, Duration: time.Second},
	})
	if s.Len() != 110 {
		t.Fatalf("Len = %d, want 110", s.Len())
	}
	// Time-weighted mean rate over 2 seconds of 110 arrivals.
	if got := s.OfferedRate(); math.Abs(got-55) > 1e-9 {
		t.Fatalf("OfferedRate = %v, want 55", got)
	}
	for i := 1; i < s.Len(); i++ {
		if s.At(i) < s.At(i-1) {
			t.Fatalf("ramp arrivals not monotone at %d", i)
		}
	}
	// The second plateau starts after the first's duration.
	if s.At(10) < time.Second {
		t.Fatalf("plateau 2 first arrival at %v, want ≥ 1s", s.At(10))
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("search=0.6, book=0.3,cancel=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Search != 0.6 || m.Book != 0.3 || m.Cancel != 0.1 || m.Create != 0 || m.Track != 0 {
		t.Fatalf("mix = %+v", m)
	}
	for _, bad := range []string{"", "search", "search=-1", "teleport=0.5", "search=abc"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestMixPickProportions(t *testing.T) {
	m := Mix{Search: 3, Book: 1}
	rng := rand.New(rand.NewSource(1))
	counts := map[Op]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[m.pick(rng)]++
	}
	if counts[OpCreate]+counts[OpTrack]+counts[OpCancel] != 0 {
		t.Fatalf("zero-weight ops drawn: %v", counts)
	}
	frac := float64(counts[OpSearch]) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("search fraction %.3f, want ≈ 0.75", frac)
	}
}
