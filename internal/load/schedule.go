// Package load is the open-loop, coordinated-omission-safe load
// harness. Every benchmark the repo had before this package is
// closed-loop: the next operation is issued only after the previous one
// returns, so when the server stalls, the generator politely stops
// generating — queueing delay that real, independent riders would have
// experienced is silently omitted from the recorded latencies
// (Gil Tene's "coordinated omission"). This package fixes that by
// construction:
//
//   - Arrivals follow a fixed schedule (constant, Poisson, or stepped
//     ramp) computed before the run starts. The schedule never reacts
//     to server behavior — that is what "open loop" means.
//   - Latency is measured from each operation's *intended* send time,
//     not from when the generator actually got around to sending it. A
//     stalled server therefore shows up as the queueing delay it
//     actually caused.
//   - A closed-loop mode exists purely as the control arm: tests
//     demonstrate that it hides an injected stall while the open-loop
//     run exposes it.
//
// The runner drives either the engine in-process (EngineTarget) or the
// HTTP server (HTTPTarget) with a configurable search/book/create/
// track/cancel mix drawn from an internal/workload trip stream, records
// into the repo's standard log-bucket telemetry.Histogram, and Sweep
// walks a rate ladder to produce the throughput/latency/memory frontier
// recorded in BENCH_scale.json.
package load

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Schedule is a precomputed open-loop arrival plan: Len() intended send
// offsets from run start, non-decreasing, independent of how the system
// under test behaves.
type Schedule interface {
	// Len is the number of arrivals.
	Len() int
	// At returns the i-th intended send offset from run start.
	At(i int) time.Duration
	// OfferedRate is the nominal offered rate in ops/second.
	OfferedRate() float64
}

// offsets is the shared Schedule backing: a sorted slice of arrival
// offsets.
type offsets struct {
	ts   []time.Duration
	rate float64
}

func (o offsets) Len() int               { return len(o.ts) }
func (o offsets) At(i int) time.Duration { return o.ts[i] }
func (o offsets) OfferedRate() float64   { return o.rate }

// Constant returns n arrivals at exactly rate ops/second: the i-th
// arrival at i/rate. Deterministic and maximally regular — the pure
// throughput probe.
func Constant(rate float64, n int) Schedule {
	if rate <= 0 || n <= 0 {
		panic(fmt.Sprintf("load: Constant needs rate > 0 and n > 0, got %v, %d", rate, n))
	}
	ts := make([]time.Duration, n)
	for i := range ts {
		ts[i] = time.Duration(float64(i) / rate * float64(time.Second))
	}
	return offsets{ts: ts, rate: rate}
}

// Poisson returns n arrivals of a homogeneous Poisson process at the
// given mean rate: i.i.d. exponential inter-arrival gaps, deterministic
// per seed. This is the honest model of independent riders — bursts and
// lulls included — and the default arrival process for the frontier.
func Poisson(rate float64, n int, seed int64) Schedule {
	if rate <= 0 || n <= 0 {
		panic(fmt.Sprintf("load: Poisson needs rate > 0 and n > 0, got %v, %d", rate, n))
	}
	rng := rand.New(rand.NewSource(seed))
	ts := make([]time.Duration, n)
	t := 0.0
	for i := range ts {
		// Inverse-CDF exponential sampling; ExpFloat64 has mean 1.
		t += rng.ExpFloat64() / rate
		ts[i] = time.Duration(t * float64(time.Second))
	}
	return offsets{ts: ts, rate: rate}
}

// RampStep is one plateau of a stepped-ramp schedule.
type RampStep struct {
	// Rate is the plateau's offered rate in ops/second.
	Rate float64
	// Duration is how long the plateau lasts.
	Duration time.Duration
}

// Ramp concatenates constant-rate plateaus into one schedule — the
// in-run form of a rate sweep, used to watch a single engine instance
// cross its saturation knee without restarting between steps. The
// reported OfferedRate is the time-weighted mean.
func Ramp(steps []RampStep) Schedule {
	if len(steps) == 0 {
		panic("load: Ramp needs at least one step")
	}
	var ts []time.Duration
	base := time.Duration(0)
	totalOps, totalDur := 0.0, 0.0
	for _, s := range steps {
		if s.Rate <= 0 || s.Duration <= 0 {
			panic(fmt.Sprintf("load: Ramp step needs rate > 0 and duration > 0, got %+v", s))
		}
		n := int(math.Floor(s.Rate * s.Duration.Seconds()))
		for i := 0; i < n; i++ {
			ts = append(ts, base+time.Duration(float64(i)/s.Rate*float64(time.Second)))
		}
		base += s.Duration
		totalOps += float64(n)
		totalDur += s.Duration.Seconds()
	}
	if len(ts) == 0 {
		panic("load: Ramp produced no arrivals; steps too short for their rates")
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return offsets{ts: ts, rate: totalOps / totalDur}
}
