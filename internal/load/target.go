package load

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"xar/internal/core"
	"xar/internal/index"
	"xar/internal/roadnet"
	"xar/internal/workload"
)

// Op is one operation kind of the generated mix.
type Op int

// The operation kinds, in mix-declaration order.
const (
	OpSearch Op = iota
	OpBook
	OpCreate
	OpTrack
	OpCancel
	numOps
)

func (o Op) String() string {
	switch o {
	case OpSearch:
		return "search"
	case OpBook:
		return "book"
	case OpCreate:
		return "create"
	case OpTrack:
		return "track"
	case OpCancel:
		return "cancel"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Mix is the relative weight of each operation kind in the generated
// stream. Weights need not sum to 1; they are normalized when drawn.
type Mix struct {
	Search float64 `json:"search"`
	Book   float64 `json:"book"`
	Create float64 `json:"create"`
	Track  float64 `json:"track"`
	Cancel float64 `json:"cancel"`
}

// DefaultMix mirrors the paper's Go-LA deployment shape: search-heavy
// traffic (look-to-book well above 1), a booking tail, fresh ride
// offers trickling in, and a little tracking/cancellation noise.
func DefaultMix() Mix {
	return Mix{Search: 0.70, Book: 0.15, Create: 0.10, Track: 0.04, Cancel: 0.01}
}

// ParseMix parses "search=0.7,book=0.15,create=0.1,track=0.04,cancel=0.01".
// Omitted ops get weight zero; at least one weight must be positive.
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("load: mix entry %q is not op=weight", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("load: mix weight %q must be a non-negative number", v)
		}
		switch strings.TrimSpace(k) {
		case "search":
			m.Search = w
		case "book":
			m.Book = w
		case "create":
			m.Create = w
		case "track":
			m.Track = w
		case "cancel":
			m.Cancel = w
		default:
			return Mix{}, fmt.Errorf("load: unknown op %q (want search, book, create, track, cancel)", k)
		}
	}
	if m.total() <= 0 {
		return Mix{}, errors.New("load: mix has no positive weight")
	}
	return m, nil
}

func (m Mix) weights() [numOps]float64 {
	return [numOps]float64{m.Search, m.Book, m.Create, m.Track, m.Cancel}
}

func (m Mix) total() float64 {
	t := 0.0
	for _, w := range m.weights() {
		t += w
	}
	return t
}

// pick draws one op proportionally to the weights.
func (m Mix) pick(rng *rand.Rand) Op {
	x := rng.Float64() * m.total()
	for op, w := range m.weights() {
		if x -= w; x < 0 {
			return Op(op)
		}
	}
	return OpSearch
}

// Map renders the mix as op-name → weight for JSON reports.
func (m Mix) Map() map[string]float64 {
	out := make(map[string]float64, numOps)
	for op, w := range m.weights() {
		if w > 0 {
			out[Op(op).String()] = w
		}
	}
	return out
}

// Result is one operation's outcome as the runner accounts it.
type Result struct {
	// Searched reports whether the op ran a search (search and book ops
	// do); Matched whether that search returned at least one candidate.
	Searched, Matched bool
	// Booked reports a confirmed booking.
	Booked bool
	// Err is a failure that is *not* part of the domain (transport
	// errors, 5xx). Domain rejections — ride full, no longer feasible,
	// unknown ride after completion — are expected under load and are
	// not errors.
	Err error
}

// Target executes one operation against the system under test. Do must
// be safe for concurrent use; the open-loop runner calls it from many
// goroutines at once.
type Target interface {
	Do(op Op, t workload.Trip) Result
}

// TargetParams are the request-shaping knobs shared by both targets;
// they mirror sim.Config and experiments.Scale.
type TargetParams struct {
	WalkLimit   float64 // requester walking threshold, meters
	WindowSlack float64 // departure-window width, seconds
	DetourLimit float64 // created rides' detour budget, meters
	Seats       int     // created rides' seat count
}

// DefaultTargetParams mirrors experiments.DefaultScale.
func DefaultTargetParams() TargetParams {
	return TargetParams{WalkLimit: 1000, WindowSlack: 900, DetourLimit: 2000, Seats: 4}
}

// bookingRef is what a cancel needs to undo a booking.
type bookingRef struct {
	ride            index.RideID
	pickup, dropoff roadnet.NodeID
}

// targetState is the shared mutable bookkeeping both targets need:
// recently created rides (track pool) and outstanding bookings (cancel
// pool), both bounded so a long run cannot grow the harness itself.
type targetState struct {
	mu       sync.Mutex
	rides    []index.RideID
	bookings []bookingRef
	rr       int // round-robin cursor over rides
}

const targetPoolCap = 4096

func (st *targetState) addRide(id index.RideID) {
	st.mu.Lock()
	if len(st.rides) < targetPoolCap {
		st.rides = append(st.rides, id)
	} else {
		st.rides[st.rr%len(st.rides)] = id
	}
	st.rr++
	st.mu.Unlock()
}

func (st *targetState) pickRide() (index.RideID, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.rides) == 0 {
		return 0, false
	}
	st.rr++
	return st.rides[st.rr%len(st.rides)], true
}

func (st *targetState) dropRide(id index.RideID) {
	st.mu.Lock()
	for i, r := range st.rides {
		if r == id {
			st.rides[i] = st.rides[len(st.rides)-1]
			st.rides = st.rides[:len(st.rides)-1]
			break
		}
	}
	st.mu.Unlock()
}

func (st *targetState) addBooking(b bookingRef) {
	st.mu.Lock()
	if len(st.bookings) < targetPoolCap {
		st.bookings = append(st.bookings, b)
	}
	st.mu.Unlock()
}

func (st *targetState) popBooking() (bookingRef, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.bookings) == 0 {
		return bookingRef{}, false
	}
	b := st.bookings[len(st.bookings)-1]
	st.bookings = st.bookings[:len(st.bookings)-1]
	return b, true
}

// EngineTarget drives a core.Engine in-process — no HTTP layer, so the
// measured latency is the engine itself plus harness queueing. This is
// the target the coordinated-omission test and the cheapest CI smoke
// use.
type EngineTarget struct {
	Eng    *core.Engine
	Params TargetParams

	st targetState
}

// NewEngineTarget builds an in-process target with default params.
func NewEngineTarget(eng *core.Engine) *EngineTarget {
	return &EngineTarget{Eng: eng, Params: DefaultTargetParams()}
}

func (et *EngineTarget) request(t workload.Trip) core.Request {
	return core.Request{
		Source:            t.Pickup,
		Dest:              t.Dropoff,
		EarliestDeparture: t.RequestTime,
		LatestDeparture:   t.RequestTime + et.Params.WindowSlack,
		WalkLimit:         et.Params.WalkLimit,
	}
}

// Do implements Target.
func (et *EngineTarget) Do(op Op, t workload.Trip) Result {
	switch op {
	case OpCreate:
		id, err := et.Eng.CreateRide(core.RideOffer{
			Source:      t.Pickup,
			Dest:        t.Dropoff,
			Departure:   t.RequestTime,
			Seats:       et.Params.Seats,
			DetourLimit: et.Params.DetourLimit,
		})
		if err != nil {
			return Result{Err: benign(err)}
		}
		et.st.addRide(id)
		return Result{}

	case OpSearch:
		ms, err := et.Eng.SearchK(et.request(t), 0)
		if err != nil {
			return Result{Searched: true, Err: benign(err)}
		}
		return Result{Searched: true, Matched: len(ms) > 0}

	case OpBook:
		req := et.request(t)
		ms, err := et.Eng.SearchK(req, 0)
		if err != nil {
			return Result{Searched: true, Err: benign(err)}
		}
		if len(ms) == 0 {
			return Result{Searched: true}
		}
		bk, err := et.Eng.Book(ms[0], req)
		if err != nil {
			// Losing the ride to a concurrent booker is the workload
			// working as intended, not a harness failure.
			return Result{Searched: true, Matched: true, Err: benign(err)}
		}
		et.st.addBooking(bookingRef{ride: bk.Ride, pickup: bk.PickupNode, dropoff: bk.DropoffNode})
		return Result{Searched: true, Matched: true, Booked: true}

	case OpTrack:
		id, ok := et.st.pickRide()
		if !ok {
			// Nothing to track yet: degrade to a search so the arrival
			// still exercises the system.
			return et.Do(OpSearch, t)
		}
		arrived, err := et.Eng.Track(id, t.RequestTime)
		if err != nil || arrived {
			et.st.dropRide(id)
		}
		if err != nil {
			return Result{Err: benign(err)}
		}
		return Result{}

	case OpCancel:
		b, ok := et.st.popBooking()
		if !ok {
			return et.Do(OpSearch, t)
		}
		if err := et.Eng.CancelBooking(b.ride, b.pickup, b.dropoff); err != nil {
			return Result{Err: benign(err)}
		}
		return Result{}
	}
	return Result{Err: fmt.Errorf("load: unknown op %v", op)}
}

// benign filters domain errors out of the harness error count: a full
// ride, a request outside every ride's window, or a ride that completed
// between ops are the system behaving, not failing.
func benign(err error) error {
	switch {
	case errors.Is(err, core.ErrUnknownRide),
		errors.Is(err, core.ErrRideFull),
		errors.Is(err, core.ErrNoLongerFeasible),
		errors.Is(err, core.ErrDetourExceeded),
		errors.Is(err, core.ErrNotServable),
		errors.Is(err, core.ErrUnreachable):
		return nil
	default:
		return err
	}
}
