package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"xar/internal/index"
	"xar/internal/roadnet"
	"xar/internal/server"
	"xar/internal/telemetry"
	"xar/internal/workload"
)

// HTTPTarget drives the JSON API of a running xarserver (or an
// httptest.Server wrapping internal/server) — the full-stack target:
// measured latency includes JSON codecs, middleware, and the transport,
// which is what a rider-facing deployment actually serves.
type HTTPTarget struct {
	BaseURL string
	// Client is the HTTP client to use (nil → a dedicated client with a
	// large idle-connection pool, so open-loop bursts are not serialized
	// by the default two idle conns per host).
	Client *http.Client
	Params TargetParams

	st targetState
}

// NewHTTPTarget builds a target for baseURL with default params.
func NewHTTPTarget(baseURL string) *HTTPTarget {
	return &HTTPTarget{
		BaseURL: strings.TrimRight(baseURL, "/"),
		Client: &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        1024,
				MaxIdleConnsPerHost: 1024,
			},
			Timeout: 2 * time.Minute,
		},
		Params: DefaultTargetParams(),
	}
}

func (ht *HTTPTarget) client() *http.Client {
	if ht.Client != nil {
		return ht.Client
	}
	return http.DefaultClient
}

// doJSON issues one request and decodes a 2xx response into out (when
// non-nil). Non-2xx statuses return the status code with a nil error —
// the caller decides which statuses are domain outcomes.
func (ht *HTTPTarget) doJSON(method, path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, err
		}
		rd = &buf
	}
	req, err := http.NewRequest(method, ht.BaseURL+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := ht.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return resp.StatusCode, err
			}
		}
		return resp.StatusCode, nil
	}
	// Drain so the connection is reusable.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	return resp.StatusCode, nil
}

// benignStatus are the HTTP statuses that map to domain rejections —
// the wire form of the errors benign() filters on the engine target.
func benignStatus(code int) bool {
	switch code {
	case http.StatusNotFound, http.StatusConflict, http.StatusUnprocessableEntity:
		return true
	default:
		return false
	}
}

func statusErr(op Op, code int) error {
	if code >= 200 && code < 300 {
		return nil
	}
	if benignStatus(code) {
		return nil
	}
	return fmt.Errorf("load: %s returned HTTP %d", op, code)
}

func (ht *HTTPTarget) searchRequest(t workload.Trip) server.SearchRequest {
	return server.SearchRequest{
		Source:    server.PointJSON{Lat: t.Pickup.Lat, Lng: t.Pickup.Lng},
		Dest:      server.PointJSON{Lat: t.Dropoff.Lat, Lng: t.Dropoff.Lng},
		Earliest:  t.RequestTime,
		Latest:    t.RequestTime + ht.Params.WindowSlack,
		WalkLimit: ht.Params.WalkLimit,
	}
}

// Do implements Target.
func (ht *HTTPTarget) Do(op Op, t workload.Trip) Result {
	switch op {
	case OpCreate:
		var resp server.CreateRideResponse
		code, err := ht.doJSON(http.MethodPost, "/v1/rides", server.CreateRideRequest{
			Source:      server.PointJSON{Lat: t.Pickup.Lat, Lng: t.Pickup.Lng},
			Dest:        server.PointJSON{Lat: t.Dropoff.Lat, Lng: t.Dropoff.Lng},
			Departure:   t.RequestTime,
			Seats:       ht.Params.Seats,
			DetourLimit: ht.Params.DetourLimit,
		}, &resp)
		if err != nil {
			return Result{Err: err}
		}
		if code == http.StatusCreated {
			ht.st.addRide(index.RideID(resp.RideID))
			return Result{}
		}
		return Result{Err: statusErr(op, code)}

	case OpSearch:
		var resp server.SearchResponse
		code, err := ht.doJSON(http.MethodPost, "/v1/search", ht.searchRequest(t), &resp)
		if err != nil {
			return Result{Searched: true, Err: err}
		}
		return Result{Searched: true, Matched: len(resp.Matches) > 0, Err: statusErr(op, code)}

	case OpBook:
		sreq := ht.searchRequest(t)
		var sresp server.SearchResponse
		code, err := ht.doJSON(http.MethodPost, "/v1/search", sreq, &sresp)
		if err != nil {
			return Result{Searched: true, Err: err}
		}
		if code != http.StatusOK || len(sresp.Matches) == 0 {
			return Result{Searched: true, Err: statusErr(op, code)}
		}
		var bk server.BookingJSON
		code, err = ht.doJSON(http.MethodPost, "/v1/bookings", server.BookRequest{
			Match:   sresp.Matches[0],
			Request: sreq,
		}, &bk)
		if err != nil {
			return Result{Searched: true, Matched: true, Err: err}
		}
		if code == http.StatusCreated {
			ht.st.addBooking(bookingRef{
				ride:    index.RideID(bk.RideID),
				pickup:  roadnet.NodeID(bk.PickupNode),
				dropoff: roadnet.NodeID(bk.DropoffNode),
			})
			return Result{Searched: true, Matched: true, Booked: true}
		}
		return Result{Searched: true, Matched: true, Err: statusErr(op, code)}

	case OpTrack:
		id, ok := ht.st.pickRide()
		if !ok {
			return ht.Do(OpSearch, t)
		}
		now := t.RequestTime
		var resp server.TrackResponse
		code, err := ht.doJSON(http.MethodPost, "/v1/track", server.TrackRequest{
			RideID: int64(id),
			Now:    &now,
		}, &resp)
		if err != nil {
			return Result{Err: err}
		}
		if code != http.StatusOK || resp.Arrived {
			ht.st.dropRide(id)
		}
		return Result{Err: statusErr(op, code)}

	case OpCancel:
		b, ok := ht.st.popBooking()
		if !ok {
			return ht.Do(OpSearch, t)
		}
		code, err := ht.doJSON(http.MethodDelete, "/v1/bookings", server.CancelRequest{
			RideID:      int64(b.ride),
			PickupNode:  int64(b.pickup),
			DropoffNode: int64(b.dropoff),
		}, nil)
		if err != nil {
			return Result{Err: err}
		}
		return Result{Err: statusErr(op, code)}
	}
	return Result{Err: fmt.Errorf("load: unknown op %v", op)}
}

// ServerStats is the server-side view of one rate step: the engine's
// own latency histogram over the step window (from /v1/metrics/history),
// the SLO burn state, and the server process heap. Client-observed
// latency includes queueing the server never sees; comparing the two is
// the cross-check that the harness and the server agree on service time
// while disagreeing — correctly — about waiting time.
type ServerStats struct {
	Op            string  `json:"op"`
	WindowSeconds float64 `json:"window_s"`
	RatePerSec    float64 `json:"rate_per_s"`
	P50           float64 `json:"p50_ms"`
	P95           float64 `json:"p95_ms"`
	P99           float64 `json:"p99_ms"`
	SLOStatus     string  `json:"slo_status,omitempty"`
	HeapAlloc     uint64  `json:"heap_alloc_bytes,omitempty"`
}

// ScrapeServer pulls the server's own view of the trailing window:
// op-duration quantiles for op from /v1/metrics/history, burn state
// from /v1/slo (skipped when the server runs without an SLO engine),
// and heap from the Prometheus exposition.
func ScrapeServer(client *http.Client, baseURL, op string, window time.Duration) (*ServerStats, error) {
	if client == nil {
		client = http.DefaultClient
	}
	baseURL = strings.TrimRight(baseURL, "/")
	st := &ServerStats{Op: op, WindowSeconds: window.Seconds()}

	url := fmt.Sprintf("%s/v1/metrics/history?name=%s&window_s=%g&max_points=1",
		baseURL, telemetry.OpDurationName, window.Seconds())
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: metrics history returned HTTP %d", resp.StatusCode)
	}
	var dump telemetry.HistoryDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return nil, err
	}
	// A series exists for every op the engine pre-registered; only a
	// point carrying quantiles (count delta > 0 inside the window) is
	// evidence of recorded traffic — anything less must fail loudly
	// rather than fabricate zeros for the cross-check.
	found := false
	for _, s := range dump.Series {
		if s.Labels["op"] != op || len(s.Points) == 0 {
			continue
		}
		pt := s.Points[len(s.Points)-1]
		if pt.P99 == nil {
			continue
		}
		if pt.Rate != nil {
			st.RatePerSec = *pt.Rate
		}
		const ms = 1e3
		if pt.P50 != nil {
			st.P50 = *pt.P50 * ms
		}
		if pt.P95 != nil {
			st.P95 = *pt.P95 * ms
		}
		st.P99 = *pt.P99 * ms
		found = true
		break
	}
	if !found {
		return nil, fmt.Errorf("load: no recorded %s traffic for op=%q in history window", telemetry.OpDurationName, op)
	}

	if resp, err := client.Get(baseURL + "/v1/slo"); err == nil {
		func() {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return // SLOs disabled: leave status empty
			}
			var slo struct {
				Status string `json:"status"`
			}
			if json.NewDecoder(resp.Body).Decode(&slo) == nil {
				st.SLOStatus = slo.Status
			}
		}()
	}

	if heap, err := scrapeGauge(client, baseURL, "go_memstats_heap_alloc_bytes"); err == nil {
		st.HeapAlloc = uint64(heap)
	}
	return st, nil
}

// scrapeGauge reads one unlabeled gauge from the Prometheus exposition.
func scrapeGauge(client *http.Client, baseURL, name string) (float64, error) {
	resp, err := client.Get(baseURL + "/v1/metrics/prom")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
			return 0, err
		}
		return v, nil
	}
	return 0, fmt.Errorf("load: gauge %s not in exposition", name)
}
