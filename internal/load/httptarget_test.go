package load

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"xar/internal/core"
	"xar/internal/experiments"
	"xar/internal/server"
	"xar/internal/telemetry"
	"xar/internal/workload"
)

// newHTTPEnv stands up an httptest server over a small engine with
// telemetry and a flight recorder — the same wiring cmd/xarserver uses —
// and seeds it with ride offers.
func newHTTPEnv(t testing.TB) (*HTTPTarget, []workload.Trip, *telemetry.Recorder) {
	t.Helper()
	sc := experiments.DefaultScale()
	sc.CityRows, sc.CityCols = 16, 10
	sc.Requests = 600
	w, err := experiments.BuildWorld(sc)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	telemetry.RegisterRuntimeMetrics(reg)
	w.Telemetry = reg
	eng, err := w.NewXAREngine()
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder(reg, telemetry.RecorderConfig{
		Interval:  time.Second,
		Retention: time.Minute,
	})
	srv := server.New(eng, core.NewSocialGraph(),
		server.WithTelemetry(reg), server.WithRecorder(rec))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	target := NewHTTPTarget(ts.URL)
	offers, requests := w.SplitOffersRequests()
	for _, o := range offers {
		if res := target.Do(OpCreate, o); res.Err != nil {
			t.Fatalf("seeding offer: %v", res.Err)
		}
	}
	return target, requests, rec
}

func TestHTTPTargetRun(t *testing.T) {
	target, trips, _ := newHTTPEnv(t)
	rep, err := Run(context.Background(), target, Config{
		Schedule:    Poisson(800, 400, 9),
		Trips:       trips,
		Seed:        4,
		MaxInflight: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 400 {
		t.Fatalf("ops %d, want 400", rep.Ops)
	}
	if rep.Errors != 0 {
		t.Fatalf("harness errors over HTTP: %d (%+v)", rep.Errors, rep.PerOp)
	}
	if rep.Searches == 0 || rep.Matched == 0 {
		t.Fatalf("searches %d matched %d", rep.Searches, rep.Matched)
	}
}

func TestScrapeServerCrossCheck(t *testing.T) {
	target, trips, rec := newHTTPEnv(t)
	// History points are deltas between snapshots: anchor one before the
	// run so the post-run tick covers the traffic.
	rec.TickNow()
	rep, err := Run(context.Background(), target, Config{
		Schedule:    Constant(800, 400),
		Trips:       trips,
		Seed:        5,
		MaxInflight: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot the instruments so /v1/metrics/history has a fresh point
	// covering the run — the same TickNow the sweep's Observe hook uses.
	rec.TickNow()

	st, err := ScrapeServer(target.Client, target.BaseURL, "search", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if st.Op != "search" {
		t.Fatalf("op %q", st.Op)
	}
	if st.P99 <= 0 {
		t.Fatalf("server-side p99 %v not captured", st.P99)
	}
	// Cross-check: the client's end-to-end p99 (HTTP + queueing) must
	// dominate the server's in-handler search p99.
	if rep.Latency.P99 < st.P99 {
		t.Errorf("client p99 %.3f ms below server-side search p99 %.3f ms", rep.Latency.P99, st.P99)
	}
	if st.HeapAlloc == 0 {
		t.Error("heap gauge not scraped from /v1/metrics/prom")
	}
	// No SLO engine wired in this env: status must stay empty, not error.
	if st.SLOStatus != "" {
		t.Errorf("unexpected SLO status %q", st.SLOStatus)
	}
}

func TestScrapeServerNoTraffic(t *testing.T) {
	target, _, rec := newHTTPEnv(t)
	rec.TickNow()
	rec.TickNow()
	// The op=book series exists (the engine pre-registers instruments)
	// but saw no traffic between snapshots: ScrapeServer must fail
	// loudly, not fabricate zero quantiles.
	if _, err := ScrapeServer(target.Client, target.BaseURL, "book", time.Minute); err == nil {
		t.Fatal("expected error for op with no recorded traffic")
	}
}
