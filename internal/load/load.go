package load

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"xar/internal/telemetry"
	"xar/internal/workload"
)

// Config parameterizes one load run.
type Config struct {
	// Schedule is the open-loop arrival plan (required).
	Schedule Schedule
	// Mix is the operation mix; zero value → DefaultMix.
	Mix Mix
	// Trips feeds request/offer coordinates; arrival i uses trip
	// i mod len(Trips). Required, non-empty.
	Trips []workload.Trip
	// Seed makes the per-arrival op draw deterministic.
	Seed int64
	// MaxInflight bounds concurrently outstanding operations (0 =
	// unbounded: one goroutine per scheduled arrival, the purest open
	// loop). When the bound is hit, dispatch waits for a slot — but each
	// arrival's intended send time is already fixed, so the wait is
	// charged to the recorded latency, never omitted.
	MaxInflight int
	// ClosedLoop switches to the control arm: Workers goroutines issue
	// the scheduled arrivals but each waits for its previous operation
	// to complete first, measures from the *actual* send time, and never
	// makes up for missed arrivals. This is exactly the coordinated-
	// omission-prone harness the open loop exists to replace; it is kept
	// for demonstration and regression tests.
	ClosedLoop bool
	// Workers is the closed-loop concurrency (0 → 4). Ignored open-loop.
	Workers int
}

// Quantiles is a latency summary in milliseconds.
type Quantiles struct {
	P50  float64 `json:"p50_ms"`
	P95  float64 `json:"p95_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
}

func quantilesOf(h *telemetry.Histogram) Quantiles {
	const ms = 1e3
	return Quantiles{
		P50:  h.Quantile(0.50) * ms,
		P95:  h.Quantile(0.95) * ms,
		P99:  h.Quantile(0.99) * ms,
		P999: h.Quantile(0.999) * ms,
	}
}

// OpReport is one op kind's share of a run.
type OpReport struct {
	Count   int64 `json:"count"`
	Errors  int64 `json:"errors"`
	Latency Quantiles
}

// MarshalJSON inlines the quantiles next to the counts.
func (o OpReport) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(
		`{"count":%d,"errors":%d,"p50_ms":%g,"p95_ms":%g,"p99_ms":%g,"p999_ms":%g}`,
		o.Count, o.Errors, o.Latency.P50, o.Latency.P95, o.Latency.P99, o.Latency.P999)), nil
}

// Report is one run's outcome. All latency figures are measured from
// the intended send time in open-loop mode (coordinated-omission-safe)
// and from the actual send time in the closed-loop control arm.
type Report struct {
	Mode         string  `json:"mode"` // "open" or "closed"
	OfferedRate  float64 `json:"offered_rate"`
	AchievedRate float64 `json:"achieved_rate"`
	WallSeconds  float64 `json:"wall_seconds"`
	Ops          int64   `json:"ops"`
	Errors       int64   `json:"errors"`
	Searches     int64   `json:"searches"`
	Matched      int64   `json:"matched"`
	Bookings     int64   `json:"bookings"`
	// MatchRate is matched searches / searches — the paper's headline
	// quality metric, gated in CI alongside p99.
	MatchRate float64             `json:"match_rate"`
	Latency   Quantiles           `json:"latency"`
	PerOp     map[string]OpReport `json:"per_op"`

	// Hist is the overall latency histogram (seconds, log buckets) for
	// callers that need more than the fixed quantiles.
	Hist *telemetry.Histogram `json:"-"`
}

// LatencyBuckets is the harness histogram layout: 1 µs to 60 s, ten
// log buckets per decade — finer than the serving DurationBuckets
// because the harness must resolve both in-process µs searches and
// multi-second queueing collapse past the saturation knee.
func LatencyBuckets() []float64 {
	return telemetry.LogBuckets(1e-6, 60, 10)
}

// Run executes one load run against target. It returns when every
// scheduled arrival has completed, or ctx is cancelled (the report then
// covers the operations that did run, alongside ctx's error).
func Run(ctx context.Context, target Target, cfg Config) (*Report, error) {
	if cfg.Schedule == nil {
		return nil, errors.New("load: Config.Schedule is required")
	}
	if len(cfg.Trips) == 0 {
		return nil, errors.New("load: Config.Trips is required")
	}
	if (cfg.Mix == Mix{}) {
		cfg.Mix = DefaultMix()
	}

	// Pre-draw the op sequence so the mix is deterministic per seed and
	// no rng lock is touched during dispatch.
	n := cfg.Schedule.Len()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = cfg.Mix.pick(rng)
	}

	rec := newRecorderSet()
	var done int64
	start := time.Now()
	if cfg.ClosedLoop {
		done = runClosed(ctx, target, cfg, ops, rec, start)
	} else {
		done = runOpen(ctx, target, cfg, ops, rec, start)
	}
	wall := time.Since(start)

	rep := &Report{
		Mode:        "open",
		OfferedRate: cfg.Schedule.OfferedRate(),
		WallSeconds: wall.Seconds(),
		Ops:         done,
		Errors:      rec.errors.Load(),
		Searches:    rec.searches.Load(),
		Matched:     rec.matched.Load(),
		Bookings:    rec.bookings.Load(),
		Latency:     quantilesOf(rec.all),
		PerOp:       rec.perOpReports(),
		Hist:        rec.all,
	}
	if cfg.ClosedLoop {
		rep.Mode = "closed"
	}
	if wall > 0 {
		rep.AchievedRate = float64(done) / wall.Seconds()
	}
	if rep.Searches > 0 {
		rep.MatchRate = float64(rep.Matched) / float64(rep.Searches)
	}
	return rep, ctx.Err()
}

// recorderSet is the run's accounting: one overall histogram, one per
// op kind, and the outcome counters.
type recorderSet struct {
	all   *telemetry.Histogram
	perOp [numOps]*telemetry.Histogram

	opCount  [numOps]atomic.Int64
	opErrors [numOps]atomic.Int64

	errors   atomic.Int64
	searches atomic.Int64
	matched  atomic.Int64
	bookings atomic.Int64
}

func newRecorderSet() *recorderSet {
	rs := &recorderSet{all: telemetry.NewHistogram(LatencyBuckets())}
	for i := range rs.perOp {
		rs.perOp[i] = telemetry.NewHistogram(LatencyBuckets())
	}
	return rs
}

func (rs *recorderSet) record(op Op, lat time.Duration, res Result) {
	rs.all.ObserveDuration(lat)
	rs.perOp[op].ObserveDuration(lat)
	rs.opCount[op].Add(1)
	if res.Err != nil {
		rs.errors.Add(1)
		rs.opErrors[op].Add(1)
	}
	if res.Searched {
		rs.searches.Add(1)
		if res.Matched {
			rs.matched.Add(1)
		}
	}
	if res.Booked {
		rs.bookings.Add(1)
	}
}

func (rs *recorderSet) perOpReports() map[string]OpReport {
	out := make(map[string]OpReport)
	for op := Op(0); op < numOps; op++ {
		c := rs.opCount[op].Load()
		if c == 0 {
			continue
		}
		out[op.String()] = OpReport{
			Count:   c,
			Errors:  rs.opErrors[op].Load(),
			Latency: quantilesOf(rs.perOp[op]),
		}
	}
	return out
}

// runOpen dispatches every arrival at its scheduled instant. Latency is
// measured from the intended send time: if the dispatcher falls behind —
// the inflight bound is saturated, or the scheduler starved us — the lag
// is charged to the affected operations rather than silently dropped.
func runOpen(ctx context.Context, target Target, cfg Config, ops []Op, rec *recorderSet, start time.Time) int64 {
	var sem chan struct{}
	if cfg.MaxInflight > 0 {
		sem = make(chan struct{}, cfg.MaxInflight)
	}
	var wg sync.WaitGroup
	var done int64
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}

dispatch:
	for i := range ops {
		intended := start.Add(cfg.Schedule.At(i))
		if d := time.Until(intended); d > 0 {
			timer.Reset(d)
			select {
			case <-ctx.Done():
				if !timer.Stop() {
					<-timer.C
				}
				break dispatch
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			break dispatch
		}
		if sem != nil {
			// Blocking here delays the *send*, never the schedule: the
			// intended stamp above is already fixed, so the queueing this
			// wait represents lands in the recorded latency.
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				break dispatch
			}
		}
		wg.Add(1)
		done++
		go func(i int, intended time.Time) {
			defer wg.Done()
			res := target.Do(ops[i], cfg.Trips[i%len(cfg.Trips)])
			rec.record(ops[i], time.Since(intended), res)
			if sem != nil {
				<-sem
			}
		}(i, intended)
	}
	wg.Wait()
	return done
}

// runClosed is the coordinated-omission-prone control arm: each worker
// paces itself against the schedule but only after its previous call
// returned, measures from the actual send, and never backfills missed
// arrivals — a stall therefore erases the very observations that would
// have shown it.
func runClosed(ctx context.Context, target Target, cfg Config, ops []Op, rec *recorderSet, start time.Time) int64 {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	var next, done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ops) || ctx.Err() != nil {
					return
				}
				if d := time.Until(start.Add(cfg.Schedule.At(i))); d > 0 {
					time.Sleep(d)
				}
				send := time.Now()
				res := target.Do(ops[i], cfg.Trips[i%len(cfg.Trips)])
				rec.record(ops[i], time.Since(send), res)
				done.Add(1)
			}
		}()
	}
	wg.Wait()
	return done.Load()
}
