package load

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"xar/internal/core"
	"xar/internal/memsize"
	"xar/internal/profile"
	"xar/internal/workload"
)

// SweepConfig parameterizes a rate sweep: the same target is driven at
// each offered rate in turn, producing one frontier step per rate.
type SweepConfig struct {
	// Rates are the offered rates (ops/second) to sweep, sorted
	// ascending before running.
	Rates []float64
	// OpsPerStep is how many arrivals each rate step schedules.
	OpsPerStep int
	// Arrival selects the process: "poisson" (default) or "constant".
	Arrival string
	// Mix / Trips / Seed / MaxInflight are passed through to each Run.
	Mix         Mix
	Trips       []workload.Trip
	Seed        int64
	MaxInflight int
	// WarmupOps, when positive, runs that many unrecorded arrivals at
	// the lowest rate first — JIT-ish effects (pool fills, first GC) land
	// outside the measurement.
	WarmupOps int
	// Observe, when set, runs after each step completes — the hook that
	// attaches memory and server-side cross-check stats to the step.
	Observe func(step *Step, rep *Report)
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Step is one rate step of the frontier.
type Step struct {
	OfferedRate  float64             `json:"offered_rate"`
	AchievedRate float64             `json:"achieved_rate"`
	WallSeconds  float64             `json:"wall_seconds"`
	Ops          int64               `json:"ops"`
	Errors       int64               `json:"errors"`
	MatchRate    float64             `json:"match_rate"`
	Client       Quantiles           `json:"client_latency"`
	PerOp        map[string]OpReport `json:"per_op"`
	// Server is the server-side view of the same step pulled from
	// /v1/metrics/history and /v1/slo — the cross-check that client-
	// observed latency (which includes queueing) brackets the server's
	// own service-time histograms.
	Server *ServerStats `json:"server,omitempty"`
	// Memory captures heap/RSS and the memsize-derived index footprint
	// at the end of the step.
	Memory *MemoryStats `json:"memory,omitempty"`
	// Profile attributes the step's allocations and contention to their
	// hottest symbols (absent when the harness runs without a profiler).
	Profile *ProfileStats `json:"profile,omitempty"`
}

// Frontier is the sweep result — the BENCH_scale.json document.
type Frontier struct {
	Schema      string             `json:"schema"` // frontier schema version tag
	World       map[string]any     `json:"world,omitempty"`
	Mode        string             `json:"mode"`
	Arrival     string             `json:"arrival"`
	Mix         map[string]float64 `json:"mix"`
	MaxInflight int                `json:"max_inflight"`
	OpsPerStep  int                `json:"ops_per_step"`
	Gomaxprocs  int                `json:"gomaxprocs"`
	Steps       []Step             `json:"steps"`
}

// FrontierSchema tags BENCH_scale.json so downstream tooling can detect
// incompatible rewrites.
const FrontierSchema = "xar-bench-scale/v1"

// RunSweep drives target at each rate and assembles the frontier.
func RunSweep(ctx context.Context, target Target, cfg SweepConfig) (*Frontier, error) {
	if len(cfg.Rates) == 0 {
		return nil, fmt.Errorf("load: sweep needs at least one rate")
	}
	if cfg.OpsPerStep <= 0 {
		return nil, fmt.Errorf("load: sweep needs OpsPerStep > 0")
	}
	if cfg.Arrival == "" {
		cfg.Arrival = "poisson"
	}
	if cfg.Arrival != "poisson" && cfg.Arrival != "constant" {
		return nil, fmt.Errorf("load: unknown arrival process %q (want poisson or constant)", cfg.Arrival)
	}
	rates := append([]float64(nil), cfg.Rates...)
	sort.Float64s(rates)
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	if cfg.WarmupOps > 0 {
		logf("warmup: %d ops at %.0f/s", cfg.WarmupOps, rates[0])
		_, err := Run(ctx, target, Config{
			Schedule:    Constant(rates[0], cfg.WarmupOps),
			Mix:         cfg.Mix,
			Trips:       cfg.Trips,
			Seed:        cfg.Seed,
			MaxInflight: cfg.MaxInflight,
		})
		if err != nil {
			return nil, err
		}
	}

	f := &Frontier{
		Schema:      FrontierSchema,
		Mode:        "open",
		Arrival:     cfg.Arrival,
		Mix:         cfg.Mix.Map(),
		MaxInflight: cfg.MaxInflight,
		OpsPerStep:  cfg.OpsPerStep,
		Gomaxprocs:  runtime.GOMAXPROCS(0),
	}
	if (cfg.Mix == Mix{}) {
		f.Mix = DefaultMix().Map()
	}
	for i, rate := range rates {
		var sched Schedule
		if cfg.Arrival == "constant" {
			sched = Constant(rate, cfg.OpsPerStep)
		} else {
			sched = Poisson(rate, cfg.OpsPerStep, cfg.Seed+int64(i)*1009)
		}
		rep, err := Run(ctx, target, Config{
			Schedule:    sched,
			Mix:         cfg.Mix,
			Trips:       cfg.Trips,
			Seed:        cfg.Seed + int64(i),
			MaxInflight: cfg.MaxInflight,
		})
		if err != nil {
			return f, err
		}
		step := Step{
			OfferedRate:  rep.OfferedRate,
			AchievedRate: rep.AchievedRate,
			WallSeconds:  rep.WallSeconds,
			Ops:          rep.Ops,
			Errors:       rep.Errors,
			MatchRate:    rep.MatchRate,
			Client:       rep.Latency,
			PerOp:        rep.PerOp,
		}
		if cfg.Observe != nil {
			cfg.Observe(&step, rep)
		}
		f.Steps = append(f.Steps, step)
		logf("rate %.0f/s: achieved %.0f/s, p50 %.2f ms, p99 %.2f ms, match %.2f",
			rep.OfferedRate, rep.AchievedRate, rep.Latency.P50, rep.Latency.P99, rep.MatchRate)
	}
	return f, nil
}

// Gate is the CI regression budget applied to a frontier.
type Gate struct {
	// MaxP99MS bounds the client p99 of the *lowest* rate step — the
	// uncontended service latency; saturation steps are deliberately not
	// gated (they measure the knee, which moves with hardware).
	MaxP99MS float64
	// MinMatchRate is the floor applied to every step's match rate.
	MinMatchRate float64
	// MaxErrors bounds harness-visible errors (transport, 5xx) across
	// the whole sweep; domain rejections are never errors.
	MaxErrors int64
}

// Check returns the gate violations, empty when the frontier passes.
func (f *Frontier) Check(g Gate) []string {
	var out []string
	if len(f.Steps) == 0 {
		return []string{"frontier has no steps"}
	}
	if g.MaxP99MS > 0 {
		if p99 := f.Steps[0].Client.P99; p99 > g.MaxP99MS {
			out = append(out, fmt.Sprintf("lowest-rate p99 %.2f ms exceeds budget %.2f ms", p99, g.MaxP99MS))
		}
	}
	var errs int64
	for _, s := range f.Steps {
		errs += s.Errors
		if g.MinMatchRate > 0 && s.MatchRate < g.MinMatchRate {
			out = append(out, fmt.Sprintf("rate %.0f/s match rate %.3f below floor %.3f",
				s.OfferedRate, s.MatchRate, g.MinMatchRate))
		}
	}
	if errs > g.MaxErrors {
		out = append(out, fmt.Sprintf("%d harness errors exceed budget %d", errs, g.MaxErrors))
	}
	return out
}

// MemoryStats is the per-step memory capture.
type MemoryStats struct {
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	SysBytes       uint64 `json:"sys_bytes"`
	RSSBytes       uint64 `json:"rss_bytes,omitempty"`
	ActiveRides    int    `json:"active_rides"`
	// IndexBytes is the deep size of the live ride index — the
	// reproduction's stand-in for the paper's Classmexer measurement
	// (Fig 3c), now tracked per load step. With component accounting on
	// (engine Config.Memory) this is the index *component*: ride state
	// only, the static world attributed to its own components. Without
	// accounting it falls back to a quiescent memsize.Of walk of the
	// whole index view, which pulls the discretization in too — the two
	// modes are not comparable.
	IndexBytes uint64 `json:"index_bytes"`
	// RidesPerGB extrapolates index capacity: active rides per GB of
	// index memory. The ROADMAP's memory-compaction arc is judged by
	// moving this number up.
	RidesPerGB float64 `json:"rides_per_gb"`
	// Components is the per-component retained-byte breakdown from the
	// engine's accounting sweep (absent without Config.Memory): which
	// subsystem owns the bytes, not just how many there are.
	Components map[string]uint64 `json:"components,omitempty"`
	// TrackedTotalBytes sums Components — the registry's estimate of all
	// tracked retained memory.
	TrackedTotalBytes uint64 `json:"tracked_total_bytes,omitempty"`
}

// MeasureEngine captures the in-process engine's memory state: Go heap,
// OS RSS, and the component breakdown from a fresh accounting sweep
// (engines without Config.Memory fall back to a quiescent deep walk of
// the index view).
func MeasureEngine(eng *core.Engine) *MemoryStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := &MemoryStats{
		HeapAllocBytes: ms.HeapAlloc,
		SysBytes:       ms.Sys,
		RSSBytes:       readRSS(),
		ActiveRides:    eng.NumRides(),
	}
	if rep := eng.MemSweep(); rep != nil {
		st.IndexBytes = rep.IndexBytes
		st.RidesPerGB = rep.RidesPerGB
		st.TrackedTotalBytes = rep.TrackedTotalBytes
		st.Components = make(map[string]uint64, len(rep.Components))
		for _, c := range rep.Components {
			st.Components[c.Name] = c.Bytes
		}
		return st
	}
	st.IndexBytes = memsize.Of(eng.Index())
	if st.IndexBytes > 0 && st.ActiveRides > 0 {
		st.RidesPerGB = float64(st.ActiveRides) / (float64(st.IndexBytes) / (1 << 30))
	}
	return st
}

// ProfileStats is the per-step profile attribution recorded into
// BENCH_scale.json: for each profile kind that saw samples during the
// step, the hottest symbol and its share of the kind's total. The
// cumulative kinds (heap_alloc, mutex, block) are deltas against the
// previous capture, so with one capture per step each entry covers
// exactly that step.
type ProfileStats struct {
	CaptureID uint64               `json:"capture_id"`
	Top       map[string]TopSymbol `json:"top"`
}

// TopSymbol is one kind's hottest function in a step.
type TopSymbol struct {
	Func  string  `json:"func"`
	Share float64 `json:"share"` // fraction of the kind's total
}

// MeasureProfile takes a fresh capture and reduces it to the per-kind
// top-symbol attribution. Nil profiler → nil (the field is omitted).
func MeasureProfile(p *profile.Profiler) *ProfileStats {
	if p == nil {
		return nil
	}
	c := p.CaptureNow()
	if c == nil {
		return nil
	}
	st := &ProfileStats{CaptureID: c.ID, Top: map[string]TopSymbol{}}
	for _, kind := range profile.Kinds {
		if fn, share := profile.TopSymbol(c, kind); fn != "" {
			st.Top[kind] = TopSymbol{Func: fn, Share: share}
		}
	}
	return st
}

// readRSS returns the process resident set in bytes via /proc/self/statm
// (0 where that does not exist — RSS is then omitted from the JSON).
func readRSS() uint64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return pages * uint64(os.Getpagesize())
}
