package core

import (
	"sort"
	"sync"
	"testing"

	"xar/internal/index"
)

func TestSocialGraphDistance(t *testing.T) {
	g := NewSocialGraph()
	g.AddFriendship(1, 2)
	g.AddFriendship(2, 3)
	g.AddFriendship(3, 4)
	g.AddFriendship(1, 1) // self: ignored

	cases := []struct {
		a, b  UserID
		depth int
		want  int
	}{
		{1, 1, 3, 0},
		{1, 2, 3, 1},
		{1, 3, 3, 2},
		{1, 4, 3, 3},
		{1, 4, 2, 3},  // beyond depth 2 → depth+1
		{1, 99, 3, 4}, // unknown user → depth+1
		{1, 2, 0, 1},  // degenerate depth
	}
	for _, tc := range cases {
		if got := g.Distance(tc.a, tc.b, tc.depth); got != tc.want {
			t.Errorf("Distance(%d,%d,depth=%d) = %d, want %d", tc.a, tc.b, tc.depth, got, tc.want)
		}
	}
	if g.Friends(2) != 2 {
		t.Fatalf("Friends(2) = %d", g.Friends(2))
	}
	if g.Friends(1) != 1 {
		t.Fatalf("Friends(1) = %d (self-friendship must be ignored)", g.Friends(1))
	}
}

func TestSocialGraphConcurrent(t *testing.T) {
	g := NewSocialGraph()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				g.AddFriendship(UserID(w), UserID(i))
				g.Distance(UserID(w), UserID(i), 2)
			}
		}(w)
	}
	wg.Wait()
}

func TestRankSocially(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)

	// Three drivers: 30 is a friend, 20 a friend-of-friend, 10 a stranger.
	ids := map[UserID]index.RideID{}
	for _, owner := range []UserID{10, 20, 30} {
		id, err := e.CreateRide(RideOffer{
			Source: src, Dest: dst, Departure: 1000, DetourLimit: 1500, Owner: owner,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[owner] = id
	}
	social := NewSocialGraph()
	const requester UserID = 1
	social.AddFriendship(requester, 30)
	social.AddFriendship(requester, 5)
	social.AddFriendship(5, 20)

	r := e.Ride(ids[10])
	req := requestAlong(e, r, 0.2, 0.8, 3600, 900)
	ms, err := e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) < 3 {
		t.Skipf("only %d matches; layout-dependent", len(ms))
	}
	ranked := e.RankSocially(ms, requester, social)
	if len(ranked) != len(ms) {
		t.Fatal("ranking changed the match count")
	}
	pos := map[index.RideID]int{}
	for i, m := range ranked {
		pos[m.Ride] = i
	}
	if pos[ids[30]] > pos[ids[20]] || pos[ids[20]] > pos[ids[10]] {
		t.Fatalf("social order violated: friend at %d, FoF at %d, stranger at %d",
			pos[ids[30]], pos[ids[20]], pos[ids[10]])
	}
	// The same match set survives (permutation).
	orig := make([]index.RideID, len(ms))
	perm := make([]index.RideID, len(ms))
	for i := range ms {
		orig[i] = ms[i].Ride
		perm[i] = ranked[i].Ride
	}
	sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
	sort.Slice(perm, func(i, j int) bool { return perm[i] < perm[j] })
	for i := range orig {
		if orig[i] != perm[i] {
			t.Fatal("ranking dropped or invented matches")
		}
	}
	// Nil graph and short slices are no-ops.
	if got := e.RankSocially(ms, requester, nil); len(got) != len(ms) {
		t.Fatal("nil graph must be a no-op")
	}
	if got := e.RankSocially(ms[:1], requester, social); len(got) != 1 {
		t.Fatal("single match must pass through")
	}
}

func TestSearchBatch(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 1500})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)

	reqs := make([]Request, 24)
	for i := range reqs {
		frac := 0.1 + float64(i%8)*0.05
		reqs[i] = requestAlong(e, r, frac, frac+0.5, 3600, 900)
	}
	batch, errs := e.SearchBatch(reqs, 0, 4)
	if len(batch) != len(reqs) || len(errs) != len(reqs) {
		t.Fatal("result shape mismatch")
	}
	// Results must equal sequential searches.
	for i, req := range reqs {
		seq, serr := e.Search(req)
		if (serr == nil) != (errs[i] == nil) {
			t.Fatalf("request %d: error mismatch %v vs %v", i, errs[i], serr)
		}
		if len(seq) != len(batch[i]) {
			t.Fatalf("request %d: %d matches vs %d sequential", i, len(batch[i]), len(seq))
		}
	}
	// Empty input.
	empty, _ := e.SearchBatch(nil, 0, 4)
	if len(empty) != 0 {
		t.Fatal("empty batch must be empty")
	}
}

func TestTrackPosition(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, DetourLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	g := e.disc.City().Graph

	// Report a position half-way down the route.
	mid := g.Point(r.Route[len(r.Route)/2])
	arrived, err := e.TrackPosition(id, mid)
	if err != nil {
		t.Fatal(err)
	}
	if arrived {
		t.Fatal("mid-route report must not arrive")
	}
	// e.Ride returns a snapshot; re-fetch to observe each advance.
	if p := e.Ride(id).Progress; p < len(r.Route)/2-1 {
		t.Fatalf("progress %d after mid-route report", p)
	}
	// A jittery report near the start must not move the ride backwards.
	before := e.Ride(id).Progress
	if _, err := e.TrackPosition(id, g.Point(r.Route[0])); err != nil {
		t.Fatal(err)
	}
	if e.Ride(id).Progress < before {
		t.Fatal("GPS jitter moved the ride backwards")
	}
	// Destination report arrives.
	arrived, err = e.TrackPosition(id, g.Point(r.Route[len(r.Route)-1]))
	if err != nil {
		t.Fatal(err)
	}
	if !arrived {
		t.Fatal("destination report must arrive")
	}
	if _, err := e.TrackPosition(999, mid); err != ErrUnknownRide {
		t.Fatalf("err = %v, want ErrUnknownRide", err)
	}
}
