package core

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"

	"xar/internal/telemetry"
)

// tracedEngine builds a test engine with an always-sample tracer (and a
// registry, so exemplar cross-links can be asserted).
func tracedEngine(t testing.TB, mutate func(*Config)) (*Engine, *telemetry.Registry, *telemetry.Tracer) {
	t.Helper()
	tracer := telemetry.NewTracer(telemetry.TracerConfig{SampleRate: 1})
	e, reg := newInstrumentedEngine(t, func(cfg *Config) {
		cfg.Tracer = tracer
		if mutate != nil {
			mutate(cfg)
		}
	})
	return e, reg, tracer
}

// spanNames collects the multiset of span names in a trace.
func spanNames(td *telemetry.TraceData) map[string]int {
	out := make(map[string]int)
	for _, sd := range td.Spans {
		out[sd.Name]++
	}
	out[td.Root]++
	return out
}

func TestSearchTraceShardFanOut(t *testing.T) {
	for _, tc := range []struct{ shards, workers int }{
		{4, 0}, // serial per-shard loop
		{4, 4}, // parallel fan-out
	} {
		t.Run(fmt.Sprintf("shards%d_workers%d", tc.shards, tc.workers), func(t *testing.T) {
			e, _, tracer := tracedEngine(t, func(cfg *Config) {
				cfg.IndexShards = tc.shards
				cfg.SearchWorkers = tc.workers
			})
			src, dst := farPoints(t, e)
			id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500})
			if err != nil {
				t.Fatal(err)
			}
			req := requestAlong(e, e.Ride(id), 0.3, 0.7, 3600, 900)

			ms, err := e.Search(req)
			if err != nil {
				t.Fatal(err)
			}

			traces := tracer.Store().List(telemetry.TraceFilter{Op: "search"})
			if len(traces) == 0 {
				t.Fatal("no search trace recorded")
			}
			td := traces[0]
			names := spanNames(td)
			if names["search_shard"] != tc.shards {
				t.Fatalf("search_shard spans = %d, want one per shard (%d); spans: %v",
					names["search_shard"], tc.shards, names)
			}
			if names["side_lookup"] != 1 {
				t.Fatalf("side_lookup spans = %d, want 1", names["side_lookup"])
			}

			// The span tree nests shard spans under the search root, each
			// stamped with its shard number and timings.
			doc := td.Doc()
			if len(doc.Tree) != 1 || doc.Tree[0].Name != "search" {
				t.Fatalf("trace tree = %+v, want single search root", doc.Tree)
			}
			if got := doc.Tree[0].Attrs["matches"]; got != float64(len(ms)) {
				t.Fatalf("root matches attr = %v, want %d", got, len(ms))
			}
			seen := make(map[float64]bool)
			totalShardMatches := 0.0
			for _, c := range doc.Tree[0].Children {
				if c.Name != "search_shard" {
					continue
				}
				sh, ok := c.Attrs["shard"].(float64)
				if !ok || seen[sh] {
					t.Fatalf("shard span attrs bad or duplicated: %+v", c.Attrs)
				}
				seen[sh] = true
				if _, ok := c.Attrs["candidate_scan_s"]; !ok {
					t.Fatalf("shard span missing candidate_scan_s: %+v", c.Attrs)
				}
				totalShardMatches += c.Attrs["matches"].(float64)
			}
			if totalShardMatches != float64(len(ms)) {
				t.Fatalf("shard matches sum to %v, want %d", totalShardMatches, len(ms))
			}
		})
	}
}

func TestBookTracePathSearchSpans(t *testing.T) {
	e, _, tracer := tracedEngine(t, nil)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500})
	if err != nil {
		t.Fatal(err)
	}

	// The create trace carries the offer's one shortest-path span.
	creates := tracer.Store().List(telemetry.TraceFilter{Op: "create"})
	if len(creates) != 1 {
		t.Fatalf("create traces = %d, want 1", len(creates))
	}
	if n := spanNames(creates[0])["path_search"]; n != 1 {
		t.Fatalf("create trace path_search spans = %d, want 1", n)
	}

	req := requestAlong(e, e.Ride(id), 0.3, 0.7, 3600, 900)
	ms, err := e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("corridor search found no match on the seeded world")
	}
	bk, err := e.Book(ms[0], req)
	if err != nil {
		t.Fatal(err)
	}

	books := tracer.Store().List(telemetry.TraceFilter{Op: "book"})
	if len(books) != 1 {
		t.Fatalf("book traces = %d, want 1", len(books))
	}
	td := books[0]
	names := spanNames(td)
	if names["book_attempt"] < 1 {
		t.Fatalf("no book_attempt span; spans: %v", names)
	}
	if names["path_search"] != bk.ShortestPathRuns {
		t.Fatalf("path_search spans = %d, want the booking's %d shortest-path runs",
			names["path_search"], bk.ShortestPathRuns)
	}
	doc := td.Doc()
	if got := doc.Tree[0].Attrs["conflict_retries"]; got != float64(0) {
		t.Fatalf("conflict_retries attr = %v, want 0 (uncontended)", got)
	}
	// path_search spans nest under the attempt, not the root.
	var attempt *telemetry.SpanDoc
	for i := range doc.Tree[0].Children {
		if doc.Tree[0].Children[i].Name == "book_attempt" {
			attempt = &doc.Tree[0].Children[i]
		}
	}
	if attempt == nil {
		t.Fatalf("book_attempt not a direct child of book: %+v", doc.Tree[0].Children)
	}
	if got := attempt.Attrs["attempt"]; got != float64(1) {
		t.Fatalf("attempt attr = %v, want 1", got)
	}
	paths := 0
	for _, c := range attempt.Children {
		if c.Name == "path_search" {
			paths++
			if _, ok := c.Attrs["dist"]; !ok {
				t.Fatalf("path_search span missing dist attr: %+v", c.Attrs)
			}
		}
	}
	if paths != bk.ShortestPathRuns {
		t.Fatalf("path_search under attempt = %d, want %d", paths, bk.ShortestPathRuns)
	}

	// Cancel re-stitches with shortest paths, each traced.
	if err := e.CancelBooking(bk.Ride, bk.PickupNode, bk.DropoffNode); err != nil {
		t.Fatal(err)
	}
	cancels := tracer.Store().List(telemetry.TraceFilter{Op: "cancel"})
	if len(cancels) != 1 {
		t.Fatalf("cancel traces = %d, want 1", len(cancels))
	}
	if n := spanNames(cancels[0])["path_search"]; n == 0 {
		t.Fatal("cancel trace has no path_search spans")
	}
}

func TestTraceExemplarCrossLink(t *testing.T) {
	e, reg, tracer := tracedEngine(t, nil)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(requestAlong(e, e.Ride(id), 0.3, 0.7, 3600, 900)); err != nil {
		t.Fatal(err)
	}

	// The search histogram must carry a trace-ID exemplar that resolves
	// in the tracer's store — the metrics→traces cross-link.
	found := false
	for _, ex := range telemetry.OpDuration(reg, "search").Exemplars() {
		if ex == nil {
			continue
		}
		tid, ok := telemetry.ParseTraceID(ex.TraceID)
		if !ok {
			t.Fatalf("exemplar trace_id %q does not parse", ex.TraceID)
		}
		if _, ok := tracer.Store().Get(tid); !ok {
			t.Fatalf("exemplar trace %s not resolvable in the store", ex.TraceID)
		}
		found = true
	}
	if !found {
		t.Fatal("no exemplar on the search histogram after a traced search")
	}

	// And the rendered exposition carries it on a bucket line.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `# {trace_id="`) {
		t.Fatal("Prometheus exposition has no exemplar suffix")
	}
}

func TestEngineContinuesUpstreamTrace(t *testing.T) {
	// An engine with no tracer of its own must still record child spans
	// into a trace begun upstream (the HTTP middleware's root).
	e, _ := newInstrumentedEngine(t, func(cfg *Config) { cfg.IndexShards = 2 })
	upstream := telemetry.NewTracer(telemetry.TracerConfig{SampleRate: 1})
	ctx, root := upstream.StartRoot(context.Background(), "/v1/search", telemetry.TraceID{}, telemetry.SpanID{})

	src, dst := farPoints(t, e)
	id, err := e.CreateRideCtx(ctx, RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SearchCtx(ctx, requestAlong(e, e.Ride(id), 0.3, 0.7, 3600, 900)); err != nil {
		t.Fatal(err)
	}
	root.End()

	td, ok := upstream.Store().Get(root.TraceID())
	if !ok {
		t.Fatal("upstream trace not stored")
	}
	names := spanNames(td)
	for _, want := range []string{"create", "path_search", "search", "search_shard", "side_lookup"} {
		if names[want] == 0 {
			t.Fatalf("upstream trace missing %q spans; got %v", want, names)
		}
	}
	if names["search_shard"] != 2 {
		t.Fatalf("search_shard spans = %d, want 2", names["search_shard"])
	}
}

func TestTraceRecordedSearchAlwaysTimed(t *testing.T) {
	// A trace-recorded search is fully timed into the histograms even
	// when the 1-in-N metric sampler skips it, so every stored trace has
	// an exemplar-capable observation.
	tracer := telemetry.NewTracer(telemetry.TracerConfig{SampleRate: 1})
	e, reg := newInstrumentedEngine(t, func(cfg *Config) {
		cfg.Tracer = tracer
		cfg.SearchSampleRate = 1 << 20 // metric sampler effectively off
	})
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500})
	if err != nil {
		t.Fatal(err)
	}
	req := requestAlong(e, e.Ride(id), 0.3, 0.7, 3600, 900)
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := e.Search(req); err != nil {
			t.Fatal(err)
		}
	}
	if got := telemetry.OpDuration(reg, "search").Count(); got != n {
		t.Fatalf("search observations = %d, want %d (every traced search timed)", got, n)
	}
}

func TestSlowOpLogCarriesTraceID(t *testing.T) {
	tracer := telemetry.NewTracer(telemetry.TracerConfig{SampleRate: 1})
	rec := &recordingHandler{}
	e, _ := newInstrumentedEngine(t, func(cfg *Config) {
		cfg.Tracer = tracer
		cfg.SlowOpThreshold = time.Nanosecond // everything is "slow"
		cfg.SlowOpLogger = slog.New(rec)
	})
	src, dst := farPoints(t, e)
	if _, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500}); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.records) == 0 {
		t.Fatal("no slow-op records")
	}
	id, ok := rec.records[0]["trace_id"].(string)
	if !ok || id == "" {
		t.Fatalf("slow-op record missing trace_id: %v", rec.records[0])
	}
	tid, ok := telemetry.ParseTraceID(id)
	if !ok {
		t.Fatalf("trace_id %q does not parse", id)
	}
	if _, ok := tracer.Store().Get(tid); !ok {
		t.Fatalf("slow-op trace %s not resolvable in the store", id)
	}
}

func TestShardGaugesFreshEngine(t *testing.T) {
	// Satellite: a freshly started engine must expose every shard's
	// series — including empty ones — and refresh them at scrape time.
	e, reg := newInstrumentedEngine(t, func(cfg *Config) { cfg.IndexShards = 4 })
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := fmt.Sprintf(`xar_index_shard_rides{shard="%d"} 0`, i)
		if !strings.Contains(b.String(), want) {
			t.Fatalf("fresh engine exposition missing %q:\n%s", want, b.String())
		}
	}

	// After a mutation, the next scrape reflects the new counts.
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500})
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`xar_index_shard_rides{shard="%d"} 1`, int(id)%4)
	if !strings.Contains(b.String(), want) {
		t.Fatalf("post-create exposition missing %q:\n%s", want, b.String())
	}
}
