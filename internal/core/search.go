package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xar/internal/geo"
	"xar/internal/index"
)

// Search implements the optimized two-step ride search of §VII. It never
// computes a shortest path:
//
//	Step 1 — source side: map the request source to its grid, prune the
//	grid's sorted walkable-cluster list by the requester's walk limit,
//	and for each feasible cluster pull the potential rides whose ETA
//	falls in the departure window (binary search on the by-ETA order).
//
//	Step 2 — destination side: the same from the destination, with the
//	window extended by DestWindowSlack; then intersect the two candidate
//	sets (by-ID order membership tests).
//
// Finally each surviving ride is checked for combined walking distance
// (≤ the request's limit), combined cluster-approximated detour (≤ the
// ride's remaining budget), pickup-before-drop-off ordering, and seat
// availability. Matches are returned sorted by total walking distance,
// the quantity the paper's simulation minimizes.
//
// Concurrency: rides are striped across index shards, and every step
// after the (lock-free) walkable-side lookup is shard-local — a ride's
// source candidates, destination candidates, intersection and final
// checks all live in the shard that owns the ride. The search therefore
// visits shards one at a time, holding only that shard's read lock, and
// merges the per-shard matches at the end; concurrent mutations block it
// on at most one stripe. With Config.SearchWorkers > 0 the per-shard
// work fans out over a worker pool (large fleets, otherwise idle CPUs).
func (e *Engine) Search(req Request) ([]Match, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// Searches are sampled (Config.SearchSampleRate): a traced search
	// records the op histogram plus the per-stage breakdown below. The
	// sampling sequence rides on the metrics counter the search already
	// increments, so an unsampled search pays only a mask test.
	n := e.m.searches.Add(1)
	traced := e.tel != nil && uint32(n)&e.tel.sampleMask == 0
	var start time.Time
	if traced {
		start = time.Now()
	}
	out, err := e.search(req, traced)
	e.m.searchMatches.Add(uint64(len(out)))
	if traced {
		e.tel.observeOp(opSearch, time.Since(start))
	}
	return out, err
}

// SearchK returns at most k matches (the best k by walking distance).
// k <= 0 means no limit. It mirrors the paper's Figure 5a experiment,
// where the candidate retrieval cost of XAR is insensitive to k.
func (e *Engine) SearchK(req Request, k int) ([]Match, error) {
	ms, err := e.Search(req)
	if err != nil {
		return nil, err
	}
	if k > 0 && len(ms) > k {
		ms = ms[:k]
	}
	return ms, nil
}

type sideCandidate struct {
	cluster int
	walk    float64
}

// shardSearchResult carries one shard's matches plus its stage timings
// (zero unless the search is traced). Timings are accumulated per shard
// and summed after the join, so the parallel fan-out needs no shared
// clocks; under workers the sums measure CPU time, not wall time.
type shardSearchResult struct {
	matches          []Match
	cand, final      time.Duration
	walkPair, detour time.Duration
}

// searchScratch holds the per-shard working set of one search worker:
// the source/destination candidate maps and the posting-list pull
// buffer. One scratch is reused across every shard a worker visits
// (maps cleared between shards), so the per-shard cost of the sharded
// search is lock + scan, not two map allocations per stripe — that
// reuse is what keeps the single-threaded latency at the unsharded
// level.
type searchScratch struct {
	r1, r2 map[index.RideID]sideCandidate
	ids    []index.RideID
	// results is the per-shard result array of one search (serial path
	// only; the parallel path needs a private array per search anyway).
	results []shardSearchResult
}

func newSearchScratch() *searchScratch {
	return &searchScratch{
		r1: make(map[index.RideID]sideCandidate),
		r2: make(map[index.RideID]sideCandidate),
	}
}

func (s *searchScratch) reset() {
	clear(s.r1)
	clear(s.r2)
}

func (e *Engine) search(req Request, traced bool) ([]Match, error) {
	var tel *engineTelemetry
	if traced {
		tel = e.tel
	}
	var mark time.Time
	if tel != nil {
		mark = time.Now()
	}

	// Walkable-side resolution reads only the immutable discretization.
	srcSide, err := e.walkableSide(req.Source, req.WalkLimit)
	if err != nil {
		return nil, err
	}
	dstSide, err := e.walkableSide(req.Dest, req.WalkLimit)
	if err != nil {
		return nil, err
	}
	if tel != nil {
		tel.stages[stageSideLookup].ObserveDuration(time.Since(mark))
	}

	nsh := e.ix.NumShards()
	var results []shardSearchResult
	workers := e.cfg.SearchWorkers
	if workers > nsh {
		workers = nsh
	}
	if workers <= 1 {
		scratch := e.scratchPool.Get().(*searchScratch)
		if cap(scratch.results) < nsh {
			scratch.results = make([]shardSearchResult, nsh)
		}
		results = scratch.results[:nsh]
		for i := 0; i < nsh; i++ {
			results[i] = e.searchShard(i, req, srcSide, dstSide, traced, scratch)
		}
		defer e.scratchPool.Put(scratch)
	} else {
		results = make([]shardSearchResult, nsh)
		// Opt-in parallel candidate evaluation: workers claim shards off
		// an atomic cursor; each shard is still processed under only its
		// own read lock.
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				scratch := e.scratchPool.Get().(*searchScratch)
				defer e.scratchPool.Put(scratch)
				for {
					i := int(cursor.Add(1)) - 1
					if i >= nsh {
						return
					}
					results[i] = e.searchShard(i, req, srcSide, dstSide, traced, scratch)
				}
			}()
		}
		wg.Wait()
	}

	var out []Match
	var candTime, finalTime, walkPairTime, detourTime time.Duration
	for i := range results {
		out = append(out, results[i].matches...)
		candTime += results[i].cand
		finalTime += results[i].final
		walkPairTime += results[i].walkPair
		detourTime += results[i].detour
	}
	var sortMark time.Time
	if tel != nil {
		sortMark = time.Now()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalWalk() != out[j].TotalWalk() {
			return out[i].TotalWalk() < out[j].TotalWalk()
		}
		return out[i].Ride < out[j].Ride
	})
	if tel != nil {
		tel.stages[stageCandidate].ObserveDuration(candTime)
		tel.stages[stageFinalCheck].ObserveDuration(finalTime + time.Since(sortMark))
		if walkPairTime > 0 {
			tel.stages[stageWalkPair].ObserveDuration(walkPairTime)
		}
		if detourTime > 0 {
			tel.stages[stageDetourCheck].ObserveDuration(detourTime)
		}
	}
	return out, nil
}

// searchShard runs steps 1+2 and the final checks against one shard's
// posting lists, under that shard's read lock only.
func (e *Engine) searchShard(shard int, req Request, srcSide, dstSide []sideCandidate, traced bool, s *searchScratch) shardSearchResult {
	var res shardSearchResult
	var mark time.Time
	if traced {
		mark = time.Now()
	}
	sh := e.ix.Shard(shard)
	sh.RLock()
	defer sh.RUnlock()
	ix := sh.Ix

	// Step 1: source-side candidates among this shard's rides. For each
	// ride remember the best (least-walk) source cluster that produced it.
	r1 := s.r1
	for _, sc := range srcSide {
		s.ids = ix.PotentialRides(sc.cluster, req.EarliestDeparture, req.LatestDeparture, s.ids[:0])
		for _, id := range s.ids {
			if prev, ok := r1[id]; !ok || sc.walk < prev.walk {
				r1[id] = sideCandidate{cluster: sc.cluster, walk: sc.walk}
			}
		}
	}
	if len(r1) == 0 {
		if traced {
			res.cand = time.Since(mark)
		}
		return res
	}
	defer s.reset()

	// Step 2: destination-side candidates and intersection R1 ∩ R2.
	// The destination window extends past the departure window because
	// the drop-off happens after the pickup.
	destT2 := req.LatestDeparture + e.cfg.DestWindowSlack
	r2 := s.r2
	for _, dc := range dstSide {
		s.ids = ix.PotentialRides(dc.cluster, req.EarliestDeparture, destT2, s.ids[:0])
		for _, id := range s.ids {
			if _, inR1 := r1[id]; !inR1 {
				continue // intersection only
			}
			if prev, ok := r2[id]; !ok || dc.walk < prev.walk {
				r2[id] = sideCandidate{cluster: dc.cluster, walk: dc.walk}
			}
		}
	}
	if traced {
		now := time.Now()
		res.cand = now.Sub(mark)
		mark = now
	}

	// Final checks on the intersection.
	for id, dst := range r2 {
		src := r1[id]
		r := ix.Ride(id)
		if r == nil || r.SeatsAvail <= 0 {
			continue
		}
		// Combined walking distance within the requester's limit. The
		// per-side lists were pruned by the full limit, so the sum needs
		// its own check.
		if src.walk+dst.walk > req.WalkLimit {
			// The best-walk cluster pair may fail while another pair
			// passes; try to find any feasible pair cheaply by scanning
			// the (short, sorted) walkable lists again.
			var ok bool
			if traced {
				t0 := time.Now()
				src, dst, ok = bestWalkPair(ix, srcSide, dstSide, id, req)
				res.walkPair += time.Since(t0)
			} else {
				src, dst, ok = bestWalkPair(ix, srcSide, dstSide, id, req)
			}
			if !ok {
				continue
			}
		}
		var m Match
		var ok bool
		if traced {
			t0 := time.Now()
			m, ok = checkDetourAndOrder(ix, r, src.cluster, dst.cluster)
			res.detour += time.Since(t0)
		} else {
			m, ok = checkDetourAndOrder(ix, r, src.cluster, dst.cluster)
		}
		if !ok {
			continue
		}
		m.WalkSource = src.walk
		m.WalkDest = dst.walk
		res.matches = append(res.matches, m)
	}
	if traced {
		res.final = time.Since(mark)
	}
	return res
}

// walkableSide resolves a request endpoint to its walkable-cluster list
// pruned by the requester's walk limit (a linear scan over the sorted
// list, per §IV). An endpoint with no walkable cluster returns
// ErrNotServable.
func (e *Engine) walkableSide(p geo.Point, limit float64) ([]sideCandidate, error) {
	gi := e.disc.Info(e.disc.GridAt(p))
	if gi == nil {
		return nil, ErrNotServable
	}
	pruned := gi.WalkableWithin(limit)
	if len(pruned) == 0 {
		return nil, ErrNotServable
	}
	side := make([]sideCandidate, len(pruned))
	for i, wc := range pruned {
		side[i] = sideCandidate{cluster: wc.Cluster, walk: wc.Walk}
	}
	return side, nil
}

// bestWalkPair searches for the least-total-walk (source, dest) cluster
// pair for which the ride is listed on both sides and the total walk fits
// the limit. Walkable lists are sorted by walk, so it can stop early.
// The caller holds the read lock of the shard owning ix.
func bestWalkPair(ix *index.Index, srcSide, dstSide []sideCandidate, id index.RideID, req Request) (s, d sideCandidate, ok bool) {
	best := req.WalkLimit + 1
	for _, sc := range srcSide {
		if sc.walk >= best {
			break
		}
		if _, listed := ix.HasPotentialRide(sc.cluster, id); !listed {
			continue
		}
		for _, dc := range dstSide {
			total := sc.walk + dc.walk
			if total >= best || total > req.WalkLimit {
				break
			}
			if _, listed := ix.HasPotentialRide(dc.cluster, id); !listed {
				continue
			}
			best = total
			s, d, ok = sc, dc, true
			break
		}
	}
	return s, d, ok
}

// checkDetourAndOrder validates that the ride can serve pickup cluster cs
// then drop-off cluster cd within its remaining detour budget, using only
// the precomputed supports: pick the support pair (ps, pd) with
// ps.Order ≤ pd.Order minimizing combined detour. The caller holds (at
// least) the read lock of the shard owning ix and r.
func checkDetourAndOrder(ix *index.Index, r *index.Ride, cs, cd int) (Match, bool) {
	sups := ix.Supports(r.ID, cs)
	dups := ix.Supports(r.ID, cd)
	if len(sups) == 0 || len(dups) == 0 {
		return Match{}, false
	}
	bestTotal := r.DetourLimit + 1
	var bm Match
	found := false
	for _, s := range sups {
		if s.Detour >= bestTotal {
			break // sorted by detour
		}
		for _, d := range dups {
			total := s.Detour + d.Detour
			if total >= bestTotal {
				break
			}
			if d.Order < s.Order {
				continue // drop-off support precedes pickup support
			}
			if d.ETA < s.ETA {
				continue // estimated drop-off before estimated pickup
			}
			if total > r.DetourLimit {
				continue
			}
			bestTotal = total
			bm = Match{
				Ride:           r.ID,
				PickupCluster:  cs,
				DropoffCluster: cd,
				DetourEstimate: total,
				PickupETA:      s.ETA,
				DropoffETA:     d.ETA,
				pickupOrder:    s.Order,
				dropoffOrder:   d.Order,
				pickupSegv:     s.Seg,
				dropoffSegv:    d.Seg,
			}
			found = true
			break
		}
	}
	return bm, found
}
