package core

import (
	"sort"
	"time"

	"xar/internal/geo"
	"xar/internal/index"
)

// Search implements the optimized two-step ride search of §VII. It never
// computes a shortest path:
//
//	Step 1 — source side: map the request source to its grid, prune the
//	grid's sorted walkable-cluster list by the requester's walk limit,
//	and for each feasible cluster pull the potential rides whose ETA
//	falls in the departure window (binary search on the by-ETA order).
//
//	Step 2 — destination side: the same from the destination, with the
//	window extended by DestWindowSlack; then intersect the two candidate
//	sets (by-ID order membership tests).
//
// Finally each surviving ride is checked for combined walking distance
// (≤ the request's limit), combined cluster-approximated detour (≤ the
// ride's remaining budget), pickup-before-drop-off ordering, and seat
// availability. Matches are returned sorted by total walking distance,
// the quantity the paper's simulation minimizes.
func (e *Engine) Search(req Request) ([]Match, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// Searches are sampled (Config.SearchSampleRate): a traced search
	// records the op histogram plus the per-stage breakdown below. The
	// sampling sequence rides on the metrics counter the search already
	// increments, so an unsampled search pays only a mask test — the op
	// timer therefore measures in-lock time (lock wait excluded; the
	// HTTP middleware captures end-to-end latency for every request).
	e.mu.RLock()
	n := e.m.searches.Add(1)
	traced := e.tel != nil && uint32(n)&e.tel.sampleMask == 0
	var start time.Time
	if traced {
		start = time.Now()
	}
	out, err := e.searchLocked(req, traced)
	e.m.searchMatches.Add(uint64(len(out)))
	e.mu.RUnlock()
	if traced {
		e.tel.observeOp(opSearch, time.Since(start))
	}
	return out, err
}

// SearchK returns at most k matches (the best k by walking distance).
// k <= 0 means no limit. It mirrors the paper's Figure 5a experiment,
// where the candidate retrieval cost of XAR is insensitive to k.
func (e *Engine) SearchK(req Request, k int) ([]Match, error) {
	ms, err := e.Search(req)
	if err != nil {
		return nil, err
	}
	if k > 0 && len(ms) > k {
		ms = ms[:k]
	}
	return ms, nil
}

type sideCandidate struct {
	cluster int
	walk    float64
}

func (e *Engine) searchLocked(req Request, traced bool) ([]Match, error) {
	// Stage clock: one time.Now() per stage boundary when this search is
	// traced (plus two per candidate in the final loop); zero otherwise.
	var tel *engineTelemetry
	if traced {
		tel = e.tel
	}
	var mark time.Time
	if tel != nil {
		mark = time.Now()
	}

	srcSide, err := e.walkableSide(req.Source, req.WalkLimit)
	if err != nil {
		return nil, err
	}
	dstSide, err := e.walkableSide(req.Dest, req.WalkLimit)
	if err != nil {
		return nil, err
	}
	if tel != nil {
		now := time.Now()
		tel.stages[stageSideLookup].ObserveDuration(now.Sub(mark))
		mark = now
	}

	// Step 1: source-side candidates. For each ride remember the best
	// (least-walk) source cluster that produced it.
	r1 := make(map[index.RideID]sideCandidate)
	var scratch []index.RideID
	for _, sc := range srcSide {
		scratch = e.ix.PotentialRides(sc.cluster, req.EarliestDeparture, req.LatestDeparture, scratch[:0])
		for _, id := range scratch {
			if prev, ok := r1[id]; !ok || sc.walk < prev.walk {
				r1[id] = sideCandidate{cluster: sc.cluster, walk: sc.walk}
			}
		}
	}
	if len(r1) == 0 {
		if tel != nil {
			tel.stages[stageCandidate].ObserveDuration(time.Since(mark))
		}
		return nil, nil
	}

	// Step 2: destination-side candidates and intersection R1 ∩ R2.
	// The destination window extends past the departure window because
	// the drop-off happens after the pickup.
	destT2 := req.LatestDeparture + e.cfg.DestWindowSlack
	r2 := make(map[index.RideID]sideCandidate)
	for _, dc := range dstSide {
		scratch = e.ix.PotentialRides(dc.cluster, req.EarliestDeparture, destT2, scratch[:0])
		for _, id := range scratch {
			if _, inR1 := r1[id]; !inR1 {
				continue // intersection only
			}
			if prev, ok := r2[id]; !ok || dc.walk < prev.walk {
				r2[id] = sideCandidate{cluster: dc.cluster, walk: dc.walk}
			}
		}
	}
	if tel != nil {
		now := time.Now()
		tel.stages[stageCandidate].ObserveDuration(now.Sub(mark))
		mark = now
	}

	// Final checks on the intersection.
	var out []Match
	var walkPairTime, detourTime time.Duration
	for id, dst := range r2 {
		src := r1[id]
		r := e.ix.Ride(id)
		if r == nil || r.SeatsAvail <= 0 {
			continue
		}
		// Combined walking distance within the requester's limit. The
		// per-side lists were pruned by the full limit, so the sum needs
		// its own check.
		if src.walk+dst.walk > req.WalkLimit {
			// The best-walk cluster pair may fail while another pair
			// passes; try to find any feasible pair cheaply by scanning
			// the (short, sorted) walkable lists again.
			var ok bool
			if tel != nil {
				t0 := time.Now()
				src, dst, ok = e.bestWalkPair(srcSide, dstSide, id, req)
				walkPairTime += time.Since(t0)
			} else {
				src, dst, ok = e.bestWalkPair(srcSide, dstSide, id, req)
			}
			if !ok {
				continue
			}
		}
		var m Match
		var ok bool
		if tel != nil {
			t0 := time.Now()
			m, ok = e.checkDetourAndOrder(r, src.cluster, dst.cluster)
			detourTime += time.Since(t0)
		} else {
			m, ok = e.checkDetourAndOrder(r, src.cluster, dst.cluster)
		}
		if !ok {
			continue
		}
		m.WalkSource = src.walk
		m.WalkDest = dst.walk
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalWalk() != out[j].TotalWalk() {
			return out[i].TotalWalk() < out[j].TotalWalk()
		}
		return out[i].Ride < out[j].Ride
	})
	if tel != nil {
		tel.stages[stageFinalCheck].ObserveDuration(time.Since(mark))
		if walkPairTime > 0 {
			tel.stages[stageWalkPair].ObserveDuration(walkPairTime)
		}
		if detourTime > 0 {
			tel.stages[stageDetourCheck].ObserveDuration(detourTime)
		}
	}
	return out, nil
}

// walkableSide resolves a request endpoint to its walkable-cluster list
// pruned by the requester's walk limit (a linear scan over the sorted
// list, per §IV). An endpoint with no walkable cluster returns
// ErrNotServable.
func (e *Engine) walkableSide(p geo.Point, limit float64) ([]sideCandidate, error) {
	gi := e.disc.Info(e.disc.GridAt(p))
	if gi == nil {
		return nil, ErrNotServable
	}
	pruned := gi.WalkableWithin(limit)
	if len(pruned) == 0 {
		return nil, ErrNotServable
	}
	side := make([]sideCandidate, len(pruned))
	for i, wc := range pruned {
		side[i] = sideCandidate{cluster: wc.Cluster, walk: wc.Walk}
	}
	return side, nil
}

// bestWalkPair searches for the least-total-walk (source, dest) cluster
// pair for which the ride is listed on both sides and the total walk fits
// the limit. Walkable lists are sorted by walk, so it can stop early.
func (e *Engine) bestWalkPair(srcSide, dstSide []sideCandidate, id index.RideID, req Request) (s, d sideCandidate, ok bool) {
	best := req.WalkLimit + 1
	for _, sc := range srcSide {
		if sc.walk >= best {
			break
		}
		if _, listed := e.ix.HasPotentialRide(sc.cluster, id); !listed {
			continue
		}
		for _, dc := range dstSide {
			total := sc.walk + dc.walk
			if total >= best || total > req.WalkLimit {
				break
			}
			if _, listed := e.ix.HasPotentialRide(dc.cluster, id); !listed {
				continue
			}
			best = total
			s, d, ok = sc, dc, true
			break
		}
	}
	return s, d, ok
}

// checkDetourAndOrder validates that the ride can serve pickup cluster cs
// then drop-off cluster cd within its remaining detour budget, using only
// the precomputed supports: pick the support pair (ps, pd) with
// ps.Order ≤ pd.Order minimizing combined detour.
func (e *Engine) checkDetourAndOrder(r *index.Ride, cs, cd int) (Match, bool) {
	sups := e.ix.Supports(r.ID, cs)
	dups := e.ix.Supports(r.ID, cd)
	if len(sups) == 0 || len(dups) == 0 {
		return Match{}, false
	}
	bestTotal := r.DetourLimit + 1
	var bm Match
	found := false
	for _, s := range sups {
		if s.Detour >= bestTotal {
			break // sorted by detour
		}
		for _, d := range dups {
			total := s.Detour + d.Detour
			if total >= bestTotal {
				break
			}
			if d.Order < s.Order {
				continue // drop-off support precedes pickup support
			}
			if d.ETA < s.ETA {
				continue // estimated drop-off before estimated pickup
			}
			if total > r.DetourLimit {
				continue
			}
			bestTotal = total
			bm = Match{
				Ride:           r.ID,
				PickupCluster:  cs,
				DropoffCluster: cd,
				DetourEstimate: total,
				PickupETA:      s.ETA,
				DropoffETA:     d.ETA,
				pickupOrder:    s.Order,
				dropoffOrder:   d.Order,
				pickupSegv:     s.Seg,
				dropoffSegv:    d.Seg,
			}
			found = true
			break
		}
	}
	return bm, found
}
