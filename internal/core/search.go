package core

import (
	"context"
	"math"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"xar/internal/geo"
	"xar/internal/index"
	"xar/internal/journal"
	"xar/internal/quality"
	"xar/internal/telemetry"
)

// maxCandidateEvents caps the search_candidate journal events one
// sampled search may emit — enough to reconstruct "who saw this ride"
// without letting a dense search flood the per-ride rings.
const maxCandidateEvents = 8

// Search implements the optimized two-step ride search of §VII. It never
// computes a shortest path:
//
//	Step 1 — source side: map the request source to its grid, prune the
//	grid's sorted walkable-cluster list by the requester's walk limit,
//	and for each feasible cluster pull the potential rides whose ETA
//	falls in the departure window (binary search on the by-ETA order).
//
//	Step 2 — destination side: the same from the destination, with the
//	window extended by DestWindowSlack; then intersect the two candidate
//	sets (by-ID order membership tests).
//
// Finally each surviving ride is checked for combined walking distance
// (≤ the request's limit), combined cluster-approximated detour (≤ the
// ride's remaining budget), pickup-before-drop-off ordering, and seat
// availability. Matches are returned sorted by total walking distance,
// the quantity the paper's simulation minimizes.
//
// Concurrency: rides are striped across index shards, and every step
// after the (lock-free) walkable-side lookup is shard-local — a ride's
// source candidates, destination candidates, intersection and final
// checks all live in the shard that owns the ride. The search therefore
// visits shards one at a time, holding only that shard's read lock, and
// merges the per-shard matches at the end; concurrent mutations block it
// on at most one stripe. With Config.SearchWorkers > 0 the per-shard
// work fans out over a worker pool (large fleets, otherwise idle CPUs).
func (e *Engine) Search(req Request) ([]Match, error) {
	return e.SearchCtx(context.Background(), req)
}

// SearchCtx is Search with trace propagation: when the context's trace
// is recording (or Config.Tracer head-samples this call as a new root),
// the search records a span tree — the side lookup plus one span per
// index shard visited, each carrying its shard number and match count.
// A trace-recorded search is also timed into the op histogram
// regardless of the 1-in-N SearchSampleRate decision, so every trace
// has a matching exemplar-capable observation; the finer per-stage and
// per-candidate clocks stay gated on the metrics sample alone (a search
// that is both sampled and traced gets stage timings as span
// attributes too), so tracing adds no clock reads beyond its own spans.
func (e *Engine) SearchCtx(ctx context.Context, req Request) ([]Match, error) {
	if e.cfg.PprofLabels {
		var out []Match
		var err error
		pprof.Do(ctx, pprof.Labels("op", opSearch), func(ctx context.Context) {
			out, err = e.searchCtx(ctx, req)
		})
		return out, err
	}
	return e.searchCtx(ctx, req)
}

func (e *Engine) searchCtx(ctx context.Context, req Request) (out []Match, err error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// Searches are sampled (Config.SearchSampleRate): a timed search
	// records the op histogram plus the per-stage breakdown below. The
	// sampling sequence rides on the metrics counter the search already
	// increments, so an unsampled search pays only a mask test.
	n := e.m.searches.Add(1)
	sampled := e.tel != nil && uint32(n)&e.tel.sampleMask == 0
	_, span := e.tel.startOp(ctx, opSearch)
	timed := sampled || span != nil
	var start time.Time
	if span != nil {
		start = span.StartTime() // the span already read the clock
	} else if timed {
		start = time.Now()
	}
	opts := searchOpts{qc: e.quality}
	var rej []rejectedCandidate
	if e.jr != nil && sampled && e.quality != nil {
		opts.rej = &rej
	}
	out, err = e.search(span, req, timed, sampled, opts)
	e.m.searchMatches.Add(uint64(len(out)))
	// A no-match search is the shadow matcher's raw material: re-run it
	// off the request path with relaxed constraints to attribute the
	// binding one. offer() itself samples, so the hot path pays one nil
	// check plus (shadow on) one atomic increment.
	if err == nil && len(out) == 0 {
		e.shadow.offerNoMatch(req)
	}
	// Journal candidate surfacing for sampled searches only: searches
	// are the sub-microsecond hot path and return many matches, so an
	// unconditional emit would dominate their cost. The events are
	// advisory — a candidate timeline entry means "a sampled search saw
	// this ride"; absence proves nothing. Emitted before EndAt: sealing
	// recycles the trace record the cross-link reads.
	if e.jr != nil && sampled {
		for i := range out {
			if i == maxCandidateEvents {
				break
			}
			e.recordEvent(journal.SearchCandidate, out[i].Ride, span, out[i].DetourEstimate, "")
		}
		// The rejection side of the same story, capped alike: which
		// rides a sampled search eliminated and at which funnel stage.
		for i := range rej {
			if i == maxCandidateEvents {
				break
			}
			e.recordEvent(journal.MatchRejected, rej[i].id, span, 0, quality.StageName(rej[i].stage))
		}
	}
	if timed {
		now := time.Now() // one read closes both the span and the op clock
		if span != nil {
			span.SetInt("matches", int64(len(out)))
			span.SetError(err)
		}
		if e.tel != nil {
			// Observe (and stamp the exemplar) before End: sealing
			// recycles the trace record, so the span is not read after.
			e.tel.observeOp(opSearch, now.Sub(start), span, err)
		}
		span.EndAt(now)
	}
	return out, err
}

// SearchK returns at most k matches (the best k by walking distance).
// k <= 0 means no limit. It mirrors the paper's Figure 5a experiment,
// where the candidate retrieval cost of XAR is insensitive to k.
func (e *Engine) SearchK(req Request, k int) ([]Match, error) {
	return e.SearchKCtx(context.Background(), req, k)
}

// SearchKCtx is SearchK with trace propagation.
func (e *Engine) SearchKCtx(ctx context.Context, req Request, k int) ([]Match, error) {
	ms, err := e.SearchCtx(ctx, req)
	if err != nil {
		return nil, err
	}
	if k > 0 && len(ms) > k {
		ms = ms[:k]
	}
	return ms, nil
}

type sideCandidate struct {
	cluster int
	walk    float64
}

// relaxFlags marks constraints the shadow counterfactual matcher lifts
// when re-running a no-match request. The production search always runs
// with relax == 0.
type relaxFlags uint8

const (
	relaxCapacity relaxFlags = 1 << iota // ignore SeatsAvail
	relaxDetour                          // ignore the ride's detour budget
	relaxOrder                           // ignore pickup-before-drop-off ordering
)

// searchOpts threads the quality layer through the search fan-out:
// which collector (if any) receives the funnel classification, whether
// per-candidate rejection records should be collected for the journal,
// and which constraints a shadow re-run relaxes. The zero value is the
// uninstrumented production search.
type searchOpts struct {
	qc    *quality.Collector
	relax relaxFlags
	// rej, when non-nil, receives the per-candidate rejection records of
	// this search (sampled searches with a journal only).
	rej *[]rejectedCandidate
}

// rejectedCandidate is one candidate ride a search eliminated, with the
// funnel stage that eliminated it — the raw material of the journal's
// match_rejected events.
type rejectedCandidate struct {
	id    index.RideID
	stage int
}

// shardSearchResult carries one shard's matches plus its stage timings
// (zero unless the search is traced). Timings are accumulated per shard
// and summed after the join, so the parallel fan-out needs no shared
// clocks; under workers the sums measure CPU time, not wall time.
type shardSearchResult struct {
	matches          []Match
	cand, final      time.Duration
	walkPair, detour time.Duration
	// funnel counts this shard's candidate eliminations per quality
	// stage (all zero unless the engine has a quality collector). Local
	// ints here, one batched atomic add after the merge — the funnel
	// never adds per-candidate atomics to the hot loop. examined is the
	// candidate-set size (len(r1)), counted independently of the stages
	// so the auditor's funnel_accounting invariant cross-checks the
	// classification rather than restating it.
	funnel   [quality.NumStages]uint64
	examined uint64
	// rejects are the per-candidate rejection records (nil unless the
	// search asked for them via searchOpts.rej).
	rejects []rejectedCandidate
	// end is the shard span's close instant (zero unless this shard
	// recorded a span); the serial fan-out reuses it as the next shard
	// span's start, halving the traced loop's clock reads.
	end time.Time
}

// searchScratch holds the per-shard working set of one search worker:
// the source/destination candidate maps and the posting-list pull
// buffer. One scratch is reused across every shard a worker visits
// (maps cleared between shards), so the per-shard cost of the sharded
// search is lock + scan, not two map allocations per stripe — that
// reuse is what keeps the single-threaded latency at the unsharded
// level.
type searchScratch struct {
	r1, r2 map[index.RideID]sideCandidate
	ids    []index.RideID
	// results is the per-shard result array of one search (serial path
	// only; the parallel path needs a private array per search anyway).
	results []shardSearchResult
}

func newSearchScratch() *searchScratch {
	return &searchScratch{
		r1: make(map[index.RideID]sideCandidate),
		r2: make(map[index.RideID]sideCandidate),
	}
}

func (s *searchScratch) reset() {
	clear(s.r1)
	clear(s.r2)
}

// search runs the two-step lookup and fan-out. span is the operation's
// span (nil when the call is not trace-recorded); fine reports the
// metrics 1-in-N sampling decision, which alone gates the per-stage and
// per-candidate clocks — exactly the pre-trace semantics. A
// trace-recorded but metrics-unsampled search records its span tree and
// the op histogram, nothing finer, keeping the traced hot path lean.
func (e *Engine) search(span *telemetry.Span, req Request, timed, fine bool, opts searchOpts) ([]Match, error) {
	// tel is the per-stage histogram sink — non-nil only for
	// metrics-sampled searches.
	var tel *engineTelemetry
	if fine {
		tel = e.tel
	}

	// Walkable-side resolution reads only the immutable discretization.
	sideSpan := span.Child(stageSideLookup)
	var mark time.Time
	if sideSpan != nil {
		mark = sideSpan.StartTime() // the span already read the clock
	} else if timed {
		mark = time.Now()
	}
	srcSide, err := e.walkableSide(req.Source, req.WalkLimit)
	if err == nil {
		dstSide, derr := e.walkableSide(req.Dest, req.WalkLimit)
		if derr != nil {
			err = derr
		} else {
			// The side-lookup end instant doubles as the fan-out start.
			var fanStart time.Time
			if timed {
				fanStart = time.Now()
				if sideSpan != nil {
					sideSpan.SetInt("src_clusters", int64(len(srcSide)))
					sideSpan.SetInt("dst_clusters", int64(len(dstSide)))
					sideSpan.EndAt(fanStart)
				}
				if tel != nil {
					tel.stages[stageSideLookup].ObserveDuration(fanStart.Sub(mark))
				}
			}
			return e.searchShards(span, req, srcSide, dstSide, fine, tel, fanStart, opts)
		}
	}
	if sideSpan != nil {
		sideSpan.SetError(err)
		sideSpan.End()
	}
	return nil, err
}

// searchShards runs the per-shard fan-out (serial or over the worker
// pool) and merges results; split from search so the side-lookup span
// closes cleanly on the error paths above.
func (e *Engine) searchShards(span *telemetry.Span, req Request, srcSide, dstSide []sideCandidate, fine bool, tel *engineTelemetry, fanStart time.Time, opts searchOpts) ([]Match, error) {

	nsh := e.ix.NumShards()
	var results []shardSearchResult
	workers := e.cfg.SearchWorkers
	if workers > nsh {
		workers = nsh
	}
	if workers <= 1 {
		scratch := e.scratchPool.Get().(*searchScratch)
		if cap(scratch.results) < nsh {
			scratch.results = make([]shardSearchResult, nsh)
		}
		results = scratch.results[:nsh]
		// Serially, shard i's span ends exactly where shard i+1's begins,
		// so each close instant feeds forward as the next start.
		start := fanStart
		for i := 0; i < nsh; i++ {
			results[i] = e.searchShard(span, i, req, srcSide, dstSide, fine, scratch, start, opts)
			start = results[i].end
		}
		defer e.scratchPool.Put(scratch)
	} else {
		results = make([]shardSearchResult, nsh)
		// Opt-in parallel candidate evaluation: workers claim shards off
		// an atomic cursor; each shard is still processed under only its
		// own read lock. Per-shard spans end on worker goroutines — the
		// trace record is designed for exactly that (one mutex, touched
		// only at span end).
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				scratch := e.scratchPool.Get().(*searchScratch)
				defer e.scratchPool.Put(scratch)
				for {
					i := int(cursor.Add(1)) - 1
					if i >= nsh {
						return
					}
					// Workers interleave, so no end-to-start clock reuse:
					// each shard span reads its own start.
					if e.cfg.PprofLabels {
						// Shard-resolved CPU attribution: profiles of the
						// fan-out split by shard expose a skewed stripe the
						// same way xar_index_shard_rides does for memory.
						pprof.Do(context.Background(),
							pprof.Labels("op", opSearch, "stage", "shard_fanout", "shard", strconv.Itoa(i)),
							func(context.Context) {
								results[i] = e.searchShard(span, i, req, srcSide, dstSide, fine, scratch, time.Time{}, opts)
							})
					} else {
						results[i] = e.searchShard(span, i, req, srcSide, dstSide, fine, scratch, time.Time{}, opts)
					}
				}
			}()
		}
		wg.Wait()
	}

	var out []Match
	var candTime, finalTime, walkPairTime, detourTime time.Duration
	var funnel [quality.NumStages]uint64
	var examined uint64
	for i := range results {
		out = append(out, results[i].matches...)
		candTime += results[i].cand
		finalTime += results[i].final
		walkPairTime += results[i].walkPair
		detourTime += results[i].detour
		if opts.qc != nil {
			examined += results[i].examined
			for st, n := range results[i].funnel {
				funnel[st] += n
			}
			if opts.rej != nil && len(results[i].rejects) > 0 {
				*opts.rej = append(*opts.rej, results[i].rejects...)
			}
		}
	}
	if opts.qc != nil {
		opts.qc.AddFunnel(&funnel, examined)
		e.m.candidatesExamined.Add(examined)
		if span != nil && examined > 0 {
			span.SetInt("candidates", int64(examined))
			for st, n := range funnel {
				if n > 0 && st != quality.Matched {
					span.SetInt("rejected_"+quality.StageName(st), int64(n))
				}
			}
		}
	}
	var sortMark time.Time
	if tel != nil {
		sortMark = time.Now()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalWalk() != out[j].TotalWalk() {
			return out[i].TotalWalk() < out[j].TotalWalk()
		}
		return out[i].Ride < out[j].Ride
	})
	if tel != nil {
		tel.stages[stageCandidate].ObserveDuration(candTime)
		tel.stages[stageFinalCheck].ObserveDuration(finalTime + time.Since(sortMark))
		if walkPairTime > 0 {
			tel.stages[stageWalkPair].ObserveDuration(walkPairTime)
		}
		if detourTime > 0 {
			tel.stages[stageDetourCheck].ObserveDuration(detourTime)
		}
	}
	return out, nil
}

// searchShard runs steps 1+2 and the final checks against one shard's
// posting lists, under that shard's read lock only. When the trace
// records, the shard gets its own "search_shard" span carrying the
// shard number and match count — the per-shard fan-out breakdown that
// explains a straggling stripe; when the search is also metrics-sampled
// (fine) the span additionally carries the candidate/final stage split.
func (e *Engine) searchShard(parent *telemetry.Span, shard int, req Request, srcSide, dstSide []sideCandidate, fine bool, s *searchScratch, start time.Time, opts searchOpts) (res shardSearchResult) {
	span := parent.ChildAt("search_shard", start)
	var mark time.Time
	inFinal := false
	if span != nil {
		span.SetInt("shard", int64(shard))
		defer func() {
			// One clock read closes both the open stage clock and the
			// span; res.end hands the instant forward to the serial loop.
			now := time.Now()
			if fine {
				if inFinal {
					res.final = now.Sub(mark)
				} else {
					res.cand = now.Sub(mark)
				}
				span.SetFloat("candidate_scan_s", res.cand.Seconds())
				span.SetFloat("final_check_s", res.final.Seconds())
			}
			span.SetInt("matches", int64(len(res.matches)))
			span.EndAt(now)
			res.end = now
		}()
		if fine {
			mark = span.StartTime() // the span already holds a start instant
		}
	} else if fine {
		mark = time.Now()
	}
	sh := e.ix.Shard(shard)
	sh.RLock()
	defer sh.RUnlock()
	ix := sh.Ix

	// Step 1: source-side candidates among this shard's rides. For each
	// ride remember the best (least-walk) source cluster that produced it.
	r1 := s.r1
	for _, sc := range srcSide {
		s.ids = ix.PotentialRides(sc.cluster, req.EarliestDeparture, req.LatestDeparture, s.ids[:0])
		for _, id := range s.ids {
			if prev, ok := r1[id]; !ok || sc.walk < prev.walk {
				r1[id] = sideCandidate{cluster: sc.cluster, walk: sc.walk}
			}
		}
	}
	if len(r1) == 0 {
		if span == nil && fine {
			res.cand = time.Since(mark)
		}
		return res
	}
	defer s.reset()

	// Step 2: destination-side candidates and intersection R1 ∩ R2.
	// The destination window extends past the departure window because
	// the drop-off happens after the pickup.
	destT2 := req.LatestDeparture + e.cfg.DestWindowSlack
	r2 := s.r2
	for _, dc := range dstSide {
		s.ids = ix.PotentialRides(dc.cluster, req.EarliestDeparture, destT2, s.ids[:0])
		for _, id := range s.ids {
			if _, inR1 := r1[id]; !inR1 {
				continue // intersection only
			}
			if prev, ok := r2[id]; !ok || dc.walk < prev.walk {
				r2[id] = sideCandidate{cluster: dc.cluster, walk: dc.walk}
			}
		}
	}
	if fine {
		now := time.Now()
		res.cand = now.Sub(mark)
		mark = now
		inFinal = true
	}

	// Funnel accounting (quality collector only): every ride in r1 is
	// one examined candidate and lands in exactly one stage. Candidates
	// that fell out of the r1∩r2 intersection missed the destination
	// window; the final loop classifies the survivors. Local counts
	// here, one batched atomic add after the merge.
	track := opts.qc != nil
	if track {
		res.examined = uint64(len(r1))
		res.funnel[quality.WindowMiss] += uint64(len(r1) - len(r2))
	}
	reject := func(id index.RideID, stage int) {
		res.funnel[stage]++
		if opts.rej != nil {
			res.rejects = append(res.rejects, rejectedCandidate{id: id, stage: stage})
		}
	}

	// Final checks on the intersection.
	for id, dst := range r2 {
		src := r1[id]
		r := ix.Ride(id)
		if r == nil {
			// Stale posting: the ride left the index between the window
			// scan and this lookup — it is in no window anymore.
			if track {
				res.funnel[quality.WindowMiss]++
			}
			continue
		}
		if r.SeatsAvail <= 0 && opts.relax&relaxCapacity == 0 {
			if track {
				reject(id, quality.Capacity)
			}
			continue
		}
		// Combined walking distance within the requester's limit. The
		// per-side lists were pruned by the full limit, so the sum needs
		// its own check.
		if src.walk+dst.walk > req.WalkLimit {
			// The best-walk cluster pair may fail while another pair
			// passes; try to find any feasible pair cheaply by scanning
			// the (short, sorted) walkable lists again.
			var ok bool
			if fine {
				t0 := time.Now()
				src, dst, ok = bestWalkPair(ix, srcSide, dstSide, id, req)
				res.walkPair += time.Since(t0)
			} else {
				src, dst, ok = bestWalkPair(ix, srcSide, dstSide, id, req)
			}
			if !ok {
				if track {
					reject(id, quality.WalkLimit)
				}
				continue
			}
		}
		var m Match
		var ok bool
		switch {
		case opts.relax&(relaxDetour|relaxOrder) != 0:
			m, ok = checkDetourAndOrderRelaxed(ix, r, src.cluster, dst.cluster, opts.relax)
		case fine:
			t0 := time.Now()
			m, ok = checkDetourAndOrder(ix, r, src.cluster, dst.cluster)
			res.detour += time.Since(t0)
		default:
			m, ok = checkDetourAndOrder(ix, r, src.cluster, dst.cluster)
		}
		if !ok {
			if track {
				reject(id, classifyDetourReject(ix, r, src.cluster, dst.cluster))
			}
			continue
		}
		if track {
			res.funnel[quality.Matched]++
		}
		m.WalkSource = src.walk
		m.WalkDest = dst.walk
		res.matches = append(res.matches, m)
	}
	if span == nil && fine {
		res.final = time.Since(mark)
	}
	return res
}

// walkableSide resolves a request endpoint to its walkable-cluster list
// pruned by the requester's walk limit (a linear scan over the sorted
// list, per §IV). An endpoint with no walkable cluster returns
// ErrNotServable.
func (e *Engine) walkableSide(p geo.Point, limit float64) ([]sideCandidate, error) {
	gi := e.disc.Info(e.disc.GridAt(p))
	if gi == nil {
		return nil, ErrNotServable
	}
	pruned := gi.WalkableWithin(limit)
	if len(pruned) == 0 {
		return nil, ErrNotServable
	}
	side := make([]sideCandidate, len(pruned))
	for i, wc := range pruned {
		side[i] = sideCandidate{cluster: wc.Cluster, walk: wc.Walk}
	}
	return side, nil
}

// bestWalkPair searches for the least-total-walk (source, dest) cluster
// pair for which the ride is listed on both sides and the total walk fits
// the limit. Walkable lists are sorted by walk, so it can stop early.
// The caller holds the read lock of the shard owning ix.
func bestWalkPair(ix *index.Index, srcSide, dstSide []sideCandidate, id index.RideID, req Request) (s, d sideCandidate, ok bool) {
	best := req.WalkLimit + 1
	for _, sc := range srcSide {
		if sc.walk >= best {
			break
		}
		if _, listed := ix.HasPotentialRide(sc.cluster, id); !listed {
			continue
		}
		for _, dc := range dstSide {
			total := sc.walk + dc.walk
			if total >= best || total > req.WalkLimit {
				break
			}
			if _, listed := ix.HasPotentialRide(dc.cluster, id); !listed {
				continue
			}
			best = total
			s, d, ok = sc, dc, true
			break
		}
	}
	return s, d, ok
}

// checkDetourAndOrder validates that the ride can serve pickup cluster cs
// then drop-off cluster cd within its remaining detour budget, using only
// the precomputed supports: pick the support pair (ps, pd) with
// ps.Order ≤ pd.Order minimizing combined detour. The caller holds (at
// least) the read lock of the shard owning ix and r.
func checkDetourAndOrder(ix *index.Index, r *index.Ride, cs, cd int) (Match, bool) {
	sups := ix.Supports(r.ID, cs)
	dups := ix.Supports(r.ID, cd)
	if len(sups) == 0 || len(dups) == 0 {
		return Match{}, false
	}
	bestTotal := r.DetourLimit + 1
	var bm Match
	found := false
	for _, s := range sups {
		if s.Detour >= bestTotal {
			break // sorted by detour
		}
		for _, d := range dups {
			total := s.Detour + d.Detour
			if total >= bestTotal {
				break
			}
			if d.Order < s.Order {
				continue // drop-off support precedes pickup support
			}
			if d.ETA < s.ETA {
				continue // estimated drop-off before estimated pickup
			}
			if total > r.DetourLimit {
				continue
			}
			bestTotal = total
			bm = Match{
				Ride:           r.ID,
				PickupCluster:  cs,
				DropoffCluster: cd,
				DetourEstimate: total,
				PickupETA:      s.ETA,
				DropoffETA:     d.ETA,
				pickupOrder:    s.Order,
				dropoffOrder:   d.Order,
				pickupSegv:     s.Seg,
				dropoffSegv:    d.Seg,
			}
			found = true
			break
		}
	}
	return bm, found
}

// classifyDetourReject attributes a checkDetourAndOrder failure to its
// binding constraint for the funnel: if any support pair is
// order-feasible (drop-off support at or after the pickup support in
// both route order and ETA), only the detour budget stood in the way;
// otherwise no valid ordering exists at all (including the
// no-support-pair case). Runs only for quality-tracked searches, on
// the already-rejected slow path.
func classifyDetourReject(ix *index.Index, r *index.Ride, cs, cd int) int {
	sups := ix.Supports(r.ID, cs)
	dups := ix.Supports(r.ID, cd)
	for _, s := range sups {
		for _, d := range dups {
			if d.Order >= s.Order && d.ETA >= s.ETA {
				return quality.DetourBound
			}
		}
	}
	return quality.OrderInfeasible
}

// checkDetourAndOrderRelaxed is checkDetourAndOrder with shadow-matcher
// relaxations: relaxDetour lifts the ride's remaining budget,
// relaxOrder lifts the pickup-before-drop-off requirement. Kept
// separate so the production hot path never branches on relax flags
// inside the support scan.
func checkDetourAndOrderRelaxed(ix *index.Index, r *index.Ride, cs, cd int, relax relaxFlags) (Match, bool) {
	sups := ix.Supports(r.ID, cs)
	dups := ix.Supports(r.ID, cd)
	if len(sups) == 0 || len(dups) == 0 {
		return Match{}, false
	}
	limit := r.DetourLimit
	if relax&relaxDetour != 0 {
		limit = math.Inf(1)
	}
	ignoreOrder := relax&relaxOrder != 0
	bestTotal := limit + 1
	var bm Match
	found := false
	for _, s := range sups {
		if s.Detour >= bestTotal {
			break
		}
		for _, d := range dups {
			total := s.Detour + d.Detour
			if total >= bestTotal {
				break
			}
			if !ignoreOrder && (d.Order < s.Order || d.ETA < s.ETA) {
				continue
			}
			if total > limit {
				continue
			}
			bestTotal = total
			bm = Match{
				Ride:           r.ID,
				PickupCluster:  cs,
				DropoffCluster: cd,
				DetourEstimate: total,
				PickupETA:      s.ETA,
				DropoffETA:     d.ETA,
				pickupOrder:    s.Order,
				dropoffOrder:   d.Order,
				pickupSegv:     s.Seg,
				dropoffSegv:    d.Seg,
			}
			found = true
			break
		}
	}
	return bm, found
}
