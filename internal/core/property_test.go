package core

import (
	"math/rand"
	"testing"

	"xar/internal/index"
)

// TestEngineRandomOperationSoak interleaves every engine operation —
// create, search, book, cancel, track (by time and by GPS), complete —
// under a seeded random schedule, checking the index invariants and
// global accounting after every step. This is the engine-level analogue
// of the index's random-operation test, exercising the full state
// machine including cancellations and re-registrations.
func TestEngineRandomOperationSoak(t *testing.T) {
	e := newTestEngine(t)
	city := e.disc.City()
	rng := rand.New(rand.NewSource(2718))

	type liveBooking struct {
		b   Booking
		req Request
	}
	var rides []index.RideID
	var bookings []liveBooking
	now := 0.0

	for step := 0; step < 400; step++ {
		now += rng.Float64() * 30
		switch op := rng.Intn(100); {
		case op < 30: // create
			a := city.RandomPoint(rng)
			b := city.RandomPoint(rng)
			id, err := e.CreateRide(RideOffer{
				Source: a, Dest: b,
				Departure:   now + rng.Float64()*600,
				DetourLimit: 500 + rng.Float64()*2500,
				Owner:       UserID(rng.Intn(20)),
			})
			if err == nil {
				rides = append(rides, id)
			}

		case op < 65: // search (and sometimes book)
			req := Request{
				Source:            city.RandomPoint(rng),
				Dest:              city.RandomPoint(rng),
				EarliestDeparture: now,
				LatestDeparture:   now + 900 + rng.Float64()*1800,
				WalkLimit:         400 + rng.Float64()*600,
			}
			ms, err := e.Search(req)
			if err != nil && err != ErrNotServable {
				t.Fatalf("step %d: search: %v", step, err)
			}
			if len(ms) > 0 && rng.Intn(2) == 0 {
				bk, err := e.Book(ms[0], req)
				if err == nil {
					bookings = append(bookings, liveBooking{b: bk, req: req})
					if bk.ApproxError() > 4*e.disc.Epsilon()+1e-6 {
						t.Fatalf("step %d: approx error %.1f > 4ε", step, bk.ApproxError())
					}
				}
			}

		case op < 75: // cancel a random booking
			if len(bookings) == 0 {
				continue
			}
			i := rng.Intn(len(bookings))
			lb := bookings[i]
			err := e.CancelBooking(lb.b.Ride, lb.b.PickupNode, lb.b.DropoffNode)
			// May legitimately fail (vehicle passed pickup, ride done).
			_ = err
			bookings = append(bookings[:i], bookings[i+1:]...)

		case op < 90: // track by time or GPS
			if len(rides) == 0 {
				continue
			}
			id := rides[rng.Intn(len(rides))]
			r := e.Ride(id)
			if r == nil {
				continue
			}
			if rng.Intn(2) == 0 {
				if _, err := e.Track(id, now); err != nil && err != ErrUnknownRide {
					t.Fatalf("step %d: track: %v", step, err)
				}
			} else {
				idx := rng.Intn(len(r.Route))
				p := city.Graph.Point(r.Route[idx])
				if _, err := e.TrackPosition(id, p); err != nil && err != ErrUnknownRide {
					t.Fatalf("step %d: gps track: %v", step, err)
				}
			}

		default: // complete
			if len(rides) == 0 {
				continue
			}
			i := rng.Intn(len(rides))
			e.CompleteRide(rides[i])
			rides = append(rides[:i], rides[i+1:]...)
		}

		if step%20 == 0 {
			if err := e.Index().CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
		// Global invariants that must hold continuously.
		e.Index().Rides(func(r *index.Ride) bool {
			if r.SeatsAvail < 0 || r.SeatsAvail >= r.SeatsTotal {
				t.Fatalf("step %d: ride %d seats %d/%d", step, r.ID, r.SeatsAvail, r.SeatsTotal)
			}
			if r.DetourLimit < 0 {
				t.Fatalf("step %d: ride %d negative budget", step, r.ID)
			}
			return true
		})
	}
	if err := e.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	t.Logf("soak: %d creates, %d searches, %d bookings (%d failed), %d cancels, %d completions",
		m.RidesCreated, m.Searches, m.Bookings, m.BookingsFailed, m.Cancellations, m.RidesCompleted)
}
