package core

import (
	"testing"

	"xar/internal/discretize"
	"xar/internal/geo"
	"xar/internal/roadnet"
)

// Failure-injection suite: exercises the degraded and adversarial
// conditions §IV anticipates (remote grids, unservable requests) plus
// operational edge cases (zero limits, budget exhaustion, races between
// search and book).

func TestRequestFromRemoteGridNotServed(t *testing.T) {
	e := newTestEngine(t)
	// A point far outside the padded region: no grid at all.
	far := geo.Point{Lat: 40.70, Lng: -73.00}
	req := Request{
		Source: far, Dest: far,
		LatestDeparture: 100, WalkLimit: 500,
	}
	if _, err := e.Search(req); err != ErrNotServable {
		t.Fatalf("err = %v, want ErrNotServable", err)
	}
	// Paper: "If a grid is neither in the driving distance of a landmark
	// ... nor within the walking distance of any landmarks/cluster, then
	// requests from it will not be served."
	if e.disc.Servable(far) {
		t.Fatal("far point reported servable")
	}
}

func TestZeroWalkLimitRequest(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	if _, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, DetourLimit: 2000}); err != nil {
		t.Fatal(err)
	}
	// Zero walking tolerance: only a grid whose walkable list contains a
	// zero-distance cluster could serve it; generally nothing matches,
	// and the request must be cleanly unservable rather than crash.
	req := Request{
		Source: src, Dest: dst,
		EarliestDeparture: 0, LatestDeparture: 3600, WalkLimit: 0,
	}
	ms, err := e.Search(req)
	if err != nil && err != ErrNotServable {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.TotalWalk() > 0 {
			t.Fatal("zero-walk request matched with walking")
		}
	}
}

func TestDetourBudgetExhaustion(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, Seats: 8, DetourLimit: 600})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	// Book repeatedly until the budget runs out; the budget must never
	// go meaningfully negative and bookings must stop.
	for i := 0; i < 10; i++ {
		req := requestAlong(e, r, 0.2+float64(i%3)*0.1, 0.6+float64(i%3)*0.1, 1e6, 1000)
		ms, err := e.Search(req)
		if err != nil || len(ms) == 0 {
			break
		}
		if _, err := e.Book(ms[0], req); err != nil {
			break
		}
	}
	if r.DetourLimit < 0 {
		t.Fatalf("detour budget went negative: %v", r.DetourLimit)
	}
	if err := e.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStrictDetourRejectsOvershoot(t *testing.T) {
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.StrictDetour = true
	e, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := city.Graph
	src := g.Point(0)
	dst := g.Point(roadnet.NodeID(g.NumNodes() - 1))
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, DetourLimit: 1500})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	// Every successful strict-mode booking must respect the budget with
	// zero allowance.
	for i := 0; i < 5; i++ {
		req := requestAlong(e, r, 0.25, 0.75, 1e6, 900)
		ms, err := e.Search(req)
		if err != nil || len(ms) == 0 {
			break
		}
		before := r.DetourLimit
		bk, err := e.Book(ms[0], req)
		if err != nil {
			break
		}
		if bk.DetourActual > before+1e-6 {
			t.Fatalf("strict mode allowed detour %.1f > budget %.1f", bk.DetourActual, before)
		}
	}
}

func TestStaleMatchAfterRideFills(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, Seats: 2, DetourLimit: 3000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	req, ms := mustSearchAlong(t, e, r, 0.3, 0.7, 1e6, 900)
	// Hold the match, fill the only seat through another booking, then
	// try to book the stale match.
	if _, err := e.Book(ms[0], req); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Book(ms[0], req); err != ErrRideFull && err != ErrNoLongerFeasible {
		t.Fatalf("stale booking err = %v, want full/no-longer-feasible", err)
	}
}

func TestStaleMatchAfterRideCompletes(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, DetourLimit: 2000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	req, ms := mustSearchAlong(t, e, r, 0.3, 0.7, 1e6, 900)
	e.CompleteRide(id)
	if _, err := e.Book(ms[0], req); err != ErrUnknownRide {
		t.Fatalf("booking on a completed ride: err = %v", err)
	}
}

func TestSearchAfterEverythingCompleted(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	for i := 0; i < 5; i++ {
		if _, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.TrackAll(1e12); err != nil {
		t.Fatal(err)
	}
	req := Request{Source: src, Dest: dst, EarliestDeparture: 0, LatestDeparture: 1e12, WalkLimit: 1000}
	ms, err := e.Search(req)
	if err != nil && err != ErrNotServable {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("%d matches on an empty fleet", len(ms))
	}
	if err := e.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOfferOutsideRegion(t *testing.T) {
	e := newTestEngine(t)
	offer := RideOffer{
		Source: geo.Point{Lat: 10, Lng: 10},
		Dest:   geo.Point{Lat: 10.1, Lng: 10},
	}
	// The nearest-node snap still finds *some* node (possibly absurdly
	// far); engines must either serve or cleanly reject, never panic.
	if _, err := e.CreateRide(offer); err == nil {
		// Snapped to distinct city nodes: legal, if odd. Clean up.
		if e.NumRides() != 1 {
			t.Fatal("accounting broken")
		}
	}
}

func TestManyTinyRides(t *testing.T) {
	// Rides between adjacent intersections: degenerate but legal.
	e := newTestEngine(t)
	g := e.disc.City().Graph
	created := 0
	for v := 0; v < g.NumNodes()-1 && created < 30; v += 7 {
		offer := RideOffer{
			Source:    g.Point(roadnet.NodeID(v)),
			Dest:      g.Point(roadnet.NodeID(v + 1)),
			Departure: float64(v),
		}
		if _, err := e.CreateRide(offer); err == nil {
			created++
		}
	}
	if created == 0 {
		t.Fatal("no tiny rides created")
	}
	if err := e.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
