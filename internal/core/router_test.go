package core

import (
	"testing"
	"time"

	"xar/internal/discretize"
	"xar/internal/roadnet"
	"xar/internal/telemetry"
)

func routerTestDisc(t *testing.T) *discretize.Discretization {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(16, 10, 7))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRouterResolution covers the Config.Router decision table:
// explicit values, auto-selection, the CH-budget fallback to ALT, and
// rejection of unknown routers.
func TestRouterResolution(t *testing.T) {
	d := routerTestDisc(t)
	ch, err := roadnet.BuildCH(d.City().Graph, roadnet.CHConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"default is astar", func(c *Config) {}, RouterAStar},
		{"alt via compat flag", func(c *Config) { c.UseALTPaths = true }, RouterALT},
		{"explicit astar wins over compat flag", func(c *Config) { c.UseALTPaths = true; c.Router = RouterAStar }, RouterAStar},
		{"prebuilt CH implies ch", func(c *Config) { c.CH = ch }, RouterCH},
		{"explicit ch builds in-process", func(c *Config) { c.Router = RouterCH }, RouterCH},
		{"ch budget fallback to alt", func(c *Config) { c.Router = RouterCH; c.CHBudget = time.Nanosecond }, RouterALT},
		{"prebuilt CH skips the budget", func(c *Config) { c.CH = ch; c.CHBudget = time.Nanosecond }, RouterCH},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			e, err := NewEngine(d, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if e.Router() != tc.want {
				t.Fatalf("Router() = %q, want %q", e.Router(), tc.want)
			}
			if got := e.ConfigSummary()["router"]; got != tc.want {
				t.Fatalf("ConfigSummary router = %v, want %q", got, tc.want)
			}
		})
	}
	cfg := DefaultConfig()
	cfg.Router = "dijkstra-on-a-gpu"
	if _, err := NewEngine(d, cfg); err == nil {
		t.Fatal("unknown Router must be rejected")
	}
}

// TestRouterCHEquivalence runs the same offers and searches through an
// A*-routed and a CH-routed engine and requires identical ride routes
// and search outcomes — the engine-level form of the exact-distance
// property.
func TestRouterCHEquivalence(t *testing.T) {
	d := routerTestDisc(t)
	ref, err := NewEngine(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Router = RouterCH
	che, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := d.City().Graph
	n := g.NumNodes()
	for trial := 0; trial < 40; trial++ {
		src := g.Point(roadnet.NodeID((trial * 131) % n))
		dst := g.Point(roadnet.NodeID((trial*257 + n/2) % n))
		idRef, errRef := ref.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000})
		idCH, errCH := che.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000})
		if (errRef == nil) != (errCH == nil) {
			t.Fatalf("trial %d: create diverged (%v vs %v)", trial, errRef, errCH)
		}
		if errRef != nil {
			continue
		}
		a, b := ref.Ride(idRef), che.Ride(idCH)
		if len(a.Route) != len(b.Route) {
			t.Fatalf("trial %d: route lengths differ (%d vs %d)", trial, len(a.Route), len(b.Route))
		}
		if a.BaseRouteLen != b.BaseRouteLen {
			t.Fatalf("trial %d: route distance differs (%v vs %v)", trial, a.BaseRouteLen, b.BaseRouteLen)
		}
	}
}

// TestRouteQueriesCounter verifies satellite telemetry: the per-algo
// query counter advances with each shortest-path call.
func TestRouteQueriesCounter(t *testing.T) {
	d := routerTestDisc(t)
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig()
	cfg.Router = RouterCH
	cfg.Telemetry = reg
	e, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := d.City().Graph
	if _, err := e.CreateRide(RideOffer{
		Source: g.Point(0), Dest: g.Point(roadnet.NodeID(g.NumNodes() - 1)), Departure: 1000,
	}); err != nil {
		t.Fatal(err)
	}
	c := reg.Counter("xar_route_queries_total",
		"Shortest-path queries served, by routing algorithm.",
		telemetry.L("algo", RouterCH))
	if c.Value() == 0 {
		t.Fatal("xar_route_queries_total{algo=ch} did not advance after a create")
	}
}
