package core

import (
	"testing"
)

func TestMetricsCountOperations(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)

	if m := e.Metrics(); m != (Metrics{}) {
		t.Fatalf("fresh engine has non-zero metrics: %+v", m)
	}

	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500})
	if err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.RidesCreated != 1 || m.ShortestPaths != 1 {
		t.Fatalf("after create: %+v", m)
	}

	r := e.Ride(id)
	req := requestAlong(e, r, 0.3, 0.7, 3600, 900)
	ms, err := e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	m = e.Metrics()
	if m.Searches != 1 {
		t.Fatalf("searches = %d", m.Searches)
	}
	if m.SearchMatches != uint64(len(ms)) {
		t.Fatalf("match counter %d, search returned %d", m.SearchMatches, len(ms))
	}
	if len(ms) == 0 {
		t.Fatal("corridor search found no match on the seeded world")
	}

	bk, err := e.Book(ms[0], req)
	if err != nil {
		t.Fatal(err)
	}
	m = e.Metrics()
	if m.Bookings != 1 {
		t.Fatalf("bookings = %d", m.Bookings)
	}
	if m.ShortestPaths != 1+uint64(bk.ShortestPathRuns) {
		t.Fatalf("shortest paths %d, want %d", m.ShortestPaths, 1+bk.ShortestPathRuns)
	}
	if got := m.LookToBookRatio(); got != 1 {
		t.Fatalf("look-to-book = %v", got)
	}

	if err := e.CancelBooking(bk.Ride, bk.PickupNode, bk.DropoffNode); err != nil {
		t.Fatal(err)
	}
	if m := e.Metrics(); m.Cancellations != 1 {
		t.Fatalf("cancellations = %d", m.Cancellations)
	}

	if _, err := e.Track(id, 1e12); err != nil {
		t.Fatal(err)
	}
	if m := e.Metrics(); m.TrackCalls != 1 {
		t.Fatalf("track calls = %d", m.TrackCalls)
	}
	e.CompleteRide(id)
	if m := e.Metrics(); m.RidesCompleted != 1 {
		t.Fatalf("completed = %d", m.RidesCompleted)
	}
	// Failed booking counts.
	if _, err := e.Book(Match{Ride: 999}, req); err == nil {
		t.Fatal("expected failure")
	}
	if m := e.Metrics(); m.BookingsFailed == 0 {
		t.Fatal("failed booking not counted")
	}
}

func TestLookToBookRatioZeroBookings(t *testing.T) {
	if got := (Metrics{Searches: 10}).LookToBookRatio(); got != 0 {
		t.Fatalf("ratio with no bookings = %v", got)
	}
	if got := (Metrics{Searches: 480, Bookings: 1}).LookToBookRatio(); got != 480 {
		t.Fatalf("ratio = %v", got)
	}
}
