package core

import (
	"math"
	"math/rand"
	"testing"

	"xar/internal/discretize"
	"xar/internal/geo"
	"xar/internal/index"
	"xar/internal/roadnet"
)

// newTestEngine builds a small deterministic world. The same instance is
// shared via sync.Once-like caching per test binary run to keep the suite
// fast; tests that mutate state build their own.
func newTestEngine(t testing.TB) *Engine {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// farPoints returns two servable points far apart.
func farPoints(t testing.TB, e *Engine) (geo.Point, geo.Point) {
	t.Helper()
	g := e.disc.City().Graph
	a := g.Point(0)
	b := g.Point(roadnet.NodeID(g.NumNodes() - 1))
	if !e.disc.Servable(a) || !e.disc.Servable(b) {
		t.Fatal("corner nodes not servable")
	}
	return a, b
}

func TestNewEngineValidation(t *testing.T) {
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(10, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.DefaultDetourLimit = -1
	if _, err := NewEngine(d, bad); err == nil {
		t.Fatal("negative default detour must be rejected")
	}
	bad = DefaultConfig()
	bad.DefaultSeats = -2
	if _, err := NewEngine(d, bad); err == nil {
		t.Fatal("negative default seats must be rejected")
	}
}

func TestCreateRideBasics(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	if r == nil {
		t.Fatal("created ride not retrievable")
	}
	if r.SeatsAvail != e.cfg.DefaultSeats-1 {
		t.Fatalf("seats avail = %d, want %d (driver occupies one)", r.SeatsAvail, e.cfg.DefaultSeats-1)
	}
	if r.DetourLimit != e.cfg.DefaultDetourLimit {
		t.Fatalf("detour limit = %v", r.DetourLimit)
	}
	if len(r.Route) < 2 || len(r.Via) != 2 {
		t.Fatalf("route %d nodes, %d via-points", len(r.Route), len(r.Via))
	}
	if r.RouteETA[0] != 1000 {
		t.Fatalf("departure ETA = %v", r.RouteETA[0])
	}
	for i := 1; i < len(r.RouteETA); i++ {
		if r.RouteETA[i] <= r.RouteETA[i-1] {
			t.Fatalf("ETAs not strictly increasing at %d", i)
		}
	}
	if e.NumRides() != 1 {
		t.Fatalf("NumRides = %d", e.NumRides())
	}
}

func TestCreateRideValidation(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	if _, err := e.CreateRide(RideOffer{Source: geo.Point{Lat: 99, Lng: 0}, Dest: dst}); err == nil {
		t.Fatal("invalid source must be rejected")
	}
	if _, err := e.CreateRide(RideOffer{Source: src, Dest: src}); err == nil {
		t.Fatal("coincident endpoints must be rejected")
	}
	if _, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Seats: 1}); err == nil {
		t.Fatal("capacity 1 must be rejected")
	}
	if _, err := e.CreateRide(RideOffer{Source: src, Dest: dst, DetourLimit: -4}); err == nil {
		t.Fatal("negative detour must be rejected")
	}
}

func TestRequestValidate(t *testing.T) {
	good := Request{
		Source: geo.Point{Lat: 40.7, Lng: -74}, Dest: geo.Point{Lat: 40.71, Lng: -74},
		EarliestDeparture: 0, LatestDeparture: 100, WalkLimit: 500,
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.LatestDeparture = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("inverted window must be rejected")
	}
	bad = good
	bad.WalkLimit = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative walk limit must be rejected")
	}
	bad = good
	bad.Source = geo.Point{Lat: 999, Lng: 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid coordinates must be rejected")
	}
}

// requestAlong builds a request near the ride's corridor: source near a
// point a fraction along the route, destination near a later fraction.
func requestAlong(e *Engine, r *index.Ride, fromFrac, toFrac, window, walk float64) Request {
	g := e.disc.City().Graph
	si := int(fromFrac * float64(len(r.Route)-1))
	di := int(toFrac * float64(len(r.Route)-1))
	return Request{
		Source:            g.Point(r.Route[si]),
		Dest:              g.Point(r.Route[di]),
		EarliestDeparture: r.Departure - window,
		LatestDeparture:   r.Departure + window,
		WalkLimit:         walk,
	}
}

// mustSearchAlong is requestAlong + Search with a hard failure when
// nothing matches. Every test world is seeded, so "no match" is a
// behavior regression to report, not layout noise to skip over.
func mustSearchAlong(t testing.TB, e *Engine, r *index.Ride, fromFrac, toFrac, window, walk float64) (Request, []Match) {
	t.Helper()
	req := requestAlong(e, r, fromFrac, toFrac, window, walk)
	ms, err := e.Search(req)
	if err != nil {
		t.Fatalf("search along ride %d [%.2f→%.2f]: %v", r.ID, fromFrac, toFrac, err)
	}
	if len(ms) == 0 {
		t.Fatalf("search along ride %d [%.2f→%.2f] found no match on the seeded world", r.ID, fromFrac, toFrac)
	}
	return req, ms
}

func TestSearchFindsCorridorRide(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 1500})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	req := requestAlong(e, r, 0.2, 0.8, 3600, 900)
	ms, err := e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.Ride == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("corridor request did not match the ride (got %d matches)", len(ms))
	}
}

func TestSearchMatchesAreValid(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	rng := rand.New(rand.NewSource(3))
	var ids []index.RideID
	for i := 0; i < 15; i++ {
		a := e.disc.City().RandomPoint(rng)
		b := e.disc.City().RandomPoint(rng)
		id, err := e.CreateRide(RideOffer{Source: a, Dest: b, Departure: float64(rng.Intn(3600)), DetourLimit: 1500})
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	if len(ids) < 5 {
		t.Fatalf("only %d rides created", len(ids))
	}
	_ = src
	_ = dst

	for trial := 0; trial < 50; trial++ {
		req := Request{
			Source:            e.disc.City().RandomPoint(rng),
			Dest:              e.disc.City().RandomPoint(rng),
			EarliestDeparture: 0,
			LatestDeparture:   5400,
			WalkLimit:         600 + rng.Float64()*600,
		}
		ms, err := e.Search(req)
		if err == ErrNotServable {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range ms {
			r := e.Ride(m.Ride)
			if r == nil {
				t.Fatal("match references unknown ride")
			}
			if m.TotalWalk() > req.WalkLimit+1e-9 {
				t.Fatalf("match walk %.1f > limit %.1f", m.TotalWalk(), req.WalkLimit)
			}
			if m.DetourEstimate > r.DetourLimit+1e-9 {
				t.Fatalf("match detour %.1f > ride limit %.1f", m.DetourEstimate, r.DetourLimit)
			}
			if m.DropoffETA < m.PickupETA &&
				!(m.pickupOrder == m.dropoffOrder) {
				t.Fatalf("drop-off ETA %v before pickup ETA %v", m.DropoffETA, m.PickupETA)
			}
			if m.PickupETA < req.EarliestDeparture-1e-9 || m.PickupETA > req.LatestDeparture+1e-9 {
				t.Fatalf("pickup ETA %v outside window [%v,%v]", m.PickupETA, req.EarliestDeparture, req.LatestDeparture)
			}
			if r.SeatsAvail <= 0 {
				t.Fatal("match on a full ride")
			}
			if i > 0 && ms[i-1].TotalWalk() > m.TotalWalk()+1e-9 {
				t.Fatal("matches not sorted by total walk")
			}
		}
	}
}

func TestSearchTimeWindowExcludes(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 10000, DetourLimit: 1500})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	// A window long before the ride departs must not match it.
	req := requestAlong(e, r, 0.2, 0.8, 0, 900)
	req.EarliestDeparture = 0
	req.LatestDeparture = 100
	ms, err := e.Search(req)
	if err != nil && err != ErrNotServable {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Ride == id {
			t.Fatal("ride matched outside its time window")
		}
	}
}

func TestSearchWrongDirectionExcluded(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 800})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	// Request travelling against the ride: source late on the route,
	// destination early.
	req := requestAlong(e, r, 0.9, 0.1, 3600, 600)
	ms, err := e.Search(req)
	if err != nil && err != ErrNotServable {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Ride != id {
			continue
		}
		// The only legitimate way is both supports at the same order with
		// drop-off not before pickup; a long backwards trip with a small
		// detour budget should not produce that.
		if m.DropoffETA < m.PickupETA {
			t.Fatal("backwards match accepted")
		}
	}
}

func TestSearchKLimits(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	for i := 0; i < 8; i++ {
		if _, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: float64(1000 + i), DetourLimit: 1500}); err != nil {
			t.Fatal(err)
		}
	}
	r := e.Ride(1)
	req := requestAlong(e, r, 0.2, 0.8, 3600, 900)
	all, err := e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Skipf("need >= 2 matches for this test, got %d", len(all))
	}
	two, err := e.SearchK(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 {
		t.Fatalf("SearchK(2) returned %d", len(two))
	}
	if two[0].Ride != all[0].Ride || two[1].Ride != all[1].Ride {
		t.Fatal("SearchK must return the best-k prefix")
	}
	unlimited, err := e.SearchK(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(unlimited) != len(all) {
		t.Fatal("k=0 must mean unlimited")
	}
}

func TestSearchNotServable(t *testing.T) {
	e := newTestEngine(t)
	req := Request{
		Source: geo.Point{Lat: 10, Lng: 10}, Dest: geo.Point{Lat: 10.1, Lng: 10},
		LatestDeparture: 100, WalkLimit: 500,
	}
	if _, err := e.Search(req); err != ErrNotServable {
		t.Fatalf("err = %v, want ErrNotServable", err)
	}
}

func TestBookEndToEnd(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	req := requestAlong(e, r, 0.25, 0.75, 3600, 900)
	ms, err := e.Search(req)
	if err != nil || len(ms) == 0 {
		t.Fatalf("search: %v, %d matches", err, len(ms))
	}
	var m Match
	for _, c := range ms {
		if c.Ride == id {
			m = c
			break
		}
	}
	if m.Ride != id {
		t.Fatal("target ride not matched")
	}
	seatsBefore := r.SeatsAvail
	detourBefore := r.DetourLimit
	viaBefore := len(r.Via)
	lenBefore, _ := e.disc.City().Graph.PathLength(r.Route)

	bk, err := e.Book(m, req)
	if err != nil {
		t.Fatal(err)
	}
	if bk.ShortestPathRuns > 4 {
		t.Fatalf("booking ran %d shortest paths, paper bound is 4", bk.ShortestPathRuns)
	}
	r = e.Ride(id) // snapshots don't observe the booking; re-fetch
	if r.SeatsAvail != seatsBefore-1 {
		t.Fatalf("seats %d → %d", seatsBefore, r.SeatsAvail)
	}
	if len(r.Via) != viaBefore+2 {
		t.Fatalf("via-points %d → %d, want +2", viaBefore, len(r.Via))
	}
	lenAfter, err := e.disc.City().Graph.PathLength(r.Route)
	if err != nil {
		t.Fatalf("route corrupted by booking: %v", err)
	}
	if math.Abs((lenAfter-lenBefore)-bk.DetourActual) > 1 {
		t.Fatalf("reported detour %.1f, route grew %.1f", bk.DetourActual, lenAfter-lenBefore)
	}
	if detourBefore-r.DetourLimit < bk.DetourActual-1e-6 && r.DetourLimit > 0 {
		t.Fatalf("budget not charged: %v → %v for detour %v", detourBefore, r.DetourLimit, bk.DetourActual)
	}
	// Approximation guarantee: the booking's additive error is ≤ 4ε.
	if bk.ApproxError() > 4*e.disc.Epsilon()+1e-6 {
		t.Fatalf("approx error %.1f > 4ε = %.1f", bk.ApproxError(), 4*e.disc.Epsilon())
	}
	// Via-point ordering along the route.
	for i := 1; i < len(r.Via); i++ {
		if r.Via[i].RouteIdx < r.Via[i-1].RouteIdx {
			t.Fatal("via-points out of route order")
		}
	}
	// Via nodes actually appear at their claimed route positions.
	for _, v := range r.Via {
		if r.Route[v.RouteIdx] != v.Node {
			t.Fatalf("via %v not at route index %d", v.Node, v.RouteIdx)
		}
	}
	// Pickup must precede drop-off.
	var puIdx, doIdx = -1, -1
	for _, v := range r.Via {
		switch v.Kind {
		case index.ViaPickup:
			puIdx = v.RouteIdx
		case index.ViaDropoff:
			doIdx = v.RouteIdx
		}
	}
	if puIdx < 0 || doIdx < 0 || doIdx < puIdx {
		t.Fatalf("pickup at %d, drop-off at %d", puIdx, doIdx)
	}
	if err := e.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBookConsumesSeatsUntilFull(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, Seats: 3, DetourLimit: 4000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	booked := 0
	for i := 0; i < 5; i++ {
		req := requestAlong(e, r, 0.3, 0.7, 3600, 900)
		ms, err := e.Search(req)
		if err != nil || len(ms) == 0 {
			break
		}
		var m *Match
		for j := range ms {
			if ms[j].Ride == id {
				m = &ms[j]
				break
			}
		}
		if m == nil {
			break
		}
		if _, err := e.Book(*m, req); err != nil {
			if err == ErrRideFull {
				break
			}
			t.Fatal(err)
		}
		booked++
		r = e.Ride(id) // re-fetch: snapshots don't observe bookings
	}
	if booked != 2 {
		t.Fatalf("capacity-3 ride accepted %d bookings, want 2 (driver + 2)", booked)
	}
	if r.SeatsAvail != 0 {
		t.Fatalf("seats avail = %d after filling", r.SeatsAvail)
	}
}

func TestBookUnknownRide(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	req := Request{Source: src, Dest: dst, LatestDeparture: 100, WalkLimit: 500}
	if _, err := e.Book(Match{Ride: 999}, req); err != ErrUnknownRide {
		t.Fatalf("err = %v, want ErrUnknownRide", err)
	}
}

func TestTrackAdvancesAndCompletes(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, DetourLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	endETA := r.RouteETA[len(r.RouteETA)-1]

	arrived, err := e.Track(id, endETA/2)
	if err != nil {
		t.Fatal(err)
	}
	if arrived {
		t.Fatal("ride arrived at half time")
	}
	// e.Ride returns a snapshot; re-fetch to observe the advance.
	if e.Ride(id).Progress == 0 {
		t.Fatal("tracking did not advance progress")
	}
	arrived, err = e.Track(id, endETA+1)
	if err != nil {
		t.Fatal(err)
	}
	if !arrived {
		t.Fatal("ride did not arrive after its final ETA")
	}
	if _, err := e.Track(999, 0); err != ErrUnknownRide {
		t.Fatalf("err = %v, want ErrUnknownRide", err)
	}
}

func TestTrackedRideNotMatchedBehindVehicle(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, DetourLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	// Request near the start of the route.
	req := requestAlong(e, r, 0.05, 0.6, 1e6, 600)

	msBefore, err := e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	foundBefore := false
	for _, m := range msBefore {
		if m.Ride == id {
			foundBefore = true
		}
	}
	if !foundBefore {
		t.Skip("start-of-route request did not match; layout-dependent")
	}

	// Drive most of the route, then search again: the early pickup must
	// no longer be offered.
	endETA := r.RouteETA[len(r.RouteETA)-1]
	if _, err := e.Track(id, endETA*0.9); err != nil {
		t.Fatal(err)
	}
	msAfter, err := e.Search(req)
	if err != nil && err != ErrNotServable {
		t.Fatal(err)
	}
	for _, m := range msAfter {
		if m.Ride == id {
			t.Fatal("ride still offered for a pickup point it has passed")
		}
	}
}

func TestTrackAll(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	var lastETA float64
	for i := 0; i < 4; i++ {
		id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: float64(i * 100), DetourLimit: 500})
		if err != nil {
			t.Fatal(err)
		}
		r := e.Ride(id)
		if eta := r.RouteETA[len(r.RouteETA)-1]; eta > lastETA {
			lastETA = eta
		}
	}
	done, err := e.TrackAll(lastETA + 1)
	if err != nil {
		t.Fatal(err)
	}
	if done != 4 {
		t.Fatalf("completed %d of 4", done)
	}
	if e.NumRides() != 0 {
		t.Fatalf("%d rides left after completion", e.NumRides())
	}
}

func TestCompleteRide(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !e.CompleteRide(id) {
		t.Fatal("CompleteRide returned false")
	}
	if e.CompleteRide(id) {
		t.Fatal("double completion must return false")
	}
	if e.Ride(id) != nil {
		t.Fatal("completed ride still retrievable")
	}
}

func TestBookedRideServesRequestEndToEnd(t *testing.T) {
	// Full lifecycle: create, search, book, then drive the route and
	// confirm the vehicle passes the pickup and drop-off nodes in order.
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, DetourLimit: 2500})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	req := requestAlong(e, r, 0.3, 0.7, 1e6, 900)
	ms, err := e.Search(req)
	if err != nil || len(ms) == 0 {
		t.Fatalf("search: %v / %d", err, len(ms))
	}
	bk, err := e.Book(ms[0], req)
	if err != nil {
		t.Fatal(err)
	}
	seenPickup, seenDrop := false, false
	for _, n := range r.Route {
		if n == bk.PickupNode {
			seenPickup = true
		}
		if n == bk.DropoffNode && seenPickup {
			seenDrop = true
		}
	}
	if !seenPickup || !seenDrop {
		t.Fatalf("route does not visit pickup %v then drop-off %v", bk.PickupNode, bk.DropoffNode)
	}
	if bk.PickupETA > bk.DropoffETA {
		t.Fatalf("pickup ETA %v after drop-off ETA %v", bk.PickupETA, bk.DropoffETA)
	}
	if bk.WalkSource+bk.WalkDest > req.WalkLimit+1e-9 {
		t.Fatal("booking walk exceeds request limit")
	}
}

func TestConcurrentSearchesDuringMutations(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	for i := 0; i < 10; i++ {
		if _, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: float64(i * 60), DetourLimit: 1500}); err != nil {
			t.Fatal(err)
		}
	}
	r := e.Ride(1)
	req := requestAlong(e, r, 0.2, 0.8, 1e6, 900)

	done := make(chan error, 16)
	for w := 0; w < 8; w++ {
		go func() {
			var err error
			for i := 0; i < 50; i++ {
				if _, serr := e.Search(req); serr != nil && serr != ErrNotServable {
					err = serr
					break
				}
			}
			done <- err
		}()
	}
	for w := 0; w < 8; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 10; i++ {
				if _, cerr := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: float64(w*1000 + i), DetourLimit: 1000}); cerr != nil {
					err = cerr
					break
				}
			}
			done <- err
		}(w)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineWithALTPathsIdenticalBehavior(t *testing.T) {
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewEngine(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	altCfg := DefaultConfig()
	altCfg.UseALTPaths = true
	fast, err := NewEngine(d, altCfg)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := farPoints(t, plain)
	idP, err := plain.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, DetourLimit: 2000})
	if err != nil {
		t.Fatal(err)
	}
	idF, err := fast.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, DetourLimit: 2000})
	if err != nil {
		t.Fatal(err)
	}
	rp, rf := plain.Ride(idP), fast.Ride(idF)
	if len(rp.Route) != len(rf.Route) {
		t.Fatalf("ALT route has %d nodes, plain %d", len(rf.Route), len(rp.Route))
	}
	lp, _ := city.Graph.PathLength(rp.Route)
	lf, _ := city.Graph.PathLength(rf.Route)
	if math.Abs(lp-lf) > 1e-6 {
		t.Fatalf("ALT route length %v, plain %v", lf, lp)
	}
	req := requestAlong(plain, rp, 0.3, 0.7, 1e6, 900)
	mp, _ := plain.Search(req)
	mf, _ := fast.Search(req)
	if len(mp) != len(mf) {
		t.Fatalf("match counts differ: %d vs %d", len(mp), len(mf))
	}
	if len(mp) > 0 {
		bp, errP := plain.Book(mp[0], req)
		bf, errF := fast.Book(mf[0], req)
		if (errP == nil) != (errF == nil) {
			t.Fatalf("booking outcomes differ: %v vs %v", errP, errF)
		}
		if errP == nil && math.Abs(bp.DetourActual-bf.DetourActual) > 1e-6 {
			t.Fatalf("booking detours differ: %v vs %v", bp.DetourActual, bf.DetourActual)
		}
	}
}

func TestCongestionProfileSlowsPeakRides(t *testing.T) {
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.UseCongestionProfile = true
	e, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := farPoints(t, e)

	duration := func(departure float64) float64 {
		id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: departure})
		if err != nil {
			t.Fatal(err)
		}
		r := e.Ride(id)
		dur := r.RouteETA[len(r.RouteETA)-1] - r.RouteETA[0]
		e.CompleteRide(id)
		return dur
	}
	night := duration(3 * 3600)    // 3am: free flow
	amPeak := duration(8.5 * 3600) // 8:30am: rush hour
	if amPeak < night*1.3 {
		t.Fatalf("peak ride %.0fs not meaningfully slower than night ride %.0fs", amPeak, night)
	}
	// Without the profile, departure time does not matter.
	plain, err := NewEngine(d, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e2dur := func(dep float64) float64 {
		id, _ := plain.CreateRide(RideOffer{Source: src, Dest: dst, Departure: dep})
		r := plain.Ride(id)
		dur := r.RouteETA[len(r.RouteETA)-1] - r.RouteETA[0]
		plain.CompleteRide(id)
		return dur
	}
	if math.Abs(e2dur(3*3600)-e2dur(8.5*3600)) > 1e-6 {
		t.Fatal("free-flow engine must be time-invariant")
	}
}
