package core

import (
	"context"
	"log/slog"
	"runtime/pprof"
	"sync"
	"testing"
	"time"

	"xar/internal/discretize"
	"xar/internal/roadnet"
	"xar/internal/telemetry"
)

// newInstrumentedEngine builds a test engine recording into reg.
func newInstrumentedEngine(t testing.TB, mutate func(*Config)) (*Engine, *telemetry.Registry) {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig()
	cfg.Telemetry = reg
	cfg.SearchSampleRate = 1 // exact-count assertions need every search traced
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, reg
}

// TestEngineOpHistograms drives one full ride life-cycle and checks
// every operation and every reached search stage recorded at least one
// observation into the shared registry.
func TestEngineOpHistograms(t *testing.T) {
	e, reg := newInstrumentedEngine(t, nil)
	src, dst := farPoints(t, e)

	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	req := requestAlong(e, r, 0.3, 0.7, 3600, 900)
	ms, err := e.Search(req)
	if err != nil {
		t.Fatal(err)
	}

	for _, op := range []string{"create", "search"} {
		if n := telemetry.OpDuration(reg, op).Count(); n == 0 {
			t.Fatalf("op %q histogram empty", op)
		}
	}
	for _, st := range []string{"side_lookup", "candidate_scan", "final_check", "detour_check"} {
		if n := telemetry.SearchStage(reg, st).Count(); n == 0 {
			t.Fatalf("stage %q histogram empty", st)
		}
	}

	if len(ms) == 0 {
		t.Fatal("corridor search found no match on the seeded world")
	}
	bk, err := e.Book(ms[0], req)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CancelBooking(bk.Ride, bk.PickupNode, bk.DropoffNode); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Track(id, 1e12); err != nil {
		t.Fatal(err)
	}
	e.CompleteRide(id)
	for _, op := range []string{"book", "cancel", "track", "complete"} {
		if n := telemetry.OpDuration(reg, op).Count(); n == 0 {
			t.Fatalf("op %q histogram empty", op)
		}
	}

	// Sanity: durations are positive and small (sum > 0, p99 < 10s).
	h := telemetry.OpDuration(reg, "search")
	if h.Sum() <= 0 || h.Quantile(0.99) > 10 {
		t.Fatalf("search histogram implausible: sum=%v p99=%v", h.Sum(), h.Quantile(0.99))
	}
}

// TestSlowOpLog verifies the slow-operation log fires above the
// threshold and respects the configured logger.
func TestSlowOpLog(t *testing.T) {
	rec := &recordingHandler{}
	e, _ := newInstrumentedEngine(t, func(cfg *Config) {
		cfg.SlowOpThreshold = time.Nanosecond // everything is slow
		cfg.SlowOpLogger = slog.New(rec)
	})
	src, dst := farPoints(t, e)
	if _, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000}); err != nil {
		t.Fatal(err)
	}
	if rec.count() == 0 {
		t.Fatal("no slow-op record emitted at 1ns threshold")
	}
	if op := rec.lastOp(); op != "create" {
		t.Fatalf("slow-op record op = %q", op)
	}
}

// TestSlowOpLogWithoutRegistry: slow logging alone must work without an
// exposed registry.
func TestSlowOpLogWithoutRegistry(t *testing.T) {
	rec := &recordingHandler{}
	e, _ := newInstrumentedEngine(t, func(cfg *Config) {
		cfg.Telemetry = nil
		cfg.SlowOpThreshold = time.Nanosecond
		cfg.SlowOpLogger = slog.New(rec)
	})
	src, dst := farPoints(t, e)
	if _, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000}); err != nil {
		t.Fatal(err)
	}
	if rec.count() == 0 {
		t.Fatal("slow-op log requires no registry")
	}
}

// TestSearchTelemetryConcurrent hammers an instrumented engine's search
// path from 8 goroutines — the -race check for the stage histograms.
func TestSearchTelemetryConcurrent(t *testing.T) {
	e, reg := newInstrumentedEngine(t, nil)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500})
	if err != nil {
		t.Fatal(err)
	}
	req := requestAlong(e, e.Ride(id), 0.3, 0.7, 3600, 900)

	const goroutines, perG = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if _, err := e.Search(req); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := telemetry.OpDuration(reg, "search").Count(); n != goroutines*perG {
		t.Fatalf("search observations = %d, want %d", n, goroutines*perG)
	}
}

// TestSearchSampling: at rate N, exactly 1 in N searches lands in the op
// histogram while the Metrics counter still counts every search.
func TestSearchSampling(t *testing.T) {
	e, reg := newInstrumentedEngine(t, func(cfg *Config) {
		cfg.SearchSampleRate = 4
	})
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500})
	if err != nil {
		t.Fatal(err)
	}
	req := requestAlong(e, e.Ride(id), 0.3, 0.7, 3600, 900)
	const searches = 100
	for i := 0; i < searches; i++ {
		if _, err := e.Search(req); err != nil {
			t.Fatal(err)
		}
	}
	if n := telemetry.OpDuration(reg, "search").Count(); n != searches/4 {
		t.Fatalf("sampled observations = %d, want %d", n, searches/4)
	}
	if n := e.Metrics().Searches; n != searches {
		t.Fatalf("Metrics.Searches = %d, want %d (sampling must not affect counters)", n, searches)
	}
	// Rates round up to a power of two; 5 → 8.
	tel := newEngineTelemetry(nil, nil, 5, 0, nil)
	if tel.sampleMask != 7 {
		t.Fatalf("sampleMask for rate 5 = %d, want 7", tel.sampleMask)
	}
}

func TestMetricsMatchRate(t *testing.T) {
	if got := (Metrics{}).MatchRate(); got != 0 {
		t.Fatalf("empty match rate = %v", got)
	}
	if got := (Metrics{Searches: 4, SearchMatches: 6}).MatchRate(); got != 1.5 {
		t.Fatalf("match rate = %v", got)
	}
}

// recordingHandler is a minimal slog.Handler capturing records.
type recordingHandler struct {
	mu      sync.Mutex
	records []map[string]any
}

func (h *recordingHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *recordingHandler) Handle(_ context.Context, r slog.Record) error {
	attrs := map[string]any{}
	r.Attrs(func(a slog.Attr) bool {
		attrs[a.Key] = a.Value.Any()
		return true
	})
	h.mu.Lock()
	h.records = append(h.records, attrs)
	h.mu.Unlock()
	return nil
}

func (h *recordingHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *recordingHandler) WithGroup(string) slog.Handler      { return h }

func (h *recordingHandler) count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.records)
}

func (h *recordingHandler) lastOp() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.records) == 0 {
		return ""
	}
	op, _ := h.records[len(h.records)-1]["op"].(string)
	return op
}

// TestOpErrorCounters checks failed operations land in
// xar_op_errors_total{op} while successes do not.
func TestOpErrorCounters(t *testing.T) {
	e, reg := newInstrumentedEngine(t, nil)
	errCount := func(op string) uint64 {
		return reg.Counter("xar_op_errors_total", "", telemetry.L("op", op)).Value()
	}

	// Failing ops: unknown ride book, invalid search window.
	if _, err := e.Book(Match{Ride: 999999}, Request{Source: e.Disc().Landmarks[0].Point, Dest: e.Disc().Landmarks[1].Point, EarliestDeparture: 0, LatestDeparture: 10, WalkLimit: 500}); err == nil {
		t.Fatal("booking an unknown ride succeeded")
	}
	if _, err := e.Search(Request{Source: e.Disc().Landmarks[0].Point, Dest: e.Disc().Landmarks[1].Point, EarliestDeparture: 10, LatestDeparture: 5}); err == nil {
		t.Fatal("inverted-window search succeeded")
	}
	if errCount("book") != 1 {
		t.Fatalf("book errors = %d, want 1", errCount("book"))
	}
	// Validation rejects before the op span opens; only engine-level
	// failures count. The search error counter must exist but stay 0.
	if errCount("search") != 0 {
		t.Fatalf("search errors = %d, want 0 (validation failures precede the op)", errCount("search"))
	}

	// A successful create adds no error.
	src, dst := farPoints(t, e)
	if _, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000}); err != nil {
		t.Fatal(err)
	}
	if errCount("create") != 0 {
		t.Fatalf("create errors = %d, want 0", errCount("create"))
	}
}

// TestPprofLabelsPath exercises every labeled wrapper (create, search,
// book incl. splice, parallel fan-out) with PprofLabels enabled, and
// checks the op label is visible on the goroutine during the operation.
func TestPprofLabelsPath(t *testing.T) {
	e, _ := newInstrumentedEngine(t, func(c *Config) {
		c.PprofLabels = true
		c.SearchWorkers = 2
	})
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	req := requestAlong(e, r, 0.3, 0.7, 3600, 900)
	ms, err := e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) > 0 {
		if _, err := e.Book(ms[0], req); err != nil {
			t.Fatal(err)
		}
	}
	// Label visibility: inside a labeled region, pprof.Label reports it.
	got := ""
	pprof.Do(context.Background(), pprof.Labels("probe", "x"), func(ctx context.Context) {
		if _, err := e.SearchCtx(ctx, req); err != nil {
			t.Fatal(err)
		}
		got, _ = pprof.Label(ctx, "probe")
	})
	if got != "x" {
		t.Fatalf("pprof label context broken: probe=%q", got)
	}
}
