package core

import (
	"context"
	"time"

	"xar/internal/index"
	"xar/internal/journal"
)

// Track implements ride tracking (§VIII-A) by wall clock: it advances the
// ride's position to the last route node whose ETA is ≤ now and updates
// the index, marking crossed pass-through clusters obsolete and dropping
// the ride from clusters it can no longer serve.
//
// It returns true when the ride has arrived at its destination.
func (e *Engine) Track(id index.RideID, now float64) (bool, error) {
	return e.TrackCtx(context.Background(), id, now)
}

// TrackCtx is Track with trace propagation.
func (e *Engine) TrackCtx(ctx context.Context, id index.RideID, now float64) (arrived bool, err error) {
	_, span := e.tel.startOp(ctx, opTrack)
	if e.tel != nil || span != nil {
		defer func(start time.Time) {
			now := time.Now()
			span.SetError(err)
			// Observe before End: sealing recycles the trace record.
			e.tel.observeOp(opTrack, now.Sub(start), span, err)
			span.EndAt(now)
		}(time.Now())
	}
	sh := e.ix.ShardFor(id)
	sh.Lock()
	defer sh.Unlock()

	e.m.trackCalls.Add(1)
	r := sh.Ix.Ride(id)
	if r == nil {
		return false, ErrUnknownRide
	}
	oldPos := r.Progress
	pos := oldPos
	for pos+1 < len(r.RouteETA) && r.RouteETA[pos+1] <= now {
		pos++
	}
	if pos != oldPos {
		if err := sh.Ix.Advance(id, pos); err != nil {
			return false, err
		}
		// Journal the pickups / drop-offs the vehicle just passed. Still
		// under the shard lock, which is safe: the journal takes only
		// its own stripe locks and never calls back into the index.
		if e.jr != nil {
			for _, v := range r.Via {
				if v.RouteIdx <= oldPos || v.RouteIdx > pos {
					continue
				}
				switch v.Kind {
				case index.ViaPickup:
					e.recordEvent(journal.PickedUp, id, span, v.ETA, "")
				case index.ViaDropoff:
					e.recordEvent(journal.DroppedOff, id, span, v.ETA, "")
				}
			}
		}
	}
	return pos == len(r.Route)-1, nil
}

// TrackAll advances every active ride to the given time and removes the
// ones that arrived. It returns the number of completed rides — the
// periodic maintenance pass of a deployment.
func (e *Engine) TrackAll(now float64) (completed int, err error) {
	var toAdvance []index.RideID
	e.ix.View().Rides(func(r *index.Ride) bool {
		toAdvance = append(toAdvance, r.ID)
		return true
	})

	for _, id := range toAdvance {
		arrived, terr := e.Track(id, now)
		if terr != nil {
			if terr == ErrUnknownRide {
				continue // raced with completion; fine
			}
			return completed, terr
		}
		if arrived {
			e.CompleteRide(id)
			completed++
		}
	}
	return completed, nil
}
