package core

// Fault-injection drills for the online invariant auditor: corrupt the
// engine's state behind its back — the exact failure modes the auditor
// exists to catch — and assert each seeded fault surfaces as exactly its
// own `invariant` label. Lives in package core (not audit) because the
// faults need white-box access to the sharded index under its locks.

import (
	"log/slog"
	"testing"

	"xar/internal/audit"
	"xar/internal/discretize"
	"xar/internal/index"
	"xar/internal/journal"
	"xar/internal/quality"
	"xar/internal/roadnet"
	"xar/internal/telemetry"
)

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// auditedEngine builds a journaled engine plus an auditor over it, with a
// couple of rides and at least one booking so every invariant family has
// real state to check.
func auditedEngine(t *testing.T) (*Engine, *journal.Journal, *audit.Auditor, *telemetry.Registry) {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	jr := journal.New(journal.Config{})
	reg := telemetry.NewRegistry()
	qc := quality.New(reg)
	cfg := DefaultConfig()
	cfg.Journal = jr
	cfg.Quality = qc
	e, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := audit.New(audit.Config{
		Target: audit.Target{
			View:    e.Index(),
			Graph:   d.City().Graph,
			Epsilon: d.Epsilon(),
			Journal: jr,
			Quality: qc,
		},
		Registry: reg,
		Logger:   slog.New(slog.NewTextHandler(discardWriter{}, nil)),
	})

	src, dst := farPoints(t, e)
	for i := 0; i < 4; i++ {
		if _, err := e.CreateRide(RideOffer{
			Source: src, Dest: dst,
			Departure:   1000 + float64(i)*200,
			DetourLimit: 2000,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Book a rider onto ride 1 so pickups > 0 somewhere: the detour-bound
	// and seat-accounting checks then exercise their non-trivial branches.
	r := e.Ride(1)
	if r == nil {
		t.Fatal("ride 1 missing")
	}
	req := requestAlong(e, r, 0.2, 0.8, 3600, 900)
	ms, err := e.Search(req)
	if err != nil || len(ms) == 0 {
		t.Fatalf("seed search found no matches (err=%v)", err)
	}
	if _, err := e.Book(ms[0], req); err != nil {
		t.Fatalf("seed booking failed: %v", err)
	}
	return e, jr, a, reg
}

// labels returns the distinct invariant labels in a report, and the set
// of ride IDs flagged under each.
func labels(rep audit.Report) map[string]map[int64]bool {
	out := map[string]map[int64]bool{}
	for _, v := range rep.Violations {
		if out[v.Invariant] == nil {
			out[v.Invariant] = map[int64]bool{}
		}
		out[v.Invariant][v.Ride] = true
	}
	return out
}

func TestAuditFaultInjection(t *testing.T) {
	e, jr, a, reg := auditedEngine(t)

	mutate := func(id index.RideID, f func(r *index.Ride)) {
		sh := e.ix.ShardFor(id)
		sh.Lock()
		f(sh.Ix.Ride(id))
		sh.Unlock()
	}

	// Baseline: a healthy engine audits clean.
	if rep := a.Audit(); !rep.Clean() {
		t.Fatalf("clean engine flagged: %+v", rep.Violations)
	}

	// Fault 1 — detour_bound: shrink the recorded solo-route length so the
	// realized detour appears to blow through tolerance + 4ε per booking.
	var savedBase float64
	mutate(1, func(r *index.Ride) { savedBase = r.BaseRouteLen; r.BaseRouteLen -= 5e5 })
	rep := a.Audit()
	got := labels(rep)
	if len(got) != 1 || !got[audit.InvDetourBound][1] {
		t.Fatalf("detour fault: labels = %v, want exactly {%s: ride 1}", got, audit.InvDetourBound)
	}
	mutate(1, func(r *index.Ride) { r.BaseRouteLen = savedBase })
	if rep := a.Audit(); !rep.Clean() {
		t.Fatalf("detour repair left violations: %+v", rep.Violations)
	}

	// Fault 2 — capacity: corrupt the seat ledger.
	var savedSeats int
	mutate(2, func(r *index.Ride) { savedSeats = r.SeatsAvail; r.SeatsAvail = -1 })
	got = labels(a.Audit())
	if len(got) != 1 || !got[audit.InvCapacity][2] {
		t.Fatalf("capacity fault: labels = %v, want exactly {%s: ride 2}", got, audit.InvCapacity)
	}
	mutate(2, func(r *index.Ride) { r.SeatsAvail = savedSeats })
	if rep := a.Audit(); !rep.Clean() {
		t.Fatalf("capacity repair left violations: %+v", rep.Violations)
	}

	// Fault 3 — index_consistency: drop ride 3 from one of its cluster
	// lists behind the engine's back; its schedule still supports the
	// cluster, so the index and the schedule now disagree.
	sh := e.ix.ShardFor(3)
	sh.RLock()
	clusters := sh.Ix.Ride(3).ReachableClusters()
	sh.RUnlock()
	if len(clusters) == 0 {
		t.Fatal("ride 3 supports no clusters; cannot seed index fault")
	}
	sh.Lock()
	dropped := sh.Ix.DropFromClusterList(clusters[0], 3)
	sh.Unlock()
	if !dropped {
		t.Fatalf("ride 3 was not listed in cluster %d", clusters[0])
	}
	got = labels(a.Audit())
	if len(got) != 1 || !got[audit.InvIndexConsistency][3] {
		t.Fatalf("index fault: labels = %v, want exactly {%s: ride 3}", got, audit.InvIndexConsistency)
	}

	// Fault 4 — causality: journal a lifecycle event for a ride that was
	// never created. (The index fault from above persists; no repair path
	// exists short of rebuilding, which is the point of the drill.)
	jr.Record(journal.Event{Type: journal.Booked, Ride: 999999})
	got = labels(a.Audit())
	if len(got) != 2 || !got[audit.InvIndexConsistency][3] || !got[audit.InvCausality][999999] {
		t.Fatalf("causality fault: labels = %v, want {%s: ride 3, %s: ride 999999}",
			got, audit.InvIndexConsistency, audit.InvCausality)
	}

	// Fault 5 — funnel accounting: feed the quality collector examined
	// candidates that were never classified into any stage, the signature
	// of a search that dropped a candidate without attributing it.
	e.Quality().AddFunnel(&[quality.NumStages]uint64{}, 5)
	got = labels(a.Audit())
	if len(got[audit.InvFunnelAccounting]) == 0 {
		t.Fatalf("funnel fault: labels = %v, want %s", got, audit.InvFunnelAccounting)
	}

	// Cumulative accounting: every family's counter moved, sweeps counted,
	// and the violating rides are queued for the debug bundle.
	var sweeps float64
	byInv := map[string]float64{}
	for _, fam := range reg.Snapshot() {
		switch fam.Name {
		case "xar_audit_sweeps_total":
			sweeps = *fam.Series[0].Value
		case "xar_audit_violations_total":
			for _, s := range fam.Series {
				byInv[s.Labels["invariant"]] = *s.Value
			}
		}
	}
	if sweeps != 8 {
		t.Fatalf("xar_audit_sweeps_total = %v, want 8", sweeps)
	}
	for _, inv := range audit.Invariants() {
		if byInv[inv] < 1 {
			t.Fatalf("xar_audit_violations_total{invariant=%q} = %v, want ≥ 1 (all: %v)",
				inv, byInv[inv], byInv)
		}
	}
	recent := a.RecentViolatingRides()
	want := map[int64]bool{1: true, 2: true, 3: true, 999999: true}
	for _, id := range recent {
		delete(want, id)
	}
	if len(want) != 0 {
		t.Fatalf("RecentViolatingRides = %v, missing %v", recent, want)
	}
}

// TestAuditCleanUnderWorkload runs a realistic serial workload — creates,
// searches, bookings, cancels, tracking, completions — auditing after
// every phase: the auditor must stay silent on a healthy engine no matter
// where in the lifecycle it samples.
func TestAuditCleanUnderWorkload(t *testing.T) {
	e, _, a, _ := auditedEngine(t)
	src, dst := farPoints(t, e)

	check := func(phase string) {
		t.Helper()
		if rep := a.Audit(); !rep.Clean() {
			t.Fatalf("after %s: %+v", phase, rep.Violations)
		}
	}

	var bookings []Booking
	for i := 0; i < 6; i++ {
		id, err := e.CreateRide(RideOffer{
			Source: src, Dest: dst,
			Departure:   float64(500 + i*300),
			DetourLimit: 1500 + float64(i)*500,
			Seats:       2 + i%3,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := e.Ride(id)
		req := requestAlong(e, r, 0.15, 0.85, 3600, 900)
		if ms, err := e.Search(req); err == nil && len(ms) > 0 {
			if bk, err := e.Book(ms[0], req); err == nil {
				bookings = append(bookings, bk)
			}
		}
	}
	if len(bookings) == 0 {
		t.Fatal("workload landed no bookings")
	}
	check("create+book")

	_ = e.CancelBooking(bookings[0].Ride, bookings[0].PickupNode, bookings[0].DropoffNode)
	check("cancel")

	if _, err := e.TrackAll(2500); err != nil {
		t.Fatal(err)
	}
	check("track")

	e.CompleteRide(bookings[len(bookings)-1].Ride)
	check("complete")
}
