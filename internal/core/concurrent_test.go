package core

import (
	"log/slog"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xar/internal/audit"
	"xar/internal/discretize"
	"xar/internal/index"
	"xar/internal/journal"
	"xar/internal/roadnet"
	"xar/internal/telemetry"
)

// concurrentEngine builds an engine for the stress tests with an
// explicit concurrency configuration.
func concurrentEngine(t testing.TB, shards, workers int) *Engine {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.IndexShards = shards
	cfg.SearchWorkers = workers
	// Tracing on under -race: the span lifecycle (parallel shard fan-out
	// ending spans on worker goroutines, ring-buffer inserts, sealing) is
	// exactly the synchronization the stress test should exercise.
	cfg.Tracer = telemetry.NewTracer(telemetry.TracerConfig{
		SampleRate:    2,
		SlowThreshold: time.Millisecond,
	})
	// Journal on for the same reason: every op goroutine appends into the
	// striped event rings while others read timelines.
	cfg.Journal = journal.New(journal.Config{})
	e, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestConcurrentMixedWorkload is the concurrent analogue of
// failure_test.go: 8+ goroutines hammer one engine with a mix of
// Create/Search/Book/Cancel/Track/Complete while the test asserts the
// engine's invariants hold — seats never negative, bookings only land
// on live rides, cross-structure index invariants intact, and the
// metrics counters mutually consistent. Run it with -race: the sharded
// index, pooled searchers and optimistic booking protocol are exactly
// the code paths whose synchronization it exercises.
func TestConcurrentMixedWorkload(t *testing.T) {
	for _, tc := range []struct {
		name            string
		shards, workers int
	}{
		{"defaultShards_serialSearch", 0, 0},
		{"fourShards_parallelSearch", 4, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := concurrentEngine(t, tc.shards, tc.workers)
			src, dst := farPoints(t, e)

			const goroutines = 8
			iters := 120
			if testing.Short() {
				iters = 30
			}

			// Shared live-ride pool the goroutines sample from.
			var poolMu sync.Mutex
			var pool []index.RideID
			pickRide := func(rng *rand.Rand) (index.RideID, bool) {
				poolMu.Lock()
				defer poolMu.Unlock()
				if len(pool) == 0 {
					return 0, false
				}
				return pool[rng.Intn(len(pool))], true
			}

			var violations atomic.Int32
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					var myBookings []Booking
					for i := 0; i < iters; i++ {
						switch op := rng.Intn(10); {
						case op < 2: // create
							id, err := e.CreateRide(RideOffer{
								Source: src, Dest: dst,
								Departure:   float64(rng.Intn(2000)),
								DetourLimit: 2000 + float64(rng.Intn(2000)),
								Seats:       2 + rng.Intn(3),
							})
							if err == nil {
								poolMu.Lock()
								pool = append(pool, id)
								poolMu.Unlock()
							}
						case op < 6: // search (+ book a found match)
							id, ok := pickRide(rng)
							if !ok {
								continue
							}
							r := e.Ride(id)
							if r == nil {
								continue
							}
							req := requestAlong(e, r, 0.1+rng.Float64()*0.3, 0.6+rng.Float64()*0.3, 3600, 900)
							ms, err := e.Search(req)
							if err != nil || len(ms) == 0 {
								continue
							}
							m := ms[rng.Intn(len(ms))]
							bk, err := e.Book(m, req)
							switch err {
							case nil:
								myBookings = append(myBookings, bk)
							case ErrUnknownRide, ErrRideFull, ErrNoLongerFeasible, ErrDetourExceeded, ErrUnreachable:
								// expected under concurrent mutation
							default:
								t.Errorf("unexpected booking error: %v", err)
								violations.Add(1)
							}
						case op < 7: // cancel one of my bookings
							if len(myBookings) == 0 {
								continue
							}
							bk := myBookings[len(myBookings)-1]
							myBookings = myBookings[:len(myBookings)-1]
							_ = e.CancelBooking(bk.Ride, bk.PickupNode, bk.DropoffNode)
						case op < 9: // track by wall clock
							if id, ok := pickRide(rng); ok {
								_, _ = e.Track(id, float64(rng.Intn(4000)))
							}
						default: // complete (rarely: keep the pool populated)
							if rng.Intn(4) == 0 {
								if id, ok := pickRide(rng); ok {
									e.CompleteRide(id)
								}
							}
						}
						// Seats must never go negative on any observable
						// snapshot.
						if id, ok := pickRide(rng); ok {
							if r := e.Ride(id); r != nil && (r.SeatsAvail < 0 || r.SeatsAvail > r.SeatsTotal-1) {
								t.Errorf("ride %d seats out of range: %d/%d", r.ID, r.SeatsAvail, r.SeatsTotal)
								violations.Add(1)
							}
						}
					}
				}(int64(1000 + g))
			}
			wg.Wait()

			if violations.Load() > 0 {
				t.Fatalf("%d invariant violations during the run", violations.Load())
			}
			if err := e.Index().CheckInvariants(); err != nil {
				t.Fatalf("index invariants after stress: %v", err)
			}
			m := e.Metrics()
			if int(m.RidesCreated)-int(m.RidesCompleted) != e.NumRides() {
				t.Fatalf("created %d − completed %d ≠ live %d",
					m.RidesCreated, m.RidesCompleted, e.NumRides())
			}
			// Every booked ride at the end must still be live or have been
			// completed; no seat count may be negative.
			e.Index().Rides(func(r *index.Ride) bool {
				if r.SeatsAvail < 0 {
					t.Errorf("ride %d has negative seats", r.ID)
				}
				return true
			})
			// Booking on a completed (removed) ride must fail cleanly.
			if id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, DetourLimit: 1500}); err == nil {
				e.CompleteRide(id)
				if _, err := e.Book(Match{Ride: id}, Request{Source: src, Dest: dst, LatestDeparture: 100, WalkLimit: 500}); err != ErrUnknownRide {
					t.Fatalf("booking a completed ride: err = %v, want ErrUnknownRide", err)
				}
			}
			// Every journaled timeline must come back strictly
			// seq-ascending after the concurrent run, and a full audit
			// sweep — schedules, index, journal causality — must be
			// silent on the quiesced engine.
			checked := 0
			e.Journal().PerRide(func(ride int64, evs []journal.Event, _ bool) bool {
				checked++
				for i := 1; i < len(evs); i++ {
					if evs[i-1].Seq >= evs[i].Seq {
						t.Errorf("ride %d timeline not seq-ascending at %d", ride, i)
						return false
					}
				}
				return true
			})
			if checked == 0 {
				t.Fatal("stress run journaled no rides")
			}
			auditor := audit.New(audit.Config{
				Target: audit.Target{
					View:    e.Index(),
					Graph:   e.disc.City().Graph,
					Epsilon: e.disc.Epsilon(),
					Journal: e.Journal(),
				},
				Logger: slog.New(slog.NewTextHandler(discardWriter{}, nil)),
			})
			if rep := auditor.Audit(); !rep.Clean() {
				t.Fatalf("audit after stress: %+v", rep.Violations)
			}
		})
	}
}

// TestShardingDeterministicReplay replays one serial workload against an
// unsharded (1-stripe) and a 16-stripe engine over the same
// discretization and asserts identical observable behaviour: the same
// ride IDs, the same search results and the same booking
// accepted/rejected outcomes. Sharding is a pure partition of the index
// by ride ID — it must not change any single-threaded result.
func TestShardingDeterministicReplay(t *testing.T) {
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	newEng := func(shards int) *Engine {
		cfg := DefaultConfig()
		cfg.IndexShards = shards
		e, err := NewEngine(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e1, e16 := newEng(1), newEng(16)

	g := city.Graph
	rng := rand.New(rand.NewSource(7))
	var ids []index.RideID
	for i := 0; i < 24; i++ {
		o := RideOffer{
			Source:      g.Point(roadnet.NodeID(rng.Intn(g.NumNodes()))),
			Dest:        g.Point(roadnet.NodeID(rng.Intn(g.NumNodes()))),
			Departure:   float64(rng.Intn(2000)),
			DetourLimit: 1500 + float64(rng.Intn(2000)),
		}
		id1, err1 := e1.CreateRide(o)
		id16, err16 := e16.CreateRide(o)
		if (err1 == nil) != (err16 == nil) || id1 != id16 {
			t.Fatalf("create diverged: (%v,%v) vs (%v,%v)", id1, err1, id16, err16)
		}
		if err1 == nil {
			ids = append(ids, id1)
		}
	}
	if len(ids) == 0 {
		t.Fatal("no rides created")
	}

	accepted1, accepted16 := 0, 0
	for i := 0; i < 80; i++ {
		id := ids[rng.Intn(len(ids))]
		r := e1.Ride(id)
		if r == nil {
			continue
		}
		req := requestAlong(e1, r, 0.1+rng.Float64()*0.4, 0.55+rng.Float64()*0.4, 3600, 900)
		ms1, err1 := e1.Search(req)
		ms16, err16 := e16.Search(req)
		if (err1 == nil) != (err16 == nil) || !reflect.DeepEqual(ms1, ms16) {
			t.Fatalf("search %d diverged: %d matches (%v) vs %d matches (%v)", i, len(ms1), err1, len(ms16), err16)
		}
		if err1 != nil || len(ms1) == 0 {
			continue
		}
		bk1, berr1 := e1.Book(ms1[0], req)
		bk16, berr16 := e16.Book(ms16[0], req)
		if (berr1 == nil) != (berr16 == nil) {
			t.Fatalf("booking %d diverged: %v vs %v", i, berr1, berr16)
		}
		if berr1 == nil {
			accepted1++
			accepted16++
			if bk1.Ride != bk16.Ride || bk1.DetourActual != bk16.DetourActual {
				t.Fatalf("booking %d results differ: %+v vs %+v", i, bk1, bk16)
			}
		}
	}
	if accepted1 == 0 {
		t.Skip("no bookings landed; layout-dependent")
	}
	if e1.NumRides() != e16.NumRides() {
		t.Fatalf("ride counts diverged: %d vs %d", e1.NumRides(), e16.NumRides())
	}
	if err := e16.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
