package core

import (
	"math/rand"
	"sync"
	"testing"

	"xar/internal/discretize"
	"xar/internal/index"
	"xar/internal/quality"
	"xar/internal/roadnet"
)

// newQualityEngine builds the deterministic test world with a quality
// collector wired (and, when shadowRate > 0, the shadow counterfactual
// matcher at that sample rate).
func newQualityEngine(t testing.TB, shadowRate int) *Engine {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Quality = quality.New(nil)
	cfg.ShadowSampleRate = shadowRate
	e, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// fullRide creates a corridor ride and books it to zero seats, returning
// the ride and a request that would match it but for capacity.
func fullRide(t *testing.T, e *Engine) (*index.Ride, Request) {
	t.Helper()
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, Seats: 3, DetourLimit: 4000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	req := requestAlong(e, r, 0.3, 0.7, 3600, 900)
	for e.Ride(id).SeatsAvail > 0 {
		ms, err := e.Search(req)
		if err != nil || len(ms) == 0 {
			t.Fatalf("search while filling: %v, %d matches (seats %d)", err, len(ms), e.Ride(id).SeatsAvail)
		}
		if _, err := e.Book(ms[0], req); err != nil {
			t.Fatalf("booking while seats remain: %v", err)
		}
	}
	return e.Ride(id), req
}

func TestFunnelClassifiesMatched(t *testing.T) {
	e := newQualityEngine(t, 0)
	qc := e.Quality()
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2000})
	if err != nil {
		t.Fatal(err)
	}
	req := requestAlong(e, e.Ride(id), 0.25, 0.75, 3600, 900)
	ms, err := e.Search(req)
	if err != nil || len(ms) == 0 {
		t.Fatalf("search: %v, %d matches", err, len(ms))
	}
	if got := qc.FunnelTotal(quality.Matched); got != uint64(len(ms)) {
		t.Fatalf("matched stage = %d, want %d (one per returned match)", got, len(ms))
	}
	if qc.Examined() < uint64(len(ms)) {
		t.Fatalf("examined %d < %d matches", qc.Examined(), len(ms))
	}
	assertFunnelBalanced(t, e)
}

func TestFunnelCapacityStage(t *testing.T) {
	e := newQualityEngine(t, 0)
	qc := e.Quality()
	_, req := fullRide(t, e)

	before := qc.FunnelTotal(quality.Capacity)
	ms, err := e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("full ride still matched %d times", len(ms))
	}
	if qc.FunnelTotal(quality.Capacity) != before+1 {
		t.Fatalf("capacity stage %d → %d, want +1", before, qc.FunnelTotal(quality.Capacity))
	}
	assertFunnelBalanced(t, e)
}

func TestFunnelOrderInfeasibleStage(t *testing.T) {
	e := newQualityEngine(t, 0)
	qc := e.Quality()
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 800})
	if err != nil {
		t.Fatal(err)
	}
	// Travelling against the ride: every candidate evaluation must end in
	// detour_bound or order_infeasible, never matched.
	req := requestAlong(e, e.Ride(id), 0.9, 0.1, 3600, 600)
	ms, err := e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Ride == id && m.DropoffETA < m.PickupETA {
			t.Fatal("backwards match accepted")
		}
	}
	if len(ms) == 0 && qc.FunnelTotal(quality.OrderInfeasible)+qc.FunnelTotal(quality.DetourBound) == 0 {
		t.Fatalf("backwards no-match left no order/detour rejection; funnel: %v", e.Quality().Snapshot().Funnel)
	}
	assertFunnelBalanced(t, e)
}

func TestFunnelWalkLimitStage(t *testing.T) {
	e := newQualityEngine(t, 0)
	qc := e.Quality()
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2000})
	if err != nil {
		t.Fatal(err)
	}
	// Probe (deterministic seed) for a request whose best match needs
	// real walking on both legs. The final-loop walk values are the
	// per-side minima over clusters listing the ride, so every feasible
	// pair totals at least WalkSource+WalkDest: a limit strictly between
	// max(leg) and the sum keeps both endpoints servable but makes the
	// joint walk the unique binding filter.
	rng := rand.New(rand.NewSource(7))
	var probe Request
	var walkSrc, walkDst float64
	found := false
	for trial := 0; trial < 200 && !found; trial++ {
		probe = Request{
			Source:            e.disc.City().RandomPoint(rng),
			Dest:              e.disc.City().RandomPoint(rng),
			EarliestDeparture: 0,
			LatestDeparture:   1e6,
			WalkLimit:         1200,
		}
		ms, err := e.Search(probe)
		if err == ErrNotServable {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			if m.Ride == id && m.WalkSource > 1 && m.WalkDest > 1 {
				walkSrc, walkDst = m.WalkSource, m.WalkDest
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no probe request with positive walk on both legs (seed layout changed?)")
	}
	longer := walkSrc
	if walkDst > longer {
		longer = walkDst
	}
	req := probe
	req.WalkLimit = (longer + walkSrc + walkDst) / 2

	before := qc.FunnelTotal(quality.WalkLimit)
	ms, err := e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Ride == id {
			t.Fatalf("ride matched with walk %v over limit %v", m.TotalWalk(), req.WalkLimit)
		}
	}
	if qc.FunnelTotal(quality.WalkLimit) != before+1 {
		t.Fatalf("walk_limit stage %d → %d, want +1", before, qc.FunnelTotal(quality.WalkLimit))
	}
	assertFunnelBalanced(t, e)
}

// assertFunnelBalanced checks the funnel accounting identity after
// quiescence: every examined candidate classified exactly once.
func assertFunnelBalanced(t *testing.T, e *Engine) {
	t.Helper()
	qc := e.Quality()
	examined, classified, stable := qc.AccountingGap()
	if !stable {
		t.Fatal("accounting gap unstable with no searches in flight")
	}
	if classified != examined {
		t.Fatalf("classified %d != examined %d", classified, examined)
	}
	if got := e.Metrics().CandidatesExamined; got != examined {
		t.Fatalf("engine counter %d != collector examined %d", got, examined)
	}
}

// TestFunnelAccountingConcurrent hammers the search path from 8
// goroutines (run under -race in CI) and asserts the funnel identity:
// the per-stage classification sums exactly to the candidates examined,
// which equals the engine's own counter.
func TestFunnelAccountingConcurrent(t *testing.T) {
	e := newQualityEngine(t, 0)
	src, dst := farPoints(t, e)
	for i := 0; i < 10; i++ {
		if _, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: float64(i * 60), DetourLimit: 1500}); err != nil {
			t.Fatal(err)
		}
	}
	r := e.Ride(1)
	reqs := []Request{
		requestAlong(e, r, 0.2, 0.8, 1e6, 900),
		requestAlong(e, r, 0.8, 0.2, 1e6, 900), // backwards: rejections
		requestAlong(e, r, 0.4, 0.6, 10, 900),  // narrow window
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := e.Search(reqs[(w+i)%len(reqs)]); err != nil && err != ErrNotServable {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if e.Quality().Examined() == 0 {
		t.Fatal("no candidates examined by 400 searches")
	}
	assertFunnelBalanced(t, e)
}

// Detour/order edge cases at exact boundaries.
func TestCheckDetourExactBoundary(t *testing.T) {
	e := newQualityEngine(t, 0)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	req := requestAlong(e, r, 0.25, 0.75, 3600, 900)
	ms, err := e.Search(req)
	if err != nil || len(ms) == 0 {
		t.Fatalf("probe search: %v, %d matches", err, len(ms))
	}
	var est float64 = -1
	for _, m := range ms {
		if m.Ride == id {
			est = m.DetourEstimate
		}
	}
	if est < 0 {
		t.Fatal("target ride not in probe matches")
	}
	e.CompleteRide(id)

	// A ride whose budget equals the estimate exactly must still match
	// (the bound is inclusive, detour ≤ limit)...
	atID, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: est})
	if err != nil {
		t.Fatal(err)
	}
	ms, err = e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.Ride == atID {
			found = true
			if m.DetourEstimate != est {
				t.Fatalf("boundary match estimate %v, want %v", m.DetourEstimate, est)
			}
		}
	}
	if !found && est > 0 {
		t.Fatalf("detour exactly at the limit (%v) no longer matches", est)
	}
	e.CompleteRide(atID)

	// ...while a budget just under it must reject as detour_bound (an
	// order-feasible pair exists; only the budget binds).
	if est > 1 {
		before := e.Quality().FunnelTotal(quality.DetourBound)
		underID, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: est - 1})
		if err != nil {
			t.Fatal(err)
		}
		ms, err = e.Search(req)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			if m.Ride == underID {
				t.Fatalf("budget %v matched with estimate %v", est-1, m.DetourEstimate)
			}
		}
		if e.Quality().FunnelTotal(quality.DetourBound) != before+1 {
			t.Fatalf("under-budget rejection not classified detour_bound (total %d → %d)",
				before, e.Quality().FunnelTotal(quality.DetourBound))
		}
	}
	assertFunnelBalanced(t, e)
}

func TestSearchZeroSlackWindow(t *testing.T) {
	e := newQualityEngine(t, 0)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	req := requestAlong(e, r, 0.25, 0.75, 3600, 900)
	ms, err := e.Search(req)
	if err != nil || len(ms) == 0 {
		t.Fatalf("probe search: %v, %d matches", err, len(ms))
	}
	var pickup float64 = -1
	for _, m := range ms {
		if m.Ride == id {
			pickup = m.PickupETA
		}
	}
	if pickup < 0 {
		t.Fatal("target ride not matched by probe")
	}
	// A degenerate window [pickup, pickup] must still admit the ride:
	// the window bounds are inclusive.
	req.EarliestDeparture = pickup
	req.LatestDeparture = pickup
	ms, err = e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.Ride == id && m.PickupETA == pickup {
			found = true
		}
	}
	if !found {
		t.Fatalf("zero-slack window [%v,%v] excluded the ride whose pickup ETA defines it", pickup, pickup)
	}
	assertFunnelBalanced(t, e)
}

// TestShadowUnlocksCapacity is the seeded counterfactual scenario of the
// acceptance criteria: a ride booked to zero seats, a request that would
// otherwise match it — the shadow matcher must attribute the no-match to
// capacity and to nothing else.
func TestShadowUnlocksCapacity(t *testing.T) {
	e := newQualityEngine(t, 1)
	qc := e.Quality()
	_, req := fullRide(t, e)

	ms, err := e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("full ride matched %d times", len(ms))
	}
	e.ShadowFlush()

	if got := qc.UnlockTotal(quality.ConstraintCapacity); got == 0 {
		t.Fatalf("capacity unlock = %d, want ≥ 1; snapshot: %+v", got, qc.Snapshot().Shadow)
	}
	for _, con := range quality.Constraints() {
		if con == quality.ConstraintCapacity {
			continue
		}
		if got := qc.UnlockTotal(con); got != 0 {
			t.Errorf("constraint %q unlocked %d times; only capacity binds here", con, got)
		}
	}
	snap := qc.Snapshot()
	if snap.Shadow.Tasks[quality.TaskNoMatch] == 0 {
		t.Fatal("no no-match shadow task processed despite sample rate 1")
	}
	// The two seat-consuming bookings were shadow-sampled too: the regret
	// section must show them re-evaluated.
	if snap.Shadow.Regret.Bookings == 0 {
		t.Fatal("no regret task processed despite two bookings at sample rate 1")
	}
	if !snap.Shadow.Enabled {
		t.Fatal("snapshot does not report the shadow matcher enabled")
	}
}

// TestShadowDisabledByDefault: without a ShadowSampleRate the engine runs
// no shadow goroutine and the collector reports it disabled.
func TestShadowDisabledByDefault(t *testing.T) {
	e := newQualityEngine(t, 0)
	src, dst := farPoints(t, e)
	if _, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 1500}); err != nil {
		t.Fatal(err)
	}
	req := requestAlong(e, e.Ride(1), 0.9, 0.1, 10, 600)
	if _, err := e.Search(req); err != nil && err != ErrNotServable {
		t.Fatal(err)
	}
	e.ShadowFlush() // must be a no-op, not a hang
	snap := e.Quality().Snapshot()
	if snap.Shadow.Enabled {
		t.Fatal("shadow reported enabled without a sample rate")
	}
	if snap.Shadow.Tasks[quality.TaskNoMatch] != 0 {
		t.Fatal("shadow task processed without a shadow matcher")
	}
}
