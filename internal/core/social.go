package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"xar/internal/geo"
	"xar/internal/index"
)

// UserID identifies a rider or driver for social prioritization.
type UserID int64

// SocialGraph is an undirected friendship graph. The paper motivates
// returning multiple matches per request partly so that "rides offered
// by people in the social network graph of the requester can be given
// higher priority while listing the options" (§VII) — this type and
// Engine.RankSocially implement that.
//
// SocialGraph is safe for concurrent use.
type SocialGraph struct {
	mu  sync.RWMutex
	adj map[UserID]map[UserID]struct{}
}

// NewSocialGraph creates an empty graph.
func NewSocialGraph() *SocialGraph {
	return &SocialGraph{adj: make(map[UserID]map[UserID]struct{})}
}

// AddFriendship records a mutual connection. Self-friendships are
// ignored.
func (g *SocialGraph) AddFriendship(a, b UserID) {
	if a == b {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.adj[a] == nil {
		g.adj[a] = make(map[UserID]struct{})
	}
	if g.adj[b] == nil {
		g.adj[b] = make(map[UserID]struct{})
	}
	g.adj[a][b] = struct{}{}
	g.adj[b][a] = struct{}{}
}

// Friends returns the degree of a user.
func (g *SocialGraph) Friends(a UserID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.adj[a])
}

// Distance returns the hop distance between two users, exploring at most
// maxDepth hops; it returns maxDepth+1 when they are farther (or
// unknown). Distance(a, a) is 0.
func (g *SocialGraph) Distance(a, b UserID, maxDepth int) int {
	if a == b {
		return 0
	}
	if maxDepth < 1 {
		return 1
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	// Bidirectional-ish plain BFS; social queries are shallow (≤ 3).
	visited := map[UserID]int{a: 0}
	frontier := []UserID{a}
	for depth := 1; depth <= maxDepth; depth++ {
		var next []UserID
		for _, u := range frontier {
			for v := range g.adj[u] {
				if _, seen := visited[v]; seen {
					continue
				}
				if v == b {
					return depth
				}
				visited[v] = depth
				next = append(next, v)
			}
		}
		frontier = next
	}
	return maxDepth + 1
}

// SocialRankDepth bounds how far the friendship BFS explores when
// ranking matches: direct friends, then friends-of-friends.
const SocialRankDepth = 2

// RankSocially reorders matches so rides offered by socially-closer
// drivers come first; ties keep the least-walk order Search produced.
// Matches on rides with no recorded owner rank last among equals.
func (e *Engine) RankSocially(matches []Match, requester UserID, g *SocialGraph) []Match {
	if g == nil || len(matches) < 2 {
		return matches
	}
	type ranked struct {
		m    Match
		dist int
		pos  int
	}
	rs := make([]ranked, len(matches))
	for i, m := range matches {
		d := SocialRankDepth + 1
		// Owner is immutable after creation; a brief per-ride shard read
		// lock suffices (matches in one ranking may span shards).
		sh := e.ix.ShardFor(m.Ride)
		sh.RLock()
		var owner int64
		if r := sh.Ix.Ride(m.Ride); r != nil {
			owner = r.Owner
		}
		sh.RUnlock()
		if owner != 0 {
			d = g.Distance(requester, UserID(owner), SocialRankDepth)
		}
		rs[i] = ranked{m: m, dist: d, pos: i}
	}
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].dist != rs[j].dist {
			return rs[i].dist < rs[j].dist
		}
		return rs[i].pos < rs[j].pos
	})
	out := make([]Match, len(matches))
	for i, r := range rs {
		out[i] = r.m
	}
	return out
}

// SearchBatch runs many searches concurrently — the load pattern of an
// MMTP issuing C(k+1,2) segment searches per trip plan (§IX-B). Results
// align with the requests; individual failures are reported in errs.
// parallelism ≤ 0 uses one worker per request up to 8.
func (e *Engine) SearchBatch(reqs []Request, k, parallelism int) (results [][]Match, errs []error) {
	return e.SearchBatchCtx(context.Background(), reqs, k, parallelism)
}

// SearchBatchCtx is SearchBatch with trace propagation: every segment
// search of the batch joins the context's trace (each as its own
// "search" span), so one trace shows the whole MMTP fan-out.
func (e *Engine) SearchBatchCtx(ctx context.Context, reqs []Request, k, parallelism int) (results [][]Match, errs []error) {
	results = make([][]Match, len(reqs))
	errs = make([]error, len(reqs))
	if parallelism <= 0 {
		parallelism = len(reqs)
		if parallelism > 8 {
			parallelism = 8
		}
	}
	if parallelism > len(reqs) {
		parallelism = len(reqs)
	}
	if parallelism == 0 {
		return results, errs
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = e.SearchKCtx(ctx, reqs[i], k)
			}
		}()
	}
	for i := range reqs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, errs
}

// TrackPosition implements GPS-report tracking: the vehicle reports its
// location, the engine snaps it to the nearest remaining route node and
// advances the ride there. Reports that snap behind the current progress
// are ignored (GPS jitter must not move a ride backwards). It reports
// arrival at the destination.
func (e *Engine) TrackPosition(id index.RideID, report geo.Point) (bool, error) {
	return e.TrackPositionCtx(context.Background(), id, report)
}

// TrackPositionCtx is TrackPosition with trace propagation.
func (e *Engine) TrackPositionCtx(ctx context.Context, id index.RideID, report geo.Point) (arrived bool, err error) {
	_, span := e.tel.startOp(ctx, opTrack)
	if e.tel != nil || span != nil {
		defer func(start time.Time) {
			now := time.Now()
			span.SetError(err)
			// Observe before End: sealing recycles the trace record.
			e.tel.observeOp(opTrack, now.Sub(start), span, err)
			span.EndAt(now)
		}(time.Now())
	}
	sh := e.ix.ShardFor(id)
	sh.Lock()
	defer sh.Unlock()

	r := sh.Ix.Ride(id)
	if r == nil {
		return false, ErrUnknownRide
	}
	g := e.disc.City().Graph
	bestIdx, bestD := r.Progress, -1.0
	// Scan the remaining route for the closest node to the report. Routes
	// are a few hundred nodes; a linear scan beats maintaining another
	// spatial index per ride.
	for i := r.Progress; i < len(r.Route); i++ {
		d := geo.Haversine(report, g.Point(r.Route[i]))
		if bestD < 0 || d < bestD {
			bestD = d
			bestIdx = i
		}
	}
	if bestIdx > r.Progress {
		if err := sh.Ix.Advance(id, bestIdx); err != nil {
			return false, err
		}
	}
	return r.Progress == len(r.Route)-1, nil
}
