package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"strconv"
	"time"

	"xar/internal/index"
	"xar/internal/journal"
	"xar/internal/roadnet"
	"xar/internal/telemetry"
)

// bookMaxAttempts bounds the optimistic-commit retry loop. Conflicts
// need a concurrent mutation of the same ride between a booking's
// snapshot and its commit; even under heavy contention most retries
// succeed on the second attempt, so a small bound suffices — beyond it
// the match is genuinely contended and reported no-longer-feasible.
const bookMaxAttempts = 4

// Book confirms a match (§VIII-B). It re-validates the match against the
// ride's current state (the ride may have moved or accepted other
// bookings since the search), chooses the concrete pickup and drop-off
// landmarks, computes the at-most-four shortest paths the paper
// prescribes, splices the new via-points into the route, charges the
// exact detour against the ride's remaining budget, consumes a seat and
// re-registers the ride's cluster information.
//
// The exact detour may exceed the cluster-approximated estimate by up to
// the additive 4ε bound; unless Config.StrictDetour is set, the booking
// is allowed to overshoot the remaining budget by at most 4ε, matching
// the paper's guarantee.
//
// Concurrency: booking is optimistic. The expensive splice (up to four
// shortest paths) runs outside any lock against a snapshot of the ride
// taken under the shard's read lock; the commit then re-checks, under
// the shard's write lock, that the ride's revision counter is unchanged
// before applying the new route. A concurrent booking/cancel/advance on
// the same ride bumps the revision and forces a retry (counted in
// Metrics.BookConflictRetries and xar_book_conflict_retries_total);
// rides on other shards — and searches everywhere — are never blocked by
// the splice.
func (e *Engine) Book(m Match, req Request) (Booking, error) {
	return e.BookCtx(context.Background(), m, req)
}

// BookCtx is Book with trace propagation: each optimistic commit attempt
// becomes a "book_attempt" span (its ≤4 shortest-path calls as
// "path_search" children), and the booking span records how many commit
// attempts were burned on revision conflicts — the trace-level twin of
// xar_book_conflict_retries_total.
func (e *Engine) BookCtx(ctx context.Context, m Match, req Request) (Booking, error) {
	if e.cfg.PprofLabels {
		var bk Booking
		var err error
		pprof.Do(ctx, pprof.Labels("op", opBook, "algo", e.router), func(ctx context.Context) {
			bk, err = e.bookCtx(ctx, m, req)
		})
		return bk, err
	}
	return e.bookCtx(ctx, m, req)
}

func (e *Engine) bookCtx(ctx context.Context, m Match, req Request) (bk Booking, err error) {
	if err := req.Validate(); err != nil {
		return Booking{}, err
	}
	ctx, span := e.tel.startOp(ctx, opBook)
	if e.tel != nil || span != nil {
		defer func(start time.Time) {
			now := time.Now()
			span.SetError(err)
			// Observe before End: sealing recycles the trace record.
			e.tel.observeOp(opBook, now.Sub(start), span, err)
			span.EndAt(now)
		}(time.Now())
	}

	// Reject unknown rides before anything else (kept first so the error
	// does not depend on where the match's clusters lie). The existence
	// check is racy by design — tryBook re-validates under the lock.
	sh := e.ix.ShardFor(m.Ride)
	sh.RLock()
	known := sh.Ix.Ride(m.Ride) != nil
	sh.RUnlock()
	if !known {
		e.m.bookingsFailed.Add(1)
		return Booking{}, ErrUnknownRide
	}

	// Concrete pickup/drop-off landmarks: the nearest landmark of each
	// matched cluster to the requester's endpoints. Pure discretization
	// lookups — resolved once, outside the retry loop and any lock. The
	// walk to them must respect the request's limit.
	puLM, walkSrc := e.disc.NearestLandmarkInCluster(req.Source, m.PickupCluster)
	doLM, walkDst := e.disc.NearestLandmarkInCluster(req.Dest, m.DropoffCluster)
	if puLM < 0 || doLM < 0 {
		return Booking{}, ErrNoLongerFeasible
	}
	if walkSrc+walkDst > req.WalkLimit {
		return Booking{}, ErrNoLongerFeasible
	}
	puNode := e.disc.Landmarks[puLM].Node
	doNode := e.disc.Landmarks[doLM].Node

	for attempt := 1; ; attempt++ {
		actx, aspan := telemetry.ChildSpan(ctx, "book_attempt")
		aspan.SetInt("attempt", int64(attempt))
		b, conflict, berr := e.tryBook(actx, m, puLM, doLM, puNode, doNode, walkSrc, walkDst)
		if conflict {
			// An attribute, not a span error: a conflict that retries into
			// success must not classify the whole trace as errored.
			aspan.SetStr("outcome", "conflict")
		} else {
			aspan.SetError(berr)
		}
		aspan.End()
		if !conflict {
			span.SetInt("conflict_retries", int64(attempt-1))
			if berr == nil {
				e.recordEvent(journal.Booked, m.Ride, span, b.DetourActual,
					"pu="+strconv.FormatInt(int64(puNode), 10)+" do="+strconv.FormatInt(int64(doNode), 10))
				e.recordEvent(journal.SpliceCommitted, m.Ride, span, b.DetourActual,
					"sp_runs="+strconv.Itoa(b.ShortestPathRuns))
				// Greedy-regret sampling: re-match the request in the
				// background against what is still bookable.
				e.shadow.offerRegret(req, b.WalkSource+b.WalkDest)
			}
			return b, berr
		}
		e.recordEvent(journal.BookConflictRetried, m.Ride, span, float64(attempt), "")
		e.m.bookConflictRetries.Add(1)
		if e.tel != nil && e.tel.bookConflicts != nil {
			e.tel.bookConflicts.Inc()
		}
		if attempt >= bookMaxAttempts {
			span.SetInt("conflict_retries", int64(attempt))
			return Booking{}, ErrNoLongerFeasible
		}
	}
}

// tryBook runs one optimistic attempt: snapshot under the read lock,
// splice unlocked, validate-and-commit under the write lock. conflict
// reports that the ride mutated between snapshot and commit and the
// caller should retry.
func (e *Engine) tryBook(ctx context.Context, m Match, puLM, doLM int, puNode, doNode roadnet.NodeID, walkSrc, walkDst float64) (bk Booking, conflict bool, err error) {
	sh := e.ix.ShardFor(m.Ride)

	// Phase 1 — snapshot: validate against current state under the read
	// lock and copy what the splice needs.
	sh.RLock()
	r := sh.Ix.Ride(m.Ride)
	if r == nil {
		sh.RUnlock()
		e.m.bookingsFailed.Add(1)
		return Booking{}, false, ErrUnknownRide
	}
	if r.SeatsAvail <= 0 {
		sh.RUnlock()
		e.m.bookingsFailed.Add(1)
		return Booking{}, false, ErrRideFull
	}
	// Re-derive the best valid support pair; the search's snapshot may be
	// stale.
	fresh, ok := checkDetourAndOrder(sh.Ix, r, m.PickupCluster, m.DropoffCluster)
	if !ok {
		sh.RUnlock()
		return Booking{}, false, ErrNoLongerFeasible
	}
	sSeg, dSeg := fresh.pickupSeg(), fresh.dropoffSeg()
	if sSeg > dSeg {
		sh.RUnlock()
		return Booking{}, false, ErrNoLongerFeasible
	}
	// The vehicle must not have passed the splice start.
	if r.Via[sSeg].RouteIdx < r.Progress {
		sh.RUnlock()
		return Booking{}, false, ErrNoLongerFeasible
	}
	rev := r.Rev
	detourBudget := r.DetourLimit
	shadow := &index.Ride{
		ID:    r.ID,
		Route: append([]roadnet.NodeID(nil), r.Route...),
		Via:   append([]index.ViaPoint(nil), r.Via...),
	}
	sh.RUnlock()

	// Phase 2 — compute: path length, refined estimate and the ≤4
	// shortest-path splice, all against the snapshot, no lock held.
	oldLen, perr := e.disc.City().Graph.PathLength(shadow.Route)
	if perr != nil {
		return Booking{}, false, fmt.Errorf("xar: corrupt route on ride %d: %w", shadow.ID, perr)
	}
	// Refine the detour estimate with the precomputed landmark-distance
	// matrix now that the concrete pickup/drop-off landmarks are known.
	// Still no shortest-path computation: this is a table lookup chain,
	// and it is the "approximated detour" the paper's Figure 3a compares
	// against the exact splice cost.
	estimate := e.refineDetourEstimate(shadow, sSeg, dSeg, puLM, doLM, fresh.DetourEstimate)

	f := e.finder()
	var newRoute []roadnet.NodeID
	var newVia []index.ViaPoint
	var spRuns int
	var serr error
	if e.cfg.PprofLabels {
		// The splice is where booking CPU actually goes (≤4 shortest
		// paths); a stage label separates it from validation overhead.
		pprof.Do(ctx, pprof.Labels("op", opBook, "stage", "splice", "algo", e.router), func(ctx context.Context) {
			newRoute, newVia, spRuns, serr = e.spliceRoute(ctx, f, shadow, sSeg, dSeg, puNode, doNode)
		})
	} else {
		newRoute, newVia, spRuns, serr = e.spliceRoute(ctx, f, shadow, sSeg, dSeg, puNode, doNode)
	}
	e.release(f)
	if serr != nil {
		return Booking{}, false, serr
	}
	newLen, perr := e.disc.City().Graph.PathLength(newRoute)
	if perr != nil {
		return Booking{}, false, fmt.Errorf("xar: spliced route invalid: %w", perr)
	}
	detour := newLen - oldLen
	if detour < 0 {
		detour = 0
	}
	allowance := 0.0
	if !e.cfg.StrictDetour {
		allowance = 4 * e.disc.Epsilon()
	}
	if detour > detourBudget+allowance {
		return Booking{}, false, ErrDetourExceeded
	}

	// Phase 3 — validate-and-commit under the shard's write lock: the
	// splice is only applied if the ride is untouched since the snapshot
	// (same revision ⇒ same route, seats, budget and progress).
	sh.Lock()
	defer sh.Unlock()
	r = sh.Ix.Ride(m.Ride)
	if r == nil {
		e.m.bookingsFailed.Add(1)
		return Booking{}, false, ErrUnknownRide
	}
	if r.Rev != rev {
		return Booking{}, true, nil // stale splice: retry
	}
	if r.SeatsAvail <= 0 { // unreachable while Rev is stable; defensive
		e.m.bookingsFailed.Add(1)
		return Booking{}, false, ErrRideFull
	}

	// Commit: route, via-points, ETAs, budget, seats; then rebuild the
	// cluster registrations (bumps Rev).
	r.Route = newRoute
	r.RouteETA = e.computeETAs(newRoute, r.Departure)
	for i := range newVia {
		newVia[i].ETA = r.RouteETA[newVia[i].RouteIdx]
	}
	r.Via = newVia
	r.DetourLimit -= detour
	if r.DetourLimit < 0 {
		r.DetourLimit = 0
	}
	r.SeatsAvail--
	if rerr := sh.Ix.Reregister(r); rerr != nil {
		return Booking{}, false, rerr
	}

	e.m.bookings.Add(1)
	e.m.shortestPaths.Add(uint64(spRuns))
	e.observeBookingQuality(detourBudget, detour, estimate)

	var puETA, doETA float64
	for _, v := range r.Via {
		if v.Node == puNode && v.Kind == index.ViaPickup {
			puETA = v.ETA
		}
		if v.Node == doNode && v.Kind == index.ViaDropoff {
			doETA = v.ETA
		}
	}
	return Booking{
		Ride:             r.ID,
		PickupLandmark:   puLM,
		DropoffLandmark:  doLM,
		PickupNode:       puNode,
		DropoffNode:      doNode,
		PickupETA:        puETA,
		DropoffETA:       doETA,
		WalkSource:       walkSrc,
		WalkDest:         walkDst,
		DetourEstimate:   estimate,
		DetourActual:     detour,
		ShortestPathRuns: spRuns,
	}, false, nil
}

// observeBookingQuality records a confirmed booking's approximation-gap
// telemetry: xar_detour_slack_ratio — how much of the Theorem 6 detour
// envelope (remaining budget + the 4ε allowance) the exact detour
// consumed — and xar_epsilon_consumption_ratio — what fraction of the
// 4ε additive error bound the cluster estimate actually missed by.
// Two histogram observations per booking; nothing on the search path.
func (e *Engine) observeBookingQuality(budget, detour, estimate float64) {
	qc := e.quality
	if qc == nil {
		return
	}
	eps4 := 4 * e.disc.Epsilon()
	if lim := budget + eps4; lim > 0 {
		qc.ObserveSlack(detour / lim)
	}
	if eps4 > 0 {
		over := detour - estimate
		if over < 0 {
			over = 0
		}
		qc.ObserveEpsilonConsumption(over / eps4)
	}
}

// refineDetourEstimate predicts the booking's exact splice detour from
// the precomputed landmark-to-landmark driving distances: the chain
// through the via-points' landmarks and the chosen pickup/drop-off
// landmarks. Falls back to the cluster-level estimate when a via node
// has no landmark within Δ.
func (e *Engine) refineDetourEstimate(r *index.Ride, sSeg, dSeg, puLM, doLM int, fallback float64) float64 {
	lmOf := func(v roadnet.NodeID) int {
		lm, _ := e.disc.LandmarkOfNode(v)
		return lm
	}
	d := e.disc.LandmarkDist
	if sSeg == dSeg {
		s1, s2 := lmOf(r.Via[sSeg].Node), lmOf(r.Via[sSeg+1].Node)
		if s1 < 0 || s2 < 0 {
			return fallback
		}
		est := d(s1, puLM) + d(puLM, doLM) + d(doLM, s2) - d(s1, s2)
		if est < 0 {
			est = 0
		}
		return est
	}
	s1, s2 := lmOf(r.Via[sSeg].Node), lmOf(r.Via[sSeg+1].Node)
	d1, d2 := lmOf(r.Via[dSeg].Node), lmOf(r.Via[dSeg+1].Node)
	if s1 < 0 || s2 < 0 || d1 < 0 || d2 < 0 {
		return fallback
	}
	est := (d(s1, puLM) + d(puLM, s2) - d(s1, s2)) +
		(d(d1, doLM) + d(doLM, d2) - d(d1, d2))
	if est < 0 {
		est = 0
	}
	return est
}

// pickupSeg and dropoffSeg expose the segment of the chosen supports.
// Supports carry the pass-through order; the segment is what booking
// splices into. We recover it via the stored orders.
func (m Match) pickupSeg() int  { return m.pickupSegv }
func (m Match) dropoffSeg() int { return m.dropoffSegv }

// spliceRoute builds the new route and via-point list for a pickup in
// segment sSeg and a drop-off in segment dSeg (sSeg ≤ dSeg), running at
// most four shortest-path searches (three when sSeg == dSeg) on the
// caller-supplied finder; each becomes a "path_search" span of the
// context's trace. r may be a snapshot; only Route and Via are read.
func (e *Engine) spliceRoute(ctx context.Context, f pathFinder, r *index.Ride, sSeg, dSeg int, pu, do roadnet.NodeID) ([]roadnet.NodeID, []index.ViaPoint, int, error) {
	sp := func(a, b roadnet.NodeID) ([]roadnet.NodeID, error) {
		if a == b {
			return []roadnet.NodeID{a}, nil
		}
		res := e.tracedShortestPath(ctx, f, a, b)
		if !res.Reachable() {
			return nil, ErrUnreachable
		}
		return res.Path, nil
	}

	b := routeBuilder{}
	runs := 0

	if sSeg == dSeg {
		// s1 → pu → do → s2: three searches.
		s1 := r.Via[sSeg]
		s2 := r.Via[sSeg+1]
		p1, err := sp(s1.Node, pu)
		if err != nil {
			return nil, nil, runs, err
		}
		runs++
		p2, err := sp(pu, do)
		if err != nil {
			return nil, nil, runs, err
		}
		runs++
		p3, err := sp(do, s2.Node)
		if err != nil {
			return nil, nil, runs, err
		}
		runs++

		b.appendRoute(r.Route[:s1.RouteIdx+1])
		b.copyVias(r.Via[:sSeg+1], 0)
		b.appendPath(p1)
		b.addVia(pu, index.ViaPickup)
		b.appendPath(p2)
		b.addVia(do, index.ViaDropoff)
		b.appendPath(p3)
		b.markVia(s2)
		delta := (len(b.route) - 1) - s2.RouteIdx
		b.appendRoute(r.Route[s2.RouteIdx+1:])
		b.copyVias(r.Via[sSeg+2:], delta)
		return b.route, b.via, runs, nil
	}

	// Different segments: s1 → pu → s2 … d1 → do → d2 — four searches.
	s1, s2 := r.Via[sSeg], r.Via[sSeg+1]
	d1, d2 := r.Via[dSeg], r.Via[dSeg+1]
	p1, err := sp(s1.Node, pu)
	if err != nil {
		return nil, nil, runs, err
	}
	runs++
	p2, err := sp(pu, s2.Node)
	if err != nil {
		return nil, nil, runs, err
	}
	runs++
	p3, err := sp(d1.Node, do)
	if err != nil {
		return nil, nil, runs, err
	}
	runs++
	p4, err := sp(do, d2.Node)
	if err != nil {
		return nil, nil, runs, err
	}
	runs++

	b.appendRoute(r.Route[:s1.RouteIdx+1])
	b.copyVias(r.Via[:sSeg+1], 0)
	b.appendPath(p1)
	b.addVia(pu, index.ViaPickup)
	b.appendPath(p2)
	b.markVia(s2)
	deltaMid := (len(b.route) - 1) - s2.RouteIdx
	// Middle chunk: everything strictly between s2 and d1, then d1 and
	// any untouched via-points in between (shifted by deltaMid).
	b.appendRoute(r.Route[s2.RouteIdx+1 : d1.RouteIdx+1])
	b.copyVias(r.Via[sSeg+2:dSeg+1], deltaMid)
	b.appendPath(p3)
	b.addVia(do, index.ViaDropoff)
	b.appendPath(p4)
	b.markVia(d2)
	deltaSuf := (len(b.route) - 1) - d2.RouteIdx
	b.appendRoute(r.Route[d2.RouteIdx+1:])
	b.copyVias(r.Via[dSeg+2:], deltaSuf)
	return b.route, b.via, runs, nil
}

// routeBuilder assembles a spliced route while tracking via positions.
type routeBuilder struct {
	route []roadnet.NodeID
	via   []index.ViaPoint
}

// appendRoute appends raw route nodes (no deduplication needed: chunks
// are contiguous slices of the old route).
func (b *routeBuilder) appendRoute(nodes []roadnet.NodeID) {
	b.route = append(b.route, nodes...)
}

// appendPath appends a shortest path, skipping its first node (already
// present as the last node of the route so far).
func (b *routeBuilder) appendPath(path []roadnet.NodeID) {
	if len(b.route) > 0 && len(path) > 0 && b.route[len(b.route)-1] == path[0] {
		path = path[1:]
	}
	b.route = append(b.route, path...)
}

// addVia records a new via-point at the current route end.
func (b *routeBuilder) addVia(node roadnet.NodeID, kind index.ViaKind) {
	b.via = append(b.via, index.ViaPoint{
		RouteIdx: len(b.route) - 1,
		Node:     node,
		Kind:     kind,
	})
}

// markVia re-records an existing via-point at the current route end.
func (b *routeBuilder) markVia(v index.ViaPoint) {
	b.via = append(b.via, index.ViaPoint{
		RouteIdx: len(b.route) - 1,
		Node:     v.Node,
		Kind:     v.Kind,
	})
}

// copyVias carries over untouched via-points from the old ride. Old route
// chunks are appended verbatim, so each via's new position is its old
// RouteIdx plus the chunk's displacement delta.
func (b *routeBuilder) copyVias(vias []index.ViaPoint, delta int) {
	for _, v := range vias {
		b.via = append(b.via, index.ViaPoint{RouteIdx: v.RouteIdx + delta, Node: v.Node, Kind: v.Kind})
	}
}
