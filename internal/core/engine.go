// Package core implements the XAR run-time unit: creating ride offers,
// the optimized two-step ride search (§VII of the paper), ride tracking
// (§VIII-A) and ride booking (§VIII-B).
//
// The central design decision reproduced here is that the search path
// performs *no shortest-path computation*: candidate generation and all
// feasibility checks run on the precomputed cluster structures of the
// in-memory index. Shortest paths are computed exactly twice in a ride's
// life-cycle — when the offer is created and when a booking is confirmed
// (at most four single-pair searches per booking, per the paper).
package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"xar/internal/discretize"
	"xar/internal/geo"
	"xar/internal/index"
	"xar/internal/journal"
	"xar/internal/memsize"
	"xar/internal/profile"
	"xar/internal/quality"
	"xar/internal/roadnet"
	"xar/internal/telemetry"
)

// Sentinel errors returned by the engine.
var (
	// ErrNotServable means a location has neither a landmark within Δ nor
	// any walkable cluster: the system cannot serve it (§IV).
	ErrNotServable = errors.New("xar: location not servable by the discretization")
	// ErrUnknownRide means the ride ID is not registered.
	ErrUnknownRide = errors.New("xar: unknown ride")
	// ErrRideFull means the ride has no seats left.
	ErrRideFull = errors.New("xar: ride has no available seats")
	// ErrNoLongerFeasible means the match became invalid between search
	// and booking (the ride moved, or another booking consumed the
	// detour budget).
	ErrNoLongerFeasible = errors.New("xar: match no longer feasible")
	// ErrDetourExceeded means the exact booking detour exceeds the
	// ride's remaining budget plus the 4ε approximation allowance.
	ErrDetourExceeded = errors.New("xar: booking detour exceeds limit")
	// ErrUnreachable means no driving route connects the endpoints.
	ErrUnreachable = errors.New("xar: no route between endpoints")
)

// Config tunes the engine.
type Config struct {
	// Index is passed through to the in-memory index.
	Index index.Config
	// DefaultDetourLimit (meters) applies to offers that leave
	// DetourLimit zero.
	DefaultDetourLimit float64
	// DefaultSeats applies to offers that leave Seats zero. The paper's
	// simulation assumes taxi capacity 4 including the driver.
	DefaultSeats int
	// DestWindowSlack (seconds) widens the destination-side time window:
	// the ride reaches the drop-off cluster after the pickup, up to one
	// maximum trip duration later.
	DestWindowSlack float64
	// StrictDetour rejects bookings whose exact detour exceeds the
	// remaining budget at all; the default allows the paper's additive
	// 4ε approximation overshoot.
	StrictDetour bool
	// UseALTPaths accelerates the engine's shortest-path computations
	// (ride creation, booking splices, cancellations) with the ALT
	// heuristic at the cost of extra preprocessing (2·ALTSeeds full
	// Dijkstras). Results are identical; only speed changes. Subsumed by
	// Router; kept for compatibility ("" + UseALTPaths ≡ Router "alt").
	UseALTPaths bool
	// ALTSeeds is the ALT landmark count (0 → 8).
	ALTSeeds int
	// Router selects the shortest-path engine: "astar", "alt", or "ch".
	// Empty picks automatically — "ch" when CH is set, else "alt" when
	// UseALTPaths, else "astar". All three return identical distances;
	// only speed (and preprocessing cost) differs. Router "ch" without a
	// prebuilt CH builds one at engine construction under CHBudget and
	// falls back to ALT if the budget is exceeded; the effective choice
	// is reported by Router() / ConfigSummary and stamped on telemetry.
	Router string
	// CH is a prebuilt contraction hierarchy over the discretization's
	// road graph (roadnet.BuildCH, or LoadCH of an xardiscretize -ch
	// artifact). Implies Router "ch" when Router is empty.
	CH *roadnet.CH
	// CHBudget bounds in-process CH preprocessing when Router is "ch"
	// and no prebuilt CH is given; exceeding it falls back to ALT
	// instead of failing engine construction. 0 → unbudgeted.
	CHBudget time.Duration
	// UseCongestionProfile scales ETA computation by the time-of-day
	// congestion factor (roadnet.SpeedFactor): rides departing in the AM
	// or PM peak take up to ~1.8× longer than free flow, which the
	// paper's "time of arrival is estimated from historical travel
	// times" prescribes. Route geometry is unaffected.
	UseCongestionProfile bool
	// Telemetry, when non-nil, records per-operation latency histograms
	// (xar_op_duration_seconds) and the per-stage search breakdown
	// (xar_search_stage_duration_seconds) into the registry. Nil leaves
	// the hot paths uninstrumented (one nil check per operation).
	Telemetry *telemetry.Registry
	// SearchSampleRate samples 1-in-N searches for full op + stage
	// latency tracing (rounded up to a power of two). Searches are the
	// sub-microsecond hot path, so timing every one would dominate its
	// cost; unsampled searches pay a single atomic increment. 0 →
	// DefaultSearchSampleRate; 1 → trace every search (tests,
	// low-traffic deployments). Other operations are always recorded.
	SearchSampleRate int
	// SlowOpThreshold enables the slow-operation log: any engine
	// operation taking at least this long is logged at Warn level.
	// Zero disables the log.
	SlowOpThreshold time.Duration
	// SlowOpLogger receives slow-operation records; nil with a non-zero
	// threshold falls back to slog.Default().
	SlowOpLogger *slog.Logger
	// Tracer, when non-nil, records request-scoped span trees: each
	// head-sampled engine operation becomes a trace whose spans cover the
	// per-shard search fan-out, each optimistic-book attempt and each
	// shortest-path call, stored in the tracer's ring buffer and served
	// via /v1/traces. Slow and errored traces are always kept. Nil
	// disables root minting, but the engine still records child spans
	// into traces begun upstream (an HTTP middleware root in the
	// context). See DESIGN.md §Tracing model.
	Tracer *telemetry.Tracer
	// IndexShards is the ride-index stripe count (0 →
	// index.DefaultShards). Rides are partitioned by ID across
	// independently locked shards; create/book/cancel/track lock one
	// shard, searches take each shard's read lock only while reading its
	// posting lists. More shards → less contention, slightly more fixed
	// memory (one empty cluster array per shard).
	IndexShards int
	// PprofLabels tags the goroutines running Search/Book/Create (and the
	// parallel shard fan-out / booking splice) with runtime/pprof labels
	// (op, stage, shard), so CPU profiles attribute samples to engine
	// operations. Off by default: pprof.Do allocates a label set per
	// call, a measurable cost on the sub-3µs search path. Enable it on
	// deployments that profile in production (xarserver -pprof-labels).
	PprofLabels bool
	// SearchWorkers enables the parallel candidate-evaluation stage:
	// searches fan their per-shard candidate scan + validation out over
	// min(SearchWorkers, IndexShards) goroutines. 0 (default) evaluates
	// shards serially — the right choice when the caller already runs
	// many searches concurrently (an HTTP server); set it for few large
	// searches on an otherwise idle machine (batch planners).
	SearchWorkers int
	// Journal, when non-nil, records every ride-lifecycle event
	// (created, booked, splice-committed, conflict-retried, cancelled,
	// picked-up, dropped-off, completed — plus search-candidate events
	// for metrics-sampled searches) into fixed-memory per-ride rings
	// with trace-ID cross-links. Nil leaves the hot paths free of
	// journaling (one nil check per emit site). See OBSERVABILITY.md
	// "Event journal & auditing".
	Journal *journal.Journal
	// Quality, when non-nil, turns on match-quality accounting: every
	// search classifies each candidate it examined into exactly one
	// rejection-funnel stage (xar_search_funnel_total{stage}), and every
	// confirmed booking records its approximation-gap ratios
	// (xar_detour_slack_ratio, xar_epsilon_consumption_ratio). The
	// collector is deliberately separate from Telemetry so the quality
	// layer can be toggled without perturbing the latency baselines. Nil
	// leaves the search loop free of funnel counting (one nil check per
	// shard). See OBSERVABILITY.md "Match quality".
	Quality *quality.Collector
	// ShadowSampleRate enables the shadow counterfactual matcher on top
	// of Quality: 1-in-N no-match searches are re-run off the request
	// path with systematically relaxed constraints to attribute the
	// binding constraint (xar_shadow_unlock_total{constraint}), and
	// 1-in-N bookings are re-matched against the post-booking candidate
	// set to measure greedy regret. Rounded up to a power of two; 0
	// disables the shadow matcher (the default); 1 shadows every
	// eligible request (tests). Requires Quality; counterfactual
	// searches never touch metrics, traces, the journal, or the funnel.
	ShadowSampleRate int
	// Memory, when non-nil, turns on live per-component memory
	// accounting: the engine registers every memory-owning subsystem it
	// builds or is given (road graph, ALT tables, CH, discretization,
	// ride index, journal, quality collector) into the registry in
	// attribution order — shared substrates first, so each component's
	// bytes are non-overlapping — and exposes sweeps via MemSweep /
	// LastMemReport. With Telemetry also set, every sweep publishes
	// xar_memsize_bytes{component}, xar_memsize_total_bytes, and the
	// xar_rides_per_gb frontier gauge, all of which the flight recorder
	// picks up like any other series. See OBSERVABILITY.md "Memory".
	Memory *memsize.Registry
	// MemSweepInterval starts a background sweep worker on that cadence
	// (requires Memory). The worker duty-cycles itself — it sleeps at
	// least 19× the last sweep's duration — so accounting stays within a
	// ≤5%-of-one-core budget no matter how large the fleet grows. 0
	// leaves sweeping on-demand only (MemSweep / the HTTP handler).
	MemSweepInterval time.Duration

	// Profiling attaches a continuous profiler. The engine owns its
	// lifecycle: with ProfileInterval > 0 the capture worker starts in
	// NewEngine and stops in Close; with 0 the profiler stays
	// capture-on-demand (CaptureNow / the HTTP handlers). With Memory
	// also set, the profiler's rings are registered as the "profiles"
	// memory component. See OBSERVABILITY.md "Continuous profiling".
	Profiling *profile.Profiler
	// ProfileInterval is the capture cadence (requires Profiling). The
	// worker duty-cycles its active work the same way the memory
	// sweeper does, staying within ≤1% of one core.
	ProfileInterval time.Duration
}

// DefaultConfig returns production defaults.
func DefaultConfig() Config {
	return Config{
		Index:              index.DefaultConfig(),
		DefaultDetourLimit: 2000,
		DefaultSeats:       4,
		DestWindowSlack:    3600,
	}
}

// RideOffer is the input of CreateRide.
type RideOffer struct {
	Source, Dest geo.Point
	Departure    float64 // seconds since epoch
	Seats        int     // total capacity incl. driver (0 → default)
	DetourLimit  float64 // meters the driver accepts (0 → default)
	Owner        UserID  // driver identity for social ranking (optional)
}

// Request is a ride request (§VII): source, destination, departure time
// window and walking threshold.
type Request struct {
	Source, Dest geo.Point
	// EarliestDeparture/LatestDeparture bound the pickup time.
	EarliestDeparture, LatestDeparture float64
	// WalkLimit is the requester's maximum total walking distance in
	// meters (source-side walk + destination-side walk).
	WalkLimit float64
}

// Validate reports request errors.
func (r Request) Validate() error {
	if !r.Source.Valid() || !r.Dest.Valid() {
		return fmt.Errorf("xar: invalid request coordinates")
	}
	if r.LatestDeparture < r.EarliestDeparture {
		return fmt.Errorf("xar: inverted departure window [%v, %v]", r.EarliestDeparture, r.LatestDeparture)
	}
	if r.WalkLimit < 0 {
		return fmt.Errorf("xar: negative walk limit %v", r.WalkLimit)
	}
	return nil
}

// Match is one feasible ride option for a request. All quantities come
// from the index (cluster distances) — no shortest path was computed.
type Match struct {
	Ride           index.RideID
	PickupCluster  int
	DropoffCluster int
	WalkSource     float64 // meters of walking at the source side
	WalkDest       float64 // meters of walking at the destination side
	DetourEstimate float64 // meters of extra driving, cluster-approximated
	PickupETA      float64 // ride's estimated arrival in the pickup cluster
	DropoffETA     float64
	pickupOrder    int // route order of the supporting pass-through
	dropoffOrder   int
	pickupSegv     int // segment of the supporting pass-through (pickup)
	dropoffSegv    int // segment of the supporting pass-through (drop-off)
}

// TotalWalk is the match's combined walking distance, the quantity the
// paper's simulation minimizes when choosing among multiple matches.
func (m Match) TotalWalk() float64 { return m.WalkSource + m.WalkDest }

// Booking is the confirmed result of Book.
type Booking struct {
	Ride             index.RideID
	PickupLandmark   int
	DropoffLandmark  int
	PickupNode       roadnet.NodeID
	DropoffNode      roadnet.NodeID
	PickupETA        float64
	DropoffETA       float64
	WalkSource       float64
	WalkDest         float64
	DetourEstimate   float64 // what the index predicted (cluster distances)
	DetourActual     float64 // what the spliced route actually costs
	ShortestPathRuns int     // ≤ 4, per §VIII-B
}

// ApproxError is the additive error of the cluster approximation for this
// booking: how much the exact detour exceeded the estimate. The paper
// bounds it by 4ε and evaluates its CDF in Figure 3a.
func (b Booking) ApproxError() float64 {
	e := b.DetourActual - b.DetourEstimate
	if e < 0 {
		return 0
	}
	return e
}

// Engine is the XAR run-time unit. Safe for concurrent use and designed
// to scale with cores: the ride index is striped across lock-striped
// shards (searches take only brief per-shard read locks; mutations lock
// one shard), shortest-path computation runs on pooled per-goroutine
// searchers outside any lock, and bookings commit optimistically
// (validate → compute unlocked → re-validate-and-commit under the
// shard's write lock, retrying on conflict). See DESIGN.md §Concurrency
// model.
type Engine struct {
	cfg  Config
	disc *discretize.Discretization

	ix *index.Sharded

	// finders pools pathFinder instances (the Graph and ALT landmark
	// tables are immutable and shared; only the O(n) stamp/dist/prev
	// scratch is per-instance), so shortest-path work never holds any
	// engine lock and concurrent creates/bookings never contend.
	finders   sync.Pool
	newFinder func() pathFinder

	// scratchPool recycles per-worker search working sets (candidate
	// maps, posting-list pull buffer) so a search allocates nothing per
	// shard it visits.
	scratchPool sync.Pool

	// router is the effective routing algorithm ("astar", "alt", "ch")
	// after auto-selection and CH-budget fallback — the value stamped on
	// spans, pprof labels, and xar_route_queries_total.
	router string
	// routeQueries counts shortest-path queries under the effective
	// algo label. Nil without telemetry.
	routeQueries *telemetry.Counter

	m        metrics
	tel      *engineTelemetry   // nil → uninstrumented
	jr       *journal.Journal   // nil → no event journaling
	quality  *quality.Collector // nil → no funnel/approximation accounting
	shadow   *shadowMatcher     // nil → no counterfactual re-matching
	mem      *memoryMonitor     // nil → no memory accounting
	profiler *profile.Profiler  // nil → no continuous profiling
}

// Router values for Config.Router, and the strings Engine.Router()
// reports.
const (
	RouterAStar = "astar"
	RouterALT   = "alt"
	RouterCH    = "ch"
)

// pathFinder is the slice of the routing layer the engine needs; both
// the plain A* Searcher and the ALT-accelerated variant satisfy it.
type pathFinder interface {
	ShortestPath(a, b roadnet.NodeID) roadnet.SPResult
}

// NewEngine builds an engine over a discretization.
func NewEngine(disc *discretize.Discretization, cfg Config) (*Engine, error) {
	if cfg.DefaultDetourLimit < 0 {
		return nil, fmt.Errorf("xar: negative DefaultDetourLimit")
	}
	if cfg.DefaultSeats < 0 {
		return nil, fmt.Errorf("xar: negative DefaultSeats")
	}
	if cfg.IndexShards < 0 {
		return nil, fmt.Errorf("xar: negative IndexShards")
	}
	if cfg.SearchWorkers < 0 {
		return nil, fmt.Errorf("xar: negative SearchWorkers")
	}
	if cfg.ShadowSampleRate < 0 {
		return nil, fmt.Errorf("xar: negative ShadowSampleRate")
	}
	if cfg.ShadowSampleRate > 0 && cfg.Quality == nil {
		return nil, fmt.Errorf("xar: ShadowSampleRate requires Config.Quality")
	}
	if cfg.ProfileInterval < 0 {
		return nil, fmt.Errorf("xar: negative ProfileInterval")
	}
	if cfg.ProfileInterval > 0 && cfg.Profiling == nil {
		return nil, fmt.Errorf("xar: ProfileInterval requires Config.Profiling")
	}
	if cfg.Index.AvgSpeed == 0 {
		cfg.Index = index.DefaultConfig()
	}
	ix, err := index.NewSharded(disc, cfg.Index, cfg.IndexShards)
	if err != nil {
		return nil, err
	}
	g := disc.City().Graph
	router := cfg.Router
	if router == "" {
		switch {
		case cfg.CH != nil:
			router = RouterCH
		case cfg.UseALTPaths:
			router = RouterALT
		default:
			router = RouterAStar
		}
	}
	if router == RouterCH {
		ch := cfg.CH
		if ch == nil {
			built, err := roadnet.BuildCH(g, roadnet.CHConfig{Budget: cfg.CHBudget})
			switch {
			case errors.Is(err, roadnet.ErrCHBudgetExceeded):
				// The documented degradation path: serve with ALT now
				// rather than not at all; Router() exposes the fallback.
				slog.Warn("CH preprocessing budget exceeded; falling back to ALT", "err", err)
				router = RouterALT
			case err != nil:
				return nil, err
			default:
				ch = built
			}
		}
		cfg.CH = ch
	}
	var newFinder func() pathFinder
	var altTables *roadnet.ALT // retained for memory accounting
	switch router {
	case RouterAStar:
		newFinder = func() pathFinder { return roadnet.NewSearcher(g) }
	case RouterALT:
		alt, err := roadnet.NewALT(g, cfg.ALTSeeds)
		if err != nil {
			return nil, err
		}
		altTables = alt
		newFinder = func() pathFinder { return alt.NewSearcher() }
	case RouterCH:
		ch := cfg.CH
		newFinder = func() pathFinder { return ch.NewSearcher() }
	default:
		return nil, fmt.Errorf("xar: unknown Router %q (want astar, alt, or ch)", cfg.Router)
	}
	e := &Engine{
		cfg:       cfg,
		disc:      disc,
		ix:        ix,
		router:    router,
		newFinder: newFinder,
		jr:        cfg.Journal,
	}
	e.finders.New = func() any { return e.newFinder() }
	e.scratchPool.New = func() any { return newSearchScratch() }
	if cfg.Telemetry != nil || cfg.SlowOpThreshold > 0 || cfg.Tracer != nil {
		e.tel = newEngineTelemetry(cfg.Telemetry, cfg.Tracer, cfg.SearchSampleRate, cfg.SlowOpThreshold, cfg.SlowOpLogger)
	}
	if cfg.Telemetry != nil {
		e.routeQueries = cfg.Telemetry.Counter("xar_route_queries_total",
			"Shortest-path queries served, by routing algorithm.",
			telemetry.L("algo", router))
	}
	if cfg.Telemetry != nil {
		registerShardGauges(cfg.Telemetry, ix.View())
		// Cumulative match rate as a gauge so the flight recorder picks
		// up its history alongside the op-latency series.
		cfg.Telemetry.GaugeFunc("xar_match_rate",
			"Average matches returned per search, cumulative since engine start.",
			nil, func() float64 { return e.Metrics().MatchRate() })
	}
	if cfg.Quality != nil {
		e.quality = cfg.Quality
		if cfg.ShadowSampleRate > 0 {
			e.shadow = newShadowMatcher(e, cfg.Quality, cfg.ShadowSampleRate)
			cfg.Quality.SetShadowEnabled(true)
		}
	}
	if cfg.Memory != nil {
		// Attribution order matters: shared substrates first (the graph
		// is reachable from the ALT tables, the discretization, and the
		// index; the discretization from the index), so each component
		// reports only the bytes it uniquely owns and the shares sum
		// cleanly.
		cfg.Memory.Register("graph", g)
		if altTables != nil {
			cfg.Memory.Register("alt", altTables)
		}
		if cfg.CH != nil {
			cfg.Memory.Register("ch", cfg.CH)
		}
		cfg.Memory.Register("discretization", disc)
		cfg.Memory.Register("index", ix.View())
		if cfg.Journal != nil {
			cfg.Memory.Register("journal", cfg.Journal)
		}
		if cfg.Quality != nil {
			cfg.Memory.Register("quality", cfg.Quality)
		}
		e.mem = newMemoryMonitor(cfg.Memory, cfg.Telemetry, e.NumRides, cfg.MemSweepInterval)
		if cfg.MemSweepInterval > 0 {
			e.mem.start()
		}
	}
	if cfg.Profiling != nil {
		e.profiler = cfg.Profiling
		if cfg.Memory != nil {
			cfg.Memory.Register("profiles", cfg.Profiling)
		}
		if cfg.ProfileInterval > 0 {
			e.profiler.Start(cfg.ProfileInterval)
		}
	}
	return e, nil
}

// MemComponents returns the engine's memory-accounting registry (nil
// when Config.Memory was not set). The server uses it to register its
// own components (trace store, flight recorder) alongside the engine's.
func (e *Engine) MemComponents() *memsize.Registry {
	if e.mem == nil {
		return nil
	}
	return e.mem.comps
}

// MemSweep runs one synchronous memory sweep — component walk, heap
// profile, gauge publication — and returns the report. Nil when memory
// accounting is off. Sweeps serialize with the background worker; the
// walk takes per-component locks one component at a time and is safe
// while the engine serves traffic.
func (e *Engine) MemSweep() *MemoryReport {
	if e.mem == nil {
		return nil
	}
	return e.mem.sweepNow()
}

// LastMemReport returns the most recent sweep's report without
// triggering a new sweep (nil when accounting is off or no sweep has
// completed yet).
func (e *Engine) LastMemReport() *MemoryReport {
	if e.mem == nil {
		return nil
	}
	return e.mem.lastReport()
}

// Quality returns the engine's match-quality collector (nil when
// Config.Quality was not set).
func (e *Engine) Quality() *quality.Collector { return e.quality }

// Close stops the engine's background work — the shadow counterfactual
// matcher's worker (after draining its queue) and the memory-accounting
// sweep worker. The engine itself stays fully usable (searches,
// bookings); only the background loops end. Safe to call more than
// once, and a no-op when neither was configured.
func (e *Engine) Close() {
	if e.shadow != nil {
		e.shadow.close()
	}
	if e.mem != nil {
		e.mem.close()
	}
	if e.profiler != nil {
		e.profiler.Close()
	}
}

// Profiler returns the engine's continuous profiler (nil when
// Config.Profiling was not set). The server serves its rings at
// /v1/profiles.
func (e *Engine) Profiler() *profile.Profiler {
	return e.profiler
}

// tracedShortestPath runs one pooled shortest-path search under a
// "path_search" span when the context's trace is recording; the span
// carries the endpoints and the resulting distance, so a slow create /
// book / cancel trace shows exactly which A*/ALT call dominated.
// Without a recording trace this is one context lookup plus the search.
func (e *Engine) tracedShortestPath(ctx context.Context, f pathFinder, a, b roadnet.NodeID) roadnet.SPResult {
	_, span := telemetry.ChildSpan(ctx, "path_search")
	res := f.ShortestPath(a, b)
	if e.routeQueries != nil {
		e.routeQueries.Inc()
	}
	if span != nil {
		span.SetInt("from", int64(a))
		span.SetInt("to", int64(b))
		span.SetFloat("dist", res.Dist)
		span.SetStr("algo", e.router)
		if !res.Reachable() {
			span.SetErrorMsg("unreachable")
		}
		span.End()
	}
	return res
}

// Router returns the effective routing algorithm ("astar", "alt", or
// "ch") after auto-selection and any CH-budget fallback.
func (e *Engine) Router() string { return e.router }

// finder checks a pathFinder out of the pool; release returns it. The
// checkout pattern (rather than a per-engine instance) is what lets any
// number of concurrent creates/bookings run shortest paths without
// serializing on a lock.
func (e *Engine) finder() pathFinder { return e.finders.Get().(pathFinder) }

func (e *Engine) release(f pathFinder) { e.finders.Put(f) }

// Disc returns the engine's discretization.
func (e *Engine) Disc() *discretize.Discretization { return e.disc }

// Index returns a read-only, internally synchronized view of the ride
// index (memory measurement, invariant checks, diagnostics). The view's
// methods take the shard locks they need, so it is safe to use while the
// engine serves traffic; deep-size measurement via reflection remains
// quiescent-only.
func (e *Engine) Index() index.View { return e.ix.View() }

// NumRides returns the number of active rides.
func (e *Engine) NumRides() int {
	return e.ix.NumRides()
}

// CreateRide registers a new ride offer: it snaps the endpoints to road
// nodes, computes the (one) shortest path of the ride's life-cycle,
// derives per-node ETAs from edge travel times, and indexes the ride's
// pass-through and reachable clusters.
func (e *Engine) CreateRide(offer RideOffer) (index.RideID, error) {
	return e.CreateRideCtx(context.Background(), offer)
}

// CreateRideCtx is CreateRide with trace propagation: the operation and
// its shortest-path call become spans of the context's trace (or of a
// new head-sampled trace when Config.Tracer is set).
func (e *Engine) CreateRideCtx(ctx context.Context, offer RideOffer) (index.RideID, error) {
	if e.cfg.PprofLabels {
		var id index.RideID
		var err error
		pprof.Do(ctx, pprof.Labels("op", opCreate, "algo", e.router), func(ctx context.Context) {
			id, err = e.createRideCtx(ctx, offer)
		})
		return id, err
	}
	return e.createRideCtx(ctx, offer)
}

func (e *Engine) createRideCtx(ctx context.Context, offer RideOffer) (id index.RideID, err error) {
	if !offer.Source.Valid() || !offer.Dest.Valid() {
		return 0, fmt.Errorf("xar: invalid offer coordinates")
	}
	seats := offer.Seats
	if seats == 0 {
		seats = e.cfg.DefaultSeats
	}
	if seats < 2 {
		return 0, fmt.Errorf("xar: offer needs capacity >= 2 (driver + rider), got %d", seats)
	}
	detour := offer.DetourLimit
	if detour == 0 {
		detour = e.cfg.DefaultDetourLimit
	}
	if detour < 0 {
		return 0, fmt.Errorf("xar: negative detour limit %v", detour)
	}
	ctx, span := e.tel.startOp(ctx, opCreate)
	if e.tel != nil || span != nil {
		defer func(start time.Time) {
			now := time.Now()
			span.SetError(err)
			// Observe before End: sealing recycles the trace record.
			e.tel.observeOp(opCreate, now.Sub(start), span, err)
			span.EndAt(now)
		}(time.Now())
	}

	// Snap + route + ETAs touch only the immutable city/graph: no lock.
	city := e.disc.City()
	srcNode, _ := city.SnapToNode(offer.Source)
	dstNode, _ := city.SnapToNode(offer.Dest)
	if srcNode == roadnet.InvalidNode || dstNode == roadnet.InvalidNode {
		return 0, ErrNotServable
	}
	if srcNode == dstNode {
		return 0, fmt.Errorf("xar: offer endpoints snap to the same road node")
	}
	e.m.shortestPaths.Add(1)
	f := e.finder()
	res := e.tracedShortestPath(ctx, f, srcNode, dstNode)
	e.release(f)
	if !res.Reachable() {
		return 0, ErrUnreachable
	}

	r := &index.Ride{
		ID:                 e.ix.NextID(),
		Owner:              int64(offer.Owner),
		Source:             offer.Source,
		Dest:               offer.Dest,
		Departure:          offer.Departure,
		SeatsTotal:         seats,
		SeatsAvail:         seats - 1, // driver occupies one
		Route:              res.Path,
		DetourLimit:        detour,
		DetourLimitInitial: detour,
		BaseRouteLen:       res.Dist,
	}
	r.RouteETA = e.computeETAs(res.Path, offer.Departure)
	r.Via = []index.ViaPoint{
		{RouteIdx: 0, Node: srcNode, ETA: r.RouteETA[0], Kind: index.ViaSource},
		{RouteIdx: len(res.Path) - 1, Node: dstNode, ETA: r.RouteETA[len(res.Path)-1], Kind: index.ViaDest},
	}
	// Journal the creation BEFORE the ride becomes searchable: once
	// Insert returns, a concurrent search + book can journal "booked",
	// and the causality invariant (no lifecycle event before created)
	// must hold by construction, not by luck.
	e.recordEvent(journal.Created, r.ID, span, detour, "seats="+strconv.Itoa(seats))
	// Only the registration itself needs the ride's shard — one write
	// lock, no shortest-path work inside it.
	sh := e.ix.ShardFor(r.ID)
	sh.Lock()
	err = sh.Ix.Insert(r)
	sh.Unlock()
	if err != nil {
		return 0, err
	}
	e.m.ridesCreated.Add(1)
	return r.ID, nil
}

// ConfigSummary returns the engine's effective configuration and world
// dimensions as a flat, JSON-friendly map — the "what exactly was this
// process running" member of the diagnostic bundle. Only scalars derived
// from Config and the discretization; nothing mutable or per-request.
func (e *Engine) ConfigSummary() map[string]any {
	sampleRate := e.cfg.SearchSampleRate
	if sampleRate <= 0 {
		sampleRate = DefaultSearchSampleRate
	}
	return map[string]any{
		"default_detour_limit_m": e.cfg.DefaultDetourLimit,
		"default_seats":          e.cfg.DefaultSeats,
		"dest_window_slack_s":    e.cfg.DestWindowSlack,
		"strict_detour":          e.cfg.StrictDetour,
		"router":                 e.router,
		"use_alt_paths":          e.cfg.UseALTPaths,
		"use_congestion_profile": e.cfg.UseCongestionProfile,
		"search_sample_rate":     sampleRate,
		"slow_op_threshold_ms":   float64(e.cfg.SlowOpThreshold) / float64(time.Millisecond),
		"index_shards":           e.ix.NumShards(),
		"search_workers":         e.cfg.SearchWorkers,
		"pprof_labels":           e.cfg.PprofLabels,
		"quality":                e.quality != nil,
		"shadow_sample_rate":     e.cfg.ShadowSampleRate,
		"memory_accounting":      e.mem != nil,
		"mem_sweep_interval_s":   e.cfg.MemSweepInterval.Seconds(),
		"profiling":              e.profiler != nil,
		"profile_interval_s":     e.cfg.ProfileInterval.Seconds(),
		"epsilon_m":              e.disc.Epsilon(),
		"num_clusters":           e.disc.NumClusters(),
		"num_landmarks":          len(e.disc.Landmarks),
		"road_nodes":             e.disc.City().Graph.NumNodes(),
		"active_rides":           e.NumRides(),
	}
}

// computeETAs returns cumulative arrival times along a route starting at
// start: per-edge free-flow travel times, optionally scaled by the
// time-of-day congestion profile at each edge's (estimated) traversal
// time — the "historical travel times" of §VI.
func (e *Engine) computeETAs(route []roadnet.NodeID, start float64) []float64 {
	g := e.disc.City().Graph
	etas := make([]float64, len(route))
	etas[0] = start
	for i := 1; i < len(route); i++ {
		t, err := g.TravelTime(route[i-1 : i+1])
		if err != nil {
			// Route invariant violated; fall back to straight-line time
			// rather than corrupting every downstream ETA.
			t = geo.Haversine(g.Point(route[i-1]), g.Point(route[i])) / 7.0
		}
		if e.cfg.UseCongestionProfile {
			hour := etas[i-1] / 3600 // seconds of day → hour, 24h periodic
			t *= roadnet.SpeedFactor(hour)
		}
		etas[i] = etas[i-1] + t
	}
	return etas
}

// Ride returns a snapshot of a ride (nil if unknown): a deep copy taken
// under the owning shard's read lock, so the caller can inspect it
// without racing concurrent bookings or tracking.
func (e *Engine) Ride(id index.RideID) *index.Ride {
	return e.ix.Snapshot(id)
}

// CompleteRide removes a finished or cancelled ride from the system.
func (e *Engine) CompleteRide(id index.RideID) bool {
	if e.tel != nil {
		defer func(start time.Time) { e.tel.observeOp(opComplete, time.Since(start), nil, nil) }(time.Now())
	}
	sh := e.ix.ShardFor(id)
	sh.Lock()
	removed := sh.Ix.Remove(id)
	sh.Unlock()
	if !removed {
		return false
	}
	e.m.ridesCompleted.Add(1)
	e.recordEvent(journal.Completed, id, nil, 0, "")
	return true
}
