package core

import (
	"runtime"
	"sync"
	"time"

	"xar/internal/memsize"
	"xar/internal/telemetry"
)

// Memory observability: the engine owns a memsize component registry
// (Config.Memory) into which every memory-owning subsystem registers at
// construction, and a budgeted background sweeper that periodically
// walks the registered components, publishes xar_memsize_bytes gauges
// plus the live rides-per-GB frontier, and attributes heap allocations
// to code sites via the runtime's sampled heap profile. Everything runs
// off the request path: a sweep takes per-component locks one component
// at a time, and the worker duty-cycles itself so sweeping can never
// consume more than ~5% of one core regardless of fleet size.

// DefaultMemSweepInterval is the background sweep cadence used by
// callers that enable the sweeper without choosing an interval.
const DefaultMemSweepInterval = 30 * time.Second

// memSweepDutyCycle bounds sweeper CPU: after a sweep that took d, the
// worker sleeps at least memSweepDutyCycle×d before the next one, so
// the sweep loop's duty cycle stays ≤ 1/(1+99) = 1% of one core even
// when a huge fleet makes sweeps slow. The headroom matters on small
// hosts: the walk's direct CPU is only part of its cost (the reflection
// walk also produces transient garbage the GC must chase), and the
// search hot path's ≤5% overhead budget has to absorb both even when
// the sweeper shares a single core with serving.
const memSweepDutyCycle = 99

// HeapStats is the runtime.MemStats slice the memory report carries:
// enough to judge GC pressure and compare the tracked component total
// against what the runtime actually holds.
type HeapStats struct {
	// HeapAllocBytes is live-object bytes (runtime HeapAlloc) — the
	// denominator of TrackedCoverageRatio.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// HeapInUseBytes is bytes in in-use spans (≥ HeapAllocBytes;
	// includes not-yet-reused free slots).
	HeapInUseBytes uint64 `json:"heap_inuse_bytes"`
	// HeapSysBytes is heap memory obtained from the OS.
	HeapSysBytes uint64 `json:"heap_sys_bytes"`
	HeapObjects  uint64 `json:"heap_objects"`
	// TotalAllocBytes is cumulative bytes allocated since process start.
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// NextGCBytes is the heap-alloc target of the next GC cycle.
	NextGCBytes uint64 `json:"next_gc_bytes"`
	NumGC       uint32 `json:"num_gc"`
	// GCCPUFraction is the fraction of CPU time spent in GC since start.
	GCCPUFraction float64 `json:"gc_cpu_fraction"`
	LastGCUnix    float64 `json:"last_gc_unix,omitempty"`
	// TrackedCoverageRatio is tracked_total_bytes / heap_alloc_bytes —
	// how much of the live heap the component registry explains. The
	// bench-memory smoke test fences this against drift.
	TrackedCoverageRatio float64 `json:"tracked_coverage_ratio"`
}

// MemorySweepInfo is the sweep metadata of a report.
type MemorySweepInfo struct {
	// Count is the total sweeps completed since engine construction.
	Count uint64 `json:"count"`
	// DurationSeconds is the component walk's cost for this sweep.
	DurationSeconds float64 `json:"duration_seconds"`
	// IntervalSeconds is the configured background cadence (0 when the
	// sweeper runs on demand only).
	IntervalSeconds float64 `json:"interval_seconds"`
}

// MemoryReport is one full memory observation: the per-component
// retained-byte breakdown, the rides-per-GB frontier point, runtime
// heap/GC statistics, and the top allocation sites. Served at
// GET /v1/memory, embedded in debug bundles as memory.json, and
// summarized by the cmd tools.
type MemoryReport struct {
	Unix        float64 `json:"unix"`
	ActiveRides int     `json:"active_rides"`

	Sweep MemorySweepInfo `json:"sweep"`

	// Components holds non-overlapping per-component retained bytes in
	// attribution order (shared structures count toward the earliest-
	// registered component that reaches them).
	Components        []memsize.ComponentBytes `json:"components"`
	TrackedTotalBytes uint64                   `json:"tracked_total_bytes"`

	// IndexBytes is the ride index's share — ride state only, with the
	// static world (graph, discretization) attributed to its own
	// components — and the denominator of RidesPerGB.
	IndexBytes uint64 `json:"index_bytes"`
	// RidesPerGB is the live capacity frontier: active rides per GB of
	// index memory. The ROADMAP's compaction work is judged by moving
	// this number.
	RidesPerGB float64 `json:"rides_per_gb"`

	Heap HeapStats `json:"heap"`

	// AllocSites are the top-K allocation sites by live bytes, with
	// allocation churn deltas since the previous sweep; Subsystems
	// aggregates the full profile by package path.
	AllocSites []memsize.Site           `json:"alloc_sites,omitempty"`
	Subsystems []memsize.SubsystemAlloc `json:"alloc_subsystems,omitempty"`
}

// memoryMonitor owns the component registry, the allocation-site
// profiler, the published gauges, and the optional background worker.
type memoryMonitor struct {
	comps    *memsize.Registry
	sites    *memsize.SiteProfiler
	rides    func() int
	interval time.Duration // 0 → no background worker

	// Instruments; all nil when the engine has no telemetry registry.
	byComponent map[string]*telemetry.Gauge
	telreg      *telemetry.Registry
	total       *telemetry.Gauge
	ridesPerGB  *telemetry.Gauge
	sweeps      *telemetry.Counter
	sweepDur    *telemetry.Histogram

	mu         sync.Mutex // serializes sweeps, guards last/sweepCount
	last       *MemoryReport
	sweepCount uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

func newMemoryMonitor(comps *memsize.Registry, telreg *telemetry.Registry, rides func() int, interval time.Duration) *memoryMonitor {
	m := &memoryMonitor{
		comps:    comps,
		sites:    &memsize.SiteProfiler{},
		rides:    rides,
		interval: interval,
	}
	if telreg != nil {
		m.telreg = telreg
		m.byComponent = make(map[string]*telemetry.Gauge)
		m.total = telreg.Gauge("xar_memsize_total_bytes",
			"Total retained bytes across all tracked components, from the last memory sweep.", nil)
		m.ridesPerGB = telreg.Gauge("xar_rides_per_gb",
			"Active rides per GB of ride-index memory (the capacity frontier), from the last memory sweep.", nil)
		m.sweeps = telreg.Counter("xar_memsize_sweeps_total",
			"Completed memory-accounting sweeps.", nil)
		m.sweepDur = telreg.Histogram("xar_memsize_sweep_duration_seconds",
			"Duration of one memory-accounting sweep (component walk).",
			telemetry.DurationBuckets(), nil)
	}
	return m
}

// sweepNow runs one full sweep: component walk, heap-profile read,
// MemStats snapshot, gauge publication. Sweeps serialize on m.mu, so a
// manual sweep and the background worker never duplicate work
// concurrently.
func (m *memoryMonitor) sweepNow() *MemoryReport {
	m.mu.Lock()
	defer m.mu.Unlock()

	// Heap snapshot first: the component walk and the profile read
	// allocate transient scratch (the walker's seen set, the profile
	// record buffer) that would otherwise inflate HeapAlloc and skew the
	// coverage ratio against the very structures being measured.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	sw := m.comps.Sweep()
	sites, subs := m.sites.Profile()
	rides := m.rides()

	indexBytes := sw.Component("index")
	rpg := 0.0
	if indexBytes > 0 {
		rpg = float64(rides) / (float64(indexBytes) / (1 << 30))
	}
	m.sweepCount++
	rep := &MemoryReport{
		Unix:        sw.Unix,
		ActiveRides: rides,
		Sweep: MemorySweepInfo{
			Count:           m.sweepCount,
			DurationSeconds: sw.DurationSeconds,
			IntervalSeconds: m.interval.Seconds(),
		},
		Components:        sw.Components,
		TrackedTotalBytes: sw.TotalBytes,
		IndexBytes:        indexBytes,
		RidesPerGB:        rpg,
		Heap: HeapStats{
			HeapAllocBytes:  ms.HeapAlloc,
			HeapInUseBytes:  ms.HeapInuse,
			HeapSysBytes:    ms.HeapSys,
			HeapObjects:     ms.HeapObjects,
			TotalAllocBytes: ms.TotalAlloc,
			NextGCBytes:     ms.NextGC,
			NumGC:           ms.NumGC,
			GCCPUFraction:   ms.GCCPUFraction,
		},
		AllocSites: sites,
		Subsystems: subs,
	}
	if ms.LastGC > 0 {
		rep.Heap.LastGCUnix = float64(ms.LastGC) / 1e9
	}
	if ms.HeapAlloc > 0 {
		rep.Heap.TrackedCoverageRatio = float64(sw.TotalBytes) / float64(ms.HeapAlloc)
	}

	if m.telreg != nil {
		for _, c := range sw.Components {
			g := m.byComponent[c.Name]
			if g == nil {
				g = m.telreg.Gauge("xar_memsize_bytes",
					"Retained bytes of one tracked component, from the last memory sweep.",
					telemetry.L("component", c.Name))
				m.byComponent[c.Name] = g
			}
			g.Set(float64(c.Bytes))
		}
		m.total.Set(float64(sw.TotalBytes))
		m.ridesPerGB.Set(rpg)
		m.sweeps.Inc()
		m.sweepDur.Observe(sw.DurationSeconds)
	}
	m.last = rep
	return rep
}

// lastReport returns the most recent sweep's report (nil before any).
func (m *memoryMonitor) lastReport() *MemoryReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last
}

// start launches the background sweep worker.
func (m *memoryMonitor) start() {
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go m.loop()
}

func (m *memoryMonitor) loop() {
	defer close(m.done)
	timer := time.NewTimer(m.interval)
	defer timer.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-timer.C:
			start := time.Now()
			m.sweepNow()
			elapsed := time.Since(start)
			// The duty-cycle budget: never sweep more often than one part
			// in (1+memSweepDutyCycle) of wall time.
			delay := m.interval
			if floor := elapsed * memSweepDutyCycle; floor > delay {
				delay = floor
			}
			timer.Reset(delay)
		}
	}
}

// close stops the worker (idempotent; no-op when never started).
func (m *memoryMonitor) close() {
	m.stopOnce.Do(func() {
		if m.stop != nil {
			close(m.stop)
			<-m.done
		}
	})
}
