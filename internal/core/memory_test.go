package core

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"xar/internal/discretize"
	"xar/internal/journal"
	"xar/internal/memsize"
	"xar/internal/profile"
	"xar/internal/quality"
	"xar/internal/roadnet"
	"xar/internal/telemetry"
)

// newMemEngine builds an engine with full memory accounting (registry,
// journal, quality, telemetry) and the background sweeper at interval
// (0 = on-demand sweeps only).
func newMemEngine(t testing.TB, interval time.Duration) *Engine {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Memory = memsize.NewRegistry()
	cfg.MemSweepInterval = interval
	cfg.Telemetry = telemetry.NewRegistry()
	cfg.Journal = journal.New(journal.Config{Registry: cfg.Telemetry})
	cfg.Quality = quality.New(cfg.Telemetry)
	cfg.ShadowSampleRate = 1
	// Continuous profiler on the same cadence as the sweeper (CPU
	// window disabled so test captures are fast and cannot contend
	// with other tests' profiles). interval 0 → capture-on-demand.
	cfg.Profiling = profile.New(profile.Config{
		Registry: cfg.Telemetry, CPUWindow: -1,
	})
	cfg.ProfileInterval = interval
	e, err := NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// fillRides creates n rides between far-apart corners.
func fillRides(t testing.TB, e *Engine, n int) {
	t.Helper()
	src, dst := farPoints(t, e)
	for i := 0; i < n; i++ {
		if _, err := e.CreateRide(RideOffer{
			Source: src, Dest: dst, Departure: 1000 + float64(i), Seats: 4,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMemoryReportComponents: a sweep over a loaded engine reports every
// engine-registered component with non-zero shares, a rides-per-GB point
// derived from the index share, and sane heap/sweep metadata.
func TestMemoryReportComponents(t *testing.T) {
	e := newMemEngine(t, 0)
	defer e.Close()
	fillRides(t, e, 40)

	rep := e.MemSweep()
	if rep == nil {
		t.Fatal("MemSweep returned nil with accounting enabled")
	}
	want := []string{"graph", "discretization", "index", "journal", "quality"}
	for _, name := range want {
		var found *memsize.ComponentBytes
		for i := range rep.Components {
			if rep.Components[i].Name == name {
				found = &rep.Components[i]
			}
		}
		if found == nil {
			t.Fatalf("component %q missing from report (have %v)", name, rep.Components)
		}
		if found.Bytes == 0 {
			t.Errorf("component %q measured at zero bytes", name)
		}
	}
	if rep.ActiveRides != 40 {
		t.Fatalf("ActiveRides = %d, want 40", rep.ActiveRides)
	}
	if rep.IndexBytes == 0 || rep.RidesPerGB <= 0 {
		t.Fatalf("index frontier: IndexBytes=%d RidesPerGB=%f", rep.IndexBytes, rep.RidesPerGB)
	}
	var sum uint64
	for _, c := range rep.Components {
		sum += c.Bytes
	}
	if sum != rep.TrackedTotalBytes {
		t.Fatalf("component sum %d != TrackedTotalBytes %d", sum, rep.TrackedTotalBytes)
	}
	if rep.Heap.HeapAllocBytes == 0 || rep.Heap.TrackedCoverageRatio <= 0 {
		t.Fatalf("heap stats missing: %+v", rep.Heap)
	}
	if rep.Sweep.Count == 0 {
		t.Fatal("sweep count not incremented")
	}
	if got := e.LastMemReport(); got == nil || got.Sweep.Count < rep.Sweep.Count {
		t.Fatal("LastMemReport did not return the latest sweep")
	}
}

// TestMemoryAccountingTracksGrowth is the Measurer-accuracy check: grow
// the ride population by a known factor and assert the index component's
// bytes grow proportionally (the journal component must grow too, until
// its rings saturate).
func TestMemoryAccountingTracksGrowth(t *testing.T) {
	e := newMemEngine(t, 0)
	defer e.Close()

	base := e.MemSweep()
	b0 := base.IndexBytes

	fillRides(t, e, 50)
	r1 := e.MemSweep()
	d1 := r1.IndexBytes - b0

	fillRides(t, e, 150) // 4x total rides vs the first batch
	r2 := e.MemSweep()
	d2 := r2.IndexBytes - b0

	if d1 == 0 || d2 == 0 {
		t.Fatalf("index component did not grow with rides: +50 → %d bytes, +200 → %d bytes", d1, d2)
	}
	// 4x the rides should cost 4x the per-ride bytes; allow generous
	// slack for map resizing and shared-route dedup.
	if d2 < 2*d1 || d2 > 8*d1 {
		t.Fatalf("index growth not proportional: 50 rides cost %d bytes, 200 rides cost %d (want ~4x)", d1, d2)
	}
	if j1, j2 := r1.Components, r2.Components; len(j1) > 0 && len(j2) > 0 {
		var jb1, jb2 uint64
		for _, c := range j1 {
			if c.Name == "journal" {
				jb1 = c.Bytes
			}
		}
		for _, c := range j2 {
			if c.Name == "journal" {
				jb2 = c.Bytes
			}
		}
		if jb2 < jb1 {
			t.Fatalf("journal component shrank under growth: %d → %d", jb1, jb2)
		}
	}
}

// TestMemoryGaugesPublished: a sweep publishes the per-component gauges,
// the total, the frontier gauge and the sweep counter into the engine's
// telemetry registry (the same series /v1/metrics/history snapshots).
func TestMemoryGaugesPublished(t *testing.T) {
	e := newMemEngine(t, 0)
	defer e.Close()
	fillRides(t, e, 10)
	e.MemSweep()

	snap := e.cfg.Telemetry.Snapshot()
	var seen = map[string]bool{}
	for _, inst := range snap {
		seen[inst.Name] = true
	}
	for _, name := range []string{
		"xar_memsize_bytes",
		"xar_memsize_total_bytes",
		"xar_rides_per_gb",
		"xar_memsize_sweeps_total",
		"xar_memsize_sweep_duration_seconds",
	} {
		if !seen[name] {
			t.Errorf("metric family %q not published after a sweep", name)
		}
	}
}

// TestEngineCloseStopsBackgroundWorkers is the goroutine-leak regression
// test: an engine with every background worker enabled (shadow matcher,
// memory sweeper, continuous profiler) must return to the baseline
// goroutine count after Close.
func TestEngineCloseStopsBackgroundWorkers(t *testing.T) {
	before := runtime.NumGoroutine()

	e := newMemEngine(t, time.Millisecond)
	fillRides(t, e, 5)
	// Exercise the shadow worker so its queue has seen traffic.
	src, dst := farPoints(t, e)
	for i := 0; i < 5; i++ {
		_, _ = e.Search(Request{
			Source: src, Dest: dst,
			EarliestDeparture: 0, LatestDeparture: 5000, WalkLimit: 900,
		})
	}
	// Let the 1 ms sweeper fire at least once.
	deadline := time.Now().Add(2 * time.Second)
	for e.LastMemReport() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.LastMemReport() == nil {
		t.Fatal("background sweeper never produced a report")
	}
	// Let the 1 ms profile worker produce at least one capture too.
	for time.Now().Before(deadline) {
		if _, ok := e.Profiler().Newest(); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, ok := e.Profiler().Newest(); !ok {
		t.Fatal("background profiler never produced a capture")
	}

	e.Close()
	e.Close() // Close is idempotent

	// Goroutine counts are noisy (test runtime, finalizers): retry until
	// the count settles back to the pre-engine baseline.
	var after int
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(10 * time.Millisecond) {
		runtime.GC()
		if after = runtime.NumGoroutine(); after <= before {
			return
		}
	}
	t.Fatalf("goroutines leaked past Close: %d before, %d after", before, after)
}

// TestConcurrentSweepDuringMutation drives sweeps and engine mutation
// from 8 goroutines at once — the -race proof that every Measurer's
// locking story holds against live writes.
func TestConcurrentSweepDuringMutation(t *testing.T) {
	e := newMemEngine(t, 0)
	defer e.Close()
	fillRides(t, e, 10)
	src, dst := farPoints(t, e)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if w%2 == 0 {
					if rep := e.MemSweep(); rep == nil {
						t.Error("sweep returned nil mid-run")
						return
					}
					continue
				}
				_, err := e.CreateRide(RideOffer{
					Source: src, Dest: dst, Departure: 1000 + float64(w*100+i), Seats: 4,
				})
				if err != nil {
					t.Errorf("create during sweep: %v", err)
					return
				}
				_, _ = e.SearchK(Request{
					Source: src, Dest: dst,
					EarliestDeparture: 0, LatestDeparture: 1e6, WalkLimit: 900,
				}, 1)
			}
		}(w)
	}
	wg.Wait()

	rep := e.MemSweep()
	if rep == nil || rep.ActiveRides != 10+workers/2*25 {
		t.Fatalf("post-race state: %+v", rep)
	}
}
