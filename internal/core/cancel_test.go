package core

import (
	"math"
	"testing"
)

// bookOne creates a ride, searches along its corridor and books the
// first match, returning everything a cancellation test needs.
func bookOne(t *testing.T, e *Engine) (bk Booking, req Request) {
	t.Helper()
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	req = requestAlong(e, r, 0.3, 0.7, 3600, 900)
	ms, err := e.Search(req)
	if err != nil || len(ms) == 0 {
		t.Fatalf("search: %v / %d matches", err, len(ms))
	}
	bk, err = e.Book(ms[0], req)
	if err != nil {
		t.Fatal(err)
	}
	return bk, req
}

func TestCancelBookingRestoresRide(t *testing.T) {
	e := newTestEngine(t)
	bk, _ := bookOne(t, e)
	r := e.Ride(bk.Ride)

	seatsAfterBook := r.SeatsAvail
	viasAfterBook := len(r.Via)
	lenAfterBook, _ := e.disc.City().Graph.PathLength(r.Route)

	if err := e.CancelBooking(bk.Ride, bk.PickupNode, bk.DropoffNode); err != nil {
		t.Fatal(err)
	}
	r = e.Ride(bk.Ride) // re-fetch: snapshots don't observe the cancel
	if r.SeatsAvail != seatsAfterBook+1 {
		t.Fatalf("seats %d → %d; cancellation must return the seat", seatsAfterBook, r.SeatsAvail)
	}
	if len(r.Via) != viasAfterBook-2 {
		t.Fatalf("vias %d → %d; want -2", viasAfterBook, len(r.Via))
	}
	lenAfterCancel, err := e.disc.City().Graph.PathLength(r.Route)
	if err != nil {
		t.Fatalf("route corrupted by cancel: %v", err)
	}
	if lenAfterCancel > lenAfterBook+1 {
		t.Fatalf("route grew on cancel: %.1f → %.1f", lenAfterBook, lenAfterCancel)
	}
	// The booking-free ride has its full budget back.
	if math.Abs(lenAfterCancel-r.BaseRouteLen) < 1 && math.Abs(r.DetourLimit-r.DetourLimitInitial) > 1 {
		t.Fatalf("detour budget %.1f not restored to %.1f", r.DetourLimit, r.DetourLimitInitial)
	}
	// Index invariants survive.
	if err := e.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Via nodes still sit at their claimed route indices.
	for _, v := range r.Via {
		if r.Route[v.RouteIdx] != v.Node {
			t.Fatalf("via %v not at route index %d", v.Node, v.RouteIdx)
		}
	}
}

func TestCancelBookingThenRebook(t *testing.T) {
	e := newTestEngine(t)
	bk, req := bookOne(t, e)
	if err := e.CancelBooking(bk.Ride, bk.PickupNode, bk.DropoffNode); err != nil {
		t.Fatal(err)
	}
	// The same request can book again after the cancellation.
	ms, err := e.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.Ride == bk.Ride {
			found = true
			if _, err := e.Book(m, req); err != nil {
				t.Fatalf("rebook failed: %v", err)
			}
			break
		}
	}
	if !found {
		t.Fatal("cancelled ride no longer matchable for the same request")
	}
}

func TestCancelBookingErrors(t *testing.T) {
	e := newTestEngine(t)
	if err := e.CancelBooking(999, 1, 2); err != ErrUnknownRide {
		t.Fatalf("err = %v, want ErrUnknownRide", err)
	}
	bk, _ := bookOne(t, e)
	// Wrong nodes: no such booking.
	if err := e.CancelBooking(bk.Ride, bk.DropoffNode, bk.PickupNode); err == nil {
		t.Fatal("swapped nodes must not identify a booking")
	}
	// Double cancellation.
	if err := e.CancelBooking(bk.Ride, bk.PickupNode, bk.DropoffNode); err != nil {
		t.Fatal(err)
	}
	if err := e.CancelBooking(bk.Ride, bk.PickupNode, bk.DropoffNode); err == nil {
		t.Fatal("double cancellation must fail")
	}
}

func TestCancelAfterPickupRejected(t *testing.T) {
	e := newTestEngine(t)
	bk, _ := bookOne(t, e)
	r := e.Ride(bk.Ride)
	// Drive the vehicle past the pickup.
	var puRouteIdx int
	for _, v := range r.Via {
		if v.Node == bk.PickupNode {
			puRouteIdx = v.RouteIdx
		}
	}
	if _, err := e.Track(bk.Ride, r.RouteETA[puRouteIdx]+1); err != nil {
		t.Fatal(err)
	}
	if r.Progress <= 0 {
		t.Skip("vehicle did not move; timing-dependent")
	}
	if r.Via[0].RouteIdx >= r.Progress {
		t.Skip("pickup still ahead; layout-dependent")
	}
	err := e.CancelBooking(bk.Ride, bk.PickupNode, bk.DropoffNode)
	if err == nil && r.Progress > puRouteIdx {
		t.Fatal("cancellation after pickup must be rejected")
	}
}
