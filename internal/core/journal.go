package core

import (
	"xar/internal/index"
	"xar/internal/journal"
	"xar/internal/telemetry"
)

// Journal returns the engine's ride-lifecycle event journal (nil when
// the engine was built without one).
func (e *Engine) Journal() *journal.Journal { return e.jr }

// recordEvent files one ride-lifecycle event into the journal with the
// operation span's trace ID as cross-link. One branch when journaling is
// off; the journal itself never takes engine locks, so emit sites may
// sit inside a shard critical section.
func (e *Engine) recordEvent(t journal.EventType, ride index.RideID, span *telemetry.Span, value float64, note string) {
	if e.jr == nil {
		return
	}
	ev := journal.Event{Type: t, Ride: int64(ride), Value: value, Note: note}
	if span != nil {
		if id := span.TraceID(); !id.IsZero() {
			ev.TraceID = id.String()
		}
	}
	e.jr.Record(ev)
}
