package core

import (
	"context"
	"log/slog"
	"strconv"
	"time"

	"xar/internal/index"
	"xar/internal/telemetry"
)

// Operation names used in op latency histograms and the slow-op log.
const (
	opSearch   = "search"
	opCreate   = "create"
	opBook     = "book"
	opCancel   = "cancel"
	opTrack    = "track"
	opComplete = "complete"
)

// Search stage names (§VII decomposition; see DESIGN.md §Observability).
const (
	stageSideLookup   = "side_lookup"   // walkableSide on both endpoints
	stageCandidate    = "candidate_scan" // steps 1+2: potential-ride pulls + intersection
	stageFinalCheck   = "final_check"   // whole per-ride validation loop + sort
	stageWalkPair     = "walk_pair"     // bestWalkPair time summed over the search
	stageDetourCheck  = "detour_check"  // checkDetourAndOrder time summed over the search
)

// DefaultSearchSampleRate is the default 1-in-N sampling rate for search
// latency tracing. Searches are sub-microsecond on a warm index, so
// timing every one (≈9 clock reads for the stage breakdown) would cost
// tens of percent; sampling keeps the hot-path overhead under 5% while
// the histograms still converge on the true distribution. All other
// engine operations (create/book/cancel/track/complete) run at µs–ms
// scale and are always recorded.
const DefaultSearchSampleRate = 32

// engineTelemetry bundles the engine's instruments. A nil
// *engineTelemetry disables instrumentation entirely: the hot paths
// guard every time.Now() behind a nil check, so a telemetry-free engine
// pays one predictable branch per operation.
type engineTelemetry struct {
	ops    map[string]*telemetry.Histogram
	stages map[string]*telemetry.Histogram

	// errs counts failed operations per op (xar_op_errors_total) — the
	// numerator of the error-rate SLO, whose denominator is the matching
	// xar_op_duration_seconds count.
	errs map[string]*telemetry.Counter

	// bookConflicts counts optimistic-booking commit retries
	// (xar_book_conflict_retries_total) — the Prometheus twin of
	// Metrics.BookConflictRetries.
	bookConflicts *telemetry.Counter

	// Search sampling: a search is fully timed iff its sequence number
	// (the engine's own searches counter) & sampleMask == 0, so an
	// unsampled search pays one mask test and a branch.
	sampleMask uint32

	// tracer mints request-scoped span trees (Config.Tracer). Nil when
	// only aggregate metrics are wanted; the engine then still continues
	// traces begun upstream (an HTTP root span in the context).
	tracer *telemetry.Tracer

	slowThresh time.Duration
	slowLog    *slog.Logger
}

// newEngineTelemetry builds the instrument set. reg may be nil when only
// slow-op logging is wanted; histograms then record into a private,
// unexposed registry (cost is identical, output is simply not scraped).
// sampleRate is the 1-in-N search sampling rate, rounded up to a power
// of two; 0 means DefaultSearchSampleRate, 1 times every search.
func newEngineTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer, sampleRate int, slowThresh time.Duration, slowLog *slog.Logger) *engineTelemetry {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if sampleRate <= 0 {
		sampleRate = DefaultSearchSampleRate
	}
	mask := uint32(1)
	for int(mask) < sampleRate {
		mask <<= 1
	}
	t := &engineTelemetry{
		ops:        make(map[string]*telemetry.Histogram, 6),
		stages:     make(map[string]*telemetry.Histogram, 5),
		errs:       make(map[string]*telemetry.Counter, 6),
		sampleMask: mask - 1,
		tracer:     tracer,
		slowThresh: slowThresh,
		slowLog:    slowLog,
	}
	for _, op := range []string{opSearch, opCreate, opBook, opCancel, opTrack, opComplete} {
		t.ops[op] = telemetry.OpDuration(reg, op)
		t.errs[op] = reg.Counter("xar_op_errors_total",
			"Engine operations that returned an error, by operation.",
			telemetry.L("op", op))
	}
	for _, st := range []string{stageSideLookup, stageCandidate, stageFinalCheck, stageWalkPair, stageDetourCheck} {
		t.stages[st] = telemetry.SearchStage(reg, st)
	}
	t.bookConflicts = reg.Counter("xar_book_conflict_retries_total",
		"Optimistic booking commits retried because the ride mutated between snapshot and commit.", nil)
	if slowThresh > 0 && t.slowLog == nil {
		t.slowLog = slog.Default()
	}
	return t
}

// registerShardGauges exposes the per-stripe ride occupancy of the
// sharded index (xar_index_shard_rides, labeled shard=N). Uniform values
// across shards confirm the ID-mod-N striping is balanced; a skewed
// shard would concentrate lock contention. Every shard's series is
// registered eagerly — a freshly started server reports all of them,
// including the empty ones — and one scrape hook sweeps the current
// counts out of the sharded index (each read takes only that shard's
// read lock) before any exposition render.
func registerShardGauges(reg *telemetry.Registry, v index.View) {
	gauges := make([]*telemetry.Gauge, v.NumShards())
	for i := range gauges {
		gauges[i] = reg.Gauge("xar_index_shard_rides",
			"Active rides per index shard (balanced values mean balanced lock striping).",
			telemetry.L("shard", strconv.Itoa(i)))
	}
	refresh := func() {
		for i, g := range gauges {
			g.Set(float64(v.ShardLen(i)))
		}
	}
	refresh()
	reg.OnScrape(refresh)
}

// startOp opens the span for one engine operation: through the
// configured tracer when there is one (continuing an upstream trace or
// head-sampling a new root), else as a plain child of whatever trace the
// context already carries. Nil-receiver-safe, so call sites need no
// telemetry guard; the returned span is nil when nothing records.
func (t *engineTelemetry) startOp(ctx context.Context, op string) (context.Context, *telemetry.Span) {
	if t == nil || t.tracer == nil {
		return telemetry.ChildSpan(ctx, op)
	}
	return t.tracer.StartSpan(ctx, op)
}

// observeOp records one whole-operation duration, counts err into the
// op's error counter, and emits the slow-op log line when the configured
// threshold is crossed. A non-nil span stamps the histogram bucket with
// a trace-ID exemplar and the slow-op record with the trace ID,
// cross-linking metrics, logs and traces. Nil-receiver-safe.
func (t *engineTelemetry) observeOp(op string, d time.Duration, span *telemetry.Span, err error) {
	if t == nil {
		return
	}
	if span != nil {
		t.ops[op].ObserveDurationExemplar(d, span.TraceID())
	} else {
		t.ops[op].ObserveDuration(d)
	}
	if err != nil {
		t.errs[op].Inc()
	}
	if t.slowThresh > 0 && d >= t.slowThresh && t.slowLog != nil {
		args := []any{
			"op", op,
			"duration_ms", float64(d) / float64(time.Millisecond),
			"threshold_ms", float64(t.slowThresh) / float64(time.Millisecond),
		}
		if span != nil {
			args = append(args, "trace_id", span.TraceID().String())
		}
		t.slowLog.Warn("slow engine operation", args...)
	}
}
