package core

import (
	"math"
	"math/rand"
	"testing"

	"xar/internal/geo"
	"xar/internal/index"
	"xar/internal/roadnet"
)

// referenceMatcher is the exhaustive ground-truth matcher DESIGN.md's
// testing strategy calls for: for every active ride it computes, with
// exact shortest paths and no index structures, whether the ride can
// serve the request — pickup/drop-off at the landmarks nearest the
// requester, exact splice detour within the ride's budget (+4ε, the
// system's allowance), walks within the limit, pickup inside the time
// window, pickup before drop-off, and a free seat.
type referenceMatcher struct {
	e *Engine
	s *roadnet.Searcher
}

func newReferenceMatcher(e *Engine) *referenceMatcher {
	return &referenceMatcher{e: e, s: roadnet.NewSearcher(e.disc.City().Graph)}
}

// feasible reports whether ride r can serve req according to the exact
// model, trying every (pickup cluster, drop-off cluster) pair within
// walking distance. allowance loosens the ride's detour budget: 0 gives
// the strict model (for recall), 4ε gives the approximation-aware model
// (for validity — the paper's guarantee lets the exact detour exceed the
// budget by up to 4ε).
func (rm *referenceMatcher) feasible(r *index.Ride, req Request, allowance float64) bool {
	d := rm.e.disc
	giS := d.Info(d.GridAt(req.Source))
	giD := d.Info(d.GridAt(req.Dest))
	if giS == nil || giD == nil {
		return false
	}
	if r.SeatsAvail <= 0 {
		return false
	}
	for _, ws := range giS.WalkableWithin(req.WalkLimit) {
		for _, wd := range giD.WalkableWithin(req.WalkLimit - ws.Walk) {
			puLM, _ := d.NearestLandmarkInCluster(req.Source, ws.Cluster)
			doLM, _ := d.NearestLandmarkInCluster(req.Dest, wd.Cluster)
			if puLM < 0 || doLM < 0 {
				continue
			}
			pu := d.Landmarks[puLM].Node
			do := d.Landmarks[doLM].Node
			if rm.insertionFeasible(r, pu, do, req, allowance) {
				return true
			}
		}
	}
	return false
}

// insertionFeasible tries every segment pair for the pickup and drop-off
// with exact shortest paths.
func (rm *referenceMatcher) insertionFeasible(r *index.Ride, pu, do roadnet.NodeID, req Request, allowance float64) bool {
	nSeg := r.NumSegments()
	for ps := 0; ps < nSeg; ps++ {
		if r.Via[ps].RouteIdx < r.Progress {
			continue
		}
		for ds := ps; ds < nSeg; ds++ {
			var detour float64
			if ps == ds {
				a, b := r.Via[ps].Node, r.Via[ps+1].Node
				d1 := rm.dist(a, pu)
				d2 := rm.dist(pu, do)
				d3 := rm.dist(do, b)
				dab := rm.dist(a, b)
				if d1 < 0 || d2 < 0 || d3 < 0 || dab < 0 {
					continue
				}
				detour = d1 + d2 + d3 - dab
			} else {
				a, b := r.Via[ps].Node, r.Via[ps+1].Node
				c, e := r.Via[ds].Node, r.Via[ds+1].Node
				d1 := rm.dist(a, pu)
				d2 := rm.dist(pu, b)
				d3 := rm.dist(c, do)
				d4 := rm.dist(do, e)
				dab := rm.dist(a, b)
				dce := rm.dist(c, e)
				if d1 < 0 || d2 < 0 || d3 < 0 || d4 < 0 || dab < 0 || dce < 0 {
					continue
				}
				detour = (d1 + d2 - dab) + (d3 + d4 - dce)
			}
			if detour < 0 {
				detour = 0
			}
			if detour > r.DetourLimit+allowance {
				continue
			}
			// Pickup time: segment start plus driving time to the pickup.
			pickupETA := r.Via[ps].ETA + rm.dist(r.Via[ps].Node, pu)/7.0
			if pickupETA < req.EarliestDeparture || pickupETA > req.LatestDeparture {
				continue
			}
			return true
		}
	}
	return false
}

func (rm *referenceMatcher) dist(a, b roadnet.NodeID) float64 {
	if a == b {
		return 0
	}
	res := rm.s.ShortestPath(a, b)
	if !res.Reachable() {
		return -1
	}
	return res.Dist
}

// TestSearchValidityAndRecallAgainstReference drives random requests
// against a loaded engine and cross-checks XAR's search with the
// exhaustive reference:
//
//   - validity: every XAR match must be feasible for the reference
//     (matches are never bogus — the paper's correctness claim);
//   - recall: XAR must find a large fraction of the rides the reference
//     deems feasible (the cluster approximation may legally miss some
//     borderline cases, but not many).
func TestSearchValidityAndRecallAgainstReference(t *testing.T) {
	e := newTestEngine(t)
	rng := rand.New(rand.NewSource(17))
	city := e.disc.City()
	for i := 0; i < 25; i++ {
		a := city.RandomPoint(rng)
		b := city.RandomPoint(rng)
		_, _ = e.CreateRide(RideOffer{
			Source: a, Dest: b,
			Departure:   float64(rng.Intn(1800)),
			DetourLimit: 1000 + float64(rng.Intn(1500)),
		})
	}
	if e.NumRides() < 10 {
		t.Fatalf("only %d rides", e.NumRides())
	}
	rm := newReferenceMatcher(e)

	var xarFound, refFound, bothFound, bogus int
	for trial := 0; trial < 60; trial++ {
		req := Request{
			Source:            city.RandomPoint(rng),
			Dest:              city.RandomPoint(rng),
			EarliestDeparture: 0,
			LatestDeparture:   3600,
			WalkLimit:         700 + rng.Float64()*300,
		}
		if geo.Haversine(req.Source, req.Dest) < 800 {
			continue
		}
		ms, err := e.Search(req)
		if err == ErrNotServable {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		matched := map[index.RideID]bool{}
		for _, m := range ms {
			matched[m.Ride] = true
		}
		allowance := 4 * e.Disc().Epsilon()
		e.Index().Rides(func(r *index.Ride) bool {
			if rm.feasible(r, req, 0) { // strict model → recall
				refFound++
				if matched[r.ID] {
					bothFound++
				}
			}
			if matched[r.ID] {
				xarFound++
				if !rm.feasible(r, req, allowance) { // loose model → validity
					bogus++
				}
			}
			return true
		})
	}
	if refFound == 0 {
		t.Skip("reference found nothing; world too sparse")
	}
	// Validity: XAR may be *stricter* than the reference (its ordering
	// and ETA constraints use index estimates) but must rarely claim a
	// match the exact model rejects. Allow a tiny tolerance for ETA
	// estimation differences at window boundaries.
	if frac := float64(bogus) / math.Max(1, float64(xarFound)); frac > 0.05 {
		t.Fatalf("%.1f%% of XAR matches (%d/%d) are infeasible for the reference",
			100*frac, bogus, xarFound)
	}
	// Recall: the cluster index must surface most exact-feasible rides.
	recall := float64(bothFound) / float64(refFound)
	t.Logf("reference feasible %d, XAR recalled %d (%.0f%%), XAR matches %d, bogus %d",
		refFound, bothFound, 100*recall, xarFound, bogus)
	if recall < 0.5 {
		t.Fatalf("recall %.0f%% below 50%%", 100*recall)
	}
}
