package core

import (
	"encoding/json"
	"fmt"

	"xar/internal/index"
)

// RouteGeoJSON renders a ride's current route and via-points as a
// GeoJSON FeatureCollection — a LineString for the route plus a Point
// feature per via-point — ready for any web map. Client apps poll this
// to draw the vehicle's path and stops.
func (e *Engine) RouteGeoJSON(id index.RideID) ([]byte, error) {
	sh := e.ix.ShardFor(id)
	sh.RLock()
	defer sh.RUnlock()

	r := sh.Ix.Ride(id)
	if r == nil {
		return nil, ErrUnknownRide
	}
	g := e.disc.City().Graph

	coords := make([][2]float64, len(r.Route))
	for i, n := range r.Route {
		p := g.Point(n)
		coords[i] = [2]float64{p.Lng, p.Lat} // GeoJSON is lng,lat
	}

	type feature struct {
		Type       string                 `json:"type"`
		Geometry   map[string]interface{} `json:"geometry"`
		Properties map[string]interface{} `json:"properties"`
	}
	features := []feature{{
		Type: "Feature",
		Geometry: map[string]interface{}{
			"type":        "LineString",
			"coordinates": coords,
		},
		Properties: map[string]interface{}{
			"ride_id":         int64(r.ID),
			"seats_available": r.SeatsAvail,
			"detour_budget_m": r.DetourLimit,
			"progress_index":  r.Progress,
		},
	}}
	for i, v := range r.Via {
		p := g.Point(v.Node)
		features = append(features, feature{
			Type: "Feature",
			Geometry: map[string]interface{}{
				"type":        "Point",
				"coordinates": [2]float64{p.Lng, p.Lat},
			},
			Properties: map[string]interface{}{
				"kind": v.Kind.String(),
				"eta":  v.ETA,
				"seq":  i,
			},
		})
	}
	doc := map[string]interface{}{
		"type":     "FeatureCollection",
		"features": features,
	}
	out, err := json.Marshal(doc)
	if err != nil {
		return nil, fmt.Errorf("xar: geojson encode: %w", err)
	}
	return out, nil
}
