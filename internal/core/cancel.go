package core

import (
	"context"
	"fmt"
	"time"

	"xar/internal/index"
	"xar/internal/journal"
	"xar/internal/roadnet"
)

// CancelBooking removes a confirmed booking from a ride: the pickup and
// drop-off via-points are deleted, the route is re-stitched through the
// remaining via-points with shortest paths, the seat is returned and the
// detour budget recomputed from the driver's original tolerance. Only
// bookings whose pickup the vehicle has not yet passed can be cancelled.
//
// The booking is identified by its pickup and drop-off nodes, as returned
// in the Booking struct.
func (e *Engine) CancelBooking(id index.RideID, pickup, dropoff roadnet.NodeID) error {
	return e.CancelBookingCtx(context.Background(), id, pickup, dropoff)
}

// CancelBookingCtx is CancelBooking with trace propagation: the re-stitch
// shortest paths become "path_search" spans of the context's trace.
func (e *Engine) CancelBookingCtx(ctx context.Context, id index.RideID, pickup, dropoff roadnet.NodeID) (err error) {
	ctx, span := e.tel.startOp(ctx, opCancel)
	if e.tel != nil || span != nil {
		defer func(start time.Time) {
			now := time.Now()
			span.SetError(err)
			// Observe before End: sealing recycles the trace record.
			e.tel.observeOp(opCancel, now.Sub(start), span, err)
			span.EndAt(now)
		}(time.Now())
	}
	// Cancellation is rare; it holds its ride's shard write lock for the
	// whole re-stitch rather than running the optimistic protocol —
	// simpler, and it stalls only 1/N of concurrent searches.
	sh := e.ix.ShardFor(id)
	sh.Lock()
	defer sh.Unlock()

	r := sh.Ix.Ride(id)
	if r == nil {
		return ErrUnknownRide
	}

	puIdx, doIdx := -1, -1
	for i, v := range r.Via {
		if puIdx < 0 && v.Kind == index.ViaPickup && v.Node == pickup {
			puIdx = i
			continue
		}
		if puIdx >= 0 && doIdx < 0 && v.Kind == index.ViaDropoff && v.Node == dropoff {
			doIdx = i
		}
	}
	if puIdx < 0 || doIdx < 0 {
		return fmt.Errorf("xar: no booking with pickup %d and drop-off %d on ride %d", pickup, dropoff, id)
	}
	if r.Via[puIdx].RouteIdx < r.Progress {
		return ErrNoLongerFeasible // rider already picked up (or passed)
	}

	// Remaining via-point sequence without the cancelled pair.
	keep := make([]index.ViaPoint, 0, len(r.Via)-2)
	for i, v := range r.Via {
		if i == puIdx || i == doIdx {
			continue
		}
		keep = append(keep, v)
	}

	// Re-stitch the route with shortest paths between consecutive kept
	// via-points. (Cancellation is rarer than booking; the simpler full
	// re-stitch is acceptable here, unlike the hot booking path.)
	route := []roadnet.NodeID{keep[0].Node}
	viaIdx := make([]int, len(keep))
	f := e.finder()
	for i := 1; i < len(keep); i++ {
		if keep[i].Node == keep[i-1].Node {
			viaIdx[i] = len(route) - 1
			continue
		}
		e.m.shortestPaths.Add(1)
		res := e.tracedShortestPath(ctx, f, keep[i-1].Node, keep[i].Node)
		if !res.Reachable() {
			e.release(f)
			return ErrUnreachable
		}
		route = append(route, res.Path[1:]...)
		viaIdx[i] = len(route) - 1
	}
	e.release(f)

	newLen, err := e.disc.City().Graph.PathLength(route)
	if err != nil {
		return fmt.Errorf("xar: cancel re-stitch produced an invalid route: %w", err)
	}

	r.Route = route
	r.RouteETA = e.computeETAs(route, r.Departure)
	r.Via = r.Via[:0]
	for i, v := range keep {
		r.Via = append(r.Via, index.ViaPoint{
			RouteIdx: viaIdx[i], Node: v.Node, ETA: r.RouteETA[viaIdx[i]], Kind: v.Kind,
		})
	}
	spent := newLen - r.BaseRouteLen
	if spent < 0 {
		spent = 0
	}
	r.DetourLimit = r.DetourLimitInitial - spent
	if r.DetourLimit < 0 {
		r.DetourLimit = 0
	}
	e.m.cancellations.Add(1)
	r.SeatsAvail++
	if r.SeatsAvail >= r.SeatsTotal {
		r.SeatsAvail = r.SeatsTotal - 1 // driver still occupies one
	}
	// The vehicle position is re-derived on the next Track: route indices
	// changed, so reset progress conservatively to the route start of the
	// first remaining segment.
	r.Progress = 0
	if err := sh.Ix.Reregister(r); err != nil {
		return err
	}
	e.recordEvent(journal.Cancelled, id, span, spent, "")
	return nil
}
