package core

import (
	"math"
	"math/rand"
	"testing"

	"xar/internal/index"
)

// validateRide checks full structural consistency of a ride after
// booking operations: route is a connected path, via-points sit at their
// claimed indices in order, pickups precede their drop-offs, ETAs are
// non-decreasing.
func validateRide(t *testing.T, e *Engine, r *index.Ride) {
	t.Helper()
	if _, err := e.disc.City().Graph.PathLength(r.Route); err != nil {
		t.Fatalf("route disconnected: %v", err)
	}
	if r.Via[0].RouteIdx != 0 {
		t.Fatalf("first via at route index %d", r.Via[0].RouteIdx)
	}
	if r.Via[len(r.Via)-1].RouteIdx != len(r.Route)-1 {
		t.Fatalf("last via at %d, route ends at %d", r.Via[len(r.Via)-1].RouteIdx, len(r.Route)-1)
	}
	for i, v := range r.Via {
		if r.Route[v.RouteIdx] != v.Node {
			t.Fatalf("via %d: node %d not at route index %d", i, v.Node, v.RouteIdx)
		}
		if i > 0 && v.RouteIdx < r.Via[i-1].RouteIdx {
			t.Fatalf("via %d out of order", i)
		}
	}
	for i := 1; i < len(r.RouteETA); i++ {
		if r.RouteETA[i] < r.RouteETA[i-1] {
			t.Fatalf("ETA decreased at route index %d", i)
		}
	}
	if r.Via[0].Kind != index.ViaSource || r.Via[len(r.Via)-1].Kind != index.ViaDest {
		t.Fatal("endpoints lost their source/dest kinds")
	}
	if err := e.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleBookingsAccumulate(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, Seats: 8, DetourLimit: 6000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	rng := rand.New(rand.NewSource(3))
	booked := 0
	for i := 0; i < 12 && booked < 5; i++ {
		a := 0.1 + rng.Float64()*0.5
		b := a + 0.15 + rng.Float64()*(0.85-a-0.15)
		req := requestAlong(e, r, a, b, 1e6, 1000)
		ms, err := e.Search(req)
		if err != nil || len(ms) == 0 {
			continue
		}
		var m *Match
		for j := range ms {
			if ms[j].Ride == id {
				m = &ms[j]
				break
			}
		}
		if m == nil {
			continue
		}
		if _, err := e.Book(*m, req); err != nil {
			continue
		}
		booked++
		r = e.Ride(id) // re-fetch: snapshots don't observe bookings
		validateRide(t, e, r)
	}
	if booked < 2 {
		t.Fatalf("only %d of 5 bookings landed on the seeded world", booked)
	}
	if len(r.Via) != 2+2*booked {
		t.Fatalf("via count %d after %d bookings", len(r.Via), booked)
	}
	// Each booked rider's pickup precedes their drop-off in route order
	// (kinds alternate correctly because via-points are route-ordered).
	pickups, drops := 0, 0
	for _, v := range r.Via {
		switch v.Kind {
		case index.ViaPickup:
			pickups++
		case index.ViaDropoff:
			drops++
		}
	}
	if pickups != booked || drops != booked {
		t.Fatalf("pickups=%d drops=%d, want %d each", pickups, drops, booked)
	}
}

func TestBookingDetourAccounting(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, Seats: 8, DetourLimit: 5000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	base := r.BaseRouteLen

	var totalDetour float64
	for i := 0; i < 3; i++ {
		req := requestAlong(e, r, 0.2+float64(i)*0.1, 0.7, 1e6, 1000)
		ms, err := e.Search(req)
		if err != nil || len(ms) == 0 {
			break
		}
		bk, err := e.Book(ms[0], req)
		if err != nil {
			break
		}
		totalDetour += bk.DetourActual
		r = e.Ride(id) // re-fetch: snapshots don't observe bookings
	}
	routeLen, err := e.disc.City().Graph.PathLength(r.Route)
	if err != nil {
		t.Fatal(err)
	}
	// Cumulative booked detours equal the total route growth.
	if math.Abs((routeLen-base)-totalDetour) > 1 {
		t.Fatalf("route grew %.1f but booked detours sum to %.1f", routeLen-base, totalDetour)
	}
	// Remaining budget = initial − spent.
	if math.Abs(r.DetourLimit-(r.DetourLimitInitial-totalDetour)) > 1 {
		t.Fatalf("budget %.1f, want %.1f", r.DetourLimit, r.DetourLimitInitial-totalDetour)
	}
}

func TestBookingSameSegmentTwice(t *testing.T) {
	// Two bookings landing in the same original segment: the second
	// splice happens on the already-split route.
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, Seats: 8, DetourLimit: 8000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	for i := 0; i < 2; i++ {
		req, ms := mustSearchAlong(t, e, r, 0.4, 0.6, 1e6, 1000)
		if _, err := e.Book(ms[0], req); err != nil {
			t.Fatalf("booking %d failed: %v", i, err)
		}
		validateRide(t, e, r)
	}
}

func TestBookingNarrowWindowRespectED(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 5000, DetourLimit: 2000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	req, ms := mustSearchAlong(t, e, r, 0.3, 0.7, 1e6, 900)
	bk, err := e.Book(ms[0], req)
	if err != nil {
		t.Fatal(err)
	}
	if bk.PickupETA < 5000 {
		t.Fatalf("pickup ETA %.0f before the ride departs at 5000", bk.PickupETA)
	}
	if bk.DropoffETA < bk.PickupETA {
		t.Fatalf("drop-off %.0f before pickup %.0f", bk.DropoffETA, bk.PickupETA)
	}
}

func TestBookingRefusedWhenVehiclePassedSegment(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.CreateRide(RideOffer{Source: src, Dest: dst, Departure: 0, DetourLimit: 2000})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Ride(id)
	req, ms := mustSearchAlong(t, e, r, 0.1, 0.5, 1e6, 900)
	m := ms[0]
	// Drive the vehicle to 90% of the route, then book the stale match.
	end := r.RouteETA[len(r.RouteETA)-1]
	if _, err := e.Track(id, end*0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Book(m, req); err == nil {
		// Booking may legally succeed if a valid later support exists;
		// but the resulting ride must still be structurally sound.
		validateRide(t, e, r)
	}
}
