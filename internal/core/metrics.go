package core

import (
	"sync/atomic"
)

// Metrics is a snapshot of the engine's operation counters. All counters
// are cumulative since engine creation.
type Metrics struct {
	Searches       uint64
	SearchMatches  uint64 // total matches returned across searches
	RidesCreated   uint64
	Bookings       uint64
	BookingsFailed uint64
	Cancellations  uint64
	TrackCalls     uint64
	RidesCompleted uint64
	ShortestPaths  uint64 // single-pair searches run (create + book + cancel)
	// BookConflictRetries counts optimistic-booking commit attempts that
	// found the ride mutated (revision changed) between snapshot and
	// commit and had to retry. A high rate relative to Bookings signals
	// heavy contention on individual rides.
	BookConflictRetries uint64
	// CandidatesExamined counts ride candidates that reached the search
	// funnel (survived the posting-list window scan of step 1). Zero
	// unless Config.Quality is set; when it is, this equals the sum of
	// all xar_search_funnel_total stages by construction.
	CandidatesExamined uint64
}

// metrics is the engine-internal atomic counter block.
type metrics struct {
	searches            atomic.Uint64
	searchMatches       atomic.Uint64
	ridesCreated        atomic.Uint64
	bookings            atomic.Uint64
	bookingsFailed      atomic.Uint64
	cancellations       atomic.Uint64
	trackCalls          atomic.Uint64
	ridesCompleted      atomic.Uint64
	shortestPaths       atomic.Uint64
	bookConflictRetries atomic.Uint64
	candidatesExamined  atomic.Uint64
}

// Metrics returns a consistent-enough snapshot of the counters (each
// counter is read atomically; cross-counter skew is possible and fine
// for monitoring).
func (e *Engine) Metrics() Metrics {
	return Metrics{
		Searches:       e.m.searches.Load(),
		SearchMatches:  e.m.searchMatches.Load(),
		RidesCreated:   e.m.ridesCreated.Load(),
		Bookings:       e.m.bookings.Load(),
		BookingsFailed: e.m.bookingsFailed.Load(),
		Cancellations:  e.m.cancellations.Load(),
		TrackCalls:     e.m.trackCalls.Load(),
		RidesCompleted: e.m.ridesCompleted.Load(),
		ShortestPaths:  e.m.shortestPaths.Load(),

		BookConflictRetries: e.m.bookConflictRetries.Load(),
		CandidatesExamined:  e.m.candidatesExamined.Load(),
	}
}

// LookToBookRatio reports the observed searches-per-booking — the
// quantity the paper's Figure 5b sweeps.
//
// The result is always finite and NaN-free: with zero bookings it
// returns 0, even when searches have happened (a "pure browsing" phase
// has no defined ratio yet; 0 keeps dashboards and the Figure 5b
// harness division-safe). Once Bookings > 0 the exact quotient is
// returned.
func (m Metrics) LookToBookRatio() float64 {
	if m.Bookings == 0 {
		return 0
	}
	return float64(m.Searches) / float64(m.Bookings)
}

// MatchRate is the average number of matches returned per search —
// SearchMatches/Searches, the engine-side quantity the Figure 5b
// harness reuses alongside LookToBookRatio. Zero searches yields 0
// (never NaN). Values above 1 mean searches return several options
// each.
func (m Metrics) MatchRate() float64 {
	if m.Searches == 0 {
		return 0
	}
	return float64(m.SearchMatches) / float64(m.Searches)
}
