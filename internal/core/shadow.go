package core

import (
	"sync"
	"sync/atomic"
	"time"

	"xar/internal/quality"
)

// The shadow counterfactual matcher re-runs a sample of requests off
// the request path to answer two questions the production funnel
// cannot:
//
//   - For a request that matched nothing: which single constraint,
//     if relaxed, would have unlocked a match? The funnel says at which
//     stage candidates died; the shadow run says which constraint was
//     *binding* for the request as a whole (xar_shadow_unlock_total).
//
//   - For a request that booked: how much worse was the greedy choice
//     than the best alternative still available? That greedy-regret
//     number is the baseline the planned MatchMode=batch matcher has
//     to beat.
//
// Both run on a single background worker fed by a bounded queue; the
// request path pays one sampled atomic and a non-blocking channel send,
// and a full queue drops the task (xar_shadow_dropped_total) rather
// than ever blocking a search or booking. Counterfactual searches
// bypass metrics, traces, the journal, and the funnel entirely.

// shadowQueueDepth bounds the task queue. Shadow work is advisory: on
// overload we drop samples, never delay requests.
const shadowQueueDepth = 256

// shadowWalkRelaxFactor / shadowWalkRelaxFloor define the relaxed walk
// limit: generous enough (4× + 400 m) that a walk-bound request almost
// always unlocks, without scanning the whole city.
const (
	shadowWalkRelaxFactor = 4
	shadowWalkRelaxFloor  = 400
)

type shadowTaskKind uint8

const (
	shadowNoMatch shadowTaskKind = iota
	shadowRegret
)

type shadowTask struct {
	kind shadowTaskKind
	req  Request
	// chosenWalk is the booked match's total walk (regret tasks only).
	chosenWalk float64
}

type shadowMatcher struct {
	e  *Engine
	qc *quality.Collector

	tasks chan shadowTask
	// sampleMask implements the 1-in-N sampling exactly like search
	// telemetry: rate rounded up to a power of two, one atomic
	// increment plus a mask test per candidate event.
	sampleMask uint32
	seq        atomic.Uint32
	// inflight counts tasks accepted but not yet fully processed;
	// ShadowFlush polls it to zero for deterministic tests and drains.
	inflight atomic.Int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

func newShadowMatcher(e *Engine, qc *quality.Collector, rate int) *shadowMatcher {
	mask := uint32(1)
	for int(mask) < rate {
		mask <<= 1
	}
	m := &shadowMatcher{
		e:          e,
		qc:         qc,
		tasks:      make(chan shadowTask, shadowQueueDepth),
		sampleMask: mask - 1,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go m.worker()
	return m
}

func (m *shadowMatcher) close() {
	if m == nil {
		return
	}
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// offerNoMatch samples a no-match request into the queue. Nil-receiver
// safe: the call sits on the search path, which must stay one branch
// when the shadow matcher is off.
func (m *shadowMatcher) offerNoMatch(req Request) {
	if m == nil {
		return
	}
	m.offer(shadowTask{kind: shadowNoMatch, req: req}, quality.TaskNoMatch)
}

// offerRegret samples a successful booking for greedy-regret
// measurement. chosenWalk is the booked option's total walk.
func (m *shadowMatcher) offerRegret(req Request, chosenWalk float64) {
	if m == nil {
		return
	}
	m.offer(shadowTask{kind: shadowRegret, req: req, chosenWalk: chosenWalk}, quality.TaskRegret)
}

func (m *shadowMatcher) offer(t shadowTask, kind string) {
	if m.seq.Add(1)&m.sampleMask != 0 {
		return
	}
	m.inflight.Add(1)
	select {
	case m.tasks <- t:
		m.qc.ShadowTask(kind)
	default:
		m.inflight.Add(-1)
		m.qc.ShadowDropped()
	}
}

func (m *shadowMatcher) worker() {
	defer close(m.done)
	for {
		select {
		case t := <-m.tasks:
			m.run(t)
			m.inflight.Add(-1)
		case <-m.stop:
			// Drain what was already accepted, then exit.
			for {
				select {
				case t := <-m.tasks:
					m.run(t)
					m.inflight.Add(-1)
				default:
					return
				}
			}
		}
	}
}

func (m *shadowMatcher) run(t shadowTask) {
	switch t.kind {
	case shadowNoMatch:
		m.runNoMatch(t.req)
	case shadowRegret:
		m.runRegret(t.req, t.chosenWalk)
	}
}

// runNoMatch relaxes one constraint at a time and records every
// constraint whose relaxation alone unlocks at least one match — the
// per-request binding-constraint attribution. A request no single
// relaxation can unlock counts under "none" (several constraints bind
// at once, or the request is simply not servable).
func (m *shadowMatcher) runNoMatch(req Request) {
	unlocked := false
	try := func(constraint string, req Request, relax relaxFlags) {
		if len(m.e.shadowSearch(req, relax)) > 0 {
			m.qc.Unlock(constraint)
			unlocked = true
		}
	}

	walkReq := req
	walkReq.WalkLimit = req.WalkLimit*shadowWalkRelaxFactor + shadowWalkRelaxFloor
	try(quality.ConstraintWalk, walkReq, 0)

	// Widen the departure window by the engine's destination slack on
	// both sides — the same scale the index's window logic works at.
	widen := m.e.cfg.DestWindowSlack
	if widen <= 0 {
		widen = 3600
	}
	windowReq := req
	windowReq.EarliestDeparture -= widen
	windowReq.LatestDeparture += widen
	try(quality.ConstraintWindow, windowReq, 0)

	try(quality.ConstraintCapacity, req, relaxCapacity)
	try(quality.ConstraintDetour, req, relaxDetour)
	try(quality.ConstraintOrder, req, relaxOrder)

	if !unlocked {
		m.qc.Unlock(quality.ConstraintNone)
	}
}

// runRegret re-runs a booked request against the full candidate set
// and measures how much walking the greedy (first-result) choice cost
// over the best alternative still bookable. The re-run sees the
// post-booking state — the chosen ride's budget and seat are already
// charged — so the regret is with respect to what the next requester
// would find, a deliberate (and documented) approximation that keeps
// the shadow matcher entirely off the booking path.
func (m *shadowMatcher) runRegret(req Request, chosenWalk float64) {
	ms := m.e.shadowSearch(req, 0)
	if len(ms) == 0 {
		m.qc.ObserveRegret(0, false)
		return
	}
	regret := chosenWalk - ms[0].TotalWalk() // sorted by total walk
	if regret < 0 {
		regret = 0
	}
	m.qc.ObserveRegret(regret, true)
}

// shadowSearch runs the two-step search with a relaxation mask and no
// instrumentation whatsoever: no op metrics, no sampling, no spans, no
// journal events, no funnel counts. Counterfactuals must not pollute
// the production series they exist to explain.
func (e *Engine) shadowSearch(req Request, relax relaxFlags) []Match {
	if req.Validate() != nil {
		return nil
	}
	out, err := e.search(nil, req, false, false, searchOpts{relax: relax})
	if err != nil {
		return nil
	}
	return out
}

// ShadowFlush blocks until every shadow task accepted so far has been
// processed (deterministic tests, graceful drains). It does not wait
// for tasks still being offered concurrently. No-op without a shadow
// matcher.
func (e *Engine) ShadowFlush() {
	if e.shadow == nil {
		return
	}
	for e.shadow.inflight.Load() > 0 {
		time.Sleep(time.Millisecond)
	}
}
