package sim

import (
	"fmt"

	"xar/internal/core"
	"xar/internal/index"
	"xar/internal/mmtp"
	"xar/internal/roadnet"
	"xar/internal/stats"
	"xar/internal/workload"
)

// ModeMetrics aggregates travel quality for one transportation mode, the
// quantities of the paper's Figure 6: end-to-end travel time, walking
// time, waiting time, and the number of cars needed to serve the demand.
type ModeMetrics struct {
	Mode       string
	TravelTime stats.Sample // minutes
	WalkTime   stats.Sample // minutes
	WaitTime   stats.Sample // minutes
	Cars       int
	Served     int
}

// ModesConfig tunes the four-mode comparison.
type ModesConfig struct {
	Sim         Config
	Integration mmtp.IntegrationConfig
	WalkSpeed   float64 // m/s, for composing walk times
}

// DefaultModesConfig returns the paper's Figure 6 setting: segments with
// more than 1 km of walking or 10 minutes of waiting are infeasible.
func DefaultModesConfig() ModesConfig {
	return ModesConfig{
		Sim:         DefaultConfig(),
		Integration: mmtp.DefaultIntegrationConfig(),
		WalkSpeed:   1.3,
	}
}

// CompareTaxi serves every trip with its own taxi: the dataset baseline.
func CompareTaxi(city *roadnet.City, trips []workload.Trip) ModeMetrics {
	m := ModeMetrics{Mode: "Taxi"}
	s := roadnet.NewSearcher(city.Graph)
	for _, tr := range trips {
		a, _ := city.SnapToNode(tr.Pickup)
		b, _ := city.SnapToNode(tr.Dropoff)
		if a == roadnet.InvalidNode || b == roadnet.InvalidNode || a == b {
			continue
		}
		res := s.ShortestPath(a, b)
		if !res.Reachable() {
			continue
		}
		t, err := city.Graph.TravelTime(res.Path)
		if err != nil {
			continue
		}
		m.TravelTime.Add(t / 60)
		m.WalkTime.Add(0)
		m.WaitTime.Add(2) // hail latency: a couple of minutes
		m.Cars++
		m.Served++
	}
	return m
}

// CompareRideShare replays the stream through a fresh XAR engine per the
// §X-A2 protocol and converts the outcome into traveller metrics.
func CompareRideShare(eng *core.Engine, trips []workload.Trip, cfg ModesConfig) (ModeMetrics, error) {
	m := ModeMetrics{Mode: "RS"}
	sys := &XARSystem{Engine: eng}
	simCfg := cfg.Sim
	lastTrack := -1.0
	for _, trip := range trips {
		now := trip.RequestTime
		if simCfg.TrackInterval > 0 && (lastTrack < 0 || now-lastTrack >= simCfg.TrackInterval) {
			sys.Advance(now)
			lastTrack = now
		}
		req := Request{
			Source: trip.Pickup, Dest: trip.Dropoff,
			Earliest: now, Latest: now + simCfg.WindowSlack,
			WalkLimit: simCfg.WalkLimit,
		}
		cands, err := sys.Search(req, simCfg.K)
		if err != nil {
			if isNotServable(err) {
				continue
			}
			return m, err
		}
		served := false
		for _, c := range cands {
			match, ok := c.Payload.(core.Match)
			if !ok {
				continue
			}
			br, berr := sys.Book(c, req)
			if berr != nil {
				continue
			}
			walkT := br.Walk / cfg.WalkSpeed
			waitT := match.PickupETA - now
			if waitT < 0 {
				waitT = 0
			}
			rideT := match.DropoffETA - match.PickupETA
			if rideT < 0 {
				rideT = 0
			}
			m.TravelTime.Add((walkT + waitT + rideT) / 60)
			m.WalkTime.Add(walkT / 60)
			m.WaitTime.Add(waitT / 60)
			m.Served++
			served = true
			break
		}
		if served {
			continue
		}
		// Becomes a driver: own car, own shortest route.
		id, cerr := sys.Create(Offer{
			Source: trip.Pickup, Dest: trip.Dropoff,
			Departure: now + simCfg.WindowSlack/2, Seats: simCfg.Seats,
			DetourLimit: simCfg.DetourLimit,
		})
		if cerr != nil {
			continue
		}
		m.Cars++
		if r := eng.Ride(index.RideID(id)); r != nil {
			dur := r.RouteETA[len(r.RouteETA)-1] - r.RouteETA[0]
			m.TravelTime.Add((simCfg.WindowSlack/2 + dur) / 60)
			m.WalkTime.Add(0)
			m.WaitTime.Add(simCfg.WindowSlack / 2 / 60)
			m.Served++
		}
	}
	return m, nil
}

// CompareTransit plans every trip on public transport alone.
func CompareTransit(planner *mmtp.Planner, trips []workload.Trip) ModeMetrics {
	m := ModeMetrics{Mode: "PT"}
	for _, tr := range trips {
		it, err := planner.Plan(tr.Pickup, tr.Dropoff, tr.RequestTime)
		if err != nil || it == nil {
			continue
		}
		m.TravelTime.Add(it.TravelTime() / 60)
		m.WalkTime.Add(it.WalkTime() / 60)
		m.WaitTime.Add(it.WaitTime() / 60)
		m.Served++
	}
	return m
}

// CompareTransitPlusRideShare runs the aider-mode integration (§IX-A):
// every trip is planned on transit; infeasible segments query XAR for a
// shared ride; segments that find none seed a new ride offer (the
// commuter drives that leg and offers the seats), so later requests can
// share it.
func CompareTransitPlusRideShare(eng *core.Engine, planner *mmtp.Planner, trips []workload.Trip, cfg ModesConfig) (ModeMetrics, error) {
	m := ModeMetrics{Mode: "RS+PT"}
	sys := &XARSystem{Engine: eng}
	lastTrack := -1.0
	for _, tr := range trips {
		now := tr.RequestTime
		if cfg.Sim.TrackInterval > 0 && (lastTrack < 0 || now-lastTrack >= cfg.Sim.TrackInterval) {
			sys.Advance(now)
			lastTrack = now
		}
		it, err := planner.Plan(tr.Pickup, tr.Dropoff, now)
		if err != nil || it == nil {
			continue
		}
		res, aerr := mmtp.Aider(it, eng, cfg.Integration)
		if aerr != nil {
			return m, fmt.Errorf("sim: aider failed: %w", aerr)
		}
		final := res.Itinerary
		// Unfixed infeasible segments: the commuter drives that leg and
		// offers it as a shared ride (new car on the road).
		if res.Infeasible > res.Replaced {
			for _, leg := range final.Legs {
				infeasible := (leg.Mode == mmtp.LegWalk && leg.Distance > cfg.Integration.MaxLegWalk) ||
					(leg.Wait > cfg.Integration.MaxLegWait)
				if !infeasible {
					continue
				}
				if _, cerr := sys.Create(Offer{
					Source: leg.From, Dest: leg.To,
					Departure: leg.Start, Seats: cfg.Sim.Seats,
					DetourLimit: cfg.Sim.DetourLimit,
				}); cerr == nil {
					m.Cars++
				}
			}
		}
		m.TravelTime.Add(final.TravelTime() / 60)
		m.WalkTime.Add(final.WalkTime() / 60)
		m.WaitTime.Add(final.WaitTime() / 60)
		m.Served++
	}
	return m, nil
}
