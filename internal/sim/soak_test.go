package sim

import (
	"testing"

	"xar/internal/workload"
)

// TestSoakFullDay replays a full-day, larger workload through XAR and
// checks global invariants at the end — the long-haul robustness test.
// Skipped under -short.
func TestSoakFullDay(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	city := testCity(t)
	sys := testXAR(t, city)

	cfg := workload.DefaultConfig(8000, 99)
	trips, err := workload.Generate(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, trips, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched+res.Created+res.NotServable != res.Requests {
		t.Fatalf("accounting broken after %d requests", res.Requests)
	}
	if res.MatchRate() < 0.3 {
		t.Fatalf("match rate %.2f collapsed over the day", res.MatchRate())
	}
	// The index stays structurally sound after thousands of mixed
	// operations with tracking interleaved.
	if err := sys.Engine.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The approximation guarantee held for every one of the bookings.
	eps := sys.Engine.Disc().Epsilon()
	if res.ApproxErrors.N() > 0 && res.ApproxErrors.Max() > 4*eps {
		t.Fatalf("approx error %.1f > 4ε after %d bookings", res.ApproxErrors.Max(), res.ApproxErrors.N())
	}
	// Engine metrics agree with the replay's accounting.
	m := sys.Engine.Metrics()
	if int(m.RidesCreated) != res.Created {
		t.Fatalf("metrics created %d, replay created %d", m.RidesCreated, res.Created)
	}
	if int(m.Bookings) != res.Matched {
		t.Fatalf("metrics bookings %d, replay matched %d", m.Bookings, res.Matched)
	}
	// Most rides completed over the day (tracking removes them).
	if done := m.RidesCompleted; int(done) < res.Created/2 {
		t.Fatalf("only %d of %d rides completed by end of day", done, res.Created)
	}
	t.Logf("soak: %d requests, %.1f%% matched, %d cars, %d completed, search %s",
		res.Requests, 100*res.MatchRate(), res.Created, m.RidesCompleted,
		res.SearchTimes.Summary("ms"))
}
