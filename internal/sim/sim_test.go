package sim

import (
	"testing"

	"xar/internal/core"
	"xar/internal/discretize"
	"xar/internal/mmtp"
	"xar/internal/roadnet"
	"xar/internal/transit"
	"xar/internal/tshare"
	"xar/internal/workload"
)

func testCity(t testing.TB) *roadnet.City {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func testXAR(t testing.TB, city *roadnet.City) *XARSystem {
	t.Helper()
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(d, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &XARSystem{Engine: eng}
}

func testTShare(t testing.TB, city *roadnet.City) *TShareSystem {
	t.Helper()
	eng, err := tshare.New(city, tshare.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &TShareSystem{Engine: eng}
}

func testTrips(t testing.TB, city *roadnet.City, n int) []workload.Trip {
	t.Helper()
	cfg := workload.DefaultConfig(n, 11)
	cfg.StartHour = 6
	cfg.EndHour = 12
	cfg.MaxTripDist = 4000
	trips, err := workload.Generate(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return trips
}

func TestRunXARProtocol(t *testing.T) {
	city := testCity(t)
	sys := testXAR(t, city)
	trips := testTrips(t, city, 400)
	res, err := Run(sys, trips, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 400 {
		t.Fatalf("requests = %d", res.Requests)
	}
	// Every request is either matched, created, or unservable.
	if res.Matched+res.Created+res.NotServable != res.Requests {
		t.Fatalf("accounting broken: %d + %d + %d != %d",
			res.Matched, res.Created, res.NotServable, res.Requests)
	}
	if res.Created == 0 {
		t.Fatal("no rides created — the protocol must seed the fleet")
	}
	if res.Matched == 0 {
		t.Fatal("no requests matched — sharing never happened")
	}
	if res.SearchTimes.N() != 400 {
		t.Fatalf("search latency samples = %d", res.SearchTimes.N())
	}
	if res.MatchRate() <= 0 || res.MatchRate() >= 1 {
		t.Fatalf("match rate %v", res.MatchRate())
	}
	// The approximation guarantee holds for every booking.
	eps := sys.Engine.Disc().Epsilon()
	if res.ApproxErrors.N() > 0 && res.ApproxErrors.Max() > 4*eps+1e-6 {
		t.Fatalf("approx error %.1f > 4ε = %.1f", res.ApproxErrors.Max(), 4*eps)
	}
	// Walks respect the configured limit.
	if res.Walks.N() > 0 && res.Walks.Max() > DefaultConfig().WalkLimit+1e-6 {
		t.Fatalf("walk %.1f > limit", res.Walks.Max())
	}
	if err := sys.Engine.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRunTShareProtocol(t *testing.T) {
	city := testCity(t)
	sys := testTShare(t, city)
	trips := testTrips(t, city, 250)
	res, err := Run(sys, trips, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched+res.Created+res.NotServable != res.Requests {
		t.Fatal("accounting broken")
	}
	if res.Created == 0 || res.Matched == 0 {
		t.Fatalf("created=%d matched=%d", res.Created, res.Matched)
	}
}

func TestRunLookToBookMultipliesSearches(t *testing.T) {
	city := testCity(t)
	sys := testXAR(t, city)
	trips := testTrips(t, city, 50)
	cfg := DefaultConfig()
	cfg.LookToBook = 5
	res, err := Run(sys, trips, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SearchTimes.N() != 50*5 {
		t.Fatalf("search samples = %d, want 250", res.SearchTimes.N())
	}
}

func TestRunKCapsMatches(t *testing.T) {
	city := testCity(t)
	sys := testXAR(t, city)
	trips := testTrips(t, city, 150)
	cfg := DefaultConfig()
	cfg.K = 1
	res, err := Run(sys, trips, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMatches > res.Requests {
		t.Fatalf("k=1 returned %d matches over %d requests", res.TotalMatches, res.Requests)
	}
}

func TestCompareTaxi(t *testing.T) {
	city := testCity(t)
	trips := testTrips(t, city, 100)
	m := CompareTaxi(city, trips)
	if m.Served == 0 || m.Cars != m.Served {
		t.Fatalf("taxi served=%d cars=%d; every taxi trip uses one car", m.Served, m.Cars)
	}
	if m.TravelTime.Mean() <= 0 {
		t.Fatal("taxi travel time must be positive")
	}
	if m.WalkTime.Max() != 0 {
		t.Fatal("taxi involves no walking")
	}
}

func TestCompareRideShareUsesFewerCars(t *testing.T) {
	city := testCity(t)
	sys := testXAR(t, city)
	trips := testTrips(t, city, 300)
	taxi := CompareTaxi(city, trips)
	rs, err := CompareRideShare(sys.Engine, trips, DefaultModesConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Served == 0 {
		t.Fatal("ride share served nobody")
	}
	if rs.Cars >= taxi.Cars {
		t.Fatalf("ride sharing used %d cars vs taxi %d; sharing must reduce cars", rs.Cars, taxi.Cars)
	}
}

func TestCompareTransit(t *testing.T) {
	city := testCity(t)
	net, err := transit.Generate(city, transit.DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	planner, err := mmtp.NewPlanner(net, mmtp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	trips := testTrips(t, city, 100)
	pt := CompareTransit(planner, trips)
	if pt.Served == 0 {
		t.Fatal("transit served nobody")
	}
	if pt.Cars != 0 {
		t.Fatal("public transport uses no cars")
	}
	taxi := CompareTaxi(city, trips)
	if pt.TravelTime.Mean() <= taxi.TravelTime.Mean() {
		t.Fatalf("PT (%.1f min) must be slower than taxi (%.1f min)",
			pt.TravelTime.Mean(), taxi.TravelTime.Mean())
	}
}

func TestCompareTransitPlusRideShare(t *testing.T) {
	city := testCity(t)
	net, err := transit.Generate(city, transit.DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	planner, err := mmtp.NewPlanner(net, mmtp.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys := testXAR(t, city)
	trips := testTrips(t, city, 150)
	rspt, err := CompareTransitPlusRideShare(sys.Engine, planner, trips, DefaultModesConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rspt.Served == 0 {
		t.Fatal("RS+PT served nobody")
	}
	// RS+PT uses fewer cars than standalone ride sharing on the same
	// demand (the paper reports ~50% fewer).
	rsEngine := testXAR(t, city)
	rs, err := CompareRideShare(rsEngine.Engine, trips, DefaultModesConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rspt.Cars >= rs.Cars {
		t.Fatalf("RS+PT cars %d >= RS cars %d", rspt.Cars, rs.Cars)
	}
}

func TestMarkNotServable(t *testing.T) {
	base := core.ErrNotServable
	wrapped := MarkNotServable(base)
	if !isNotServable(wrapped) {
		t.Fatal("wrapped error not detected")
	}
	if isNotServable(base) {
		t.Fatal("unwrapped error misdetected")
	}
	if wrapped.Error() != base.Error() {
		t.Fatal("message lost")
	}
}
