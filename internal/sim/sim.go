// Package sim implements the paper's simulation framework (§X-A2): a
// ride-share replay over a trip stream — for each request, search the
// existing rides; if matches exist, book the one with the least walking;
// otherwise create a new ride from the request — plus per-operation
// latency accounting, the look-to-book experiment, and adapters that
// drive either the XAR engine or the T-Share baseline through one
// interface.
package sim

import (
	"fmt"
	"time"

	"xar/internal/audit"
	"xar/internal/geo"
	"xar/internal/stats"
	"xar/internal/telemetry"
	"xar/internal/workload"
)

// Offer mirrors a ride offer at the simulation level.
type Offer struct {
	Source, Dest geo.Point
	Departure    float64
	Seats        int
	DetourLimit  float64
}

// Request mirrors a ride request at the simulation level.
type Request struct {
	Source, Dest     geo.Point
	Earliest, Latest float64
	WalkLimit        float64
}

// Candidate is one match returned by a System's search. Payload carries
// the system-specific match object back into Book.
type Candidate struct {
	Key     int64
	Walk    float64
	Payload interface{}
}

// BookResult reports a successful booking's quality metrics.
type BookResult struct {
	Detour      float64
	ApproxError float64 // XAR only; 0 for systems without the guarantee
	Walk        float64
}

// System is the interface both ride-share engines expose to the replay.
type System interface {
	Name() string
	Create(Offer) (int64, error)
	Search(Request, int) ([]Candidate, error)
	Book(Candidate, Request) (BookResult, error)
	// Advance moves time forward (tracking); returns completed rides.
	Advance(now float64) int
	// ActiveRides reports the current fleet size.
	ActiveRides() int
}

// Config tunes a replay run.
type Config struct {
	// K caps the matches requested per search (0 = all).
	K int
	// WalkLimit is each requester's walking threshold (meters).
	WalkLimit float64
	// WindowSlack is each request's departure-window length (seconds).
	WindowSlack float64
	// Seats and DetourLimit configure created rides.
	Seats       int
	DetourLimit float64
	// TrackInterval runs tracking whenever simulated time advances by
	// this many seconds (0 disables tracking).
	TrackInterval float64
	// LookToBook performs this many searches per request before acting
	// (≥1); the paper's Figure 5b sweeps it.
	LookToBook int
	// Telemetry, when non-nil, records the replay's search/create/book
	// durations into the same xar_op_duration_seconds histograms the
	// live engine uses (see telemetry.OpDuration), so figure
	// reproduction and production serving report from one telemetry
	// source. Leave the engine itself uninstrumented when setting this,
	// or operations are counted twice.
	Telemetry *telemetry.Registry
	// Recorder, when non-nil, is ticked on the replay's simulated clock
	// (trip request times) at the recorder's own interval, so the
	// retained history spans simulated hours regardless of how fast the
	// replay executes. Pair it with Telemetry over the same registry;
	// do not Start() the recorder's wall-clock loop as well.
	Recorder *telemetry.Recorder
	// Auditor, when non-nil, runs a synchronous invariant sweep whenever
	// the replay's simulated clock advances by AuditInterval seconds —
	// the correctness twin of Recorder ticking. Do not Start() the
	// auditor's wall-clock loop as well; a replay outruns wall time.
	Auditor *audit.Auditor
	// AuditInterval is the simulated-seconds cadence for Auditor
	// (0 → 300).
	AuditInterval float64
}

// DefaultConfig returns the paper's simulation settings.
func DefaultConfig() Config {
	return Config{
		WalkLimit:     1000,
		WindowSlack:   900,
		Seats:         4, // taxi capacity incl. driver, per the paper
		DetourLimit:   2000,
		TrackInterval: 120,
		LookToBook:    1,
	}
}

// Result accumulates a replay's metrics.
type Result struct {
	SystemName string

	SearchTimes stats.Sample // milliseconds
	CreateTimes stats.Sample
	BookTimes   stats.Sample

	Requests     int
	Matched      int // requests served by an existing ride
	Created      int // rides created (cars on the road)
	FailedBooks  int // match went stale between search and book
	NotServable  int
	TotalMatches int // matches returned across all searches

	ApproxErrors stats.Sample // meters; XAR detour-approximation errors
	Walks        stats.Sample // meters walked by matched requesters
	Detours      stats.Sample // meters of detour per booking
}

// MatchRate is the fraction of requests served by sharing.
func (r *Result) MatchRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Matched) / float64(r.Requests)
}

// Run replays trips through sys per the paper's §X-A2 protocol.
func Run(sys System, trips []workload.Trip, cfg Config) (*Result, error) {
	if cfg.LookToBook < 1 {
		cfg.LookToBook = 1
	}
	// Optional shared histograms alongside the in-memory Samples.
	var hSearch, hCreate, hBook *telemetry.Histogram
	if cfg.Telemetry != nil {
		hSearch = telemetry.OpDuration(cfg.Telemetry, "search")
		hCreate = telemetry.OpDuration(cfg.Telemetry, "create")
		hBook = telemetry.OpDuration(cfg.Telemetry, "book")
	}
	res := &Result{SystemName: sys.Name()}
	lastTrack := -1.0
	lastSnap := -1.0
	snapEvery := 0.0
	if cfg.Recorder != nil {
		snapEvery = cfg.Recorder.Interval().Seconds()
	}
	lastAudit := -1.0
	auditEvery := 0.0
	if cfg.Auditor != nil {
		auditEvery = cfg.AuditInterval
		if auditEvery <= 0 {
			auditEvery = 300
		}
	}
	for _, trip := range trips {
		now := trip.RequestTime
		if cfg.TrackInterval > 0 && (lastTrack < 0 || now-lastTrack >= cfg.TrackInterval) {
			sys.Advance(now)
			lastTrack = now
		}
		if snapEvery > 0 && (lastSnap < 0 || now-lastSnap >= snapEvery) {
			cfg.Recorder.TickAt(now)
			lastSnap = now
		}
		if auditEvery > 0 && (lastAudit < 0 || now-lastAudit >= auditEvery) {
			cfg.Auditor.Audit()
			lastAudit = now
		}
		res.Requests++

		req := Request{
			Source:    trip.Pickup,
			Dest:      trip.Dropoff,
			Earliest:  now,
			Latest:    now + cfg.WindowSlack,
			WalkLimit: cfg.WalkLimit,
		}

		// The look-to-book ratio: r searches hit the system per booking
		// decision (a trip planner exploring options).
		var cands []Candidate
		var serr error
		for look := 0; look < cfg.LookToBook; look++ {
			start := time.Now()
			cands, serr = sys.Search(req, cfg.K)
			d := time.Since(start)
			res.SearchTimes.AddDuration(d)
			if hSearch != nil {
				hSearch.ObserveDuration(d)
			}
		}
		if serr != nil {
			if isNotServable(serr) {
				res.NotServable++
				continue
			}
			return res, fmt.Errorf("sim: search failed: %w", serr)
		}
		res.TotalMatches += len(cands)

		booked := false
		for _, c := range cands { // least-walk first (systems sort)
			start := time.Now()
			br, berr := sys.Book(c, req)
			d := time.Since(start)
			res.BookTimes.AddDuration(d)
			if hBook != nil {
				hBook.ObserveDuration(d)
			}
			if berr != nil {
				res.FailedBooks++
				continue
			}
			res.Matched++
			res.ApproxErrors.Add(br.ApproxError)
			res.Walks.Add(br.Walk)
			res.Detours.Add(br.Detour)
			booked = true
			break
		}
		if booked {
			continue
		}

		offer := Offer{
			Source:      trip.Pickup,
			Dest:        trip.Dropoff,
			Departure:   now + cfg.WindowSlack/2,
			Seats:       cfg.Seats,
			DetourLimit: cfg.DetourLimit,
		}
		start := time.Now()
		_, cerr := sys.Create(offer)
		d := time.Since(start)
		res.CreateTimes.AddDuration(d)
		if hCreate != nil {
			hCreate.ObserveDuration(d)
		}
		if cerr != nil {
			if isNotServable(cerr) {
				res.NotServable++
				continue
			}
			// Unroutable offers (snapped to identical nodes, …) are
			// skipped, matching the paper's data cleaning.
			res.NotServable++
			continue
		}
		res.Created++
	}
	// Final snapshot so the tail of the stream (since the last cadence
	// tick) is part of the recorded history.
	if cfg.Recorder != nil && len(trips) > 0 {
		if last := trips[len(trips)-1].RequestTime; last > lastSnap {
			cfg.Recorder.TickAt(last)
		}
	}
	return res, nil
}

// notServable lets adapters mark requests the discretization cannot serve
// without aborting the replay.
type notServableError struct{ err error }

func (e notServableError) Error() string { return e.err.Error() }
func (e notServableError) Unwrap() error { return e.err }

// MarkNotServable wraps an error so Run counts it instead of failing.
func MarkNotServable(err error) error { return notServableError{err: err} }

func isNotServable(err error) bool {
	_, ok := err.(notServableError)
	return ok
}
