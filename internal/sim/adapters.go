package sim

import (
	"errors"

	"xar/internal/core"
	"xar/internal/tshare"
)

// XARSystem adapts *core.Engine to the System interface.
type XARSystem struct {
	Engine *core.Engine
}

// Name implements System.
func (s *XARSystem) Name() string { return "XAR" }

// Create implements System.
func (s *XARSystem) Create(o Offer) (int64, error) {
	id, err := s.Engine.CreateRide(core.RideOffer{
		Source:      o.Source,
		Dest:        o.Dest,
		Departure:   o.Departure,
		Seats:       o.Seats,
		DetourLimit: o.DetourLimit,
	})
	if err != nil {
		if errors.Is(err, core.ErrNotServable) || errors.Is(err, core.ErrUnreachable) {
			return 0, MarkNotServable(err)
		}
		return 0, err
	}
	return int64(id), nil
}

// Search implements System.
func (s *XARSystem) Search(r Request, k int) ([]Candidate, error) {
	ms, err := s.Engine.SearchK(coreRequest(r), k)
	if err != nil {
		if errors.Is(err, core.ErrNotServable) {
			return nil, MarkNotServable(err)
		}
		return nil, err
	}
	out := make([]Candidate, len(ms))
	for i, m := range ms {
		out[i] = Candidate{Key: int64(m.Ride), Walk: m.TotalWalk(), Payload: m}
	}
	return out, nil
}

// Book implements System.
func (s *XARSystem) Book(c Candidate, r Request) (BookResult, error) {
	m, ok := c.Payload.(core.Match)
	if !ok {
		return BookResult{}, errors.New("sim: candidate is not a XAR match")
	}
	bk, err := s.Engine.Book(m, coreRequest(r))
	if err != nil {
		return BookResult{}, err
	}
	return BookResult{
		Detour:      bk.DetourActual,
		ApproxError: bk.ApproxError(),
		Walk:        bk.WalkSource + bk.WalkDest,
	}, nil
}

// Advance implements System.
func (s *XARSystem) Advance(now float64) int {
	done, _ := s.Engine.TrackAll(now)
	return done
}

// ActiveRides implements System.
func (s *XARSystem) ActiveRides() int { return s.Engine.NumRides() }

func coreRequest(r Request) core.Request {
	return core.Request{
		Source:            r.Source,
		Dest:              r.Dest,
		EarliestDeparture: r.Earliest,
		LatestDeparture:   r.Latest,
		WalkLimit:         r.WalkLimit,
	}
}

// TShareSystem adapts *tshare.Engine to the System interface.
type TShareSystem struct {
	Engine *tshare.Engine
}

// Name implements System.
func (s *TShareSystem) Name() string { return "T-Share" }

// Create implements System.
func (s *TShareSystem) Create(o Offer) (int64, error) {
	id, err := s.Engine.Create(tshare.Offer{
		Source:      o.Source,
		Dest:        o.Dest,
		Departure:   o.Departure,
		Seats:       o.Seats,
		DetourLimit: o.DetourLimit,
	})
	if err != nil {
		if errors.Is(err, tshare.ErrOutOfRegion) || errors.Is(err, tshare.ErrUnreachable) {
			return 0, MarkNotServable(err)
		}
		return 0, err
	}
	return int64(id), nil
}

// Search implements System.
func (s *TShareSystem) Search(r Request, k int) ([]Candidate, error) {
	ms, err := s.Engine.Search(tshareRequest(r), k)
	if err != nil {
		if errors.Is(err, tshare.ErrOutOfRegion) {
			return nil, MarkNotServable(err)
		}
		return nil, err
	}
	out := make([]Candidate, len(ms))
	for i, m := range ms {
		// T-Share picks up at the doorstep; no walking component.
		out[i] = Candidate{Key: int64(m.Taxi), Walk: 0, Payload: m}
	}
	return out, nil
}

// Book implements System.
func (s *TShareSystem) Book(c Candidate, r Request) (BookResult, error) {
	m, ok := c.Payload.(tshare.Match)
	if !ok {
		return BookResult{}, errors.New("sim: candidate is not a T-Share match")
	}
	if err := s.Engine.Book(m, tshareRequest(r)); err != nil {
		return BookResult{}, err
	}
	return BookResult{Detour: m.Detour}, nil
}

// Advance implements System.
func (s *TShareSystem) Advance(now float64) int { return s.Engine.Advance(now) }

// ActiveRides implements System.
func (s *TShareSystem) ActiveRides() int { return s.Engine.NumTaxis() }

func tshareRequest(r Request) tshare.Request {
	return tshare.Request{
		Source:            r.Source,
		Dest:              r.Dest,
		EarliestDeparture: r.Earliest,
		LatestDeparture:   r.Latest,
		WalkLimit:         r.WalkLimit,
	}
}
