package discretize

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"xar/internal/geo"
	"xar/internal/grid"
	"xar/internal/roadnet"
)

func testCity(t testing.TB) *roadnet.City {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func testDisc(t testing.TB) *Discretization {
	t.Helper()
	d, err := Build(testCity(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{GridCellSize: 0, Delta: 1, MaxDriveToLandmark: 1, WalkDetourFactor: 1},
		{GridCellSize: 100, Delta: 0, MaxDriveToLandmark: 1, WalkDetourFactor: 1},
		{GridCellSize: 100, Delta: 1, MaxDriveToLandmark: 0, WalkDetourFactor: 1},
		{GridCellSize: 100, Delta: 1, MaxDriveToLandmark: 1, WalkDetourFactor: 0.5},
		{GridCellSize: 100, Delta: 1, MaxDriveToLandmark: 1, WalkDetourFactor: 1, MaxWalk: -1},
		{GridCellSize: 100, Delta: 1, MaxDriveToLandmark: 1, WalkDetourFactor: 1, LandmarkMinSep: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: config %+v should be invalid", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsEmptyGraph(t *testing.T) {
	city := &roadnet.City{Graph: &roadnet.Graph{}}
	if _, err := Build(city, DefaultConfig()); err == nil {
		t.Fatal("empty network must be rejected")
	}
}

func TestEpsilonGuarantee(t *testing.T) {
	d := testDisc(t)
	if d.Epsilon() > 4*d.Config().Delta+1e-6 {
		t.Fatalf("measured ε=%.1f exceeds 4δ=%.1f", d.Epsilon(), 4*d.Config().Delta)
	}
	if d.NumClusters() < 2 {
		t.Fatalf("only %d clusters", d.NumClusters())
	}
}

func TestEveryLandmarkInExactlyOneCluster(t *testing.T) {
	d := testDisc(t)
	count := make([]int, len(d.Landmarks))
	for _, c := range d.Clusters {
		for _, lm := range c.Landmarks {
			count[lm]++
		}
	}
	for lm, n := range count {
		if n != 1 {
			t.Fatalf("landmark %d appears in %d clusters", lm, n)
		}
		if d.ClusterOfLandmark(lm) < 0 || d.ClusterOfLandmark(lm) >= d.NumClusters() {
			t.Fatalf("landmark %d maps to cluster %d", lm, d.ClusterOfLandmark(lm))
		}
	}
	// ClusterOfLandmark agrees with membership lists.
	for _, c := range d.Clusters {
		for _, lm := range c.Landmarks {
			if d.ClusterOfLandmark(lm) != c.ID {
				t.Fatalf("landmark %d membership disagrees with assignment", lm)
			}
		}
	}
}

func TestIntraClusterDistanceWithinEpsilon(t *testing.T) {
	d := testDisc(t)
	for _, c := range d.Clusters {
		for i, a := range c.Landmarks {
			for _, b := range c.Landmarks[i+1:] {
				dd := math.Max(d.LandmarkDist(a, b), d.LandmarkDist(b, a))
				if dd > d.Epsilon()+1e-6 {
					t.Fatalf("cluster %d: landmarks %d,%d at %.1f > ε=%.1f", c.ID, a, b, dd, d.Epsilon())
				}
			}
		}
	}
}

func TestLandmarkDistanceTriangle(t *testing.T) {
	d := testDisc(t)
	r := rand.New(rand.NewSource(1))
	n := len(d.Landmarks)
	for trial := 0; trial < 200; trial++ {
		a, b, c := r.Intn(n), r.Intn(n), r.Intn(n)
		if d.LandmarkDist(a, b) > d.LandmarkDist(a, c)+d.LandmarkDist(c, b)+1e-3 {
			t.Fatalf("triangle violated: d(%d,%d)=%v > %v+%v", a, b,
				d.LandmarkDist(a, b), d.LandmarkDist(a, c), d.LandmarkDist(c, b))
		}
	}
	for i := 0; i < n; i++ {
		if d.LandmarkDist(i, i) != 0 {
			t.Fatalf("d(%d,%d) = %v, want 0", i, i, d.LandmarkDist(i, i))
		}
	}
}

func TestClusterDistIsClosestLandmarkPair(t *testing.T) {
	d := testDisc(t)
	r := rand.New(rand.NewSource(2))
	k := d.NumClusters()
	for trial := 0; trial < 30; trial++ {
		c1, c2 := r.Intn(k), r.Intn(k)
		if c1 == c2 {
			continue
		}
		best := math.Inf(1)
		for _, a := range d.Clusters[c1].Landmarks {
			for _, b := range d.Clusters[c2].Landmarks {
				if dd := d.LandmarkDist(a, b); dd < best {
					best = dd
				}
			}
		}
		if got := d.ClusterDist(c1, c2); math.Abs(got-best) > 0.5 {
			t.Fatalf("ClusterDist(%d,%d) = %v, brute force %v", c1, c2, got, best)
		}
	}
	if d.ClusterDist(0, 0) != 0 {
		t.Fatal("self cluster distance must be 0")
	}
}

func TestNodeLandmarkAssignment(t *testing.T) {
	d := testDisc(t)
	g := d.City().Graph
	s := roadnet.NewSearcher(g)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		v := roadnet.NodeID(r.Intn(g.NumNodes()))
		lm, dist := d.LandmarkOfNode(v)
		if lm < 0 {
			continue // remote node; legitimate
		}
		// Verify the distance is the true shortest path v→landmark.
		res := s.ShortestPath(v, d.Landmarks[lm].Node)
		if math.Abs(res.Dist-dist) > 0.5 {
			t.Fatalf("node %d landmark dist %.1f, true %.1f", v, dist, res.Dist)
		}
		if dist > d.Config().MaxDriveToLandmark {
			t.Fatalf("node %d assigned landmark at %.1f > Δ", v, dist)
		}
		// No other landmark can be strictly closer (within tolerance):
		// check a sample of other landmarks.
		for probe := 0; probe < 10; probe++ {
			o := r.Intn(len(d.Landmarks))
			ores := s.ShortestPath(v, d.Landmarks[o].Node)
			if ores.Dist < dist-0.5 {
				t.Fatalf("node %d: landmark %d at %.1f beats assigned %d at %.1f",
					v, o, ores.Dist, lm, dist)
			}
		}
	}
}

func TestClusterOfNodeConsistent(t *testing.T) {
	d := testDisc(t)
	g := d.City().Graph
	for v := 0; v < g.NumNodes(); v += 13 {
		lm, _ := d.LandmarkOfNode(roadnet.NodeID(v))
		c := d.ClusterOfNode(roadnet.NodeID(v))
		if lm < 0 {
			if c != -1 {
				t.Fatalf("node %d: no landmark but cluster %d", v, c)
			}
			continue
		}
		if c != d.ClusterOfLandmark(lm) {
			t.Fatalf("node %d: cluster %d != cluster of landmark %d", v, c, lm)
		}
	}
}

func TestGridInfoWalkableSortedAndBounded(t *testing.T) {
	d := testDisc(t)
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		p := d.City().RandomPoint(r)
		gi := d.Info(d.GridAt(p))
		if gi == nil {
			continue
		}
		for i, wc := range gi.Walkable {
			if wc.Walk > d.Config().MaxWalk {
				t.Fatalf("walkable cluster at %.1f > W=%.1f", wc.Walk, d.Config().MaxWalk)
			}
			if i > 0 && wc.Walk < gi.Walkable[i-1].Walk {
				t.Fatal("walkable list not sorted")
			}
			if wc.Cluster < 0 || wc.Cluster >= d.NumClusters() {
				t.Fatalf("walkable cluster ID %d out of range", wc.Cluster)
			}
		}
		// No duplicate clusters.
		seen := map[int]bool{}
		for _, wc := range gi.Walkable {
			if seen[wc.Cluster] {
				t.Fatalf("cluster %d listed twice", wc.Cluster)
			}
			seen[wc.Cluster] = true
		}
	}
}

func TestWalkableWithinPruning(t *testing.T) {
	d := testDisc(t)
	p := d.City().Graph.BBox().Center()
	gi := d.Info(d.GridAt(p))
	if gi == nil || len(gi.Walkable) == 0 {
		t.Skip("center grid has no walkable clusters in this layout")
	}
	full := gi.WalkableWithin(d.Config().MaxWalk)
	if len(full) != len(gi.Walkable) {
		t.Fatalf("full limit keeps %d of %d", len(full), len(gi.Walkable))
	}
	half := gi.WalkableWithin(gi.Walkable[0].Walk)
	if len(half) < 1 {
		t.Fatal("limit equal to nearest walk must keep at least one")
	}
	for _, wc := range half {
		if wc.Walk > gi.Walkable[0].Walk {
			t.Fatal("pruning kept an over-limit cluster")
		}
	}
	if got := gi.WalkableWithin(-1); len(got) != 0 {
		t.Fatal("negative limit must prune everything")
	}
	var nilInfo *GridInfo
	if nilInfo.WalkableWithin(100) != nil {
		t.Fatal("nil info must yield nil")
	}
}

func TestInfoInvalidGrid(t *testing.T) {
	d := testDisc(t)
	if d.Info(grid.Invalid) != nil {
		t.Fatal("Info(Invalid) must be nil")
	}
}

func TestInfoCacheConcurrent(t *testing.T) {
	d := testDisc(t)
	r := rand.New(rand.NewSource(5))
	pts := make([]geo.Point, 64)
	for i := range pts {
		pts[i] = d.City().RandomPoint(r)
	}
	var wg sync.WaitGroup
	results := make([][]*GridInfo, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = make([]*GridInfo, len(pts))
			for i, p := range pts {
				results[w][i] = d.Info(d.GridAt(p))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < 8; w++ {
		for i := range pts {
			if results[w][i] != results[0][i] {
				t.Fatalf("non-canonical cached GridInfo for point %d", i)
			}
		}
	}
}

func TestServable(t *testing.T) {
	d := testDisc(t)
	center := d.City().Graph.BBox().Center()
	if !d.Servable(center) {
		t.Fatal("city center must be servable")
	}
	if d.Servable(geo.Point{Lat: 10, Lng: 10}) {
		t.Fatal("a point on another continent must not be servable")
	}
}

func TestSmallerDeltaMoreClusters(t *testing.T) {
	city := testCity(t)
	cfgSmall := DefaultConfig()
	cfgSmall.Delta = 150
	cfgLarge := DefaultConfig()
	cfgLarge.Delta = 700
	dSmall, err := Build(city, cfgSmall)
	if err != nil {
		t.Fatal(err)
	}
	dLarge, err := Build(city, cfgLarge)
	if err != nil {
		t.Fatal(err)
	}
	if dSmall.NumClusters() <= dLarge.NumClusters() {
		t.Fatalf("δ=150 → %d clusters, δ=700 → %d; want inverse relation",
			dSmall.NumClusters(), dLarge.NumClusters())
	}
}

func TestBuildDeterministic(t *testing.T) {
	city := testCity(t)
	d1, err := Build(city, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Build(city, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d1.NumClusters() != d2.NumClusters() || len(d1.Landmarks) != len(d2.Landmarks) {
		t.Fatal("build must be deterministic")
	}
	for i := range d1.Landmarks {
		if d1.ClusterOfLandmark(i) != d2.ClusterOfLandmark(i) {
			t.Fatalf("landmark %d cluster differs across builds", i)
		}
	}
}
