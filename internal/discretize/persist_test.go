package discretize

import (
	"bytes"
	"testing"

	"xar/internal/roadnet"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	city := testCity(t)
	orig, err := Build(city, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, city)
	if err != nil {
		t.Fatal(err)
	}

	if loaded.NumClusters() != orig.NumClusters() {
		t.Fatalf("clusters %d vs %d", loaded.NumClusters(), orig.NumClusters())
	}
	if loaded.Epsilon() != orig.Epsilon() {
		t.Fatalf("ε %v vs %v", loaded.Epsilon(), orig.Epsilon())
	}
	if len(loaded.Landmarks) != len(orig.Landmarks) {
		t.Fatal("landmark counts differ")
	}
	for i := range orig.Landmarks {
		if loaded.Landmarks[i] != orig.Landmarks[i] {
			t.Fatalf("landmark %d differs", i)
		}
		if loaded.ClusterOfLandmark(i) != orig.ClusterOfLandmark(i) {
			t.Fatalf("landmark %d cluster differs", i)
		}
	}
	// Distance tables survive.
	for i := 0; i < len(orig.Landmarks); i += 7 {
		for j := 0; j < len(orig.Landmarks); j += 11 {
			if loaded.LandmarkDist(i, j) != orig.LandmarkDist(i, j) {
				t.Fatalf("lm dist (%d,%d) differs", i, j)
			}
		}
	}
	for c1 := 0; c1 < orig.NumClusters(); c1++ {
		for c2 := 0; c2 < orig.NumClusters(); c2++ {
			if loaded.ClusterDist(c1, c2) != orig.ClusterDist(c1, c2) {
				t.Fatalf("cluster dist (%d,%d) differs", c1, c2)
			}
		}
	}
	// Grid queries agree.
	g := city.Graph
	for v := 0; v < g.NumNodes(); v += 17 {
		p := g.Point(roadnet.NodeID(v))
		a := orig.Info(orig.GridAt(p))
		b := loaded.Info(loaded.GridAt(p))
		if (a == nil) != (b == nil) {
			t.Fatalf("grid info presence differs at node %d", v)
		}
		if a == nil {
			continue
		}
		if a.Landmark != b.Landmark || len(a.Walkable) != len(b.Walkable) {
			t.Fatalf("grid info differs at node %d: %+v vs %+v", v, a, b)
		}
		for i := range a.Walkable {
			if a.Walkable[i] != b.Walkable[i] {
				t.Fatalf("walkable entry %d differs at node %d", i, v)
			}
		}
	}
}

func TestLoadRejectsWrongGraph(t *testing.T) {
	city := testCity(t)
	orig, err := Build(city, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 99))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, other); err == nil {
		t.Fatal("loading against a different graph must fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	city := testCity(t)
	if _, err := Load(bytes.NewReader([]byte("not a snapshot")), city); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestGraphSaveLoadRoundTrip(t *testing.T) {
	city := testCity(t)
	var buf bytes.Buffer
	if err := city.Graph.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := roadnet.LoadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != city.Graph.NumNodes() || g2.NumEdges() != city.Graph.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), city.Graph.NumNodes(), city.Graph.NumEdges())
	}
	if g2.Fingerprint() != city.Graph.Fingerprint() {
		t.Fatal("fingerprint changed across save/load")
	}
	// A discretization built on the loaded graph behaves identically.
	s1 := roadnet.NewSearcher(city.Graph)
	s2 := roadnet.NewSearcher(g2)
	for v := 0; v < g2.NumNodes(); v += 29 {
		a := s1.ShortestPath(0, roadnet.NodeID(v))
		b := s2.ShortestPath(0, roadnet.NodeID(v))
		if a.Dist != b.Dist {
			t.Fatalf("distance to %d differs: %v vs %v", v, a.Dist, b.Dist)
		}
	}
}

func TestLoadGraphRejectsGarbage(t *testing.T) {
	if _, err := roadnet.LoadGraph(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("garbage must be rejected")
	}
}
