// Package discretize builds the XAR three-tiered hierarchical region
// discretization (§IV of the paper) on top of the road network:
//
//	region → clusters → landmarks → grids → point locations
//
// with the cross-level relations the paper requires: every grid maps to
// the landmark minimizing its driving distance (if one lies within Δ),
// and every grid carries a sorted list of walkable clusters within the
// system walking limit W.
//
// Pre-processing runs once per region: landmark extraction, a shortest-
// path Dijkstra per landmark (parallelized across CPUs), GREEDYSEARCH
// clustering with the (k_OPT, 4δ) bicriteria guarantee, and cluster-to-
// cluster distance tables. Per-grid attributes are computed lazily and
// cached, since only a fraction of the implicit 100 m grids is ever
// touched by a workload.
package discretize

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"xar/internal/cluster"
	"xar/internal/geo"
	"xar/internal/grid"
	"xar/internal/landmark"
	"xar/internal/memsize"
	"xar/internal/roadnet"
)

// Config carries the system parameters of the paper.
type Config struct {
	// GridCellSize is the grid edge in meters (paper: 100 m → 100 m² "size").
	GridCellSize float64
	// LandmarkMinSep is f: minimum separation between landmarks.
	LandmarkMinSep float64
	// MaxLandmarks caps extraction (0 = no cap).
	MaxLandmarks int
	// Delta is δ: the target maximum driving distance between any two
	// landmarks of a cluster. The bicriteria guarantee stretches this to
	// ε = 4δ in the worst case.
	Delta float64
	// MaxDriveToLandmark is Δ: a grid is associated with a landmark only
	// if the grid→landmark driving distance is at most Δ.
	MaxDriveToLandmark float64
	// MaxWalk is W: the system-wide maximum walking distance; walkable
	// cluster lists only contain clusters within W.
	MaxWalk float64
	// WalkDetourFactor converts straight-line distance to walking
	// distance (sidewalk detours); 1.0 = pure haversine. Typical: 1.2.
	WalkDetourFactor float64
	// Hotspots bias landmark extraction (optional).
	Hotspots []geo.Point
	// Parallelism bounds the worker count for the per-landmark Dijkstras
	// (0 = GOMAXPROCS).
	Parallelism int
}

// DefaultConfig returns the paper's parameter choices at the reproduction
// scale: 100 m grids, ε = 1 km (δ = 250 m), Δ = 1 km, W = 1 km.
func DefaultConfig() Config {
	return Config{
		GridCellSize:       100,
		LandmarkMinSep:     200,
		Delta:              250,
		MaxDriveToLandmark: 1000,
		MaxWalk:            1000,
		WalkDetourFactor:   1.2,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.GridCellSize <= 0:
		return fmt.Errorf("discretize: GridCellSize must be positive, got %v", c.GridCellSize)
	case c.LandmarkMinSep < 0:
		return fmt.Errorf("discretize: LandmarkMinSep must be >= 0, got %v", c.LandmarkMinSep)
	case c.Delta <= 0:
		return fmt.Errorf("discretize: Delta must be positive, got %v", c.Delta)
	case c.MaxDriveToLandmark <= 0:
		return fmt.Errorf("discretize: MaxDriveToLandmark must be positive, got %v", c.MaxDriveToLandmark)
	case c.MaxWalk < 0:
		return fmt.Errorf("discretize: MaxWalk must be >= 0, got %v", c.MaxWalk)
	case c.WalkDetourFactor < 1:
		return fmt.Errorf("discretize: WalkDetourFactor must be >= 1, got %v", c.WalkDetourFactor)
	}
	return nil
}

// WalkableCluster is one entry of a grid's walkable-cluster list: cluster
// C is reachable on foot with walking distance Walk = distance to the
// nearest landmark of C, Walk ≤ W. Lists are sorted by non-decreasing
// Walk (the paper prunes them by a request's walking threshold with a
// linear scan of this order).
type WalkableCluster struct {
	Cluster int
	Walk    float64
}

// GridInfo carries the per-grid attributes of the hierarchy.
type GridInfo struct {
	// Landmark is the landmark minimizing the grid→landmark driving
	// distance, or -1 if none is within Δ (remote grid).
	Landmark int
	// DriveDist is the driving distance to Landmark (NaN if none).
	DriveDist float64
	// Walkable lists the walkable clusters sorted by walking distance.
	Walkable []WalkableCluster
}

// Cluster is one cluster of the top tier.
type Cluster struct {
	ID        int
	Landmarks []int // member landmark IDs
}

// Discretization is the built three-tier hierarchy plus the distance
// tables the in-memory index needs. It is immutable after Build and safe
// for concurrent use.
type Discretization struct {
	cfg  Config
	city *roadnet.City

	Grid      *grid.System
	Landmarks []landmark.Landmark
	Clusters  []Cluster

	landmarkCluster []int       // landmark → cluster
	lmDist          [][]float32 // directed landmark→landmark driving distance
	clusterDist     [][]float32 // directed cluster→cluster distance (min landmark pair)

	// Per-road-node landmark assignment: nearest landmark by driving
	// distance node→landmark within Δ (lowest ID tie-break), or -1.
	nodeLandmark     []int32
	nodeLandmarkDist []float32

	// Measured guarantee: max intra-cluster landmark distance (≤ 4δ).
	epsilon float64

	// Lazy per-grid cache.
	mu        sync.RWMutex
	gridCache map[grid.ID]*GridInfo

	// Landmark spatial buckets for walkable-cluster queries.
	lmIndex *pointBuckets
}

// MeasureMem implements memsize.Measurer. Everything except the lazy
// gridCache is immutable after Build; the whole structure is walked
// under the read lock that guards the cache, which also covers the
// immutable rest for free. The road graph this structure points at is
// reached by the walk too — register the graph first so the shared
// accumulator attributes it separately and this component reports only
// discretization-owned bytes (grids, landmarks, clusters, distance
// tables, grid cache).
func (d *Discretization) MeasureMem(a *memsize.Accumulator) {
	if d == nil {
		return
	}
	d.mu.RLock()
	a.Add(d)
	d.mu.RUnlock()
}

// Build runs the full pre-processing pipeline for city under cfg.
func Build(city *roadnet.City, cfg Config) (*Discretization, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := city.Graph
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("discretize: empty road network")
	}

	gs, err := grid.NewSystem(g.BBox().Pad(cfg.MaxWalk+cfg.GridCellSize), cfg.GridCellSize)
	if err != nil {
		return nil, err
	}

	lms, err := landmark.Extract(g, landmark.Config{
		MinSeparation: cfg.LandmarkMinSep,
		MaxLandmarks:  cfg.MaxLandmarks,
		Hotspots:      cfg.Hotspots,
	})
	if err != nil {
		return nil, err
	}
	d := &Discretization{
		cfg:       cfg,
		city:      city,
		Grid:      gs,
		Landmarks: lms,
		gridCache: make(map[grid.ID]*GridInfo),
		lmIndex:   newPointBuckets(landmark.Points(lms), g.BBox().Pad(cfg.MaxWalk+cfg.GridCellSize), cfg.MaxWalk),
	}

	if err := d.computeLandmarkDistances(); err != nil {
		return nil, err
	}
	if err := d.clusterLandmarks(); err != nil {
		return nil, err
	}
	d.computeClusterDistances()
	d.assignNodesToLandmarks()
	return d, nil
}

// computeLandmarkDistances fills lmDist[i][j] = driving distance from
// landmark i to landmark j, one full Dijkstra per landmark, parallelized.
func (d *Discretization) computeLandmarkDistances() error {
	n := len(d.Landmarks)
	g := d.city.Graph
	d.lmDist = make([][]float32, n)

	workers := d.cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := roadnet.NewSearcher(g)
			for i := range jobs {
				all := s.DistancesToAll(d.Landmarks[i].Node)
				row := make([]float32, n)
				for j := 0; j < n; j++ {
					row[j] = float32(all[d.Landmarks[j].Node])
				}
				d.lmDist[i] = row
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.IsInf(float64(d.lmDist[i][j]), 1) {
				return fmt.Errorf("discretize: landmark %d cannot reach landmark %d; network not strongly connected", i, j)
			}
		}
	}
	return nil
}

// clusterLandmarks runs GREEDYSEARCH over the symmetrized landmark
// distances. Symmetrization with max(d(i→j), d(j→i)) preserves the
// triangle inequality that Theorem 6's proof uses, and is conservative:
// the ε it certifies bounds driving distance in both directions.
func (d *Discretization) clusterLandmarks() error {
	n := len(d.Landmarks)
	dist := func(i, j int) float64 {
		a := float64(d.lmDist[i][j])
		b := float64(d.lmDist[j][i])
		if a > b {
			return a
		}
		return b
	}
	res, _, err := cluster.GreedySearch(n, dist, d.cfg.Delta)
	if err != nil {
		return err
	}
	d.landmarkCluster = res.Assign
	d.Clusters = make([]Cluster, res.K)
	for c := range d.Clusters {
		d.Clusters[c].ID = c
	}
	for lm, c := range res.Assign {
		d.Clusters[c].Landmarks = append(d.Clusters[c].Landmarks, lm)
	}
	d.epsilon = res.MaxIntra(dist)
	return nil
}

// computeClusterDistances fills the directed cluster distance table:
// dist(C, C') = min over landmark pairs (a ∈ C, b ∈ C') of the driving
// distance a→b, as the paper defines ("the distance between the closest
// pair of landmarks belonging to the two clusters").
func (d *Discretization) computeClusterDistances() {
	k := len(d.Clusters)
	d.clusterDist = make([][]float32, k)
	for i := 0; i < k; i++ {
		d.clusterDist[i] = make([]float32, k)
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			best := float32(math.Inf(1))
			for _, a := range d.Clusters[i].Landmarks {
				row := d.lmDist[a]
				for _, b := range d.Clusters[j].Landmarks {
					if row[b] < best {
						best = row[b]
					}
				}
			}
			d.clusterDist[i][j] = best
		}
	}
}

// assignNodesToLandmarks computes, for every road node, the landmark
// minimizing the node→landmark driving distance, considering only
// landmarks within Δ. One bounded reverse Dijkstra per landmark (radius
// Δ); ties broken by the lowest landmark ID, the paper's rule.
func (d *Discretization) assignNodesToLandmarks() {
	g := d.city.Graph
	nNodes := g.NumNodes()
	d.nodeLandmark = make([]int32, nNodes)
	d.nodeLandmarkDist = make([]float32, nNodes)
	for i := range d.nodeLandmark {
		d.nodeLandmark[i] = -1
		d.nodeLandmarkDist[i] = float32(math.Inf(1))
	}

	workers := d.cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type hit struct {
		node roadnet.NodeID
		lm   int32
		dist float32
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := roadnet.NewSearcher(g)
			var local []hit
			for lmID := range jobs {
				local = local[:0]
				s.DistancesWithinReverse(d.Landmarks[lmID].Node, d.cfg.MaxDriveToLandmark,
					func(v roadnet.NodeID, dist float64) bool {
						local = append(local, hit{node: v, lm: int32(lmID), dist: float32(dist)})
						return true
					})
				mu.Lock()
				for _, h := range local {
					cur := d.nodeLandmarkDist[h.node]
					curLM := d.nodeLandmark[h.node]
					if h.dist < cur || (h.dist == cur && (curLM == -1 || h.lm < curLM)) {
						d.nodeLandmarkDist[h.node] = h.dist
						d.nodeLandmark[h.node] = h.lm
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := range d.Landmarks {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// Config returns the build configuration.
func (d *Discretization) Config() Config { return d.cfg }

// City returns the underlying road network wrapper.
func (d *Discretization) City() *roadnet.City { return d.city }

// Epsilon returns the measured worst-case intra-cluster landmark distance
// — the paper's ε. It is guaranteed ≤ 4δ.
func (d *Discretization) Epsilon() float64 { return d.epsilon }

// NumClusters returns the number of clusters.
func (d *Discretization) NumClusters() int { return len(d.Clusters) }

// ClusterOfLandmark maps a landmark ID to its cluster.
func (d *Discretization) ClusterOfLandmark(lm int) int { return d.landmarkCluster[lm] }

// LandmarkDist returns the directed driving distance from landmark a to
// landmark b.
func (d *Discretization) LandmarkDist(a, b int) float64 { return float64(d.lmDist[a][b]) }

// ClusterDist returns the directed distance from cluster a to cluster b:
// the closest landmark pair, per the paper.
func (d *Discretization) ClusterDist(a, b int) float64 { return float64(d.clusterDist[a][b]) }

// LandmarkOfNode returns the landmark associated with a road node (the
// one minimizing driving distance node→landmark within Δ) and that
// distance, or (-1, NaN) for nodes with no landmark within Δ.
func (d *Discretization) LandmarkOfNode(v roadnet.NodeID) (int, float64) {
	lm := d.nodeLandmark[v]
	if lm < 0 {
		return -1, math.NaN()
	}
	return int(lm), float64(d.nodeLandmarkDist[v])
}

// ClusterOfNode returns the cluster of the node's landmark, or -1.
func (d *Discretization) ClusterOfNode(v roadnet.NodeID) int {
	lm := d.nodeLandmark[v]
	if lm < 0 {
		return -1
	}
	return d.landmarkCluster[lm]
}

// GridAt maps a point to its grid cell.
func (d *Discretization) GridAt(p geo.Point) grid.ID { return d.Grid.At(p) }

// Info returns the per-grid attributes, computing and caching them on
// first use. It returns nil for grid.Invalid.
func (d *Discretization) Info(id grid.ID) *GridInfo {
	if id == grid.Invalid || !d.Grid.Contains(id) {
		return nil
	}
	d.mu.RLock()
	gi, ok := d.gridCache[id]
	d.mu.RUnlock()
	if ok {
		return gi
	}
	gi = d.computeGridInfo(id)
	d.mu.Lock()
	if prev, ok := d.gridCache[id]; ok {
		gi = prev // another goroutine won the race; keep one canonical value
	} else {
		d.gridCache[id] = gi
	}
	d.mu.Unlock()
	return gi
}

// computeGridInfo derives a grid's nearest landmark and walkable-cluster
// list from the node tables and the landmark spatial index.
func (d *Discretization) computeGridInfo(id grid.ID) *GridInfo {
	centroid := d.Grid.Centroid(id)
	gi := &GridInfo{Landmark: -1, DriveDist: math.NaN()}

	// Driving association: the grid inherits the assignment of its
	// nearest road node (the grid is 100 m; its traffic enters the
	// network at that node), plus the snap distance.
	node, snap := d.city.Index.Nearest(centroid)
	if node != roadnet.InvalidNode {
		if lm, dist := d.LandmarkOfNode(node); lm >= 0 && dist+snap <= d.cfg.MaxDriveToLandmark {
			gi.Landmark = lm
			gi.DriveDist = dist + snap
		}
	}

	// Walkable clusters: all landmarks within W straight-line, walking
	// distance = detour factor × haversine, keep the minimum per cluster,
	// sort ascending.
	byCluster := map[int]float64{}
	d.lmIndex.within(centroid, d.cfg.MaxWalk/d.cfg.WalkDetourFactor, func(lmID int, straight float64) {
		walk := straight * d.cfg.WalkDetourFactor
		if walk > d.cfg.MaxWalk {
			return
		}
		c := d.landmarkCluster[lmID]
		if cur, ok := byCluster[c]; !ok || walk < cur {
			byCluster[c] = walk
		}
	})
	gi.Walkable = make([]WalkableCluster, 0, len(byCluster))
	for c, w := range byCluster {
		gi.Walkable = append(gi.Walkable, WalkableCluster{Cluster: c, Walk: w})
	}
	sort.Slice(gi.Walkable, func(i, j int) bool {
		if gi.Walkable[i].Walk != gi.Walkable[j].Walk {
			return gi.Walkable[i].Walk < gi.Walkable[j].Walk
		}
		return gi.Walkable[i].Cluster < gi.Walkable[j].Cluster
	})
	return gi
}

// WalkableWithin prunes a grid's walkable-cluster list to the request's
// walking threshold, using the sorted order (linear scan, per §IV).
func (gi *GridInfo) WalkableWithin(limit float64) []WalkableCluster {
	if gi == nil {
		return nil
	}
	end := 0
	for end < len(gi.Walkable) && gi.Walkable[end].Walk <= limit {
		end++
	}
	return gi.Walkable[:end]
}

// NearestLandmarkInCluster returns the landmark of cluster c closest to p
// on foot and the walking distance (straight-line × WalkDetourFactor).
// It returns (-1, NaN) for an invalid cluster. Booking uses it to choose
// the concrete pickup/drop-off landmark of a matched cluster.
func (d *Discretization) NearestLandmarkInCluster(p geo.Point, c int) (int, float64) {
	if c < 0 || c >= len(d.Clusters) {
		return -1, math.NaN()
	}
	best, bestD := -1, math.Inf(1)
	for _, lm := range d.Clusters[c].Landmarks {
		if dd := geo.Haversine(p, d.Landmarks[lm].Point); dd < bestD {
			bestD = dd
			best = lm
		}
	}
	if best < 0 {
		return -1, math.NaN()
	}
	return best, bestD * d.cfg.WalkDetourFactor
}

// Servable reports whether a point can be served by the system: its grid
// exists and has at least one walkable cluster (or a landmark within Δ).
func (d *Discretization) Servable(p geo.Point) bool {
	gi := d.Info(d.GridAt(p))
	return gi != nil && (gi.Landmark >= 0 || len(gi.Walkable) > 0)
}

// pointBuckets is a tiny uniform bucket index over a fixed point set.
type pointBuckets struct {
	pts        []geo.Point
	box        geo.BBox
	cell       float64
	dLat, dLng float64
	rows, cols int
	buckets    [][]int32
}

func newPointBuckets(pts []geo.Point, box geo.BBox, cellMeters float64) *pointBuckets {
	if cellMeters <= 0 {
		cellMeters = 500
	}
	midLat := (box.MinLat + box.MaxLat) / 2
	b := &pointBuckets{
		pts:  pts,
		box:  box,
		cell: cellMeters,
		dLat: cellMeters / geo.MetersPerDegreeLat(),
		dLng: cellMeters / geo.MetersPerDegreeLng(midLat),
	}
	b.rows = int((box.MaxLat-box.MinLat)/b.dLat) + 2
	b.cols = int((box.MaxLng-box.MinLng)/b.dLng) + 2
	b.buckets = make([][]int32, b.rows*b.cols)
	for i, p := range pts {
		r, c := b.rc(p)
		k := r*b.cols + c
		b.buckets[k] = append(b.buckets[k], int32(i))
	}
	return b
}

func (b *pointBuckets) rc(p geo.Point) (int, int) {
	r := int((p.Lat - b.box.MinLat) / b.dLat)
	c := int((p.Lng - b.box.MinLng) / b.dLng)
	if r < 0 {
		r = 0
	}
	if r >= b.rows {
		r = b.rows - 1
	}
	if c < 0 {
		c = 0
	}
	if c >= b.cols {
		c = b.cols - 1
	}
	return r, c
}

func (b *pointBuckets) within(p geo.Point, radius float64, visit func(i int, d float64)) {
	if radius < 0 {
		return
	}
	span := int(radius/b.cell) + 1
	r0, c0 := b.rc(p)
	for r := r0 - span; r <= r0+span; r++ {
		if r < 0 || r >= b.rows {
			continue
		}
		for c := c0 - span; c <= c0+span; c++ {
			if c < 0 || c >= b.cols {
				continue
			}
			for _, i := range b.buckets[r*b.cols+c] {
				if d := geo.Haversine(p, b.pts[i]); d <= radius {
					visit(int(i), d)
				}
			}
		}
	}
}
