package discretize

import (
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"xar/internal/grid"
	"xar/internal/landmark"
	"xar/internal/roadnet"
)

// discSnapshot is the gob wire format of a Discretization. The grid
// system and lazy per-grid cache are rebuilt on load; everything the
// expensive pre-processing computed (landmark Dijkstras, clustering,
// node assignments) is stored.
type discSnapshot struct {
	Version          int
	GraphFingerprint uint64
	Cfg              Config
	Landmarks        []landmark.Landmark
	LandmarkCluster  []int
	LMDist           [][]float32
	NodeLandmark     []int32
	NodeLandmarkDist []float32
	Epsilon          float64
}

const discSnapshotVersion = 1

// Save serializes the discretization. The artifact embeds the road
// graph's fingerprint; Load verifies it against the graph it is given.
func (d *Discretization) Save(w io.Writer) error {
	snap := discSnapshot{
		Version:          discSnapshotVersion,
		GraphFingerprint: d.city.Graph.Fingerprint(),
		Cfg:              d.cfg,
		Landmarks:        d.Landmarks,
		LandmarkCluster:  d.landmarkCluster,
		LMDist:           d.lmDist,
		NodeLandmark:     d.nodeLandmark,
		NodeLandmarkDist: d.nodeLandmarkDist,
		Epsilon:          d.epsilon,
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load deserializes a discretization previously written by Save and
// re-binds it to city. The city must be the one the artifact was built
// on (checked by fingerprint).
func Load(r io.Reader, city *roadnet.City) (*Discretization, error) {
	var snap discSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("discretize: decode: %w", err)
	}
	if snap.Version != discSnapshotVersion {
		return nil, fmt.Errorf("discretize: unsupported snapshot version %d", snap.Version)
	}
	if got := city.Graph.Fingerprint(); got != snap.GraphFingerprint {
		return nil, fmt.Errorf("discretize: snapshot built on a different road graph (fingerprint %x, graph %x)",
			snap.GraphFingerprint, got)
	}
	if err := snap.Cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(snap.Landmarks)
	if len(snap.LandmarkCluster) != n || len(snap.LMDist) != n {
		return nil, fmt.Errorf("discretize: corrupt snapshot: %d landmarks, %d assignments, %d distance rows",
			n, len(snap.LandmarkCluster), len(snap.LMDist))
	}
	for i, row := range snap.LMDist {
		if len(row) != n {
			return nil, fmt.Errorf("discretize: corrupt snapshot: distance row %d has %d entries", i, len(row))
		}
	}
	if len(snap.NodeLandmark) != city.Graph.NumNodes() || len(snap.NodeLandmarkDist) != city.Graph.NumNodes() {
		return nil, fmt.Errorf("discretize: corrupt snapshot: node tables sized %d/%d for %d nodes",
			len(snap.NodeLandmark), len(snap.NodeLandmarkDist), city.Graph.NumNodes())
	}

	gs, err := grid.NewSystem(city.Graph.BBox().Pad(snap.Cfg.MaxWalk+snap.Cfg.GridCellSize), snap.Cfg.GridCellSize)
	if err != nil {
		return nil, err
	}
	d := &Discretization{
		cfg:              snap.Cfg,
		city:             city,
		Grid:             gs,
		Landmarks:        snap.Landmarks,
		landmarkCluster:  snap.LandmarkCluster,
		lmDist:           snap.LMDist,
		nodeLandmark:     snap.NodeLandmark,
		nodeLandmarkDist: snap.NodeLandmarkDist,
		epsilon:          snap.Epsilon,
		gridCache:        make(map[grid.ID]*GridInfo),
		mu:               sync.RWMutex{},
		lmIndex: newPointBuckets(landmark.Points(snap.Landmarks),
			city.Graph.BBox().Pad(snap.Cfg.MaxWalk+snap.Cfg.GridCellSize), snap.Cfg.MaxWalk),
	}
	// Rebuild cluster membership lists from the assignment.
	maxC := -1
	for lm, c := range snap.LandmarkCluster {
		if c < 0 {
			return nil, fmt.Errorf("discretize: corrupt snapshot: landmark %d unassigned", lm)
		}
		if c > maxC {
			maxC = c
		}
	}
	d.Clusters = make([]Cluster, maxC+1)
	for c := range d.Clusters {
		d.Clusters[c].ID = c
	}
	for lm, c := range snap.LandmarkCluster {
		d.Clusters[c].Landmarks = append(d.Clusters[c].Landmarks, lm)
	}
	for c := range d.Clusters {
		if len(d.Clusters[c].Landmarks) == 0 {
			return nil, fmt.Errorf("discretize: corrupt snapshot: cluster %d empty", c)
		}
	}
	d.computeClusterDistances()
	return d, nil
}
