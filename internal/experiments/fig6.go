package experiments

import (
	"fmt"

	"xar/internal/sim"
	"xar/internal/stats"
)

// Fig6Result is Experiment E10: the four-mode comparison — Taxi, Ride
// Sharing (RS), Public Transport (PT), and PT combined with RS in aider
// mode — on travel time, walking time, waiting time and cars used.
type Fig6Result struct {
	Modes []sim.ModeMetrics
}

// Fig6 serves the same request stream four ways.
func Fig6(w *World) (*Fig6Result, error) {
	cfg := sim.DefaultModesConfig()
	cfg.Sim.WalkLimit = w.Scale.WalkLimit
	cfg.Sim.WindowSlack = w.Scale.WindowSlack
	cfg.Sim.DetourLimit = w.Scale.DetourLimit

	taxi := sim.CompareTaxi(w.City, w.Trips)

	rsEng, err := w.NewXAREngine()
	if err != nil {
		return nil, err
	}
	rs, err := sim.CompareRideShare(rsEng, w.Trips, cfg)
	if err != nil {
		return nil, err
	}

	planner, err := w.NewPlanner()
	if err != nil {
		return nil, err
	}
	pt := sim.CompareTransit(planner, w.Trips)

	rsptEng, err := w.NewXAREngine()
	if err != nil {
		return nil, err
	}
	rspt, err := sim.CompareTransitPlusRideShare(rsptEng, planner, w.Trips, cfg)
	if err != nil {
		return nil, err
	}

	return &Fig6Result{Modes: []sim.ModeMetrics{taxi, rs, pt, rspt}}, nil
}

// Table renders Figure 6.
func (r *Fig6Result) Table() string {
	t := stats.NewTable("mode", "served", "cars", "travel_min", "walk_min", "wait_min")
	for _, m := range r.Modes {
		t.AddRow(m.Mode, m.Served, m.Cars, m.TravelTime.Mean(), m.WalkTime.Mean(), m.WaitTime.Mean())
	}
	out := "Fig 6 — Taxi vs RS vs PT vs RS+PT\n" + t.String()

	byName := map[string]sim.ModeMetrics{}
	for _, m := range r.Modes {
		byName[m.Mode] = m
	}
	taxi, rs, pt, rspt := byName["Taxi"], byName["RS"], byName["PT"], byName["RS+PT"]
	if taxi.Cars > 0 && rs.Served > 0 && pt.Served > 0 && rspt.Served > 0 {
		out += fmt.Sprintf(
			"\nRS vs Taxi: %.0f%% fewer cars, %.0f%% more travel time"+
				"\nRS+PT vs PT: %.0f%% less walking, %.0f%% less travel time"+
				"\nRS+PT vs RS: %.0f%% fewer cars\n",
			100*(1-float64(rs.Cars)/float64(taxi.Cars)),
			100*(rs.TravelTime.Mean()/taxi.TravelTime.Mean()-1),
			100*(1-rspt.WalkTime.Mean()/pt.WalkTime.Mean()),
			100*(1-rspt.TravelTime.Mean()/pt.TravelTime.Mean()),
			100*(1-float64(rspt.Cars)/float64(rs.Cars)),
		)
	}
	return out
}
