package experiments

import (
	"strings"
	"testing"

	"xar/internal/workload"
)

// tinyScale keeps the full experiment suite fast in unit tests.
func tinyScale() Scale {
	s := DefaultScale()
	s.CityRows = 22
	s.CityCols = 13
	s.Requests = 300
	return s
}

func tinyWorld(t testing.TB) *World {
	t.Helper()
	w, err := BuildWorld(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// denseWorld concentrates 800 trips into a 2-hour window so sharing
// kicks in — needed by the mode-comparison shape assertions.
func denseWorld(t testing.TB) *World {
	t.Helper()
	s := tinyScale()
	w, err := BuildWorld(s)
	if err != nil {
		t.Fatal(err)
	}
	wcfg := workload.DefaultConfig(800, s.Seed+1)
	wcfg.StartHour = 7
	wcfg.EndHour = 9
	wcfg.MaxTripDist = maxTripDist(w.City)
	w.Trips, err = workload.Generate(w.City, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildWorld(t *testing.T) {
	w := tinyWorld(t)
	if len(w.Trips) != 300 {
		t.Fatalf("trips = %d", len(w.Trips))
	}
	if w.Disc.NumClusters() < 2 {
		t.Fatal("too few clusters")
	}
	offers, requests := w.SplitOffersRequests()
	if len(offers) == 0 || len(requests) == 0 || len(offers)+len(requests) != len(w.Trips) {
		t.Fatalf("split %d/%d of %d", len(offers), len(requests), len(w.Trips))
	}
}

func TestFig3aShape(t *testing.T) {
	w := tinyWorld(t)
	r, err := Fig3a(w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bookings == 0 {
		t.Fatal("no bookings happened; cannot evaluate the guarantee")
	}
	// The paper's hard guarantee: nothing beyond 4ε.
	if r.FracUnder4E != 1.0 {
		t.Fatalf("%.4f of errors under 4ε, want 1.0 (max %.1f, ε %.1f)",
			r.FracUnder4E, r.MaxError, r.Epsilon)
	}
	// Shape: the vast majority under ε (paper: 98%). Allow slack for the
	// tiny scale but insist on the dominant mass.
	if r.FracUnder1E < 0.7 {
		t.Fatalf("only %.2f of errors under ε; expected the bulk", r.FracUnder1E)
	}
	if r.FracUnder2E < r.FracUnder1E || r.FracUnder4E < r.FracUnder2E {
		t.Fatal("CDF not monotone")
	}
	if !strings.Contains(r.Table(), "Fig 3a") {
		t.Fatal("table rendering broken")
	}
}

func TestFig3bInverseRelation(t *testing.T) {
	w := tinyWorld(t)
	rows, err := Fig3b(w, []float64{600, 1200, 2400})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Clusters > rows[i-1].Clusters {
			t.Fatalf("clusters grew with ε: %v", rows)
		}
	}
	for _, r := range rows {
		if r.MeasuredEpsilon > r.Epsilon {
			t.Fatalf("measured ε %.1f exceeds requested %.1f", r.MeasuredEpsilon, r.Epsilon)
		}
	}
	if !strings.Contains(RenderFig3b(rows), "clusters") {
		t.Fatal("render broken")
	}
}

func TestFig3cdMoreClustersMoreMemory(t *testing.T) {
	w := tinyWorld(t)
	rows, err := Fig3cd(w, []float64{600, 2400})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	small, large := rows[1], rows[0] // ε=2400 → few clusters; ε=600 → many
	if large.Clusters <= small.Clusters {
		t.Fatalf("cluster counts not ordered: %d vs %d", large.Clusters, small.Clusters)
	}
	if large.IndexBytes <= small.IndexBytes {
		t.Fatalf("more clusters should cost more memory: %d vs %d bytes",
			large.IndexBytes, small.IndexBytes)
	}
	if !strings.Contains(RenderFig3cd(rows), "index_MB") {
		t.Fatal("render broken")
	}
}

func TestFig4XARSearchFaster(t *testing.T) {
	w := tinyWorld(t)
	r, err := Fig4(w)
	if err != nil {
		t.Fatal(err)
	}
	if r.XAR.Requests == 0 || r.TShare.Requests == 0 {
		t.Fatal("no requests replayed")
	}
	// The paper's headline: XAR searches much faster than T-Share.
	if sp := r.SearchSpeedup(); sp < 2 {
		t.Fatalf("XAR search speedup %.2fx; expected clear separation", sp)
	}
	// T-Share creates faster (no reachable-cluster expansion), same order.
	if r.TShare.CreateTimes.Mean() > r.XAR.CreateTimes.Mean()*5 {
		t.Fatalf("T-Share create %.3f ms vs XAR %.3f ms; expected T-Share ≤ XAR-ish",
			r.TShare.CreateTimes.Mean(), r.XAR.CreateTimes.Mean())
	}
	if !strings.Contains(r.Table(), "Fig 4a") {
		t.Fatal("table rendering broken")
	}
}

func TestFig5aXARFlatTShareGrows(t *testing.T) {
	w := tinyWorld(t)
	rows, err := Fig5a(w, []int{1, 5, 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// XAR's search time is insensitive to k (same candidate retrieval).
	if rows[2].XARMeanMS > rows[0].XARMeanMS*3+0.05 {
		t.Fatalf("XAR search grew with k: %.3f → %.3f ms", rows[0].XARMeanMS, rows[2].XARMeanMS)
	}
	if !strings.Contains(RenderFig5a(rows), "k") {
		t.Fatal("render broken")
	}
}

func TestFig5bTShareGrowsFaster(t *testing.T) {
	w := tinyWorld(t)
	rows, err := Fig5b(w, []int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	// Total time grows with the ratio for both; T-Share grows much more.
	xGrowth := rows[1].XARTotalMS - rows[0].XARTotalMS
	tGrowth := rows[1].TShareTotalMS - rows[0].TShareTotalMS
	if tGrowth <= xGrowth {
		t.Fatalf("T-Share growth %.3f ms <= XAR growth %.3f ms over 10x ratio", tGrowth, xGrowth)
	}
	if !strings.Contains(RenderFig5b(rows), "ratio") {
		t.Fatal("render broken")
	}
}

func TestFig6ModeOrdering(t *testing.T) {
	w := denseWorld(t)
	r, err := Fig6(w)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	for i, m := range r.Modes {
		byName[m.Mode] = i
	}
	taxi := r.Modes[byName["Taxi"]]
	rs := r.Modes[byName["RS"]]
	pt := r.Modes[byName["PT"]]
	rspt := r.Modes[byName["RS+PT"]]

	if taxi.Served == 0 || rs.Served == 0 || pt.Served == 0 || rspt.Served == 0 {
		t.Fatalf("empty mode: taxi=%d rs=%d pt=%d rspt=%d",
			taxi.Served, rs.Served, pt.Served, rspt.Served)
	}
	// Paper shape: taxi fastest but most cars; PT slowest, no cars;
	// RS uses fewer cars than taxi; RS+PT fewer cars than RS.
	if taxi.TravelTime.Mean() >= pt.TravelTime.Mean() {
		t.Fatalf("taxi (%.1f min) not faster than PT (%.1f min)",
			taxi.TravelTime.Mean(), pt.TravelTime.Mean())
	}
	if rs.Cars >= taxi.Cars {
		t.Fatalf("RS cars %d >= taxi cars %d", rs.Cars, taxi.Cars)
	}
	if pt.Cars != 0 {
		t.Fatal("PT must use no cars")
	}
	if rspt.Cars >= rs.Cars {
		t.Fatalf("RS+PT cars %d >= RS cars %d", rspt.Cars, rs.Cars)
	}
	if !strings.Contains(r.Table(), "Fig 6") {
		t.Fatal("table rendering broken")
	}
}

func TestAblationSortedLists(t *testing.T) {
	w := tinyWorld(t)
	row, err := AblationSortedLists(w)
	if err != nil {
		t.Fatal(err)
	}
	// Both configurations must find the same matches (correctness), the
	// linear scan being the slower path at scale.
	if row.OnMatches != row.OffMatches {
		t.Fatalf("sorted (%d) vs linear (%d) matches differ", row.OnMatches, row.OffMatches)
	}
	if !strings.Contains(RenderAblations([]AblationRow{row}), "sorted-lists") {
		t.Fatal("render broken")
	}
}

func TestAblationReachablePrecompute(t *testing.T) {
	w := tinyWorld(t)
	row, err := AblationReachablePrecompute(w)
	if err != nil {
		t.Fatal(err)
	}
	// Without the reachable-cluster expansion the index misses matches.
	if row.OffMatches >= row.OnMatches {
		t.Fatalf("ablated index found %d matches vs %d with precompute",
			row.OffMatches, row.OnMatches)
	}
}
