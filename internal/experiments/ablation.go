package experiments

import (
	"time"

	"xar/internal/core"
	"xar/internal/index"
	"xar/internal/sim"
	"xar/internal/stats"
)

// AblationRow compares a design choice on versus off.
type AblationRow struct {
	Name       string
	OnMeanMS   float64 // production configuration
	OffMeanMS  float64 // design choice disabled
	OnMatches  int
	OffMatches int
}

// AblationSortedLists quantifies the dual sorted potential-ride lists
// (DESIGN.md §4): searches with the by-ETA binary search versus a full
// linear scan of every candidate cluster's list.
func AblationSortedLists(w *World) (AblationRow, error) {
	return ablateIndexConfig(w, "sorted-lists", func(cfg *index.Config) {
		cfg.LinearWindowScan = true
	})
}

// AblationReachablePrecompute quantifies the reachable-cluster
// precomputation: without it, only pass-through clusters are indexed and
// searches miss detour-served requests.
func AblationReachablePrecompute(w *World) (AblationRow, error) {
	return ablateIndexConfig(w, "reachable-precompute", func(cfg *index.Config) {
		cfg.NoReachablePrecompute = true
	})
}

func ablateIndexConfig(w *World, name string, disable func(*index.Config)) (AblationRow, error) {
	offers, requests := w.SplitOffersRequests()

	run := func(icfg index.Config) (float64, int, error) {
		ecfg := core.DefaultConfig()
		ecfg.DefaultDetourLimit = w.Scale.DetourLimit
		ecfg.Index = icfg
		eng, err := core.NewEngine(w.Disc, ecfg)
		if err != nil {
			return 0, 0, err
		}
		sys := &sim.XARSystem{Engine: eng}
		seed(sys, offers, w.Scale)
		var lat stats.Sample
		matches := 0
		for _, r := range requests {
			req := simRequest(r, w.Scale)
			start := time.Now()
			ms, _ := sys.Search(req, 0)
			lat.AddDuration(time.Since(start))
			matches += len(ms)
		}
		return lat.Mean(), matches, nil
	}

	onMS, onMatches, err := run(index.DefaultConfig())
	if err != nil {
		return AblationRow{}, err
	}
	offCfg := index.DefaultConfig()
	disable(&offCfg)
	offMS, offMatches, err := run(offCfg)
	if err != nil {
		return AblationRow{}, err
	}
	return AblationRow{
		Name:       name,
		OnMeanMS:   onMS,
		OffMeanMS:  offMS,
		OnMatches:  onMatches,
		OffMatches: offMatches,
	}, nil
}

// RenderAblations renders ablation rows.
func RenderAblations(rows []AblationRow) string {
	t := stats.NewTable("design_choice", "on_mean_ms", "off_mean_ms", "on_matches", "off_matches")
	for _, r := range rows {
		t.AddRow(r.Name, r.OnMeanMS, r.OffMeanMS, r.OnMatches, r.OffMatches)
	}
	return "Ablations — design choices on vs off\n" + t.String()
}
