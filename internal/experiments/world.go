// Package experiments implements the paper's evaluation (§X): one
// function per table/figure, each returning printable rows so the
// cmd/xarbench binary and the root-level benchmarks share a single
// implementation. See DESIGN.md for the experiment index (E1–E10) and
// EXPERIMENTS.md for measured-vs-paper results.
package experiments

import (
	"fmt"
	"time"

	"xar/internal/core"
	"xar/internal/discretize"
	"xar/internal/journal"
	"xar/internal/memsize"
	"xar/internal/mmtp"
	"xar/internal/quality"
	"xar/internal/roadnet"
	"xar/internal/telemetry"
	"xar/internal/transit"
	"xar/internal/tshare"
	"xar/internal/workload"
)

// Scale parameterizes an experiment world. The paper's full scale
// (16,000 landmarks, 350,000 requests) is reachable by raising these
// numbers; the defaults run the whole suite in minutes.
type Scale struct {
	CityRows, CityCols int
	Seed               int64
	Requests           int
	// OfferFraction seeds this fraction of trips as pre-existing ride
	// offers for latency experiments (paper: 20k rides / 100k requests).
	OfferFraction float64
	// Epsilon is the paper's ε (= 4δ); default 1 km as in §X-A3.
	Epsilon float64
	// WalkLimit/WindowSlack/DetourLimit mirror sim.Config.
	WalkLimit   float64
	WindowSlack float64
	DetourLimit float64
}

// DefaultScale returns the reproduction's standard scale.
func DefaultScale() Scale {
	return Scale{
		CityRows:      40,
		CityCols:      22,
		Seed:          42,
		Requests:      4000,
		OfferFraction: 0.2,
		Epsilon:       1000,
		WalkLimit:     1000,
		WindowSlack:   900,
		DetourLimit:   2000,
	}
}

// World bundles the substrates an experiment needs.
type World struct {
	Scale Scale
	City  *roadnet.City
	Disc  *discretize.Discretization
	Trips []workload.Trip
	// Telemetry, when non-nil, is handed to the sim replays so the
	// figure harness records into the same latency histograms a live
	// xarserver exposes (cmd/xarbench -prom wires this).
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records request-scoped span trees for the
	// replayed operations (cmd/xarsim -trace-out / cmd/xarbench
	// -trace-out wire this to dump the slowest traces).
	Tracer *telemetry.Tracer
	// Journal, when non-nil, records ride-lifecycle events during the
	// replay (cmd/xarsim -audit / cmd/xarbench -audit wire this so the
	// post-replay audit can check journal causality).
	Journal *journal.Journal
	// Quality, when non-nil, collects the match-quality funnel and
	// approximation-gap histograms during the replay (cmd/xarsim
	// -quality / cmd/xarload wire this for their post-run summaries).
	Quality *quality.Collector
	// ShadowSampleRate, when > 0 alongside Quality, runs the shadow
	// counterfactual matcher at that 1-in-N sample rate.
	ShadowSampleRate int
	// Memory, when non-nil, turns on per-component memory accounting in
	// the engines built over this world (cmd/xarload -mem-sweep /
	// cmd/xarsim wire this for their memory summaries).
	Memory *memsize.Registry
	// MemSweepInterval starts the engine's background sweep worker on
	// that cadence (requires Memory; 0 → on-demand sweeps only).
	MemSweepInterval time.Duration
}

// BuildWorld generates the city, discretization (ε = Scale.Epsilon) and
// trip stream.
func BuildWorld(s Scale) (*World, error) {
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(s.CityRows, s.CityCols, s.Seed))
	if err != nil {
		return nil, err
	}
	dcfg := discretize.DefaultConfig()
	dcfg.Delta = s.Epsilon / 4
	disc, err := discretize.Build(city, dcfg)
	if err != nil {
		return nil, err
	}
	wcfg := workload.DefaultConfig(s.Requests, s.Seed+1)
	wcfg.StartHour = 6
	wcfg.EndHour = 12 // the paper's Figure 4 subset uses 6am–12pm pickups
	wcfg.MaxTripDist = maxTripDist(city)
	trips, err := workload.Generate(city, wcfg)
	if err != nil {
		return nil, err
	}
	return &World{Scale: s, City: city, Disc: disc, Trips: trips}, nil
}

func maxTripDist(city *roadnet.City) float64 {
	box := city.Graph.BBox()
	d := box.HeightMeters()
	if w := box.WidthMeters(); w > d {
		d = w
	}
	if d > 12000 {
		d = 12000
	}
	return d * 0.9
}

// NewXAREngine builds a fresh XAR engine over the world. When the world
// carries a telemetry registry the engine records into it directly —
// ops and the per-stage search breakdown, unsampled (rate 1) so the
// figure replays trace every search.
func (w *World) NewXAREngine() (*core.Engine, error) {
	cfg := core.DefaultConfig()
	cfg.DefaultDetourLimit = w.Scale.DetourLimit
	// The figure replays are deterministic single-threaded loops: index
	// striping buys them nothing and would add its fixed per-shard visit
	// cost to every search, so the experiment engines run unsharded.
	// Concurrency benchmarks construct their engines with explicit
	// IndexShards/SearchWorkers instead.
	cfg.IndexShards = 1
	if w.Telemetry != nil {
		cfg.Telemetry = w.Telemetry
		cfg.SearchSampleRate = 1
	}
	cfg.Tracer = w.Tracer
	cfg.Journal = w.Journal
	cfg.Quality = w.Quality
	if w.Quality != nil {
		cfg.ShadowSampleRate = w.ShadowSampleRate
	}
	cfg.Memory = w.Memory
	if w.Memory != nil {
		cfg.MemSweepInterval = w.MemSweepInterval
	}
	return core.NewEngine(w.Disc, cfg)
}

// NewTShare builds a fresh T-Share baseline over the world. Its grid
// cell matches the XAR cluster scale (ε), per §X-B2.
func (w *World) NewTShare(haversine bool) (*tshare.Engine, error) {
	cfg := tshare.DefaultConfig()
	cfg.GridCellSize = w.Scale.Epsilon
	cfg.HaversineValidation = haversine
	cfg.DefaultDetourLimit = w.Scale.DetourLimit
	return tshare.New(w.City, cfg)
}

// NewPlanner builds the transit network and multi-modal planner.
func (w *World) NewPlanner() (*mmtp.Planner, error) {
	net, err := transit.Generate(w.City, transit.DefaultGenConfig())
	if err != nil {
		return nil, err
	}
	return mmtp.NewPlanner(net, mmtp.DefaultConfig())
}

// SplitOffersRequests partitions the trip stream: the first
// OfferFraction of trips seed rides, the rest are requests — the paper's
// "20,000 rides and 100,000 requests" setup for Figure 4.
func (w *World) SplitOffersRequests() (offers, requests []workload.Trip) {
	n := int(float64(len(w.Trips)) * w.Scale.OfferFraction)
	if n < 1 {
		n = 1
	}
	if n >= len(w.Trips) {
		n = len(w.Trips) - 1
	}
	return w.Trips[:n], w.Trips[n:]
}

// Row is one printable output line of an experiment.
type Row struct {
	Label  string
	Values map[string]float64
}

func (r Row) String() string {
	return fmt.Sprintf("%s %v", r.Label, r.Values)
}
