package experiments

import (
	"fmt"

	"xar/internal/sim"
	"xar/internal/stats"
)

// Fig4Result is Experiments E5–E7: per-operation latency percentiles for
// XAR and T-Share under the same workload (the paper's 20k rides / 100k
// requests subset with pickups 6am–12pm).
type Fig4Result struct {
	XAR    *sim.Result
	TShare *sim.Result
}

// Fig4 replays the same trip stream through both systems with the §X-A2
// protocol and full-match searches (T-Share modified to return all
// matches, expansion capped at 80 grids ≈ 4 km).
func Fig4(w *World) (*Fig4Result, error) {
	cfg := sim.DefaultConfig()
	cfg.WalkLimit = w.Scale.WalkLimit
	cfg.WindowSlack = w.Scale.WindowSlack
	cfg.DetourLimit = w.Scale.DetourLimit
	// Only the XAR replay records into the shared histograms — via the
	// engine itself (NewXAREngine attaches w.Telemetry); mixing the
	// T-Share baseline into the same series would corrupt the figures.

	xeng, err := w.NewXAREngine()
	if err != nil {
		return nil, err
	}
	xres, err := sim.Run(&sim.XARSystem{Engine: xeng}, w.Trips, cfg)
	if err != nil {
		return nil, err
	}

	teng, err := w.NewTShare(false)
	if err != nil {
		return nil, err
	}
	tres, err := sim.Run(&sim.TShareSystem{Engine: teng}, w.Trips, cfg)
	if err != nil {
		return nil, err
	}
	return &Fig4Result{XAR: xres, TShare: tres}, nil
}

// Table renders the three sub-figures (4a search, 4b create, 4c book).
func (r *Fig4Result) Table() string {
	render := func(title string, pick func(*sim.Result) *stats.Sample) string {
		t := stats.NewTable("system", "n", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms")
		for _, res := range []*sim.Result{r.XAR, r.TShare} {
			s := pick(res)
			t.AddRow(res.SystemName, s.N(), s.Mean(), s.Percentile(50), s.Percentile(95), s.Percentile(99), s.Max())
		}
		return title + "\n" + t.String()
	}
	out := render("Fig 4a — time to search all possible matches", func(r *sim.Result) *stats.Sample { return &r.SearchTimes })
	out += "\n" + render("Fig 4b — time to create a ride", func(r *sim.Result) *stats.Sample { return &r.CreateTimes })
	out += "\n" + render("Fig 4c — time to book a ride", func(r *sim.Result) *stats.Sample { return &r.BookTimes })
	out += fmt.Sprintf("\nmatch rate: XAR %.1f%% (%d rides), T-Share %.1f%% (%d taxis)\n",
		100*r.XAR.MatchRate(), r.XAR.Created, 100*r.TShare.MatchRate(), r.TShare.Created)
	return out
}

// SearchSpeedup reports how many times faster XAR's mean search is.
func (r *Fig4Result) SearchSpeedup() float64 {
	if r.XAR.SearchTimes.Mean() == 0 {
		return 0
	}
	return r.TShare.SearchTimes.Mean() / r.XAR.SearchTimes.Mean()
}
