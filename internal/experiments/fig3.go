package experiments

import (
	"fmt"
	"time"

	"xar/internal/discretize"
	"xar/internal/memsize"
	"xar/internal/sim"
	"xar/internal/stats"
)

// Fig3aResult is Experiment E1: the empirical CDF of the detour
// approximation error against the ε guarantee. The paper reports 98% of
// matches under ε, 99.9% under 2ε, and a hard 4ε worst case.
type Fig3aResult struct {
	Epsilon     float64
	Bookings    int
	FracUnder1E float64
	FracUnder2E float64
	FracUnder4E float64
	MaxError    float64
	Errors      *stats.Sample
}

// Fig3a replays the full stream through XAR (search → least-walk book →
// else create) and measures each booking's additive approximation error.
func Fig3a(w *World) (*Fig3aResult, error) {
	eng, err := w.NewXAREngine()
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig()
	cfg.WalkLimit = w.Scale.WalkLimit
	cfg.WindowSlack = w.Scale.WindowSlack
	cfg.DetourLimit = w.Scale.DetourLimit
	// The engine (NewXAREngine) records into w.Telemetry itself — ops
	// plus stage breakdown — so the sim harness must not also record.
	res, err := sim.Run(&sim.XARSystem{Engine: eng}, w.Trips, cfg)
	if err != nil {
		return nil, err
	}
	eps := w.Disc.Epsilon()
	out := &Fig3aResult{
		Epsilon:  eps,
		Bookings: res.ApproxErrors.N(),
		Errors:   &res.ApproxErrors,
	}
	if out.Bookings > 0 {
		out.FracUnder1E = res.ApproxErrors.CDF(eps)
		out.FracUnder2E = res.ApproxErrors.CDF(2 * eps)
		out.FracUnder4E = res.ApproxErrors.CDF(4 * eps)
		out.MaxError = res.ApproxErrors.Max()
	}
	return out, nil
}

// Table renders the result in the shape of Figure 3a.
func (r *Fig3aResult) Table() string {
	t := stats.NewTable("bound", "fraction_of_matches")
	t.AddRow("<= eps", r.FracUnder1E)
	t.AddRow("<= 2*eps", r.FracUnder2E)
	t.AddRow("<= 4*eps", r.FracUnder4E)
	return fmt.Sprintf("Fig 3a — detour approximation error CDF (ε=%.0f m, %d bookings, max error %.1f m)\n%s",
		r.Epsilon, r.Bookings, r.MaxError, t.String())
}

// Fig3bRow is one sweep point of Experiment E2: ε versus cluster count.
type Fig3bRow struct {
	Epsilon         float64
	Clusters        int
	MeasuredEpsilon float64
}

// Fig3b sweeps ε and reports the resulting cluster counts — the inverse
// relation of Figure 3b.
func Fig3b(w *World, epsilons []float64) ([]Fig3bRow, error) {
	var rows []Fig3bRow
	for _, eps := range epsilons {
		dcfg := discretize.DefaultConfig()
		dcfg.Delta = eps / 4
		d, err := discretize.Build(w.City, dcfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig3bRow{
			Epsilon:         eps,
			Clusters:        d.NumClusters(),
			MeasuredEpsilon: d.Epsilon(),
		})
	}
	return rows, nil
}

// Fig3cdRow is one sweep point of Experiments E3+E4: cluster count versus
// index memory and search latency.
type Fig3cdRow struct {
	Epsilon      float64
	Clusters     int
	IndexBytes   uint64
	IndexMB      float64
	SearchMeanMS float64
	SearchP95MS  float64
}

// Fig3cd sweeps ε, loads each configuration with the world's ride
// offers, and measures the in-memory index size (Figure 3c) and the ride
// search latency (Figure 3d).
func Fig3cd(w *World, epsilons []float64) ([]Fig3cdRow, error) {
	offers, requests := w.SplitOffersRequests()
	var rows []Fig3cdRow
	for _, eps := range epsilons {
		dcfg := discretize.DefaultConfig()
		dcfg.Delta = eps / 4
		d, err := discretize.Build(w.City, dcfg)
		if err != nil {
			return nil, err
		}
		scale := w.Scale
		scale.Epsilon = eps
		world := &World{Scale: scale, City: w.City, Disc: d, Trips: w.Trips}
		eng, err := world.NewXAREngine()
		if err != nil {
			return nil, err
		}
		sys := &sim.XARSystem{Engine: eng}
		for _, o := range offers {
			_, _ = sys.Create(sim.Offer{
				Source: o.Pickup, Dest: o.Dropoff,
				Departure: o.RequestTime, Seats: 4, DetourLimit: scale.DetourLimit,
			})
		}
		var lat stats.Sample
		for _, r := range requests {
			req := sim.Request{
				Source: r.Pickup, Dest: r.Dropoff,
				Earliest: r.RequestTime, Latest: r.RequestTime + scale.WindowSlack,
				WalkLimit: scale.WalkLimit,
			}
			start := time.Now()
			_, _ = sys.Search(req, 0)
			lat.AddDuration(time.Since(start))
		}
		bytes := memsize.Of(eng.Index())
		rows = append(rows, Fig3cdRow{
			Epsilon:      eps,
			Clusters:     d.NumClusters(),
			IndexBytes:   bytes,
			IndexMB:      float64(bytes) / (1 << 20),
			SearchMeanMS: lat.Mean(),
			SearchP95MS:  lat.Percentile(95),
		})
	}
	return rows, nil
}

// RenderFig3b renders Figure 3b rows.
func RenderFig3b(rows []Fig3bRow) string {
	t := stats.NewTable("eps_m", "clusters", "measured_eps_m")
	for _, r := range rows {
		t.AddRow(r.Epsilon, r.Clusters, r.MeasuredEpsilon)
	}
	return "Fig 3b — number of clusters vs ε\n" + t.String()
}

// RenderFig3cd renders Figure 3c/3d rows.
func RenderFig3cd(rows []Fig3cdRow) string {
	t := stats.NewTable("eps_m", "clusters", "index_MB", "search_mean_ms", "search_p95_ms")
	for _, r := range rows {
		t.AddRow(r.Epsilon, r.Clusters, r.IndexMB, r.SearchMeanMS, r.SearchP95MS)
	}
	return "Fig 3c/3d — index memory and search time vs cluster count\n" + t.String()
}
