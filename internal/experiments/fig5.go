package experiments

import (
	"time"

	"xar/internal/sim"
	"xar/internal/stats"
	"xar/internal/workload"
)

// Fig5aRow is one point of Experiment E8: mean search time versus the
// number of requested matches k, with T-Share running in haversine-
// validation mode (the paper's alternate setting that removes the
// shortest-path cost and still shows linear growth in k).
type Fig5aRow struct {
	K            int
	XARMeanMS    float64
	TShareMeanMS float64
}

// Fig5a seeds both systems with the world's offers and measures search
// latency for k = each value in ks. To expose the k-dependence the paper
// shows (T-Share validates candidates until it has k matches), the
// candidate pool must be deep: half the stream seeds offers and the
// request windows widen to several hours, approximating the paper's 20k
// rides / 100k requests density.
func Fig5a(w *World, ks []int) ([]Fig5aRow, error) {
	split := len(w.Trips) / 2
	offers, requests := w.Trips[:split], w.Trips[split:]
	if len(requests) > 400 {
		requests = requests[:400]
	}

	xeng, err := w.NewXAREngine()
	if err != nil {
		return nil, err
	}
	xsys := &sim.XARSystem{Engine: xeng}
	teng, err := w.NewTShare(true) // haversine mode per the paper
	if err != nil {
		return nil, err
	}
	tsys := &sim.TShareSystem{Engine: teng}
	seed(xsys, offers, w.Scale)
	seed(tsys, offers, w.Scale)

	wide := w.Scale
	wide.WindowSlack = 3600

	var rows []Fig5aRow
	for _, k := range ks {
		var xs, ts stats.Sample
		for _, r := range requests {
			req := simRequest(r, wide)
			req.Earliest -= 1800
			start := time.Now()
			_, _ = xsys.Search(req, k)
			xs.AddDuration(time.Since(start))
			start = time.Now()
			_, _ = tsys.Search(req, k)
			ts.AddDuration(time.Since(start))
		}
		rows = append(rows, Fig5aRow{K: k, XARMeanMS: xs.Mean(), TShareMeanMS: ts.Mean()})
	}
	return rows, nil
}

// Fig5bRow is one point of Experiment E9: total time to serve one
// booking after r searches (the look-to-book ratio sweep).
type Fig5bRow struct {
	Ratio         int
	XARTotalMS    float64
	TShareTotalMS float64
}

// Fig5b measures, for each look-to-book ratio r, the total time of r
// searches plus one booking on both systems.
func Fig5b(w *World, ratios []int) ([]Fig5bRow, error) {
	offers, requests := w.SplitOffersRequests()

	var rows []Fig5bRow
	for _, ratio := range ratios {
		// Fresh systems per ratio so bookings don't accumulate.
		xeng, err := w.NewXAREngine()
		if err != nil {
			return nil, err
		}
		xsys := &sim.XARSystem{Engine: xeng}
		teng, err := w.NewTShare(true)
		if err != nil {
			return nil, err
		}
		tsys := &sim.TShareSystem{Engine: teng}
		seed(xsys, offers, w.Scale)
		seed(tsys, offers, w.Scale)

		// Use a slice of requests per ratio to bound the total cost.
		probe := requests
		if len(probe) > 50 {
			probe = probe[:50]
		}
		xTotal := measureLookToBook(xsys, probe, ratio, w.Scale)
		tTotal := measureLookToBook(tsys, probe, ratio, w.Scale)
		rows = append(rows, Fig5bRow{Ratio: ratio, XARTotalMS: xTotal, TShareTotalMS: tTotal})
	}
	return rows, nil
}

// measureLookToBook returns the mean total time (ms) of ratio searches
// followed by one booking attempt.
func measureLookToBook(sys sim.System, requests []workload.Trip, ratio int, s Scale) float64 {
	var total stats.Sample
	for _, r := range requests {
		req := simRequest(r, s)
		start := time.Now()
		var cands []sim.Candidate
		for i := 0; i < ratio; i++ {
			cands, _ = sys.Search(req, 0)
		}
		for _, c := range cands {
			if _, err := sys.Book(c, req); err == nil {
				break
			}
		}
		total.AddDuration(time.Since(start))
	}
	return total.Mean()
}

func seed(sys sim.System, offers []workload.Trip, s Scale) {
	for _, o := range offers {
		_, _ = sys.Create(sim.Offer{
			Source: o.Pickup, Dest: o.Dropoff,
			Departure: o.RequestTime, Seats: 4, DetourLimit: s.DetourLimit,
		})
	}
}

func simRequest(r workload.Trip, s Scale) sim.Request {
	return sim.Request{
		Source: r.Pickup, Dest: r.Dropoff,
		Earliest: r.RequestTime, Latest: r.RequestTime + s.WindowSlack,
		WalkLimit: s.WalkLimit,
	}
}

// RenderFig5a renders the k sweep.
func RenderFig5a(rows []Fig5aRow) string {
	t := stats.NewTable("k", "xar_mean_ms", "tshare_mean_ms")
	for _, r := range rows {
		t.AddRow(r.K, r.XARMeanMS, r.TShareMeanMS)
	}
	return "Fig 5a — mean search time vs number of matches k (T-Share in haversine mode)\n" + t.String()
}

// RenderFig5b renders the look-to-book sweep.
func RenderFig5b(rows []Fig5bRow) string {
	t := stats.NewTable("ratio", "xar_total_ms", "tshare_total_ms")
	for _, r := range rows {
		t.AddRow(r.Ratio, r.XARTotalMS, r.TShareTotalMS)
	}
	return "Fig 5b — total time for r searches + 1 booking (look-to-book sweep)\n" + t.String()
}
