package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Two NYC reference points with a well-known distance: Times Square and
// Union Square are roughly 3.1 km apart as the crow flies.
var (
	timesSquare = Point{Lat: 40.7580, Lng: -73.9855}
	unionSquare = Point{Lat: 40.7359, Lng: -73.9911}
)

func TestHaversineKnownDistance(t *testing.T) {
	d := Haversine(timesSquare, unionSquare)
	if d < 2300 || d > 2700 {
		t.Fatalf("Times Square–Union Square distance = %.0f m, want ~2500 m", d)
	}
}

func TestHaversineZero(t *testing.T) {
	if d := Haversine(timesSquare, timesSquare); d != 0 {
		t.Fatalf("distance of a point to itself = %v, want 0", d)
	}
}

func TestHaversineSmallScaleMatchesPlanar(t *testing.T) {
	// At ~100 m scales the haversine distance must agree with the planar
	// approximation used by the grid system to well under a meter.
	a := Point{Lat: 40.75, Lng: -73.98}
	b := Point{Lat: 40.75 + 100/MetersPerDegreeLat(), Lng: -73.98}
	d := Haversine(a, b)
	if math.Abs(d-100) > 0.5 {
		t.Fatalf("100 m north displacement measured as %.3f m", d)
	}
	c := Point{Lat: 40.75, Lng: -73.98 + 100/MetersPerDegreeLng(40.75)}
	d = Haversine(a, c)
	if math.Abs(d-100) > 0.5 {
		t.Fatalf("100 m east displacement measured as %.3f m", d)
	}
}

func nycPoint(r *rand.Rand) Point {
	return Point{
		Lat: 40.55 + r.Float64()*0.4,
		Lng: -74.15 + r.Float64()*0.4,
	}
}

func TestHaversineMetricProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b, c := nycPoint(r), nycPoint(r), nycPoint(r)
		dab := Haversine(a, b)
		dba := Haversine(b, a)
		if math.Abs(dab-dba) > 1e-6 {
			t.Fatalf("symmetry violated: d(a,b)=%v d(b,a)=%v", dab, dba)
		}
		if dab < 0 {
			t.Fatalf("negative distance %v", dab)
		}
		dac := Haversine(a, c)
		dcb := Haversine(c, b)
		if dab > dac+dcb+1e-6 {
			t.Fatalf("triangle inequality violated: %v > %v + %v", dab, dac, dcb)
		}
	}
}

func TestDestinationInvertsHaversine(t *testing.T) {
	// quick.Check: Destination(p, bearing, d) must be d away from p and at
	// roughly the requested bearing for any city-scale d.
	f := func(latSeed, lngSeed, brngSeed, distSeed uint16) bool {
		p := Point{
			Lat: 40.55 + float64(latSeed)/65535*0.4,
			Lng: -74.15 + float64(lngSeed)/65535*0.4,
		}
		brng := float64(brngSeed) / 65535 * 360
		dist := 1 + float64(distSeed)/65535*20000 // 1 m .. 20 km
		q := Destination(p, brng, dist)
		back := Haversine(p, q)
		return math.Abs(back-dist) < 0.01*dist+0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBearingCardinal(t *testing.T) {
	p := Point{Lat: 40.75, Lng: -73.98}
	cases := []struct {
		name string
		to   Point
		want float64
	}{
		{"north", Point{Lat: 40.76, Lng: -73.98}, 0},
		{"east", Point{Lat: 40.75, Lng: -73.97}, 90},
		{"south", Point{Lat: 40.74, Lng: -73.98}, 180},
		{"west", Point{Lat: 40.75, Lng: -73.99}, 270},
	}
	for _, tc := range cases {
		got := Bearing(p, tc.to)
		diff := math.Abs(got - tc.want)
		if diff > 180 {
			diff = 360 - diff
		}
		if diff > 1.0 {
			t.Errorf("%s: bearing = %.2f, want %.2f", tc.name, got, tc.want)
		}
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(timesSquare, unionSquare)
	da := Haversine(timesSquare, m)
	db := Haversine(unionSquare, m)
	if math.Abs(da-db) > 1 {
		t.Fatalf("midpoint not equidistant: %.2f vs %.2f", da, db)
	}
	total := Haversine(timesSquare, unionSquare)
	if math.Abs(da+db-total) > 1 {
		t.Fatalf("midpoint off the great circle: %.2f + %.2f vs %.2f", da, db, total)
	}
}

func TestPointValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{90, 180}, true},
		{Point{-90, -180}, true},
		{Point{91, 0}, false},
		{Point{0, 181}, false},
		{Point{math.NaN(), 0}, false},
		{Point{0, math.Inf(1)}, false},
	}
	for _, tc := range cases {
		if got := tc.p.Valid(); got != tc.want {
			t.Errorf("Valid(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestBBox(t *testing.T) {
	b := NewBBox(timesSquare, unionSquare)
	if !b.Contains(timesSquare) || !b.Contains(unionSquare) {
		t.Fatal("bbox must contain its defining points")
	}
	if !b.Contains(Midpoint(timesSquare, unionSquare)) {
		t.Fatal("bbox must contain the midpoint")
	}
	outside := Point{Lat: 40.80, Lng: -73.98}
	if b.Contains(outside) {
		t.Fatal("bbox should not contain a point north of both corners")
	}
	padded := b.Pad(10000)
	if !padded.Contains(outside) {
		t.Fatal("10 km padded bbox should contain a point ~4.5 km away")
	}
	if padded.WidthMeters() <= b.WidthMeters() || padded.HeightMeters() <= b.HeightMeters() {
		t.Fatal("padding must grow the box")
	}
}

func TestNewBBoxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBBox() with no points must panic")
		}
	}()
	NewBBox()
}

func TestBBoxCenter(t *testing.T) {
	b := NewBBox(Point{40, -74}, Point{41, -73})
	c := b.Center()
	if c.Lat != 40.5 || c.Lng != -73.5 {
		t.Fatalf("center = %v, want 40.5,-73.5", c)
	}
}

func TestPathLength(t *testing.T) {
	if PathLength(nil) != 0 {
		t.Fatal("empty path must have length 0")
	}
	if PathLength([]Point{timesSquare}) != 0 {
		t.Fatal("single-point path must have length 0")
	}
	m := Midpoint(timesSquare, unionSquare)
	via := PathLength([]Point{timesSquare, m, unionSquare})
	direct := Haversine(timesSquare, unionSquare)
	if math.Abs(via-direct) > 1 {
		t.Fatalf("path through the midpoint = %.2f, direct = %.2f", via, direct)
	}
}

func TestMetersPerDegree(t *testing.T) {
	if mpd := MetersPerDegreeLat(); math.Abs(mpd-111194.9) > 10 {
		t.Fatalf("meters per degree latitude = %.1f, want ~111195", mpd)
	}
	// Longitude degrees shrink with latitude.
	if MetersPerDegreeLng(60) >= MetersPerDegreeLng(0) {
		t.Fatal("longitude degree length must shrink toward the poles")
	}
	if math.Abs(MetersPerDegreeLng(60)-MetersPerDegreeLat()*0.5) > 10 {
		t.Fatal("cos(60°) = 0.5 scaling violated")
	}
}
