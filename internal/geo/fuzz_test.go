package geo

import (
	"math"
	"testing"
)

// FuzzDecodePolyline checks the decoder never panics and that whatever
// it accepts round-trips through the encoder.
func FuzzDecodePolyline(f *testing.F) {
	f.Add("_p~iF~ps|U_ulLnnqC_mqNvxq`@")
	f.Add("")
	f.Add("_")
	f.Add("??")
	f.Add("~~~~~~~~~~")
	f.Fuzz(func(t *testing.T, s string) {
		pts, err := DecodePolyline(s)
		if err != nil {
			return
		}
		for _, p := range pts {
			if math.IsNaN(p.Lat) || math.IsNaN(p.Lng) {
				t.Fatalf("decoded NaN from %q", s)
			}
		}
		// Re-encoding the decoded points and decoding again must agree
		// (the original string may use a non-canonical encoding, so only
		// the value round-trip is guaranteed).
		back, err := DecodePolyline(EncodePolyline(pts))
		if err != nil {
			t.Fatalf("re-decode failed for %q: %v", s, err)
		}
		if len(back) != len(pts) {
			t.Fatalf("value round-trip lost points: %d vs %d", len(back), len(pts))
		}
		for i := range pts {
			if math.Abs(back[i].Lat-pts[i].Lat) > 1.1e-5 || math.Abs(back[i].Lng-pts[i].Lng) > 1.1e-5 {
				t.Fatalf("value drift at %d: %v vs %v", i, back[i], pts[i])
			}
		}
	})
}
