package geo

import (
	"fmt"
	"strings"
)

// EncodePolyline encodes a path with the Google Encoded Polyline
// Algorithm Format (precision 1e-5) — the compact route representation
// web and mobile map SDKs consume. The XAR HTTP API serves routes as
// GeoJSON; polylines are the bandwidth-friendly alternative for mobile
// clients.
func EncodePolyline(pts []Point) string {
	var sb strings.Builder
	var prevLat, prevLng int64
	for _, p := range pts {
		lat := int64(round5(p.Lat))
		lng := int64(round5(p.Lng))
		encodeSigned(&sb, lat-prevLat)
		encodeSigned(&sb, lng-prevLng)
		prevLat, prevLng = lat, lng
	}
	return sb.String()
}

func round5(deg float64) float64 {
	v := deg * 1e5
	if v >= 0 {
		return float64(int64(v + 0.5))
	}
	return float64(int64(v - 0.5))
}

func encodeSigned(sb *strings.Builder, v int64) {
	u := uint64(v) << 1
	if v < 0 {
		u = ^u
	}
	for u >= 0x20 {
		sb.WriteByte(byte(0x20|(u&0x1f)) + 63)
		u >>= 5
	}
	sb.WriteByte(byte(u) + 63)
}

// DecodePolyline is the inverse of EncodePolyline. It returns an error
// on truncated input.
func DecodePolyline(s string) ([]Point, error) {
	var pts []Point
	var lat, lng int64
	i := 0
	// A legal coordinate delta is at most 360·1e5 < 2³⁶ zigzag-encoded;
	// anything needing more chunks is corrupt (and would overflow the
	// accumulator, as the fuzzer demonstrated).
	const maxShift = 40
	next := func() (int64, error) {
		var result uint64
		var shift uint
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("geo: truncated polyline at byte %d", i)
			}
			b := uint64(s[i]) - 63
			if s[i] < 63 {
				return 0, fmt.Errorf("geo: invalid polyline byte %q at %d", s[i], i)
			}
			i++
			if shift >= maxShift {
				return 0, fmt.Errorf("geo: polyline varint overflow at byte %d", i)
			}
			result |= (b & 0x1f) << shift
			shift += 5
			if b < 0x20 {
				break
			}
		}
		v := int64(result >> 1)
		if result&1 != 0 {
			v = ^v
		}
		return v, nil
	}
	for i < len(s) {
		dLat, err := next()
		if err != nil {
			return nil, err
		}
		dLng, err := next()
		if err != nil {
			return nil, err
		}
		lat += dLat
		lng += dLng
		pts = append(pts, Point{Lat: float64(lat) / 1e5, Lng: float64(lng) / 1e5})
	}
	return pts, nil
}
