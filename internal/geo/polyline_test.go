package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// The canonical example from Google's polyline documentation.
func TestEncodePolylineGoogleExample(t *testing.T) {
	pts := []Point{
		{Lat: 38.5, Lng: -120.2},
		{Lat: 40.7, Lng: -120.95},
		{Lat: 43.252, Lng: -126.453},
	}
	want := "_p~iF~ps|U_ulLnnqC_mqNvxq`@"
	if got := EncodePolyline(pts); got != want {
		t.Fatalf("encode = %q, want %q", got, want)
	}
	back, err := DecodePolyline(want)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 {
		t.Fatalf("decoded %d points", len(back))
	}
	for i := range pts {
		if math.Abs(back[i].Lat-pts[i].Lat) > 1e-5 || math.Abs(back[i].Lng-pts[i].Lng) > 1e-5 {
			t.Fatalf("point %d: %v vs %v", i, back[i], pts[i])
		}
	}
}

func TestPolylineEmpty(t *testing.T) {
	if got := EncodePolyline(nil); got != "" {
		t.Fatalf("empty path encoded as %q", got)
	}
	pts, err := DecodePolyline("")
	if err != nil || len(pts) != 0 {
		t.Fatalf("decode empty: %v %v", pts, err)
	}
}

func TestPolylineRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		pts := make([]Point, count)
		for i := range pts {
			pts[i] = Point{
				Lat: -85 + r.Float64()*170,
				Lng: -180 + r.Float64()*360,
			}
		}
		back, err := DecodePolyline(EncodePolyline(pts))
		if err != nil || len(back) != len(pts) {
			return false
		}
		for i := range pts {
			if math.Abs(back[i].Lat-pts[i].Lat) > 1.1e-5 ||
				math.Abs(back[i].Lng-pts[i].Lng) > 1.1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodePolylineErrors(t *testing.T) {
	// A continuation byte with nothing after it.
	if _, err := DecodePolyline("_"); err == nil {
		t.Fatal("truncated polyline must error")
	}
	// A byte below the encoding range.
	if _, err := DecodePolyline("\x01\x01"); err == nil {
		t.Fatal("invalid byte must error")
	}
	// An odd number of varints (lat without lng).
	if _, err := DecodePolyline("_p~iF"); err == nil {
		t.Fatal("dangling latitude must error")
	}
	// Varint overflow (found by FuzzDecodePolyline): a run of
	// continuation bytes long enough to overflow the accumulator.
	if _, err := DecodePolyline("Aaa\xbe\xbe\xbe\xbe\xbe\xbe\xbe\xbe\xbe\xbe\xbeAAA"); err == nil {
		t.Fatal("varint overflow must error")
	}
}

func TestPolylineNegativeZeroCrossing(t *testing.T) {
	pts := []Point{{Lat: 0.00001, Lng: -0.00001}, {Lat: -0.00001, Lng: 0.00001}}
	back, err := DecodePolyline(EncodePolyline(pts))
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if math.Abs(back[i].Lat-pts[i].Lat) > 1e-5 || math.Abs(back[i].Lng-pts[i].Lng) > 1e-5 {
			t.Fatalf("point %d: %v vs %v", i, back[i], pts[i])
		}
	}
}
