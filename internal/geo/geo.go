// Package geo provides the geographic primitives that every other layer of
// the XAR system builds on: WGS-84 points, great-circle (haversine)
// distances, bearings, destination projection, and bounding boxes.
//
// All distances are expressed in meters and all angles in degrees unless a
// name says otherwise. The package is deliberately dependency-free; the
// road network, grid system and discretization layers all consume it.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used for all great-circle
// computations. The exact constant matters less than using the same one
// everywhere: grid geometry, walkable-distance thresholds and detour
// accounting must agree with each other.
const EarthRadiusMeters = 6371000.0

// Point is a WGS-84 coordinate. Lat is latitude in degrees in [-90, 90],
// Lng is longitude in degrees in [-180, 180].
type Point struct {
	Lat float64
	Lng float64
}

// String renders the point as "lat,lng" with six decimal places (about
// 0.1 m of precision), the conventional interchange format.
func (p Point) String() string {
	return fmt.Sprintf("%.6f,%.6f", p.Lat, p.Lng)
}

// Valid reports whether the point lies in the legal WGS-84 ranges and has
// finite coordinates.
func (p Point) Valid() bool {
	if math.IsNaN(p.Lat) || math.IsNaN(p.Lng) || math.IsInf(p.Lat, 0) || math.IsInf(p.Lng, 0) {
		return false
	}
	return p.Lat >= -90 && p.Lat <= 90 && p.Lng >= -180 && p.Lng <= 180
}

func radians(deg float64) float64 { return deg * math.Pi / 180 }
func degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Haversine returns the great-circle distance between a and b in meters.
// It is the walking-distance metric of the XAR system and the admissible
// heuristic of the road-network A* search.
func Haversine(a, b Point) float64 {
	lat1 := radians(a.Lat)
	lat2 := radians(b.Lat)
	dLat := radians(b.Lat - a.Lat)
	dLng := radians(b.Lng - a.Lng)

	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLng / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// Bearing returns the initial great-circle bearing from a to b in degrees
// in [0, 360).
func Bearing(a, b Point) float64 {
	lat1 := radians(a.Lat)
	lat2 := radians(b.Lat)
	dLng := radians(b.Lng - a.Lng)

	y := math.Sin(dLng) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLng)
	brng := degrees(math.Atan2(y, x))
	if brng < 0 {
		brng += 360
	}
	return brng
}

// Destination returns the point reached by travelling distMeters from p
// along the given initial bearing (degrees). It is the inverse of
// Haversine+Bearing and is used by the synthetic city generator to lay out
// road geometry.
func Destination(p Point, bearingDeg, distMeters float64) Point {
	lat1 := radians(p.Lat)
	lng1 := radians(p.Lng)
	brng := radians(bearingDeg)
	d := distMeters / EarthRadiusMeters

	lat2 := math.Asin(math.Sin(lat1)*math.Cos(d) + math.Cos(lat1)*math.Sin(d)*math.Cos(brng))
	lng2 := lng1 + math.Atan2(
		math.Sin(brng)*math.Sin(d)*math.Cos(lat1),
		math.Cos(d)-math.Sin(lat1)*math.Sin(lat2),
	)
	// Normalize longitude to [-180, 180).
	lng2 = math.Mod(lng2+3*math.Pi, 2*math.Pi) - math.Pi
	return Point{Lat: degrees(lat2), Lng: degrees(lng2)}
}

// Midpoint returns the great-circle midpoint of a and b. For the city
// scales XAR works at (tens of km), the planar midpoint would do, but the
// exact formula costs little.
func Midpoint(a, b Point) Point {
	lat1 := radians(a.Lat)
	lng1 := radians(a.Lng)
	lat2 := radians(b.Lat)
	dLng := radians(b.Lng - a.Lng)

	bx := math.Cos(lat2) * math.Cos(dLng)
	by := math.Cos(lat2) * math.Sin(dLng)
	lat3 := math.Atan2(
		math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by),
	)
	lng3 := lng1 + math.Atan2(by, math.Cos(lat1)+bx)
	lng3 = math.Mod(lng3+3*math.Pi, 2*math.Pi) - math.Pi
	return Point{Lat: degrees(lat3), Lng: degrees(lng3)}
}

// MetersPerDegreeLat is the (latitude-independent, to first order) length
// of one degree of latitude.
func MetersPerDegreeLat() float64 {
	return 2 * math.Pi * EarthRadiusMeters / 360
}

// MetersPerDegreeLng returns the length of one degree of longitude at the
// given latitude. It shrinks toward the poles; grid geometry uses it to
// keep cells approximately square in meters.
func MetersPerDegreeLng(lat float64) float64 {
	return MetersPerDegreeLat() * math.Cos(radians(lat))
}

// BBox is an axis-aligned bounding box in degree space. MinLat <= MaxLat
// and MinLng <= MaxLng; boxes never wrap the antimeridian (city-scale use).
type BBox struct {
	MinLat, MinLng, MaxLat, MaxLng float64
}

// NewBBox returns the smallest box containing all the given points.
// It panics if pts is empty: an empty bounding box has no meaning for the
// callers (region discretization over a known city).
func NewBBox(pts ...Point) BBox {
	if len(pts) == 0 {
		panic("geo: NewBBox requires at least one point")
	}
	b := BBox{
		MinLat: pts[0].Lat, MaxLat: pts[0].Lat,
		MinLng: pts[0].Lng, MaxLng: pts[0].Lng,
	}
	for _, p := range pts[1:] {
		b = b.Extend(p)
	}
	return b
}

// Extend returns the box grown to contain p.
func (b BBox) Extend(p Point) BBox {
	if p.Lat < b.MinLat {
		b.MinLat = p.Lat
	}
	if p.Lat > b.MaxLat {
		b.MaxLat = p.Lat
	}
	if p.Lng < b.MinLng {
		b.MinLng = p.Lng
	}
	if p.Lng > b.MaxLng {
		b.MaxLng = p.Lng
	}
	return b
}

// Contains reports whether p lies inside the box (inclusive).
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lng >= b.MinLng && p.Lng <= b.MaxLng
}

// Center returns the box's center point.
func (b BBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lng: (b.MinLng + b.MaxLng) / 2}
}

// Pad returns the box grown by meters on every side.
func (b BBox) Pad(meters float64) BBox {
	dLat := meters / MetersPerDegreeLat()
	lat := math.Max(math.Abs(b.MinLat), math.Abs(b.MaxLat))
	dLng := meters / MetersPerDegreeLng(lat)
	return BBox{
		MinLat: b.MinLat - dLat,
		MaxLat: b.MaxLat + dLat,
		MinLng: b.MinLng - dLng,
		MaxLng: b.MaxLng + dLng,
	}
}

// WidthMeters returns the east–west extent measured at the box's central
// latitude.
func (b BBox) WidthMeters() float64 {
	return (b.MaxLng - b.MinLng) * MetersPerDegreeLng((b.MinLat+b.MaxLat)/2)
}

// HeightMeters returns the north–south extent.
func (b BBox) HeightMeters() float64 {
	return (b.MaxLat - b.MinLat) * MetersPerDegreeLat()
}

// PathLength returns the summed haversine length of the polyline through
// pts, in meters. Zero or one point yields 0.
func PathLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += Haversine(pts[i-1], pts[i])
	}
	return total
}
