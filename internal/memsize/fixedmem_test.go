package memsize_test

import (
	"context"
	"fmt"
	"testing"

	"xar/internal/journal"
	"xar/internal/memsize"
	"xar/internal/telemetry"
)

// These tests turn the observability arc's "fixed memory" claims into
// measured numbers: the journal's event rings (PR "ride-lifecycle event
// journal") and the tracer's ring store (PR "request-scoped tracing")
// both promise bounded growth no matter how much traffic flows through
// them. memsize.Of is the measuring stick — the same deep-size walker
// the scale frontier uses for rides-per-GB.

// fillJournal records n events spread over rides.
func fillJournal(j *journal.Journal, rides, eventsPerRide int, base int64) {
	for r := 0; r < rides; r++ {
		id := base + int64(r)
		j.Record(journal.Event{Type: journal.Created, Ride: id, Value: 2000})
		for e := 1; e < eventsPerRide; e++ {
			j.Record(journal.Event{Type: journal.SearchCandidate, Ride: id, Note: "probe"})
		}
	}
}

func TestJournalRingsFixedMemory(t *testing.T) {
	cfg := journal.Config{
		PerRideCapacity: 16,
		MaxRides:        256,
		TailCapacity:    512,
		Stripes:         4,
	}
	j := journal.New(cfg)

	// Saturate every bound: more rides than MaxRides, more events per
	// ride than PerRideCapacity.
	fillJournal(j, 2*cfg.MaxRides, 2*cfg.PerRideCapacity, 0)
	sizeFull := memsize.Of(j)
	if sizeFull == 0 {
		t.Fatal("journal measured at zero bytes")
	}

	// Double the traffic again: rings must recycle, not grow. A small
	// tolerance absorbs map-bucket jitter from eviction churn.
	fillJournal(j, 2*cfg.MaxRides, 2*cfg.PerRideCapacity, 1<<20)
	sizeMore := memsize.Of(j)
	if limit := sizeFull + sizeFull/10; sizeMore > limit {
		t.Fatalf("journal grew past its rings: %d → %d bytes (limit %d)", sizeFull, sizeMore, limit)
	}

	// Sanity: the bound is the configured capacity, not an accident of a
	// tiny instance — a journal with double the capacity is measurably
	// larger at saturation.
	big := journal.New(journal.Config{
		PerRideCapacity: 2 * cfg.PerRideCapacity,
		MaxRides:        2 * cfg.MaxRides,
		TailCapacity:    2 * cfg.TailCapacity,
		Stripes:         4,
	})
	fillJournal(big, 4*cfg.MaxRides, 4*cfg.PerRideCapacity, 0)
	if bigSize := memsize.Of(big); bigSize < sizeFull+sizeFull/4 {
		t.Fatalf("double-capacity journal not measurably larger: %d vs %d", bigSize, sizeFull)
	}

	st := j.Stats()
	if st.Rides > cfg.MaxRides {
		t.Fatalf("journal retains %d rides, cap %d", st.Rides, cfg.MaxRides)
	}
}

// fillTraces records n root spans (every one sampled) through a tracer.
func fillTraces(tr *telemetry.Tracer, n int, tag string) {
	for i := 0; i < n; i++ {
		ctx, root := tr.StartSpan(context.Background(), "/v1/search")
		_, child := tr.StartSpan(ctx, "search")
		child.SetStr("probe", fmt.Sprintf("%s-%d", tag, i))
		child.End()
		root.End()
	}
}

func TestTraceRingStoreFixedMemory(t *testing.T) {
	tr := telemetry.NewTracer(telemetry.TracerConfig{SampleRate: 1, Capacity: 256, Stripes: 4})
	store := tr.Store()

	fillTraces(tr, 1024, "warm")
	sizeFull := memsize.Of(store)
	if sizeFull == 0 {
		t.Fatal("trace store measured at zero bytes")
	}

	fillTraces(tr, 4096, "flood")
	sizeMore := memsize.Of(store)
	if limit := sizeFull + sizeFull/10; sizeMore > limit {
		t.Fatalf("trace store grew past its rings: %d → %d bytes (limit %d)", sizeFull, sizeMore, limit)
	}

	// Capacity is the knob: a double-size store is measurably larger.
	bigTr := telemetry.NewTracer(telemetry.TracerConfig{SampleRate: 1, Capacity: 512, Stripes: 4})
	fillTraces(bigTr, 2048, "big")
	if bigSize := memsize.Of(bigTr.Store()); bigSize < sizeFull+sizeFull/4 {
		t.Fatalf("double-capacity store not measurably larger: %d vs %d", bigSize, sizeFull)
	}
}
