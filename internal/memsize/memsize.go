// Package memsize estimates the deep (retained) size of in-memory data
// structures by reflection. It is the reproduction's substitute for the
// Classmexer Java instrumentation agent the paper uses to measure the
// size of the XAR in-memory index (Figure 3c).
//
// The walker counts each distinct heap object once (pointer-identity
// de-duplication), adds slice/map/string header and backing-store costs,
// and approximates map bucket overhead. Absolute numbers are estimates —
// Go's allocator rounds size classes — but they are consistent across
// configurations, which is what the memory-vs-cluster-count experiment
// needs.
package memsize

import (
	"reflect"
)

// Of returns the estimated deep size of v in bytes, including everything
// reachable from it. Shared objects reachable through several paths are
// counted once.
func Of(v interface{}) uint64 {
	if v == nil {
		return 0
	}
	w := newWalker()
	rv := reflect.ValueOf(v)
	// Top-level value: count its own footprint plus referents.
	return uint64(rv.Type().Size()) + w.referents(rv)
}

// Accumulator is a reusable deep-size walker: successive Add calls share
// one pointer-identity set, so an object reachable from two additions is
// counted exactly once — by whichever Add reached it first. The
// component-accounting Registry sweeps every registered Measurer through
// a single Accumulator, which is what makes the per-component byte
// totals non-overlapping ("first owner wins") and their sum meaningful.
type Accumulator struct {
	w     *walker
	total uint64
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{w: newWalker()}
}

// Add deep-walks v and adds its not-yet-seen bytes (including v's own
// inline footprint) to the running total.
func (a *Accumulator) Add(v interface{}) {
	if v == nil {
		return
	}
	rv := reflect.ValueOf(v)
	a.total += uint64(rv.Type().Size()) + a.w.referents(rv)
}

// AddBytes adds n structurally-accounted bytes (for components that
// compute parts of their footprint arithmetically instead of by
// reflection, e.g. lock-free structures that must not be walked live).
func (a *Accumulator) AddBytes(n uint64) { a.total += n }

// Total returns the bytes accumulated so far.
func (a *Accumulator) Total() uint64 { return a.total }

type walker struct {
	seen map[uintptr]struct{}
	// leafType caches, per type, whether the walker can learn nothing
	// from a value of that type beyond its inline size (no pointers,
	// slices, maps, strings, or interfaces anywhere inside). Large
	// scalar backing arrays — distance tables, ETA slices, ring
	// buffers — are then counted from the slice header alone instead
	// of one reflect call per element.
	leafType map[reflect.Type]bool
}

func newWalker() *walker {
	return &walker{
		seen:     make(map[uintptr]struct{}),
		leafType: make(map[reflect.Type]bool),
	}
}

// leaf reports whether values of type t have no referents the walker
// counts: walking such a value adds nothing beyond its inline size.
func (w *walker) leaf(t reflect.Type) bool {
	if v, ok := w.leafType[t]; ok {
		return v
	}
	// Tentatively mark true to terminate on recursive types; a struct
	// can only recurse through a pointer, which forces false below.
	w.leafType[t] = true
	v := w.leafKind(t)
	w.leafType[t] = v
	return v
}

func (w *walker) leafKind(t reflect.Type) bool {
	switch t.Kind() {
	case reflect.Ptr, reflect.Slice, reflect.Map, reflect.String, reflect.Interface:
		return false
	case reflect.Chan, reflect.Func, reflect.UnsafePointer:
		return true // opaque: the walker counts the header only
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !w.leaf(t.Field(i).Type) {
				return false
			}
		}
		return true
	case reflect.Array:
		return w.leaf(t.Elem())
	default:
		return true // scalar kinds
	}
}

// mark records a heap address; it reports false if the address was
// already counted.
func (w *walker) mark(p uintptr) bool {
	if p == 0 {
		return false
	}
	if _, ok := w.seen[p]; ok {
		return false
	}
	w.seen[p] = struct{}{}
	return true
}

// referents returns the size of everything v points at, excluding v's own
// inline footprint (which the caller has accounted for).
func (w *walker) referents(v reflect.Value) uint64 {
	switch v.Kind() {
	case reflect.Ptr:
		if v.IsNil() {
			return 0
		}
		if !w.mark(v.Pointer()) {
			return 0
		}
		elem := v.Elem()
		return uint64(elem.Type().Size()) + w.referents(elem)

	case reflect.Slice:
		if v.IsNil() {
			return 0
		}
		elemSize := uint64(v.Type().Elem().Size())
		n := uint64(0)
		if w.mark(v.Pointer()) {
			// Backing array: capacity, not length, is what is retained.
			n += uint64(v.Cap()) * elemSize
		}
		if w.leaf(v.Type().Elem()) {
			return n // scalar backing array: nothing to walk per element
		}
		for i := 0; i < v.Len(); i++ {
			n += w.referents(v.Index(i))
		}
		return n

	case reflect.String:
		// Strings may share backing arrays; counting bytes per reference
		// slightly overestimates, which is acceptable for the index
		// measurement (it stores almost no strings).
		return uint64(v.Len())

	case reflect.Map:
		if v.IsNil() {
			return 0
		}
		if !w.mark(v.Pointer()) {
			return 0
		}
		keySize := uint64(v.Type().Key().Size())
		valSize := uint64(v.Type().Elem().Size())
		n := uint64(48) // hmap header approximation
		iter := v.MapRange()
		for iter.Next() {
			// Bucket slot + referents for key and value.
			n += keySize + valSize
			n += w.referents(iter.Key())
			n += w.referents(iter.Value())
		}
		// Bucket overhead: Go maps allocate ~2x slots plus tophash bytes.
		n += uint64(v.Len()) * (keySize + valSize + 2) / 2
		return n

	case reflect.Struct:
		var n uint64
		for i := 0; i < v.NumField(); i++ {
			n += w.referents(v.Field(i))
		}
		return n

	case reflect.Array:
		if w.leaf(v.Type().Elem()) {
			return 0
		}
		var n uint64
		for i := 0; i < v.Len(); i++ {
			n += w.referents(v.Index(i))
		}
		return n

	case reflect.Interface:
		if v.IsNil() {
			return 0
		}
		elem := v.Elem()
		// Interface data word points at the boxed value.
		return uint64(elem.Type().Size()) + w.referents(elem)

	case reflect.Chan, reflect.Func, reflect.UnsafePointer:
		return 0 // opaque; count the header only

	default:
		return 0 // scalar kinds have no referents
	}
}

// Report pairs a label with a measured size for table output.
type Report struct {
	Label string
	Bytes uint64
}

// MB converts the measurement to megabytes.
func (r Report) MB() float64 { return float64(r.Bytes) / (1 << 20) }

// GB converts the measurement to gigabytes.
func (r Report) GB() float64 { return float64(r.Bytes) / (1 << 30) }

// Measure is a convenience constructor: Measure("index", idx).
func Measure(label string, v interface{}) Report {
	return Report{Label: label, Bytes: Of(v)}
}
