package memsize

import (
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Allocation-site attribution: the component registry answers "who owns
// the retained bytes"; this profiler answers "which code allocated
// them, and which code is allocating right now". It reads the runtime's
// sampled heap profile directly (runtime.MemProfile — the same records
// pprof.Lookup("heap") serializes), attributes each record to the
// innermost xar/ frame of its stack, unsamples the values the way pprof
// does, and aggregates by site and by subsystem (package path prefix).
// Successive Profile calls additionally report per-site allocation
// deltas — the "hot allocation sites" view that tells the compaction
// work where churn comes from, not just where bytes sit.

// Site is one aggregated allocation site.
type Site struct {
	// Func is the attributed function (the innermost frame under the
	// xar/ module; the raw leaf frame when no xar frame is present).
	Func string `json:"func"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	// Subsystem is Func's package path (e.g. "xar/internal/index").
	Subsystem string `json:"subsystem"`
	// InUseBytes/InUseObjects are live-heap values, unsampled.
	InUseBytes   uint64 `json:"inuse_bytes"`
	InUseObjects uint64 `json:"inuse_objects"`
	// AllocBytes is cumulative since process start; AllocBytesDelta is
	// the growth since the previous Profile call on this profiler —
	// churn, whether or not the allocations are still live.
	AllocBytes      uint64 `json:"alloc_bytes"`
	AllocBytesDelta uint64 `json:"alloc_bytes_delta"`
}

// SubsystemAlloc aggregates sites by package path.
type SubsystemAlloc struct {
	Subsystem       string `json:"subsystem"`
	InUseBytes      uint64 `json:"inuse_bytes"`
	AllocBytesDelta uint64 `json:"alloc_bytes_delta"`
}

// DefaultTopKSites bounds the per-site list a Profile call returns.
const DefaultTopKSites = 20

// SiteProfiler aggregates heap-profile records into top-K allocation
// sites with delta tracking across calls. The zero value is ready to
// use. Safe for concurrent use (calls serialize on an internal mutex).
type SiteProfiler struct {
	// TopK bounds the site list (0 → DefaultTopKSites). Subsystem
	// aggregates always cover every record, not just the top K.
	TopK int

	mu        sync.Mutex
	prevAlloc map[string]uint64 // site func → cumulative alloc bytes
}

// Profile reads the current heap profile and returns the top-K sites
// (by in-use bytes, allocation churn as tie-break) plus the complete
// per-subsystem aggregation. Values are zero-length when heap profiling
// is disabled (runtime.MemProfileRate == 0).
func (p *SiteProfiler) Profile() ([]Site, []SubsystemAlloc) {
	if runtime.MemProfileRate == 0 {
		return nil, nil
	}
	records := readMemProfile()
	if records == nil {
		return nil, nil
	}

	p.mu.Lock()
	defer p.mu.Unlock()

	sites := make(map[string]*Site)
	for i := range records {
		r := &records[i]
		fr, ok := attributionFrame(r.Stack())
		if !ok {
			continue
		}
		s := sites[fr.Function]
		if s == nil {
			s = &Site{
				Func:      fr.Function,
				File:      fr.File,
				Line:      fr.Line,
				Subsystem: subsystemOf(fr.Function),
			}
			sites[fr.Function] = s
		}
		inB, inO := unsample(r.InUseBytes(), r.InUseObjects())
		alB, _ := unsample(r.AllocBytes, r.AllocObjects)
		s.InUseBytes += inB
		s.InUseObjects += inO
		s.AllocBytes += alB
	}

	// Deltas against the previous call; the previous map keeps every
	// site (not just the returned top K) so deltas never re-count.
	next := make(map[string]uint64, len(sites))
	for fn, s := range sites {
		next[fn] = s.AllocBytes
		if prev, ok := p.prevAlloc[fn]; ok && s.AllocBytes >= prev {
			s.AllocBytesDelta = s.AllocBytes - prev
		} else if !ok {
			s.AllocBytesDelta = s.AllocBytes
		}
	}
	first := p.prevAlloc == nil
	p.prevAlloc = next

	subs := make(map[string]*SubsystemAlloc)
	out := make([]Site, 0, len(sites))
	for _, s := range sites {
		sub := subs[s.Subsystem]
		if sub == nil {
			sub = &SubsystemAlloc{Subsystem: s.Subsystem}
			subs[s.Subsystem] = sub
		}
		sub.InUseBytes += s.InUseBytes
		if !first {
			sub.AllocBytesDelta += s.AllocBytesDelta
		}
		if first {
			// The first profile has no baseline: deltas would just echo
			// cumulative totals, so report them as zero.
			s.AllocBytesDelta = 0
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].InUseBytes != out[j].InUseBytes {
			return out[i].InUseBytes > out[j].InUseBytes
		}
		if out[i].AllocBytesDelta != out[j].AllocBytesDelta {
			return out[i].AllocBytesDelta > out[j].AllocBytesDelta
		}
		return out[i].Func < out[j].Func
	})
	k := p.TopK
	if k <= 0 {
		k = DefaultTopKSites
	}
	if len(out) > k {
		out = out[:k]
	}

	subOut := make([]SubsystemAlloc, 0, len(subs))
	for _, s := range subs {
		subOut = append(subOut, *s)
	}
	sort.Slice(subOut, func(i, j int) bool {
		if subOut[i].InUseBytes != subOut[j].InUseBytes {
			return subOut[i].InUseBytes > subOut[j].InUseBytes
		}
		return subOut[i].Subsystem < subOut[j].Subsystem
	})
	return out, subOut
}

// readMemProfile fetches the full record set, growing the buffer until
// the runtime reports a complete copy (the documented retry protocol).
func readMemProfile() []runtime.MemProfileRecord {
	n, _ := runtime.MemProfile(nil, true)
	for {
		records := make([]runtime.MemProfileRecord, n+64)
		var ok bool
		n, ok = runtime.MemProfile(records, true)
		if ok {
			return records[:n]
		}
	}
}

// attributionFrame picks the frame a record is charged to: the
// innermost frame inside this module (skipping memsize itself, which
// only measures), falling back to the raw leaf frame.
func attributionFrame(stack []uintptr) (runtime.Frame, bool) {
	if len(stack) == 0 {
		return runtime.Frame{}, false
	}
	frames := runtime.CallersFrames(stack)
	var leaf runtime.Frame
	haveLeaf := false
	for {
		fr, more := frames.Next()
		if fr.Function != "" {
			if !haveLeaf {
				leaf, haveLeaf = fr, true
			}
			if strings.HasPrefix(fr.Function, "xar/") &&
				!strings.HasPrefix(fr.Function, "xar/internal/memsize") {
				return fr, true
			}
		}
		if !more {
			break
		}
	}
	return leaf, haveLeaf
}

// subsystemOf extracts the package path from a fully qualified function
// name ("xar/internal/index.(*Index).Insert" → "xar/internal/index").
func subsystemOf(fn string) string {
	slash := strings.LastIndex(fn, "/")
	dot := strings.Index(fn[slash+1:], ".")
	if dot < 0 {
		return fn
	}
	return fn[:slash+1+dot]
}

// unsample scales a sampled heap-profile value to an estimate of the
// true total, the same per-record correction pprof applies: with
// sampling rate r and mean object size s, a record's expected sampling
// probability is 1-exp(-s/r).
func unsample(bytes, objects int64) (uint64, uint64) {
	if bytes <= 0 || objects <= 0 {
		return 0, 0
	}
	rate := int64(runtime.MemProfileRate)
	if rate <= 1 {
		return uint64(bytes), uint64(objects)
	}
	avg := float64(bytes) / float64(objects)
	p := 1 - math.Exp(-avg/float64(rate))
	if p <= 0 {
		return uint64(bytes), uint64(objects)
	}
	return uint64(float64(bytes) / p), uint64(float64(objects) / p)
}
