package memsize_test

import (
	"runtime"
	"testing"

	"xar/internal/journal"
	"xar/internal/memsize"
)

// TestAccumulatorDeduplicates: two additions that share a backing array
// count it once — the property "first owner wins" attribution rests on.
func TestAccumulatorDeduplicates(t *testing.T) {
	type node struct{ data []byte }
	shared := make([]byte, 1<<16)

	a := memsize.NewAccumulator()
	a.Add(&node{data: shared})
	first := a.Total()
	if first < 1<<16 {
		t.Fatalf("first add counted %d bytes, want >= %d (the backing array)", first, 1<<16)
	}
	a.Add(&node{data: shared})
	second := a.Total() - first
	if second > first/10 {
		t.Fatalf("second add re-counted shared bytes: %d (first was %d)", second, first)
	}
}

func TestAccumulatorAddBytes(t *testing.T) {
	a := memsize.NewAccumulator()
	a.AddBytes(1234)
	a.AddBytes(766)
	if got := a.Total(); got != 2000 {
		t.Fatalf("Total = %d, want 2000", got)
	}
}

// TestRegistryAttributionOrder: a structure reachable from two
// components is charged to the earlier-registered one; the later one
// reports only its uniquely-owned bytes.
func TestRegistryAttributionOrder(t *testing.T) {
	shared := make([]int64, 1<<15) // 256 KiB backing array

	reg := memsize.NewRegistry()
	reg.RegisterFunc("owner", func(a *memsize.Accumulator) { a.Add(shared) })
	reg.RegisterFunc("borrower", func(a *memsize.Accumulator) { a.Add(shared) })

	sw := reg.Sweep()
	owner, borrower := sw.Component("owner"), sw.Component("borrower")
	if owner < 1<<18 {
		t.Fatalf("owner charged %d bytes, want >= %d", owner, 1<<18)
	}
	if borrower > owner/100 {
		t.Fatalf("borrower charged %d bytes for shared data owned elsewhere (owner %d)", borrower, owner)
	}
	var sum uint64
	for _, c := range sw.Components {
		sum += c.Bytes
	}
	if sum != sw.TotalBytes {
		t.Fatalf("component sum %d != TotalBytes %d", sum, sw.TotalBytes)
	}
	if sw.Unix <= 0 || sw.DurationSeconds < 0 {
		t.Fatalf("sweep metadata: unix %f, duration %f", sw.Unix, sw.DurationSeconds)
	}
}

// TestRegistryReplaceOnName: re-registering a name swaps the Measurer in
// place, keeping the original attribution order.
func TestRegistryReplaceOnName(t *testing.T) {
	reg := memsize.NewRegistry()
	reg.RegisterFunc("a", func(acc *memsize.Accumulator) { acc.AddBytes(100) })
	reg.RegisterFunc("b", func(acc *memsize.Accumulator) { acc.AddBytes(50) })
	reg.RegisterFunc("a", func(acc *memsize.Accumulator) { acc.AddBytes(200) })

	names := reg.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v, want [a b]", names)
	}
	sw := reg.Sweep()
	if got := sw.Component("a"); got != 200 {
		t.Fatalf("replaced component a = %d bytes, want 200", got)
	}
	if got := sw.Component("b"); got != 50 {
		t.Fatalf("component b = %d bytes, want 50", got)
	}
	if got := sw.Component("missing"); got != 0 {
		t.Fatalf("missing component = %d bytes, want 0", got)
	}
	// nil Measurers are ignored, not registered.
	reg.Register("nil", nil)
	if names := reg.Names(); len(names) != 2 {
		t.Fatalf("nil Measurer registered: %v", names)
	}
}

// TestMeasurerMatchesDeepWalk: a component's MeasureMem view should land
// in the same ballpark as the quiescent memsize.Of deep walk — the
// Measurer takes locks and skips struct shells, but on a ring-dominated
// journal the two must agree within 2x either way.
func TestMeasurerMatchesDeepWalk(t *testing.T) {
	j := journal.New(journal.Config{
		PerRideCapacity: 16,
		MaxRides:        256,
		TailCapacity:    512,
		Stripes:         4,
	})
	fillJournal(j, 512, 32, 0)

	a := memsize.NewAccumulator()
	j.MeasureMem(a)
	measured := a.Total()
	deep := memsize.Of(j)
	if measured == 0 || deep == 0 {
		t.Fatalf("zero measurement: MeasureMem %d, Of %d", measured, deep)
	}
	if measured > 2*deep || deep > 2*measured {
		t.Fatalf("MeasureMem %d bytes vs deep walk %d bytes: more than 2x apart", measured, deep)
	}
}

// TestSiteProfiler: the heap profiler attributes a large retained
// allocation made inside an xar package to that package's subsystem, and
// first-call deltas are reported as zero (no baseline).
func TestSiteProfiler(t *testing.T) {
	if runtime.MemProfileRate == 0 {
		t.Skip("heap profiling disabled")
	}
	// One ~24 MB tail-ring allocation inside journal.New: far beyond the
	// default 512 KiB sampling rate, so the profile records it with
	// near-certainty and attribution must land on xar/internal/journal.
	big := journal.New(journal.Config{TailCapacity: 1 << 18, Stripes: 1})
	// Heap-profile records publish at GC boundaries; two cycles flush the
	// allocation above into the snapshot MemProfile reads.
	runtime.GC()
	runtime.GC()

	var p memsize.SiteProfiler
	sites, subs := p.Profile()
	if len(sites) == 0 || len(subs) == 0 {
		t.Fatal("empty profile")
	}
	var journalInUse uint64
	for _, s := range subs {
		if s.Subsystem == "xar/internal/journal" {
			journalInUse = s.InUseBytes
		}
	}
	if journalInUse == 0 {
		t.Fatalf("journal subsystem absent from profile: %+v", subs)
	}
	for _, s := range sites {
		if s.AllocBytesDelta != 0 {
			t.Fatalf("first profile reported a nonzero delta: %+v", s)
		}
		if s.Subsystem == "" || s.Func == "" {
			t.Fatalf("site missing attribution: %+v", s)
		}
	}

	// Second call has a baseline: deltas are defined (>= 0 by
	// construction) and the site list stays bounded by TopK.
	p.TopK = 5
	sites, _ = p.Profile()
	if len(sites) > 5 {
		t.Fatalf("TopK=5 returned %d sites", len(sites))
	}
	runtime.KeepAlive(big)
}
