package memsize

import (
	"sync"
	"time"
)

// Measurer is implemented by every memory-owning component that
// participates in live accounting. MeasureMem walks the component's
// retained structures into the accumulator; the implementation owns its
// synchronization — it takes whatever locks make the walk safe against
// concurrent mutation (per-shard read locks, ring mutexes), or walks
// nothing mutable at all for immutable structures.
//
// Implementations must tolerate being called on a shared Accumulator:
// structures another component already walked in the same sweep are
// de-duplicated by pointer identity, so a component that merely points
// at shared data (the index at the discretization, the discretization
// at the road graph) reports only its uniquely-owned bytes when the
// shared owner is registered first.
type Measurer interface {
	MeasureMem(a *Accumulator)
}

// MeasurerFunc adapts a function to the Measurer interface.
type MeasurerFunc func(a *Accumulator)

// MeasureMem calls f.
func (f MeasurerFunc) MeasureMem(a *Accumulator) { f(a) }

// Registry is the component-accounting registry: named Measurers,
// swept together through one shared Accumulator so shared structures
// are attributed to exactly one component (the one registered first).
// Safe for concurrent Register/Sweep use.
type Registry struct {
	mu    sync.Mutex
	comps []component
}

type component struct {
	name string
	m    Measurer
}

// NewRegistry returns an empty component registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds (or, for an existing name, replaces) a component.
// Registration order is attribution order: during a sweep, bytes
// reachable from several components are charged to the earliest-
// registered one. Register shared substrates (road graph, landmark
// tables) before the structures that point at them (index).
func (r *Registry) Register(name string, m Measurer) {
	if m == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.comps {
		if r.comps[i].name == name {
			r.comps[i].m = m
			return
		}
	}
	r.comps = append(r.comps, component{name: name, m: m})
}

// RegisterFunc is Register with a bare function.
func (r *Registry) RegisterFunc(name string, f func(*Accumulator)) {
	r.Register(name, MeasurerFunc(f))
}

// Names returns the registered component names in attribution order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.comps))
	for i, c := range r.comps {
		out[i] = c.name
	}
	return out
}

// ComponentBytes is one component's share of a sweep.
type ComponentBytes struct {
	Name  string `json:"name"`
	Bytes uint64 `json:"bytes"`
}

// Sweep is the result of one full measurement pass.
type Sweep struct {
	// Unix is the wall time the sweep started, seconds since epoch.
	Unix float64 `json:"unix"`
	// DurationSeconds is how long the component walk took.
	DurationSeconds float64 `json:"duration_seconds"`
	// Components holds the per-component byte shares, in attribution
	// order. Shares are non-overlapping: shared structures count once,
	// in the earliest-registered component that reaches them.
	Components []ComponentBytes `json:"components"`
	// TotalBytes is the sum of the shares — the registry's estimate of
	// all tracked retained memory.
	TotalBytes uint64 `json:"total_bytes"`
}

// Component returns the named component's bytes (0 if absent).
func (s Sweep) Component(name string) uint64 {
	for _, c := range s.Components {
		if c.Name == name {
			return c.Bytes
		}
	}
	return 0
}

// Sweep measures every registered component through one shared
// accumulator and returns the per-component byte shares. Component
// Measurers take their own locks, one component at a time — the
// registry never holds more than its own mutex, and releases that
// before any measurement runs.
func (r *Registry) Sweep() Sweep {
	r.mu.Lock()
	comps := make([]component, len(r.comps))
	copy(comps, r.comps)
	r.mu.Unlock()

	start := time.Now()
	sw := Sweep{
		Unix:       float64(start.UnixNano()) / 1e9,
		Components: make([]ComponentBytes, 0, len(comps)),
	}
	acc := NewAccumulator()
	for _, c := range comps {
		before := acc.Total()
		c.m.MeasureMem(acc)
		sw.Components = append(sw.Components, ComponentBytes{
			Name:  c.name,
			Bytes: acc.Total() - before,
		})
	}
	sw.TotalBytes = acc.Total()
	sw.DurationSeconds = time.Since(start).Seconds()
	return sw
}
