package memsize

import (
	"testing"
)

func TestNil(t *testing.T) {
	if got := Of(nil); got != 0 {
		t.Fatalf("Of(nil) = %d, want 0", got)
	}
}

func TestScalar(t *testing.T) {
	if got := Of(int64(7)); got != 8 {
		t.Fatalf("Of(int64) = %d, want 8", got)
	}
	if got := Of(float64(1.5)); got != 8 {
		t.Fatalf("Of(float64) = %d, want 8", got)
	}
}

func TestSliceCountsBackingArray(t *testing.T) {
	s := make([]int64, 100)
	got := Of(s)
	// Header (24) + 100*8 backing.
	if got < 800 || got > 900 {
		t.Fatalf("Of([]int64 x100) = %d, want ~824", got)
	}
	// Capacity, not length, is retained.
	s2 := make([]int64, 1, 1000)
	if Of(s2) < 8000 {
		t.Fatalf("capacity must be counted: %d", Of(s2))
	}
}

func TestSliceGrowsLinearly(t *testing.T) {
	small := Of(make([]int64, 1000))
	big := Of(make([]int64, 10000))
	ratio := float64(big) / float64(small)
	if ratio < 9 || ratio > 11 {
		t.Fatalf("10x slice should be ~10x bytes, ratio %.2f", ratio)
	}
}

func TestSharedPointerCountedOnce(t *testing.T) {
	shared := make([]int64, 1000)
	type holder struct{ A, B []int64 }
	h := holder{A: shared, B: shared}
	one := Of(holder{A: shared})
	both := Of(h)
	// The second reference adds only a header (24 bytes), not the array.
	if both > one+100 {
		t.Fatalf("shared backing array double-counted: one=%d both=%d", one, both)
	}
}

func TestPointerCycleTerminates(t *testing.T) {
	type node struct {
		Next *node
		Val  [64]byte
	}
	a := &node{}
	b := &node{Next: a}
	a.Next = b
	got := Of(a) // must not hang
	if got < 128 {
		t.Fatalf("cycle of two nodes measured as %d bytes", got)
	}
}

func TestMapScalesWithEntries(t *testing.T) {
	small := map[int64]int64{}
	for i := int64(0); i < 100; i++ {
		small[i] = i
	}
	big := map[int64]int64{}
	for i := int64(0); i < 10000; i++ {
		big[i] = i
	}
	ratio := float64(Of(big)) / float64(Of(small))
	if ratio < 50 || ratio > 200 {
		t.Fatalf("100x map entries should be ~100x bytes, ratio %.1f", ratio)
	}
}

func TestNestedStruct(t *testing.T) {
	type inner struct {
		Data []float64
	}
	type outer struct {
		Items []inner
		Index map[int32][]int32
	}
	o := outer{Index: map[int32][]int32{}}
	for i := 0; i < 50; i++ {
		o.Items = append(o.Items, inner{Data: make([]float64, 100)})
		o.Index[int32(i)] = make([]int32, 20)
	}
	got := Of(o)
	// 50*100*8 floats = 40000, 50*20*4 ints = 4000, plus headers.
	if got < 44000 || got > 70000 {
		t.Fatalf("nested struct measured as %d bytes, want ~48k-60k", got)
	}
}

func TestString(t *testing.T) {
	if got := Of("hello"); got < 5+16 || got > 5+24 {
		t.Fatalf("Of(string) = %d", got)
	}
}

func TestInterfaceBoxing(t *testing.T) {
	var i interface{} = make([]int64, 100)
	if Of(i) < 800 {
		t.Fatalf("boxed slice measured as %d", Of(i))
	}
}

func TestNilInnerValues(t *testing.T) {
	type s struct {
		P *int
		S []int
		M map[int]int
	}
	if got := Of(s{}); got != uint64(8+24+8) {
		t.Fatalf("struct of nil refs = %d, want 40", got)
	}
}

func TestReport(t *testing.T) {
	r := Measure("idx", make([]byte, 1<<20))
	if r.Label != "idx" {
		t.Fatalf("label = %q", r.Label)
	}
	if r.MB() < 1.0 || r.MB() > 1.01 {
		t.Fatalf("1 MiB slice reported as %.4f MB", r.MB())
	}
	if r.GB() < 0.0009 || r.GB() > 0.0011 {
		t.Fatalf("GB conversion wrong: %v", r.GB())
	}
}
