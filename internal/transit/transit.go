// Package transit provides the public-transport substrate that the XAR
// paper's Figure 6 experiment and the multi-modal trip planner (§IX)
// depend on. The paper uses the NYC GTFS feed served through
// OpenTripPlanner; this reproduction models an equivalent frequency-based
// network: stops with geometry, routes as ordered stop sequences with
// per-leg travel times, fixed headways and service windows — the subset
// of GTFS semantics a trip planner actually consumes.
package transit

import (
	"fmt"
	"math"

	"xar/internal/geo"
)

// StopID indexes a stop in a Network.
type StopID int32

// InvalidStop marks "no stop".
const InvalidStop StopID = -1

// Stop is a transit stop.
type Stop struct {
	ID    StopID
	Name  string
	Point geo.Point
}

// Mode is the vehicle type of a route.
type Mode uint8

// Transit modes.
const (
	ModeSubway Mode = iota
	ModeBus
)

func (m Mode) String() string {
	switch m {
	case ModeSubway:
		return "subway"
	case ModeBus:
		return "bus"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Route is a one-directional transit line: an ordered stop sequence with
// travel times, a fixed headway and a service window. Bidirectional lines
// are two Route values.
type Route struct {
	ID      int
	Name    string
	Mode    Mode
	Stops   []StopID
	Headway float64 // seconds between departures from the first stop
	First   float64 // first departure from the first stop (sec of day)
	Last    float64 // last departure from the first stop
	Dwell   float64 // dwell time per intermediate stop

	legTime []float64 // travel time between consecutive stops
	cum     []float64 // cumulative offset of each stop from the first
}

// LegTime returns the in-vehicle time from stop index i to i+1.
func (r *Route) LegTime(i int) float64 { return r.legTime[i] }

// Offset returns the schedule offset of stop index i relative to a
// departure from the first stop.
func (r *Route) Offset(i int) float64 { return r.cum[i] }

// NextDeparture returns the first vehicle departure from stop index i at
// or after time t, or ok=false when service has ended for the day.
func (r *Route) NextDeparture(i int, t float64) (depart float64, ok bool) {
	if i < 0 || i >= len(r.Stops)-1 {
		return 0, false
	}
	base := r.First + r.cum[i]
	if t <= base {
		return base, true
	}
	k := math.Ceil((t - base) / r.Headway)
	dep := base + k*r.Headway
	if dep-r.cum[i] > r.Last {
		return 0, false
	}
	return dep, true
}

// routeStop locates a stop inside a route.
type routeStop struct {
	Route int
	Idx   int
}

// Network is an immutable transit network.
type Network struct {
	Stops  []Stop
	Routes []Route

	byStop  [][]routeStop // stop → occurrences in routes
	buckets *stopBuckets
}

// NewNetwork assembles a network and validates referential integrity.
func NewNetwork(stops []Stop, routes []Route) (*Network, error) {
	n := &Network{Stops: stops, Routes: routes}
	n.byStop = make([][]routeStop, len(stops))
	for ri := range routes {
		r := &routes[ri]
		if len(r.Stops) < 2 {
			return nil, fmt.Errorf("transit: route %q has %d stops", r.Name, len(r.Stops))
		}
		if r.Headway <= 0 {
			return nil, fmt.Errorf("transit: route %q has non-positive headway", r.Name)
		}
		if r.Last < r.First {
			return nil, fmt.Errorf("transit: route %q has inverted service window", r.Name)
		}
		if len(r.legTime) != len(r.Stops)-1 {
			return nil, fmt.Errorf("transit: route %q has %d leg times for %d stops", r.Name, len(r.legTime), len(r.Stops))
		}
		for i, s := range r.Stops {
			if s < 0 || int(s) >= len(stops) {
				return nil, fmt.Errorf("transit: route %q references unknown stop %d", r.Name, s)
			}
			n.byStop[s] = append(n.byStop[s], routeStop{Route: ri, Idx: i})
		}
		for i, lt := range r.legTime {
			if lt <= 0 {
				return nil, fmt.Errorf("transit: route %q leg %d has non-positive time", r.Name, i)
			}
		}
	}
	pts := make([]geo.Point, len(stops))
	for i, s := range stops {
		pts[i] = s.Point
	}
	if len(pts) > 0 {
		n.buckets = newStopBuckets(pts, geo.NewBBox(pts...).Pad(2000), 500)
	}
	return n, nil
}

// RoutesAt returns the (route, stop-index) occurrences at a stop. Callers
// must not mutate the result.
func (n *Network) RoutesAt(s StopID) []routeStop { return n.byStop[s] }

// RouteOf dereferences an occurrence.
func (n *Network) RouteOf(rs routeStop) *Route { return &n.Routes[rs.Route] }

// StopsNear appends to dst the stops within radius meters of p, with
// their straight-line distances, and returns the extended slices.
func (n *Network) StopsNear(p geo.Point, radius float64, dst []StopID, dist []float64) ([]StopID, []float64) {
	if n.buckets == nil {
		return dst, dist
	}
	n.buckets.within(p, radius, func(i int, d float64) {
		dst = append(dst, StopID(i))
		dist = append(dist, d)
	})
	return dst, dist
}

// NewRoute is the constructor used by generators and loaders: it derives
// per-leg travel times from stop geometry and an average speed (m/s).
func NewRoute(id int, name string, mode Mode, stopIDs []StopID, stops []Stop, speed, headway, first, last, dwell float64) (Route, error) {
	if speed <= 0 {
		return Route{}, fmt.Errorf("transit: route %q speed must be positive", name)
	}
	r := Route{
		ID: id, Name: name, Mode: mode, Stops: stopIDs,
		Headway: headway, First: first, Last: last, Dwell: dwell,
	}
	r.legTime = make([]float64, len(stopIDs)-1)
	r.cum = make([]float64, len(stopIDs))
	for i := 0; i+1 < len(stopIDs); i++ {
		d := geo.Haversine(stops[stopIDs[i]].Point, stops[stopIDs[i+1]].Point)
		r.legTime[i] = d/speed + dwell
		r.cum[i+1] = r.cum[i] + r.legTime[i]
	}
	return r, nil
}

// stopBuckets is the usual uniform bucket index over the stop set.
type stopBuckets struct {
	pts        []geo.Point
	box        geo.BBox
	cell       float64
	dLat, dLng float64
	rows, cols int
	buckets    [][]int32
}

func newStopBuckets(pts []geo.Point, box geo.BBox, cellMeters float64) *stopBuckets {
	midLat := (box.MinLat + box.MaxLat) / 2
	b := &stopBuckets{
		pts:  pts,
		box:  box,
		cell: cellMeters,
		dLat: cellMeters / geo.MetersPerDegreeLat(),
		dLng: cellMeters / geo.MetersPerDegreeLng(midLat),
	}
	b.rows = int((box.MaxLat-box.MinLat)/b.dLat) + 2
	b.cols = int((box.MaxLng-box.MinLng)/b.dLng) + 2
	b.buckets = make([][]int32, b.rows*b.cols)
	for i, p := range pts {
		r, c := b.rc(p)
		k := r*b.cols + c
		b.buckets[k] = append(b.buckets[k], int32(i))
	}
	return b
}

func (b *stopBuckets) rc(p geo.Point) (int, int) {
	r := int((p.Lat - b.box.MinLat) / b.dLat)
	c := int((p.Lng - b.box.MinLng) / b.dLng)
	if r < 0 {
		r = 0
	}
	if r >= b.rows {
		r = b.rows - 1
	}
	if c < 0 {
		c = 0
	}
	if c >= b.cols {
		c = b.cols - 1
	}
	return r, c
}

func (b *stopBuckets) within(p geo.Point, radius float64, visit func(i int, d float64)) {
	if radius < 0 {
		return
	}
	span := int(radius/b.cell) + 1
	r0, c0 := b.rc(p)
	for r := r0 - span; r <= r0+span; r++ {
		if r < 0 || r >= b.rows {
			continue
		}
		for c := c0 - span; c <= c0+span; c++ {
			if c < 0 || c >= b.cols {
				continue
			}
			for _, i := range b.buckets[r*b.cols+c] {
				if d := geo.Haversine(p, b.pts[i]); d <= radius {
					visit(int(i), d)
				}
			}
		}
	}
}
