package transit

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"xar/internal/geo"
)

// This file implements a loader for a GTFS-flavored text interchange
// format, so real feeds (after a trivial conversion) or hand-authored
// networks can replace the synthetic generator. Two files are consumed:
//
// stops.txt — the GTFS stops subset:
//
//	stop_id,stop_name,stop_lat,stop_lon
//	s0,Main St,40.701,-74.012
//
// routes.txt — one line per directed route, frequency-based (GTFS
// frequencies.txt semantics folded in):
//
//	route_id,route_name,mode,headway_s,first_dep_s,last_dep_s,speed_mps,dwell_s,stops
//	r0,Line 1 north,subway,360,18000,86400,12,20,s0|s1|s2
//
// The mode column accepts "subway" and "bus"; the stops column is a
// |-separated list of stop_ids in visit order.

// LoadStops parses the stops file and returns the stops plus the
// stop_id → index mapping the routes file references.
func LoadStops(r io.Reader) ([]Stop, map[string]StopID, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("transit: stops header: %w", err)
	}
	want := []string{"stop_id", "stop_name", "stop_lat", "stop_lon"}
	for i, h := range want {
		if header[i] != h {
			return nil, nil, fmt.Errorf("transit: stops column %d is %q, want %q", i, header[i], h)
		}
	}
	var stops []Stop
	byName := make(map[string]StopID)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("transit: stops line %d: %w", line, err)
		}
		lat, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("transit: stops line %d: stop_lat: %w", line, err)
		}
		lng, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("transit: stops line %d: stop_lon: %w", line, err)
		}
		p := geo.Point{Lat: lat, Lng: lng}
		if !p.Valid() {
			return nil, nil, fmt.Errorf("transit: stops line %d: invalid coordinates %v", line, p)
		}
		if _, dup := byName[rec[0]]; dup {
			return nil, nil, fmt.Errorf("transit: stops line %d: duplicate stop_id %q", line, rec[0])
		}
		id := StopID(len(stops))
		byName[rec[0]] = id
		stops = append(stops, Stop{ID: id, Name: rec[1], Point: p})
	}
	return stops, byName, nil
}

// LoadRoutes parses the routes file against a loaded stop set.
func LoadRoutes(r io.Reader, stops []Stop, byName map[string]StopID) ([]Route, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 9
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("transit: routes header: %w", err)
	}
	want := []string{"route_id", "route_name", "mode", "headway_s", "first_dep_s", "last_dep_s", "speed_mps", "dwell_s", "stops"}
	for i, h := range want {
		if header[i] != h {
			return nil, fmt.Errorf("transit: routes column %d is %q, want %q", i, header[i], h)
		}
	}
	var routes []Route
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("transit: routes line %d: %w", line, err)
		}
		var mode Mode
		switch rec[2] {
		case "subway":
			mode = ModeSubway
		case "bus":
			mode = ModeBus
		default:
			return nil, fmt.Errorf("transit: routes line %d: unknown mode %q", line, rec[2])
		}
		nums := make([]float64, 5)
		for i := 0; i < 5; i++ {
			nums[i], err = strconv.ParseFloat(rec[i+3], 64)
			if err != nil {
				return nil, fmt.Errorf("transit: routes line %d: column %s: %w", line, want[i+3], err)
			}
		}
		var stopIDs []StopID
		for _, name := range strings.Split(rec[8], "|") {
			id, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("transit: routes line %d: unknown stop %q", line, name)
			}
			stopIDs = append(stopIDs, id)
		}
		if len(stopIDs) < 2 {
			return nil, fmt.Errorf("transit: routes line %d: route needs >= 2 stops", line)
		}
		route, err := NewRoute(len(routes), rec[1], mode, stopIDs, stops,
			nums[3], nums[0], nums[1], nums[2], nums[4])
		if err != nil {
			return nil, fmt.Errorf("transit: routes line %d: %w", line, err)
		}
		routes = append(routes, route)
	}
	return routes, nil
}

// LoadNetwork assembles a network from the two interchange files.
func LoadNetwork(stopsFile, routesFile io.Reader) (*Network, error) {
	stops, byName, err := LoadStops(stopsFile)
	if err != nil {
		return nil, err
	}
	routes, err := LoadRoutes(routesFile, stops, byName)
	if err != nil {
		return nil, err
	}
	return NewNetwork(stops, routes)
}

// SaveNetwork writes a network in the interchange format, inverse of
// LoadNetwork (stop IDs are rendered as s<index>).
func SaveNetwork(n *Network, stopsFile, routesFile io.Writer) error {
	sw := csv.NewWriter(stopsFile)
	if err := sw.Write([]string{"stop_id", "stop_name", "stop_lat", "stop_lon"}); err != nil {
		return err
	}
	for i, s := range n.Stops {
		if err := sw.Write([]string{
			fmt.Sprintf("s%d", i), s.Name,
			strconv.FormatFloat(s.Point.Lat, 'f', 7, 64),
			strconv.FormatFloat(s.Point.Lng, 'f', 7, 64),
		}); err != nil {
			return err
		}
	}
	sw.Flush()
	if err := sw.Error(); err != nil {
		return err
	}

	rw := csv.NewWriter(routesFile)
	if err := rw.Write([]string{"route_id", "route_name", "mode", "headway_s", "first_dep_s", "last_dep_s", "speed_mps", "dwell_s", "stops"}); err != nil {
		return err
	}
	for i, r := range n.Routes {
		names := make([]string, len(r.Stops))
		for j, s := range r.Stops {
			names[j] = fmt.Sprintf("s%d", s)
		}
		// Back out the average speed from the first leg (NewRoute derives
		// leg times as dist/speed + dwell).
		d := geo.Haversine(n.Stops[r.Stops[0]].Point, n.Stops[r.Stops[1]].Point)
		speed := d / (r.LegTime(0) - r.Dwell)
		if err := rw.Write([]string{
			fmt.Sprintf("r%d", i), r.Name, r.Mode.String(),
			strconv.FormatFloat(r.Headway, 'f', 1, 64),
			strconv.FormatFloat(r.First, 'f', 1, 64),
			strconv.FormatFloat(r.Last, 'f', 1, 64),
			strconv.FormatFloat(speed, 'f', 3, 64),
			strconv.FormatFloat(r.Dwell, 'f', 1, 64),
			strings.Join(names, "|"),
		}); err != nil {
			return err
		}
	}
	rw.Flush()
	return rw.Error()
}
