package transit

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

const stopsCSV = `stop_id,stop_name,stop_lat,stop_lon
s0,Alpha,40.7010000,-74.0120000
s1,Bravo,40.7080000,-74.0120000
s2,Charlie,40.7150000,-74.0120000
`

const routesCSV = `route_id,route_name,mode,headway_s,first_dep_s,last_dep_s,speed_mps,dwell_s,stops
r0,Line 1 north,subway,360,18000,86400,12,20,s0|s1|s2
r1,Line 1 south,subway,360,18000,86400,12,20,s2|s1|s0
`

func TestLoadNetwork(t *testing.T) {
	n, err := LoadNetwork(strings.NewReader(stopsCSV), strings.NewReader(routesCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Stops) != 3 || len(n.Routes) != 2 {
		t.Fatalf("loaded %d stops, %d routes", len(n.Stops), len(n.Routes))
	}
	if n.Stops[1].Name != "Bravo" {
		t.Fatalf("stop 1 = %q", n.Stops[1].Name)
	}
	r := n.Routes[0]
	if r.Mode != ModeSubway || r.Headway != 360 {
		t.Fatalf("route 0: %+v", r)
	}
	// ~778 m between stops at 12 m/s + 20 s dwell ≈ 85 s.
	if r.LegTime(0) < 70 || r.LegTime(0) > 100 {
		t.Fatalf("leg time %v", r.LegTime(0))
	}
	dep, ok := r.NextDeparture(0, 18000)
	if !ok || dep != 18000 {
		t.Fatalf("first departure %v %v", dep, ok)
	}
}

func TestLoadStopsErrors(t *testing.T) {
	cases := []string{
		"",          // empty
		"a,b,c,d\n", // wrong header
		"stop_id,stop_name,stop_lat,stop_lon\nx,N,zz,0",           // bad lat
		"stop_id,stop_name,stop_lat,stop_lon\nx,N,999,0",          // out of range
		"stop_id,stop_name,stop_lat,stop_lon\na,N,1,1\na,M,2,2\n", // duplicate id
	}
	for i, in := range cases {
		if _, _, err := LoadStops(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLoadRoutesErrors(t *testing.T) {
	stops, byName, err := LoadStops(strings.NewReader(stopsCSV))
	if err != nil {
		t.Fatal(err)
	}
	header := "route_id,route_name,mode,headway_s,first_dep_s,last_dep_s,speed_mps,dwell_s,stops\n"
	cases := []string{
		"",                    // empty
		"a,b,c,d,e,f,g,h,i\n", // wrong header
		header + "r0,L,tram,360,0,86400,12,20,s0|s1\n", // unknown mode
		header + "r0,L,bus,zz,0,86400,12,20,s0|s1\n",   // bad number
		header + "r0,L,bus,360,0,86400,12,20,s0|s9\n",  // unknown stop
		header + "r0,L,bus,360,0,86400,12,20,s0\n",     // too few stops
		header + "r0,L,bus,360,0,86400,0,20,s0|s1\n",   // zero speed
	}
	for i, in := range cases {
		if _, err := LoadRoutes(strings.NewReader(in), stops, byName); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSaveLoadNetworkRoundTrip(t *testing.T) {
	orig := testNetwork(t)
	var stopsBuf, routesBuf bytes.Buffer
	if err := SaveNetwork(orig, &stopsBuf, &routesBuf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadNetwork(&stopsBuf, &routesBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Stops) != len(orig.Stops) || len(back.Routes) != len(orig.Routes) {
		t.Fatalf("round trip: %d/%d stops, %d/%d routes",
			len(back.Stops), len(orig.Stops), len(back.Routes), len(orig.Routes))
	}
	for i := range orig.Routes {
		a, b := orig.Routes[i], back.Routes[i]
		if a.Headway != b.Headway || a.Mode != b.Mode || len(a.Stops) != len(b.Stops) {
			t.Fatalf("route %d differs: %+v vs %+v", i, a, b)
		}
		for j := range a.legTime {
			if math.Abs(a.LegTime(j)-b.LegTime(j)) > 0.5 {
				t.Fatalf("route %d leg %d time %v vs %v", i, j, a.LegTime(j), b.LegTime(j))
			}
		}
	}
}
