package transit

import (
	"fmt"

	"xar/internal/geo"
	"xar/internal/roadnet"
)

// GenConfig controls the synthetic NYC-like transit network generator.
// The defaults mimic Manhattan: a handful of north–south subway trunks
// with ~700 m stop spacing and frequent service, plus crosstown buses
// with ~400 m stop spacing and slower, sparser service.
type GenConfig struct {
	// SubwayLineSpacing is the east–west distance between subway trunks
	// (meters); BusLineSpacing the north–south distance between crosstown
	// bus lines.
	SubwayLineSpacing float64
	BusLineSpacing    float64
	// SubwayStopSpacing / BusStopSpacing control stop density along lines.
	SubwayStopSpacing float64
	BusStopSpacing    float64
	// Speeds in m/s and headways in seconds.
	SubwaySpeed, BusSpeed     float64
	SubwayHeadway, BusHeadway float64
	// Service window (seconds of day).
	First, Last float64
}

// DefaultGenConfig returns the Manhattan-shaped defaults.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		SubwayLineSpacing: 1400,
		BusLineSpacing:    900,
		SubwayStopSpacing: 700,
		BusStopSpacing:    450,
		SubwaySpeed:       12.0, // ~43 km/h incl. dwell handled separately
		BusSpeed:          4.5,  // ~16 km/h surface speed
		SubwayHeadway:     360,  // 6 min
		BusHeadway:        600,  // 10 min
		First:             5 * 3600,
		Last:              24 * 3600,
	}
}

// Generate lays a synthetic transit network over a generated city: subway
// trunks run north–south, buses run east–west, covering the city's
// bounding box. Deterministic in its inputs.
func Generate(city *roadnet.City, cfg GenConfig) (*Network, error) {
	if cfg.SubwayLineSpacing <= 0 || cfg.BusLineSpacing <= 0 ||
		cfg.SubwayStopSpacing <= 0 || cfg.BusStopSpacing <= 0 {
		return nil, fmt.Errorf("transit: spacings must be positive")
	}
	box := city.Graph.BBox()
	width := box.WidthMeters()
	height := box.HeightMeters()
	origin := geo.Point{Lat: box.MinLat, Lng: box.MinLng}

	var stops []Stop
	addStop := func(p geo.Point, name string) StopID {
		id := StopID(len(stops))
		stops = append(stops, Stop{ID: id, Name: name, Point: p})
		return id
	}

	var routes []Route
	routeID := 0
	addLine := func(name string, mode Mode, line []StopID, speed, headway float64) error {
		fwd, err := NewRoute(routeID, name+" north/east", mode, line, stops, speed, headway, cfg.First, cfg.Last, 20)
		if err != nil {
			return err
		}
		routeID++
		rev := make([]StopID, len(line))
		for i, s := range line {
			rev[len(line)-1-i] = s
		}
		bwd, err := NewRoute(routeID, name+" south/west", mode, rev, stops, speed, headway, cfg.First, cfg.Last, 20)
		if err != nil {
			return err
		}
		routeID++
		routes = append(routes, fwd, bwd)
		return nil
	}

	// Subway trunks: north–south lines every SubwayLineSpacing meters.
	nSubway := int(width/cfg.SubwayLineSpacing) + 1
	for l := 0; l < nSubway; l++ {
		east := float64(l) * cfg.SubwayLineSpacing
		if east > width {
			break
		}
		var line []StopID
		for n := 0.0; n <= height; n += cfg.SubwayStopSpacing {
			p := geo.Destination(geo.Destination(origin, 90, east), 0, n)
			line = append(line, addStop(p, fmt.Sprintf("Sub%d/%d", l, len(line))))
		}
		if len(line) >= 2 {
			if err := addLine(fmt.Sprintf("Subway-%d", l), ModeSubway, line, cfg.SubwaySpeed, cfg.SubwayHeadway); err != nil {
				return nil, err
			}
		}
	}

	// Crosstown buses: east–west lines every BusLineSpacing meters.
	nBus := int(height/cfg.BusLineSpacing) + 1
	for l := 0; l < nBus; l++ {
		north := float64(l) * cfg.BusLineSpacing
		if north > height {
			break
		}
		var line []StopID
		for eMeters := 0.0; eMeters <= width; eMeters += cfg.BusStopSpacing {
			p := geo.Destination(geo.Destination(origin, 0, north), 90, eMeters)
			line = append(line, addStop(p, fmt.Sprintf("Bus%d/%d", l, len(line))))
		}
		if len(line) >= 2 {
			if err := addLine(fmt.Sprintf("Bus-%d", l), ModeBus, line, cfg.BusSpeed, cfg.BusHeadway); err != nil {
				return nil, err
			}
		}
	}

	if len(routes) == 0 {
		return nil, fmt.Errorf("transit: city too small for any transit line")
	}
	return NewNetwork(stops, routes)
}
