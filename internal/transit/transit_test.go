package transit

import (
	"math"
	"testing"

	"xar/internal/geo"
	"xar/internal/roadnet"
)

func testCity(t testing.TB) *roadnet.City {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(30, 16, 42))
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func testNetwork(t testing.TB) *Network {
	t.Helper()
	n, err := Generate(testCity(t), DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func twoStops(t *testing.T) ([]Stop, []StopID) {
	t.Helper()
	p := geo.Point{Lat: 40.7, Lng: -74}
	stops := []Stop{
		{ID: 0, Name: "A", Point: p},
		{ID: 1, Name: "B", Point: geo.Destination(p, 0, 700)},
		{ID: 2, Name: "C", Point: geo.Destination(p, 0, 1400)},
	}
	return stops, []StopID{0, 1, 2}
}

func TestNewRouteDerivesTimes(t *testing.T) {
	stops, ids := twoStops(t)
	r, err := NewRoute(0, "L", ModeSubway, ids, stops, 10, 300, 0, 86400, 20)
	if err != nil {
		t.Fatal(err)
	}
	// 700 m at 10 m/s + 20 s dwell = 90 s per leg.
	if math.Abs(r.LegTime(0)-90) > 1 || math.Abs(r.LegTime(1)-90) > 1 {
		t.Fatalf("leg times %v %v, want ~90", r.LegTime(0), r.LegTime(1))
	}
	if math.Abs(r.Offset(2)-180) > 2 {
		t.Fatalf("cumulative offset %v, want ~180", r.Offset(2))
	}
	if _, err := NewRoute(0, "L", ModeSubway, ids, stops, 0, 300, 0, 86400, 20); err == nil {
		t.Fatal("zero speed must be rejected")
	}
}

func TestNextDeparture(t *testing.T) {
	stops, ids := twoStops(t)
	r, err := NewRoute(0, "L", ModeSubway, ids, stops, 10, 300, 1000, 2000, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Before service: first departure.
	dep, ok := r.NextDeparture(0, 0)
	if !ok || dep != 1000 {
		t.Fatalf("dep = %v ok=%v, want 1000", dep, ok)
	}
	// Mid-service: the next multiple of the headway.
	dep, ok = r.NextDeparture(0, 1001)
	if !ok || dep != 1300 {
		t.Fatalf("dep = %v, want 1300", dep)
	}
	// Exactly at a departure.
	dep, ok = r.NextDeparture(0, 1300)
	if !ok || dep != 1300 {
		t.Fatalf("dep = %v, want 1300 (inclusive)", dep)
	}
	// After service end.
	if _, ok = r.NextDeparture(0, 2300+1); ok {
		t.Fatal("departure after service end")
	}
	// At a downstream stop the offset applies.
	dep, ok = r.NextDeparture(1, 0)
	if !ok || math.Abs(dep-(1000+r.Offset(1))) > 1e-9 {
		t.Fatalf("downstream dep = %v, want %v", dep, 1000+r.Offset(1))
	}
	// Last stop has no departures.
	if _, ok = r.NextDeparture(2, 0); ok {
		t.Fatal("final stop must have no departures")
	}
	if _, ok = r.NextDeparture(-1, 0); ok {
		t.Fatal("negative index must have no departures")
	}
}

func TestNewNetworkValidation(t *testing.T) {
	stops, ids := twoStops(t)
	good, err := NewRoute(0, "L", ModeSubway, ids, stops, 10, 300, 0, 86400, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNetwork(stops, []Route{good}); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Headway = 0
	if _, err := NewNetwork(stops, []Route{bad}); err == nil {
		t.Fatal("zero headway must be rejected")
	}
	bad = good
	bad.Stops = []StopID{0, 99}
	if _, err := NewNetwork(stops, []Route{bad}); err == nil {
		t.Fatal("unknown stop must be rejected")
	}
	bad = good
	bad.Last = -1
	if _, err := NewNetwork(stops, []Route{bad}); err == nil {
		t.Fatal("inverted service window must be rejected")
	}
}

func TestGenerateNetworkShape(t *testing.T) {
	n := testNetwork(t)
	if len(n.Stops) < 20 {
		t.Fatalf("only %d stops generated", len(n.Stops))
	}
	subways, buses := 0, 0
	for _, r := range n.Routes {
		switch r.Mode {
		case ModeSubway:
			subways++
		case ModeBus:
			buses++
		}
		if len(r.Stops) < 2 {
			t.Fatalf("route %q has %d stops", r.Name, len(r.Stops))
		}
	}
	if subways == 0 || buses == 0 {
		t.Fatalf("subways=%d buses=%d; want both", subways, buses)
	}
	// Directions come in pairs.
	if len(n.Routes)%2 != 0 {
		t.Fatal("routes must come in direction pairs")
	}
}

func TestGenerateValidation(t *testing.T) {
	city := testCity(t)
	bad := DefaultGenConfig()
	bad.SubwayStopSpacing = 0
	if _, err := Generate(city, bad); err == nil {
		t.Fatal("zero stop spacing must be rejected")
	}
}

func TestRoutesAtConsistency(t *testing.T) {
	n := testNetwork(t)
	for s := range n.Stops {
		for _, rs := range n.RoutesAt(StopID(s)) {
			r := n.RouteOf(rs)
			if r.Stops[rs.Idx] != StopID(s) {
				t.Fatalf("stop %d: occurrence points at %d", s, r.Stops[rs.Idx])
			}
		}
	}
}

func TestStopsNear(t *testing.T) {
	n := testNetwork(t)
	center := n.Stops[len(n.Stops)/2].Point
	ids, dists := n.StopsNear(center, 800, nil, nil)
	if len(ids) == 0 {
		t.Fatal("no stops within 800 m of a stop")
	}
	if len(ids) != len(dists) {
		t.Fatal("ids/dists length mismatch")
	}
	for i, id := range ids {
		d := geo.Haversine(center, n.Stops[id].Point)
		if math.Abs(d-dists[i]) > 1e-6 {
			t.Fatalf("reported distance %v, actual %v", dists[i], d)
		}
		if d > 800 {
			t.Fatalf("stop at %.1f m > 800", d)
		}
	}
	// Brute-force count must agree.
	want := 0
	for _, s := range n.Stops {
		if geo.Haversine(center, s.Point) <= 800 {
			want++
		}
	}
	if len(ids) != want {
		t.Fatalf("StopsNear found %d, brute force %d", len(ids), want)
	}
}

func TestModeString(t *testing.T) {
	if ModeSubway.String() != "subway" || ModeBus.String() != "bus" {
		t.Fatal("mode strings")
	}
	if Mode(9).String() != "mode(9)" {
		t.Fatal("unknown mode string")
	}
}
