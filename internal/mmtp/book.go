package mmtp

import (
	"xar/internal/core"
)

// RideBooker extends RideProvider with booking — the full integration
// loop where the MMTP not only lists shared-ride options but confirms
// one on the commuter's behalf. *core.Engine satisfies it.
type RideBooker interface {
	RideProvider
	Book(m core.Match, req core.Request) (core.Booking, error)
}

// BookedEnhancement is the outcome of EnhanceAndBook.
type BookedEnhancement struct {
	EnhancerResult
	// Booked is set when the enhancement's ride was actually reserved.
	Booked  bool
	Booking core.Booking
}

// EnhanceAndBook runs Enhancer and, when it finds an improvement,
// searches the winning segment again and books the best match. Booking
// can fail between the enhancer's search and the confirmation (seats
// taken, detour budget spent); in that case the original itinerary is
// returned with Booked=false, mirroring a trip planner retrying.
func EnhanceAndBook(it *Itinerary, xar RideBooker, cfg IntegrationConfig) (BookedEnhancement, error) {
	res, err := Enhancer(it, xar, cfg)
	if err != nil {
		return BookedEnhancement{EnhancerResult: res}, err
	}
	out := BookedEnhancement{EnhancerResult: res}
	if !res.Improved {
		return out, nil
	}
	// The enhanced itinerary's ride leg holds the segment endpoints.
	var rideLeg *Leg
	for i := range res.Itinerary.Legs {
		if res.Itinerary.Legs[i].Mode == LegRideShare {
			rideLeg = &res.Itinerary.Legs[i]
			break
		}
	}
	if rideLeg == nil {
		return out, nil
	}
	req := core.Request{
		Source:            rideLeg.From,
		Dest:              rideLeg.To,
		EarliestDeparture: rideLeg.Start - rideLeg.Wait,
		LatestDeparture:   rideLeg.Start - rideLeg.Wait + cfg.WindowSlack,
		WalkLimit:         cfg.WalkLimit,
	}
	ms, err := xar.SearchK(req, 1)
	if err != nil && err != core.ErrNotServable {
		return out, err
	}
	if len(ms) == 0 {
		out.Itinerary = it // enhancement evaporated; keep the original
		out.Improved = false
		return out, nil
	}
	bk, err := xar.Book(ms[0], req)
	if err != nil {
		out.Itinerary = it
		out.Improved = false
		return out, nil
	}
	out.Booked = true
	out.Booking = bk
	// Refine the ride leg's timing with the confirmed ETAs.
	if bk.PickupETA > 0 {
		rideLeg.Start = bk.PickupETA
	}
	if bk.DropoffETA > rideLeg.Start {
		rideLeg.End = bk.DropoffETA
	}
	if n := len(res.Itinerary.Legs); n > 0 {
		res.Itinerary.Arrive = res.Itinerary.Legs[n-1].End
	}
	return out, nil
}
