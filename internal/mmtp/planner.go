// Package mmtp implements the multi-modal trip planner of §IX: a
// time-dependent earliest-arrival router over the transit network plus
// walking, producing itineraries with walk/wait/ride legs — the role
// OpenTripPlanner plays in the paper — and the two systematic modes of
// integrating XAR ride sharing with it:
//
//   - Aider mode: replace an infeasible segment (too much walking or
//     waiting) of a transit plan with a shared ride;
//   - Enhancer mode: try shared rides over the C(k+1,2) combinations of
//     the plan's hop points to reduce hops and travel time.
package mmtp

import (
	"container/heap"
	"fmt"
	"math"

	"xar/internal/geo"
	"xar/internal/transit"
)

// Config tunes the planner.
type Config struct {
	// WalkSpeed in m/s (default 1.3).
	WalkSpeed float64
	// MaxWalkToStop bounds the access/egress walk radius in meters.
	MaxWalkToStop float64
	// TransferRadius bounds stop-to-stop walking transfers in meters.
	TransferRadius float64
	// BoardMargin is the minimum seconds between arriving at a stop and
	// boarding a vehicle.
	BoardMargin float64
	// MaxDirectWalk: when the whole trip is shorter than this, a pure
	// walking itinerary competes with transit.
	MaxDirectWalk float64
}

// DefaultConfig returns sensible urban defaults.
func DefaultConfig() Config {
	return Config{
		WalkSpeed:      1.3,
		MaxWalkToStop:  1200,
		TransferRadius: 450,
		BoardMargin:    30,
		MaxDirectWalk:  2500,
	}
}

// LegMode is the mode of one itinerary leg.
type LegMode uint8

// Leg modes.
const (
	LegWalk LegMode = iota
	LegTransit
	LegRideShare
)

func (m LegMode) String() string {
	switch m {
	case LegWalk:
		return "walk"
	case LegTransit:
		return "transit"
	case LegRideShare:
		return "rideshare"
	default:
		return fmt.Sprintf("legmode(%d)", uint8(m))
	}
}

// Leg is one segment of an itinerary. Start is when the traveller begins
// the leg (after any wait), End when they finish it; Wait is the waiting
// time spent before boarding (zero for walks).
type Leg struct {
	Mode      LegMode
	RouteName string
	From, To  geo.Point
	Start     float64
	End       float64
	Wait      float64
	Distance  float64 // meters travelled in this leg
}

// Itinerary is a full multi-modal plan.
type Itinerary struct {
	Legs   []Leg
	Depart float64 // request time
	Arrive float64
}

// TravelTime is total elapsed time from the request to arrival.
func (it *Itinerary) TravelTime() float64 { return it.Arrive - it.Depart }

// WalkTime sums walking legs' durations.
func (it *Itinerary) WalkTime() float64 {
	var s float64
	for _, l := range it.Legs {
		if l.Mode == LegWalk {
			s += l.End - l.Start
		}
	}
	return s
}

// WalkDistance sums walking legs' distances.
func (it *Itinerary) WalkDistance() float64 {
	var s float64
	for _, l := range it.Legs {
		if l.Mode == LegWalk {
			s += l.Distance
		}
	}
	return s
}

// WaitTime sums waiting before boardings.
func (it *Itinerary) WaitTime() float64 {
	var s float64
	for _, l := range it.Legs {
		s += l.Wait
	}
	return s
}

// Hops counts the vehicle legs (transit or ride share); transfers =
// Hops − 1 when positive.
func (it *Itinerary) Hops() int {
	n := 0
	for _, l := range it.Legs {
		if l.Mode != LegWalk {
			n++
		}
	}
	return n
}

// Planner is a time-dependent multi-modal router. Safe for concurrent
// use: Plan allocates per-query state.
type Planner struct {
	cfg Config
	net *transit.Network
}

// NewPlanner builds a planner over a network.
func NewPlanner(net *transit.Network, cfg Config) (*Planner, error) {
	if cfg.WalkSpeed <= 0 {
		return nil, fmt.Errorf("mmtp: WalkSpeed must be positive")
	}
	if cfg.MaxWalkToStop <= 0 || cfg.TransferRadius < 0 {
		return nil, fmt.Errorf("mmtp: invalid walk radii")
	}
	return &Planner{cfg: cfg, net: net}, nil
}

// Network returns the planner's transit network.
func (p *Planner) Network() *transit.Network { return p.net }

// parent reconstructs the journey tree.
type parent struct {
	prevStop transit.StopID // InvalidStop for origin-access walks
	mode     LegMode
	route    string
	board    float64 // vehicle departure (transit) or walk start
	arrive   float64
	walkDist float64
}

type paItem struct {
	stop transit.StopID
	time float64
}
type paQueue []paItem

func (q paQueue) Len() int            { return len(q) }
func (q paQueue) Less(i, j int) bool  { return q[i].time < q[j].time }
func (q paQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *paQueue) Push(x interface{}) { *q = append(*q, x.(paItem)) }
func (q *paQueue) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// Plan computes an earliest-arrival multi-modal itinerary from src to dst
// departing at or after departAfter. It returns nil (no error) when no
// plan exists — e.g. endpoints beyond all walk radii with no service.
func (p *Planner) Plan(src, dst geo.Point, departAfter float64) (*Itinerary, error) {
	if !src.Valid() || !dst.Valid() {
		return nil, fmt.Errorf("mmtp: invalid coordinates")
	}

	// Direct walk candidate.
	directDist := geo.Haversine(src, dst)
	var best *Itinerary
	if directDist <= p.cfg.MaxDirectWalk {
		walkT := directDist / p.cfg.WalkSpeed
		best = &Itinerary{
			Depart: departAfter,
			Arrive: departAfter + walkT,
			Legs: []Leg{{
				Mode: LegWalk, From: src, To: dst,
				Start: departAfter, End: departAfter + walkT, Distance: directDist,
			}},
		}
	}

	n := len(p.net.Stops)
	if n == 0 {
		return best, nil
	}
	arr := make([]float64, n)
	par := make([]parent, n)
	for i := range arr {
		arr[i] = math.Inf(1)
	}
	var q paQueue

	// Access walks.
	ids, dists := p.net.StopsNear(src, p.cfg.MaxWalkToStop, nil, nil)
	for i, s := range ids {
		t := departAfter + dists[i]/p.cfg.WalkSpeed
		if t < arr[s] {
			arr[s] = t
			par[s] = parent{prevStop: transit.InvalidStop, mode: LegWalk, arrive: t, board: departAfter, walkDist: dists[i]}
			heap.Push(&q, paItem{stop: s, time: t})
		}
	}

	for q.Len() > 0 {
		it := heap.Pop(&q).(paItem)
		s := it.stop
		if it.time > arr[s] {
			continue
		}
		// Ride each route serving s one stop forward.
		for _, rs := range p.net.RoutesAt(s) {
			r := p.net.RouteOf(rs)
			if rs.Idx >= len(r.Stops)-1 {
				continue
			}
			dep, ok := r.NextDeparture(rs.Idx, arr[s]+p.cfg.BoardMargin)
			if !ok {
				continue
			}
			next := r.Stops[rs.Idx+1]
			t := dep + r.LegTime(rs.Idx)
			if t < arr[next] {
				arr[next] = t
				par[next] = parent{prevStop: s, mode: LegTransit, route: r.Name, board: dep, arrive: t}
				heap.Push(&q, paItem{stop: next, time: t})
			}
		}
		// Walking transfers.
		tIDs, tDists := p.net.StopsNear(p.net.Stops[s].Point, p.cfg.TransferRadius, nil, nil)
		for i, o := range tIDs {
			if o == s {
				continue
			}
			t := arr[s] + tDists[i]/p.cfg.WalkSpeed
			if t < arr[o] {
				arr[o] = t
				par[o] = parent{prevStop: s, mode: LegWalk, board: arr[s], arrive: t, walkDist: tDists[i]}
				heap.Push(&q, paItem{stop: o, time: t})
			}
		}
	}

	// Egress walks: best arrival at the destination.
	eIDs, eDists := p.net.StopsNear(dst, p.cfg.MaxWalkToStop, nil, nil)
	bestStop := transit.InvalidStop
	bestT := math.Inf(1)
	bestEgress := 0.0
	for i, s := range eIDs {
		if math.IsInf(arr[s], 1) {
			continue
		}
		t := arr[s] + eDists[i]/p.cfg.WalkSpeed
		if t < bestT {
			bestT = t
			bestStop = s
			bestEgress = eDists[i]
		}
	}
	if bestStop == transit.InvalidStop {
		return best, nil
	}
	if best != nil && best.Arrive <= bestT {
		return best, nil // walking wins
	}

	it := p.reconstruct(par, bestStop, src, departAfter)
	walkT := bestEgress / p.cfg.WalkSpeed
	it.Legs = append(it.Legs, Leg{
		Mode: LegWalk, From: p.net.Stops[bestStop].Point, To: dst,
		Start: arr[bestStop], End: bestT, Distance: bestEgress,
	})
	it.Arrive = bestT
	it.Depart = departAfter
	_ = walkT
	return mergeTransitLegs(it), nil
}

// reconstruct walks the parent tree from the final stop back to the
// origin, emitting legs in order.
func (p *Planner) reconstruct(par []parent, last transit.StopID, src geo.Point, departAfter float64) *Itinerary {
	var rev []Leg
	s := last
	for s != transit.InvalidStop {
		pa := par[s]
		to := p.net.Stops[s].Point
		var from geo.Point
		if pa.prevStop == transit.InvalidStop {
			from = src
		} else {
			from = p.net.Stops[pa.prevStop].Point
		}
		switch pa.mode {
		case LegTransit:
			prevArr := departAfter
			if pa.prevStop != transit.InvalidStop {
				prevArr = par[pa.prevStop].arrive
			}
			rev = append(rev, Leg{
				Mode: LegTransit, RouteName: pa.route, From: from, To: to,
				Start: pa.board, End: pa.arrive, Wait: math.Max(0, pa.board-prevArr),
				Distance: geo.Haversine(from, to),
			})
		default:
			rev = append(rev, Leg{
				Mode: LegWalk, From: from, To: to,
				Start: pa.board, End: pa.arrive, Distance: pa.walkDist,
			})
		}
		s = pa.prevStop
	}
	it := &Itinerary{}
	for i := len(rev) - 1; i >= 0; i-- {
		it.Legs = append(it.Legs, rev[i])
	}
	return it
}

// mergeTransitLegs merges consecutive transit legs on the same route into
// a single leg (riding through without alighting) and merges consecutive
// walks.
func mergeTransitLegs(it *Itinerary) *Itinerary {
	if len(it.Legs) == 0 {
		return it
	}
	merged := []Leg{it.Legs[0]}
	for _, l := range it.Legs[1:] {
		last := &merged[len(merged)-1]
		sameRoute := l.Mode == LegTransit && last.Mode == LegTransit && l.RouteName == last.RouteName
		bothWalk := l.Mode == LegWalk && last.Mode == LegWalk
		if sameRoute || bothWalk {
			last.To = l.To
			last.End = l.End
			last.Distance += l.Distance
			// Waits within a through-ride are dwell, not transfer waits.
			continue
		}
		merged = append(merged, l)
	}
	it.Legs = merged
	return it
}
