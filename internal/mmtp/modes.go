package mmtp

import (
	"math"

	"xar/internal/core"
	"xar/internal/geo"
)

// RideProvider is the slice of the XAR engine the integration modes
// consume; *core.Engine satisfies it. Keeping it an interface lets tests
// inject synthetic providers and keeps the dependency one-directional.
type RideProvider interface {
	SearchK(req core.Request, k int) ([]core.Match, error)
}

// IntegrationConfig tunes the Aider and Enhancer modes.
type IntegrationConfig struct {
	// MaxLegWalk marks a walking leg infeasible when it exceeds this many
	// meters (the paper's Figure 6 experiment uses 1 km).
	MaxLegWalk float64
	// MaxLegWait marks a leg infeasible when the wait before boarding
	// exceeds this many seconds (the paper uses 10 min).
	MaxLegWait float64
	// WalkLimit is the walking threshold passed to XAR searches.
	WalkLimit float64
	// WindowSlack half-widths the departure window passed to XAR
	// searches around the leg's start time.
	WindowSlack float64
	// RideSpeed estimates shared-ride in-vehicle speed (m/s) when
	// composing the enhanced itinerary.
	RideSpeed float64
	// MaxEnhancerHops is the paper's k ≤ 4 bound: above it, only
	// source→intermediate and intermediate→destination segments are
	// tried (2k+1 combinations instead of C(k+1,2)).
	MaxEnhancerHops int
}

// DefaultIntegrationConfig returns the paper's Figure 6 setting.
func DefaultIntegrationConfig() IntegrationConfig {
	return IntegrationConfig{
		MaxLegWalk:      1000,
		MaxLegWait:      600,
		WalkLimit:       1000,
		WindowSlack:     900,
		RideSpeed:       7.0,
		MaxEnhancerHops: 4,
	}
}

// AiderResult reports what Aider changed.
type AiderResult struct {
	Itinerary  *Itinerary
	Replaced   int // infeasible legs replaced by shared rides
	Infeasible int // infeasible legs found (replaced + unfixable)
	Searches   int // XAR searches issued
}

// Aider implements the aider mode of §IX-A: XAR provides shared-ride
// options for any infeasible segment of the trip plan — a leg whose
// walking distance or waiting time exceeds the commuter's tolerance. The
// segment's own endpoints (not the trip's) and its time window go to the
// ride search; a match replaces the leg.
func Aider(it *Itinerary, xar RideProvider, cfg IntegrationConfig) (AiderResult, error) {
	res := AiderResult{Itinerary: it}
	if it == nil || len(it.Legs) == 0 {
		return res, nil
	}
	out := &Itinerary{Depart: it.Depart, Arrive: it.Arrive}
	shift := 0.0 // cumulative time saved so far
	for _, leg := range it.Legs {
		infeasible := (leg.Mode == LegWalk && leg.Distance > cfg.MaxLegWalk) ||
			(leg.Wait > cfg.MaxLegWait)
		if !infeasible {
			adjusted := leg
			adjusted.Start -= shift
			adjusted.End -= shift
			out.Legs = append(out.Legs, adjusted)
			continue
		}
		res.Infeasible++
		req := core.Request{
			Source:            leg.From,
			Dest:              leg.To,
			EarliestDeparture: leg.Start - leg.Wait - shift,
			LatestDeparture:   leg.Start - shift + cfg.WindowSlack,
			WalkLimit:         cfg.WalkLimit,
		}
		res.Searches++
		ms, err := xar.SearchK(req, 1)
		if err != nil && err != core.ErrNotServable {
			return res, err
		}
		if len(ms) == 0 {
			adjusted := leg
			adjusted.Start -= shift
			adjusted.End -= shift
			out.Legs = append(out.Legs, adjusted) // keep the original leg
			continue
		}
		m := ms[0]
		rideLeg := composeRideLeg(leg.From, leg.To, m, leg.Start-leg.Wait-shift, cfg)
		saved := (leg.End - shift) - rideLeg.End
		if saved < 0 {
			saved = 0 // a slower ride still fixes the infeasibility
		}
		out.Legs = append(out.Legs, rideLeg)
		shift += saved
		res.Replaced++
	}
	if n := len(out.Legs); n > 0 {
		out.Arrive = out.Legs[n-1].End
	}
	res.Itinerary = out
	return res, nil
}

// composeRideLeg converts a match into an itinerary leg: walk-to-pickup
// and walk-from-drop-off are folded into the leg's Wait/End accounting by
// the caller; the leg itself covers pickup→drop-off.
func composeRideLeg(from, to geo.Point, m core.Match, earliest float64, cfg IntegrationConfig) Leg {
	start := math.Max(m.PickupETA, earliest)
	dist := geo.Haversine(from, to)
	end := m.DropoffETA
	if end <= start {
		end = start + dist/cfg.RideSpeed
	}
	return Leg{
		Mode:      LegRideShare,
		RouteName: "XAR shared ride",
		From:      from,
		To:        to,
		Start:     start,
		End:       end,
		Wait:      math.Max(0, start-earliest),
		Distance:  dist,
	}
}

// EnhancerResult reports what Enhancer changed.
type EnhancerResult struct {
	Itinerary             *Itinerary
	Improved              bool
	Searches              int // XAR searches issued — C(k+1,2) or 2k+1 per the paper
	HopsBefore, HopsAfter int
}

// Enhancer implements the enhancer mode of §IX-B: it enumerates segment
// combinations over the plan's hop points — all non-adjacent pairs when
// the plan has ≤ MaxEnhancerHops intermediate hops (C(k+1,2) searches),
// otherwise only source→hop and hop→destination pairs (2k+1 searches) —
// and replaces the segment with a shared ride when one exists and reduces
// the number of hops (and possibly the travel time).
func Enhancer(it *Itinerary, xar RideProvider, cfg IntegrationConfig) (EnhancerResult, error) {
	res := EnhancerResult{Itinerary: it}
	if it == nil || len(it.Legs) == 0 {
		return res, nil
	}
	res.HopsBefore = it.Hops()
	res.HopsAfter = res.HopsBefore

	// Hop points: trip source, every leg boundary where the mode is a
	// vehicle transfer, trip destination.
	type hopPoint struct {
		p       geo.Point
		legIdx  int // index of the first leg starting at (or after) p
		arrival float64
	}
	points := []hopPoint{{p: it.Legs[0].From, legIdx: 0, arrival: it.Depart}}
	for i := 1; i < len(it.Legs); i++ {
		points = append(points, hopPoint{p: it.Legs[i].From, legIdx: i, arrival: it.Legs[i-1].End})
	}
	last := it.Legs[len(it.Legs)-1]
	points = append(points, hopPoint{p: last.To, legIdx: len(it.Legs), arrival: it.Arrive})

	k := len(points) - 2 // intermediate hop points
	type segPair struct{ i, j int }
	var pairs []segPair
	if k <= cfg.MaxEnhancerHops {
		// All non-adjacent pairs: C(k+1, 2) combinations.
		for i := 0; i < len(points); i++ {
			for j := i + 2; j < len(points); j++ {
				pairs = append(pairs, segPair{i, j})
			}
		}
	} else {
		// Linear fallback (paper: 2k+1 segments): source→each intermediate
		// point and the destination (k+1 pairs, including the entire
		// journey), plus each intermediate point→destination (k pairs).
		for j := 1; j < len(points); j++ {
			pairs = append(pairs, segPair{0, j})
		}
		for i := 1; i < len(points)-1; i++ {
			pairs = append(pairs, segPair{i, len(points) - 1})
		}
	}

	// Prefer the replacement covering the most legs (max hop reduction),
	// breaking ties by earlier arrival of the composed itinerary.
	bestSpan := 0
	var bestIt *Itinerary
	for _, pr := range pairs {
		from, to := points[pr.i], points[pr.j]
		req := core.Request{
			Source:            from.p,
			Dest:              to.p,
			EarliestDeparture: from.arrival,
			LatestDeparture:   from.arrival + cfg.WindowSlack,
			WalkLimit:         cfg.WalkLimit,
		}
		res.Searches++
		ms, err := xar.SearchK(req, 1)
		if err != nil && err != core.ErrNotServable {
			return res, err
		}
		if len(ms) == 0 {
			continue
		}
		span := to.legIdx - from.legIdx
		if span <= bestSpan {
			continue
		}
		cand := spliceRideLeg(it, from.legIdx, to.legIdx, composeRideLeg(from.p, to.p, ms[0], from.arrival, cfg))
		// Only accept enhancements that do not degrade hops.
		if cand.Hops() > res.HopsBefore {
			continue
		}
		bestSpan = span
		bestIt = cand
	}
	if bestIt != nil {
		res.Itinerary = bestIt
		res.Improved = true
		res.HopsAfter = bestIt.Hops()
	}
	return res, nil
}

// spliceRideLeg returns a copy of it with legs [fromLeg, toLeg) replaced
// by the ride leg, shifting later legs if the ride arrives earlier.
func spliceRideLeg(it *Itinerary, fromLeg, toLeg int, ride Leg) *Itinerary {
	out := &Itinerary{Depart: it.Depart}
	out.Legs = append(out.Legs, it.Legs[:fromLeg]...)
	out.Legs = append(out.Legs, ride)
	origEnd := it.Depart
	if toLeg > 0 {
		origEnd = it.Legs[toLeg-1].End
	}
	shift := origEnd - ride.End
	for _, l := range it.Legs[toLeg:] {
		l.Start -= shift
		l.End -= shift
		out.Legs = append(out.Legs, l)
	}
	out.Arrive = out.Legs[len(out.Legs)-1].End
	return out
}
