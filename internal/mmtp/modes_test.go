package mmtp

import (
	"testing"

	"xar/internal/core"
	"xar/internal/discretize"
	"xar/internal/geo"
)

// fakeProvider matches every request (or none), recording the searches.
type fakeProvider struct {
	match    bool
	searches int
}

func (f *fakeProvider) SearchK(req core.Request, k int) ([]core.Match, error) {
	f.searches++
	if !f.match {
		return nil, nil
	}
	return []core.Match{{
		Ride:      1,
		PickupETA: req.EarliestDeparture + 60,
		DropoffETA: req.EarliestDeparture + 60 +
			geo.Haversine(req.Source, req.Dest)/7.0,
	}}, nil
}

func longWalkItinerary() *Itinerary {
	p0 := geo.Point{Lat: 40.70, Lng: -74.00}
	p1 := geo.Destination(p0, 90, 1500) // 1.5 km walk: infeasible at 1 km
	p2 := geo.Destination(p1, 90, 3000)
	return &Itinerary{
		Depart: 1000,
		Arrive: 1000 + 1500/1.3 + 500,
		Legs: []Leg{
			{Mode: LegWalk, From: p0, To: p1, Start: 1000, End: 1000 + 1500/1.3, Distance: 1500},
			{Mode: LegTransit, RouteName: "B", From: p1, To: p2,
				Start: 1000 + 1500/1.3 + 100, End: 1000 + 1500/1.3 + 500, Wait: 100},
		},
	}
}

func longWaitItinerary() *Itinerary {
	p0 := geo.Point{Lat: 40.70, Lng: -74.00}
	p1 := geo.Destination(p0, 90, 300)
	p2 := geo.Destination(p1, 90, 3000)
	return &Itinerary{
		Depart: 1000,
		Arrive: 3000,
		Legs: []Leg{
			{Mode: LegWalk, From: p0, To: p1, Start: 1000, End: 1230, Distance: 300},
			{Mode: LegTransit, RouteName: "B", From: p1, To: p2,
				Start: 2300, End: 3000, Wait: 1070}, // ~18 min wait: infeasible
		},
	}
}

func TestAiderReplacesLongWalk(t *testing.T) {
	it := longWalkItinerary()
	fp := &fakeProvider{match: true}
	res, err := Aider(it, fp, DefaultIntegrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible != 1 || res.Replaced != 1 {
		t.Fatalf("infeasible=%d replaced=%d, want 1/1", res.Infeasible, res.Replaced)
	}
	if res.Itinerary.Legs[0].Mode != LegRideShare {
		t.Fatalf("first leg is %v, want rideshare", res.Itinerary.Legs[0].Mode)
	}
	if res.Itinerary.WalkDistance() != 0 {
		t.Fatalf("walk distance %v after replacement", res.Itinerary.WalkDistance())
	}
	if fp.searches != 1 {
		t.Fatalf("searches = %d", fp.searches)
	}
}

func TestAiderReplacesLongWait(t *testing.T) {
	it := longWaitItinerary()
	fp := &fakeProvider{match: true}
	res, err := Aider(it, fp, DefaultIntegrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Replaced != 1 {
		t.Fatalf("replaced=%d, want 1", res.Replaced)
	}
	// Replacing the 18-minute wait should shorten the trip.
	if res.Itinerary.TravelTime() >= it.TravelTime() {
		t.Fatalf("aided trip %.0fs not faster than %.0fs", res.Itinerary.TravelTime(), it.TravelTime())
	}
}

func TestAiderKeepsLegWhenNoRide(t *testing.T) {
	it := longWalkItinerary()
	fp := &fakeProvider{match: false}
	res, err := Aider(it, fp, DefaultIntegrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Replaced != 0 || res.Infeasible != 1 {
		t.Fatalf("replaced=%d infeasible=%d", res.Replaced, res.Infeasible)
	}
	if len(res.Itinerary.Legs) != len(it.Legs) {
		t.Fatal("legs changed without a match")
	}
}

func TestAiderFeasiblePlanUntouched(t *testing.T) {
	p0 := geo.Point{Lat: 40.70, Lng: -74.00}
	p1 := geo.Destination(p0, 90, 300)
	it := &Itinerary{
		Depart: 0, Arrive: 300,
		Legs: []Leg{{Mode: LegWalk, From: p0, To: p1, Start: 0, End: 230, Distance: 300}},
	}
	fp := &fakeProvider{match: true}
	res, err := Aider(it, fp, DefaultIntegrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible != 0 || fp.searches != 0 {
		t.Fatalf("feasible plan triggered %d searches", fp.searches)
	}
}

func TestAiderNilItinerary(t *testing.T) {
	fp := &fakeProvider{match: true}
	if _, err := Aider(nil, fp, DefaultIntegrationConfig()); err != nil {
		t.Fatal(err)
	}
}

// multiHopItinerary builds a 3-hop transit plan (k=2 intermediate points).
func multiHopItinerary() *Itinerary {
	p := make([]geo.Point, 5)
	p[0] = geo.Point{Lat: 40.70, Lng: -74.00}
	for i := 1; i < 5; i++ {
		p[i] = geo.Destination(p[i-1], 90, 1200)
	}
	legs := []Leg{
		{Mode: LegWalk, From: p[0], To: p[1], Start: 0, End: 900, Distance: 1170},
		{Mode: LegTransit, RouteName: "A", From: p[1], To: p[2], Start: 1000, End: 1500, Wait: 100},
		{Mode: LegTransit, RouteName: "B", From: p[2], To: p[3], Start: 1700, End: 2200, Wait: 200},
		{Mode: LegTransit, RouteName: "C", From: p[3], To: p[4], Start: 2500, End: 3000, Wait: 300},
	}
	return &Itinerary{Depart: 0, Arrive: 3000, Legs: legs}
}

func TestEnhancerCombinationCount(t *testing.T) {
	it := multiHopItinerary() // 4 legs → 5 points → k=3 intermediates
	fp := &fakeProvider{match: false}
	res, err := Enhancer(it, fp, DefaultIntegrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	// C(k+1, 2) with k=3: 6 combinations.
	if res.Searches != 6 {
		t.Fatalf("searches = %d, want C(4,2)=6", res.Searches)
	}
	if res.Improved {
		t.Fatal("no matches but improved")
	}
}

func TestEnhancerLinearFallbackAboveMaxHops(t *testing.T) {
	// Build a plan with k=6 intermediate points (7 legs).
	p := geo.Point{Lat: 40.70, Lng: -74.00}
	var legs []Leg
	cur := p
	for i := 0; i < 7; i++ {
		next := geo.Destination(cur, 90, 800)
		legs = append(legs, Leg{
			Mode: LegTransit, RouteName: string(rune('A' + i)),
			From: cur, To: next,
			Start: float64(i * 500), End: float64(i*500 + 400),
		})
		cur = next
	}
	it := &Itinerary{Depart: 0, Arrive: legs[len(legs)-1].End, Legs: legs}
	fp := &fakeProvider{match: false}
	res, err := Enhancer(it, fp, DefaultIntegrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 2k+1 with k=6: 13 searches (source→each of 6+dest, each of 6→dest).
	if res.Searches != 13 {
		t.Fatalf("searches = %d, want 2k+1=13", res.Searches)
	}
}

func TestEnhancerReplacesWholeTrip(t *testing.T) {
	it := multiHopItinerary()
	fp := &fakeProvider{match: true}
	res, err := Enhancer(it, fp, DefaultIntegrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Improved {
		t.Fatal("universal matches but no improvement")
	}
	if res.HopsAfter > res.HopsBefore {
		t.Fatalf("hops got worse: %d → %d", res.HopsBefore, res.HopsAfter)
	}
	// The widest span is source→destination: a single rideshare leg.
	if len(res.Itinerary.Legs) != 1 || res.Itinerary.Legs[0].Mode != LegRideShare {
		t.Fatalf("expected whole-trip replacement, got %d legs", len(res.Itinerary.Legs))
	}
}

func TestEnhancerNilItinerary(t *testing.T) {
	fp := &fakeProvider{match: true}
	res, err := Enhancer(nil, fp, DefaultIntegrationConfig())
	if err != nil || res.Improved {
		t.Fatalf("nil itinerary: %v %v", err, res.Improved)
	}
}

// Integration: Aider over a real planner itinerary with a real XAR engine.
func TestAiderWithRealEngine(t *testing.T) {
	city, _, p := testWorld(t)
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(d, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Flood the city with offers so some infeasible segment finds a ride.
	box := city.Graph.BBox()
	corners := []geo.Point{
		{Lat: box.MinLat, Lng: box.MinLng},
		{Lat: box.MaxLat, Lng: box.MaxLng},
		{Lat: box.MinLat, Lng: box.MaxLng},
		{Lat: box.MaxLat, Lng: box.MinLng},
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			for dep := 7 * 3600; dep < 10*3600; dep += 600 {
				_, _ = eng.CreateRide(core.RideOffer{
					Source: corners[i], Dest: corners[j],
					Departure: float64(dep), DetourLimit: 3000,
				})
			}
		}
	}
	src := geo.Point{Lat: box.MinLat, Lng: box.MinLng}
	dst := geo.Point{Lat: box.MaxLat, Lng: box.MaxLng}
	it, err := p.Plan(src, dst, 8*3600)
	if err != nil || it == nil {
		t.Fatalf("plan: %v", err)
	}
	res, err := Aider(it, eng, DefaultIntegrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The outcome depends on the plan's feasibility, but the API contract
	// holds: the result itinerary is well-formed.
	if res.Itinerary == nil || len(res.Itinerary.Legs) == 0 {
		t.Fatal("aider destroyed the itinerary")
	}
	if res.Itinerary.Legs[0].From != src || res.Itinerary.Legs[len(res.Itinerary.Legs)-1].To != dst {
		t.Fatal("aider changed the trip endpoints")
	}
}
