package mmtp

import (
	"errors"
	"testing"

	"xar/internal/core"
	"xar/internal/discretize"
	"xar/internal/geo"
)

// fakeBooker extends fakeProvider with controllable booking outcomes.
type fakeBooker struct {
	fakeProvider
	bookErr error
	booked  int
}

func (f *fakeBooker) Book(m core.Match, req core.Request) (core.Booking, error) {
	if f.bookErr != nil {
		return core.Booking{}, f.bookErr
	}
	f.booked++
	return core.Booking{
		Ride:       m.Ride,
		PickupETA:  m.PickupETA,
		DropoffETA: m.DropoffETA,
	}, nil
}

func TestEnhanceAndBookSuccess(t *testing.T) {
	it := multiHopItinerary()
	fb := &fakeBooker{fakeProvider: fakeProvider{match: true}}
	res, err := EnhanceAndBook(it, fb, DefaultIntegrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Improved || !res.Booked {
		t.Fatalf("improved=%v booked=%v", res.Improved, res.Booked)
	}
	if fb.booked != 1 {
		t.Fatalf("booked %d times", fb.booked)
	}
	// The itinerary's ride leg got the confirmed ETAs.
	var ride *Leg
	for i := range res.Itinerary.Legs {
		if res.Itinerary.Legs[i].Mode == LegRideShare {
			ride = &res.Itinerary.Legs[i]
		}
	}
	if ride == nil {
		t.Fatal("no ride leg in booked enhancement")
	}
	if ride.Start != res.Booking.PickupETA {
		t.Fatalf("leg start %v, booking pickup %v", ride.Start, res.Booking.PickupETA)
	}
}

func TestEnhanceAndBookFallsBackWhenBookingFails(t *testing.T) {
	it := multiHopItinerary()
	fb := &fakeBooker{
		fakeProvider: fakeProvider{match: true},
		bookErr:      core.ErrRideFull,
	}
	res, err := EnhanceAndBook(it, fb, DefaultIntegrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Booked || res.Improved {
		t.Fatalf("booked=%v improved=%v after booking failure", res.Booked, res.Improved)
	}
	if res.Itinerary != it {
		t.Fatal("original itinerary not restored")
	}
}

func TestEnhanceAndBookNoImprovement(t *testing.T) {
	it := multiHopItinerary()
	fb := &fakeBooker{fakeProvider: fakeProvider{match: false}}
	res, err := EnhanceAndBook(it, fb, DefaultIntegrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Improved || res.Booked || fb.booked != 0 {
		t.Fatalf("unexpected booking on no-match world: %+v", res)
	}
}

func TestEnhanceAndBookPropagatesSearchError(t *testing.T) {
	it := multiHopItinerary()
	fb := &errBooker{}
	if _, err := EnhanceAndBook(it, fb, DefaultIntegrationConfig()); err == nil {
		t.Fatal("search error must propagate")
	}
}

type errBooker struct{}

func (e *errBooker) SearchK(core.Request, int) ([]core.Match, error) {
	return nil, errors.New("backend down")
}
func (e *errBooker) Book(core.Match, core.Request) (core.Booking, error) {
	return core.Booking{}, errors.New("backend down")
}

// End-to-end: enhance and book against a real engine.
func TestEnhanceAndBookRealEngine(t *testing.T) {
	city, _, p := testWorld(t)
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(d, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	box := city.Graph.BBox()
	src := geo.Point{Lat: box.MinLat, Lng: box.MinLng}
	dst := geo.Point{Lat: box.MaxLat, Lng: box.MaxLng}
	// A thick fleet along the diagonal so the whole-trip ride exists.
	for dep := 7 * 3600; dep < 10*3600; dep += 300 {
		_, _ = eng.CreateRide(core.RideOffer{
			Source: src, Dest: dst, Departure: float64(dep), DetourLimit: 3000,
		})
	}
	it, err := p.Plan(src, dst, 8*3600)
	if err != nil || it == nil {
		t.Fatalf("plan: %v", err)
	}
	res, err := EnhanceAndBook(it, eng, DefaultIntegrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Improved {
		t.Skip("no enhancement found; layout-dependent")
	}
	if !res.Booked {
		t.Fatal("enhancement found but booking failed against a fresh fleet")
	}
	// The booked ride really holds a seat now.
	r := eng.Ride(res.Booking.Ride)
	if r == nil || r.SeatsAvail >= r.SeatsTotal-1 {
		t.Fatal("booking did not consume a seat")
	}
}
