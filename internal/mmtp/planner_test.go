package mmtp

import (
	"math"
	"math/rand"
	"testing"

	"xar/internal/geo"
	"xar/internal/roadnet"
	"xar/internal/transit"
)

func testWorld(t testing.TB) (*roadnet.City, *transit.Network, *Planner) {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(30, 16, 42))
	if err != nil {
		t.Fatal(err)
	}
	net, err := transit.Generate(city, transit.DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlanner(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return city, net, p
}

func TestNewPlannerValidation(t *testing.T) {
	_, net, _ := testWorld(t)
	if _, err := NewPlanner(net, Config{WalkSpeed: 0, MaxWalkToStop: 100}); err == nil {
		t.Fatal("zero walk speed must be rejected")
	}
	if _, err := NewPlanner(net, Config{WalkSpeed: 1, MaxWalkToStop: 0}); err == nil {
		t.Fatal("zero access radius must be rejected")
	}
}

func TestPlanDirectWalkShortTrip(t *testing.T) {
	city, _, p := testWorld(t)
	src := city.Graph.BBox().Center()
	dst := geo.Destination(src, 90, 400)
	it, err := p.Plan(src, dst, 8*3600)
	if err != nil {
		t.Fatal(err)
	}
	if it == nil {
		t.Fatal("no plan for a 400 m trip")
	}
	if len(it.Legs) != 1 || it.Legs[0].Mode != LegWalk {
		t.Fatalf("400 m trip should be a single walk, got %d legs", len(it.Legs))
	}
	wantT := 400 / 1.3
	if math.Abs(it.TravelTime()-wantT) > 30 {
		t.Fatalf("walk time %v, want ~%v", it.TravelTime(), wantT)
	}
}

func TestPlanLongTripUsesTransit(t *testing.T) {
	city, _, p := testWorld(t)
	box := city.Graph.BBox()
	src := geo.Point{Lat: box.MinLat, Lng: box.MinLng}
	dst := geo.Point{Lat: box.MaxLat, Lng: box.MaxLng}
	it, err := p.Plan(src, dst, 8*3600)
	if err != nil {
		t.Fatal(err)
	}
	if it == nil {
		t.Fatal("no plan corner to corner")
	}
	if it.Hops() == 0 {
		t.Fatal("corner-to-corner trip should ride transit")
	}
	if it.Arrive <= it.Depart {
		t.Fatal("arrival before departure")
	}
}

func TestPlanLegsAreContiguous(t *testing.T) {
	city, _, p := testWorld(t)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		src := city.RandomPoint(rng)
		dst := city.RandomPoint(rng)
		it, err := p.Plan(src, dst, 7*3600+float64(rng.Intn(7200)))
		if err != nil {
			t.Fatal(err)
		}
		if it == nil {
			continue
		}
		if len(it.Legs) == 0 {
			t.Fatal("plan with no legs")
		}
		if it.Legs[0].From != src || it.Legs[len(it.Legs)-1].To != dst {
			t.Fatal("plan endpoints do not match the request")
		}
		for i, l := range it.Legs {
			if l.End < l.Start {
				t.Fatalf("leg %d ends before it starts", i)
			}
			if i > 0 {
				prev := it.Legs[i-1]
				if l.From != prev.To {
					t.Fatalf("leg %d does not start where leg %d ended", i, i-1)
				}
				// A leg may start after the previous ends (waiting), never before.
				if l.Start+1e-6 < prev.End-l.Wait-1e-6 && l.Mode == LegTransit {
					// start - wait should be ≥ prev.End (wait covers the gap)
					t.Fatalf("leg %d starts %.1f before wait accounting allows (prev end %.1f, wait %.1f)",
						i, l.Start, prev.End, l.Wait)
				}
			}
		}
		if it.WalkTime() < 0 || it.WaitTime() < 0 {
			t.Fatal("negative component times")
		}
		if it.TravelTime() <= 0 {
			t.Fatal("non-positive travel time")
		}
	}
}

func TestPlanEarlierDepartureNeverArrivesLater(t *testing.T) {
	city, _, p := testWorld(t)
	box := city.Graph.BBox()
	src := geo.Point{Lat: box.MinLat, Lng: box.MinLng}
	dst := geo.Point{Lat: box.MaxLat, Lng: box.MaxLng}
	a, err := p.Plan(src, dst, 8*3600)
	if err != nil || a == nil {
		t.Fatalf("plan A: %v", err)
	}
	b, err := p.Plan(src, dst, 8*3600+600)
	if err != nil || b == nil {
		t.Fatalf("plan B: %v", err)
	}
	if a.Arrive > b.Arrive+1e-6 {
		t.Fatalf("departing earlier arrived later: %.0f vs %.0f", a.Arrive, b.Arrive)
	}
}

func TestPlanNoServiceAtNight(t *testing.T) {
	// Departing after the last service of the day: only walking remains.
	city, _, p := testWorld(t)
	box := city.Graph.BBox()
	src := geo.Point{Lat: box.MinLat, Lng: box.MinLng}
	dst := geo.Point{Lat: box.MaxLat, Lng: box.MaxLng}
	it, err := p.Plan(src, dst, 23*3600+3000)
	if err != nil {
		t.Fatal(err)
	}
	if it != nil {
		for _, l := range it.Legs {
			if l.Mode == LegTransit && l.Start > 24*3600 {
				t.Fatal("boarding after end of service")
			}
		}
	}
}

func TestPlanInvalidCoordinates(t *testing.T) {
	_, _, p := testWorld(t)
	if _, err := p.Plan(geo.Point{Lat: 999, Lng: 0}, geo.Point{Lat: 40.7, Lng: -74}, 0); err == nil {
		t.Fatal("invalid coordinates must be rejected")
	}
}

func TestPlanUnreachableDestination(t *testing.T) {
	_, _, p := testWorld(t)
	src := geo.Point{Lat: 40.70, Lng: -74.02}
	farAway := geo.Point{Lat: 45.0, Lng: -74.02} // hundreds of km north
	it, err := p.Plan(src, farAway, 8*3600)
	if err != nil {
		t.Fatal(err)
	}
	if it != nil {
		t.Fatal("planner invented a plan to an unreachable destination")
	}
}

func TestItineraryMetrics(t *testing.T) {
	it := &Itinerary{
		Depart: 100,
		Arrive: 1000,
		Legs: []Leg{
			{Mode: LegWalk, Start: 100, End: 200, Distance: 130},
			{Mode: LegTransit, Start: 260, End: 600, Wait: 60},
			{Mode: LegRideShare, Start: 700, End: 900, Wait: 100},
			{Mode: LegWalk, Start: 900, End: 1000, Distance: 130},
		},
	}
	if it.TravelTime() != 900 {
		t.Fatalf("travel time %v", it.TravelTime())
	}
	if it.WalkTime() != 200 {
		t.Fatalf("walk time %v", it.WalkTime())
	}
	if it.WalkDistance() != 260 {
		t.Fatalf("walk distance %v", it.WalkDistance())
	}
	if it.WaitTime() != 160 {
		t.Fatalf("wait time %v", it.WaitTime())
	}
	if it.Hops() != 2 {
		t.Fatalf("hops %v", it.Hops())
	}
}

func TestMergeTransitLegs(t *testing.T) {
	it := &Itinerary{
		Legs: []Leg{
			{Mode: LegWalk, Start: 0, End: 10, Distance: 13},
			{Mode: LegTransit, RouteName: "A", Start: 20, End: 50},
			{Mode: LegTransit, RouteName: "A", Start: 50, End: 80},
			{Mode: LegTransit, RouteName: "B", Start: 100, End: 150},
			{Mode: LegWalk, Start: 150, End: 160, Distance: 13},
			{Mode: LegWalk, Start: 160, End: 170, Distance: 13},
		},
	}
	merged := mergeTransitLegs(it)
	if len(merged.Legs) != 4 {
		t.Fatalf("merged to %d legs, want 4", len(merged.Legs))
	}
	if merged.Legs[1].End != 80 || merged.Legs[1].RouteName != "A" {
		t.Fatalf("through-ride not merged: %+v", merged.Legs[1])
	}
	if merged.Legs[3].Distance != 26 {
		t.Fatalf("walks not merged: %+v", merged.Legs[3])
	}
	if merged.Hops() != 2 {
		t.Fatalf("hops after merge = %d", merged.Hops())
	}
}

func TestLegModeString(t *testing.T) {
	for _, m := range []LegMode{LegWalk, LegTransit, LegRideShare} {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
	if LegMode(7).String() != "legmode(7)" {
		t.Fatal("unknown mode string")
	}
}
