package tshare

import (
	"sort"

	"xar/internal/geo"
	"xar/internal/grid"
	"xar/internal/roadnet"
)

// Search runs T-Share's dual-side expanding grid search and returns up to
// k validated matches (k <= 0 means all). Candidate discovery expands
// square rings around the origin and destination cells in increasing
// distance; every candidate in both sets is validated with the insertion
// detour test, computed with lazy shortest paths (or haversine estimates
// when Config.HaversineValidation is set).
//
// This is where T-Share pays for its grid-only representation: each
// validation costs up to 2×(schedule length) shortest-path runs, and the
// expansion itself touches up to MaxExpandGrids cells per side.
func (e *Engine) Search(req Request, k int) ([]Match, error) {
	e.mu.Lock() // exclusive: validation shares the engine's searcher
	defer e.mu.Unlock()

	oCell := e.gs.At(req.Source)
	dCell := e.gs.At(req.Dest)
	if oCell == grid.Invalid || dCell == grid.Invalid {
		return nil, ErrOutOfRegion
	}

	// Side 1: taxis expected near the origin within the departure window.
	oCand := e.collectCandidates(oCell, req.EarliestDeparture, req.LatestDeparture)
	if oCand.len() == 0 {
		return nil, nil
	}
	// Side 2: taxis expected near the destination (window extended).
	dCand := e.collectCandidates(dCell, req.EarliestDeparture, req.LatestDeparture+e.cfg.DestWindowSlack)

	// Intersect, preserving origin-side discovery order (closest rings
	// first) so early termination at k favors nearby taxis.
	var matches []Match
	for _, id := range oCand.order {
		if _, onDest := dCand.set[id]; !onDest {
			continue
		}
		t := e.taxis[id]
		if t == nil || t.SeatsAvail <= 0 {
			continue
		}
		m, ok := e.validate(t, req)
		if !ok {
			continue
		}
		matches = append(matches, m)
		if k > 0 && len(matches) >= k {
			break
		}
	}
	return matches, nil
}

// collectCandidates expands rings around cell and returns the taxis whose
// cell ETA lies in [t1, t2]. The iteration order is by ring, then by
// arrival time, so early termination at k favors nearby taxis.
func (e *Engine) collectCandidates(center grid.ID, t1, t2 float64) orderedCands {
	visited := 0
	found := orderedCands{set: make(map[TaxiID]float64)}
	var ring []grid.ID
	for r := int32(0); ; r++ {
		ring = e.gs.Ring(center, r, ring[:0])
		if len(ring) == 0 && r > 0 {
			break // ran off the region
		}
		stop := false
		for _, c := range ring {
			visited++
			for _, entry := range e.cellWindow(c, t1, t2) {
				if _, dup := found.set[entry.taxi]; !dup {
					found.set[entry.taxi] = entry.eta
					found.order = append(found.order, entry.taxi)
				}
			}
			if visited >= e.cfg.MaxExpandGrids {
				stop = true
				break
			}
		}
		if stop {
			break
		}
	}
	return found
}

// orderedCands is a candidate set remembering discovery order.
type orderedCands struct {
	set   map[TaxiID]float64
	order []TaxiID
}

func (o orderedCands) len() int { return len(o.order) }

// cellWindow returns the cell's entries with eta in [t1, t2] via binary
// search on the sorted list.
func (e *Engine) cellWindow(c grid.ID, t1, t2 float64) []cellEntry {
	list := e.cells[c]
	i := sort.Search(len(list), func(i int) bool { return list[i].eta >= t1 })
	j := i
	for j < len(list) && list[j].eta <= t2 {
		j++
	}
	return list[i:j]
}

// validate checks whether the request can be inserted into the taxi's
// schedule: it finds the cheapest pickup and drop-off insertion positions
// (pickup not after drop-off), computes the total insertion detour with
// lazy shortest paths (or haversine), and checks the detour budget and
// pickup time window.
func (e *Engine) validate(t *Taxi, req Request) (Match, bool) {
	pu, _ := e.city.SnapToNode(req.Source)
	do, _ := e.city.SnapToNode(req.Dest)
	if pu == roadnet.InvalidNode || do == roadnet.InvalidNode {
		return Match{}, false
	}

	nSeg := len(t.Via) - 1
	if nSeg < 1 {
		return Match{}, false
	}
	firstSeg := e.firstOpenSegment(t)
	if firstSeg < 0 {
		return Match{}, false
	}

	type insCost struct {
		seg  int
		cost float64
		eta  float64
	}
	puCosts := make([]insCost, 0, nSeg)
	doCosts := make([]insCost, 0, nSeg)
	for s := firstSeg; s < nSeg; s++ {
		a, b := t.Via[s], t.Via[s+1]
		cPu := e.insertionCost(a.Node, b.Node, pu)
		if cPu >= 0 {
			// ETA at pickup ≈ segment start time + time to reach pickup.
			eta := a.ETA + e.legTime(a.Node, pu)
			puCosts = append(puCosts, insCost{seg: s, cost: cPu, eta: eta})
		}
		cDo := e.insertionCost(a.Node, b.Node, do)
		if cDo >= 0 {
			doCosts = append(doCosts, insCost{seg: s, cost: cDo, eta: a.ETA + e.legTime(a.Node, do)})
		}
	}

	best := t.DetourLimit + 1
	var bm Match
	found := false
	for _, p := range puCosts {
		if p.eta < req.EarliestDeparture || p.eta > req.LatestDeparture {
			continue
		}
		for _, d := range doCosts {
			if d.seg < p.seg {
				continue
			}
			total := p.cost + d.cost
			if d.seg == p.seg {
				// Same segment: a→pu→do→b. Cost differs from two
				// independent insertions; recompute directly.
				a, b := t.Via[p.seg], t.Via[p.seg+1]
				total = e.chainCost(a.Node, pu, do, b.Node)
				if total < 0 {
					continue
				}
			} else if d.eta < p.eta {
				continue
			}
			if total <= t.DetourLimit && total < best {
				best = total
				bm = Match{
					Taxi:       t.ID,
					PickupETA:  p.eta,
					Detour:     total,
					pickupSeg:  p.seg,
					dropoffSeg: d.seg,
					pickupNode: pu,
					dropNode:   do,
					rev:        t.rev,
				}
				found = true
			}
		}
	}
	return bm, found
}

// firstOpenSegment returns the first schedule segment the vehicle has not
// fully passed, or -1 when the ride is over.
func (e *Engine) firstOpenSegment(t *Taxi) int {
	for s := 0; s+1 < len(t.Via); s++ {
		if t.Via[s].RouteIdx >= t.Progress {
			return s
		}
	}
	return -1
}

// insertionCost returns the extra distance of detouring a→x→b instead of
// a→b, or a negative number when x is unreachable.
func (e *Engine) insertionCost(a, b, x roadnet.NodeID) float64 {
	if x == a || x == b {
		return 0
	}
	dax := e.dist(a, x)
	dxb := e.dist(x, b)
	dab := e.dist(a, b)
	if dax < 0 || dxb < 0 || dab < 0 {
		return -1
	}
	c := dax + dxb - dab
	if c < 0 {
		c = 0
	}
	return c
}

// chainCost returns the extra distance of a→pu→do→b over a→b, or negative
// when unreachable.
func (e *Engine) chainCost(a, pu, do, b roadnet.NodeID) float64 {
	d1 := e.dist(a, pu)
	d2 := e.dist(pu, do)
	d3 := e.dist(do, b)
	dab := e.dist(a, b)
	if d1 < 0 || d2 < 0 || d3 < 0 || dab < 0 {
		return -1
	}
	c := d1 + d2 + d3 - dab
	if c < 0 {
		c = 0
	}
	return c
}

// dist is the lazy distance oracle: a real shortest path, or haversine in
// the Figure 5a alternate setting. Negative means unreachable.
func (e *Engine) dist(a, b roadnet.NodeID) float64 {
	if a == b {
		return 0
	}
	if e.cfg.HaversineValidation {
		return geo.Haversine(e.city.Graph.Point(a), e.city.Graph.Point(b))
	}
	res := e.searcher.ShortestPath(a, b)
	if !res.Reachable() {
		return -1
	}
	return res.Dist
}

// legTime estimates travel time for a leg at the free-flow average speed.
func (e *Engine) legTime(a, b roadnet.NodeID) float64 {
	d := e.dist(a, b)
	if d < 0 {
		return 0
	}
	return d / 7.0
}
