package tshare

import (
	"math"
	"testing"

	"xar/internal/geo"
	"xar/internal/roadnet"
)

func testCity(t testing.TB) *roadnet.City {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func newTestEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := New(testCity(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func farPoints(t testing.TB, e *Engine) (geo.Point, geo.Point) {
	t.Helper()
	g := e.city.Graph
	return g.Point(0), g.Point(roadnet.NodeID(g.NumNodes() - 1))
}

func corridorRequest(e *Engine, tx *Taxi, fromFrac, toFrac, window float64) Request {
	g := e.city.Graph
	si := int(fromFrac * float64(len(tx.Route)-1))
	di := int(toFrac * float64(len(tx.Route)-1))
	return Request{
		Source:            g.Point(tx.Route[si]),
		Dest:              g.Point(tx.Route[di]),
		EarliestDeparture: tx.RouteETA[0] - window,
		LatestDeparture:   tx.RouteETA[0] + window,
	}
}

func TestNewValidation(t *testing.T) {
	city := testCity(t)
	if _, err := New(city, Config{GridCellSize: 0, MaxExpandGrids: 80}); err == nil {
		t.Fatal("zero cell size must be rejected")
	}
	if _, err := New(city, Config{GridCellSize: 1000, MaxExpandGrids: 0}); err == nil {
		t.Fatal("zero expansion cap must be rejected")
	}
}

func TestCreateBasics(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.Create(Offer{Source: src, Dest: dst, Departure: 100})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Taxi(id)
	if tx == nil {
		t.Fatal("created taxi not retrievable")
	}
	if tx.SeatsAvail != 3 {
		t.Fatalf("seats = %d, want 3", tx.SeatsAvail)
	}
	if len(tx.cells) == 0 {
		t.Fatal("taxi not registered in any cell")
	}
	if e.NumTaxis() != 1 {
		t.Fatalf("NumTaxis = %d", e.NumTaxis())
	}
}

func TestCreateValidation(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	if _, err := e.Create(Offer{Source: src, Dest: src}); err == nil {
		t.Fatal("coincident endpoints must be rejected")
	}
	if _, err := e.Create(Offer{Source: src, Dest: dst, Seats: 1}); err == nil {
		t.Fatal("capacity 1 must be rejected")
	}
	if _, err := e.Create(Offer{Source: src, Dest: dst, DetourLimit: -1}); err == nil {
		t.Fatal("negative detour must be rejected")
	}
}

func TestSearchFindsCorridorTaxi(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.Create(Offer{Source: src, Dest: dst, Departure: 100, DetourLimit: 1500})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Taxi(id)
	req := corridorRequest(e, tx, 0.2, 0.8, 3600)
	ms, err := e.Search(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range ms {
		if m.Taxi == id {
			found = true
			if m.Detour > tx.DetourLimit {
				t.Fatalf("match detour %.1f > limit", m.Detour)
			}
		}
	}
	if !found {
		t.Fatalf("corridor request not matched (%d matches)", len(ms))
	}
}

func TestSearchOutOfRegion(t *testing.T) {
	e := newTestEngine(t)
	req := Request{Source: geo.Point{Lat: 10, Lng: 10}, Dest: geo.Point{Lat: 10.1, Lng: 10}, LatestDeparture: 100}
	if _, err := e.Search(req, 0); err != ErrOutOfRegion {
		t.Fatalf("err = %v, want ErrOutOfRegion", err)
	}
}

func TestSearchTimeWindow(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.Create(Offer{Source: src, Dest: dst, Departure: 50000, DetourLimit: 1500})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Taxi(id)
	req := corridorRequest(e, tx, 0.2, 0.8, 3600)
	req.EarliestDeparture = 0
	req.LatestDeparture = 100
	ms, err := e.Search(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Taxi == id {
			t.Fatal("taxi matched far outside its schedule")
		}
	}
}

func TestSearchKEarlyTermination(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	for i := 0; i < 6; i++ {
		if _, err := e.Create(Offer{Source: src, Dest: dst, Departure: float64(100 + i), DetourLimit: 1500}); err != nil {
			t.Fatal(err)
		}
	}
	tx := e.Taxi(1)
	req := corridorRequest(e, tx, 0.2, 0.8, 3600)
	all, err := e.Search(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 3 {
		t.Skipf("only %d matches; layout-dependent", len(all))
	}
	two, err := e.Search(req, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 {
		t.Fatalf("k=2 returned %d matches", len(two))
	}
}

func TestHaversineValidationMode(t *testing.T) {
	city := testCity(t)
	cfg := DefaultConfig()
	cfg.HaversineValidation = true
	e, err := New(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := city.Graph.Point(0)
	dst := city.Graph.Point(roadnet.NodeID(city.Graph.NumNodes() - 1))
	id, err := e.Create(Offer{Source: src, Dest: dst, Departure: 100, DetourLimit: 1500})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Taxi(id)
	req := corridorRequest(e, tx, 0.2, 0.8, 3600)
	ms, err := e.Search(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("haversine mode found no matches on the corridor")
	}
}

func TestBookEndToEnd(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.Create(Offer{Source: src, Dest: dst, Departure: 100, DetourLimit: 2500})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Taxi(id)
	req := corridorRequest(e, tx, 0.3, 0.7, 3600)
	ms, err := e.Search(req, 1)
	if err != nil || len(ms) == 0 {
		t.Fatalf("search: %v / %d matches", err, len(ms))
	}
	seatsBefore := tx.SeatsAvail
	budgetBefore := tx.DetourLimit
	lenBefore, _ := e.city.Graph.PathLength(tx.Route)

	if err := e.Book(ms[0], req); err != nil {
		t.Fatal(err)
	}
	if tx.SeatsAvail != seatsBefore-1 {
		t.Fatalf("seats %d → %d", seatsBefore, tx.SeatsAvail)
	}
	lenAfter, err := e.city.Graph.PathLength(tx.Route)
	if err != nil {
		t.Fatalf("route corrupted: %v", err)
	}
	grown := lenAfter - lenBefore
	if grown < -1 {
		t.Fatalf("route shrank by %.1f m", -grown)
	}
	if budgetBefore-tx.DetourLimit < grown-1 {
		t.Fatalf("budget not charged: %.1f → %.1f for %.1f m detour", budgetBefore, tx.DetourLimit, grown)
	}
	if len(tx.Via) != 4 {
		t.Fatalf("schedule has %d vias, want 4", len(tx.Via))
	}
	// Vias are consistent with the route.
	for _, v := range tx.Via {
		if tx.Route[v.RouteIdx] != v.Node {
			t.Fatalf("via %v not at route index %d", v.Node, v.RouteIdx)
		}
	}
	for i := 1; i < len(tx.Via); i++ {
		if tx.Via[i].RouteIdx < tx.Via[i-1].RouteIdx {
			t.Fatal("vias out of order")
		}
	}
}

func TestBookUnknownTaxi(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	req := Request{Source: src, Dest: dst, LatestDeparture: 100}
	if err := e.Book(Match{Taxi: 999}, req); err != ErrUnknownTaxi {
		t.Fatalf("err = %v, want ErrUnknownTaxi", err)
	}
}

func TestBookUntilFull(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.Create(Offer{Source: src, Dest: dst, Departure: 100, Seats: 3, DetourLimit: 5000})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Taxi(id)
	booked := 0
	for i := 0; i < 5; i++ {
		req := corridorRequest(e, tx, 0.3, 0.7, 3600)
		ms, err := e.Search(req, 1)
		if err != nil || len(ms) == 0 {
			break
		}
		var m *Match
		for j := range ms {
			if ms[j].Taxi == id {
				m = &ms[j]
			}
		}
		if m == nil {
			break
		}
		if err := e.Book(*m, req); err != nil {
			break
		}
		booked++
	}
	if booked != 2 {
		t.Fatalf("capacity-3 taxi accepted %d bookings, want 2", booked)
	}
}

func TestAdvanceCompletesTaxis(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.Create(Offer{Source: src, Dest: dst, Departure: 0, DetourLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Taxi(id)
	end := tx.RouteETA[len(tx.RouteETA)-1]

	if done := e.Advance(end / 2); done != 0 {
		t.Fatalf("completed %d taxis at half time", done)
	}
	if tx.Progress == 0 {
		t.Fatal("progress did not advance")
	}
	if done := e.Advance(end + 1); done != 1 {
		t.Fatalf("completed %d taxis at end time, want 1", done)
	}
	if e.NumTaxis() != 0 {
		t.Fatal("taxi not removed after completion")
	}
}

func TestAdvancePrunesPassedCells(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.Create(Offer{Source: src, Dest: dst, Departure: 0, DetourLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Taxi(id)
	cellsBefore := len(tx.cells)
	end := tx.RouteETA[len(tx.RouteETA)-1]
	e.Advance(end * 0.8)
	if len(tx.cells) >= cellsBefore {
		t.Fatalf("cells %d → %d; passed cells not pruned", cellsBefore, len(tx.cells))
	}
	// A request at the passed origin must not match the taxi anymore.
	req := Request{
		Source: src, Dest: dst,
		EarliestDeparture: 0, LatestDeparture: end,
	}
	ms, err := e.Search(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Taxi == id && m.PickupETA < end*0.8 {
			t.Fatal("taxi offered for a pickup time it has already passed")
		}
	}
}

func TestRemove(t *testing.T) {
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.Create(Offer{Source: src, Dest: dst, Departure: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Remove(id) {
		t.Fatal("Remove returned false")
	}
	if e.Remove(id) {
		t.Fatal("double remove must return false")
	}
	for c, list := range e.cells {
		for _, entry := range list {
			if entry.taxi == id {
				t.Fatalf("removed taxi still in cell %v", c)
			}
		}
	}
}

func TestValidateDetourIsExact(t *testing.T) {
	// In shortest-path mode the match detour must equal the real route
	// growth when booked (modulo snap).
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.Create(Offer{Source: src, Dest: dst, Departure: 100, DetourLimit: 3000})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Taxi(id)
	req := corridorRequest(e, tx, 0.25, 0.75, 3600)
	ms, err := e.Search(req, 1)
	if err != nil || len(ms) == 0 {
		t.Fatalf("search: %v / %d", err, len(ms))
	}
	lenBefore, _ := e.city.Graph.PathLength(tx.Route)
	if err := e.Book(ms[0], req); err != nil {
		t.Fatal(err)
	}
	lenAfter, _ := e.city.Graph.PathLength(tx.Route)
	if math.Abs((lenAfter-lenBefore)-ms[0].Detour) > 1 {
		t.Fatalf("validated detour %.1f, actual %.1f", ms[0].Detour, lenAfter-lenBefore)
	}
}

func TestExpansionCapRespected(t *testing.T) {
	// With a tiny expansion cap, distant taxis are not discovered.
	city := testCity(t)
	cfg := DefaultConfig()
	cfg.MaxExpandGrids = 1
	e, err := New(city, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := city.Graph.Point(0), city.Graph.Point(roadnet.NodeID(city.Graph.NumNodes()-1))
	if _, err := e.Create(Offer{Source: src, Dest: dst, Departure: 100, DetourLimit: 1500}); err != nil {
		t.Fatal(err)
	}
	// Request origin several cells away from the route's cells: with a
	// 1-cell cap nothing is found unless the origin cell itself has the
	// taxi.
	mid := geo.Midpoint(src, dst)
	far := geo.Destination(mid, 90, 3000)
	req := Request{Source: far, Dest: dst, EarliestDeparture: 0, LatestDeparture: 1e6}
	ms, err := e.Search(req, 0)
	if err != nil && err != ErrOutOfRegion {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("cap-1 search found %d matches 3 km off the route", len(ms))
	}
}

func TestBookRevalidatesWhenScheduleChanged(t *testing.T) {
	// A match held across another booking (which changes the schedule
	// revision) must be re-validated rather than inserted blindly.
	e := newTestEngine(t)
	src, dst := farPoints(t, e)
	id, err := e.Create(Offer{Source: src, Dest: dst, Departure: 100, Seats: 8, DetourLimit: 4000})
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Taxi(id)
	req := corridorRequest(e, tx, 0.3, 0.7, 3600)
	ms, err := e.Search(req, 1)
	if err != nil || len(ms) == 0 {
		t.Skip("no match; layout-dependent")
	}
	stale := ms[0]

	// Mutate the schedule with a different booking.
	req2 := corridorRequest(e, tx, 0.2, 0.6, 3600)
	ms2, err := e.Search(req2, 1)
	if err != nil || len(ms2) == 0 {
		t.Skip("no second match")
	}
	if err := e.Book(ms2[0], req2); err != nil {
		t.Skip("second booking failed")
	}

	// Booking the stale match must still produce a structurally valid
	// schedule (it re-validates internally because rev changed).
	if err := e.Book(stale, req); err != nil {
		// Legitimate: re-validation may reject it now.
		return
	}
	for _, v := range tx.Via {
		if tx.Route[v.RouteIdx] != v.Node {
			t.Fatalf("via %v not at route index %d after stale booking", v.Node, v.RouteIdx)
		}
	}
	for i := 1; i < len(tx.Via); i++ {
		if tx.Via[i].RouteIdx < tx.Via[i-1].RouteIdx {
			t.Fatal("vias out of order after stale booking")
		}
	}
	if _, err := e.city.Graph.PathLength(tx.Route); err != nil {
		t.Fatalf("route corrupted: %v", err)
	}
}
