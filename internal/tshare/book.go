package tshare

import (
	"fmt"

	"xar/internal/roadnet"
)

// Book inserts the matched pickup and drop-off into the taxi's schedule,
// recomputes the affected route with shortest paths, charges the exact
// detour, consumes a seat and refreshes the grid registrations.
func (e *Engine) Book(m Match, req Request) error {
	e.mu.Lock()
	defer e.mu.Unlock()

	t := e.taxis[m.Taxi]
	if t == nil {
		return ErrUnknownTaxi
	}
	if t.SeatsAvail <= 0 {
		return ErrTaxiFull
	}
	// Re-validate only when the schedule changed since the search was
	// validated: T-Share books at the insertion position the search
	// found, so the common case is a direct insertion.
	fresh := m
	if m.rev != t.rev {
		var ok bool
		fresh, ok = e.validate(t, req)
		if !ok {
			return ErrInfeasible
		}
	}

	oldLen, err := e.city.Graph.PathLength(t.Route)
	if err != nil {
		return fmt.Errorf("tshare: corrupt route on taxi %d: %w", t.ID, err)
	}

	// Insertion-based scheduling: only the segments receiving the pickup
	// and the drop-off are recomputed with shortest paths; all other
	// route chunks are reused verbatim. This keeps T-Share's booking
	// cheap — the paper's Figure 4c has it beating XAR's (which must
	// additionally refresh its cluster registrations).
	type stop struct {
		node     roadnet.NodeID
		fromSeg  int  // original segment this stop starts, or -1
		inserted bool // freshly inserted pickup/drop-off
	}
	stops := make([]stop, 0, len(t.Via)+2)
	for s := 0; s < len(t.Via); s++ {
		stops = append(stops, stop{node: t.Via[s].Node, fromSeg: s})
		if s == fresh.pickupSeg {
			stops = append(stops, stop{node: fresh.pickupNode, inserted: true})
		}
		if s == fresh.dropoffSeg {
			stops = append(stops, stop{node: fresh.dropNode, inserted: true})
		}
	}

	depart := t.RouteETA[0]
	route := []roadnet.NodeID{stops[0].node}
	viaIdx := []int{0}
	appendPath := func(path []roadnet.NodeID) {
		if len(path) > 0 && route[len(route)-1] == path[0] {
			path = path[1:]
		}
		route = append(route, path...)
		viaIdx = append(viaIdx, len(route)-1)
	}
	for i := 1; i < len(stops); i++ {
		prev, cur := stops[i-1], stops[i]
		if cur.node == route[len(route)-1] {
			viaIdx = append(viaIdx, len(route)-1)
			continue
		}
		// Untouched original segment: reuse the existing route chunk.
		if !prev.inserted && !cur.inserted && prev.fromSeg >= 0 && cur.fromSeg == prev.fromSeg+1 &&
			prev.fromSeg != fresh.pickupSeg && prev.fromSeg != fresh.dropoffSeg {
			a, b := t.Via[prev.fromSeg].RouteIdx, t.Via[cur.fromSeg].RouteIdx
			appendPath(t.Route[a : b+1])
			continue
		}
		res := e.searcher.ShortestPath(route[len(route)-1], cur.node)
		if !res.Reachable() {
			return ErrUnreachable
		}
		appendPath(res.Path)
	}

	newLen, err := e.city.Graph.PathLength(route)
	if err != nil {
		return fmt.Errorf("tshare: spliced route invalid: %w", err)
	}
	detour := newLen - oldLen
	if detour < 0 {
		detour = 0
	}
	if detour > t.DetourLimit {
		return ErrInfeasible
	}

	e.unregister(t)
	t.Route = route
	t.RouteETA = e.computeETAs(route, depart)
	t.Via = t.Via[:0]
	for i, s := range stops {
		t.Via = append(t.Via, Via{RouteIdx: viaIdx[i], Node: s.node, ETA: t.RouteETA[viaIdx[i]]})
	}
	t.DetourLimit -= detour
	t.SeatsAvail--
	t.Progress = 0 // route indices changed; re-derived on next Advance
	t.rev++
	e.register(t)
	return nil
}

// Advance moves every taxi to its position at the given time, prunes
// stale cell registrations (arrival times in the past) and removes taxis
// that reached their destination. It returns the number completed.
func (e *Engine) Advance(now float64) int {
	e.mu.Lock()
	defer e.mu.Unlock()

	var done []TaxiID
	for id, t := range e.taxis {
		pos := t.Progress
		for pos+1 < len(t.RouteETA) && t.RouteETA[pos+1] <= now {
			pos++
		}
		if pos != t.Progress {
			t.rev++
		}
		t.Progress = pos
		if pos == len(t.Route)-1 {
			done = append(done, id)
			continue
		}
		// Drop registrations whose arrival time has passed: the taxi can
		// no longer serve those cells.
		g := e.city.Graph
		for c := range t.cells {
			// Recompute the taxi's first future arrival in c; if none,
			// unregister from the cell.
			future := -1.0
			for i := pos; i < len(t.Route); i++ {
				if e.gs.At(g.Point(t.Route[i])) == c {
					future = t.RouteETA[i]
					break
				}
			}
			if future < 0 {
				delete(t.cells, c)
				e.cellRemove(c, id)
			}
		}
	}
	for _, id := range done {
		t := e.taxis[id]
		e.unregister(t)
		delete(e.taxis, id)
	}
	return len(done)
}
