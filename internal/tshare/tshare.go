// Package tshare implements the T-Share baseline (Ma, Zheng, Wolfson,
// ICDE 2013) the XAR paper benchmarks against, following the paper's
// experimental setup (§X-B2):
//
//   - the city is partitioned into a uniform grid (the paper uses 1 km
//     cells, "equivalent to the cluster size of XAR");
//   - each cell keeps a temporally-ordered list of the taxis expected to
//     arrive in it;
//   - a search expands grid rings around the origin and the destination
//     in increasing distance order — capped at MaxExpandGrids cells
//     (the paper uses 80 ≈ 4 km) — and validates every candidate taxi
//     with *lazy shortest-path computation*: the insertion detour is
//     computed with real shortest paths at search time;
//   - the original system stops at the first match; per the paper's
//     modification, the search continues until k matches are found (or
//     the cap is reached), k = all by default.
//
// The alternate Figure 5a setting — haversine distances instead of
// shortest paths during validation — is Config.HaversineValidation.
//
// Create and book are cheaper than XAR's (no reachable-cluster
// expansion), which reproduces the paper's Figure 4b/4c ordering.
package tshare

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"xar/internal/geo"
	"xar/internal/grid"
	"xar/internal/roadnet"
)

// Errors returned by the engine.
var (
	ErrUnknownTaxi = errors.New("tshare: unknown taxi")
	ErrTaxiFull    = errors.New("tshare: taxi has no available seats")
	ErrInfeasible  = errors.New("tshare: match no longer feasible")
	ErrUnreachable = errors.New("tshare: no route between endpoints")
	ErrOutOfRegion = errors.New("tshare: location outside the gridded region")
)

// Config tunes the baseline.
type Config struct {
	// GridCellSize is the cell edge in meters (paper: 1000 m).
	GridCellSize float64
	// MaxExpandGrids caps the number of cells visited per search side
	// (paper: 80 ≈ a 4 km detour bound).
	MaxExpandGrids int
	// HaversineValidation replaces shortest-path detour validation with
	// haversine estimates (the Figure 5a alternate setting).
	HaversineValidation bool
	// DefaultSeats and DefaultDetourLimit mirror the XAR engine defaults.
	DefaultSeats       int
	DefaultDetourLimit float64
	// DestWindowSlack widens the destination-side time window (seconds).
	DestWindowSlack float64
}

// DefaultConfig returns the paper's benchmark configuration.
func DefaultConfig() Config {
	return Config{
		GridCellSize:       1000,
		MaxExpandGrids:     80,
		DefaultSeats:       4,
		DefaultDetourLimit: 2000,
		DestWindowSlack:    3600,
	}
}

// TaxiID identifies a taxi (ride offer) in the system.
type TaxiID int64

// Via is a mandatory stop of a taxi's schedule.
type Via struct {
	RouteIdx int
	Node     roadnet.NodeID
	ETA      float64
}

// Taxi is one ride offer.
type Taxi struct {
	ID          TaxiID
	Route       []roadnet.NodeID
	RouteETA    []float64
	Via         []Via
	SeatsAvail  int
	DetourLimit float64 // remaining, meters
	Progress    int

	// rev increments whenever the schedule changes (booking, tracking),
	// so a booking can skip re-validation when its match is still
	// current — T-Share books at the insertion position the search found.
	rev   uint64
	cells map[grid.ID]struct{} // cells currently listing this taxi
}

// Offer creates a taxi.
type Offer struct {
	Source, Dest geo.Point
	Departure    float64
	Seats        int
	DetourLimit  float64
}

// Request is a ride request (same semantics as the XAR engine's).
type Request struct {
	Source, Dest                       geo.Point
	EarliestDeparture, LatestDeparture float64
	WalkLimit                          float64 // unused by T-Share matching; kept for API parity
}

// Match is a validated candidate.
type Match struct {
	Taxi       TaxiID
	PickupETA  float64
	Detour     float64 // exact (or haversine-estimated) insertion detour
	pickupSeg  int
	dropoffSeg int
	pickupNode roadnet.NodeID
	dropNode   roadnet.NodeID
	rev        uint64 // schedule revision the validation saw
}

type cellEntry struct {
	taxi TaxiID
	eta  float64
}

// Engine is the T-Share baseline system. Thread-safe with a single RW
// lock, mirroring the XAR engine.
type Engine struct {
	cfg  Config
	city *roadnet.City
	gs   *grid.System

	mu       sync.RWMutex
	taxis    map[TaxiID]*Taxi
	cells    map[grid.ID][]cellEntry // sorted by eta
	searcher *roadnet.Searcher
	nextID   TaxiID
}

// New builds an engine over a city.
func New(city *roadnet.City, cfg Config) (*Engine, error) {
	if cfg.GridCellSize <= 0 {
		return nil, fmt.Errorf("tshare: GridCellSize must be positive")
	}
	if cfg.MaxExpandGrids <= 0 {
		return nil, fmt.Errorf("tshare: MaxExpandGrids must be positive")
	}
	gs, err := grid.NewSystem(city.Graph.BBox().Pad(cfg.GridCellSize), cfg.GridCellSize)
	if err != nil {
		return nil, err
	}
	return &Engine{
		cfg:      cfg,
		city:     city,
		gs:       gs,
		taxis:    make(map[TaxiID]*Taxi),
		cells:    make(map[grid.ID][]cellEntry),
		searcher: roadnet.NewSearcher(city.Graph),
	}, nil
}

// NumTaxis returns the number of active taxis.
func (e *Engine) NumTaxis() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.taxis)
}

// Taxi returns a taxi by ID (nil if unknown).
func (e *Engine) Taxi(id TaxiID) *Taxi {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.taxis[id]
}

// Create registers a new taxi: one shortest path, per-node ETAs, and
// registration in the grid cells its route crosses.
func (e *Engine) Create(offer Offer) (TaxiID, error) {
	seats := offer.Seats
	if seats == 0 {
		seats = e.cfg.DefaultSeats
	}
	if seats < 2 {
		return 0, fmt.Errorf("tshare: offer needs capacity >= 2, got %d", seats)
	}
	detour := offer.DetourLimit
	if detour == 0 {
		detour = e.cfg.DefaultDetourLimit
	}
	if detour < 0 {
		return 0, fmt.Errorf("tshare: negative detour limit")
	}

	e.mu.Lock()
	defer e.mu.Unlock()

	src, _ := e.city.SnapToNode(offer.Source)
	dst, _ := e.city.SnapToNode(offer.Dest)
	if src == roadnet.InvalidNode || dst == roadnet.InvalidNode {
		return 0, ErrOutOfRegion
	}
	if src == dst {
		return 0, fmt.Errorf("tshare: endpoints snap to the same node")
	}
	res := e.searcher.ShortestPath(src, dst)
	if !res.Reachable() {
		return 0, ErrUnreachable
	}
	e.nextID++
	t := &Taxi{
		ID:          e.nextID,
		Route:       res.Path,
		SeatsAvail:  seats - 1,
		DetourLimit: detour,
		cells:       make(map[grid.ID]struct{}),
	}
	t.RouteETA = e.computeETAs(res.Path, offer.Departure)
	t.Via = []Via{
		{RouteIdx: 0, Node: src, ETA: t.RouteETA[0]},
		{RouteIdx: len(res.Path) - 1, Node: dst, ETA: t.RouteETA[len(res.Path)-1]},
	}
	e.register(t)
	e.taxis[t.ID] = t
	return t.ID, nil
}

func (e *Engine) computeETAs(route []roadnet.NodeID, start float64) []float64 {
	g := e.city.Graph
	etas := make([]float64, len(route))
	etas[0] = start
	for i := 1; i < len(route); i++ {
		t, err := g.TravelTime(route[i-1 : i+1])
		if err != nil {
			t = geo.Haversine(g.Point(route[i-1]), g.Point(route[i])) / 7.0
		}
		etas[i] = etas[i-1] + t
	}
	return etas
}

// register adds the taxi to the cell lists of every cell on its
// (remaining) route with the taxi's first arrival time in that cell.
func (e *Engine) register(t *Taxi) {
	g := e.city.Graph
	for i := t.Progress; i < len(t.Route); i++ {
		c := e.gs.At(g.Point(t.Route[i]))
		if c == grid.Invalid {
			continue
		}
		if _, done := t.cells[c]; done {
			continue
		}
		t.cells[c] = struct{}{}
		e.cellAdd(c, t.ID, t.RouteETA[i])
	}
}

func (e *Engine) cellAdd(c grid.ID, id TaxiID, eta float64) {
	list := e.cells[c]
	i := sort.Search(len(list), func(i int) bool {
		if list[i].eta != eta {
			return list[i].eta > eta
		}
		return list[i].taxi >= id
	})
	list = append(list, cellEntry{})
	copy(list[i+1:], list[i:])
	list[i] = cellEntry{taxi: id, eta: eta}
	e.cells[c] = list
}

func (e *Engine) cellRemove(c grid.ID, id TaxiID) {
	list := e.cells[c]
	for i := range list {
		if list[i].taxi == id {
			e.cells[c] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// unregister removes the taxi from every cell listing it.
func (e *Engine) unregister(t *Taxi) {
	for c := range t.cells {
		e.cellRemove(c, t.ID)
	}
	t.cells = make(map[grid.ID]struct{})
}

// Remove deletes a taxi from the system.
func (e *Engine) Remove(id TaxiID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.taxis[id]
	if !ok {
		return false
	}
	e.unregister(t)
	delete(e.taxis, id)
	return true
}
