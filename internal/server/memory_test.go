package server

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"xar/internal/core"
	"xar/internal/telemetry"
)

// TestMemoryEndpoint: GET /v1/memory on a fully-wired server reports the
// complete component breakdown — engine components plus the server-side
// trace store — with a live rides-per-GB frontier point.
func TestMemoryEndpoint(t *testing.T) {
	env := newTracedEnv(t)
	// Load the engine: one ride plus a search (which also feeds the
	// journal, quality funnel and trace rings).
	body := env.searchBody(t)
	if resp := env.doRaw(t, "POST", "/v1/search", body, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d", resp.StatusCode)
	}

	var rep core.MemoryReport
	if code := env.do(t, "GET", "/v1/memory?sweep=true", nil, &rep); code != http.StatusOK {
		t.Fatalf("GET /v1/memory = %d", code)
	}
	if len(rep.Components) < 6 {
		t.Fatalf("only %d components reported, want >= 6: %+v", len(rep.Components), rep.Components)
	}
	byName := map[string]uint64{}
	var sum uint64
	for _, c := range rep.Components {
		byName[c.Name] = c.Bytes
		sum += c.Bytes
	}
	for _, want := range []string{"graph", "discretization", "index", "journal", "quality", "traces"} {
		if byName[want] == 0 {
			t.Errorf("component %q missing or zero (have %v)", want, byName)
		}
	}
	if sum != rep.TrackedTotalBytes {
		t.Fatalf("component sum %d != tracked total %d", sum, rep.TrackedTotalBytes)
	}
	if rep.ActiveRides < 1 || rep.IndexBytes == 0 || rep.RidesPerGB <= 0 {
		t.Fatalf("frontier point: rides=%d index=%d rides/GB=%f",
			rep.ActiveRides, rep.IndexBytes, rep.RidesPerGB)
	}
	if rep.Heap.HeapAllocBytes == 0 {
		t.Fatal("heap stats missing")
	}

	// ?sweep=true forces a fresh sweep each call: the count advances.
	var again core.MemoryReport
	if code := env.do(t, "GET", "/v1/memory?sweep=true", nil, &again); code != http.StatusOK {
		t.Fatalf("second GET /v1/memory = %d", code)
	}
	if again.Sweep.Count <= rep.Sweep.Count {
		t.Fatalf("forced sweep did not advance the count: %d → %d", rep.Sweep.Count, again.Sweep.Count)
	}

	// Without ?sweep the cached report is served: the count holds.
	var cached core.MemoryReport
	if code := env.do(t, "GET", "/v1/memory", nil, &cached); code != http.StatusOK {
		t.Fatalf("cached GET /v1/memory = %d", code)
	}
	if cached.Sweep.Count != again.Sweep.Count {
		t.Fatalf("cached read swept: count %d → %d", again.Sweep.Count, cached.Sweep.Count)
	}
}

// TestMemoryEndpointValidation: the same unknown-parameter hardening as
// every other endpoint — unknown or malformed query params are 400s with
// a JSON error body.
func TestMemoryEndpointValidation(t *testing.T) {
	env := newTracedEnv(t)
	for _, path := range []string{
		"/v1/memory?bogus=1",
		"/v1/memory?sweep=potato",
		"/v1/memory?sweeps=true",
		"/v1/memory?sweep=true&extra=2",
	} {
		resp := env.doRaw(t, "GET", path, "", nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, resp.StatusCode)
			continue
		}
		var body errorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
			t.Errorf("GET %s: body not a JSON error (%v, %+v)", path, err, body)
		}
	}
	for _, path := range []string{
		"/v1/memory?sweep=false",
		"/v1/memory?sweep=1",
	} {
		if resp := env.doRaw(t, "GET", path, "", nil); resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestMemoryEndpointDisabled: without a memsize registry on the engine
// the endpoint 404s with an explanatory JSON error.
func TestMemoryEndpointDisabled(t *testing.T) {
	env := newTestEnv(t)
	resp, err := http.Get(env.srv.URL + "/v1/memory")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/memory without accounting = %d, want 404", resp.StatusCode)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("404 body not a JSON error (%v, %+v)", err, body)
	}
}

// TestMemoryGaugesInHistory: after a sweep, the memsize gauge families
// appear in the flight recorder's retained series — acceptance
// criterion "xar_memsize_bytes and xar_rides_per_gb in history rings".
func TestMemoryGaugesInHistory(t *testing.T) {
	env := newRecorderEnv(t)
	src, dst := env.corners()
	var cr CreateRideResponse
	if code := env.do(t, "POST", "/v1/rides", CreateRideRequest{
		Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500,
	}, &cr); code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	// Sweep (publishes the gauges), then tick the recorder twice so the
	// series land in the history ring with a delta window.
	resp, err := http.Get(env.srv.URL + "/v1/memory?sweep=true")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d", resp.StatusCode)
	}
	env.tick(1, time.Millisecond)
	env.tick(1, time.Millisecond)

	dump := env.rec.History(telemetry.HistoryQuery{})
	found := map[string]bool{}
	for _, s := range dump.Series {
		found[s.Name] = true
	}
	for _, want := range []string{"xar_memsize_bytes", "xar_memsize_total_bytes", "xar_rides_per_gb"} {
		if !found[want] {
			t.Errorf("series %q absent from metrics history", want)
		}
	}
}
