package server

import (
	"fmt"
	"net/http"
	"strconv"

	"xar/internal/audit"
	"xar/internal/journal"
)

// maxEventListLimit caps GET /v1/events?limit=... and
// GET /v1/rides/{id}/timeline?limit=... — same cap and contract as
// /v1/traces.
const maxEventListLimit = 10000

// WithJournal serves the engine's ride-lifecycle event journal at
// GET /v1/rides/{id}/timeline and GET /v1/events. Pass the same journal
// the engine was configured with (core.Config.Journal).
func WithJournal(j *journal.Journal) Option {
	return func(s *Server) { s.journal = j }
}

// WithAuditor folds the invariant auditor into /v1/healthz (any
// violation pages the health status) and adds audit.json plus the
// violating rides' timelines to debug bundles. The caller owns the
// auditor's background lifecycle (Start/Stop).
func WithAuditor(a *audit.Auditor) Option {
	return func(s *Server) { s.auditor = a }
}

// TimelineResponse is the GET /v1/rides/{id}/timeline body.
type TimelineResponse struct {
	RideID int64           `json:"ride_id"`
	Events []journal.Event `json:"events"`
}

// EventsResponse is the GET /v1/events body. LastSeq is the journal's
// newest sequence number — pass it back as ?since= to poll for events
// recorded after this response.
type EventsResponse struct {
	Events  []journal.Event `json:"events"`
	LastSeq uint64          `json:"last_seq"`
}

// handleRideTimeline serves one ride's retained event timeline.
// Timelines outlive the ride: a completed ride's events remain readable
// until the journal evicts them for space.
func (s *Server) handleRideTimeline(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "event journal disabled (server built without a journal)"})
		return
	}
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	for key := range q {
		switch key {
		case "limit":
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown query parameter %q (want limit)", key)})
			return
		}
	}
	limit := 0 // all retained events (per-ride rings are small)
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 || n > maxEventListLimit {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("limit must be an integer in [1, %d]", maxEventListLimit)})
			return
		}
		limit = n
	}
	evs := s.journal.Timeline(id)
	if evs == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no events recorded for this ride"})
		return
	}
	if limit > 0 && len(evs) > limit {
		evs = evs[len(evs)-limit:] // keep the most recent
	}
	writeJSON(w, http.StatusOK, TimelineResponse{RideID: id, Events: evs})
}

// handleEvents serves the global event tail with type/since/limit
// filters, ascending by sequence number.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "event journal disabled (server built without a journal)"})
		return
	}
	q := r.URL.Query()
	for key := range q {
		switch key {
		case "type", "since", "limit":
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown query parameter %q (want type, since, limit)", key)})
			return
		}
	}
	var f journal.TailFilter
	if v := q.Get("type"); v != "" {
		t := journal.EventType(v)
		if !journal.KnownType(t) {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("unknown event type %q", v)})
			return
		}
		f.Type = t
	}
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "since must be a non-negative integer sequence number"})
			return
		}
		f.SinceSeq = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 || n > maxEventListLimit {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("limit must be an integer in [1, %d]", maxEventListLimit)})
			return
		}
		f.Limit = n
	}
	writeJSON(w, http.StatusOK, EventsResponse{
		Events:  s.journal.Tail(f),
		LastSeq: s.journal.LastSeq(),
	})
}

// healthStatus is the status string /v1/healthz reports: the worst SLO
// state, escalated to "page" whenever the auditor has ever found an
// invariant violation — a correctness breach outranks any latency state.
func (s *Server) healthStatus() string {
	if s.auditor != nil && s.auditor.TotalViolations() > 0 {
		return "page"
	}
	return s.sloStatus()
}
