package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"xar/internal/quality"
)

// TestQualityEndpoint drives traffic through the fully wired env and
// asserts GET /v1/quality reports the funnel, the slack distribution
// and the shadow section with live numbers.
func TestQualityEndpoint(t *testing.T) {
	env := newTracedEnv(t)
	body := env.searchBody(t)

	// A matching search and a booking: funnel gains matched candidates,
	// the booking observes a slack ratio.
	var sr SearchResponse
	if code := env.do(t, "POST", "/v1/search", json.RawMessage(body), &sr); code != http.StatusOK {
		t.Fatalf("search: %d", code)
	}
	if len(sr.Matches) == 0 {
		t.Fatal("seed search found no matches")
	}
	var req SearchRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	var bk BookingJSON
	if code := env.do(t, "POST", "/v1/bookings", BookRequest{Match: sr.Matches[0], Request: req}, &bk); code != http.StatusCreated {
		t.Fatalf("book: %d", code)
	}
	// A no-match search: riding against the ride's direction is servable
	// (both clusters walkable) but every candidate fails the stop-order
	// check, so the funnel gains rejections and the shadow matcher gets a
	// no-match task.
	noMatch := req
	noMatch.Source, noMatch.Dest = req.Dest, req.Source
	var empty SearchResponse
	if code := env.do(t, "POST", "/v1/search", noMatch, &empty); code != http.StatusOK {
		t.Fatalf("no-match search: %d", code)
	}
	env.eng.ShadowFlush()

	var qr QualityResponse
	if code := env.do(t, "GET", "/v1/quality", nil, &qr); code != http.StatusOK {
		t.Fatalf("quality: %d", code)
	}
	for _, st := range quality.Stages() {
		if _, ok := qr.Funnel[st]; !ok {
			t.Errorf("funnel missing stage %q: %v", st, qr.Funnel)
		}
	}
	if qr.Funnel["matched"] == 0 {
		t.Fatalf("matched stage = 0 after a matching search: %v", qr.Funnel)
	}
	if qr.CandidatesExamined == 0 {
		t.Fatal("candidates_examined = 0 after searches")
	}
	if qr.DetourSlack.Count == 0 {
		t.Fatal("detour slack histogram empty after a booking")
	}
	if qr.DetourSlack.P99 < 0 {
		t.Fatalf("slack p99 = %v", qr.DetourSlack.P99)
	}
	if !qr.Shadow.Enabled {
		t.Fatal("shadow matcher not reported enabled (ShadowSampleRate=1)")
	}
	if qr.MatchRate <= 0 {
		t.Fatalf("match_rate = %v after a matching search", qr.MatchRate)
	}
	for _, con := range quality.Constraints() {
		if _, ok := qr.Shadow.Unlocks[con]; !ok {
			t.Errorf("shadow unlocks missing constraint %q: %v", con, qr.Shadow.Unlocks)
		}
	}
}

// TestQualityEndpointValidation: unknown query parameters are rejected
// with a JSON error, and a server without a collector 404s.
func TestQualityEndpointValidation(t *testing.T) {
	env := newTracedEnv(t)
	resp := env.doRaw(t, "GET", "/v1/quality?bogus=1", "", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus param = %d, want 400", resp.StatusCode)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("rejection not a JSON error (%v, %+v)", err, body)
	}

	plain := newTestEnv(t)
	resp2, err := http.Get(plain.srv.URL + "/v1/quality")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/quality without collector = %d, want 404", resp2.StatusCode)
	}
}

// TestHealthzCarriesBuildInfo: the /v1/healthz body reports the same
// build identity the xar_build_info metric exposes.
func TestHealthzCarriesBuildInfo(t *testing.T) {
	env := newTracedEnv(t)
	var h HealthResponse
	if code := env.do(t, "GET", "/v1/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if h.Build.Version == "" || h.Build.GoVersion == "" {
		t.Fatalf("healthz build identity incomplete: %+v", h.Build)
	}
}
