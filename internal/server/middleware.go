package server

import (
	"context"
	"log/slog"
	"net/http"
	"time"

	"xar/internal/telemetry"
)

// HTTP metric names exposed by the serving layer.
const (
	httpRequestsName  = "xar_http_requests_total"
	httpDurationName  = "xar_http_request_duration_seconds"
	httpInflightName  = "xar_http_inflight_requests"
	httpRespBytesName = "xar_http_response_bytes_total"
)

// routeInstruments is the pre-built instrument set of one route: the
// middleware does zero registry lookups per request.
type routeInstruments struct {
	duration *telemetry.Histogram
	byClass  [4]*telemetry.Counter // 2xx, 3xx, 4xx, 5xx
	bytes    *telemetry.Counter
}

func (s *Server) newRouteInstruments(route string) *routeInstruments {
	ri := &routeInstruments{
		duration: s.reg.Histogram(httpDurationName,
			"HTTP request latency by route.",
			telemetry.DurationBuckets(), telemetry.L("route", route)),
		bytes: s.reg.Counter(httpRespBytesName,
			"Response body bytes written by route.", telemetry.L("route", route)),
	}
	for i, class := range []string{"2xx", "3xx", "4xx", "5xx"} {
		ri.byClass[i] = s.reg.Counter(httpRequestsName,
			"HTTP requests by route and status class.",
			telemetry.L("route", route, "code", class))
	}
	return ri
}

// statusWriter captures the response status and size. WriteHeader-less
// handlers default to 200, matching net/http.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// instrument wraps a handler with the serving-side telemetry: in-flight
// gauge, per-route latency histogram, status-class counters, response
// bytes, request-scoped tracing, and the optional structured access log.
//
// Trace semantics: every request gets a trace ID — taken from a valid
// incoming W3C traceparent, minted otherwise — and the ID is echoed in
// the X-Xar-Trace-Id response header and the access-log line whether or
// not the trace records. A root span (which makes the trace land in the
// store and flow into the engine's child spans) opens when a tracer is
// configured and either the incoming traceparent carries the sampled
// flag or the tracer's own head sampler selects the request.
func (s *Server) instrument(route string, next http.HandlerFunc) http.Handler {
	ri := s.newRouteInstruments(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		start := time.Now()

		trace, parent, sampled, fromUpstream := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
		if !fromUpstream {
			trace = telemetry.NewTraceID()
		}
		var span *telemetry.Span
		if s.tracer != nil && ((fromUpstream && sampled) || s.tracer.Sample()) {
			var ctx context.Context
			ctx, span = s.tracer.StartRoot(r.Context(), route, trace, parent)
			r = r.WithContext(ctx)
		}
		w.Header().Set("X-Xar-Trace-Id", trace.String())

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next(sw, r)
		d := time.Since(start)
		s.inflight.Add(-1)

		if span != nil {
			span.SetStr("method", r.Method)
			span.SetStr("path", r.URL.Path)
			span.SetInt("status", int64(sw.status))
			span.SetInt("bytes", int64(sw.bytes))
			if sw.status >= 500 {
				span.SetErrorMsg(http.StatusText(sw.status))
			}
			span.End()
		}

		ri.duration.ObserveDuration(d)
		if class := sw.status/100 - 2; class >= 0 && class < len(ri.byClass) {
			ri.byClass[class].Inc()
		}
		ri.bytes.Add(uint64(sw.bytes))

		if s.accessLog != nil {
			s.accessLog.LogAttrs(r.Context(), slog.LevelInfo, "http",
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Float64("duration_ms", float64(d)/float64(time.Millisecond)),
				slog.Int("bytes", sw.bytes),
				slog.String("remote", r.RemoteAddr),
				slog.String("trace_id", trace.String()),
			)
		}
	})
}

// handleMetricsProm serves the whole registry in Prometheus text
// exposition format — engine op/stage histograms, HTTP serving metrics
// and any runtime gauges wired by the binary.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.reg.WritePrometheus(w)
}

// handleMetricsJSON serves the same registry as JSON, with approximate
// p50/p95/p99 per histogram for humans and dashboards without a
// Prometheus server.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = s.reg.WriteJSON(w)
}
