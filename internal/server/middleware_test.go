package server

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"xar/internal/core"
	"xar/internal/discretize"
	"xar/internal/index"
	"xar/internal/roadnet"
	"xar/internal/telemetry"
)

// newInstrumentedEnv builds a server whose engine and HTTP layer share
// one registry — the deployment shape of cmd/xarserver.
func newInstrumentedEnv(t testing.TB) (*testEnv, *telemetry.Registry) {
	t.Helper()
	city, err := roadnet.GenerateCity(roadnet.DefaultCityConfig(24, 14, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := discretize.Build(city, discretize.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	cfg := core.DefaultConfig()
	cfg.Telemetry = reg
	cfg.SearchSampleRate = 1 // deterministic op/stage counts for assertions
	eng, err := core.NewEngine(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := httptest.NewServer(New(eng, core.NewSocialGraph(), WithTelemetry(reg)).Handler())
	t.Cleanup(s.Close)
	return &testEnv{srv: s, eng: eng, city: city}, reg
}

func scrapeProm(t testing.TB, env *testEnv) string {
	t.Helper()
	resp, err := http.Get(env.srv.URL + "/v1/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prom scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prom content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// promValue extracts the value of the first sample line with the given
// series prefix (name + label block).
func promValue(t testing.TB, text, seriesPrefix string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, seriesPrefix) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("series %q not found in exposition:\n%s", seriesPrefix, text)
	return 0
}

// TestPromEndpointExposition checks /v1/metrics/prom is well-formed:
// TYPE lines for every expected family, cumulative monotone buckets,
// +Inf == _count per route series.
func TestPromEndpointExposition(t *testing.T) {
	env, _ := newInstrumentedEnv(t)

	// Generate some traffic first.
	for i := 0; i < 5; i++ {
		var h HealthResponse
		env.do(t, "GET", "/v1/healthz", nil, &h)
	}
	text := scrapeProm(t, env)

	for _, want := range []string{
		"# TYPE xar_http_requests_total counter",
		"# TYPE xar_http_request_duration_seconds histogram",
		"# TYPE xar_http_inflight_requests gauge",
		"# TYPE xar_op_duration_seconds histogram",
		"# TYPE xar_search_stage_duration_seconds histogram",
		`xar_http_requests_total{route="/v1/healthz",code="2xx"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}

	// Bucket monotonicity + +Inf == count for the healthz route.
	var last, inf uint64
	var infSeen bool
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, `xar_http_request_duration_seconds_bucket{route="/v1/healthz"`) {
			continue
		}
		n, err := strconv.ParseUint(strings.Fields(line)[1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("buckets not monotone at %q", line)
		}
		last = n
		if strings.Contains(line, `le="+Inf"`) {
			infSeen, inf = true, n
		}
	}
	if !infSeen {
		t.Fatal("no +Inf bucket for healthz route")
	}
	if count := promValue(t, text, `xar_http_request_duration_seconds_count{route="/v1/healthz"}`); uint64(count) != inf {
		t.Fatalf("+Inf bucket %d != count %v", inf, count)
	}
}

// TestMiddlewareStatusClasses drives 2xx, 4xx and 5xx responses through
// the middleware and checks each lands in its class counter.
func TestMiddlewareStatusClasses(t *testing.T) {
	env, reg := newInstrumentedEnv(t)

	// 2xx: healthz. 4xx: malformed search body.
	var h HealthResponse
	if code := env.do(t, "GET", "/v1/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	resp, err := http.Post(env.srv.URL+"/v1/search", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d", resp.StatusCode)
	}

	// 5xx: exercise the middleware directly with a failing handler (no
	// production handler 500s deterministically).
	srv := &Server{reg: reg, inflight: reg.Gauge(httpInflightName, "", nil)}
	boom := srv.instrument("/v1/boom", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	})
	rec := httptest.NewRecorder()
	boom.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("boom status %d", rec.Code)
	}

	text := scrapeProm(t, env)
	for _, want := range []string{
		`xar_http_requests_total{route="/v1/healthz",code="2xx"} 1`,
		`xar_http_requests_total{route="/v1/search",code="4xx"} 1`,
		`xar_http_requests_total{route="/v1/boom",code="5xx"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}
	// Latency recorded on the error paths too.
	if v := promValue(t, text, `xar_http_request_duration_seconds_count{route="/v1/boom"}`); v != 1 {
		t.Fatalf("boom duration count = %v", v)
	}
	if v := promValue(t, text, `xar_http_request_duration_seconds_count{route="/v1/search"}`); v != 1 {
		t.Fatalf("search duration count = %v", v)
	}
	// In-flight gauge: only the scrape request itself is in flight at
	// render time.
	if v := promValue(t, text, "xar_http_inflight_requests"); v != 1 {
		t.Fatalf("inflight = %v", v)
	}
}

// TestMixedLoadHistograms is the acceptance-criteria load: >=1k mixed
// requests through httptest must leave non-zero bucket counts for the
// search, book and track routes, and for the engine-side op and stage
// histograms.
func TestMixedLoadHistograms(t *testing.T) {
	env, _ := newInstrumentedEnv(t)
	src, dst := env.corners()

	var created CreateRideResponse
	if code := env.do(t, "POST", "/v1/rides", CreateRideRequest{
		Source: src, Dest: dst, Departure: 1000, DetourLimit: 2500,
	}, &created); code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	r := env.eng.Ride(index.RideID(created.RideID))
	g := env.city.Graph
	mid1 := toJSON(g.Point(r.Route[len(r.Route)/4]))
	mid2 := toJSON(g.Point(r.Route[3*len(r.Route)/4]))
	search := SearchRequest{
		Source: mid1, Dest: mid2,
		Earliest: 0, Latest: 5000, WalkLimit: 900,
	}

	// 1050 mixed requests from 8 goroutines: search, track, health,
	// booking attempts (mostly 409s once seats run out — still observed),
	// malformed bodies (4xx).
	const goroutines, perG = 8, 132
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := env.srv.Client()
			for i := 0; i < perG; i++ {
				switch i % 6 {
				case 0, 1:
					env.do(t, "POST", "/v1/search", search, nil)
				case 2:
					now := float64(900 + i)
					env.do(t, "POST", "/v1/track", TrackRequest{RideID: created.RideID, Now: &now}, nil)
				case 3:
					var found SearchResponse
					env.do(t, "POST", "/v1/search", search, &found)
					if len(found.Matches) > 0 {
						env.do(t, "POST", "/v1/bookings", BookRequest{
							Match: found.Matches[0], Request: search,
						}, nil)
					} else {
						env.do(t, "POST", "/v1/bookings", BookRequest{
							Match: MatchJSON{RideID: 999999}, Request: search,
						}, nil)
					}
				case 4:
					env.do(t, "GET", "/v1/healthz", nil, nil)
				case 5:
					resp, err := client.Post(env.srv.URL+"/v1/search", "application/json", strings.NewReader("{"))
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()

	text := scrapeProm(t, env)
	for _, route := range []string{"/v1/search", "/v1/bookings", "/v1/track"} {
		series := fmt.Sprintf(`xar_http_request_duration_seconds_count{route=%q}`, route)
		if v := promValue(t, text, series); v == 0 {
			t.Fatalf("route %s histogram empty after mixed load", route)
		}
	}
	for _, op := range []string{"search", "track"} {
		series := fmt.Sprintf(`xar_op_duration_seconds_count{op=%q}`, op)
		if v := promValue(t, text, series); v == 0 {
			t.Fatalf("engine op %s histogram empty after mixed load", op)
		}
	}
	if v := promValue(t, text, `xar_search_stage_duration_seconds_count{stage="side_lookup"}`); v == 0 {
		t.Fatal("stage histograms empty after mixed load")
	}
}

// TestHealthzUptimeAndEngine checks the satellite healthz fields.
func TestHealthzUptimeAndEngine(t *testing.T) {
	env, _ := newInstrumentedEnv(t)
	src, dst := env.corners()
	env.do(t, "POST", "/v1/rides", CreateRideRequest{Source: src, Dest: dst, Departure: 1000}, nil)

	var h HealthResponse
	if code := env.do(t, "GET", "/v1/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if h.UptimeSeconds <= 0 {
		t.Fatalf("uptime = %v", h.UptimeSeconds)
	}
	if h.Engine.RidesCreated != 1 {
		t.Fatalf("engine counters not surfaced: %+v", h.Engine)
	}
	if h.LookToBook != 0 || h.MatchRate != 0 {
		t.Fatalf("ratios with no searches should be 0: %+v", h)
	}
}

// TestMetricsJSONEndpoint checks the JSON twin parses and includes
// percentile estimates.
func TestMetricsJSONEndpoint(t *testing.T) {
	env, _ := newInstrumentedEnv(t)
	env.do(t, "GET", "/v1/healthz", nil, nil)

	var fams []telemetry.FamilyJSON
	if code := env.do(t, "GET", "/v1/metrics/json", nil, &fams); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	found := false
	for _, f := range fams {
		if f.Name == "xar_http_request_duration_seconds" {
			for _, s := range f.Series {
				if s.Labels["route"] == "/v1/healthz" && s.Count != nil && *s.Count >= 1 && s.P50 != nil {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("JSON dump missing healthz duration series with percentiles")
	}
}
