package server

import (
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"xar/internal/telemetry"
)

// Metric-name hygiene lint: every family a fully wired process registers
// (engine ops, HTTP middleware, runtime metrics) must follow the
// conventions OBSERVABILITY.md documents — names under the xar_/go_
// prefixes, counters ending _total, histograms carrying a unit suffix,
// and no duplicate registrations. New metrics that break the scheme fail
// CI here instead of surfacing as unqueryable series in dashboards.

var metricNameRE = regexp.MustCompile(`^(xar|go)_[a-z][a-z0-9_]*$`)

func TestMetricNameHygiene(t *testing.T) {
	env := newTracedEnv(t)
	telemetry.RegisterRuntimeMetrics(env.reg)

	// Materialize lazily registered families: a full create/search/book
	// cycle through HTTP plus a failed booking for the error counters, and
	// an audit sweep for the sweep counter (the journal and violation
	// families register eagerly).
	body := env.searchBody(t)
	if resp := env.doRaw(t, "POST", "/v1/search", body, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d", resp.StatusCode)
	}
	env.doRaw(t, "POST", "/v1/bookings", `{"ride_id": 999999}`, nil)
	env.auditor.Audit()
	// One capture so the xar_profile_* families materialize.
	env.eng.Profiler().CaptureNow()

	resp := env.doRaw(t, "GET", "/v1/metrics/prom", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	kinds := map[string]string{} // family name -> counter|gauge|histogram
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			t.Errorf("malformed TYPE line: %q", line)
			continue
		}
		name, kind := fields[2], fields[3]
		if _, dup := kinds[name]; dup {
			t.Errorf("metric %s: duplicate TYPE line (family rendered twice)", name)
		}
		kinds[name] = kind
	}
	if len(kinds) < 8 {
		t.Fatalf("only %d families in the exposition — wiring broke: %v", len(kinds), kinds)
	}

	for name, kind := range kinds {
		if !metricNameRE.MatchString(name) {
			t.Errorf("metric %s: name must match %s", name, metricNameRE)
		}
		switch kind {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				t.Errorf("metric %s: counters must end _total", name)
			}
		case "gauge":
			if strings.HasSuffix(name, "_total") {
				t.Errorf("metric %s: _total suffix is reserved for counters", name)
			}
		case "histogram":
			if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") && !strings.HasSuffix(name, "_ratio") {
				t.Errorf("metric %s: histograms must carry a unit suffix (_seconds, _bytes, or _ratio)", name)
			}
		default:
			t.Errorf("metric %s: unknown kind %q", name, kind)
		}
	}

	// The core serving families must be present — if one vanishes the
	// lint would silently shrink to whatever is left.
	for _, want := range []string{
		"xar_op_duration_seconds",
		"xar_op_errors_total",
		"xar_http_requests_total",
		"xar_http_request_duration_seconds",
		"xar_ride_events_total",
		"xar_audit_violations_total",
		"xar_audit_sweeps_total",
		"xar_search_funnel_total",
		"xar_detour_slack_ratio",
		"xar_epsilon_consumption_ratio",
		"xar_shadow_unlock_total",
		"xar_shadow_tasks_total",
		"xar_build_info",
		"xar_match_rate",
		"xar_memsize_bytes",
		"xar_memsize_total_bytes",
		"xar_rides_per_gb",
		"xar_memsize_sweeps_total",
		"xar_memsize_sweep_duration_seconds",
		"xar_profile_captures_total",
		"xar_profile_capture_duration_seconds",
		"xar_profile_overhead_ratio",
		"go_goroutines",
		"go_gc_pauses_seconds",
	} {
		if _, ok := kinds[want]; !ok {
			t.Errorf("expected family %s missing from exposition", want)
		}
	}
}
